package tpp_test

import (
	"bytes"
	"math/rand"
	"testing"

	"minions/tpp"
)

// corpus pairs every TPP used by examples/ and testbed/ (the §2 application
// programs) in both source forms: the paper's pseudo-assembly and the typed
// Builder. Build/Assemble must encode each pair to byte-identical sections.
var corpus = []struct {
	name    string
	asm     string
	builder func() *tpp.Builder
}{
	{
		name: "microburst-quickstart", // §2.1, examples/quickstart + microburst
		asm: `
			PUSH [Switch:SwitchID]
			PUSH [PacketMetadata:OutputPort]
			PUSH [Queue:QueueOccupancy]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Push(tpp.SwitchID).
				Push(tpp.OutputPort).
				Push(tpp.QueueOccupancy)
		},
	},
	{
		name: "netsight", // §2.3, examples/ndb + testbed.DeployNetSight
		asm: `
			.hops 10
			.flags dropnotify
			PUSH [Switch:ID]
			PUSH [PacketMetadata:MatchedEntryID]
			PUSH [PacketMetadata:InputPort]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Hops(10).
				Flags(tpp.FlagDropNotify).
				Push(tpp.SwitchID).
				Push(tpp.MatchedEntryID).
				Push(tpp.InputPort)
		},
	},
	{
		name: "sketch", // §2.5, examples/sketch + testbed.DeploySketch
		asm: `
			PUSH [Switch:ID]
			PUSH [PacketMetadata:OutputPort]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().Push(tpp.SwitchID).Push(tpp.OutputPort)
		},
	},
	{
		name: "fastupdate", // §2.6, examples/fastupdate
		asm: `
			.mode stack
			.mem 2
			STORE [Vendor#0:], [Packet:0]
			STORE [Vendor#1:], [Packet:1]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Stack().
				Mem(2).
				Store(tpp.VendorAddr(0), tpp.At(0)).
				Store(tpp.VendorAddr(1), tpp.At(1))
		},
	},
	{
		name: "rcp-capacity", // §2.2 phase 0, testbed.NewRCPSystem
		asm: `
			LOAD [Switch:SwitchID], [Packet:Hop[0]]
			LOAD [Link:CapacityMbps], [Packet:Hop[1]]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Load(tpp.SwitchID, tpp.Hop(0)).
				Load(tpp.LinkCapacityMbps, tpp.Hop(1))
		},
	},
	{
		name: "rcp-collect", // §2.2 phase 1
		asm: `
			LOAD [Switch:SwitchID], [Packet:Hop[0]]
			LOAD [Link:Queued-Bytes], [Packet:Hop[1]]
			LOAD [Link:TX-Bytes], [Packet:Hop[2]]
			LOAD [Link:AppSpecific_0], [Packet:Hop[3]]
			LOAD [Link:AppSpecific_1], [Packet:Hop[4]]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Load(tpp.SwitchID, tpp.Hop(0)).
				Load(tpp.LinkQueuedBytes, tpp.Hop(1)).
				Load(tpp.LinkTXBytes, tpp.Hop(2)).
				Load(tpp.AppSpecific0, tpp.Hop(3)).
				Load(tpp.AppSpecific1, tpp.Hop(4))
		},
	},
	{
		name: "rcp-update", // §2.2 phase 3: versioned CSTORE gating a STORE
		asm: `
			CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
			STORE [Link:AppSpecific_1], [Packet:Hop[2]]
			.hops 3
			.word 7 8 0x2000
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Hops(3).
				CStore(tpp.AppSpecific0, tpp.Hop(0), tpp.Hop(1)).
				Store(tpp.AppSpecific1, tpp.Hop(2)).
				Init(7, 8, 0x2000)
		},
	},
	{
		name: "conga-probe", // §2.4, testbed.NewCongaBalancer
		asm: `
			LOAD [Link:ID], [Packet:Hop[0]]
			LOAD [Link:TX-Utilization], [Packet:Hop[1]]
			LOAD [Link:TX-Bytes], [Packet:Hop[2]]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				Load(tpp.LinkID, tpp.Hop(0)).
				Load(tpp.LinkTXUtilization, tpp.Hop(1)).
				Load(tpp.LinkTXBytes, tpp.Hop(2))
		},
	},
	{
		name: "targeted", // §4.4: CEXEC on switch ID guarding a collection
		asm: `
			CEXEC [Switch:SwitchID], [Packet:Hop[0]]
			LOAD [Queue:QueueOccupancy], [Packet:Hop[1]]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				CExec(tpp.SwitchID, tpp.Hop(0)).
				Load(tpp.QueueOccupancy, tpp.Hop(1))
		},
	},
	{
		name: "indirect", // §8 heterogeneity: address read from packet memory
		asm: `
			LOAD [[Packet:Hop[1]]], [Packet:Hop[0]]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().LoadIndirect(tpp.Hop(0), tpp.Hop(1))
		},
	},
	{
		name: "indirect-absolute", // absolute LOADI: B sizes memory in both forms
		asm: `
			LOADI [Packet:0], [Packet:7]
			PUSH [Switch:SwitchID]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				LoadIndirect(tpp.At(0), tpp.At(7)).
				Push(tpp.SwitchID)
		},
	},
	{
		name: "split-collect-window", // §4.4 large TPPs: wrapped start hop
		asm: `
			.mode hop
			.perhop 2
			.mem 20
			.start 246
			LOAD [Switch:SwitchID], [Packet:Hop[0]]
			LOAD [Queue:QueueOccupancy], [Packet:Hop[1]]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				HopMode().
				PerHop(2).
				Mem(20).
				StartHop(246).
				Load(tpp.SwitchID, tpp.Hop(0)).
				Load(tpp.QueueOccupancy, tpp.Hop(1))
		},
	},
	{
		name: "appid-reflect", // header plumbing: app handle + reflect flag
		asm: `
			.appid 42
			.flags reflect
			PUSH [Switch:SwitchID]
		`,
		builder: func() *tpp.Builder {
			return tpp.NewProgram().
				AppID(42).
				Flags(tpp.FlagReflect).
				Push(tpp.SwitchID)
		},
	},
}

// TestBuilderAssemblerRoundTrip: for every corpus program, the Builder and
// the assembler must produce byte-identical wire sections, and the encoded
// section must survive Decode -> Disassemble -> Assemble -> Encode intact.
func TestBuilderAssemblerRoundTrip(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			fromAsm, err := tpp.Assemble(tc.asm)
			if err != nil {
				t.Fatalf("Assemble: %v", err)
			}
			asmBytes, err := fromAsm.Encode()
			if err != nil {
				t.Fatalf("Encode(asm): %v", err)
			}
			built, err := tc.builder().Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			builtBytes, err := built.Encode()
			if err != nil {
				t.Fatalf("Encode(builder): %v", err)
			}
			if !bytes.Equal(asmBytes, builtBytes) {
				t.Fatalf("sections differ:\nasm:     %x\nbuilder: %x\nasm prog: %+v\nbuilder prog: %+v",
					asmBytes, builtBytes, fromAsm, built)
			}

			// And the full text round trip.
			decoded, err := tpp.Decode(builtBytes)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			reassembled, err := tpp.Assemble(tpp.Disassemble(decoded))
			if err != nil {
				t.Fatalf("re-Assemble: %v\nsource:\n%s", err, tpp.Disassemble(decoded))
			}
			reBytes, err := reassembled.Encode()
			if err != nil {
				t.Fatalf("re-Encode: %v", err)
			}
			if !bytes.Equal(builtBytes, reBytes) {
				t.Fatalf("text round trip diverged:\nbefore: %x\nafter:  %x\ntext:\n%s",
					builtBytes, reBytes, tpp.Disassemble(decoded))
			}
		})
	}
}

// TestBuilderRandomRoundTrip is the property-style check: arbitrary Builder
// programs must survive Encode -> Decode -> Disassemble -> Assemble ->
// Encode byte-identically.
func TestBuilderRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	addrs := []tpp.Addr{
		tpp.SwitchID, tpp.SwitchClockLo, tpp.QueueOccupancy, tpp.LinkTXBytes,
		tpp.LinkTXUtilization, tpp.OutputPort, tpp.HopCount,
		tpp.AppSpecific0, tpp.AppSpecific1,
		tpp.PortAddr(3, tpp.RegLinkRXBytes),
		tpp.QueueAddr(2, 1, tpp.RegQueueOccPackets),
		tpp.StageAddr(0, tpp.RegStageVersion),
	}
	for trial := 0; trial < 300; trial++ {
		b := tpp.NewProgram()
		hopMode := rng.Intn(2) == 0
		op := func(w int) tpp.Operand {
			if hopMode {
				return tpp.Hop(w)
			}
			return tpp.At(w)
		}
		addr := func() tpp.Addr { return addrs[rng.Intn(len(addrs))] }
		n := 1 + rng.Intn(tpp.MaxInsns)
		lim := 3 // keep operands small so inference stays in range
		for i := 0; i < n; i++ {
			switch rng.Intn(7) {
			case 0:
				b.Push(addr())
			case 1:
				b.Pop(addr())
			case 2:
				b.Load(addr(), op(rng.Intn(lim)))
			case 3:
				b.Store(addr(), op(rng.Intn(lim)))
			case 4:
				b.CStore(addr(), op(rng.Intn(lim)), op(rng.Intn(lim)))
			case 5:
				b.CExec(addr(), op(rng.Intn(lim)))
			case 6:
				b.Nop()
			}
		}
		if rng.Intn(3) == 0 {
			b.AppID(uint16(rng.Intn(1 << 16)))
		}
		if rng.Intn(3) == 0 {
			b.Flags(tpp.FlagDropNotify)
		}
		if rng.Intn(4) == 0 {
			b.Init(rng.Uint32()%1000, rng.Uint32()%1000)
		}
		prog, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		enc, err := prog.Encode()
		if err != nil {
			t.Fatalf("trial %d: Encode: %v", trial, err)
		}
		decoded, err := tpp.Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}
		src := tpp.Disassemble(decoded)
		reasm, err := tpp.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: Assemble: %v\nsource:\n%s", trial, err, src)
		}
		re, err := reasm.Encode()
		if err != nil {
			t.Fatalf("trial %d: re-Encode: %v", trial, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("trial %d: round trip diverged\nbefore: %x\nafter:  %x\nsource:\n%s", trial, enc, re, src)
		}
	}
}

// TestBuilderErrors: the Builder reports the first error and refuses to
// build.
func TestBuilderErrors(t *testing.T) {
	if _, err := tpp.NewProgram().Build(); err == nil {
		t.Error("empty program built")
	}
	b := tpp.NewProgram()
	for i := 0; i < tpp.MaxInsns+1; i++ {
		b.Push(tpp.SwitchID)
	}
	if _, err := b.Build(); err == nil {
		t.Error("6-instruction program built (limit is 5)")
	}
	if _, err := tpp.NewProgram().Load(tpp.SwitchID, tpp.At(64)).Build(); err == nil {
		t.Error("out-of-range operand accepted")
	}
	if _, err := tpp.NewProgram().Stack().Load(tpp.SwitchID, tpp.Hop(0)).Build(); err == nil {
		t.Error("Hop operand accepted in explicit stack mode")
	}
	if _, err := tpp.NewProgram().Hops(0).Push(tpp.SwitchID).Build(); err == nil {
		t.Error("0-hop preallocation accepted")
	}
	if _, err := tpp.NewProgram().Hops(65).Push(tpp.SwitchID).Build(); err == nil {
		t.Error("65-hop preallocation accepted")
	}
	if _, err := tpp.NewProgram().CExecMasked(tpp.SwitchID, tpp.At(0), tpp.At(0)).Build(); err == nil {
		t.Error("CExecMasked with mask==expect accepted (unrepresentable: B==A means no mask)")
	}
	if _, err := tpp.NewProgram().CExecMasked(tpp.SwitchID, tpp.At(0), tpp.At(1)).Build(); err != nil {
		t.Errorf("CExecMasked with distinct operands rejected: %v", err)
	}
}

// TestBuilderExecutes: a Builder program runs under the Executor and
// collects what the equivalent assembly program would.
func TestBuilderExecutes(t *testing.T) {
	sec, err := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.QueueOccupancy).
		Encode()
	if err != nil {
		t.Fatal(err)
	}
	m := tpp.MapMemory{tpp.SwitchID: 11, tpp.QueueOccupancy: 4}
	ex := tpp.NewExecutor(tpp.Env{Mem: m})
	if res := ex.Exec(sec); res.Executed != 2 || res.Halted {
		t.Fatalf("exec: %+v", res)
	}
	if sec.Word(0) != 11 || sec.Word(1) != 4 {
		t.Errorf("collected %d, %d", sec.Word(0), sec.Word(1))
	}
}
