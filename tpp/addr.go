package tpp

import "minions/internal/mem"

// Compile-time-resolvable switch-memory addresses, exported from the unified
// address space of internal/mem so programs can be built with the typed
// Builder instead of assembling mnemonic strings. Names follow the paper's
// pseudo-assembly: the constant SwitchID is exactly "[Switch:SwitchID]",
// QueueOccupancy is "[Queue:QueueOccupancy]", and so on.
//
// Addresses fall in two groups. Dynamic-window addresses (the Queue*, Link*,
// InLink* and packet-metadata constants) resolve against the packet being
// forwarded — the current output queue, output link and input link — which
// is what the paper's example programs use. Explicitly indexed addresses
// name a fixed port, queue or stage and are composed from a register offset
// (the Reg* constants) with PortAddr, QueueAddr, StageAddr or EntryAddr.

// Per-switch globals ([Switch:*], appendix Table 6).
const (
	SwitchID        Addr = mem.SwSwitchID
	SwitchVersion   Addr = mem.SwVersion
	SwitchClockLo   Addr = mem.SwClockLo
	SwitchClockHi   Addr = mem.SwClockHi
	SwitchClockFreq Addr = mem.SwClockFreq
	SwitchNumPorts  Addr = mem.SwNumPorts
	SwitchVendorID  Addr = mem.SwVendorID
)

// Current-output-queue dynamic window ([Queue:*], Tables 7-8).
const (
	QueueOccupancy      Addr = mem.DynOutQueueBase + mem.QueueOccPackets
	QueueOccupancyBytes Addr = mem.DynOutQueueBase + mem.QueueOccBytes
	QueueTXBytes        Addr = mem.DynOutQueueBase + mem.QueueTXBytes
	QueueTXPackets      Addr = mem.DynOutQueueBase + mem.QueueTXPackets
	QueueDropBytes      Addr = mem.DynOutQueueBase + mem.QueueDropBytes
	QueueDropPackets    Addr = mem.DynOutQueueBase + mem.QueueDropPackets
)

// Current-output-link dynamic window ([Link:*], Tables 7-8).
const (
	LinkID            Addr = mem.DynOutLinkBase + mem.LinkID
	LinkRXBytes       Addr = mem.DynOutLinkBase + mem.LinkRXBytes
	LinkRXPackets     Addr = mem.DynOutLinkBase + mem.LinkRXPackets
	LinkTXBytes       Addr = mem.DynOutLinkBase + mem.LinkTXBytes
	LinkTXPackets     Addr = mem.DynOutLinkBase + mem.LinkTXPackets
	LinkDropBytes     Addr = mem.DynOutLinkBase + mem.LinkDropBytes
	LinkDropPackets   Addr = mem.DynOutLinkBase + mem.LinkDropPackets
	LinkQueuedBytes   Addr = mem.DynOutLinkBase + mem.LinkQueuedBytes
	LinkQueuedPackets Addr = mem.DynOutLinkBase + mem.LinkQueuedPkts
	LinkRXUtilization Addr = mem.DynOutLinkBase + mem.LinkRXUtil
	LinkTXUtilization Addr = mem.DynOutLinkBase + mem.LinkTXUtil
	LinkStatus        Addr = mem.DynOutLinkBase + mem.LinkStatus
	LinkCapacityMbps  Addr = mem.DynOutLinkBase + mem.LinkCapacityMbps
	LinkQueueSize     Addr = mem.DynOutLinkBase + mem.LinkQueueSize
)

// Software-managed AppSpecific registers of the current output link (§2.2),
// allocated to applications by TPP-CP.
const (
	AppSpecific0 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific0
	AppSpecific1 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific1
	AppSpecific2 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific2
	AppSpecific3 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific3
	AppSpecific4 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific4
	AppSpecific5 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific5
	AppSpecific6 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific6
	AppSpecific7 Addr = mem.DynOutLinkBase + mem.LinkAppSpecific7
)

// Packet-metadata dynamic window ([PacketMetadata:*], Tables 7-8).
const (
	InputPort      Addr = mem.DynPacketBase + mem.PktInputPort
	OutputPort     Addr = mem.DynPacketBase + mem.PktOutputPort
	QueueID        Addr = mem.DynPacketBase + mem.PktQueueID
	MatchedEntryID Addr = mem.DynPacketBase + mem.PktMatchedEntry
	HopCount       Addr = mem.DynPacketBase + mem.PktHopCount
	HashValue      Addr = mem.DynPacketBase + mem.PktHashValue
	PathTag        Addr = mem.DynPacketBase + mem.PktPathTag
	PacketTTL      Addr = mem.DynPacketBase + mem.PktTTL
	PacketLength   Addr = mem.DynPacketBase + mem.PktLenBytes
	ArrivalLo      Addr = mem.DynPacketBase + mem.PktArrivalLo
	ArrivalHi      Addr = mem.DynPacketBase + mem.PktArrivalHi
	AltRoutes      Addr = mem.DynPacketBase + mem.PktAltRoutes
)

// Register offsets for explicitly indexed addressing, composed with
// PortAddr/QueueAddr/StageAddr/EntryAddr or InLink.
const (
	// Per-port ([Link#p:*]) register offsets.
	RegLinkID           Addr = mem.LinkID
	RegLinkRXBytes      Addr = mem.LinkRXBytes
	RegLinkRXPackets    Addr = mem.LinkRXPackets
	RegLinkTXBytes      Addr = mem.LinkTXBytes
	RegLinkTXPackets    Addr = mem.LinkTXPackets
	RegLinkDropBytes    Addr = mem.LinkDropBytes
	RegLinkDropPackets  Addr = mem.LinkDropPackets
	RegLinkQueuedBytes  Addr = mem.LinkQueuedBytes
	RegLinkQueuedPkts   Addr = mem.LinkQueuedPkts
	RegLinkRXUtil       Addr = mem.LinkRXUtil
	RegLinkTXUtil       Addr = mem.LinkTXUtil
	RegLinkStatus       Addr = mem.LinkStatus
	RegLinkCapacityMbps Addr = mem.LinkCapacityMbps
	RegLinkAppSpecific0 Addr = mem.LinkAppSpecific0

	// Per-queue ([Queue#p.q:*]) register offsets.
	RegQueueOccPackets Addr = mem.QueueOccPackets
	RegQueueOccBytes   Addr = mem.QueueOccBytes
	RegQueueTXBytes    Addr = mem.QueueTXBytes
	RegQueueTXPackets  Addr = mem.QueueTXPackets

	// Per-stage ([Stage#s:*]) register offsets.
	RegStageVersion  Addr = mem.StageVersion
	RegStageRefCount Addr = mem.StageRefCount

	// Per-matched-entry ([FlowEntry#s:*]) register offsets.
	RegEntryID        Addr = mem.EntryID
	RegEntryMatchPkts Addr = mem.EntryMatchPkts
)

// PortAddr returns the explicit address of register reg on port p, like the
// mnemonic "Link#p:reg".
func PortAddr(port int, reg Addr) Addr { return mem.LinkAddr(port, reg) }

// QueueAddr returns the explicit address of register reg on queue q of port
// p, like "Queue#p.q:reg".
func QueueAddr(port, queue int, reg Addr) Addr { return mem.QueueAddr(port, queue, reg) }

// StageAddr returns the address of register reg of match-action stage s.
func StageAddr(stage int, reg Addr) Addr { return mem.StageAddr(stage, reg) }

// EntryAddr returns the matched-entry register reg at stage s.
func EntryAddr(stage int, reg Addr) Addr { return mem.EntryAddr(stage, reg) }

// InLink returns the input-port dynamic-window address for a per-port
// register offset, like "InLink:reg".
func InLink(reg Addr) Addr { return mem.DynInLinkBase + reg }

// VendorAddr returns the platform-specific address at the given offset into
// the vendor space ("Vendor#off:"), e.g. the in-band route-update registers.
func VendorAddr(off int) Addr { return mem.VendorBase + Addr(off) }
