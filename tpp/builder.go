package tpp

import (
	"fmt"

	"minions/internal/asm"
	"minions/internal/core"
)

// Operand names a packet-memory word in a Builder program: either an
// absolute word (At) or a word inside the current hop's slice (Hop). It is
// the typed equivalent of the assembler's [Packet:3] / [Packet:Hop[3]]
// operands.
type Operand struct {
	off    int
	hopRel bool
}

// At addresses absolute packet-memory word w.
func At(w int) Operand { return Operand{off: w} }

// Hop addresses word w of the current hop's slice; using it anywhere in a
// program selects hop addressing mode, exactly as a Hop[] operand does in
// the assembler.
func Hop(w int) Operand { return Operand{off: w, hopRel: true} }

// Builder constructs a TPP fluently, without parsing strings, and with the
// same header inference the assembler applies (default 5 hops, packet
// memory sized from the instructions). Methods record the first error and
// make every later call a no-op; Build returns it.
//
//	prog, err := tpp.NewProgram().
//	        Push(tpp.SwitchID).
//	        Push(tpp.QueueOccupancy).
//	        Build()
//
// A Builder program and the equivalent assembler text encode to
// byte-identical wire sections.
type Builder struct {
	insns     []core.Instruction
	insnHop   []bool // whether instruction i used Hop operands
	mode      core.AddrMode
	modeSet   bool
	hops      int
	perHop    int
	perHopSet bool
	memWords  int
	memSet    bool
	appID     uint16
	flags     core.Flags
	startHop  int
	initMem   []uint32
	pushSlots int
	err       error
}

// NewProgram starts an empty program in the default (stack) addressing mode
// with memory preallocated for 5 hops, the paper's datacenter path length.
func NewProgram() *Builder {
	return &Builder{mode: core.AddrStack, hops: asm.DefaultHops}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("tpp: "+format, args...)
	}
	return b
}

// Stack selects explicit stack addressing mode.
func (b *Builder) Stack() *Builder {
	b.mode, b.modeSet = core.AddrStack, true
	return b
}

// HopMode selects hop (base:offset) addressing mode. Programs using Hop
// operands get it automatically.
func (b *Builder) HopMode() *Builder {
	b.mode, b.modeSet = core.AddrHop, true
	return b
}

// Hops sets how many hops to preallocate packet memory for (default 5).
func (b *Builder) Hops(n int) *Builder {
	if n < 1 || n > 64 {
		return b.fail("hops %d out of range", n)
	}
	b.hops = n
	return b
}

// PerHop fixes the per-hop record size in words (hop mode; inferred from
// operands when unset).
func (b *Builder) PerHop(words int) *Builder {
	b.perHop, b.perHopSet = words, true
	return b
}

// Mem fixes the total packet-memory size in words (inferred when unset).
func (b *Builder) Mem(words int) *Builder {
	b.memWords, b.memSet = words, true
	return b
}

// AppID sets the wire application handle allocated by TPP-CP.
func (b *Builder) AppID(id uint16) *Builder {
	b.appID = id
	return b
}

// Flags sets header flags (FlagReflect, FlagDropNotify, ...).
func (b *Builder) Flags(f Flags) *Builder {
	b.flags |= f
	return b
}

// StartHop sets the initial hop counter / stack pointer (normally 0; large
// values wrap mod 256, the trick SplitCollect-style windowed programs use).
func (b *Builder) StartHop(n int) *Builder {
	b.startHop = n & 0xFF
	return b
}

// Init appends initial packet-memory words, the assembler's .word block.
func (b *Builder) Init(words ...uint32) *Builder {
	b.initMem = append(b.initMem, words...)
	return b
}

// operand validates an Operand's range.
func (b *Builder) operand(o Operand, what string) (uint8, bool) {
	if o.off < 0 || o.off > core.MaxOperand {
		b.fail("%s operand %d outside 0..%d", what, o.off, core.MaxOperand)
		return 0, false
	}
	return uint8(o.off), true
}

// add appends an instruction, tracking whether it used hop addressing.
func (b *Builder) add(in core.Instruction, usedHop bool) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.insns) >= core.MaxInsns {
		return b.fail("more than %d instructions (the line-rate bound of §3)", core.MaxInsns)
	}
	b.insns = append(b.insns, in)
	b.insnHop = append(b.insnHop, usedHop)
	return b
}

// Nop appends a NOP.
func (b *Builder) Nop() *Builder { return b.add(core.Instruction{Op: core.OpNOP}, false) }

// Halt appends a HALT: unconditionally stop executing this TPP.
func (b *Builder) Halt() *Builder { return b.add(core.Instruction{Op: core.OpHALT}, false) }

// Push appends PUSH [a]: copy switch memory onto the packet's stack (stack
// mode) or into this instruction's preassigned per-hop slot (hop mode).
func (b *Builder) Push(a Addr) *Builder {
	in := core.Instruction{Op: core.OpPUSH, Addr: a, A: uint8(b.pushSlots)}
	b.pushSlots++
	return b.add(in, false)
}

// Pop appends POP [a]: write the top of the packet stack to switch memory.
func (b *Builder) Pop(a Addr) *Builder {
	in := core.Instruction{Op: core.OpPOP, Addr: a, A: uint8(b.pushSlots)}
	b.pushSlots++
	return b.add(in, false)
}

// Load appends LOAD [a], dst: copy switch memory into packet word dst.
func (b *Builder) Load(a Addr, dst Operand) *Builder {
	if b.err != nil {
		return b
	}
	off, ok := b.operand(dst, "LOAD")
	if !ok {
		return b
	}
	return b.add(core.Instruction{Op: core.OpLOAD, Addr: a, A: off}, dst.hopRel)
}

// LoadIndirect appends LOADI dst, addrFrom: read the switch address from
// packet word addrFrom, then copy that switch word into dst (§8's
// device-heterogeneity indirection).
func (b *Builder) LoadIndirect(dst, addrFrom Operand) *Builder {
	if b.err != nil {
		return b
	}
	d, ok1 := b.operand(dst, "LOADI dst")
	s, ok2 := b.operand(addrFrom, "LOADI addr")
	if !ok1 || !ok2 {
		return b
	}
	return b.add(core.Instruction{Op: core.OpLOADI, A: d, B: s}, dst.hopRel || addrFrom.hopRel)
}

// Store appends STORE [a], src: write packet word src to switch memory.
func (b *Builder) Store(a Addr, src Operand) *Builder {
	if b.err != nil {
		return b
	}
	off, ok := b.operand(src, "STORE")
	if !ok {
		return b
	}
	return b.add(core.Instruction{Op: core.OpSTORE, Addr: a, A: off}, src.hopRel)
}

// CStore appends CSTORE [a], old, new: atomically write packet word new to
// switch memory if it currently equals packet word old, writing the observed
// switch value back into old either way; on failure the TPP halts (§3.3.3).
func (b *Builder) CStore(a Addr, old, new Operand) *Builder {
	if b.err != nil {
		return b
	}
	o, ok1 := b.operand(old, "CSTORE old")
	n, ok2 := b.operand(new, "CSTORE new")
	if !ok1 || !ok2 {
		return b
	}
	return b.add(core.Instruction{Op: core.OpCSTORE, Addr: a, A: o, B: n}, old.hopRel || new.hopRel)
}

// CExec appends CEXEC [a], expect: halt the TPP unless switch memory equals
// packet word expect — the guard used for targeted execution (§4.4).
func (b *Builder) CExec(a Addr, expect Operand) *Builder {
	if b.err != nil {
		return b
	}
	v, ok := b.operand(expect, "CEXEC")
	if !ok {
		return b
	}
	return b.add(core.Instruction{Op: core.OpCEXEC, Addr: a, A: v, B: v}, expect.hopRel)
}

// CExecMasked appends CEXEC [a], expect, mask: halt unless
// (switch[a] & packet[mask]) == packet[expect]. The mask must name a
// different packet word than expect: B==A encodes "no mask" on the wire, so
// a masked compare through the same word is unrepresentable and rejected
// rather than silently degraded to CExec's exact equality.
func (b *Builder) CExecMasked(a Addr, expect, mask Operand) *Builder {
	if b.err != nil {
		return b
	}
	v, ok1 := b.operand(expect, "CEXEC expect")
	m, ok2 := b.operand(mask, "CEXEC mask")
	if !ok1 || !ok2 {
		return b
	}
	if m == v {
		return b.fail("CEXEC mask operand must differ from the expect operand (B==A means no mask on the wire); use CExec for an exact compare")
	}
	return b.add(core.Instruction{Op: core.OpCEXEC, Addr: a, A: v, B: m}, expect.hopRel || mask.hopRel)
}

// Build applies the assembler's header-inference rules and returns the
// finished program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.insns) == 0 {
		return nil, fmt.Errorf("tpp: no instructions")
	}

	sawHop := false
	maxHopOff, maxAbsOff := -1, -1
	pushes := 0
	for i, in := range b.insns {
		usedHop := b.insnHop[i]
		if usedHop {
			sawHop = true
		}
		switch {
		case usedHop && int(in.A) > maxHopOff:
			maxHopOff = int(in.A)
		case !usedHop && in.Op != core.OpPUSH && in.Op != core.OpPOP &&
			in.Op != core.OpNOP && in.Op != core.OpHALT && int(in.A) > maxAbsOff:
			maxAbsOff = int(in.A)
		}
		if usedHop && int(in.B) > maxHopOff {
			maxHopOff = int(in.B)
		}
		if !usedHop && (in.Op == core.OpCSTORE || in.Op == core.OpLOADI ||
			in.Op == core.OpCEXEC) && int(in.B) > maxAbsOff {
			// The assembler cannot express an absolute B beyond what .mem
			// covers; the Builder sizes memory to include it.
			maxAbsOff = int(in.B)
		}
		if in.Op == core.OpPUSH {
			pushes++
		}
	}

	p := &core.Program{
		Mode:        b.mode,
		PerHopWords: b.perHop,
		MemWords:    b.memWords,
		AppID:       b.appID,
		Flags:       b.flags,
		StartHop:    b.startHop,
		InitMem:     append([]uint32(nil), b.initMem...),
		Insns:       append([]core.Instruction(nil), b.insns...),
	}

	if !b.modeSet && sawHop {
		p.Mode = core.AddrHop
	}
	if p.Mode == core.AddrStack && sawHop {
		return nil, fmt.Errorf("tpp: Hop operands require hop addressing mode")
	}

	if p.Mode == core.AddrHop {
		if !b.perHopSet {
			need := maxHopOff + 1
			if b.pushSlots > need {
				need = b.pushSlots
			}
			if need <= 0 {
				need = 1
			}
			p.PerHopWords = need
		}
		if !b.memSet {
			p.MemWords = p.PerHopWords * b.hops
		}
	} else if !b.memSet {
		words := pushes * b.hops
		if maxAbsOff+1 > words {
			words = maxAbsOff + 1
		}
		if len(p.InitMem) > words {
			words = len(p.InitMem)
		}
		if words == 0 {
			words = 1
		}
		p.MemWords = words
	}
	if p.MemWords > core.MaxMemWords {
		return nil, fmt.Errorf("tpp: packet memory of %d words exceeds the maximum %d", p.MemWords, core.MaxMemWords)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for programs known valid at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Encode builds the program and serializes it to a wire section.
func (b *Builder) Encode() (Section, error) {
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return p.Encode()
}
