// Package tpp is the public API for tiny packet programs: the wire format,
// instruction set, program construction and execution engine of "Millions of
// Little Minions: Using Packets for Low Latency Network Programming and
// Visibility" (SIGCOMM 2014).
//
// A TPP is a ≤5-instruction program embedded in a packet header that
// switches execute in the dataplane against a memory-mapped view of their
// state. The package offers two equivalent ways to construct one.
//
// The typed Builder composes programs from exported address constants, with
// no string parsing anywhere near a hot path:
//
//	prog, err := tpp.NewProgram().
//	        Push(tpp.SwitchID).
//	        Push(tpp.QueueOccupancy).
//	        Build()
//	section, err := prog.Encode()
//
// The assembler accepts the paper's pseudo-assembly verbatim and produces
// byte-identical sections for equivalent programs; Disassemble renders any
// program back to text that reassembles to the same bytes:
//
//	prog, err := tpp.Assemble(`
//	    PUSH [Switch:SwitchID]
//	    PUSH [Queue:QueueOccupancy]
//	`)
//
// Execution is hop by hop, in place, against any SwitchMemory. One-shot:
//
//	tpp.Exec(section, &tpp.Env{Mem: mySwitchView})
//
// Hot paths — a switch forwarding instrumented traffic, a batch processor
// draining a queue — hold a reusable Executor instead, which caches the
// decoded instructions and allocates nothing per executed hop:
//
//	ex := tpp.NewExecutor(tpp.Env{Mem: mySwitchView})
//	res := ex.Exec(section)                  // 0 allocs/op once cached
//	results = ex.ExecBatch(batch, results[:0]) // amortized across a batch
//
// The types here alias the implementation in internal/*; see package tppnet
// for standing up simulated TPP-capable networks and package testbed for the
// paper's experiment runners.
package tpp

import (
	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/mem"
)

// Wire-format types.
type (
	// Program is a decoded/builder-side TPP.
	Program = core.Program
	// Section is a raw TPP section manipulated in place.
	Section = core.Section
	// Instruction is one decoded instruction word.
	Instruction = core.Instruction
	// Opcode identifies a TPP instruction.
	Opcode = core.Opcode
	// AddrMode selects stack or hop packet-memory addressing.
	AddrMode = core.AddrMode
	// Flags is the TPP header flag byte.
	Flags = core.Flags
	// HopView is one hop's slice of collected statistics.
	HopView = core.HopView
	// Addr is a 16-bit switch memory address.
	Addr = mem.Addr
	// SwitchMemory is the execution-time view of switch state.
	SwitchMemory = core.SwitchMemory
	// Env is the per-hop execution environment.
	Env = core.Env
	// Result summarizes one hop's execution.
	Result = core.Result
	// Executor is a reusable TCPU: it caches decoded instructions and
	// allocates nothing per executed hop.
	Executor = core.Executor
	// ExecContext is the pre-allocated scratch inside an Executor.
	ExecContext = core.ExecContext
	// HaltReason says why execution stopped early.
	HaltReason = core.HaltReason
	// MapMemory is a map-backed SwitchMemory for tests and demos.
	MapMemory = core.MapMemory
	// Frame is a decoded Ethernet frame from the Figure 7a parse graph.
	Frame = core.Frame
	// MAC is an Ethernet address.
	MAC = core.MAC
)

// Instruction opcodes (Table 1 of the paper).
const (
	OpNOP    = core.OpNOP
	OpLOAD   = core.OpLOAD
	OpSTORE  = core.OpSTORE
	OpPUSH   = core.OpPUSH
	OpPOP    = core.OpPOP
	OpCSTORE = core.OpCSTORE
	OpCEXEC  = core.OpCEXEC
	OpHALT   = core.OpHALT
	OpLOADI  = core.OpLOADI
)

// Addressing modes and header flags.
const (
	AddrStack      = core.AddrStack
	AddrHop        = core.AddrHop
	FlagReflect    = core.FlagReflect
	FlagDropNotify = core.FlagDropNotify
	FlagEchoed     = core.FlagEchoed
)

// Wire-format constants.
const (
	Version      = core.Version
	HeaderLen    = core.HeaderLen
	InsnSize     = core.InsnSize
	WordSize     = core.WordSize
	MaxInsns     = core.MaxInsns
	EtherTypeTPP = core.EtherTypeTPP
	UDPPortTPP   = core.UDPPortTPP
)

// Assemble parses the paper's pseudo-assembly into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble for programs known valid at compile time.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// Disassemble renders a Program back to assembler text.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// Decode parses and checksum-verifies a TPP section.
func Decode(b []byte) (*Program, error) { return core.Decode(b) }

// Exec runs one hop of a TPP in place against env. It re-validates and
// re-decodes the section every call; hot paths should hold a NewExecutor.
func Exec(s Section, env *Env) Result { return core.Exec(s, env) }

// NewExecutor returns a reusable TCPU bound to env: decoded instructions
// are cached across hops and the execute path performs no allocation.
func NewExecutor(env Env) *Executor { return core.NewExecutor(env) }

// ResolveAddr maps a mnemonic like "Queue:QueueOccupancy" to its address.
func ResolveAddr(name string) (Addr, error) { return mem.Resolve(name) }

// AddrMnemonic names an address if it has a canonical mnemonic.
func AddrMnemonic(a Addr) (string, bool) { return mem.Mnemonic(a) }

// ParseFrame decodes an Ethernet frame along the Figure 7a parse graph.
func ParseFrame(b []byte) (Frame, error) { return core.ParseFrame(b) }

// BuildTransparent assembles an Ethernet(0x6666)|TPP|payload frame.
func BuildTransparent(dst, src MAC, s Section, payload []byte) []byte {
	return core.BuildTransparent(dst, src, s, payload)
}

// BuildStandalone assembles an Ethernet|IPv4|UDP(0x6666)|TPP probe frame.
func BuildStandalone(dst, src MAC, srcIP, dstIP [4]byte, srcPort uint16, s Section) []byte {
	return core.BuildStandalone(dst, src, srcIP, dstIP, srcPort, s)
}
