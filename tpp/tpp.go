// Package tpp is the public API for tiny packet programs: the wire format,
// instruction set, assembler and execution engine of "Millions of Little
// Minions: Using Packets for Low Latency Network Programming and Visibility"
// (SIGCOMM 2014).
//
// A TPP is a ≤5-instruction program embedded in a packet header that
// switches execute in the dataplane against a memory-mapped view of their
// state. Build one from the paper's pseudo-assembly:
//
//	prog, err := tpp.Assemble(`
//	    PUSH [Switch:SwitchID]
//	    PUSH [Queue:QueueOccupancy]
//	`)
//	section, err := prog.Encode()
//
// and execute it hop by hop against any SwitchMemory implementation:
//
//	tpp.Exec(section, &tpp.Env{Mem: mySwitchView})
//
// The types here alias the implementation in internal/*; see package
// testbed for running TPPs over simulated networks.
package tpp

import (
	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/mem"
)

// Wire-format types.
type (
	// Program is a decoded/builder-side TPP.
	Program = core.Program
	// Section is a raw TPP section manipulated in place.
	Section = core.Section
	// Instruction is one decoded instruction word.
	Instruction = core.Instruction
	// Opcode identifies a TPP instruction.
	Opcode = core.Opcode
	// AddrMode selects stack or hop packet-memory addressing.
	AddrMode = core.AddrMode
	// Flags is the TPP header flag byte.
	Flags = core.Flags
	// HopView is one hop's slice of collected statistics.
	HopView = core.HopView
	// Addr is a 16-bit switch memory address.
	Addr = mem.Addr
	// SwitchMemory is the execution-time view of switch state.
	SwitchMemory = core.SwitchMemory
	// Env is the per-hop execution environment.
	Env = core.Env
	// Result summarizes one hop's execution.
	Result = core.Result
	// MapMemory is a map-backed SwitchMemory for tests and demos.
	MapMemory = core.MapMemory
	// Frame is a decoded Ethernet frame from the Figure 7a parse graph.
	Frame = core.Frame
	// MAC is an Ethernet address.
	MAC = core.MAC
)

// Instruction opcodes (Table 1 of the paper).
const (
	OpNOP    = core.OpNOP
	OpLOAD   = core.OpLOAD
	OpSTORE  = core.OpSTORE
	OpPUSH   = core.OpPUSH
	OpPOP    = core.OpPOP
	OpCSTORE = core.OpCSTORE
	OpCEXEC  = core.OpCEXEC
	OpHALT   = core.OpHALT
	OpLOADI  = core.OpLOADI
)

// Addressing modes and header flags.
const (
	AddrStack      = core.AddrStack
	AddrHop        = core.AddrHop
	FlagReflect    = core.FlagReflect
	FlagDropNotify = core.FlagDropNotify
	FlagEchoed     = core.FlagEchoed
)

// Wire-format constants.
const (
	Version      = core.Version
	HeaderLen    = core.HeaderLen
	InsnSize     = core.InsnSize
	WordSize     = core.WordSize
	MaxInsns     = core.MaxInsns
	EtherTypeTPP = core.EtherTypeTPP
	UDPPortTPP   = core.UDPPortTPP
)

// Assemble parses the paper's pseudo-assembly into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble for programs known valid at compile time.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// Disassemble renders a Program back to assembler text.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// Decode parses and checksum-verifies a TPP section.
func Decode(b []byte) (*Program, error) { return core.Decode(b) }

// Exec runs one hop of a TPP in place against env.
func Exec(s Section, env *Env) Result { return core.Exec(s, env) }

// ResolveAddr maps a mnemonic like "Queue:QueueOccupancy" to its address.
func ResolveAddr(name string) (Addr, error) { return mem.Resolve(name) }

// AddrMnemonic names an address if it has a canonical mnemonic.
func AddrMnemonic(a Addr) (string, bool) { return mem.Mnemonic(a) }

// ParseFrame decodes an Ethernet frame along the Figure 7a parse graph.
func ParseFrame(b []byte) (Frame, error) { return core.ParseFrame(b) }

// BuildTransparent assembles an Ethernet(0x6666)|TPP|payload frame.
func BuildTransparent(dst, src MAC, s Section, payload []byte) []byte {
	return core.BuildTransparent(dst, src, s, payload)
}

// BuildStandalone assembles an Ethernet|IPv4|UDP(0x6666)|TPP probe frame.
func BuildStandalone(dst, src MAC, srcIP, dstIP [4]byte, srcPort uint16, s Section) []byte {
	return core.BuildStandalone(dst, src, srcIP, dstIP, srcPort, s)
}
