package tpp_test

import (
	"bytes"
	"fmt"

	"minions/tpp"
)

// ExampleBuilder constructs the paper's §2.1 micro-burst program with the
// typed Builder — no string parsing — and renders it back as the exact
// pseudo-assembly the assembler accepts.
func ExampleBuilder() {
	prog := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.OutputPort).
		Push(tpp.QueueOccupancy).
		MustBuild()
	fmt.Print(tpp.Disassemble(prog))
	fmt.Printf("wire size: %d bytes\n", prog.WireLen())
	// Output:
	// .mode stack
	// .mem 15
	// PUSH [Switch:SwitchID]
	// PUSH [PacketMetadata:OutputPort]
	// PUSH [Queue:QueueOccupancy]
	// wire size: 84 bytes
}

// ExampleAssemble shows that the assembler and the Builder are two spellings
// of the same program: equivalent sources encode to byte-identical sections.
func ExampleAssemble() {
	fromText, err := tpp.Assemble(`
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueOccupancy]
	`)
	if err != nil {
		panic(err)
	}
	fromBuilder := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.QueueOccupancy).
		MustBuild()
	a, _ := fromText.Encode()
	b, _ := fromBuilder.Encode()
	fmt.Println("byte-identical:", bytes.Equal(a, b))
	// Output:
	// byte-identical: true
}

// ExampleNewExecutor runs a TPP hop by hop through the reusable executor —
// the allocation-free path a switch uses per forwarded packet — collecting
// one stack record per hop.
func ExampleNewExecutor() {
	section, err := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.QueueOccupancy).
		Encode()
	if err != nil {
		panic(err)
	}

	// Two hops with different switch state.
	hop1 := tpp.MapMemory{tpp.SwitchID: 1, tpp.QueueOccupancy: 3}
	hop2 := tpp.MapMemory{tpp.SwitchID: 2, tpp.QueueOccupancy: 11}

	ex := tpp.NewExecutor(tpp.Env{Mem: hop1})
	ex.Exec(section) // decodes and caches the program
	ex.Env().Mem = hop2
	ex.Exec(section) // 0 allocs: cache hit

	for _, hop := range section.StackView(2) {
		fmt.Printf("switch %d: queue %d pkts\n", hop.Words[0], hop.Words[1])
	}
	// Output:
	// switch 1: queue 3 pkts
	// switch 2: queue 11 pkts
}
