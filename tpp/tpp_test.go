package tpp_test

import (
	"testing"

	"minions/tpp"
)

func TestPublicAssembleExecute(t *testing.T) {
	prog, err := tpp.Assemble(`
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueOccupancy]
	`)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	qAddr, err := tpp.ResolveAddr("Queue:QueueOccupancy")
	if err != nil {
		t.Fatal(err)
	}
	memory := tpp.MapMemory{0x0000: 7, qAddr: 12}
	res := tpp.Exec(sec, &tpp.Env{Mem: memory})
	if res.Halted || res.Executed != 2 {
		t.Fatalf("exec: %+v", res)
	}
	if sec.Word(0) != 7 || sec.Word(1) != 12 {
		t.Errorf("collected %d %d", sec.Word(0), sec.Word(1))
	}
	if name, ok := tpp.AddrMnemonic(qAddr); !ok || name != "Queue:QueueOccupancy" {
		t.Errorf("mnemonic: %q %v", name, ok)
	}
}

func TestPublicFrameRoundTrip(t *testing.T) {
	prog := tpp.MustAssemble(`PUSH [Switch:SwitchID]`)
	sec, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	src := tpp.MAC{1, 2, 3, 4, 5, 6}
	dst := tpp.MAC{7, 8, 9, 10, 11, 12}
	frame := tpp.BuildStandalone(dst, src, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 4000, sec)
	f, err := tpp.ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.TPP == nil || f.UDP.DstPort != tpp.UDPPortTPP {
		t.Fatalf("frame: %+v", f)
	}
	back, err := tpp.Decode(f.TPP)
	if err != nil {
		t.Fatal(err)
	}
	if tpp.Disassemble(back) != tpp.Disassemble(prog) {
		t.Error("disassembly changed across the wire")
	}
}
