// RCP* fairness (§2.2, Figure 2): three flows on two bottleneck links reach
// max-min or proportional-fair allocations depending only on how end-hosts
// aggregate the per-link rates the TPPs collect — the network never changes.
package main

import (
	"fmt"
	"log"

	"minions/testbed"
)

func main() {
	res, err := testbed.RunFig2(8*testbed.Second, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
}
