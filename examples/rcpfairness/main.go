// RCP* fairness (§2.2, Figure 2): three flows on two bottleneck links reach
// max-min or proportional-fair allocations depending only on how end-hosts
// aggregate the per-link rates the TPPs collect — the network never
// changes. Deployed through the public apps/rcp minion: the same network
// runs both fairness criteria by changing one end-host config value.
package main

import (
	"fmt"
	"log"
	"math"

	"minions/apps/rcp"
	"minions/tppnet"
)

// run deploys RCP* at the given alpha on a fresh two-bottleneck chain and
// returns the three flows' steady-state rates (final second) in Mb/s.
func run(alpha float64) [3]float64 {
	n := tppnet.NewNetwork(tppnet.WithSeed(6))
	hosts, _ := n.Chain(100)
	sys := rcp.New(rcp.Config{Alpha: alpha, CapacityMbps: 100})
	if err := sys.Attach(n, nil); err != nil {
		log.Fatal(err)
	}
	// a: host0->host3 crosses both links; b and c cross one each.
	var sinks [3]*tppnet.Sink
	pairs := [3][2]int{{0, 3}, {1, 4}, {2, 5}}
	for i, p := range pairs {
		port := uint16(7001 + i)
		sinks[i] = tppnet.NewSink(n.Hosts[p[1]], port, tppnet.ProtoUDP)
		udp := tppnet.NewUDPFlow(n.Hosts[p[0]], hosts[p[1]].ID(), port, port, 1500)
		sys.NewFlow(n.Hosts[p[0]], hosts[p[1]].ID(), udp)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}
	n.RunUntil(7 * tppnet.Second)
	var before [3]uint64
	for i, s := range sinks {
		before[i] = s.Bytes
	}
	n.RunUntil(8 * tppnet.Second)
	if err := sys.Stop(); err != nil {
		log.Fatal(err)
	}
	var out [3]float64
	for i, s := range sinks {
		out[i] = float64(s.Bytes-before[i]) * 8 / 1e6
	}
	return out
}

func main() {
	maxmin := run(math.Inf(1))
	prop := run(1)
	fmt.Println("RCP* fairness (flows a=2 links, b,c=1 link; 100 Mb/s links)")
	fmt.Printf("%-22s a=%5.1f b=%5.1f c=%5.1f   (paper: 50/50/50)\n",
		"max-min Mb/s", maxmin[0], maxmin[1], maxmin[2])
	fmt.Printf("%-22s a=%5.1f b=%5.1f c=%5.1f   (paper: ~33/67/67)\n",
		"proportional Mb/s", prop[0], prop[1], prop[2])
	fmt.Println("same network, same TPPs — only the end-host aggregation changed")
}
