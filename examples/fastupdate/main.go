// Fast network updates (§2.6): a TPP STOREs a new route into a switch's
// vendor route registers as it passes — installing forwarding state in half
// a round trip, no controller round required.
package main

import (
	"fmt"
	"log"

	"minions/tpp"
	"minions/tppnet"
)

func main() {
	// Diamond topology: s1 can reach h1 via s2 or s3; initially pinned to s2.
	n := tppnet.NewNetwork(tppnet.WithSeed(4))
	s1, s2, s3, s4 := n.AddSwitch(4), n.AddSwitch(4), n.AddSwitch(4), n.AddSwitch(4)
	h0, h1 := n.AddHost(), n.AddHost()
	cfg := tppnet.HostLink(1000)
	n.Connect(h0, s1, cfg)
	n.Connect(s1, s2, cfg)
	n.Connect(s1, s3, cfg)
	n.Connect(s2, s4, cfg)
	n.Connect(s3, s4, cfg)
	n.Connect(h1, s4, cfg)
	n.ComputeRoutes()
	s1.AddRoute(h1.ID(), 1) // pin the initial path via s2

	fmt.Printf("before: s1 routes h1 via port %v, table version %d\n",
		s1.RoutePorts(h1.ID()), s1.Version())

	// The update TPP: two STOREs carry (destination, port) — the paper's
	// "only 64 bits of information per-hop". Targeted at s1 by addressing
	// the probe to the switch itself. Built with the typed Builder: word 0
	// holds the destination, word 1 the detour port.
	app := n.CP.RegisterApp("fastupdate")
	n.CP.GrantWrite(app, tppnet.RegRouteUpdateDst, tppnet.RegRouteUpdatePort+1)
	prog, err := tpp.NewProgram().
		Stack().
		Store(tppnet.RegRouteUpdateDst, tpp.At(0)).
		Store(tppnet.RegRouteUpdatePort, tpp.At(1)).
		Init(uint32(h1.ID()), 2). // detour via port 2 (s3)
		Build()
	if err != nil {
		log.Fatal(err)
	}

	if err := h0.ExecuteTPP(app, prog, s1.NodeID(), tppnet.ExecOpts{}, func(v tpp.Section, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}); err != nil {
		log.Fatal(err)
	}
	n.Run()

	fmt.Printf("after:  s1 routes h1 via port %v, table version %d\n",
		s1.RoutePorts(h1.ID()), s1.Version())
	fmt.Println("route installed in half an RTT, in-band — no controller round trip")
}
