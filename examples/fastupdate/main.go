// Fast network updates (§2.6): a TPP STOREs a new route into a switch's
// vendor route registers as it passes — installing forwarding state in half
// a round trip, no controller round required.
package main

import (
	"fmt"
	"log"

	"minions/internal/mem"
	"minions/testbed"
	"minions/tpp"
)

func main() {
	// Diamond topology: s1 can reach h1 via s2 or s3; initially pinned to s2.
	n := testbed.New(4)
	s1, s2, s3, s4 := n.AddSwitch(4), n.AddSwitch(4), n.AddSwitch(4), n.AddSwitch(4)
	h0, h1 := n.AddHost(), n.AddHost()
	cfg := testbed.HostLink(1000)
	n.Connect(h0, s1, cfg)
	n.Connect(s1, s2, cfg)
	n.Connect(s1, s3, cfg)
	n.Connect(s2, s4, cfg)
	n.Connect(s3, s4, cfg)
	n.Connect(h1, s4, cfg)
	n.ComputeRoutes()
	s1.AddRoute(h1.ID(), 1) // pin the initial path via s2

	fmt.Printf("before: s1 routes h1 via port %v, table version %d\n",
		s1.Route(h1.ID()).Ports, s1.Version())

	// The update TPP: two STOREs carry (destination, port) — the paper's
	// "only 64 bits of information per-hop". Targeted at s1 by addressing
	// the probe to the switch itself.
	app := n.CP.RegisterApp("fastupdate")
	n.CP.GrantWrite(app, mem.VendorBase, mem.VendorBase+2)
	prog := tpp.MustAssemble(`
		.mode stack
		.mem 2
		STORE [Vendor#0:], [Packet:0]
		STORE [Vendor#1:], [Packet:1]
	`)
	prog.InitMem = []uint32{uint32(h1.ID()), 2} // detour via port 2 (s3)

	if err := h0.ExecuteTPP(app, prog, s1.NodeID(), testbed.ExecOpts{}, func(v tpp.Section, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}); err != nil {
		log.Fatal(err)
	}
	n.Eng.Run()

	fmt.Printf("after:  s1 routes h1 via port %v, table version %d\n",
		s1.Route(h1.ID()).Ports, s1.Version())
	fmt.Println("route installed in half an RTT, in-band — no controller round trip")
}
