// Capture/replay: record every host transmit of a testbed experiment —
// data packets, attached TPPs, CONGA* standalone probes — into the binary
// trace format, then replay the trace into a rebuilt topology with no
// applications running and verify the experiment tables come back
// byte-identical. The trace file on disk is the same format cmd/tppdump
// decodes, so a captured run can be filtered and inspected offline:
//
//	go run ./examples/capturereplay /tmp/fig4.tpptrace
//	go run ./cmd/tppdump -stats /tmp/fig4.tpptrace
//	go run ./cmd/tppdump -standalone /tmp/fig4.tpptrace
//
// With no argument the traces go to a temp directory and are removed.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"minions/telemetry/trace"
	"minions/testbed"
)

func main() {
	// The CONGA-cell trace lands at the path given on the command line
	// (kept for offline tppdump inspection); the ECMP cell rides along in
	// a temp file.
	dir, err := os.MkdirTemp("", "capturereplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	congaPath := filepath.Join(dir, "fig4-conga.tpptrace")
	if len(os.Args) > 1 {
		congaPath = os.Args[1]
	}
	ecmpPath := filepath.Join(dir, "fig4-ecmp.tpptrace")

	// 1. Run the §2.4 CONGA* experiment (Figure 4) with capture enabled:
	// both cells record every host transmit to their trace writers.
	const dur = 1 * testbed.Second
	o := testbed.SimOpts{Seed: 7}
	ecmpW, congaW := mustCreate(ecmpPath), mustCreate(congaPath)
	live, err := testbed.RunFig4Captured(dur, o, ecmpW, congaW)
	if err != nil {
		log.Fatal(err)
	}
	mustClose(ecmpW, congaW)
	fmt.Println("live run:")
	fmt.Print(live.Table())

	// 2. Decode the captured trace with the telemetry/trace reader — the
	// same records cmd/tppdump pretty-prints.
	f, err := os.Open(congaPath)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	probes := 0
	for i := range recs {
		if recs[i].Standalone() {
			probes++
		}
	}
	fmt.Printf("\ncaptured %d packets on the CONGA cell, %d standalone probes\n", len(recs), probes)

	// 3. Replay: rebuild the topology and sinks, run NO applications, and
	// re-inject the recorded packets at their recorded timestamps. Switch
	// forwarding is a pure function of packet contents, so the replayed
	// tables reproduce the live run exactly.
	ecmpR, congaR := mustOpen(ecmpPath), mustOpen(congaPath)
	replayed, err := testbed.RunFig4Replay(dur, o, ecmpR, congaR)
	if err != nil {
		log.Fatal(err)
	}
	mustClose(ecmpR, congaR)
	fmt.Println("\nreplayed run:")
	fmt.Print(replayed.Table())

	if live.Table() == replayed.Table() {
		fmt.Println("\nreplay is byte-identical to the live run")
	} else {
		log.Fatal("replay diverged from the live run")
	}
}

func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func mustClose(fs ...*os.File) {
	for _, f := range fs {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
