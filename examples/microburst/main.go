// Micro-burst detection (§2.1, Figure 1): instrument every packet of an
// all-to-all workload on a dumbbell network and print the queue-occupancy
// CDF and fractiles that per-packet visibility makes possible.
package main

import (
	"fmt"
	"log"

	"minions/testbed"
)

func main() {
	res, err := testbed.RunFig1(testbed.Fig1Config{
		Hosts:    6,
		RateMbps: 100,
		MsgBytes: 10_000,
		Load:     0.30,
		Duration: 2 * testbed.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Println("\nThe CDF shows queues empty at most packet arrivals yet")
	fmt.Println("occasionally deep — exactly the bursts a poller would miss.")
}
