// Micro-burst detection (§2.1, Figure 1): deploy the public
// apps/microburst minion on a dumbbell network, instrument every packet of
// an all-to-all workload, and print the queue-occupancy fractiles that
// per-packet visibility makes possible — plus a live tap on the typed
// sample stream.
package main

import (
	"fmt"
	"log"

	"minions/apps/microburst"
	"minions/testbed"
	"minions/tppnet"
)

func main() {
	n := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := n.Dumbbell(6, 100)

	// New(cfg) → Attach: the uniform apps/* shape. Collection is passive —
	// every instrumented packet feeds the monitor as it arrives.
	mon := microburst.New(microburst.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		log.Fatal(err)
	}

	// The typed telemetry stream sees each snapshot live; count the deep
	// ones a polling monitor would likely miss.
	deep := 0
	mon.SampleStream().Subscribe(func(s microburst.Sample) {
		if s.Occupancy >= 10 {
			deep++
		}
	})

	testbed.AllToAll(hosts, testbed.AllToAllConfig{
		MsgBytes: 10_000,
		Load:     0.30,
		Duration: 2 * tppnet.Second,
		Seed:     11,
	})
	n.RunUntil(2*tppnet.Second + 100*tppnet.Millisecond)

	fmt.Printf("per-packet queue occupancy (%d samples, TPP adds %d B/pkt)\n",
		mon.Samples(), mon.Overhead())
	fmt.Printf("%-10s %8s %8s %6s %6s %6s\n", "queue", "samples", "empty%", "p50", "p90", "max")
	for _, q := range mon.Queues() {
		c := mon.CDF(q)
		if c.N() < 50 {
			continue
		}
		fmt.Printf("%-10s %8d %7.1f%% %6.1f %6.1f %6.0f\n",
			q.String(), c.N(), mon.EmptyFraction(q)*100, c.Quantile(0.5), c.Quantile(0.9), c.Max())
	}
	fmt.Printf("\nsnapshots >= 10 packets deep: %d\n", deep)
	fmt.Println("Queues are empty at most packet arrivals yet occasionally deep —")
	fmt.Println("exactly the bursts a poller would miss.")
}
