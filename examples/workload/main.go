// Workload: the scriptable traffic engine driving the paper's microburst
// detector. One dumbbell, two phases:
//
//  1. An elephant/mice mix — 90% bursty web-search mice, 10% token-bucket-
//     paced data-mining elephants — the smooth-but-heavy-tailed background a
//     datacenter fabric actually carries.
//  2. A partition-aggregate incast — two aggregators fan requests to the
//     other hosts every 2 ms and the synchronized responses collide at the
//     bottleneck — the §2.1 regime where sampling misses the burst but
//     per-packet TPP telemetry does not.
//
// Both phases run the same microburst monitor (apps/microburst) and render
// the same Figure 1 panels, so the queue-occupancy CDFs are directly
// comparable: the mix keeps most queues mostly-empty; the incast phase
// drives the burst-queue count up. Everything is seeded — same -seed, same
// tables, same fingerprints, across any -shards count.
//
//	go run ./examples/workload
//	go run ./examples/workload -seed 42 -k 8
//
// With -k > 0 the example additionally compiles the canned incast spec onto
// a k-ary fat-tree and prints the workload runner's deterministic
// fingerprint — the line the workload-smoke CI step diffs across reruns.
package main

import (
	"flag"
	"fmt"
	"log"

	"minions/testbed"
	"minions/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "workload seed; same seed, same tables")
	shards := flag.Int("shards", 1, "topology shards (behavior is identical across counts)")
	k := flag.Int("k", 0, "also run the canned incast spec on a k-ary fat-tree and print its fingerprint (0 skips)")
	flag.Parse()

	// Phase 1: elephant/mice message mix on the Figure 1 dumbbell.
	mix := &workload.Spec{Groups: []workload.Group{{
		Name: "mix",
		Messages: &workload.MessageSpec{
			Classes: []workload.Class{
				{Name: "mice", Weight: 0.9,
					Sizes: workload.WebSearch().Clamped(500, 60_000)},
				{Name: "elephants", Weight: 0.1,
					Sizes:   workload.DataMining().Clamped(200_000, 5_000_000),
					RateBps: 40_000_000},
			},
			Load: 0.20,
		},
	}}}
	cfg := testbed.Fig1Config{Duration: 1 * testbed.Second, Seed: *seed, Shards: *shards}
	r1, err := testbed.RunFig1Workload(mix, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== phase 1: elephant/mice mix (web-search + data-mining) ==")
	fmt.Print(r1.Table())

	// Phase 2: partition-aggregate incast on the same dumbbell.
	incast := &workload.Spec{Groups: []workload.Group{{
		Name: "incast",
		Incast: &workload.IncastSpec{
			Aggregators:   []int{0, 1},
			FanIn:         3,
			ResponseBytes: 20_000,
			Period:        2 * testbed.Millisecond,
			Jitter:        200 * testbed.Microsecond,
		},
	}}}
	r2, err := testbed.RunFig1Workload(incast, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== phase 2: partition-aggregate incast (fan-in 3, 2 ms rounds) ==")
	fmt.Print(r2.Table())
	fmt.Printf("\nburst queues: mix %d -> incast %d (synchronized responses collide)\n",
		r1.BurstQueues, r2.BurstQueues)

	if *k > 0 {
		res, err := testbed.RunScaleFatTree(testbed.ScaleConfig{
			K: *k, Duration: 50 * testbed.Millisecond, WithTPP: true,
			Seed: *seed, Shards: *shards,
			Workload: testbed.WorkloadIncastFatTree(*k),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncanned incast on k=%d fat-tree (seed %d):\n%s\n",
			*k, *seed, res.WorkloadFingerprint)
	}
}
