// Distributed measurement (§2.5): end-hosts hash in software, TPPs supply
// the routing context, and a central monitor ORs the per-link bitmap
// sketches — OpenSketch functionality with no sketch hardware in switches,
// deployed through the public apps/sketch minion.
package main

import (
	"fmt"
	"log"

	"minions/apps/sketch"
	"minions/tppnet"
)

func main() {
	n := tppnet.NewNetwork(tppnet.WithSeed(21))
	hosts, _, _ := n.Dumbbell(6, 1000)

	// New(cfg) → Attach → Start: TPPs on 1-in-10 packets, one agent per
	// host, dirty bitmaps pushed to the central monitor every 100 ms.
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		SampleFreq:  10,
		BitsPerLink: 1024,
		PushEvery:   100 * tppnet.Millisecond,
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	// Five distinct sources all talk to host 0.
	h0 := n.Hosts[0]
	h0.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	const srcs = 5
	for i := 1; i <= srcs; i++ {
		src := n.Hosts[i]
		for k := 0; k < 200; k++ {
			src.Send(src.NewPacket(h0.ID(), uint16(1000+k%50), 8000, tppnet.ProtoUDP, 600))
		}
	}
	n.RunUntil(tppnet.Second)
	if err := sys.Stop(); err != nil { // final flush of dirty bitmaps
		log.Fatal(err)
	}
	n.Run()

	best, bestKey := 0.0, sketch.LinkKey{}
	for _, k := range sys.Monitor.Links() {
		if e := sys.Monitor.Estimate(k); e > best {
			best, bestKey = e, k
		}
	}
	ftHosts, ftLinks := tppnet.FatTreeDims(64)
	fmt.Printf("unique sources on busiest link (s%d.p%d): true %d, estimated %.1f\n",
		bestKey.SwitchID, bestKey.Port, srcs, best)
	fmt.Printf("monitor received %d bitmap pushes (%d bytes)\n",
		sys.Monitor.Pushes, sys.Monitor.PushedBytes)
	fmt.Printf("k=64 fat-tree sizing: %d servers, %d core links; 1 kbit/link => %d MB/server\n",
		ftHosts, ftLinks, sketch.MemoryPerServer(ftLinks, 1024)/(1024*1024))
}
