// Distributed measurement (§2.5): end-hosts hash in software, TPPs supply
// the routing context, and a central monitor ORs the per-link bitmap
// sketches — OpenSketch functionality with no sketch hardware in switches.
package main

import (
	"fmt"
	"log"

	"minions/testbed"
)

func main() {
	res, err := testbed.RunSec25()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
}
