// Network debugging with packet histories (§2.3): collect NetSight-style
// histories via TPPs, query them like ndb, check policies like netwatch,
// and localize packet drops from drop notifications.
package main

import (
	"fmt"
	"log"

	"minions/testbed"
)

func main() {
	n := testbed.New(7)
	hosts, left, _ := testbed.Dumbbell(n, 4, 100)
	d, err := testbed.DeployNetSight(n.CP, hosts, n.Switches, testbed.FilterSpec{Proto: 17}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// netwatch: live isolation policy between host 0 and host 3.
	violations := testbed.Netwatch(d.Collector, testbed.IsolationPolicy(
		map[testbed.NodeID]bool{hosts[0].ID(): true},
		map[testbed.NodeID]bool{hosts[3].ID(): true},
	))

	for _, h := range hosts {
		h.Bind(9000, 17, func(p *testbed.Packet) {})
	}
	// Legitimate same-side traffic plus a policy-violating cross flow.
	hosts[0].Send(hosts[0].NewPacket(hosts[1].ID(), 100, 9000, 17, 400))
	hosts[0].Send(hosts[0].NewPacket(hosts[3].ID(), 101, 9000, 17, 400))
	hosts[2].Send(hosts[2].NewPacket(hosts[3].ID(), 102, 9000, 17, 400))
	n.Run()

	fmt.Printf("collected %d packet histories\n", d.Collector.Len())
	for _, h := range d.Collector.TraversedSwitch(left.ID()) {
		fmt.Printf("  via switch %d: flow %v path %s\n", left.ID(), h.Flow, h.Path())
	}
	fmt.Printf("\nnetwatch violations: %d\n", len(*violations))
	for _, v := range *violations {
		fmt.Printf("  [%s] %s\n", v.Policy, v.Detail)
	}
}
