// Network debugging with packet histories (§2.3): collect NetSight-style
// histories via the public apps/ndb minion, query them like ndb, check
// policies live through the typed violation stream, and localize packet
// drops from drop notifications.
package main

import (
	"fmt"
	"log"

	"minions/apps/ndb"
	"minions/tppnet"
	"minions/tppnet/app"
)

func main() {
	n := tppnet.NewNetwork(tppnet.WithSeed(7))
	hosts, left, _ := n.Dumbbell(4, 100)

	// Deploy the packet-history minion on every host's UDP traffic:
	// New(cfg) → Attach is the uniform shape of every apps/* application.
	d := ndb.New(ndb.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := d.Attach(n, nil); err != nil {
		log.Fatal(err)
	}

	// netwatch: live isolation policy between host 0 and host 3, consumed
	// from the typed violation stream.
	violations := app.Collect(d.Watch(ndb.IsolationPolicy(
		map[tppnet.NodeID]bool{hosts[0].ID(): true},
		map[tppnet.NodeID]bool{hosts[3].ID(): true},
	)))

	for _, h := range hosts {
		h.Bind(9000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	}
	// Legitimate same-side traffic plus a policy-violating cross flow.
	hosts[0].Send(hosts[0].NewPacket(hosts[1].ID(), 100, 9000, tppnet.ProtoUDP, 400))
	hosts[0].Send(hosts[0].NewPacket(hosts[3].ID(), 101, 9000, tppnet.ProtoUDP, 400))
	hosts[2].Send(hosts[2].NewPacket(hosts[3].ID(), 102, 9000, tppnet.ProtoUDP, 400))
	n.Run()

	fmt.Printf("collected %d packet histories\n", d.Collector.Len())
	for _, h := range d.Collector.TraversedSwitch(left.ID()) {
		fmt.Printf("  via switch %d: flow %v path %s\n", left.ID(), h.Flow, h.Path())
	}
	fmt.Printf("\nnetwatch violations: %d\n", len(*violations))
	for _, v := range *violations {
		fmt.Printf("  [%s] %s\n", v.Policy, v.Detail)
	}
}
