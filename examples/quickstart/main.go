// Quickstart: assemble the paper's micro-burst TPP, attach it to traffic
// crossing a tiny two-switch network, and read back per-hop switch state —
// the end-to-end "hello, minions" of the TPP interface.
package main

import (
	"fmt"
	"log"

	"minions/testbed"
	"minions/tpp"
)

func main() {
	// 1. Assemble a TPP from the paper's pseudo-assembly (§2.1).
	prog, err := tpp.Assemble(`
		PUSH [Switch:SwitchID]
		PUSH [PacketMetadata:OutputPort]
		PUSH [Queue:QueueOccupancy]
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled program:")
	fmt.Print(tpp.Disassemble(prog))
	fmt.Printf("wire size: %d bytes\n\n", prog.WireLen())

	// 2. Build a network: h1 - s1 - s2 - h2 at 1 Gb/s.
	n := testbed.New(1)
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	cfg := testbed.HostLink(1000)
	n.Connect(h1, s1, cfg)
	n.Connect(h2, s2, cfg)
	n.Connect(s1, s2, cfg)
	n.ComputeRoutes()

	// 3. Register the app with TPP-CP and install the TPP on UDP traffic.
	app := n.CP.RegisterApp("quickstart")
	if _, err := h1.AddTPP(app, testbed.FilterSpec{Proto: 17}, prog, 1, 0); err != nil {
		log.Fatal(err)
	}

	// 4. The receiving host's aggregator sees every executed TPP.
	h2.RegisterAggregator(app.Wire, func(p *testbed.Packet, view tpp.Section) {
		fmt.Printf("packet %d executed on %d hops:\n", p.ID, view.HopOrSP()/3)
		for _, hop := range view.StackView(3) {
			fmt.Printf("  switch %d: out port %d, queue %d pkts\n",
				hop.Words[0], hop.Words[1], hop.Words[2])
		}
	})
	h2.Bind(9000, 17, func(p *testbed.Packet) {})

	// 5. Send a few packets and run the simulation.
	for i := 0; i < 3; i++ {
		h1.Send(h1.NewPacket(h2.ID(), 5000, 9000, 17, 1000))
	}
	n.Eng.Run()
}
