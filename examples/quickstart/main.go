// Quickstart: build the paper's micro-burst TPP with the typed Builder,
// attach it to traffic crossing a tiny two-switch network via the tppnet
// facade, and read back per-hop switch state — the end-to-end "hello,
// minions" of the TPP interface.
package main

import (
	"fmt"
	"log"

	"minions/tpp"
	"minions/tppnet"
)

func main() {
	// 1. Build a TPP with the typed Builder (§2.1's program). The same
	// program can be written in the paper's pseudo-assembly with
	// tpp.Assemble; both forms encode to identical wire bytes.
	prog, err := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.OutputPort).
		Push(tpp.QueueOccupancy).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built program:")
	fmt.Print(tpp.Disassemble(prog))
	fmt.Printf("wire size: %d bytes\n\n", prog.WireLen())

	// 2. Build a network: h1 - s1 - s2 - h2 at 1 Gb/s.
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	cfg := tppnet.HostLink(1000)
	n.Connect(h1, s1, cfg)
	n.Connect(h2, s2, cfg)
	n.Connect(s1, s2, cfg)
	n.ComputeRoutes()

	// 3. Register the app with TPP-CP and install the TPP on UDP traffic.
	app := n.CP.RegisterApp("quickstart")
	if _, err := h1.AddTPP(app, tppnet.FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
		log.Fatal(err)
	}

	// 4. The receiving host's aggregator sees every executed TPP.
	h2.RegisterAggregator(app.Wire, func(p *tppnet.Packet, view tpp.Section) {
		fmt.Printf("packet %d executed on %d hops:\n", p.ID, view.HopOrSP()/3)
		for _, hop := range view.StackView(3) {
			fmt.Printf("  switch %d: out port %d, queue %d pkts\n",
				hop.Words[0], hop.Words[1], hop.Words[2])
		}
	})
	h2.Bind(9000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})

	// 5. Send a few packets and run the simulation.
	for i := 0; i < 3; i++ {
		h1.Send(h1.NewPacket(h2.ID(), 5000, 9000, tppnet.ProtoUDP, 1000))
	}
	n.Run()
}
