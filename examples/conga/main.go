// CONGA* load balancing (§2.4, Figure 4): congestion-aware flowlet routing
// from TPP link-utilization probes meets both demands and lowers the peak
// fabric utilization, while static ECMP saturates one path.
package main

import (
	"fmt"
	"log"

	"minions/testbed"
)

func main() {
	res, err := testbed.RunFig4(4*testbed.Second, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
}
