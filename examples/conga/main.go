// CONGA* load balancing (§2.4, Figure 4): congestion-aware flowlet routing
// from TPP link-utilization probes meets both demands and lowers the peak
// fabric utilization, while static ECMP saturates one path. Deployed
// through the public apps/conga minion.
package main

import (
	"fmt"
	"log"

	"minions/apps/conga"
	"minions/tppnet"
)

// run drives the Figure 4 workload (demands 50 and 120 Mb/s into one
// 100 Mb/s-link leaf-spine fabric), optionally balanced by CONGA*.
func run(useConga bool) (thr0, thr1, maxUtilPct float64) {
	n := tppnet.NewNetwork(tppnet.WithSeed(14))
	hosts, _, _ := n.LeafSpine(100)
	h0, h1, h2 := hosts[0], hosts[1], hosts[2]

	sink0 := tppnet.NewSink(h2, 7100, tppnet.ProtoUDP)
	sink1 := tppnet.NewSink(h2, 7200, tppnet.ProtoUDP)
	f0 := tppnet.NewUDPFlow(h0, h2.ID(), 7100, 7100, 1500)
	f0.SetRateBps(50_000_000)
	var subs []*tppnet.UDPFlow
	for i := 0; i < 8; i++ {
		f := tppnet.NewUDPFlow(h1, h2.ID(), uint16(7200+i), 7200, 1500)
		f.SetRateBps(15_000_000)
		subs = append(subs, f)
	}

	if useConga {
		bal := conga.New(conga.Config{Host: h1, Dst: h2.ID(), Agg: conga.AggMax})
		if err := bal.Attach(n, nil); err != nil {
			log.Fatal(err)
		}
		if err := bal.Start(); err != nil {
			log.Fatal(err)
		}
		tg := bal.Tagger()
		for _, f := range subs {
			f.Tagger = tg
		}
		defer bal.Stop()
	}

	f0.Start()
	for _, f := range subs {
		f.Start()
	}
	n.RunUntil(3 * tppnet.Second)
	b0, b1 := sink0.Bytes, sink1.Bytes
	maxPm := uint32(0)
	for i := 0; i < 10; i++ {
		n.RunUntil(3*tppnet.Second + tppnet.Time(i+1)*100*tppnet.Millisecond)
		for _, l := range n.Links() {
			if l.RateMbps() != 100 {
				continue // fabric links only
			}
			if pm := l.UtilPermille(); pm > maxPm {
				maxPm = pm
			}
		}
	}
	return float64(sink0.Bytes-b0) * 8 / 1e6, float64(sink1.Bytes-b1) * 8 / 1e6, float64(maxPm) / 10
}

func main() {
	e0, e1, eu := run(false)
	c0, c1, cu := run(true)
	fmt.Println("CONGA* vs ECMP (demands: L0->L2 50, L1->L2 120 Mb/s)")
	fmt.Printf("%-8s thr %5.1f / %5.1f Mb/s, max fabric util %3.0f%%   (paper: 45/115, 100%%)\n", "ECMP", e0, e1, eu)
	fmt.Printf("%-8s thr %5.1f / %5.1f Mb/s, max fabric util %3.0f%%   (paper: 50/115,  85%%)\n", "CONGA*", c0, c1, cu)
}
