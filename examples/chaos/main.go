// Chaos: the fault-tolerance story end to end. A k=4 fat-tree carries
// RCP* flows and a CONGA*-balanced transfer while the deterministic fault
// plane tears at it — background loss and jitter everywhere, a flapping
// core uplink, then a scripted pod-0 uplink cut and a core switch halt —
// until the horizon restores everything and the run measures recovery:
// CONGA* must detect and route around the dead paths, RCP* must decay
// stale rate state and re-converge, and not one pool packet may leak.
//
// The whole scenario is seeded. Re-running with the same -seed reproduces
// the table byte for byte (testbed.RunChaos is the same scenario the
// chaos-smoke CI job and TestChaosDeterminism pin); a different seed gives
// a different — equally reproducible — storm:
//
//	go run ./examples/chaos
//	go run ./examples/chaos -seed 42 -shards 2
package main

import (
	"flag"
	"fmt"
	"log"

	"minions/testbed"
)

func main() {
	seed := flag.Int64("seed", 1, "fault-plane seed; same seed, same table")
	shards := flag.Int("shards", 1, "topology shards (behavior is identical across counts)")
	flag.Parse()

	res, err := testbed.RunChaos(testbed.ChaosConfig{Seed: *seed, Shards: *shards})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Printf("\nfingerprint (stable for -seed %d):\n%s\n", *seed, res.Fingerprint())
}
