package rcp

import "minions/telemetry"

// Export bridges the system's rate stream into a telemetry pipeline as
// Records of App "rcp", Kind "rate": Node is the sending host, Val the
// flow's current rate in Mb/s, Aux[0] the destination node and Aux[1] the
// flow's update count.
func (s *System) Export(pipe *telemetry.Pipeline) (cancel func()) {
	return telemetry.Export(s.Rates(), pipe, func(r RateSample) telemetry.Record {
		return telemetry.Record{
			At:   int64(r.At),
			App:  "rcp",
			Kind: "rate",
			Node: uint64(r.Flow.Host().ID()),
			Val:  r.RateMbps,
			Aux:  [3]uint64{uint64(r.Flow.Dst()), r.Flow.Updates, 0},
		}
	})
}
