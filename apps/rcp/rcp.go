// Package rcp implements RCP*, the §2.2 end-host refactoring of the Rate
// Control Protocol. The network only executes TPPs; end-hosts do everything
// else. Each flow's rate controller loops through the paper's three phases:
//
//	Collect: a 5-instruction TPP reads, on every hop, the switch ID, queue
//	         size, link (arrival) utilization, and the link's fair-share
//	         rate and version number from two AppSpecific registers.
//	Compute: the sender runs the RCP control law per link:
//	         R' = R (1 - (T/d) * (a*(y-C) + b*q/d) / C)
//	Update:  a CSTORE conditioned on the version number writes the new rate
//	         back, so concurrent flows never clobber each other's updates.
//
// The flow's own sending rate is the α-fair aggregate of the per-link rates
// (equation 2): R = (Σ Ri^-α)^(-1/α); α→∞ recovers max-min (R = min Ri) and
// α=1 is proportional fairness — chosen at deployment time, exactly the
// flexibility the paper argues hardware RCP would have foreclosed.
//
// System implements the app.App contract: New(cfg) → Attach (registers the
// application, allocates the two per-link registers network-wide and seeds
// every switch port) → NewFlow per sender → Start. Each Flow may also be
// started and stopped individually.
package rcp

import (
	"fmt"
	"math"

	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/mem"
	"minions/internal/sim"
	"minions/tppnet"
	"minions/tppnet/app"
)

// Config tunes the controller.
type Config struct {
	// Alpha selects the fairness criterion: math.Inf(1) = max-min, 1 =
	// proportional fairness (Kelly et al.).
	Alpha float64
	// Period is the control interval T (default 10 ms ~ a few RTTs).
	Period tppnet.Time
	// CapacityMbps is each network link's capacity C.
	CapacityMbps float64
	// A, B are the RCP gain parameters (defaults 0.5, 0.25).
	A, B float64
	// InitialRateMbps is the starting flow rate (paper: 1 Mb/s).
	InitialRateMbps float64
	// MinRateMbps floors the rate so flows never stall entirely.
	MinRateMbps float64
	// MeanPktBytes converts queue occupancy (packets) to bytes.
	MeanPktBytes int
	// Hops bounds the path length for TPP memory sizing.
	Hops int
	// DecayAfterMisses is the number of consecutive lost collect rounds
	// after which the controller stops trusting its last computed rate and
	// starts multiplicative decay toward MinRateMbps (default 2). Losing
	// control packets is itself a congestion/failure signal: without the
	// feedback loop the safe behaviour is to back off, not to keep blasting
	// at the last good rate into a path that may no longer exist.
	DecayAfterMisses int
	// DecayFactor scales the rate on each decayed miss (default 0.5).
	DecayFactor float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = math.Inf(1)
	}
	if c.Period == 0 {
		c.Period = 10 * sim.Millisecond
	}
	if c.A == 0 {
		c.A = 0.5
	}
	if c.B == 0 {
		c.B = 0.25
	}
	if c.InitialRateMbps == 0 {
		c.InitialRateMbps = 1
	}
	if c.MinRateMbps == 0 {
		c.MinRateMbps = 0.25
	}
	if c.MeanPktBytes == 0 {
		c.MeanPktBytes = 1500
	}
	if c.Hops == 0 {
		c.Hops = 5
	}
	if c.DecayAfterMisses == 0 {
		c.DecayAfterMisses = 2
	}
	if c.DecayFactor == 0 {
		c.DecayFactor = 0.5
	}
	return c
}

// RateSample is one flow's freshly aggregated sending rate, as published on
// the system's telemetry stream after each completed control round.
type RateSample struct {
	Flow     *Flow
	At       tppnet.Time
	RateMbps float64
}

// System is the network-wide RCP* deployment: one app registration and two
// AppSpecific registers per link ("The network control plane allocates two
// memory addresses per link").
type System struct {
	app.Base
	cfg     Config
	verReg  mem.Addr // dynamic out-link address of the version register
	rateReg mem.Addr // dynamic out-link address of the fair-rate register
	regIdx  int
	flows   []*Flow
	rates   app.Stream[RateSample]
}

// rate wire unit: kilobits per second (fits 32 bits up to 4 Tb/s).
func mbpsToWire(m float64) uint32 { return uint32(m * 1000) }
func wireToMbps(w uint32) float64 { return float64(w) / 1000 }

// New creates an RCP* system; Attach registers it and seeds the switches.
func New(cfg Config) *System {
	return &System{Base: app.MakeBase("rcp"), cfg: cfg.withDefaults()}
}

// Attach implements app.App: it registers the application identity,
// allocates the two per-link AppSpecific registers network-wide, and seeds
// every switch port's fair-share register with that port's link capacity
// (the control-plane step before flows start).
func (s *System) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if err := s.Provision(s, n, cp); err != nil {
		return err
	}
	idx, err := s.ControlPlane().AllocLinkRegisters(s.ID(), 2)
	if err != nil {
		return fmt.Errorf("rcp: %w", err)
	}
	s.regIdx = idx
	s.verReg = mem.DynOutLinkBase + mem.LinkAppSpecific0 + mem.Addr(idx)
	s.rateReg = mem.DynOutLinkBase + mem.LinkAppSpecific0 + mem.Addr(idx+1)
	for _, sw := range n.Switches {
		s.InitSwitch(sw)
	}
	return nil
}

// InitSwitch seeds every connected port's fair-share register with that
// port's own link capacity. Attach does this for every switch already
// wired; call it for switches added later. Heterogeneous capacities
// matter: a receiver's fast host link must not dilute the α-fair aggregate
// of the slow network links.
func (s *System) InitSwitch(sw *tppnet.Switch) {
	for i := 0; i < sw.NumPorts(); i++ {
		p := sw.Port(i)
		if p.Out == nil {
			continue
		}
		p.SetAppSpecific(s.regIdx, 0) // version
		p.SetAppSpecific(s.regIdx+1, mbpsToWire(float64(p.Out.RateMbps())))
	}
}

// NewFlow wraps an existing UDP flow with an RCP* controller and registers
// it with the system: System.Start starts it (and every other registered
// flow) in registration order.
//
// The flow is pinned to one network path: a per-flow path tag is stamped on
// its data packets (via the UDP flow's Tagger) and on every control probe,
// so multipath fabrics steer all of them onto the same ECMP bucket — the
// §2.4 tag-steering trick. Without it, each probe's fresh ephemeral source
// port would hash onto a different path, and the byte-counter deltas the
// control law feeds on would compare unrelated links.
func (s *System) NewFlow(h *tppnet.Host, dst tppnet.NodeID, udp *tppnet.UDPFlow) *Flow {
	f := newFlow(s, h, dst, udp, uint16(len(s.flows)+1))
	s.flows = append(s.flows, f)
	return f
}

// Flows returns the registered controllers in registration order.
func (s *System) Flows() []*Flow { return s.flows }

// Rates returns the telemetry stream of per-round aggregated flow rates.
func (s *System) Rates() *app.Stream[RateSample] { return &s.rates }

// Start implements app.App: every registered flow begins its control loop
// and underlying UDP stream, in registration order.
func (s *System) Start() error {
	if err := s.Base.Start(); err != nil {
		return err
	}
	for _, f := range s.flows {
		f.Start()
	}
	return nil
}

// Stop implements app.App: every running flow halts.
func (s *System) Stop() error {
	for _, f := range s.flows {
		f.Stop()
	}
	return s.Base.Stop()
}

// capacityProgram is the one-time capacity-discovery TPP each flow sends at
// startup: per hop it records the switch ID and the egress link capacity, so
// phase 2 can evaluate the control law with each link's own C.
func (s *System) capacityProgram() *core.Program {
	return &core.Program{
		Mode:        core.AddrHop,
		PerHopWords: 2,
		MemWords:    2 * s.cfg.Hops,
		Insns: []core.Instruction{
			{Op: core.OpLOAD, A: 0, Addr: mem.SwSwitchID},
			{Op: core.OpLOAD, A: 1, Addr: mem.DynOutLinkBase + mem.LinkCapacityMbps},
		},
	}
}

// collectProgram builds phase 1's TPP. Instead of the coarse 1 ms
// utilization register, it reads the queued-byte and transmitted-byte
// counters: the paper's own refinement ("If needed, end-hosts can measure
// them faster by querying for [Link:RX-Bytes]"). Deltas between consecutive
// probes give the exact average arrival rate over the control period — far
// smoother than a 1 ms window, which matters for loop stability.
func (s *System) collectProgram() *core.Program {
	per := 5
	return &core.Program{
		Mode:        core.AddrHop,
		PerHopWords: per,
		MemWords:    per * s.cfg.Hops,
		Insns: []core.Instruction{
			{Op: core.OpLOAD, A: 0, Addr: mem.SwSwitchID},
			{Op: core.OpLOAD, A: 1, Addr: mem.DynOutLinkBase + mem.LinkQueuedBytes},
			{Op: core.OpLOAD, A: 2, Addr: mem.DynOutLinkBase + mem.LinkTXBytes},
			{Op: core.OpLOAD, A: 3, Addr: s.verReg},
			{Op: core.OpLOAD, A: 4, Addr: s.rateReg},
		},
	}
}

// updateProgram builds phase 3's TPP: per-hop CSTORE of (version ->
// version+1) gating a STORE of the new rate — the exact §2.2 listing.
func (s *System) updateProgram(hops []HopState, newRates []float64) *core.Program {
	per := 3
	p := &core.Program{
		Mode:        core.AddrHop,
		PerHopWords: per,
		MemWords:    per * len(hops),
		Insns: []core.Instruction{
			{Op: core.OpCSTORE, A: 0, B: 1, Addr: s.verReg},
			{Op: core.OpSTORE, A: 2, Addr: s.rateReg},
		},
	}
	for i, h := range hops {
		p.InitMem = append(p.InitMem,
			h.Version,               // expected current version
			h.Version+1,             // new version
			mbpsToWire(newRates[i]), // R_new
		)
	}
	return p
}

// HopState is one link's sample from a collect round.
type HopState struct {
	SwitchID   uint32
	QueueBytes uint32 // egress queue occupancy
	TxBytes    uint32 // cumulative transmit counter (wraps)
	Version    uint32
	RateMbps   float64 // stored fair share
	// YMbps is the end-host-computed average arrival rate since the
	// previous sample of this link (phase 2 input).
	YMbps float64
}

// linkPrev remembers the previous sample for delta computation.
type linkPrev struct {
	qBytes  uint32
	txBytes uint32
	at      sim.Time
}

// Flow is one RCP* rate controller driving a rate-limited UDP flow. It is
// its own sim.Handler: the periodic control round re-arms by scheduling the
// flow itself, and the collect/update completion callbacks are allocated
// once at construction — so a running controller schedules its warm path
// (one round per ~RTT, per flow) without per-round closure allocations.
type Flow struct {
	sys  *System
	h    *tppnet.Host
	dst  tppnet.NodeID
	udp  *tppnet.UDPFlow
	tag  uint16 // path tag pinning data and probes to one ECMP bucket
	cfg  Config
	rttE sim.Time // EWMA of probe RTT (the control law's d)
	prev map[uint32]linkPrev
	caps map[uint32]float64 // per-hop link capacity, discovered at start

	running bool
	gen     uint64   // invalidates stale round events across Stop/Start
	sentGen uint64   // generation the in-flight collect probe belongs to
	sentAt  sim.Time // dispatch time of the in-flight collect probe
	// collectCb and discardCb are the resident ExecuteTPP completions,
	// built once in newFlow.
	collectCb func(view core.Section, err error)
	discardCb func(core.Section, error)
	// missedRounds counts consecutive collect probes lost in the network.
	missedRounds int
	// Telemetry for tests and plots.
	LastHops    []HopState
	LastRate    float64
	Updates     uint64
	CtrlPackets uint64
	CtrlBytes   uint64
	// MissedRoundsTotal and Decays count lost collect rounds and the
	// resulting rate decays over the flow's lifetime.
	MissedRoundsTotal uint64
	Decays            uint64
}

// Host returns the sending host the flow runs on.
func (f *Flow) Host() *tppnet.Host { return f.h }

// Dst returns the flow's destination node.
func (f *Flow) Dst() tppnet.NodeID { return f.dst }

// newFlow wraps an existing UDP flow with an RCP* controller.
func newFlow(sys *System, h *tppnet.Host, dst tppnet.NodeID, udp *tppnet.UDPFlow, tag uint16) *Flow {
	f := &Flow{
		sys: sys, h: h, dst: dst, udp: udp, tag: tag, cfg: sys.cfg,
		prev: make(map[uint32]linkPrev),
		caps: make(map[uint32]float64),
	}
	udp.Tagger = func(p *tppnet.Packet) { p.PathTag = f.tag }
	f.collectCb = func(view core.Section, err error) {
		if err == nil {
			f.onCollect(view, f.h.Engine().Now()-f.sentAt)
		} else {
			f.onMiss()
		}
		// Re-arm only for the probe's own generation: a probe completing
		// across a Stop/Start cycle must not spawn a second round train.
		if f.sentGen == f.gen {
			f.armNextRound()
		}
	}
	f.discardCb = func(core.Section, error) {}
	udp.SetRateBps(int64(f.cfg.InitialRateMbps * 1e6))
	return f
}

// Handle implements sim.Handler: one scheduled control round. Events from
// a generation before the latest Start are stale — the engine cannot
// cancel events, so a Stop/Start cycle must not double the round cadence.
func (f *Flow) Handle(gen uint64) {
	if gen != f.gen {
		return
	}
	f.controlRound()
}

// armNextRound schedules the next control round as a typed resident event.
func (f *Flow) armNextRound() {
	f.h.Engine().ScheduleAfter(f.nextPeriod(), f, f.gen)
}

// Start begins the control loop and the underlying UDP stream. The first
// round discovers per-hop link capacities. Starting a running flow is a
// no-op.
func (f *Flow) Start() {
	if f.running {
		return
	}
	f.running = true
	f.gen++
	gen := f.gen
	f.udp.Start()
	prog := f.sys.capacityProgram()
	err := f.h.ExecuteTPP(f.sys.ID(), prog, f.dst, host.ExecOpts{PathTag: f.tag}, func(view core.Section, err error) {
		if err == nil {
			for _, hv := range view.HopViews() {
				if hv.Words[1] > 0 {
					f.caps[hv.Words[0]] = float64(hv.Words[1])
				}
			}
		}
		if gen == f.gen {
			f.controlRound()
		}
	})
	if err != nil {
		f.controlRound()
	}
}

// Stop halts both.
func (f *Flow) Stop() {
	f.running = false
	f.udp.Stop()
}

// RateMbps returns the current sending rate.
func (f *Flow) RateMbps() float64 { return float64(f.udp.RateBps()) / 1e6 }

// nextPeriod adapts the control interval to the flow's own packet rate,
// mirroring the paper's "each flow sends control packets roughly once every
// RTT": slow flows (whose RTT per delivered window is long) probe less, so
// total control overhead stays bounded as flow counts grow (§2.2).
func (f *Flow) nextPeriod() sim.Time {
	next := f.cfg.Period
	if r := f.udp.RateBps(); r > 0 {
		// Time to transmit ~8 data packets at the current rate.
		fourPkts := sim.Time(8 * int64(f.udp.PktSize) * 8 * int64(sim.Second) / r)
		if fourPkts > next {
			next = fourPkts
		}
	}
	return next
}

// controlRound runs one collect/compute/update cycle, then reschedules.
func (f *Flow) controlRound() {
	if !f.running {
		return
	}
	f.sentAt = f.h.Engine().Now()
	f.sentGen = f.gen
	prog := f.sys.collectProgram()
	err := f.h.ExecuteTPP(f.sys.ID(), prog, f.dst, host.ExecOpts{
		Timeout:     4 * f.cfg.Period,
		MaxAttempts: 1,
		PathTag:     f.tag,
	}, f.collectCb)
	f.CtrlPackets++
	f.CtrlBytes += uint64(42 + prog.WireLen())
	if err != nil {
		f.armNextRound()
	}
}

// onMiss handles a lost collect round. The first DecayAfterMisses-1
// consecutive misses are tolerated silently — a single drop is routine under
// bursty loss — but from then on every further miss multiplies the sending
// rate by DecayFactor, flooring at MinRateMbps, and discards the per-link
// byte-counter history: after an outage the counter deltas span the whole
// blackout and would yield a garbage arrival-rate estimate on the first
// post-recovery sample. Losing the feedback loop is itself a signal; backing
// off is the only safe response.
func (f *Flow) onMiss() {
	f.missedRounds++
	f.MissedRoundsTotal++
	if f.missedRounds < f.cfg.DecayAfterMisses {
		return
	}
	for k := range f.prev {
		delete(f.prev, k)
	}
	r := f.RateMbps() * f.cfg.DecayFactor
	if r < f.cfg.MinRateMbps {
		r = f.cfg.MinRateMbps
	}
	f.LastRate = r
	f.udp.SetRateBps(int64(r * 1e6))
	f.Decays++
	if f.sys.rates.HasSubscribers() {
		f.sys.rates.Publish(RateSample{Flow: f, At: f.h.Engine().Now(), RateMbps: r})
	}
}

// onCollect is phases 2 and 3.
func (f *Flow) onCollect(view core.Section, rtt sim.Time) {
	f.missedRounds = 0
	if f.rttE == 0 {
		f.rttE = rtt
	} else {
		f.rttE = (3*f.rttE + rtt) / 4
	}
	now := f.h.Engine().Now()
	views := view.HopViews()
	hops := make([]HopState, 0, len(views))
	fresh := true
	for _, hv := range views {
		h := HopState{
			SwitchID:   hv.Words[0],
			QueueBytes: hv.Words[1],
			TxBytes:    hv.Words[2],
			Version:    hv.Words[3],
			RateMbps:   wireToMbps(hv.Words[4]),
		}
		// Arrival rate since the previous probe of this link: bytes that
		// left the queue plus the queue's growth (wrap-safe subtraction).
		if p, ok := f.prev[h.SwitchID]; ok {
			dt := (now - p.at).Seconds()
			if dt > 0 {
				arr := float64(h.TxBytes-p.txBytes) + float64(int64(h.QueueBytes)-int64(p.qBytes))
				if arr < 0 {
					arr = 0
				}
				h.YMbps = arr * 8 / dt / 1e6
			}
		} else {
			fresh = false
		}
		f.prev[h.SwitchID] = linkPrev{qBytes: h.QueueBytes, txBytes: h.TxBytes, at: now}
		hops = append(hops, h)
	}
	if len(hops) == 0 {
		return
	}
	f.LastHops = hops
	if !fresh {
		return // first sample of some link: no deltas yet
	}

	// Phase 2: per-link RCP control law with each link's own capacity. The
	// queue term drains standing queues over one control period.
	T := f.cfg.Period.Seconds()
	newRates := make([]float64, len(hops))
	for i, hp := range hops {
		C := f.caps[hp.SwitchID]
		if C <= 0 {
			C = f.cfg.CapacityMbps
		}
		R := hp.RateMbps
		if R <= 0 {
			R = C
		}
		qMb := float64(hp.QueueBytes) * 8 / 1e6
		feedback := f.cfg.A*(hp.YMbps-C) + f.cfg.B*qMb/T
		R = R * (1 - feedback/C)
		if R < f.cfg.MinRateMbps {
			R = f.cfg.MinRateMbps
		}
		if R > C {
			R = C
		}
		newRates[i] = R
	}

	// Phase 3: asynchronous versioned write-back.
	upd := f.sys.updateProgram(hops, newRates)
	if err := f.h.ExecuteTPP(f.sys.ID(), upd, f.dst, host.ExecOpts{
		Timeout:     4 * f.cfg.Period,
		MaxAttempts: 1,
		PathTag:     f.tag,
	}, f.discardCb); err == nil {
		f.CtrlPackets++
		f.CtrlBytes += uint64(42 + upd.WireLen())
		f.Updates++
	}

	// Set the flow rate to the α-fair aggregate (equation 2) of the freshly
	// computed per-link rates.
	agg := make([]HopState, len(hops))
	copy(agg, hops)
	for i := range agg {
		agg[i].RateMbps = newRates[i]
	}
	f.LastRate = Aggregate(agg, f.cfg.Alpha)
	if f.LastRate < f.cfg.MinRateMbps {
		f.LastRate = f.cfg.MinRateMbps
	}
	f.udp.SetRateBps(int64(f.LastRate * 1e6))
	if f.sys.rates.HasSubscribers() {
		f.sys.rates.Publish(RateSample{Flow: f, At: now, RateMbps: f.LastRate})
	}
}

// Aggregate applies equation 2 to the per-link fair rates.
func Aggregate(hops []HopState, alpha float64) float64 {
	if len(hops) == 0 {
		return 0
	}
	if math.IsInf(alpha, 1) {
		minR := math.Inf(1)
		for _, h := range hops {
			if h.RateMbps < minR {
				minR = h.RateMbps
			}
		}
		return minR
	}
	var sum float64
	for _, h := range hops {
		r := h.RateMbps
		if r <= 0 {
			return 0
		}
		sum += math.Pow(r, -alpha)
	}
	return math.Pow(sum, -1/alpha)
}
