package rcp_test

import (
	"math"
	"testing"

	"minions/apps/rcp"
	"minions/tppnet"
)

// figure2 runs the paper's Figure 2 experiment at the given alpha and
// returns the three flows' steady-state rates in Mb/s (measured over the
// final second by receiver byte counts).
func figure2(t *testing.T, alpha float64, secs int) (a, b, c float64) {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(5))
	hosts, _ := n.Chain(100)
	sys := rcp.New(rcp.Config{
		Alpha:        alpha,
		CapacityMbps: 100,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}

	mk := func(src, dst int, sport uint16) (*rcp.Flow, *tppnet.Sink) {
		sink := tppnet.NewSink(n.Hosts[dst], sport, 17)
		udp := tppnet.NewUDPFlow(n.Hosts[src], hosts[dst].ID(), sport, sport, 1500)
		fl := sys.NewFlow(n.Hosts[src], hosts[dst].ID(), udp)
		return fl, sink
	}
	// a: host0 -> host3 (both links); b: host1 -> host4 (link 1);
	// c: host2 -> host5 (link 2).
	_, sa := mk(0, 3, 7001)
	_, sb := mk(1, 4, 7002)
	_, sc := mk(2, 5, 7003)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}

	warm := tppnet.Time(secs-1) * tppnet.Second
	n.RunUntil(warm)
	a0, b0, c0 := sa.Bytes, sb.Bytes, sc.Bytes
	n.RunUntil(tppnet.Time(secs) * tppnet.Second)
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}

	toMbps := func(d uint64) float64 { return float64(d) * 8 / 1e6 }
	return toMbps(sa.Bytes - a0), toMbps(sb.Bytes - b0), toMbps(sc.Bytes - c0)
}

func TestMaxMinFairness(t *testing.T) {
	// Figure 2 left: max-min should allocate ~50 Mb/s to every flow
	// (each 100 Mb/s link carries two flows).
	a, b, c := figure2(t, math.Inf(1), 8)
	for name, got := range map[string]float64{"a": a, "b": b, "c": c} {
		if got < 35 || got > 62 {
			t.Errorf("flow %s = %.1f Mb/s, want ~50", name, got)
		}
	}
}

func TestProportionalFairness(t *testing.T) {
	// Figure 2 right: the two-link flow gets ~1/3 of each link, the
	// one-link flows ~2/3.
	a, b, c := figure2(t, 1, 8)
	if a < 20 || a > 45 {
		t.Errorf("flow a = %.1f Mb/s, want ~33", a)
	}
	if b < 52 || b > 80 {
		t.Errorf("flow b = %.1f Mb/s, want ~67", b)
	}
	if c < 52 || c > 80 {
		t.Errorf("flow c = %.1f Mb/s, want ~67", c)
	}
	// Ordering: a must clearly receive less than b and c.
	if a >= b || a >= c {
		t.Errorf("proportional ordering violated: a=%.1f b=%.1f c=%.1f", a, b, c)
	}
}

func TestFairnessCriteriaDiffer(t *testing.T) {
	aMM, _, _ := figure2(t, math.Inf(1), 6)
	aPF, bPF, _ := figure2(t, 1, 6)
	if aPF >= aMM {
		t.Errorf("alpha=1 should squeeze the long flow: maxmin a=%.1f, prop a=%.1f", aMM, aPF)
	}
	if bPF <= aPF {
		t.Errorf("short flow should exceed long flow under prop fairness")
	}
}

func TestAggregateEquation(t *testing.T) {
	hops := []rcp.HopState{{RateMbps: 40}, {RateMbps: 60}}
	// Max-min: the min.
	if got := rcp.Aggregate(hops, math.Inf(1)); got != 40 {
		t.Errorf("maxmin aggregate = %v", got)
	}
	// alpha=1: harmonic combination (1/40 + 1/60)^-1 = 24.
	if got := rcp.Aggregate(hops, 1); math.Abs(got-24) > 1e-9 {
		t.Errorf("alpha=1 aggregate = %v", got)
	}
	// Large alpha approaches the min from above.
	if got := rcp.Aggregate(hops, 8); got < 39 || got > 41.5 {
		t.Errorf("alpha=8 aggregate = %v", got)
	}
	if got := rcp.Aggregate(nil, 1); got != 0 {
		t.Errorf("empty aggregate = %v", got)
	}
}

func TestVersionedUpdatesDontClobber(t *testing.T) {
	// Two flows sharing a link must converge to a single stored rate; the
	// CSTORE versioning serializes their updates. We assert the register
	// monotonically versions up and the stored rate stays within capacity.
	n := tppnet.NewNetwork(tppnet.WithSeed(5))
	hosts, sws := n.Chain(100)
	sys := rcp.New(rcp.Config{CapacityMbps: 100})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	mk := func(src, dst int, sport uint16) *rcp.Flow {
		tppnet.NewSink(n.Hosts[dst], sport, 17)
		udp := tppnet.NewUDPFlow(n.Hosts[src], hosts[dst].ID(), sport, sport, 1500)
		return sys.NewFlow(n.Hosts[src], hosts[dst].ID(), udp)
	}
	fa := mk(0, 3, 7001)
	fb := mk(1, 4, 7002)
	fa.Start()
	fb.Start()
	n.RunUntil(3 * tppnet.Second)

	// The shared link is s1's port toward s2. Find it: s1 routes to
	// hosts[3] via that port.
	s1 := sws[0]
	port := s1.Port(s1.RoutePorts(hosts[3].ID())[0])
	stored := port.AppSpecific(1)
	if stored == 0 || stored > 100_000 {
		t.Errorf("stored fair rate = %d kbps, outside (0, 100000]", stored)
	}
	if ver := port.AppSpecific(0); ver == 0 {
		t.Error("version register never advanced")
	}
	if fa.Updates == 0 || fb.Updates == 0 {
		t.Error("flows performed no updates")
	}
}

func TestControlOverheadSmall(t *testing.T) {
	// §2.2: "the bandwidth overhead imposed by TPP control packets was
	// about 1.0-6.0% of the flows' rate".
	n := tppnet.NewNetwork(tppnet.WithSeed(5))
	hosts, _ := n.Chain(100)
	sys := rcp.New(rcp.Config{CapacityMbps: 100})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	sink := tppnet.NewSink(n.Hosts[4], 7002, 17)
	udp := tppnet.NewUDPFlow(n.Hosts[1], hosts[4].ID(), 7002, 7002, 1500)
	fl := sys.NewFlow(n.Hosts[1], hosts[4].ID(), udp)
	fl.Start()
	n.RunUntil(5 * tppnet.Second)
	fl.Stop()

	data := float64(sink.Bytes)
	ctrl := float64(fl.CtrlBytes)
	frac := ctrl / data
	if frac <= 0 || frac > 0.08 {
		t.Errorf("control overhead = %.2f%%, want small (paper: 1-6%%)", frac*100)
	}
}

// TestRateStreamPublishes covers the typed telemetry stream: each completed
// control round publishes the flow's aggregated rate.
func TestRateStreamPublishes(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(5))
	hosts, _ := n.Chain(100)
	sys := rcp.New(rcp.Config{CapacityMbps: 100})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	var samples int
	var last rcp.RateSample
	sys.Rates().Subscribe(func(s rcp.RateSample) { samples++; last = s })
	tppnet.NewSink(n.Hosts[4], 7002, 17)
	udp := tppnet.NewUDPFlow(n.Hosts[1], hosts[4].ID(), 7002, 7002, 1500)
	fl := sys.NewFlow(n.Hosts[1], hosts[4].ID(), udp)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	n.RunUntil(2 * tppnet.Second)
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("rate stream published nothing over 2 s of control rounds")
	}
	if last.Flow != fl || last.RateMbps <= 0 {
		t.Errorf("last sample = %+v, want positive rate on the flow", last)
	}
}

// TestCloseWhileRunningStopsFlows: Close on a running system must halt the
// flows and control rounds through the system's own Stop — traffic and
// probes must not continue under a released app identity.
func TestCloseWhileRunningStopsFlows(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(5))
	hosts, _ := n.Chain(100)
	sys := rcp.New(rcp.Config{CapacityMbps: 100})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	sink := tppnet.NewSink(n.Hosts[4], 7002, 17)
	udp := tppnet.NewUDPFlow(n.Hosts[1], hosts[4].ID(), 7002, 7002, 1500)
	fl := sys.NewFlow(n.Hosts[1], hosts[4].ID(), udp)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	n.RunUntil(500 * tppnet.Millisecond)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	bytes, ctrl := sink.Bytes, fl.CtrlPackets
	if bytes == 0 || ctrl == 0 {
		t.Fatal("flow never ran before Close")
	}
	// Drain. A still-running flow would pace forever and never drain; only
	// packets already in flight at Close may still arrive (≤ a handful).
	n.Run()
	if sink.Bytes > bytes+3*1500 {
		t.Errorf("closed system kept sending: %d -> %d bytes", bytes, sink.Bytes)
	}
	if fl.CtrlPackets != ctrl {
		t.Errorf("closed system kept probing: %d -> %d control packets", ctrl, fl.CtrlPackets)
	}
}

// TestLifecycleCloseReleasesRegisters: after Close, the link registers are
// free for the next tenant — eight consecutive systems can attach to one
// network only if each release returns its two registers.
func TestLifecycleCloseReleasesRegisters(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	n.Chain(100)
	for i := 0; i < 8; i++ {
		sys := rcp.New(rcp.Config{CapacityMbps: 100})
		if err := sys.Attach(n, nil); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		if err := sys.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
}
