package sketch_test

import (
	"testing"

	"minions/apps/sketch"
	"minions/telemetry"
	"minions/tppnet"
)

// runExportOnce runs a small deployment with the push stream bridged into
// a pipeline and returns the exported records.
func runExportOnce(t *testing.T, seed int64) []telemetry.Record {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(seed))
	hosts, _, _ := n.Dumbbell(6, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		BitsPerLink: 256,
		PushEvery:   100 * tppnet.Millisecond,
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	var sink telemetry.MemSink
	pipe := telemetry.NewPipeline(telemetry.Config{Spool: 4096})
	pipe.Attach(&sink)
	sys.Export(pipe)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}

	h0 := n.Hosts[0]
	h0.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 1; i < 6; i++ {
		src := n.Hosts[i]
		for k := 0; k < 20; k++ {
			src.Send(src.NewPacket(h0.ID(), uint16(1000+k), 8000, tppnet.ProtoUDP, 400))
		}
	}
	n.RunUntil(500 * tppnet.Millisecond)
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	n.Run()
	pipe.Flush()
	return sink.Records
}

// TestExportPushEvents checks the exported push records carry the link
// identity and merged estimate, and that upload order is deterministic
// across runs of the same seed (the agents sort dirty links before
// pushing — map order must never leak into the export).
func TestExportPushEvents(t *testing.T) {
	recs := runExportOnce(t, 4)
	if len(recs) == 0 {
		t.Fatal("no push records exported")
	}
	for _, r := range recs {
		if r.App != "opensketch" || r.Kind != "push" {
			t.Fatalf("record tagged %s/%s", r.App, r.Kind)
		}
		if r.Aux[2] != 256/8 {
			t.Fatalf("pushed bytes = %d, want %d", r.Aux[2], 256/8)
		}
		if r.Val < 0 {
			t.Fatalf("negative estimate %v", r.Val)
		}
	}

	again := runExportOnce(t, 4)
	if len(again) != len(recs) {
		t.Fatalf("rerun exported %d records, first run %d", len(again), len(recs))
	}
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatalf("record %d differs across identical runs:\n%+v\n%+v", i, recs[i], again[i])
		}
	}
}
