// Package sketch refactors OpenSketch-style measurement onto TPPs (§2.5).
// Hardware sketches need multiple line-rate hash functions in the ASIC; the
// TPP refactoring observes that end-hosts hash cheaply in software and only
// lack the packet's *routing context*, which the two-instruction TPP
//
//	PUSH [Switch:ID]
//	PUSH [PacketMetadata:OutputPort]
//
// provides. Each receiving host maintains per-link bitmap sketches (Estan &
// Varghese: estimate = b·ln(b/z) for b bits with z unset) and periodically
// pushes changed bitmaps to a central link-monitoring service, which ORs
// them — the sketch's commutativity makes end-host distribution exact.
//
// System implements the app.App contract: New(cfg) → Attach (TPPs and
// per-host agents installed) → Start (periodic bitmap uploads begin) →
// Stop/Close (final flush, uploads halt).
package sketch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/tppnet"
	"minions/tppnet/app"
)

// Program is the routing-context TPP of §2.5.
const Program = `
	PUSH [Switch:ID]
	PUSH [PacketMetadata:OutputPort]
`

// Bitmap is a b-bit direct bitmap sketch for set-cardinality estimation.
type Bitmap struct {
	bits []uint64
	b    int
}

// NewBitmap creates a sketch with b bits (b must be a multiple of 64).
func NewBitmap(b int) *Bitmap {
	if b <= 0 || b%64 != 0 {
		panic(fmt.Sprintf("sketch: bitmap size %d must be a positive multiple of 64", b))
	}
	return &Bitmap{bits: make([]uint64, b/64), b: b}
}

// Bits returns the sketch size in bits.
func (m *Bitmap) Bits() int { return m.b }

// hash64 avalanches a 64-bit key (splitmix64 finalizer).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add hashes the element to one of b bits and sets it.
func (m *Bitmap) Add(element uint64) {
	i := hash64(element) % uint64(m.b)
	m.bits[i/64] |= 1 << (i % 64)
}

// Zeros returns the number of unset bits.
func (m *Bitmap) Zeros() int {
	z := m.b
	for _, w := range m.bits {
		z -= bits.OnesCount64(w)
	}
	return z
}

// Estimate returns the cardinality estimate b·ln(b/z) (§2.5, [13]). A full
// bitmap saturates: the estimate is then a lower bound b·ln(b).
func (m *Bitmap) Estimate() float64 {
	z := m.Zeros()
	if z == 0 {
		return float64(m.b) * math.Log(float64(m.b))
	}
	return float64(m.b) * math.Log(float64(m.b)/float64(z))
}

// Merge ORs another sketch in (commutative, exact for unions).
func (m *Bitmap) Merge(o *Bitmap) {
	if o.b != m.b {
		panic("sketch: merging bitmaps of different sizes")
	}
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// Clone copies the sketch.
func (m *Bitmap) Clone() *Bitmap {
	c := NewBitmap(m.b)
	copy(c.bits, m.bits)
	return c
}

// LinkKey identifies a network link by (switch, output port) — the routing
// context the TPP collects.
type LinkKey struct {
	SwitchID uint32
	Port     uint32
}

// Monitor is the central link-monitoring service: it aggregates per-link
// bitmaps pushed by hosts.
type Monitor struct {
	BitsPerLink int
	links       map[LinkKey]*Bitmap
	Pushes      uint64
	PushedBytes uint64
	pushes      app.Stream[PushEvent]
}

// PushEvent is one bitmap upload as observed by the monitor, published on
// its telemetry stream: which host pushed which link's sketch, and the
// monitor's merged cardinality estimate for that link afterwards.
type PushEvent struct {
	At       tppnet.Time
	Host     tppnet.NodeID
	Link     LinkKey
	Bytes    int     // sketch bytes uploaded
	Estimate float64 // merged estimate after this push
}

// PushStream returns the monitor's typed upload feed. Agents publish in
// sorted link order, so the stream is deterministic across runs.
func (mon *Monitor) PushStream() *app.Stream[PushEvent] { return &mon.pushes }

// NewMonitor creates the central service.
func NewMonitor(bitsPerLink int) *Monitor {
	return &Monitor{BitsPerLink: bitsPerLink, links: make(map[LinkKey]*Bitmap)}
}

// Push merges one host's partial sketch for a link ("the end-hosts push
// those summary data structures that have changed since the last interval").
func (mon *Monitor) Push(k LinkKey, bm *Bitmap) {
	cur := mon.links[k]
	if cur == nil {
		cur = NewBitmap(mon.BitsPerLink)
		mon.links[k] = cur
	}
	cur.Merge(bm)
	mon.Pushes++
	mon.PushedBytes += uint64(bm.Bits() / 8)
}

// Estimate returns the cardinality estimate for a link.
func (mon *Monitor) Estimate(k LinkKey) float64 {
	bm := mon.links[k]
	if bm == nil {
		return 0
	}
	return bm.Estimate()
}

// Links returns monitored link keys in stable order.
func (mon *Monitor) Links() []LinkKey {
	out := make([]LinkKey, 0, len(mon.links))
	for k := range mon.links {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SwitchID != out[j].SwitchID {
			return out[i].SwitchID < out[j].SwitchID
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Agent is the per-host aggregator: it hashes the measured key (here the
// packet's source node, standing in for the source IP of §2.5) into a
// per-link bitmap for every hop in the TPP, and pushes dirty bitmaps to the
// monitor every interval.
type Agent struct {
	h       *tppnet.Host
	mon     *Monitor
	bits    int
	local   map[LinkKey]*Bitmap
	dirty   map[LinkKey]bool
	timer   *app.Periodic
	stopped bool
}

// Config parameterizes a measurement deployment.
type Config struct {
	// Filter selects the traffic to instrument.
	Filter tppnet.FilterSpec
	// SampleFreq instruments one in N matching packets (default 1; the
	// paper discusses 1-in-10).
	SampleFreq int
	// BitsPerLink sizes each link's bitmap (default 1024, the paper's
	// 1 kbit/link).
	BitsPerLink int
	// PushEvery is the dirty-bitmap upload interval (default 10 s, the
	// paper's example; experiments use shorter).
	PushEvery tppnet.Time
	// Hosts limits installation to a subset; nil instruments every host.
	Hosts []*tppnet.Host
}

func (c Config) withDefaults() Config {
	if c.SampleFreq == 0 {
		c.SampleFreq = 1
	}
	if c.BitsPerLink == 0 {
		c.BitsPerLink = 1024
	}
	if c.PushEvery == 0 {
		c.PushEvery = 10 * sim.Second
	}
	return c
}

// System is the network-wide measurement deployment: TPPs on every selected
// host's traffic, one agent per host, one shared central monitor.
type System struct {
	app.Base
	cfg Config
	// Monitor is the central link-monitoring service.
	Monitor *Monitor
	agents  []*Agent
}

// New creates a measurement system; Attach installs it.
func New(cfg Config) *System {
	cfg = cfg.withDefaults()
	return &System{
		Base:    app.MakeBase("opensketch"),
		cfg:     cfg,
		Monitor: NewMonitor(cfg.BitsPerLink),
	}
}

// Attach implements app.App: it registers the application identity and, per
// selected host, installs the routing-context TPP, an ingesting agent, and
// the periodic upload timer (armed by Start).
func (s *System) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if err := s.Provision(s, n, cp); err != nil {
		return err
	}
	hosts := s.cfg.Hosts
	if hosts == nil {
		hosts = n.Hosts
	}
	for _, h := range hosts {
		prog, err := asm.Assemble(Program)
		if err != nil {
			return err
		}
		if _, err := s.InstallTPP(h, s.cfg.Filter, prog, s.cfg.SampleFreq, 30); err != nil {
			return err
		}
		a := &Agent{
			h: h, mon: s.Monitor, bits: s.cfg.BitsPerLink,
			local: make(map[LinkKey]*Bitmap),
			dirty: make(map[LinkKey]bool),
		}
		if err := s.Aggregate(h, a.ingest); err != nil {
			return err
		}
		a.timer = s.Base.NewPeriodic(h.Engine(), s.cfg.PushEvery, a.push)
		s.agents = append(s.agents, a)
	}
	return nil
}

// Agents returns the per-host agents in installation order.
func (s *System) Agents() []*Agent { return s.agents }

// Start implements app.App: the periodic upload timers arm and every agent
// resumes uploading (a restarted system measures again after Stop).
func (s *System) Start() error {
	if err := s.Base.Start(); err != nil {
		return err
	}
	for _, a := range s.agents {
		a.stopped = false
	}
	return nil
}

// Stop implements app.App: every agent flushes its dirty bitmaps and the
// upload timers halt.
func (s *System) Stop() error {
	for _, a := range s.agents {
		a.Stop()
	}
	return s.Base.Stop()
}

// ingest implements the paper's pseudo-code:
//
//	index = hash(packet.ip.dest)
//	foreach (switch,link) in tpp: bitmask[switch][index] = 1
func (a *Agent) ingest(p *link.Packet, view core.Section) {
	key := uint64(p.Flow.Src) // measuring unique sources crossing each link
	for _, hop := range view.StackView(2) {
		lk := LinkKey{SwitchID: hop.Words[0], Port: hop.Words[1]}
		bm := a.local[lk]
		if bm == nil {
			bm = NewBitmap(a.bits)
			a.local[lk] = bm
		}
		bm.Add(key)
		a.dirty[lk] = true
	}
}

// push uploads changed bitmaps (the every-10-seconds step of §2.5), in
// sorted link order: map iteration is nondeterministic, and the monitor's
// push stream is part of the exported telemetry, which must be identical
// across runs of the same seed.
func (a *Agent) push() {
	if a.stopped || len(a.dirty) == 0 {
		return
	}
	keys := make([]LinkKey, 0, len(a.dirty))
	for lk := range a.dirty {
		keys = append(keys, lk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].SwitchID != keys[j].SwitchID {
			return keys[i].SwitchID < keys[j].SwitchID
		}
		return keys[i].Port < keys[j].Port
	})
	publish := a.mon.pushes.HasSubscribers()
	for _, lk := range keys {
		a.mon.Push(lk, a.local[lk])
		delete(a.dirty, lk)
		if publish {
			a.mon.pushes.Publish(PushEvent{
				At: a.h.Engine().Now(), Host: a.h.ID(), Link: lk,
				Bytes: a.bits / 8, Estimate: a.mon.Estimate(lk),
			})
		}
	}
}

// Stop pushes any dirty state and halts the periodic upload.
func (a *Agent) Stop() {
	if a.stopped {
		return
	}
	a.push()
	a.stopped = true
	a.timer.Stop()
}

// MemoryPerServer returns the §2.5 sizing: total bytes a server needs to
// track `links` links at `bits` bits each (k=64 fat-tree: 65536 links at
// 1 kbit = 8 MB/server).
func MemoryPerServer(links, bits int) int { return links * bits / 8 }
