package sketch_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minions/apps/sketch"
	"minions/internal/topo"
	"minions/tppnet"
)

func TestBitmapEstimateAccuracy(t *testing.T) {
	// The b·ln(b/z) estimator should be within ~15% for n <= b/2.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{50, 200, 400} {
		bm := sketch.NewBitmap(1024)
		seen := map[uint64]bool{}
		for len(seen) < n {
			v := rng.Uint64()
			if !seen[v] {
				seen[v] = true
				bm.Add(v)
			}
		}
		est := bm.Estimate()
		if math.Abs(est-float64(n))/float64(n) > 0.15 {
			t.Errorf("n=%d: estimate %.1f off by >15%%", n, est)
		}
	}
}

func TestBitmapDuplicatesDontInflate(t *testing.T) {
	bm := sketch.NewBitmap(256)
	for i := 0; i < 1000; i++ {
		bm.Add(42) // same element
	}
	if est := bm.Estimate(); est > 2 {
		t.Errorf("1000 duplicates estimated as %.1f uniques", est)
	}
}

func TestBitmapMergeCommutative(t *testing.T) {
	f := func(seedsA, seedsB []uint16) bool {
		a1, b1 := sketch.NewBitmap(256), sketch.NewBitmap(256)
		a2, b2 := sketch.NewBitmap(256), sketch.NewBitmap(256)
		for _, s := range seedsA {
			a1.Add(uint64(s))
			a2.Add(uint64(s))
		}
		for _, s := range seedsB {
			b1.Add(uint64(s))
			b2.Add(uint64(s))
		}
		a1.Merge(b1) // A | B
		b2.Merge(a2) // B | A
		return a1.Zeros() == b2.Zeros() && a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitmapMergeEqualsUnion(t *testing.T) {
	union := sketch.NewBitmap(512)
	parts := make([]*sketch.Bitmap, 4)
	rng := rand.New(rand.NewSource(3))
	for i := range parts {
		parts[i] = sketch.NewBitmap(512)
	}
	for i := 0; i < 200; i++ {
		v := rng.Uint64()
		union.Add(v)
		parts[i%4].Add(v)
	}
	merged := sketch.NewBitmap(512)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Zeros() != union.Zeros() {
		t.Error("distributed merge differs from centralized union")
	}
}

func TestBitmapSaturation(t *testing.T) {
	bm := sketch.NewBitmap(64)
	for i := uint64(0); i < 10000; i++ {
		bm.Add(i)
	}
	if bm.Zeros() != 0 {
		t.Fatal("bitmap should saturate")
	}
	if est := bm.Estimate(); math.IsInf(est, 1) || math.IsNaN(est) {
		t.Errorf("saturated estimate = %v", est)
	}
}

func TestEndToEndLinkCardinality(t *testing.T) {
	// Six hosts all talk to host 0; the monitor's estimate of unique
	// sources on host 0's ingress link should be ~5.
	n := tppnet.NewNetwork(tppnet.WithSeed(4))
	hosts, _, _ := n.Dumbbell(6, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		BitsPerLink: 256,
		PushEvery:   100 * tppnet.Millisecond,
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	h0 := n.Hosts[0]
	h0.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 1; i < 6; i++ {
		src := n.Hosts[i]
		for k := 0; k < 20; k++ {
			src.Send(src.NewPacket(h0.ID(), uint16(1000+k), 8000, tppnet.ProtoUDP, 400))
		}
	}
	n.RunUntil(500 * tppnet.Millisecond)
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	n.Run()

	// Find the link into h0: switch 1, the port facing host 0.
	mon := sys.Monitor
	var bestKey sketch.LinkKey
	bestEst := 0.0
	for _, k := range mon.Links() {
		if e := mon.Estimate(k); e > bestEst {
			bestEst, bestKey = e, k
		}
	}
	if bestEst < 4 || bestEst > 7 {
		t.Errorf("unique-source estimate on %v = %.1f, want ~5", bestKey, bestEst)
	}
	if mon.Pushes == 0 {
		t.Error("agents never pushed to the monitor")
	}
}

func TestMemorySizing(t *testing.T) {
	// §2.5: "If we use 1kbit memory per link, the total memory usage for
	// all 65536 links is about 8MB/server."
	hostsN, coreLinks := topo.FatTreeDims(64)
	if hostsN != 65536 {
		t.Fatalf("fat-tree hosts = %d", hostsN)
	}
	if got := sketch.MemoryPerServer(coreLinks, 1024); got != 8*1024*1024 {
		t.Errorf("memory per server = %d bytes, want 8 MiB", got)
	}
}

func TestSamplingOverheadUnderOnePercent(t *testing.T) {
	// §2.5: sampling 1 in 10 packets keeps TPP bandwidth overhead <1%.
	n := tppnet.NewNetwork(tppnet.WithSeed(4))
	hosts, _, _ := n.Dumbbell(4, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		SampleFreq:  10,
		BitsPerLink: 256,
		PushEvery:   50 * tppnet.Millisecond,
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 0; i < 1000; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 1000))
	}
	n.RunUntil(200 * tppnet.Millisecond)
	st := h0.Stats()
	frac := float64(st.TPPBytesAdded) / float64(st.TxBytes)
	if frac > 0.01 {
		t.Errorf("TPP bandwidth overhead %.2f%% with 1-in-10 sampling, want <1%%", frac*100)
	}
	if st.TPPsAttached == 0 {
		t.Error("nothing instrumented")
	}
}

// TestStopFlushesDirtyBitmaps: Stop must upload outstanding dirty bitmaps
// even when no push interval ever elapsed.
func TestStopFlushesDirtyBitmaps(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(4))
	hosts, _, _ := n.Dumbbell(4, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		BitsPerLink: 256,
		PushEvery:   10 * tppnet.Second, // longer than the run: only Stop flushes
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 0; i < 20; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 600))
	}
	n.RunUntil(50 * tppnet.Millisecond)
	if sys.Monitor.Pushes != 0 {
		t.Fatalf("pushed %d bitmaps before any interval elapsed", sys.Monitor.Pushes)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	if sys.Monitor.Pushes == 0 {
		t.Error("Stop did not flush dirty bitmaps")
	}
}

// TestCloseWhileRunningFlushes: Close without an explicit Stop must still
// flush dirty bitmaps — teardown routes through the system's own Stop.
func TestCloseWhileRunningFlushes(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(4))
	hosts, _, _ := n.Dumbbell(4, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		BitsPerLink: 256,
		PushEvery:   10 * tppnet.Second, // longer than the run: only Close flushes
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 0; i < 20; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 600))
	}
	n.RunFor(50 * tppnet.Millisecond)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if sys.Monitor.Pushes == 0 {
		t.Error("Close on a running system did not flush dirty bitmaps")
	}
}

// TestRestartResumesUploads: a Stop/Start cycle must leave the agents
// uploading again — Stop's permanent-looking agent halt is cleared by the
// next Start.
func TestRestartResumesUploads(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(4))
	hosts, _, _ := n.Dumbbell(4, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		BitsPerLink: 256,
		PushEvery:   20 * tppnet.Millisecond,
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	send := func(count int) {
		for i := 0; i < count; i++ {
			h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 600))
		}
	}
	send(10)
	n.RunFor(50 * tppnet.Millisecond)
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	flushed := sys.Monitor.Pushes
	if flushed == 0 {
		t.Fatal("no uploads before restart")
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	send(10)
	n.RunFor(50 * tppnet.Millisecond)
	if sys.Monitor.Pushes <= flushed {
		t.Errorf("restarted system never uploaded: pushes %d before, %d after",
			flushed, sys.Monitor.Pushes)
	}
}
