package sketch

import "minions/telemetry"

// Export bridges the monitor's upload stream into a telemetry pipeline as
// Records of App "opensketch", Kind "push": Node is the uploading host,
// Val the monitor's merged cardinality estimate for the link after the
// push, Aux[0]/Aux[1] the link's switch and port, Aux[2] the uploaded
// sketch bytes.
func (s *System) Export(pipe *telemetry.Pipeline) (cancel func()) {
	return telemetry.Export(s.Monitor.PushStream(), pipe, func(e PushEvent) telemetry.Record {
		return telemetry.Record{
			At:   int64(e.At),
			App:  "opensketch",
			Kind: "push",
			Node: uint64(e.Host),
			Val:  e.Estimate,
			Aux:  [3]uint64{uint64(e.Link.SwitchID), uint64(e.Link.Port), uint64(e.Bytes)},
		}
	})
}
