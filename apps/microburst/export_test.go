package microburst_test

import (
	"testing"

	"minions/apps/microburst"
	"minions/internal/trafficgen"
	"minions/telemetry"
	"minions/tppnet"
)

// TestExportRecords runs the Figure 1 workload with the monitor's stream
// bridged into a pipeline and checks the exported records carry the sample
// fields in the pinned encoding.
func TestExportRecords(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := n.Dumbbell(6, 100)
	mon := microburst.New(microburst.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	var sink telemetry.MemSink
	pipe := telemetry.NewPipeline(telemetry.Config{Spool: 1 << 14, Policy: telemetry.Block})
	pipe.Attach(&sink)
	cancel := mon.Export(pipe)
	defer cancel()

	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000, Load: 0.30, Duration: 200 * tppnet.Millisecond, Seed: 11,
	})
	n.RunUntil(250 * tppnet.Millisecond)
	pipe.Flush()

	if uint64(len(sink.Records)) != mon.Samples() {
		t.Fatalf("exported %d records, monitor ingested %d samples", len(sink.Records), mon.Samples())
	}
	for _, r := range sink.Records {
		if r.App != "microburst" || r.Kind != "sample" {
			t.Fatalf("record tagged %s/%s", r.App, r.Kind)
		}
		if r.Val < 0 {
			t.Fatalf("negative occupancy %v", r.Val)
		}
	}
	if st := pipe.Stats(); st.DroppedOldest+st.DroppedNewest != 0 {
		t.Fatalf("Block pipeline dropped records: %+v", st)
	}
}
