package microburst

import "minions/telemetry"

// Export bridges the monitor's sample stream into a telemetry pipeline as
// Records of App "microburst", Kind "sample": Node is the switch ID, Val
// the queue occupancy fraction, Aux[0] the output port. The encoder is a
// plain field copy — with no sink attached it costs nothing.
func (m *Monitor) Export(pipe *telemetry.Pipeline) (cancel func()) {
	return telemetry.Export(m.SampleStream(), pipe, func(s Sample) telemetry.Record {
		return telemetry.Record{
			At:   int64(s.At),
			App:  "microburst",
			Kind: "sample",
			Node: uint64(s.Queue.SwitchID),
			Val:  s.Occupancy,
			Aux:  [3]uint64{uint64(s.Queue.Port), 0, 0},
		}
	})
}
