package microburst_test

import (
	"testing"

	"minions/apps/microburst"
	"minions/internal/trafficgen"
	"minions/tppnet"
)

// figure1 runs a scaled-down §2.1 experiment: 6-host dumbbell at 100 Mb/s,
// all-to-all 10 kB messages at 30% load, every packet instrumented.
func figure1(t *testing.T, duration tppnet.Time) (*tppnet.Network, *microburst.Monitor) {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := n.Dumbbell(6, 100)
	mon := microburst.New(microburst.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000,
		Load:     0.30,
		Duration: duration,
		Seed:     11,
	})
	n.RunUntil(duration + 50*tppnet.Millisecond)
	return n, mon
}

func TestMonitorCollectsPerPacketSamples(t *testing.T) {
	_, mon := figure1(t, 500*tppnet.Millisecond)
	if mon.Samples() == 0 {
		t.Fatal("no samples collected")
	}
	qs := mon.Queues()
	if len(qs) < 4 {
		t.Fatalf("monitored %d queues, expected several", len(qs))
	}
	for _, q := range qs {
		if mon.CDF(q).N() == 0 {
			t.Errorf("queue %v has no samples", q)
		}
	}
}

func TestBurstsObservedAndQueuesOftenEmpty(t *testing.T) {
	// The Figure 1 claims: queues are empty for a large fraction of packet
	// arrivals, yet bursts (multi-packet occupancy spikes) do occur — which
	// is why sampling misses them and per-packet TPPs do not.
	_, mon := figure1(t, 1*tppnet.Second)
	sawBurst := false
	sawOftenEmpty := false
	for _, q := range mon.Queues() {
		if mon.MaxBurst(q) >= 3 {
			sawBurst = true
		}
		if mon.CDF(q).N() > 100 && mon.EmptyFraction(q) > 0.5 {
			sawOftenEmpty = true
		}
	}
	if !sawBurst {
		t.Error("no micro-bursts observed at 30% load")
	}
	if !sawOftenEmpty {
		t.Error("no queue was mostly empty — load model suspect")
	}
}

func TestTimeSeriesNonEmpty(t *testing.T) {
	_, mon := figure1(t, 300*tppnet.Millisecond)
	qs := mon.Queues()
	pts := mon.Series(qs[0]).Points()
	if len(pts) == 0 {
		t.Fatal("empty time series")
	}
}

func TestOverheadArithmetic(t *testing.T) {
	// §2.1: "If the diameter of the network is 5 hops, then each TPP adds
	// only a 54 byte overhead": 12 header + 12 instructions + 6x5 stats.
	// Our memory words are 32-bit (not the paper's 16-bit pairs), so the
	// per-hop record is 12 bytes and the total is 84; the structure of the
	// accounting is identical and asserted here.
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	n.Dumbbell(2, 100)
	mon := microburst.New(microburst.Config{})
	if err := mon.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	want := 12 + 12 + 5*3*4
	if got := mon.Overhead(); got != want {
		t.Errorf("overhead = %d, want %d", got, want)
	}
}

func TestSamplingReducesCost(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := n.Dumbbell(6, 100)
	mon := microburst.New(microburst.Config{
		Filter:     tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		SampleFreq: 10,
		Hosts:      hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000, Load: 0.2, Duration: 300 * tppnet.Millisecond, Seed: 5,
	})
	n.RunUntil(400 * tppnet.Millisecond)
	var attached, tx uint64
	for _, h := range n.Hosts {
		attached += h.Stats().TPPsAttached
		tx += h.Stats().TxPackets
	}
	frac := float64(attached) / float64(tx)
	if frac > 0.15 {
		t.Errorf("1-in-10 sampling instrumented %.0f%% of packets", frac*100)
	}
	if attached == 0 {
		t.Error("sampling instrumented nothing")
	}
	_ = mon
}

// TestSampleStreamMatchesAggregates: the typed telemetry stream delivers
// exactly the snapshots the aggregate counters record.
func TestSampleStreamMatchesAggregates(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := n.Dumbbell(6, 100)
	mon := microburst.New(microburst.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	var streamed uint64
	mon.SampleStream().Subscribe(func(s microburst.Sample) { streamed++ })
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000, Load: 0.2, Duration: 200 * tppnet.Millisecond, Seed: 7,
	})
	n.RunUntil(300 * tppnet.Millisecond)
	if streamed == 0 {
		t.Fatal("sample stream delivered nothing")
	}
	if streamed != mon.Samples() {
		t.Errorf("stream delivered %d samples, aggregates saw %d", streamed, mon.Samples())
	}
}

// TestCloseStopsCollection: after Close, traffic no longer feeds the
// monitor and the shim counts the views as unclaimed.
func TestCloseStopsCollection(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := n.Dumbbell(6, 100)
	mon := microburst.New(microburst.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000, Load: 0.2, Duration: 100 * tppnet.Millisecond, Seed: 9,
	})
	n.RunUntil(200 * tppnet.Millisecond)
	if mon.Samples() != 0 {
		t.Errorf("closed monitor ingested %d samples", mon.Samples())
	}
	var attached uint64
	for _, h := range hosts {
		attached += h.Stats().TPPsAttached
	}
	if attached != 0 {
		t.Errorf("closed monitor's filters still instrumented %d packets", attached)
	}
}
