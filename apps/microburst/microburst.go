// Package microburst implements the §2.1 application: per-packet visibility
// into queue occupancy. Every instrumented packet carries the three-PUSH TPP
//
//	PUSH [Switch:SwitchID]
//	PUSH [PacketMetadata:OutputPort]
//	PUSH [Queue:QueueOccupancy]
//
// and receiving hosts aggregate the snapshots into per-queue CDFs and time
// series — the two panels of Figure 1b. Because every delivered packet
// yields a sample taken at the instant it traversed each queue, bursts that
// a polling monitor would miss (the paper's point: one queue is empty at 80%
// of packet arrivals, so sampling misses the bursts) are captured exactly.
//
// Monitor implements the app.App contract: New(cfg) → Attach → (run
// traffic) → Close. It is a passive application — collection begins as soon
// as instrumented traffic flows, so Start is only the lifecycle transition.
package microburst

import (
	"fmt"
	"sort"
	"sync"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/stats"
	"minions/tpp"
	"minions/tppnet"
	"minions/tppnet/app"
)

// Program is the micro-burst TPP, verbatim from §2.1.
const Program = `
	PUSH [Switch:SwitchID]
	PUSH [PacketMetadata:OutputPort]
	PUSH [Queue:QueueOccupancy]
`

// WordsPerHop is the per-hop record size of the program.
const WordsPerHop = 3

// QueueKey identifies one monitored queue: a switch egress port.
type QueueKey struct {
	SwitchID uint32
	Port     uint32
}

// String renders the key.
func (k QueueKey) String() string { return fmt.Sprintf("s%d.p%d", k.SwitchID, k.Port) }

// Sample is one per-packet queue-occupancy snapshot, as published on the
// monitor's telemetry stream.
type Sample struct {
	Queue     QueueKey
	Occupancy float64
	At        tppnet.Time
}

// Config parameterizes a monitor; zero values take the paper's defaults.
type Config struct {
	// Filter selects the traffic to instrument (Figure 1: all UDP).
	Filter tppnet.FilterSpec
	// SampleFreq instruments one in N matching packets (default 1 = all,
	// as in Figure 1).
	SampleFreq int
	// Hops sizes the TPP's packet memory (default 5, the paper's network
	// diameter example).
	Hops int
	// Hosts limits installation to a subset; nil instruments every host of
	// the attached network.
	Hosts []*tppnet.Host
}

func (c Config) withDefaults() Config {
	if c.SampleFreq == 0 {
		c.SampleFreq = 1
	}
	if c.Hops == 0 {
		c.Hops = 5
	}
	return c
}

// Monitor aggregates queue-occupancy samples network-wide. Aggregators on
// hosts in different topology shards feed it concurrently, so ingestion is
// mutex-guarded; the aggregation itself (sample multisets, counts) is
// order-insensitive, which keeps sharded runs byte-identical to
// single-engine ones.
type Monitor struct {
	app.Base
	cfg Config

	mu      sync.Mutex
	cdfs    map[QueueKey]*stats.CDF
	series  map[QueueKey]*stats.TimeSeries
	samples uint64
	stream  app.Stream[Sample]
}

// New creates a monitor; Attach installs it on the network.
func New(cfg Config) *Monitor {
	return &Monitor{
		Base:   app.MakeBase("microburst"),
		cfg:    cfg.withDefaults(),
		cdfs:   make(map[QueueKey]*stats.CDF),
		series: make(map[QueueKey]*stats.TimeSeries),
	}
}

// Attach implements app.App: it registers the application identity,
// installs the §2.1 TPP on every selected host's matching traffic, and
// registers the per-host aggregators feeding this monitor.
func (m *Monitor) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if err := m.Provision(m, n, cp); err != nil {
		return err
	}
	hosts := m.cfg.Hosts
	if hosts == nil {
		hosts = n.Hosts
	}
	for _, h := range hosts {
		prog, err := asm.Assemble(fmt.Sprintf(".hops %d\n%s", m.cfg.Hops, Program))
		if err != nil {
			return err
		}
		if _, err := m.InstallTPP(h, m.cfg.Filter, prog, m.cfg.SampleFreq, 10); err != nil {
			return err
		}
		h := h
		if err := m.Aggregate(h, func(p *tppnet.Packet, view tpp.Section) {
			m.ingest(h, view)
		}); err != nil {
			return err
		}
	}
	return nil
}

// SampleStream returns the monitor's typed telemetry stream: one event per
// ingested queue snapshot. Subscribe before traffic starts to see every
// sample; the aggregate accessors (CDF, Series, ...) cover the full run
// either way.
func (m *Monitor) SampleStream() *app.Stream[Sample] { return &m.stream }

// ingest records one fully executed TPP's snapshots.
func (m *Monitor) ingest(h *tppnet.Host, view core.Section) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := h.Engine().Now()
	sec := now.Seconds()
	publish := m.stream.HasSubscribers()
	for _, hop := range view.StackView(WordsPerHop) {
		key := QueueKey{SwitchID: hop.Words[0], Port: hop.Words[1]}
		occ := float64(hop.Words[2])
		cdf := m.cdfs[key]
		if cdf == nil {
			cdf = &stats.CDF{}
			m.cdfs[key] = cdf
			m.series[key] = stats.NewTimeSeries(0.01) // 10 ms bins
		}
		cdf.Add(occ)
		m.series[key].Add(sec, occ)
		m.samples++
		if publish {
			m.stream.Publish(Sample{Queue: key, Occupancy: occ, At: now})
		}
	}
}

// Samples returns the total number of per-queue snapshots ingested.
func (m *Monitor) Samples() uint64 { return m.samples }

// Queues returns the monitored queue keys, sorted for stable output.
func (m *Monitor) Queues() []QueueKey {
	keys := make([]QueueKey, 0, len(m.cdfs))
	for k := range m.cdfs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].SwitchID != keys[j].SwitchID {
			return keys[i].SwitchID < keys[j].SwitchID
		}
		return keys[i].Port < keys[j].Port
	})
	return keys
}

// CDF returns the occupancy distribution for a queue.
func (m *Monitor) CDF(k QueueKey) *stats.CDF { return m.cdfs[k] }

// Series returns the occupancy time series for a queue.
func (m *Monitor) Series(k QueueKey) *stats.TimeSeries { return m.series[k] }

// EmptyFraction returns the fraction of a queue's samples that observed an
// empty queue — the Figure 1 CDF's headline number.
func (m *Monitor) EmptyFraction(k QueueKey) float64 {
	c := m.cdfs[k]
	if c == nil || c.N() == 0 {
		return 0
	}
	return c.FractionAtMost(0)
}

// MaxBurst returns the largest occupancy ever observed on a queue.
func (m *Monitor) MaxBurst(k QueueKey) float64 {
	c := m.cdfs[k]
	if c == nil {
		return 0
	}
	return c.Max()
}

// Overhead returns the per-packet byte cost of the instrumentation at the
// configured hop budget: the §2.1 arithmetic (12-byte header + 12 bytes of
// instructions + per-hop statistics).
func (m *Monitor) Overhead() int {
	return core.HeaderLen + 3*core.InsnSize + m.cfg.Hops*WordsPerHop*core.WordSize
}
