// Package ndb refactors the NetSight troubleshooting platform onto the TPP
// interface (§2.3). A trusted per-host agent inserts
//
//	PUSH [Switch:ID]
//	PUSH [PacketMetadata:MatchedEntryID]
//	PUSH [PacketMetadata:InputPort]
//
// on (a subset of) packets; the receiving host reconstructs a *packet
// history* — "a record of the packet's path through the network and the
// switch forwarding state applied to the packet" — without the network ever
// creating extra packet copies. On top of the history store this package
// provides the paper's four applications: netshark (network-wide tcpdump
// with queries), ndb (interactive debugger with backtraces, the package's
// namesake), netwatch (live policy checking via a typed violation stream)
// and loss localization via drop notifications.
//
// Deployment implements the app.App contract: New(cfg) → Attach → (run
// traffic) → Close. Collection is passive; Watch attaches live policies.
package ndb

import (
	"fmt"
	"strings"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/tppnet"
	"minions/tppnet/app"
)

// Program is the packet-history TPP of §2.3.
const Program = `
	PUSH [Switch:ID]
	PUSH [PacketMetadata:MatchedEntryID]
	PUSH [PacketMetadata:InputPort]
`

// WordsPerHop is the per-hop record size.
const WordsPerHop = 3

// DefaultHops is the paper's sizing example ("space for 10 hops").
const DefaultHops = 10

// HopRecord is one switch's forwarding decision for a packet.
type HopRecord struct {
	SwitchID  uint32
	EntryID   uint32 // matched flow entry (its version-carrying identity)
	InputPort uint32
}

// History is a packet history.
type History struct {
	At      tppnet.Time
	Flow    tppnet.FlowKey
	PktID   uint64
	Hops    []HopRecord
	Dropped bool // true when reconstructed from a drop notification
	DropAt  uint32
}

// Path renders the history's switch path like "1>3>7".
func (h History) Path() string {
	var b strings.Builder
	for i, hop := range h.Hops {
		if i > 0 {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "%d", hop.SwitchID)
	}
	return b.String()
}

// Collector is the central service receiving histories from all hosts. Its
// live feed is a typed stream: Stream().Subscribe for every arrival.
type Collector struct {
	histories []History
	stream    app.Stream[History]
}

// Add appends a history and publishes it on the live stream.
func (c *Collector) Add(h History) {
	c.histories = append(c.histories, h)
	c.stream.Publish(h)
}

// Stream returns the live history feed.
func (c *Collector) Stream() *app.Stream[History] { return &c.stream }

// Len returns the number of stored histories.
func (c *Collector) Len() int { return len(c.histories) }

// Query returns histories matching pred — the "SQL over stored traces"
// netshark/ndb interface.
func (c *Collector) Query(pred func(History) bool) []History {
	var out []History
	for _, h := range c.histories {
		if pred(h) {
			out = append(out, h)
		}
	}
	return out
}

// ByFlow returns the histories of one flow, in arrival order (ndb's
// backtrace for a flow).
func (c *Collector) ByFlow(f tppnet.FlowKey) []History {
	return c.Query(func(h History) bool { return h.Flow == f })
}

// TraversedSwitch returns histories whose path includes the switch.
func (c *Collector) TraversedSwitch(id uint32) []History {
	return c.Query(func(h History) bool {
		for _, hop := range h.Hops {
			if hop.SwitchID == id {
				return true
			}
		}
		return false
	})
}

// Drops returns the loss-localization records.
func (c *Collector) Drops() []History {
	return c.Query(func(h History) bool { return h.Dropped })
}

// Config parameterizes a deployment; zero values take the paper's defaults.
type Config struct {
	// Filter selects the traffic whose histories are collected.
	Filter tppnet.FilterSpec
	// SampleFreq collects one in N matching packets (default 1 = all).
	SampleFreq int
	// Hops sizes the TPP's packet memory (default DefaultHops).
	Hops int
	// Hosts limits installation to a subset; nil instruments every host.
	Hosts []*tppnet.Host
	// Switches limits drop mirroring to a subset; nil mirrors every switch.
	Switches []*tppnet.Switch
}

func (c Config) withDefaults() Config {
	if c.SampleFreq == 0 {
		c.SampleFreq = 1
	}
	if c.Hops == 0 {
		c.Hops = DefaultHops
	}
	return c
}

// Deployment wires the application: TPPs on sources, aggregators on
// receivers, drop mirroring on switches.
type Deployment struct {
	app.Base
	cfg Config
	// Collector is the central history store and live stream.
	Collector *Collector
	// Hops is the deployed per-TPP hop budget.
	Hops int

	closed     bool
	violations app.Stream[Violation]
	watching   bool
	policies   []Policy
}

// New creates a packet-history deployment; Attach installs it.
func New(cfg Config) *Deployment {
	cfg = cfg.withDefaults()
	return &Deployment{
		Base:      app.MakeBase("netsight"),
		cfg:       cfg,
		Collector: &Collector{},
		Hops:      cfg.Hops,
	}
}

// Attach implements app.App: it registers the application identity,
// installs the history TPP (with drop notification) on every selected
// host's matching traffic, registers history-reconstructing aggregators,
// and hooks §2.6 loss localization into every selected switch's drop path.
func (d *Deployment) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if err := d.Provision(d, n, cp); err != nil {
		return err
	}
	hosts := d.cfg.Hosts
	if hosts == nil {
		hosts = n.Hosts
	}
	switches := d.cfg.Switches
	if switches == nil {
		switches = n.Switches
	}
	col := d.Collector
	src := fmt.Sprintf(".hops %d\n.flags dropnotify\n%s", d.cfg.Hops, Program)
	for _, h := range hosts {
		prog, err := asm.Assemble(src)
		if err != nil {
			return err
		}
		if _, err := d.InstallTPP(h, d.cfg.Filter, prog, d.cfg.SampleFreq, 20); err != nil {
			return err
		}
		h := h
		if err := d.Aggregate(h, func(p *tppnet.Packet, view core.Section) {
			col.Add(historyFrom(h.Engine().Now(), p, view, false, 0))
		}); err != nil {
			return err
		}
	}
	// §2.6 loss localization: switches mirror dropped DropNotify TPPs. The
	// installed hook chains: packets that are not this deployment's (or
	// arrive after Close) fall through to whatever collector was installed
	// before Attach, so composed deployments all see their own drops and
	// teardown in any order never severs another app's hook.
	wire := d.ID().Wire
	for _, sw := range switches {
		sw := sw
		prev := sw.DropCollector
		sw.DropCollector = func(p *tppnet.Packet, reason tppnet.DropReason) {
			if d.closed || p.TPP == nil || p.TPP.AppID() != wire {
				if prev != nil {
					prev(p, reason)
				}
				return
			}
			col.Add(historyFrom(0, p, p.TPP, true, sw.ID()))
		}
	}
	return nil
}

// Close deactivates the switch drop hooks (they become transparent
// pass-throughs to the previously installed collectors), then releases the
// app's filters, aggregators and control-plane state.
func (d *Deployment) Close() error {
	d.closed = true
	return d.Base.Close()
}

// Watch attaches live policy checking (the paper's netwatch): every
// incoming history is checked against the policies, and violations are
// published on the returned typed stream. Call it any number of times;
// use app.Collect to accumulate violations into a slice.
func (d *Deployment) Watch(policies ...Policy) *app.Stream[Violation] {
	if !d.watching {
		d.watching = true
		d.Collector.Stream().Subscribe(func(h History) {
			for _, p := range d.policies {
				if v := p(h); v != nil {
					d.violations.Publish(*v)
				}
			}
		})
	}
	d.policies = append(d.policies, policies...)
	return &d.violations
}

// Violations returns the live violation stream fed by Watch.
func (d *Deployment) Violations() *app.Stream[Violation] { return &d.violations }

func historyFrom(at tppnet.Time, p *tppnet.Packet, view core.Section, dropped bool, dropAt uint32) History {
	h := History{At: at, Flow: p.Flow, PktID: p.ID, Dropped: dropped, DropAt: dropAt}
	for _, hop := range view.StackView(WordsPerHop) {
		h.Hops = append(h.Hops, HopRecord{
			SwitchID:  hop.Words[0],
			EntryID:   hop.Words[1],
			InputPort: hop.Words[2],
		})
	}
	return h
}

// OverheadBytes is the §2.3 accounting: TPP header + 3 instructions +
// per-hop data for the given path budget.
func OverheadBytes(hops int) int {
	return core.HeaderLen + 3*core.InsnSize + hops*WordsPerHop*core.WordSize
}

// Violation is a netwatch policy violation.
type Violation struct {
	Policy  string
	History History
	Detail  string
}

// Policy checks a packet history; nil means conforming.
type Policy func(History) *Violation

// IsolationPolicy flags any flow between the two host groups (tenant
// isolation, the paper's netwatch example).
func IsolationPolicy(groupA, groupB map[tppnet.NodeID]bool) Policy {
	return func(h History) *Violation {
		cross := (groupA[h.Flow.Src] && groupB[h.Flow.Dst]) ||
			(groupB[h.Flow.Src] && groupA[h.Flow.Dst])
		if cross {
			return &Violation{
				Policy:  "isolation",
				History: h,
				Detail:  fmt.Sprintf("flow %v crosses tenant boundary", h.Flow),
			}
		}
		return nil
	}
}

// WaypointPolicy requires every history to traverse the given switch (e.g.
// a firewall) — a path-conformance check.
func WaypointPolicy(switchID uint32) Policy {
	return func(h History) *Violation {
		for _, hop := range h.Hops {
			if hop.SwitchID == switchID {
				return nil
			}
		}
		return &Violation{
			Policy:  "waypoint",
			History: h,
			Detail:  fmt.Sprintf("path %s avoids waypoint %d", h.Path(), switchID),
		}
	}
}

// LoopPolicy flags histories visiting any switch twice.
func LoopPolicy() Policy {
	return func(h History) *Violation {
		seen := map[uint32]bool{}
		for _, hop := range h.Hops {
			if seen[hop.SwitchID] {
				return &Violation{
					Policy:  "loop",
					History: h,
					Detail:  fmt.Sprintf("switch %d repeated on %s", hop.SwitchID, h.Path()),
				}
			}
			seen[hop.SwitchID] = true
		}
		return nil
	}
}
