package ndb

import "minions/telemetry"

// Export bridges the collector's history stream into a telemetry pipeline
// as Records of App "ndb", Kind "history": Node is the flow's source, Val
// the hop count, Aux[0] the packet ID, Aux[1] the destination node, and
// Aux[2] is 1 for a history reconstructed from a drop notification.
func (c *Collector) Export(pipe *telemetry.Pipeline) (cancel func()) {
	return telemetry.Export(c.Stream(), pipe, func(h History) telemetry.Record {
		r := telemetry.Record{
			At:   int64(h.At),
			App:  "ndb",
			Kind: "history",
			Node: uint64(h.Flow.Src),
			Val:  float64(len(h.Hops)),
			Aux:  [3]uint64{h.PktID, uint64(h.Flow.Dst), 0},
		}
		if h.Dropped {
			r.Aux[2] = 1
		}
		return r
	})
}

// ExportViolations bridges the deployment's violation stream into a
// telemetry pipeline as Records of App "ndb", Kind "violation", with the
// policy name in Note. Violations are rare by construction, so carrying the
// name per record is fine here where it would not be on a hot path.
func (d *Deployment) ExportViolations(pipe *telemetry.Pipeline) (cancel func()) {
	return telemetry.Export(d.Violations(), pipe, func(v Violation) telemetry.Record {
		return telemetry.Record{
			At:   int64(v.History.At),
			App:  "ndb",
			Kind: "violation",
			Node: uint64(v.History.Flow.Src),
			Val:  float64(len(v.History.Hops)),
			Aux:  [3]uint64{v.History.PktID, uint64(v.History.Flow.Dst), 0},
			Note: v.Policy,
		}
	})
}
