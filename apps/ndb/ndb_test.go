package ndb_test

import (
	"testing"

	"minions/apps/ndb"
	"minions/tppnet"
	"minions/tppnet/app"
)

func deploy(t *testing.T) (*tppnet.Network, *ndb.Deployment) {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	hosts, _, _ := n.Dumbbell(4, 1000)
	d := ndb.New(ndb.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := d.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	return n, d
}

func TestPacketHistoriesCollected(t *testing.T) {
	n, d := deploy(t)
	h0, h3 := n.Hosts[0], n.Hosts[3] // opposite sides of the dumbbell
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 0; i < 5; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 500))
	}
	n.Run()
	if d.Collector.Len() != 5 {
		t.Fatalf("collected %d histories, want 5", d.Collector.Len())
	}
	flow := tppnet.FlowKey{Src: h0.ID(), Dst: h3.ID(), SrcPort: 1000, DstPort: 8000, Proto: tppnet.ProtoUDP}
	hist := d.Collector.ByFlow(flow)
	if len(hist) != 5 {
		t.Fatalf("ByFlow found %d", len(hist))
	}
	// The dumbbell path crosses both switches: 1 then 2.
	if hist[0].Path() != "1>2" {
		t.Errorf("path = %q, want 1>2", hist[0].Path())
	}
	for _, hr := range hist[0].Hops {
		if hr.EntryID == 0 {
			t.Error("matched entry ID missing from history")
		}
	}
}

func TestNdbQueriesBySwitch(t *testing.T) {
	n, d := deploy(t)
	h0, h1, h3 := n.Hosts[0], n.Hosts[1], n.Hosts[3]
	h1.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	// Same-side traffic (h0->h1) stays on switch 1; cross traffic visits 2.
	h0.Send(h0.NewPacket(h1.ID(), 1000, 8000, tppnet.ProtoUDP, 300))
	h0.Send(h0.NewPacket(h3.ID(), 1001, 8000, tppnet.ProtoUDP, 300))
	n.Run()
	through2 := d.Collector.TraversedSwitch(2)
	if len(through2) != 1 {
		t.Fatalf("TraversedSwitch(2) = %d, want 1", len(through2))
	}
	if through2[0].Flow.SrcPort != 1001 {
		t.Error("wrong history matched")
	}
}

func TestLossLocalization(t *testing.T) {
	// Overflow the slow inter-switch queue and expect drop histories
	// pinpointing the dropping switch: fast host links into a 10 Mb/s core.
	n := tppnet.NewNetwork(tppnet.WithSeed(2))
	left, right := n.AddSwitch(4), n.AddSwitch(4)
	var hostsArr []*tppnet.Host
	for i := 0; i < 4; i++ {
		h := n.AddHost()
		hostsArr = append(hostsArr, h)
		if i < 2 {
			n.Connect(h, left, tppnet.HostLink(1000))
		} else {
			n.Connect(h, right, tppnet.HostLink(1000))
		}
	}
	n.Connect(left, right, tppnet.LinkConfig{
		RateBps:    10_000_000,
		Delay:      5 * tppnet.Microsecond,
		QueueBytes: 20_000, // shallow core queue: bursts overflow here
	})
	n.ComputeRoutes()
	d := ndb.New(ndb.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hostsArr,
	})
	if err := d.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	// Paced bursts, each larger than the core queue: drops at the left
	// switch, while the fast host NIC never overflows.
	for b := 0; b < 10; b++ {
		n.Eng.At(tppnet.Time(b)*100*tppnet.Millisecond, func() {
			for i := 0; i < 50; i++ {
				h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 1300))
			}
		})
	}
	n.RunUntil(2 * tppnet.Second)
	drops := d.Collector.Drops()
	if len(drops) == 0 {
		t.Fatal("no drop notifications collected")
	}
	for _, dr := range drops {
		if dr.DropAt != left.ID() {
			t.Fatalf("drop located at switch %d, want %d", dr.DropAt, left.ID())
		}
		// The history shows the hops up to the drop point.
		if len(dr.Hops) == 0 || dr.Hops[0].SwitchID != left.ID() {
			t.Errorf("drop history hops: %+v", dr.Hops)
		}
	}
}

func TestNetwatchIsolation(t *testing.T) {
	n, d := deploy(t)
	h0, h1, h3 := n.Hosts[0], n.Hosts[1], n.Hosts[3]
	violations := app.Collect(d.Watch(ndb.IsolationPolicy(
		map[tppnet.NodeID]bool{h0.ID(): true},
		map[tppnet.NodeID]bool{h3.ID(): true},
	)))
	h1.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	h0.Send(h0.NewPacket(h1.ID(), 1, 8000, tppnet.ProtoUDP, 200)) // allowed
	h0.Send(h0.NewPacket(h3.ID(), 2, 8000, tppnet.ProtoUDP, 200)) // violates
	n.Run()
	if len(*violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(*violations))
	}
	if (*violations)[0].Policy != "isolation" {
		t.Errorf("policy = %q", (*violations)[0].Policy)
	}
}

func TestNetwatchWaypointAndLoop(t *testing.T) {
	n, d := deploy(t)
	h0, h1 := n.Hosts[0], n.Hosts[1]
	violations := app.Collect(d.Watch(
		ndb.WaypointPolicy(2), // require crossing switch 2
		ndb.LoopPolicy(),
	))
	h1.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	// h0 -> h1 stays on switch 1: waypoint violation, no loop.
	h0.Send(h0.NewPacket(h1.ID(), 1, 8000, tppnet.ProtoUDP, 200))
	n.Run()
	if len(*violations) != 1 || (*violations)[0].Policy != "waypoint" {
		t.Fatalf("violations: %+v", *violations)
	}
}

func TestOverheadAccounting(t *testing.T) {
	// §2.3: "The instruction overhead is 12 bytes/packet and 6 bytes of
	// per-hop data. With a TPP header and space for 10 hops, this is 84
	// bytes/packet." Our 32-bit words double the per-hop data (12 B/hop):
	// 12 + 12 + 120 = 144. Structure identical; both yield <15% at 1000 B.
	got := ndb.OverheadBytes(10)
	if got != 144 {
		t.Errorf("overhead = %d, want 144", got)
	}
	if frac := float64(got) / 1000; frac > 0.15 {
		t.Errorf("bandwidth overhead %.1f%% implausible", frac*100)
	}
}

func TestSampledDeploymentCollectsSubset(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	hosts, _, _ := n.Dumbbell(4, 1000)
	d := ndb.New(ndb.Config{
		Filter:     tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		SampleFreq: 10,
		Hosts:      hosts,
	})
	if err := d.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 0; i < 100; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, tppnet.ProtoUDP, 500))
	}
	n.Run()
	if got := d.Collector.Len(); got != 10 {
		t.Errorf("sampled collection = %d histories, want 10", got)
	}
}

// TestDropHookChainsAndSurvivesClose: the deployment's switch drop hook
// must pass non-matching packets through to whatever collector was
// installed before Attach, and Close must leave that chain intact (a
// transparent pass-through), so composed apps tear down in any order.
func TestDropHookChainsAndSurvivesClose(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	hosts, _, _ := n.Dumbbell(4, 1000)
	prior := 0
	sw := n.Switches[0]
	sw.DropCollector = func(p *tppnet.Packet, reason tppnet.DropReason) { prior++ }
	d := ndb.New(ndb.Config{
		Filter: tppnet.FilterSpec{Proto: tppnet.ProtoUDP},
		Hosts:  hosts,
	})
	if err := d.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if sw.DropCollector == nil {
		t.Fatal("Attach did not install drop mirroring")
	}
	// A dropped packet with no TPP is not ndb's: the prior collector must
	// still see it through the chain.
	sw.DropCollector(&tppnet.Packet{}, 0)
	if prior != 1 {
		t.Fatalf("prior collector saw %d drops through the chain, want 1", prior)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the hook is a transparent pass-through: everything —
	// including packets that would have matched ndb — reaches the prior
	// collector, and the closed deployment collects nothing.
	sw.DropCollector(&tppnet.Packet{}, 0)
	if prior != 2 {
		t.Fatalf("prior collector saw %d drops after Close, want 2", prior)
	}
	if got := d.Collector.Len(); got != 0 {
		t.Errorf("closed deployment collected %d histories", got)
	}
}
