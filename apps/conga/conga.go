// Package conga implements CONGA*, the §2.4 end-host refactoring of CONGA's
// congestion-aware load balancing. The network provides only two things:
// multipath routes selectable by a packet header tag, and the TPP interface.
// End-hosts send per-path probe TPPs
//
//	PUSH [Link:ID]
//	PUSH [Link:TX-Utilization]
//	PUSH [Link:TX-Bytes]
//
// every millisecond, build a table Path i -> congestion metric m_i (max or
// sum of link utilization — deferred to deploy time, as the paper stresses),
// and steer each flowlet onto the least congested path by setting the tag.
// The ECMP baseline is the same network with no balancer: switches hash
// flows statically.
//
// Balancer implements the app.App contract: New(cfg) → Attach → Start, then
// install Tagger on the flows to balance.
package conga

import (
	"sort"
	"strconv"
	"strings"

	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/mem"
	"minions/internal/sim"
	"minions/tppnet"
	"minions/tppnet/app"
)

// Aggregation folds per-link congestion into a path metric.
type Aggregation int

const (
	// AggMax mirrors CONGA's hardware choice (overflow-safe in switches).
	AggMax Aggregation = iota
	// AggSum is "closer to optimal" per the CONGA authors — affordable
	// here because end-hosts do the aggregation (§2.4).
	AggSum
)

// Config tunes a balancer.
type Config struct {
	// Host is the sending host the balancer runs on.
	Host *tppnet.Host
	// Dst is the destination whose paths are balanced.
	Dst tppnet.NodeID

	ProbePeriod tppnet.Time // per-path probe interval (paper: 1 ms)
	FlowletGap  tppnet.Time // idle gap that opens a new flowlet (500 us)
	Agg         Aggregation // metric aggregation
	CandTags    int         // path tags explored during discovery (default 8)
	Hops        int         // TPP memory budget in hops (default 4)
	// Hysteresis (permille of utilization) a better path must win by before
	// a flowlet moves; prevents oscillation on equalized paths.
	Hysteresis float64
	// MoveInterval rate-limits path changes to one flowlet per interval so
	// stale metrics cannot stampede every flowlet at once (default
	// ProbePeriod).
	MoveInterval tppnet.Time
	// DeadAfter is the number of consecutive probe misses (timeouts) before
	// a path is declared dead and excluded from balancing (default 3).
	// Probes are TPPs and TPPs are unreliable by design; one loss is noise,
	// a streak is a dead uplink.
	DeadAfter int
	// CongestedPm separates congestion loss from failure: probe timeouts
	// on a path whose last reading had a hop at or above this utilization
	// (permille) do not count toward DeadAfter — drop-tail losses on a
	// saturated path are what the congestion metric already steers away
	// from, not evidence the path is gone (default 900).
	CongestedPm float64
	// ReprobePeriod is the cadence at which dead paths are still probed so
	// a restored link resurrects its path (default 5 x ProbePeriod).
	ReprobePeriod tppnet.Time
}

func (c Config) withDefaults() Config {
	if c.ProbePeriod == 0 {
		c.ProbePeriod = sim.Millisecond
	}
	if c.FlowletGap == 0 {
		c.FlowletGap = 500 * sim.Microsecond
	}
	if c.CandTags == 0 {
		c.CandTags = 8
	}
	if c.Hops == 0 {
		c.Hops = 4
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 200
	}
	if c.MoveInterval == 0 {
		c.MoveInterval = 5 * c.ProbePeriod
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 3
	}
	if c.ReprobePeriod == 0 {
		c.ReprobePeriod = 5 * c.ProbePeriod
	}
	if c.CongestedPm == 0 {
		c.CongestedPm = 900
	}
	return c
}

// pathInfo is one distinct network path toward the destination.
type pathInfo struct {
	sig    string // concatenated link IDs
	tag    uint16 // representative tag steering onto this path
	metric float64
	seen   sim.Time

	// Failure tracking: missed counts consecutive probe timeouts; DeadAfter
	// of them declare the path dead until a probe comes back. maxUtil is
	// the last probe's highest per-hop utilization, used to attribute
	// timeouts on saturated paths to congestion instead of failure.
	missed      int
	dead        bool
	deadSince   sim.Time
	lastReprobe sim.Time
	maxUtil     float64
}

// Balancer performs CONGA* load balancing from one host toward one
// destination. Attach it to flows via Tagger.
type Balancer struct {
	app.Base
	h    *tppnet.Host
	dst  tppnet.NodeID
	cfg  Config
	prog *core.Program

	paths   map[string]*pathInfo
	byTag   map[uint16]*pathInfo
	flowlet map[tppnet.FlowKey]*flowletState

	running  bool
	gen      uint64 // invalidates stale probe-loop events across Stop/Start
	lastMove sim.Time
	anyMove  bool
	// ProbesSent and ProbeBytes account the balancing overhead.
	ProbesSent uint64
	ProbeBytes uint64
	// Moves counts flowlet path changes.
	Moves uint64
	// PathDeaths and PathRevives count dead-path declarations and
	// resurrections (reroute-around-failure activity).
	PathDeaths  uint64
	PathRevives uint64
	// SigAnomalies counts echoed probes whose hop signature disagreed with
	// the tag's known path — corrupted probe memory, discarded.
	SigAnomalies uint64

	samples app.Stream[PathSample]
}

// PathSample is one probe's congestion measurement, published on the
// balancer's telemetry stream as each probe returns: the path's tag, its
// aggregated fabric metric (max or sum of per-hop utilization, per the
// configured Agg), and how many hops the probe traversed.
type PathSample struct {
	At     sim.Time
	Tag    uint16
	Metric float64
	Hops   int
	// Dead marks samples published on a path's death (probe-timeout streak)
	// or revival; the metric then is the last known one.
	Dead bool
}

// Paths returns the balancer's typed per-probe path telemetry stream.
func (b *Balancer) Paths() *app.Stream[PathSample] { return &b.samples }

type flowletState struct {
	tag  uint16
	last sim.Time
}

// probeProgram is the §2.4 probe TPP.
func probeProgram(hops int) *core.Program {
	return &core.Program{
		Mode:        core.AddrHop,
		PerHopWords: 3,
		MemWords:    3 * hops,
		Insns: []core.Instruction{
			{Op: core.OpLOAD, A: 0, Addr: mem.DynOutLinkBase + mem.LinkID},
			{Op: core.OpLOAD, A: 1, Addr: mem.DynOutLinkBase + mem.LinkTXUtil},
			{Op: core.OpLOAD, A: 2, Addr: mem.DynOutLinkBase + mem.LinkTXBytes},
		},
	}
}

// New creates a balancer for traffic from cfg.Host to cfg.Dst; Attach
// registers it with the control plane.
func New(cfg Config) *Balancer {
	cfg = cfg.withDefaults()
	return &Balancer{
		Base: app.MakeBase("conga"),
		h:    cfg.Host, dst: cfg.Dst, cfg: cfg,
		prog:    probeProgram(cfg.Hops),
		paths:   make(map[string]*pathInfo),
		byTag:   make(map[uint16]*pathInfo),
		flowlet: make(map[tppnet.FlowKey]*flowletState),
	}
}

// Attach implements app.App: it registers the application identity. The
// balancer's probes are standalone read-only TPPs, so no write grants are
// needed.
func (b *Balancer) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	return b.Provision(b, n, cp)
}

// Start implements app.App: it launches path discovery and the periodic
// probe loop.
func (b *Balancer) Start() error {
	if err := b.Base.Start(); err != nil {
		return err
	}
	b.running = true
	b.gen++
	// Discovery: probe every candidate tag once; distinct link-ID
	// signatures identify distinct paths ("the header of the echoed TPP
	// also contains the path ID"). Tag 0 means "untagged" and is skipped.
	for tag := 1; tag <= b.cfg.CandTags; tag++ {
		b.probe(uint16(tag))
	}
	b.loop()
	return nil
}

// Stop implements app.App: it halts probing.
func (b *Balancer) Stop() error {
	b.running = false
	return b.Base.Stop()
}

// Handle implements sim.Handler: the balancer is its own resident probe
// timer, so the periodic loop re-arms without a per-round closure. Events
// from a generation before the latest Start are stale (the engine cannot
// cancel events, so a Stop/Start cycle must not double the probe cadence).
func (b *Balancer) Handle(gen uint64) {
	if gen != b.gen {
		return
	}
	b.loop()
}

func (b *Balancer) loop() {
	if !b.running {
		return
	}
	now := b.h.Engine().Now()
	// Steady state: probe one representative tag per distinct path. Dead
	// paths drop to the slower re-probe cadence — still watched, so a
	// restored link resurrects the path, but not at full probe cost.
	for _, p := range b.sortedPaths() {
		if p.dead {
			if now-p.lastReprobe < b.cfg.ReprobePeriod {
				continue
			}
			p.lastReprobe = now
		}
		b.probe(p.tag)
	}
	b.h.Engine().ScheduleAfter(b.cfg.ProbePeriod, b, b.gen)
}

func (b *Balancer) probe(tag uint16) {
	clone := *b.prog
	err := b.h.ExecuteTPP(b.ID(), &clone, b.dst, host.ExecOpts{
		Timeout:     5 * b.cfg.ProbePeriod,
		MaxAttempts: 1,
		PathTag:     tag,
	}, func(view core.Section, err error) {
		if err == nil {
			b.onProbe(tag, view)
		} else {
			b.onProbeMiss(tag)
		}
	})
	if err == nil {
		b.ProbesSent++
		b.ProbeBytes += uint64(42 + b.prog.WireLen())
	}
}

// onProbeMiss counts a probe timeout against its path; a streak of
// DeadAfter misses declares the path dead, publishing a Dead sample.
func (b *Balancer) onProbeMiss(tag uint16) {
	p := b.byTag[tag]
	if p == nil {
		return // discovery probe for a tag that never mapped to a path
	}
	if p.maxUtil >= b.cfg.CongestedPm {
		// A saturated path sheds probes at its drop-tail; that is the
		// congestion signal working, not a failure.
		return
	}
	p.missed++
	if p.dead || p.missed < b.cfg.DeadAfter {
		return
	}
	p.dead = true
	p.deadSince = b.h.Engine().Now()
	p.lastReprobe = p.deadSince
	b.PathDeaths++
	if b.samples.HasSubscribers() {
		b.samples.Publish(PathSample{At: p.deadSince, Tag: tag, Metric: p.metric, Dead: true})
	}
}

// onProbe folds one echoed probe into the path table.
func (b *Balancer) onProbe(tag uint16, view core.Section) {
	hops := view.HopViews()
	if len(hops) == 0 {
		return
	}
	var sigB strings.Builder
	metric := 0.0
	maxUtil := 0.0
	for i, hv := range hops {
		sigB.WriteString(strconv.Itoa(int(hv.Words[0])))
		sigB.WriteByte('-')
		util := float64(hv.Words[1])
		if util > maxUtil {
			maxUtil = util
		}
		// Skip the final host-facing hop when summing: CONGA balances the
		// switch-switch fabric hops (§2.4).
		if i == len(hops)-1 && len(hops) > 1 {
			continue
		}
		switch b.cfg.Agg {
		case AggMax:
			if util > metric {
				metric = util
			}
		case AggSum:
			metric += util
		}
	}
	sig := sigB.String()
	if known := b.byTag[tag]; known != nil && known.sig != sig {
		// The echo disagrees with the tag's known path. Tag steering is
		// deterministic, so this is not rerouting — it is a corrupted
		// SwitchID word (TPP packet memory is deliberately outside the
		// header checksum; switches mutate it every hop). Folding it in
		// would fork a phantom path that can never answer again and would
		// sit dead in the table forever; drop the sample instead.
		b.SigAnomalies++
		return
	}
	p := b.paths[sig]
	if p == nil {
		p = &pathInfo{sig: sig, tag: tag}
		b.paths[sig] = p
		b.byTag[tag] = p
	}
	p.metric = metric
	p.maxUtil = maxUtil
	p.seen = b.h.Engine().Now()
	p.missed = 0
	if p.dead {
		// The path answers again: resurrect it.
		p.dead = false
		b.PathRevives++
	}
	if b.samples.HasSubscribers() {
		b.samples.Publish(PathSample{At: p.seen, Tag: tag, Metric: metric, Hops: len(hops)})
	}
}

// sortedPaths returns paths in stable (signature) order.
func (b *Balancer) sortedPaths() []*pathInfo {
	out := make([]*pathInfo, 0, len(b.paths))
	for _, p := range b.paths {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}

// NumPaths returns the number of distinct paths discovered.
func (b *Balancer) NumPaths() int { return len(b.paths) }

// DeadPaths returns how many discovered paths are currently marked dead.
func (b *Balancer) DeadPaths() int {
	n := 0
	for _, p := range b.paths {
		if p.dead {
			n++
		}
	}
	return n
}

// bestPath returns the least congested live path (nil before discovery).
// Dead paths are excluded unless every path is dead, in which case the
// least congested of them is returned — a deterministic fallback that
// keeps traffic flowing the moment anything comes back.
func (b *Balancer) bestPath() *pathInfo {
	var best, bestAny *pathInfo
	for _, p := range b.sortedPaths() {
		if bestAny == nil || p.metric < bestAny.metric {
			bestAny = p
		}
		if p.dead {
			continue
		}
		if best == nil || p.metric < best.metric {
			best = p
		}
	}
	if best == nil {
		return bestAny
	}
	return best
}

// bestTag picks the representative tag of the least congested path.
func (b *Balancer) bestTag() (uint16, bool) {
	best := b.bestPath()
	if best == nil {
		return 0, false
	}
	return best.tag, true
}

// maybeMove applies the flowlet re-selection policy: move only to a path
// that beats the current one by the hysteresis margin, and at most one
// flowlet per MoveInterval (stale metrics otherwise stampede every flowlet
// onto the same path at once).
func (b *Balancer) maybeMove(st *flowletState, now sim.Time) {
	onDead := false
	if cur, ok := b.byTag[st.tag]; ok && cur.dead {
		onDead = true
	}
	// The move rate limit exists to stop stale-metric stampedes between
	// live paths; escaping a dead path is not subject to it — a failure
	// must not strand flowlets for a MoveInterval.
	if !onDead && b.anyMove && now-b.lastMove < b.cfg.MoveInterval {
		return
	}
	cur, ok := b.byTag[st.tag]
	if !ok {
		if tag, found := b.bestTag(); found {
			st.tag = tag
		}
		return
	}
	best := b.bestPath()
	if best == nil || best == cur {
		return
	}
	if cur.dead {
		// No hysteresis against a dead path: anything live wins.
		if !best.dead {
			st.tag = best.tag
			b.Moves++
			b.lastMove = now
			b.anyMove = true
		}
		return
	}
	if best.metric < cur.metric-b.cfg.Hysteresis {
		st.tag = best.tag
		b.Moves++
		b.lastMove = now
		b.anyMove = true
	}
}

// Tagger returns the per-packet callback implementing flowlet switching:
// install it as the flow's Tagger. A new flowlet opens when the flow has
// been idle longer than FlowletGap; it is pinned to the currently least
// congested path.
func (b *Balancer) Tagger() func(p *tppnet.Packet) {
	return func(p *tppnet.Packet) {
		now := b.h.Engine().Now()
		st := b.flowlet[p.Flow]
		if st == nil {
			st = &flowletState{}
			b.flowlet[p.Flow] = st
			if tag, ok := b.bestTag(); ok {
				st.tag = tag
			}
		} else if now-st.last > b.cfg.FlowletGap {
			b.maybeMove(st, now)
		} else if cur, ok := b.byTag[st.tag]; ok && cur.dead {
			// Mid-flowlet escape: the path died under this flowlet, and
			// packet order is already forfeit — reroute immediately.
			b.maybeMove(st, now)
		}
		st.last = now
		p.PathTag = st.tag
	}
}
