package conga_test

import (
	"testing"

	"minions/apps/conga"
	"minions/tppnet"
)

// balancer creates, attaches and starts a CONGA* balancer from h1 to h2.
func balancer(t *testing.T, n *tppnet.Network, cfg conga.Config) *conga.Balancer {
	t.Helper()
	b := conga.New(cfg)
	if err := b.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return b
}

// figure4 runs the §2.4 experiment: demands 50 Mb/s (L0->L2, single path)
// and 120 Mb/s (L1->L2, two paths), with or without CONGA*. It returns the
// achieved throughputs in Mb/s and the maximum fabric-link utilization in
// permille.
func figure4(t *testing.T, useConga bool, agg conga.Aggregation) (thr0, thr1, maxUtil float64) {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(9))
	hosts, _, _ := n.LeafSpine(100)
	h0, h1, h2 := hosts[0], hosts[1], hosts[2]

	sink0 := tppnet.NewSink(h2, 7100, tppnet.ProtoUDP)
	sink1 := tppnet.NewSink(h2, 7200, tppnet.ProtoUDP)

	// Demand 50: one flow. Demand 120: eight 15 Mb/s subflows.
	f0 := tppnet.NewUDPFlow(h0, h2.ID(), 7100, 7100, 1500)
	f0.SetRateBps(50_000_000)
	var subs []*tppnet.UDPFlow
	for i := 0; i < 8; i++ {
		f := tppnet.NewUDPFlow(h1, h2.ID(), uint16(7200+i), 7200, 1500)
		f.SetRateBps(15_000_000)
		subs = append(subs, f)
	}

	if useConga {
		b := balancer(t, n, conga.Config{Host: h1, Dst: h2.ID(), Agg: agg})
		tagger := b.Tagger()
		for _, f := range subs {
			f.Tagger = tagger
		}
		defer b.Stop()
	}

	f0.Start()
	for _, f := range subs {
		f.Start()
	}

	const secs = 3
	warm := tppnet.Time(secs-1) * tppnet.Second
	n.RunUntil(warm)
	b0, b1 := sink0.Bytes, sink1.Bytes

	// Sample fabric utilization during the steady window.
	maxPm := uint32(0)
	for i := 0; i < 10; i++ {
		n.RunUntil(warm + tppnet.Time(i+1)*100*tppnet.Millisecond)
		for _, l := range n.Links() {
			if l.RateMbps() != 100 {
				continue // fabric links only
			}
			if pm := l.UtilPermille(); pm > maxPm {
				maxPm = pm
			}
		}
	}
	f0.Stop()
	for _, f := range subs {
		f.Stop()
	}
	toMbps := func(d uint64) float64 { return float64(d) * 8 / float64(1) / 1e6 }
	return toMbps(sink0.Bytes - b0), toMbps(sink1.Bytes - b1), float64(maxPm)
}

func TestECMPBaselineCongests(t *testing.T) {
	thr0, thr1, maxUtil := figure4(t, false, conga.AggSum)
	total := thr0 + thr1
	// ECMP: the static hash overloads the S0 path; demand 170 is not met
	// and some fabric link saturates (paper: 45+115=160, max util 100%).
	if total > 168 {
		t.Errorf("ECMP met full demand (%.1f Mb/s) — congestion model broken", total)
	}
	if maxUtil < 950 {
		t.Errorf("ECMP max util = %.0f permille, expected saturation", maxUtil)
	}
	if thr0 > 51 {
		t.Errorf("thr0 = %.1f exceeds demand", thr0)
	}
}

func TestCongaMeetsDemandsAndLowersUtil(t *testing.T) {
	thr0e, thr1e, utilE := figure4(t, false, conga.AggMax)
	thr0c, thr1c, utilC := figure4(t, true, conga.AggMax)

	// Paper's table: CONGA* achieves ~50 and ~115-120 with max util ~85%.
	if thr0c < 45 {
		t.Errorf("CONGA* flow0 = %.1f Mb/s, want ~50", thr0c)
	}
	if thr1c < 105 {
		t.Errorf("CONGA* flow1 = %.1f Mb/s, want ~115", thr1c)
	}
	if thr0c+thr1c <= thr0e+thr1e {
		t.Errorf("CONGA* total %.1f <= ECMP total %.1f", thr0c+thr1c, thr0e+thr1e)
	}
	if utilC >= utilE {
		t.Errorf("CONGA* max util %.0f >= ECMP %.0f", utilC, utilE)
	}
	_ = thr0e
}

func TestCongaDiscoversBothPaths(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(9))
	hosts, _, _ := n.LeafSpine(100)
	b := balancer(t, n, conga.Config{Host: hosts[1], Dst: hosts[2].ID()})
	n.RunUntil(100 * tppnet.Millisecond)
	b.Stop()
	if b.NumPaths() != 2 {
		t.Errorf("discovered %d paths, want 2 (via S0 and S1)", b.NumPaths())
	}
}

func TestProbeOverheadSmall(t *testing.T) {
	// §2.4: "the overhead introduced by TPP packets was minimal (<1% of
	// the total traffic)".
	thr0, thr1, _ := figure4(t, true, conga.AggSum)
	n := tppnet.NewNetwork(tppnet.WithSeed(9))
	hosts, _, _ := n.LeafSpine(100)
	b := balancer(t, n, conga.Config{Host: hosts[1], Dst: hosts[2].ID()})
	n.RunUntil(tppnet.Second)
	b.Stop()
	probeMbps := float64(b.ProbeBytes) * 8 / 1e6
	totalMbps := thr0 + thr1
	if frac := probeMbps / totalMbps; frac > 0.02 {
		t.Errorf("probe overhead %.2f%% of traffic, want ~<1%%", frac*100)
	}
}

func TestAggregationModes(t *testing.T) {
	// Both aggregations must rebalance; sum is at least as good in total.
	_, thr1Max, _ := figure4(t, true, conga.AggMax)
	_, thr1Sum, _ := figure4(t, true, conga.AggSum)
	if thr1Max < 100 || thr1Sum < 100 {
		t.Errorf("aggregation modes underperform: max=%.1f sum=%.1f", thr1Max, thr1Sum)
	}
}

func TestFlowletStickinessUnderGap(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(9))
	hosts, _, _ := n.LeafSpine(100)
	b := balancer(t, n, conga.Config{
		Host: hosts[1], Dst: hosts[2].ID(),
		FlowletGap: tppnet.Second, // enormous gap: the flow must never move
	})
	f := tppnet.NewUDPFlow(hosts[1], hosts[2].ID(), 7300, 7300, 1500)
	f.SetRateBps(20_000_000)
	f.Tagger = b.Tagger()
	tppnet.NewSink(hosts[2], 7300, tppnet.ProtoUDP)
	f.Start()
	n.RunUntil(2 * tppnet.Second)
	f.Stop()
	b.Stop()
	if b.Moves != 0 {
		t.Errorf("flow moved %d times despite 1 s flowlet gap", b.Moves)
	}
}

// TestCloseWhileRunningStopsProbes: Close on a running balancer must halt
// the probe loop through the balancer's own Stop override.
func TestCloseWhileRunningStopsProbes(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(9))
	hosts, _, _ := n.LeafSpine(100)
	b := balancer(t, n, conga.Config{Host: hosts[1], Dst: hosts[2].ID()})
	n.RunUntil(50 * tppnet.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	sent := b.ProbesSent
	if sent == 0 {
		t.Fatal("balancer never probed before Close")
	}
	n.Run() // drain: a closed balancer generates no further probes
	if b.ProbesSent != sent {
		t.Errorf("closed balancer kept probing: %d -> %d", sent, b.ProbesSent)
	}
}

// TestLifecycleRestart: a stopped balancer can start probing again.
func TestLifecycleRestart(t *testing.T) {
	n := tppnet.NewNetwork(tppnet.WithSeed(9))
	hosts, _, _ := n.LeafSpine(100)
	b := balancer(t, n, conga.Config{Host: hosts[1], Dst: hosts[2].ID()})
	n.RunUntil(50 * tppnet.Millisecond)
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	sent := b.ProbesSent
	n.RunUntil(100 * tppnet.Millisecond)
	if b.ProbesSent != sent {
		t.Fatal("stopped balancer kept probing")
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	n.RunUntil(150 * tppnet.Millisecond)
	if b.ProbesSent == sent {
		t.Fatal("restarted balancer never probed")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
