package conga

import "minions/telemetry"

// Export bridges the balancer's per-probe path stream into a telemetry
// pipeline as Records of App "conga", Kind "path": Node is the balancing
// host, Val the path's aggregated congestion metric, Aux[0] the path tag,
// Aux[1] the probe's hop count and Aux[2] 1 on a dead/revive transition
// sample (probe-timeout streak or resurrection).
func (b *Balancer) Export(pipe *telemetry.Pipeline) (cancel func()) {
	return telemetry.Export(b.Paths(), pipe, func(s PathSample) telemetry.Record {
		var dead uint64
		if s.Dead {
			dead = 1
		}
		return telemetry.Record{
			At:   int64(s.At),
			App:  "conga",
			Kind: "path",
			Node: uint64(b.h.ID()),
			Val:  s.Metric,
			Aux:  [3]uint64{uint64(s.Tag), uint64(s.Hops), dead},
		}
	})
}
