package faults

import (
	"minions/telemetry"
	"minions/tppnet"
)

// Export bridges an armed injector's fault events into a telemetry
// pipeline as canonical records: App "faults", Kind the event kind string
// ("link-down", "burst-start", ...), Node the affected switch (0 for link
// events), Aux[0] the link index +1 (0 when n/a) and Aux[1] the switch
// index +1. It returns the subscription's cancel function.
//
// Subscribe before the first Run (via net.ArmFaults) and only on
// single-shard networks — multi-shard runs publish fault events from every
// shard goroutine, and their interleaving is not deterministic.
func Export(inj *tppnet.FaultInjector, pipe *telemetry.Pipeline) (cancel func()) {
	return inj.Events().Subscribe(func(ev Event) {
		if !pipe.Active() {
			return
		}
		pipe.Publish(telemetry.Record{
			At:   int64(ev.At),
			App:  "faults",
			Kind: ev.Kind.String(),
			Node: uint64(ev.Node),
			Aux:  [3]uint64{uint64(ev.Link + 1), uint64(ev.Switch + 1), 0},
		})
	})
}

// ExportDrops bridges every switch-local packet drop into the pipeline as
// App "faults", Kind "drop" records: Node the dropping switch's address,
// Val the packet size in bytes, Aux[0] the numeric tppnet.DropReason and
// Note its name ("fault-loss", "switch-halted", ...), so collectors — and
// cmd/tppdump -stats — can break losses down per reason without knowing
// the enum. It chains onto any OnDrop hook already installed; cancel
// restores the previous hooks.
//
// Like Export, use it on single-shard networks only: multi-shard runs drop
// packets from every shard goroutine concurrently.
func ExportDrops(n *tppnet.Network, pipe *telemetry.Pipeline) (cancel func()) {
	prev := make([]func(p *tppnet.Packet, reason tppnet.DropReason), len(n.Switches))
	for i, sw := range n.Switches {
		sw := sw
		prev[i] = sw.OnDrop
		chained := prev[i]
		sw.OnDrop = func(p *tppnet.Packet, reason tppnet.DropReason) {
			if pipe.Active() {
				pipe.Publish(telemetry.Record{
					At:   int64(n.Now()),
					App:  "faults",
					Kind: "drop",
					Node: uint64(sw.NodeID()),
					Val:  float64(p.Size),
					Aux:  [3]uint64{uint64(reason), 0, 0},
					Note: reason.String(),
				})
			}
			if chained != nil {
				chained(p, reason)
			}
		}
	}
	return func() {
		for i, sw := range n.Switches {
			sw.OnDrop = prev[i]
		}
	}
}
