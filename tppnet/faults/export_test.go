package faults_test

import (
	"testing"

	"minions/telemetry"
	"minions/tppnet"
	"minions/tppnet/faults"
)

// testChaosNet runs a dumbbell under heavy loss with both telemetry bridges
// attached and returns the flushed records plus the injector's counts.
func testChaosNet(t *testing.T) ([]telemetry.Record, faults.Counts) {
	t.Helper()
	plan := &tppnet.FaultPlan{
		Seed:    5,
		Horizon: 50 * tppnet.Millisecond,
		Flap:    &faults.FlapSpec{MTTF: 10 * tppnet.Millisecond, MTTR: 3 * tppnet.Millisecond},
		Loss:    &faults.LossSpec{Rate: 0.05},
	}
	n := tppnet.NewNetwork(tppnet.WithSeed(2), tppnet.WithFaults(plan))
	hosts, _, _ := n.Dumbbell(4, 100)

	var sink telemetry.MemSink
	pipe := telemetry.NewPipeline(telemetry.Config{Spool: 1 << 14, Policy: telemetry.Block})
	pipe.Attach(&sink)
	defer faults.Export(n.ArmFaults(), pipe)()
	defer faults.ExportDrops(n, pipe)()

	for i, h := range hosts[:2] {
		dst := hosts[2+i]
		f := tppnet.NewUDPFlow(h, dst.ID(), uint16(9000+i), uint16(9000+i), 1000)
		f.SetRateBps(40_000_000)
		f.Start()
		defer f.Stop()
	}
	n.RunUntil(60 * tppnet.Millisecond)
	pipe.Flush()
	return sink.Records, n.Faults().Counts()
}

// TestExportRecords checks both bridges: every fault-plane state change and
// every loss-induced drop surfaces as a canonical record, with the drop
// reason named in Note so collectors need not know the enum.
func TestExportRecords(t *testing.T) {
	recs, c := testChaosNet(t)

	perKind := make(map[string]uint64)
	perReason := make(map[string]uint64)
	for _, r := range recs {
		if r.App != "faults" {
			t.Fatalf("record tagged app %q", r.App)
		}
		perKind[r.Kind]++
		if r.Kind == "drop" {
			perReason[r.Note]++
			if r.Node == 0 || r.Val <= 0 {
				t.Fatalf("drop record missing node/size: %+v", r)
			}
		}
	}
	if perKind["link-down"] != c.LinkDowns || perKind["link-up"] != c.LinkUps {
		t.Errorf("flap events: exported %d/%d, counted %d/%d",
			perKind["link-down"], perKind["link-up"], c.LinkDowns, c.LinkUps)
	}
	if c.LinkDowns == 0 || c.Losses == 0 {
		t.Fatalf("chaos never engaged: %+v", c)
	}
	// Loss drops happen on the egress link and are re-published by the
	// owning switch as fault-loss; downed links surface as link-down drops.
	if perReason["fault-loss"] == 0 {
		t.Errorf("no fault-loss drop records among %d drops (%v)", perKind["drop"], perReason)
	}
}
