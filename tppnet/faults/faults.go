// Package faults is the public face of the deterministic fault-injection
// plane: the spec types for building a tppnet.FaultPlan — link flaps,
// Bernoulli and Gilbert-Elliott packet loss, TPP-section corruption,
// serialization jitter, switch halts and fixed-time scripted events — plus
// the telemetry bridge that makes chaos runs observable through the
// standard pipeline.
//
// A plan is armed with tppnet.WithFaults:
//
//	plan := &tppnet.FaultPlan{
//	    Seed:    7,
//	    Horizon: 200 * tppnet.Millisecond,
//	    Flap:    &faults.FlapSpec{MTTF: 40 * tppnet.Millisecond, MTTR: 10 * tppnet.Millisecond},
//	    Loss:    &faults.LossSpec{Rate: 0.01},
//	}
//	net := tppnet.NewNetwork(tppnet.WithSeed(1), tppnet.WithFaults(plan))
//
// Everything is deterministic: the plan carries its own seed, each fault
// target draws from a private stream derived from it, and identical
// (topology, workload, plan) tuples replay byte-identically across runs,
// shard counts and engine schedulers. See internal/faults for the
// determinism contract and testbed.RunChaos for the ready-made chaos
// scenario that enforces it.
package faults

import (
	"minions/internal/faults"
)

// Spec and event types of the fault plane. The plan itself is
// tppnet.FaultPlan; these are its members.
type (
	// FlapSpec: random link down/up cycles with exponential MTTF/MTTR.
	FlapSpec = faults.FlapSpec
	// LossSpec: per-packet transmit loss, Bernoulli or Gilbert-Elliott.
	LossSpec = faults.LossSpec
	// CorruptSpec: random single-bit flips in TPP packet memory.
	CorruptSpec = faults.CorruptSpec
	// JitterSpec: probabilistic added serialization delay.
	JitterSpec = faults.JitterSpec
	// HaltSpec: random switch halt/restart cycles.
	HaltSpec = faults.HaltSpec
	// Event is one fault-plane occurrence, also the Script entry type.
	Event = faults.Event
	// EventKind classifies fault events.
	EventKind = faults.EventKind
	// Counts aggregates fault activity over a run.
	Counts = faults.Counts
)

// Event kinds.
const (
	LinkDown      = faults.LinkDown
	LinkUp        = faults.LinkUp
	BurstStart    = faults.BurstStart
	BurstEnd      = faults.BurstEnd
	SwitchHalt    = faults.SwitchHalt
	SwitchRestart = faults.SwitchRestart
)
