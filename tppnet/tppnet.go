// Package tppnet is the public facade over the simulated TPP network
// substrate: hosts running the §4 end-host stack, TPP-capable switches,
// rate/delay links, and the topologies of the paper's evaluation. It is the
// package to import to stand up a network and push TPP-instrumented traffic
// through it; package tpp provides the programs themselves, subpackage
// tppnet/app the framework minion applications are built on, apps/* the
// paper's five applications on that framework, and package testbed the
// ready-made experiment runners built on top of all of them.
//
// Networks are created with functional options and wired either manually or
// with a topology method:
//
//	net := tppnet.NewNetwork(tppnet.WithSeed(1))
//	hosts, left, right := net.Dumbbell(6, 100) // Figure 1
//	app := net.CP.RegisterApp("monitor")
//	hosts[0].AddTPP(app, tppnet.FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0)
//	net.Run()
//
// Everything is deterministic for a given seed: the simulation runs on a
// virtual clock, so results are reproducible across machines.
package tppnet

import (
	"minions/internal/core"
	"minions/internal/device"
	"minions/internal/faults"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/topo"
	"minions/internal/transport"
	"minions/workload"
)

// Substrate types, the stable public names for the network layer.
type (
	// Host is an end host running the TPP stack: the dataplane shim
	// (AddTPP, RegisterAggregator), the reliable executor (ExecuteTPP,
	// ScatterGather) and the per-host TCPU (SetLocalMemory).
	Host = host.Host
	// Switch is a TPP-capable switch: Figure 6's pipeline plus a resident,
	// allocation-free TCPU executing one hop per forwarded packet.
	Switch = device.Switch
	// SwitchConfig configures a manually created switch.
	SwitchConfig = device.Config
	// ControlPlane is the central TPP-CP of §4.1: application identities,
	// memory grants, and static analysis of programs before installation.
	ControlPlane = host.ControlPlane
	// App is a registered TPP application identity.
	App = host.App
	// Filter is one installed shim interposition rule.
	Filter = host.Filter
	// FilterSpec matches packets for TPP attachment, iptables-style.
	FilterSpec = host.FilterSpec
	// Aggregator consumes fully executed TPPs for one application (§4.5);
	// registered per host via Host.RegisterAggregator or app.Base.Aggregate.
	Aggregator = host.Aggregator
	// ExecOpts tunes reliable TPP execution (timeout, retries, path tag).
	ExecOpts = host.ExecOpts
	// GatherResult is one switch's outcome in a ScatterGather.
	GatherResult = host.GatherResult
	// Packet is an in-flight simulated packet.
	Packet = link.Packet
	// FlowKey is a packet's 5-tuple.
	FlowKey = link.FlowKey
	// NodeID addresses a host or switch.
	NodeID = link.NodeID
	// Link is one unidirectional rate/delay/queue link.
	Link = link.Link
	// LinkConfig parameterizes one link.
	LinkConfig = link.Config
	// Pool is a packet free list; every network wires one shared pool into
	// its hosts (Network.PacketPool), making steady-state forwarding
	// allocation-free. See its documentation for the ownership rules.
	Pool = link.Pool
	// Ring is a reusable FIFO packet ring buffer, the structure behind link
	// output queues and transport send queues.
	Ring = link.Ring
	// Time is virtual simulation time in nanoseconds.
	Time = sim.Time
	// Engine is the deterministic discrete-event engine driving a network.
	Engine = sim.Engine
	// UDPFlow is a rate-limited CBR sender.
	UDPFlow = transport.UDPFlow
	// TCPFlow is the TCP-like AIMD transport.
	TCPFlow = transport.TCPFlow
	// Sink counts received traffic.
	Sink = transport.Sink
	// DropReason classifies switch-local packet drops.
	DropReason = device.DropReason
	// LinkEnds names the transmitter and receiver of one unidirectional
	// link (same indexing as Links(); see Network.LinkEndsOf).
	LinkEnds = topo.LinkEnds
	// FaultPlan is a deterministic, seedable fault schedule: link flaps,
	// packet loss (Bernoulli and Gilbert-Elliott burst), TPP corruption,
	// serialization jitter and switch halts. Arm one with WithFaults; the
	// subpackage tppnet/faults re-exports the spec types and the telemetry
	// bridge.
	FaultPlan = faults.Plan
	// FaultInjector is an armed fault plan: counters and the event stream.
	FaultInjector = faults.Injector
	// FaultEvent is one fault-plane occurrence (link down/up, burst
	// start/end, switch halt/restart).
	FaultEvent = faults.Event
	// ExecFailure is the executor's give-up record, published on
	// Host.ExecFailures when a reliable execution exhausts its retries.
	ExecFailure = host.ExecFailure
	// RetryPolicy shapes executor retries: timeout, attempts, exponential
	// backoff and jitter (ExecOpts.Retry).
	RetryPolicy = host.RetryPolicy
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// IP protocol numbers used by FilterSpec and NewPacket.
const (
	ProtoUDP = link.ProtoUDP
	ProtoTCP = link.ProtoTCP
)

// Vendor-space registers implementing §2.6 in-band route updates: STORE a
// destination into RegRouteUpdateDst and a port into RegRouteUpdatePort and
// the route commits as the TPP passes through the switch.
const (
	RegRouteUpdateDst  = device.RegRouteUpdateDst
	RegRouteUpdatePort = device.RegRouteUpdatePort
	// VendorScratchBase and above is free scratch space.
	VendorScratchBase = device.VendorScratchBase
)

// Transport helpers, re-exported.
var (
	// NewUDPFlow creates a CBR sender.
	NewUDPFlow = transport.NewUDPFlow
	// NewTCPFlow creates a TCP-like AIMD sender.
	NewTCPFlow = transport.NewTCPFlow
	// NewTCPSink creates a TCP receiver.
	NewTCPSink = transport.NewTCPSink
	// NewSink creates a counting receiver.
	NewSink = transport.NewSink
	// SendBurst transmits a message as a back-to-back packet burst.
	SendBurst = transport.SendBurst
)

// MapMemory is a map-backed switch memory, handy as a host-local view for
// Host.SetLocalMemory and in tests.
type MapMemory = core.MapMemory

// Scheduler selects the engine's pending-event structure (see WithScheduler).
type Scheduler = sim.Scheduler

// Scheduler choices.
const (
	// SchedulerWheel is the default hierarchical timing wheel: amortized
	// O(1) event scheduling, the engine core of the simulator's hot path.
	SchedulerWheel = sim.SchedulerWheel
	// SchedulerHeap is the O(log n) binary-heap reference implementation,
	// kept for equivalence testing and A/B benchmarking.
	SchedulerHeap = sim.SchedulerHeap
)

// ParseScheduler resolves a -scheduler flag value ("wheel" or "heap").
func ParseScheduler(name string) (Scheduler, error) { return sim.ParseScheduler(name) }

// SyncMode selects the sharded engine's conservative synchronization
// algorithm (see WithSyncMode).
type SyncMode = sim.SyncMode

// Sync mode choices.
const (
	// SyncChannel is the default asynchronous conservative engine:
	// per-channel lookahead and incrementally drained lock-free mailboxes,
	// with no global barriers inside a run.
	SyncChannel = sim.SyncChannel
	// SyncEpoch is the global-epoch reference engine: lockstep lookahead
	// windows with a full barrier per epoch. Byte-identical behavior; kept
	// as the measurable baseline for sync-overhead counters.
	SyncEpoch = sim.SyncEpoch
)

// ParseSyncMode resolves a -sync flag value ("channel" or "epoch").
func ParseSyncMode(name string) (SyncMode, error) { return sim.ParseSyncMode(name) }

// SyncStats are the sharded engine's synchronization counters (see
// sim.SyncStats); read them from Group().Stats() between runs.
type SyncStats = sim.SyncStats

// options collects functional-option state for NewNetwork.
type options struct {
	seed   int64
	shards int
	sched  Scheduler
	sync   SyncMode
	faults *faults.Plan
}

// Option configures NewNetwork.
type Option func(*options)

// WithSeed fixes the simulation's random seed (default 1). Every run of the
// same network with the same seed produces identical packet-level behavior.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithScheduler selects the pending-event structure of every shard engine:
// the default timing wheel, or the reference binary heap. The choice moves
// wall-clock performance only — simulated behavior is byte-identical either
// way, a contract pinned by the scheduler-equivalence and determinism guard
// tests.
func WithScheduler(s Scheduler) Option {
	return func(o *options) { o.sched = s }
}

// WithShards splits the network across n topology shards, each simulated by
// its own engine (and persistent worker goroutine, when GOMAXPROCS allows)
// and synchronized conservatively: by default each shard advances
// asynchronously to the minimum over its incoming shard-crossing links of
// (source-shard clock + link propagation delay), draining lock-free
// crossing mailboxes as it goes (see WithSyncMode for the global-epoch
// reference engine). The default, 1, is the classic single-engine
// simulator. The built-in topology methods partition automatically
// (pod-aligned for fat-trees, min-cut-ish otherwise); manually wired nodes
// land in shard 0 unless a partition is planned via PlanPartition.
//
// Results are deterministic for a given (seed, shard count) regardless of
// goroutine scheduling, and match the single-shard run except in the
// measure-zero case of two causally unrelated events in different shards
// colliding on both firing and insertion instants (see sim.ShardGroup).
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithSyncMode selects the sharded engine's synchronization algorithm: the
// default asynchronous per-channel-lookahead engine, or the global-epoch
// reference. Like WithScheduler, the choice moves synchronization cost
// only — simulated behavior is byte-identical either way, pinned by the
// shard-sync equivalence tests and the testbed goldens. Single-shard
// networks ignore it.
func WithSyncMode(m SyncMode) Option {
	return func(o *options) { o.sync = m }
}

// WithFaults arms a fault plan on the network: the plan's fault events are
// scheduled onto the topology the first time the network runs (the plan
// needs the links and switches to exist, so arming is deferred past
// wiring). A nil plan is a no-op — and an unarmed network pays nothing:
// the forwarding hot path's only fault-plane cost is a nil check.
func WithFaults(plan *FaultPlan) Option {
	return func(o *options) { o.faults = plan }
}

// Network is a wired simulation: a deterministic engine, the shared TPP-CP,
// and the hosts, switches and links connected so far. The embedded substrate
// exposes AddHost, AddSwitch, Connect, ComputeRoutes, Links, CP and Eng
// directly.
type Network struct {
	*topo.Network

	faultPlan *faults.Plan
	injector  *faults.Injector
}

// NewNetwork creates an empty network.
func NewNetwork(opts ...Option) *Network {
	o := options{seed: 1, shards: 1}
	for _, opt := range opts {
		opt(&o)
	}
	net := &Network{
		Network:   topo.NewShardedScheduler(o.seed, o.shards, o.sched),
		faultPlan: o.faults,
	}
	if g := net.Group(); g != nil {
		g.Mode = o.sync
	}
	return net
}

// ArmFaults arms the WithFaults plan now (idempotent): topology wiring must
// be complete. Run and RunFor arm automatically; call this earlier only to
// subscribe to the injector's event stream before the first run. It panics
// on an invalid plan (out-of-range target indices), which is a programming
// error in the plan, and returns nil when no plan was configured.
func (n *Network) ArmFaults() *FaultInjector {
	if n.injector != nil || n.faultPlan == nil {
		return n.injector
	}
	n.injector = faults.NewInjector(*n.faultPlan)
	if err := n.injector.Arm(n.Links(), n.Switches); err != nil {
		panic("tppnet: " + err.Error())
	}
	return n.injector
}

// Faults returns the armed fault injector, nil when no plan is configured
// (or before the first Run/ArmFaults).
func (n *Network) Faults() *FaultInjector { return n.injector }

// Run processes simulation events across every shard until none remain,
// returning the count.
func (n *Network) Run() int {
	n.ArmFaults()
	return n.Network.Run()
}

// RunFor processes events for d of virtual time, returning the count.
func (n *Network) RunFor(d Time) int {
	n.ArmFaults()
	return n.Network.RunUntil(n.Now() + d)
}

// RunUntil processes events until virtual time t, returning the count.
func (n *Network) RunUntil(t Time) int {
	n.ArmFaults()
	return n.Network.RunUntil(t)
}

// Dumbbell wires the Figure 1 topology: two switches joined by one link,
// half the hosts on each side, all links at rateMbps. Routes are computed.
func (n *Network) Dumbbell(hosts, rateMbps int) ([]*Host, *Switch, *Switch) {
	return topo.Dumbbell(n.Network, hosts, rateMbps)
}

// Chain wires the Figure 2 topology: switches S1-S2-S3 in a line with both
// inter-switch links at rateMbps and 10x-faster host links.
func (n *Network) Chain(rateMbps int) ([]*Host, []*Switch) {
	return topo.Chain(n.Network, rateMbps)
}

// LeafSpine wires the Figure 4 CONGA topology: three leaves, two spines,
// one host per leaf.
func (n *Network) LeafSpine(rateMbps int) (hosts []*Host, leaves, spines []*Switch) {
	return topo.Conga(n.Network, rateMbps)
}

// FatTree wires a k-ary fat-tree (k even) and returns hosts grouped by pod.
func (n *Network) FatTree(k, rateMbps int) [][]*Host {
	return topo.FatTree(n.Network, k, rateMbps)
}

// HostLink returns the standard host-attachment link config at rateMbps.
func HostLink(rateMbps int) LinkConfig { return topo.HostLink(rateMbps) }

// FatTreeDims returns (hosts, coreLinks) for a k-ary fat-tree analytically,
// the §2.5 sizing arithmetic.
func FatTreeDims(k int) (hosts, coreLinks int) { return topo.FatTreeDims(k) }

// AttachWorkload compiles a workload.Spec onto every host of the wired
// network (creation order) and arms its generators — the facade entry to
// the scriptable workload engine in package minions/workload. Call after
// the topology is built and before running; the returned Runner exposes
// sinks, per-group counters and a deterministic fingerprint.
func (n *Network) AttachWorkload(spec workload.Spec) (*workload.Runner, error) {
	return spec.Attach(n.Hosts)
}
