// Package app is the public application framework of the TPP stack: the
// uniform contract every minion application implements, and the shared
// runtime the five paper applications (apps/rcp, apps/conga,
// apps/microburst, apps/ndb, apps/sketch) are built on.
//
// The paper's thesis is that TPPs make the network programmable by end-host
// applications; this package is where "write your own minion" becomes a
// supported use of the library. An application is any type satisfying App:
//
//	monitor := myapp.New(myapp.Config{...})      // configure
//	err := monitor.Attach(net, nil)              // provision: identity, grants, filters
//	err = monitor.Start()                        // go: probe loops, periodic TPPs
//	...
//	monitor.Close()                              // release every grant and filter
//
// Most applications embed Base, which implements the bookkeeping half of
// the contract: it registers the application identity with TPP-CP in
// Provision, records every installed filter, aggregator and periodic timer,
// and undoes all of it in Close. Several applications can run concurrently
// on one network; the control plane's memory-grant isolation keeps one
// application's TPPs from touching another's switch registers, and
// per-application wire IDs keep their telemetry from crossing.
//
// The package also provides the runtime pieces every minion needs and the
// internal applications used to hand-roll: Periodic (allocation-free
// resident timers for TPP injection loops) and Stream (typed, deterministic
// telemetry fan-out replacing ad-hoc callback plumbing).
package app

import (
	"fmt"

	"minions/tpp"
	"minions/tppnet"
)

// App is the uniform lifecycle contract of a minion application.
//
// The lifecycle is Attach → Start → Stop → Close. Attach provisions the
// application on a network (identity registration, memory grants, shim
// filters, aggregators) without injecting any traffic; Start begins active
// behavior (probe loops, periodic TPPs); Stop halts active behavior but
// leaves the app attached (it may Start again); Close stops the app if
// needed and releases everything Attach acquired — write grants, link
// registers, filters and aggregators — so the network is as if the app had
// never been attached.
type App interface {
	// Name is the application's TPP-CP identity name.
	Name() string
	// Attach provisions the application on the network. cp selects the
	// control plane to register with; nil means the network's own (n.CP),
	// which is almost always what you want. Attach must be called exactly
	// once, before Start.
	Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error
	// Start begins active behavior. Passive applications (pure telemetry
	// consumers) may treat Start as a no-op beyond the state transition.
	Start() error
	// Stop halts active behavior; the application remains attached.
	Stop() error
	// Close stops the application if running and releases every
	// control-plane and host-side resource it holds.
	Close() error
}

// State is an application's position in the Attach→Start→Stop→Close
// lifecycle.
type State int

const (
	// StateDetached: constructed, not yet attached to a network.
	StateDetached State = iota
	// StateAttached: provisioned (identity, grants, filters) but idle.
	StateAttached
	// StateRunning: actively probing / injecting TPPs.
	StateRunning
	// StateClosed: torn down; the instance cannot be reused.
	StateClosed
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateDetached:
		return "detached"
	case StateAttached:
		return "attached"
	case StateRunning:
		return "running"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// installedFilter records one shim interposition rule for teardown.
type installedFilter struct {
	host   *tppnet.Host
	filter *tppnet.Filter
}

// aggregatorReg records one registered dataplane aggregator for teardown.
type aggregatorReg struct {
	host *tppnet.Host
}

// Base implements the bookkeeping half of the App contract. Embed it in an
// application type, call Provision at the top of Attach, and acquire
// resources through InstallTPP / Aggregate / NewPeriodic so Close can
// release them. Base supplies Name, State accessors, and default
// Start/Stop/Close; applications with active behavior override Start/Stop
// and delegate to the embedded versions for the state transitions.
type Base struct {
	name  string
	state State

	// self is the embedding application, captured by Provision so Close
	// can invoke the app's own Stop override: a plain b.Stop() inside
	// Close would statically dispatch to Base.Stop and silently leave the
	// app's active behavior (flows, probe loops) running after teardown.
	self App

	net *tppnet.Network
	cp  *tppnet.ControlPlane
	id  *tppnet.App

	filters   []installedFilter
	aggs      []aggregatorReg
	periodics []*Periodic
}

// MakeBase returns a Base carrying the application's TPP-CP identity name.
func MakeBase(name string) Base { return Base{name: name} }

// Name returns the application name.
func (b *Base) Name() string { return b.name }

// State returns the lifecycle state.
func (b *Base) State() State { return b.state }

// Network returns the attached network (nil before Attach).
func (b *Base) Network() *tppnet.Network { return b.net }

// ControlPlane returns the control plane the app registered with.
func (b *Base) ControlPlane() *tppnet.ControlPlane { return b.cp }

// ID returns the registered application identity (nil before Attach). The
// identity carries the wire handle stamped on every TPP the app installs.
func (b *Base) ID() *tppnet.App { return b.id }

// Provision performs the framework half of Attach: it validates the
// lifecycle state, resolves the control plane (nil cp means n.CP) and
// registers the application identity. Applications call it first in
// Attach, passing themselves as self — that is how Close later reaches the
// app's own Stop override — then acquire their grants and filters.
func (b *Base) Provision(self App, n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if b.state != StateDetached {
		return fmt.Errorf("app %q: Attach in state %v", b.name, b.state)
	}
	if self == nil {
		return fmt.Errorf("app %q: Provision with a nil self", b.name)
	}
	if n == nil {
		return fmt.Errorf("app %q: Attach to a nil network", b.name)
	}
	if cp == nil {
		cp = n.CP
	}
	b.self = self
	b.net, b.cp = n, cp
	b.id = cp.RegisterApp(b.name)
	b.state = StateAttached
	return nil
}

// InstallTPP installs the application's program on one host's transmit shim
// (the §4.1 add_tpp call), recording the filter so Close can remove it. The
// program is validated against the app's memory grants before installation.
func (b *Base) InstallTPP(h *tppnet.Host, spec tppnet.FilterSpec, prog *tpp.Program, sampleFreq, priority int) (*tppnet.Filter, error) {
	if b.state == StateDetached || b.state == StateClosed {
		return nil, fmt.Errorf("app %q: InstallTPP in state %v", b.name, b.state)
	}
	f, err := h.AddTPP(b.id, spec, prog, sampleFreq, priority)
	if err != nil {
		return nil, err
	}
	b.filters = append(b.filters, installedFilter{host: h, filter: f})
	return f, nil
}

// Aggregate registers fn as the host's consumer of this application's
// executed TPPs (the §4.5 aggregator), recording the registration so Close
// can remove it. The packet and view passed to fn are valid only during the
// call — copy what you keep.
func (b *Base) Aggregate(h *tppnet.Host, fn tppnet.Aggregator) error {
	if b.state == StateDetached || b.state == StateClosed {
		return fmt.Errorf("app %q: Aggregate in state %v", b.name, b.state)
	}
	h.RegisterAggregator(b.id.Wire, fn)
	b.aggs = append(b.aggs, aggregatorReg{host: h})
	return nil
}

// NewPeriodic creates a Periodic owned by the application: Base.Start
// starts it, Base.Stop stops it, Close forgets it. Use it for probe loops
// and periodic TPP injection.
func (b *Base) NewPeriodic(eng *tppnet.Engine, interval tppnet.Time, fn func()) *Periodic {
	p := NewPeriodic(eng, interval, fn)
	b.periodics = append(b.periodics, p)
	return p
}

// Start transitions Attached→Running and starts every registered Periodic,
// in registration order. Applications with their own probe loops override
// Start and call this first.
func (b *Base) Start() error {
	if b.state != StateAttached {
		return fmt.Errorf("app %q: Start in state %v", b.name, b.state)
	}
	b.state = StateRunning
	for _, p := range b.periodics {
		p.Start()
	}
	return nil
}

// Stop halts every registered Periodic and transitions back to Attached.
// Stopping an app that is not running is a no-op.
func (b *Base) Stop() error {
	if b.state != StateRunning {
		return nil
	}
	for _, p := range b.periodics {
		p.Stop()
	}
	b.state = StateAttached
	return nil
}

// Close stops the application if running — through the app's own Stop
// override, so active behavior (flows, probe loops, upload flushes) halts
// — removes every installed filter and aggregator, and releases the
// application's control-plane state — write grants and link registers
// included (ControlPlane.ReleaseApp). The instance cannot be reused
// afterwards.
func (b *Base) Close() error {
	if b.state == StateClosed {
		return nil
	}
	if b.state == StateDetached {
		b.state = StateClosed
		return nil
	}
	if err := b.self.Stop(); err != nil {
		return err
	}
	for _, inst := range b.filters {
		inst.host.RemoveTPP(inst.filter)
	}
	b.filters = nil
	for _, reg := range b.aggs {
		reg.host.UnregisterAggregator(b.id.Wire)
	}
	b.aggs = nil
	b.periodics = nil
	b.cp.ReleaseApp(b.id)
	b.state = StateClosed
	return nil
}
