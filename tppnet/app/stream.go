package app

// Stream is a typed telemetry stream: deterministic, synchronous fan-out
// from an application to its subscribers. It replaces the ad-hoc callback
// and pointer-to-slice plumbing the internal applications used to hand-roll
// (e.g. the old Netwatch(c, ...) *[]Violation shape).
//
// Publish invokes every active subscriber in subscription order, on the
// publisher's goroutine — in a discrete-event simulation that keeps results
// reproducible, unlike channel-based delivery. A Stream's zero value is
// ready to use.
type Stream[T any] struct {
	subs []*subscription[T]
}

type subscription[T any] struct {
	fn     func(T)
	active bool
}

// Subscribe registers fn to observe every subsequent Publish and returns a
// cancel function. Cancel is idempotent; cancelled subscribers stop
// receiving immediately but their slot is retained (subscription order of
// the remaining subscribers never changes mid-run).
func (s *Stream[T]) Subscribe(fn func(T)) (cancel func()) {
	sub := &subscription[T]{fn: fn, active: true}
	s.subs = append(s.subs, sub)
	return func() { sub.active = false }
}

// Publish delivers v to every active subscriber, in subscription order.
func (s *Stream[T]) Publish(v T) {
	for _, sub := range s.subs {
		if sub.active {
			sub.fn(v)
		}
	}
}

// HasSubscribers reports whether any active subscriber remains; publishers
// on warm paths check it to skip building events nobody consumes.
func (s *Stream[T]) HasSubscribers() bool {
	for _, sub := range s.subs {
		if sub.active {
			return true
		}
	}
	return false
}

// Collect subscribes a slice accumulator to the stream and returns it: the
// one-liner for tests and batch consumers that want every event.
func Collect[T any](s *Stream[T]) *[]T {
	out := &[]T{}
	s.Subscribe(func(v T) { *out = append(*out, v) })
	return out
}
