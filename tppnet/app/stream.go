package app

import "minions/internal/stream"

// Stream is a typed telemetry stream: deterministic, synchronous fan-out
// from an application to its subscribers. It replaces the ad-hoc callback
// and pointer-to-slice plumbing the internal applications used to hand-roll
// (e.g. the old Netwatch(c, ...) *[]Violation shape).
//
// The implementation lives in internal/stream so internal layers (the host
// control plane's executor give-up surface, the fault plane's event feed)
// can publish the same primitive without importing the public app
// framework; this alias keeps the public import path stable.
//
// Publish invokes every active subscriber in subscription order, on the
// publisher's goroutine — in a discrete-event simulation that keeps results
// reproducible, unlike channel-based delivery. A Stream's zero value is
// ready to use. See internal/stream for the concurrency contract.
type Stream[T any] = stream.Stream[T]

// Collect subscribes a slice accumulator to the stream and returns it: the
// one-liner for tests and batch consumers that want every event. The
// accumulator itself is not synchronized — use it where publishes are
// serialized (single-shard runs, or a publisher that holds its own lock).
func Collect[T any](s *Stream[T]) *[]T { return stream.Collect(s) }
