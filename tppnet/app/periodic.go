package app

import "minions/tppnet"

// Periodic is a repeating timer for periodic TPP injection, implemented as
// its own resident sim handler: each firing re-arms by scheduling the
// Periodic itself, so a running loop costs no per-round closure allocations
// — the same de-closured shape the RCP control round and CONGA probe loop
// use. The callback runs before the re-arm, so work scheduled inside fn is
// ordered ahead of the next tick at equal timestamps.
type Periodic struct {
	eng      *tppnet.Engine
	interval tppnet.Time
	fn       func()
	running  bool
	// gen invalidates in-flight scheduled events across Stop/Start cycles:
	// the engine cannot cancel a scheduled event, so a restart must not let
	// a stale event re-arm a second, parallel firing train.
	gen uint64
}

// NewPeriodic creates a stopped periodic timer; Start arms it. Prefer
// Base.NewPeriodic inside applications so the framework manages it across
// Start/Stop/Close.
func NewPeriodic(eng *tppnet.Engine, interval tppnet.Time, fn func()) *Periodic {
	return &Periodic{eng: eng, interval: interval, fn: fn}
}

// Start arms the timer: the first firing is one interval from now. Starting
// a running timer is a no-op.
func (p *Periodic) Start() {
	if p.running {
		return
	}
	p.running = true
	p.gen++
	p.eng.ScheduleAfter(p.interval, p, p.gen)
}

// Stop cancels future firings. The timer can be started again.
func (p *Periodic) Stop() { p.running = false }

// Running reports whether the timer is armed.
func (p *Periodic) Running() bool { return p.running }

// Handle implements the engine's Handler interface: one firing. Events from
// a generation before the latest Start are stale and ignored.
func (p *Periodic) Handle(gen uint64) {
	if !p.running || gen != p.gen {
		return
	}
	p.fn()
	if p.running && gen == p.gen {
		p.eng.ScheduleAfter(p.interval, p, p.gen)
	}
}
