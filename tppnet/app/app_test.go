package app_test

import (
	"testing"

	"minions/tpp"
	"minions/tppnet"
	"minions/tppnet/app"
)

// tinyNet wires h1 - s1 - s2 - h2 at 1 Gb/s.
func tinyNet(t *testing.T) (*tppnet.Network, *tppnet.Host, *tppnet.Host) {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	cfg := tppnet.HostLink(1000)
	n.Connect(h1, s1, cfg)
	n.Connect(h2, s2, cfg)
	n.Connect(s1, s2, cfg)
	n.ComputeRoutes()
	return n, h1, h2
}

// probeApp is a minimal App built on Base: it installs a one-PUSH TPP on
// UDP traffic and counts executed views.
type probeApp struct {
	app.Base
	src, dst *tppnet.Host
	Views    int
}

func newProbeApp(src, dst *tppnet.Host) *probeApp {
	return &probeApp{Base: app.MakeBase("probe"), src: src, dst: dst}
}

func (a *probeApp) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if err := a.Provision(a, n, cp); err != nil {
		return err
	}
	prog, err := tpp.NewProgram().Push(tpp.SwitchID).Build()
	if err != nil {
		return err
	}
	if _, err := a.InstallTPP(a.src, tppnet.FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
		return err
	}
	return a.Aggregate(a.dst, func(p *tppnet.Packet, view tpp.Section) { a.Views++ })
}

func send(h *tppnet.Host, dst tppnet.NodeID, count int) {
	for i := 0; i < count; i++ {
		h.Send(h.NewPacket(dst, 5000, 9000, tppnet.ProtoUDP, 500))
	}
}

func TestLifecycleStates(t *testing.T) {
	n, h1, h2 := tinyNet(t)
	a := newProbeApp(h1, h2)
	if a.State() != app.StateDetached {
		t.Fatalf("state = %v, want detached", a.State())
	}
	if err := a.Start(); err == nil {
		t.Fatal("Start before Attach must fail")
	}
	if err := a.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if a.State() != app.StateAttached {
		t.Fatalf("state = %v, want attached", a.State())
	}
	if err := a.Attach(n, nil); err == nil {
		t.Fatal("double Attach must fail")
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if a.State() != app.StateRunning {
		t.Fatalf("state = %v, want running", a.State())
	}
	if err := a.Start(); err == nil {
		t.Fatal("double Start must fail")
	}
	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}
	if a.State() != app.StateAttached {
		t.Fatalf("state = %v, want attached after Stop", a.State())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.State() != app.StateClosed {
		t.Fatalf("state = %v, want closed", a.State())
	}
	if err := a.Close(); err != nil {
		t.Fatal("double Close must be a no-op")
	}
}

func TestAttachedAppCollectsViews(t *testing.T) {
	n, h1, h2 := tinyNet(t)
	a := newProbeApp(h1, h2)
	if err := a.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	h2.Bind(9000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	send(h1, h2.ID(), 5)
	n.Run()
	if a.Views != 5 {
		t.Fatalf("aggregator saw %d views, want 5", a.Views)
	}
}

func TestCloseRemovesFiltersAndAggregators(t *testing.T) {
	n, h1, h2 := tinyNet(t)
	a := newProbeApp(h1, h2)
	if err := a.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if h1.NumFilters() != 1 {
		t.Fatalf("filters = %d, want 1", h1.NumFilters())
	}
	wire := a.ID().Wire
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if h1.NumFilters() != 0 {
		t.Errorf("Close left %d filters installed", h1.NumFilters())
	}
	if n.CP.App(wire) != nil {
		t.Error("Close left the app registered with TPP-CP")
	}
	h2.Bind(9000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	send(h1, h2.ID(), 3)
	n.Run()
	if a.Views != 0 {
		t.Errorf("closed app still aggregated %d views", a.Views)
	}
	if h1.Stats().TPPsAttached != 0 {
		t.Errorf("closed app still instrumented %d packets", h1.Stats().TPPsAttached)
	}
}

func TestPeriodicStartStopAndCadence(t *testing.T) {
	n, h1, _ := tinyNet(t)
	fires := 0
	p := app.NewPeriodic(h1.Engine(), 10*tppnet.Millisecond, func() { fires++ })
	p.Start()
	p.Start() // idempotent: must not double-arm
	n.RunFor(105 * tppnet.Millisecond)
	if fires != 10 {
		t.Fatalf("fired %d times in 105 ms at 10 ms cadence, want 10", fires)
	}
	p.Stop()
	n.RunFor(100 * tppnet.Millisecond)
	if fires != 10 {
		t.Fatalf("stopped periodic fired (total %d)", fires)
	}
	// Restartable.
	p.Start()
	n.RunFor(25 * tppnet.Millisecond)
	if fires != 12 {
		t.Fatalf("restarted periodic fired %d times total, want 12", fires)
	}
}

// TestPeriodicRestartWithoutDrain: Stop immediately followed by Start
// (no intervening event processing, as in an app's Stop/Start inside one
// handler) must not leave the stale scheduled event alive as a second
// firing train — the cadence stays one fire per interval.
func TestPeriodicRestartWithoutDrain(t *testing.T) {
	n, h1, _ := tinyNet(t)
	fires := 0
	p := app.NewPeriodic(h1.Engine(), 10*tppnet.Millisecond, func() { fires++ })
	p.Start()
	n.RunFor(15 * tppnet.Millisecond) // one fire; next armed at t=25ms
	p.Stop()
	p.Start()                         // stale t=25ms event must die; new train fires at 25,35,...
	n.RunFor(81 * tppnet.Millisecond) // t=96ms: fires at 25,35,...,95 = 8
	if fires != 9 {
		t.Fatalf("fired %d times, want 9 — a stale event survived the restart", fires)
	}
}

func TestBaseStartStartsPeriodics(t *testing.T) {
	n, h1, h2 := tinyNet(t)
	a := newProbeApp(h1, h2)
	if err := a.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	ticks := 0
	a.NewPeriodic(h1.Engine(), 5*tppnet.Millisecond, func() { ticks++ })
	n.RunFor(20 * tppnet.Millisecond)
	if ticks != 0 {
		t.Fatalf("periodic fired %d times before Start", ticks)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	n.RunFor(21 * tppnet.Millisecond)
	if ticks != 4 {
		t.Fatalf("periodic fired %d times after Start, want 4", ticks)
	}
	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}
	n.RunFor(20 * tppnet.Millisecond)
	if ticks != 4 {
		t.Fatalf("periodic fired %d times after Stop, want 4", ticks)
	}
}

func TestStreamSubscribeCancelCollect(t *testing.T) {
	var s app.Stream[int]
	if s.HasSubscribers() {
		t.Fatal("zero-value stream reports subscribers")
	}
	all := app.Collect(&s)
	var seen []int
	cancel := s.Subscribe(func(v int) { seen = append(seen, v) })
	s.Publish(1)
	s.Publish(2)
	cancel()
	cancel() // idempotent
	s.Publish(3)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("cancelled subscriber saw %v", seen)
	}
	if len(*all) != 3 {
		t.Errorf("Collect accumulated %v, want 3 events", *all)
	}
	if !s.HasSubscribers() {
		t.Error("collector subscription not counted")
	}
}

// TestStreamDeliveryOrder: subscribers see events in subscription order,
// synchronously on the publisher's goroutine.
func TestStreamDeliveryOrder(t *testing.T) {
	var s app.Stream[string]
	var order []string
	s.Subscribe(func(v string) { order = append(order, "a:"+v) })
	s.Subscribe(func(v string) { order = append(order, "b:"+v) })
	s.Publish("x")
	if len(order) != 2 || order[0] != "a:x" || order[1] != "b:x" {
		t.Errorf("delivery order = %v", order)
	}
}
