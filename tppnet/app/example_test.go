package app_test

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"minions/tpp"
	"minions/tppnet"
	"minions/tppnet/app"
)

// pathTracer is a complete user-written minion: every 2 ms it sends a
// standalone TPP that records the switch ID of every hop toward dst, and
// publishes the observed path ("1>2") on a typed telemetry stream. It is
// the whole recipe for writing your own application: embed app.Base,
// provision in Attach, drive periodic TPP injection with a framework
// Periodic, and expose results as a Stream.
type pathTracer struct {
	app.Base
	src   *tppnet.Host
	dst   tppnet.NodeID
	prog  *tpp.Program
	paths app.Stream[string]
}

func newPathTracer(src *tppnet.Host, dst tppnet.NodeID) *pathTracer {
	return &pathTracer{Base: app.MakeBase("path-tracer"), src: src, dst: dst}
}

// Attach provisions the minion: identity registration plus the probe
// program (read-only, so no write grants are needed), and the probe loop
// timer that Start will arm.
func (tr *pathTracer) Attach(n *tppnet.Network, cp *tppnet.ControlPlane) error {
	if err := tr.Provision(tr, n, cp); err != nil {
		return err
	}
	prog, err := tpp.NewProgram().Push(tpp.SwitchID).Build()
	if err != nil {
		return err
	}
	tr.prog = prog
	tr.NewPeriodic(tr.src.Engine(), 2*tppnet.Millisecond, tr.probe)
	return nil
}

// probe sends one standalone TPP and publishes the echoed path.
func (tr *pathTracer) probe() {
	clone := *tr.prog
	_ = tr.src.ExecuteTPP(tr.ID(), &clone, tr.dst, tppnet.ExecOpts{}, func(view tpp.Section, err error) {
		if err != nil {
			return
		}
		var hops []string
		for _, hop := range view.StackView(1) {
			hops = append(hops, strconv.Itoa(int(hop.Words[0])))
		}
		tr.paths.Publish(strings.Join(hops, ">"))
	})
}

// Paths returns the tracer's telemetry stream.
func (tr *pathTracer) Paths() *app.Stream[string] { return &tr.paths }

// Example_customApp runs the path tracer on a two-switch network: the
// uniform Attach → Start → Close lifecycle every apps/* application (and
// every user-written one) follows.
func Example_customApp() {
	n := tppnet.NewNetwork(tppnet.WithSeed(1))
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	cfg := tppnet.HostLink(1000)
	n.Connect(h1, s1, cfg)
	n.Connect(h2, s2, cfg)
	n.Connect(s1, s2, cfg)
	n.ComputeRoutes()

	tracer := newPathTracer(h1, h2.ID())
	if err := tracer.Attach(n, nil); err != nil {
		log.Fatal(err)
	}
	if err := tracer.Start(); err != nil {
		log.Fatal(err)
	}
	paths := app.Collect(tracer.Paths())

	n.RunFor(11 * tppnet.Millisecond) // probes at 2,4,6,8,10 ms
	if err := tracer.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("probes echoed: %d\n", len(*paths))
	fmt.Printf("path: %s\n", (*paths)[0])
	// Output:
	// probes echoed: 5
	// path: 1>2
}
