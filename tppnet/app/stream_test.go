package app_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"minions/tppnet"
	"minions/tppnet/app"
)

// TestStreamCancelRacesPublish hammers the documented race: one goroutine
// publishes continuously while others subscribe and immediately cancel.
// Run under -race (the CI race job does) this pins that cancellation is an
// atomic flag and the subscriber list a copy-on-write snapshot — no torn
// reads, and a cancelled subscriber stops receiving.
func TestStreamCancelRacesPublish(t *testing.T) {
	var s app.Stream[int]
	stop := make(chan struct{})
	var pubWG, wg sync.WaitGroup

	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Publish(1)
				runtime.Gosched() // keep single-CPU runs fair under -race
			}
		}
	}()

	const subscribers = 16
	var afterCancel atomic.Int64
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cancelled atomic.Bool
			cancel := s.Subscribe(func(int) {
				if cancelled.Load() {
					afterCancel.Add(1)
				}
			})
			for j := 0; j < 50; j++ {
				s.Publish(2)
			}
			// Order matters: flag first, then cancel. A delivery observed
			// after cancel returned would then always be counted.
			cancelled.Store(true)
			cancel()
		}()
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()

	// The callback may still be mid-flight while cancel runs (the flag is
	// set before cancel), so a tiny overlap window exists by design; what
	// must never happen is unbounded delivery after cancellation. Allow the
	// one-in-flight overlap per subscriber.
	if got := afterCancel.Load(); got > subscribers {
		t.Fatalf("deliveries after cancel: %d (max allowed %d)", got, subscribers)
	}
}

// TestStreamConcurrentSubscribePublish verifies Subscribe racing Publish
// never loses the subscriber list: after all subscriptions land, every
// subsequent publish reaches all of them.
func TestStreamConcurrentSubscribePublish(t *testing.T) {
	var s app.Stream[int]
	var wg sync.WaitGroup
	var got atomic.Int64
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Subscribe(func(int) { got.Add(1) })
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Publish(1) // races the subscribes; deliveries here are best-effort
		}()
	}
	wg.Wait()

	got.Store(0)
	s.Publish(7)
	if got.Load() != n {
		t.Fatalf("post-quiescence publish reached %d of %d subscribers", got.Load(), n)
	}
	if !s.HasSubscribers() {
		t.Fatal("HasSubscribers = false with live subscribers")
	}
}

// TestStreamPublishFromShards publishes into one shared Stream from the
// shard worker goroutines of a WithShards(2) simulation — the deployment
// shape the satellite task names. Each host runs a periodic publisher on
// its own shard engine; the shared subscriber guards its state with a
// mutex, per the Stream contract. Run under -race this pins that
// cross-shard Publish is safe.
func TestStreamPublishFromShards(t *testing.T) {
	net := tppnet.NewNetwork(tppnet.WithSeed(7), tppnet.WithShards(2))
	hosts, _, _ := net.Dumbbell(4, 100)
	if net.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", net.Shards())
	}

	var s app.Stream[uint64]
	var mu sync.Mutex
	perNode := map[uint64]int{}
	s.Subscribe(func(id uint64) {
		mu.Lock()
		perNode[id]++
		mu.Unlock()
	})

	const ticks = 20
	for _, h := range hosts {
		id := uint64(h.ID())
		eng := h.Engine()
		for i := 1; i <= ticks; i++ {
			eng.At(tppnet.Time(i)*tppnet.Millisecond, func() { s.Publish(id) })
		}
	}
	net.RunFor(25 * tppnet.Millisecond)

	for _, h := range hosts {
		if got := perNode[uint64(h.ID())]; got != ticks {
			t.Fatalf("host %d published %d events, want %d", h.ID(), got, ticks)
		}
	}
}

// TestStreamPublishZeroAlloc pins that the lock-free publish path performs
// no heap allocation — streams sit on simulation hot paths.
func TestStreamPublishZeroAlloc(t *testing.T) {
	var s app.Stream[int]
	var sum int
	s.Subscribe(func(v int) { sum += v })
	allocs := testing.AllocsPerRun(1000, func() { s.Publish(3) })
	if allocs != 0 {
		t.Fatalf("Publish allocates %.1f times per call, want 0", allocs)
	}
	_ = sum
}
