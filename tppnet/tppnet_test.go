package tppnet_test

import (
	"testing"

	"minions/tpp"
	"minions/tppnet"
)

// collectQueueDepths wires a dumbbell, instruments UDP traffic with a
// Builder-made TPP, and returns the per-hop switch IDs seen by the receiving
// aggregator.
func collectSwitchIDs(t *testing.T, seed int64) []uint32 {
	t.Helper()
	n := tppnet.NewNetwork(tppnet.WithSeed(seed))
	hosts, _, _ := n.Dumbbell(4, 100)
	src, dst := hosts[0], hosts[3] // opposite sides: two switch hops

	prog, err := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.QueueOccupancy).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	app := n.CP.RegisterApp("facade-test")
	if _, err := src.AddTPP(app, tppnet.FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	dst.RegisterAggregator(app.Wire, func(p *tppnet.Packet, view tpp.Section) {
		for _, hop := range view.StackView(2) {
			ids = append(ids, hop.Words[0])
		}
	})
	dst.Bind(9000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})
	for i := 0; i < 3; i++ {
		src.Send(src.NewPacket(dst.ID(), 5000, 9000, tppnet.ProtoUDP, 500))
	}
	n.Run()
	return ids
}

// TestFacadeEndToEnd: the public facade builds a network, instruments
// traffic with a Builder TPP, and collects per-hop state.
func TestFacadeEndToEnd(t *testing.T) {
	ids := collectSwitchIDs(t, 1)
	if len(ids) != 6 { // 3 packets x 2 switch hops
		t.Fatalf("collected %d hop records, want 6: %v", len(ids), ids)
	}
	if ids[0] != 1 || ids[1] != 2 {
		t.Errorf("first packet's path: switches %d,%d, want 1,2", ids[0], ids[1])
	}
}

// TestFacadeDeterminism: same seed, same packet-level behavior.
func TestFacadeDeterminism(t *testing.T) {
	a := collectSwitchIDs(t, 42)
	b := collectSwitchIDs(t, 42)
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFacadeTopologies: every topology method wires and routes.
func TestFacadeTopologies(t *testing.T) {
	n := tppnet.NewNetwork()
	if hosts, l, r := n.Dumbbell(6, 100); len(hosts) != 6 || l == nil || r == nil {
		t.Error("Dumbbell")
	}
	n2 := tppnet.NewNetwork(tppnet.WithSeed(2))
	if hosts, sws := n2.Chain(100); len(hosts) != 6 || len(sws) != 3 {
		t.Error("Chain")
	}
	n3 := tppnet.NewNetwork(tppnet.WithSeed(3))
	if hosts, leaves, spines := n3.LeafSpine(100); len(hosts) != 3 || len(leaves) != 3 || len(spines) != 2 {
		t.Error("LeafSpine")
	}
	n4 := tppnet.NewNetwork(tppnet.WithSeed(4))
	if pods := n4.FatTree(4, 100); len(pods) != 4 || len(pods[0]) != 4 {
		t.Error("FatTree")
	}
	if h, c := tppnet.FatTreeDims(64); h != 65536 || c != 65536 {
		t.Errorf("FatTreeDims(64) = %d, %d", h, c)
	}
}
