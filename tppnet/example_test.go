package tppnet_test

import (
	"fmt"

	"minions/tpp"
	"minions/tppnet"
)

// ExampleNewNetwork stands up the Figure 1 dumbbell through the facade,
// instruments cross-fabric UDP traffic with a Builder-made TPP, and prints
// the per-hop records the receiving host's aggregator collects.
func ExampleNewNetwork() {
	net := tppnet.NewNetwork(tppnet.WithSeed(1))
	hosts, _, _ := net.Dumbbell(4, 100)
	src, dst := hosts[0], hosts[3] // opposite sides of the bottleneck

	prog := tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.QueueOccupancy).
		MustBuild()

	app := net.CP.RegisterApp("example")
	if _, err := src.AddTPP(app, tppnet.FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
		panic(err)
	}
	dst.RegisterAggregator(app.Wire, func(p *tppnet.Packet, view tpp.Section) {
		for _, hop := range view.StackView(2) {
			fmt.Printf("hop %d: switch %d, queue %d pkts\n",
				hop.Hop, hop.Words[0], hop.Words[1])
		}
	})
	dst.Bind(9000, tppnet.ProtoUDP, func(p *tppnet.Packet) {})

	src.Send(src.NewPacket(dst.ID(), 5000, 9000, tppnet.ProtoUDP, 500))
	net.Run()
	// Output:
	// hop 0: switch 1, queue 0 pkts
	// hop 1: switch 2, queue 0 pkts
}
