package tppnet_test

import (
	"testing"

	"minions/tppnet"
)

// runShardedDumbbell pushes CBR traffic across a dumbbell and returns the
// delivered packet count per receiving host.
func runShardedDumbbell(shards int) (delivered []uint64, net *tppnet.Network) {
	net = tppnet.NewNetwork(tppnet.WithSeed(42), tppnet.WithShards(shards))
	hosts, _, _ := net.Dumbbell(6, 100)

	var sinks []*tppnet.Sink
	for i := 0; i < 3; i++ {
		dst := hosts[3+i]
		sinks = append(sinks, tppnet.NewSink(dst, uint16(8000+i), tppnet.ProtoUDP))
		f := tppnet.NewUDPFlow(hosts[i], dst.ID(), uint16(8000+i), uint16(8000+i), 1000)
		f.SetRateBps(20_000_000)
		f.Start()
	}
	net.RunFor(50 * tppnet.Millisecond)
	for _, s := range sinks {
		delivered = append(delivered, s.Packets)
	}
	return delivered, net
}

func TestWithShardsMatchesSingleEngine(t *testing.T) {
	base, _ := runShardedDumbbell(1)
	for _, shards := range []int{2, 3} {
		got, net := runShardedDumbbell(shards)
		if net.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", net.Shards(), shards)
		}
		if net.Group() == nil || net.Group().NumChannels() == 0 {
			t.Fatalf("shards=%d: expected boundary links, got none", shards)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d sink %d delivered %d packets, single-engine delivered %d",
					shards, i, got[i], base[i])
			}
		}
	}
}

func TestWithShardsDefaultIsSingleEngine(t *testing.T) {
	net := tppnet.NewNetwork(tppnet.WithSeed(1))
	if net.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", net.Shards())
	}
	if net.Group() != nil {
		t.Fatal("single-shard network must not carry a shard group")
	}
}
