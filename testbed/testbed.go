// Package testbed is the reproduction harness: one runner per table/figure
// of the paper's evaluation, built on the public tppnet network facade and
// the tpp program API. cmd/experiments and the repository's benchmarks are
// thin wrappers over these runners.
//
// The network substrate itself (hosts, switches, links, topologies) lives
// in package tppnet; the aliases here exist so experiment code and older
// callers need only one import.
package testbed

import (
	"minions/internal/conga"
	"minions/internal/microburst"
	"minions/internal/netsight"
	"minions/internal/rcp"
	"minions/internal/sketch"
	"minions/tppnet"
)

// Substrate types, re-exported from the tppnet facade.
type (
	// Network is a wired simulation of hosts, switches and links.
	Network = tppnet.Network
	// Host is an end host running the §4 TPP stack.
	Host = tppnet.Host
	// Switch is a TPP-capable switch.
	Switch = tppnet.Switch
	// App is a registered TPP application identity.
	App = tppnet.App
	// FilterSpec matches packets for TPP attachment.
	FilterSpec = tppnet.FilterSpec
	// ExecOpts tunes the TPP executor.
	ExecOpts = tppnet.ExecOpts
	// Packet is an in-flight simulated packet.
	Packet = tppnet.Packet
	// NodeID addresses a host or switch.
	NodeID = tppnet.NodeID
	// LinkConfig parameterizes one link.
	LinkConfig = tppnet.LinkConfig
	// Time is virtual simulation time in nanoseconds.
	Time = tppnet.Time
	// Scheduler selects the engine's pending-event structure.
	Scheduler = tppnet.Scheduler
	// UDPFlow is a rate-limited CBR sender.
	UDPFlow = tppnet.UDPFlow
	// TCPFlow is the TCP-like AIMD transport.
	TCPFlow = tppnet.TCPFlow
	// Sink counts received traffic.
	Sink = tppnet.Sink
	// Violation is one netwatch policy violation (§2.3).
	Violation = netsight.Violation
)

// Time units.
const (
	Microsecond = tppnet.Microsecond
	Millisecond = tppnet.Millisecond
	Second      = tppnet.Second
)

// Scheduler choices, re-exported for experiment configs and benchmarks.
const (
	SchedulerWheel = tppnet.SchedulerWheel
	SchedulerHeap  = tppnet.SchedulerHeap
)

// New creates an empty network with a deterministic engine seeded with seed.
func New(seed int64) *Network {
	return tppnet.NewNetwork(tppnet.WithSeed(seed))
}

// NewSharded creates an empty network split across shards topology shards
// (see tppnet.WithShards); shards <= 1 yields the classic single-engine
// network.
func NewSharded(seed int64, shards int) *Network {
	return tppnet.NewNetwork(tppnet.WithSeed(seed), tppnet.WithShards(shards))
}

// NewShardedScheduler is NewSharded with an explicit engine scheduler (see
// tppnet.WithScheduler); results are byte-identical across schedulers.
func NewShardedScheduler(seed int64, shards int, sched Scheduler) *Network {
	return tppnet.NewNetwork(tppnet.WithSeed(seed), tppnet.WithShards(shards), tppnet.WithScheduler(sched))
}

// HostLink returns a standard link config at the given rate.
func HostLink(rateMbps int) LinkConfig { return tppnet.HostLink(rateMbps) }

// Topology builders for the paper's experiments, as free functions over a
// Network (the facade also offers them as methods).

// Dumbbell builds the Figure 1 topology.
func Dumbbell(n *Network, hosts, rateMbps int) ([]*Host, *Switch, *Switch) {
	return n.Dumbbell(hosts, rateMbps)
}

// Chain builds the Figure 2 two-bottleneck topology.
func Chain(n *Network, rateMbps int) ([]*Host, []*Switch) {
	return n.Chain(rateMbps)
}

// Conga builds the Figure 4 leaf-spine topology.
func Conga(n *Network, rateMbps int) (hosts []*Host, leaves, spines []*Switch) {
	return n.LeafSpine(rateMbps)
}

// FatTree builds a k-ary fat-tree.
func FatTree(n *Network, k, rateMbps int) [][]*Host {
	return n.FatTree(k, rateMbps)
}

// FatTreeDims sizes a k-ary fat-tree analytically.
var FatTreeDims = tppnet.FatTreeDims

// Application deployers, re-exported.
var (
	// DeployMicroburst installs §2.1 queue monitoring.
	DeployMicroburst = microburst.Deploy
	// DeployNetSight installs §2.3 packet-history collection.
	DeployNetSight = netsight.Deploy
	// DeploySketch installs §2.5 sketch measurement.
	DeploySketch = sketch.Deploy
	// NewRCPSystem registers §2.2 RCP* and allocates its link registers.
	NewRCPSystem = rcp.NewSystem
	// NewRCPFlow wraps a UDP flow with an RCP* rate controller.
	NewRCPFlow = rcp.NewFlow
	// NewCongaBalancer creates a §2.4 CONGA* flowlet balancer.
	NewCongaBalancer = conga.NewBalancer
	// Netwatch attaches live §2.3 policy checking to a NetSight collector.
	Netwatch = netsight.Netwatch
	// IsolationPolicy flags packet histories crossing two host groups.
	IsolationPolicy = netsight.IsolationPolicy
	// NewUDPFlow creates a CBR sender.
	NewUDPFlow = tppnet.NewUDPFlow
	// NewTCPFlow creates a TCP-like sender.
	NewTCPFlow = tppnet.NewTCPFlow
	// NewTCPSink creates a TCP receiver.
	NewTCPSink = tppnet.NewTCPSink
	// NewSink creates a counting receiver.
	NewSink = tppnet.NewSink
	// SendBurst transmits a message as a back-to-back packet burst.
	SendBurst = tppnet.SendBurst
)
