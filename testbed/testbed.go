// Package testbed is the public API for building simulated TPP-capable
// networks and reproducing the paper's experiments. It re-exports the
// network substrate (hosts, switches, links, topologies) and provides one
// runner per table/figure of the paper's evaluation; cmd/experiments and
// the repository's benchmarks are thin wrappers over these runners.
package testbed

import (
	"minions/internal/conga"
	"minions/internal/device"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/microburst"
	"minions/internal/netsight"
	"minions/internal/rcp"
	"minions/internal/sim"
	"minions/internal/sketch"
	"minions/internal/topo"
	"minions/internal/transport"
)

// Substrate types, re-exported for direct use.
type (
	// Network is a wired simulation of hosts, switches and links.
	Network = topo.Network
	// Host is an end host running the §4 TPP stack.
	Host = host.Host
	// Switch is a TPP-capable switch.
	Switch = device.Switch
	// App is a registered TPP application identity.
	App = host.App
	// FilterSpec matches packets for TPP attachment.
	FilterSpec = host.FilterSpec
	// ExecOpts tunes the TPP executor.
	ExecOpts = host.ExecOpts
	// Packet is an in-flight simulated packet.
	Packet = link.Packet
	// NodeID addresses a host or switch.
	NodeID = link.NodeID
	// LinkConfig parameterizes one link.
	LinkConfig = link.Config
	// Time is virtual simulation time in nanoseconds.
	Time = sim.Time
	// UDPFlow is a rate-limited CBR sender.
	UDPFlow = transport.UDPFlow
	// TCPFlow is the TCP-like AIMD transport.
	TCPFlow = transport.TCPFlow
	// Sink counts received traffic.
	Sink = transport.Sink
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// New creates an empty network with a deterministic engine.
func New(seed int64) *Network { return topo.New(seed) }

// HostLink returns a standard link config at the given rate.
func HostLink(rateMbps int) LinkConfig { return topo.HostLink(rateMbps) }

// Topology builders for the paper's experiments.
var (
	// Dumbbell builds the Figure 1 topology.
	Dumbbell = topo.Dumbbell
	// Chain builds the Figure 2 two-bottleneck topology.
	Chain = topo.Chain
	// Conga builds the Figure 4 leaf-spine topology.
	Conga = topo.Conga
	// FatTree builds a k-ary fat-tree.
	FatTree = topo.FatTree
	// FatTreeDims sizes a k-ary fat-tree analytically.
	FatTreeDims = topo.FatTreeDims
)

// Application deployers, re-exported.
var (
	// DeployMicroburst installs §2.1 queue monitoring.
	DeployMicroburst = microburst.Deploy
	// DeployNetSight installs §2.3 packet-history collection.
	DeployNetSight = netsight.Deploy
	// DeploySketch installs §2.5 sketch measurement.
	DeploySketch = sketch.Deploy
	// NewRCPSystem registers §2.2 RCP* and allocates its link registers.
	NewRCPSystem = rcp.NewSystem
	// NewRCPFlow wraps a UDP flow with an RCP* rate controller.
	NewRCPFlow = rcp.NewFlow
	// NewCongaBalancer creates a §2.4 CONGA* flowlet balancer.
	NewCongaBalancer = conga.NewBalancer
	// NewUDPFlow creates a CBR sender.
	NewUDPFlow = transport.NewUDPFlow
	// NewTCPFlow creates a TCP-like sender.
	NewTCPFlow = transport.NewTCPFlow
	// NewTCPSink creates a TCP receiver.
	NewTCPSink = transport.NewTCPSink
	// NewSink creates a counting receiver.
	NewSink = transport.NewSink
	// SendBurst transmits a message as a back-to-back packet burst.
	SendBurst = transport.SendBurst
)
