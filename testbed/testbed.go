// Package testbed is the reproduction harness: one runner per table/figure
// of the paper's evaluation, built on the public tppnet network facade, the
// tpp program API and the public application layer under apps/ (RCP*,
// CONGA*, micro-burst, ndb/NetSight, OpenSketch). cmd/experiments and the
// repository's benchmarks are thin wrappers over these runners.
//
// The network substrate itself (hosts, switches, links, topologies) lives
// in package tppnet and the applications in apps/*; the aliases here exist
// so experiment code and older callers need only one import. Runners that
// used to come in Sharded/Scheduler variants now take a single SimOpts
// option struct (RunFig2With, RunFig4With, NewE2EHarnessWith); the old
// variants remain as thin deprecated wrappers.
package testbed

import (
	"minions/apps/ndb"
	"minions/tppnet"
)

// Substrate types, re-exported from the tppnet facade.
type (
	// Network is a wired simulation of hosts, switches and links.
	Network = tppnet.Network
	// Host is an end host running the §4 TPP stack.
	Host = tppnet.Host
	// Switch is a TPP-capable switch.
	Switch = tppnet.Switch
	// App is a registered TPP application identity.
	App = tppnet.App
	// FilterSpec matches packets for TPP attachment.
	FilterSpec = tppnet.FilterSpec
	// ExecOpts tunes the TPP executor.
	ExecOpts = tppnet.ExecOpts
	// Packet is an in-flight simulated packet.
	Packet = tppnet.Packet
	// NodeID addresses a host or switch.
	NodeID = tppnet.NodeID
	// LinkConfig parameterizes one link.
	LinkConfig = tppnet.LinkConfig
	// Time is virtual simulation time in nanoseconds.
	Time = tppnet.Time
	// Scheduler selects the engine's pending-event structure.
	Scheduler = tppnet.Scheduler
	// SyncMode selects the sharded engine's synchronization algorithm.
	SyncMode = tppnet.SyncMode
	// SyncStats are the sharded engine's synchronization counters.
	SyncStats = tppnet.SyncStats
	// UDPFlow is a rate-limited CBR sender.
	UDPFlow = tppnet.UDPFlow
	// TCPFlow is the TCP-like AIMD transport.
	TCPFlow = tppnet.TCPFlow
	// Sink counts received traffic.
	Sink = tppnet.Sink
	// Violation is one netwatch policy violation (§2.3), from apps/ndb.
	Violation = ndb.Violation
)

// Time units.
const (
	Microsecond = tppnet.Microsecond
	Millisecond = tppnet.Millisecond
	Second      = tppnet.Second
)

// Scheduler choices, re-exported for experiment configs and benchmarks.
const (
	SchedulerWheel = tppnet.SchedulerWheel
	SchedulerHeap  = tppnet.SchedulerHeap
)

// Sync mode choices, re-exported for experiment configs and benchmarks:
// the default asynchronous per-channel-lookahead engine, and the
// global-epoch reference baseline.
const (
	SyncChannel = tppnet.SyncChannel
	SyncEpoch   = tppnet.SyncEpoch
)

// SimOpts bundles the simulation-substrate options every runner shares:
// the deterministic seed, the topology shard count, the engine's event
// scheduler, the shard synchronization mode, and an optional fault plan.
// The zero value means seed 0, single shard, timing wheel, asynchronous
// channel sync, no faults. Shards, Scheduler and Sync never change
// simulated behavior — the determinism guard tests pin byte-identical
// results across all of them — only wall-clock performance. Faults DOES
// change simulated behavior, deterministically: the plan carries its own
// seed.
type SimOpts struct {
	Seed      int64
	Shards    int       // topology shards simulated in parallel (default 1)
	Scheduler Scheduler // pending-event structure (default timing wheel)
	Sync      SyncMode  // shard sync algorithm (default asynchronous channel)
	// Faults, when non-nil, arms the deterministic fault plan on the
	// network (link flaps, loss, corruption, jitter, switch halts); see
	// tppnet.WithFaults and testbed.RunChaos.
	Faults *tppnet.FaultPlan
}

// NewNet creates an empty network from the bundled options — the single
// constructor behind every runner.
func NewNet(o SimOpts) *Network {
	return tppnet.NewNetwork(
		tppnet.WithSeed(o.Seed),
		tppnet.WithShards(o.Shards),
		tppnet.WithScheduler(o.Scheduler),
		tppnet.WithSyncMode(o.Sync),
		tppnet.WithFaults(o.Faults),
	)
}

// New creates an empty single-shard network with a deterministic engine
// seeded with seed.
func New(seed int64) *Network { return NewNet(SimOpts{Seed: seed}) }

// NewSharded creates an empty network split across shards topology shards.
//
// Deprecated: use NewNet(SimOpts{Seed: seed, Shards: shards}).
func NewSharded(seed int64, shards int) *Network {
	return NewNet(SimOpts{Seed: seed, Shards: shards})
}

// NewShardedScheduler is NewSharded with an explicit engine scheduler.
//
// Deprecated: use NewNet with SimOpts.
func NewShardedScheduler(seed int64, shards int, sched Scheduler) *Network {
	return NewNet(SimOpts{Seed: seed, Shards: shards, Scheduler: sched})
}

// HostLink returns a standard link config at the given rate.
func HostLink(rateMbps int) LinkConfig { return tppnet.HostLink(rateMbps) }

// Topology builders for the paper's experiments, as free functions over a
// Network (the facade also offers them as methods).

// Dumbbell builds the Figure 1 topology.
func Dumbbell(n *Network, hosts, rateMbps int) ([]*Host, *Switch, *Switch) {
	return n.Dumbbell(hosts, rateMbps)
}

// Chain builds the Figure 2 two-bottleneck topology.
func Chain(n *Network, rateMbps int) ([]*Host, []*Switch) {
	return n.Chain(rateMbps)
}

// Conga builds the Figure 4 leaf-spine topology.
func Conga(n *Network, rateMbps int) (hosts []*Host, leaves, spines []*Switch) {
	return n.LeafSpine(rateMbps)
}

// FatTree builds a k-ary fat-tree.
func FatTree(n *Network, k, rateMbps int) [][]*Host {
	return n.FatTree(k, rateMbps)
}

// FatTreeDims sizes a k-ary fat-tree analytically.
var FatTreeDims = tppnet.FatTreeDims

// Transport helpers, re-exported.
var (
	// NewUDPFlow creates a CBR sender.
	NewUDPFlow = tppnet.NewUDPFlow
	// NewTCPFlow creates a TCP-like sender.
	NewTCPFlow = tppnet.NewTCPFlow
	// NewTCPSink creates a TCP receiver.
	NewTCPSink = tppnet.NewTCPSink
	// NewSink creates a counting receiver.
	NewSink = tppnet.NewSink
	// SendBurst transmits a message as a back-to-back packet burst.
	SendBurst = tppnet.SendBurst
)

// Netwatch attaches live §2.3 policy checking to an apps/ndb collector,
// accumulating violations into the returned slice.
//
// Deprecated: use Deployment.Watch and app.Collect for the typed stream.
func Netwatch(c *ndb.Collector, policies ...ndb.Policy) *[]Violation {
	out := &[]Violation{}
	c.Stream().Subscribe(func(h ndb.History) {
		for _, p := range policies {
			if v := p(h); v != nil {
				*out = append(*out, *v)
			}
		}
	})
	return out
}

// IsolationPolicy flags packet histories crossing two host groups,
// re-exported from apps/ndb.
var IsolationPolicy = ndb.IsolationPolicy
