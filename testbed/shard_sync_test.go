package testbed

// Sync-mode guards for the asynchronous conservative engine: the
// per-channel-lookahead engine (SyncChannel) and the global-epoch reference
// (SyncEpoch) must produce byte-identical simulations, and the deterministic
// sync counters must show the asynchronous engine synchronizing at least 5×
// less — the acceptance metric that makes the win measurable without
// trusting wall-clock on a 1-CPU box.

import "testing"

// TestSyncModeDeterminismScaleFatTree pins byte-identical fingerprints and
// crossing counts between sync modes at k=4, shards 2 and 4.
func TestSyncModeDeterminismScaleFatTree(t *testing.T) {
	for _, shards := range []int{2, 4} {
		run := func(mode SyncMode) *ScaleResult {
			res, err := RunScaleFatTree(ScaleConfig{
				K: 4, Flows: 64, Duration: 30 * Millisecond,
				WithTPP: true, Seed: 1, Shards: shards, Sync: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ch, ep := run(SyncChannel), run(SyncEpoch)
		if a, b := scaleFingerprint(ch), scaleFingerprint(ep); a != b {
			t.Errorf("shards=%d sync modes diverge:\n  channel: %s\n  epoch:   %s", shards, a, b)
		}
		if ch.SyncCrossings != ep.SyncCrossings || ch.SyncCrossings == 0 {
			t.Errorf("shards=%d crossings: channel %d, epoch %d (want equal, nonzero)",
				shards, ch.SyncCrossings, ep.SyncCrossings)
		}
	}
}

// TestSyncPointReduction is the tentpole's acceptance metric at k=16,
// shards=4: the asynchronous engine must enter at least 5× fewer
// group-wide synchronization points than the global-epoch engine on the
// same workload, with identical simulated behavior. (In practice the gap
// is orders of magnitude: the measured window is one dispatch-join under
// SyncChannel versus one barrier per lookahead window under SyncEpoch.)
func TestSyncPointReduction(t *testing.T) {
	run := func(mode SyncMode) *ScaleResult {
		res, err := RunScaleFatTree(ScaleConfig{
			K: 16, Flows: 256, Duration: 10 * Millisecond,
			WithTPP: true, Seed: 1, Shards: 4, Sync: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ch, ep := run(SyncChannel), run(SyncEpoch)
	if a, b := scaleFingerprint(ch), scaleFingerprint(ep); a != b {
		t.Fatalf("k=16 shards=4 sync modes diverge:\n  channel: %s\n  epoch:   %s", a, b)
	}
	if ch.SyncEpochs == 0 || ep.SyncEpochs == 0 {
		t.Fatalf("sync counters dead: channel %d, epoch %d", ch.SyncEpochs, ep.SyncEpochs)
	}
	if ep.SyncEpochs < 5*ch.SyncEpochs {
		t.Errorf("async engine saved too little: %d sync points vs epoch engine's %d (want ≥5× fewer)",
			ch.SyncEpochs, ep.SyncEpochs)
	}
	if ch.SyncCrossings != ep.SyncCrossings {
		t.Errorf("crossings differ across modes: channel %d, epoch %d", ch.SyncCrossings, ep.SyncCrossings)
	}
	t.Logf("k=16 shards=4: channel %d sync points / epoch %d (%.0f× fewer), %d crossings",
		ch.SyncEpochs, ep.SyncEpochs, float64(ep.SyncEpochs)/float64(ch.SyncEpochs), ch.SyncCrossings)
}

// TestSyncCountersDeterministic pins run-to-run reproducibility of the
// deterministic counter subset (epochs, crossings) — the committed-JSON
// diagnosability contract. Drains and idle waits may move with goroutine
// scheduling and are deliberately excluded.
func TestSyncCountersDeterministic(t *testing.T) {
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		var epochs, crossings uint64
		for i := 0; i < 3; i++ {
			res, err := RunScaleFatTree(ScaleConfig{
				K: 4, Flows: 64, Duration: 20 * Millisecond,
				WithTPP: true, Seed: 3, Shards: 4, Sync: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				epochs, crossings = res.SyncEpochs, res.SyncCrossings
			} else if res.SyncEpochs != epochs || res.SyncCrossings != crossings {
				t.Fatalf("%v run %d counter drift: epochs %d->%d, crossings %d->%d",
					mode, i, epochs, res.SyncEpochs, crossings, res.SyncCrossings)
			}
		}
	}
}
