package testbed

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"minions/apps/microburst"
	"minions/apps/ndb"
	"minions/apps/rcp"
	"minions/apps/sketch"
	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/hwmodel"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/trafficgen"
	"minions/internal/transport"
)

// ---------------------------------------------------------------------------
// Figure 1: micro-burst detection on the 6-host dumbbell (§2.1).

// Fig1Config parameterizes the experiment; zero values take the paper's.
type Fig1Config struct {
	Hosts    int     // 6
	RateMbps int     // 100
	MsgBytes int     // 10 kB
	Load     float64 // 0.30
	Duration Time    // 2 s
	Seed     int64
	Shards   int // topology shards simulated in parallel (default 1)
	// Scheduler selects the engine's pending-event structure (default:
	// timing wheel); results are byte-identical across schedulers.
	Scheduler Scheduler
}

// Fig1QueueStat summarizes one monitored queue.
type Fig1QueueStat struct {
	Queue     string
	Samples   int
	EmptyFrac float64
	P50, P90  float64
	Max       float64
}

// Fig1Result is the data behind both panels of Figure 1b.
type Fig1Result struct {
	Queues        []Fig1QueueStat
	TotalSamples  uint64
	OverheadBytes int
	// MostlyEmptyQueues counts queues empty at >50% of packet arrivals —
	// the paper's "a sampling method is likely to miss the bursts" point.
	MostlyEmptyQueues int
	// BurstQueues counts queues whose max occupancy reached >= 5 packets.
	BurstQueues int
}

// RunFig1 reproduces the §2.1 experiment.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 6
	}
	if cfg.RateMbps == 0 {
		cfg.RateMbps = 100
	}
	if cfg.MsgBytes == 0 {
		cfg.MsgBytes = 10_000
	}
	if cfg.Load == 0 {
		cfg.Load = 0.30
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * Second
	}
	n := NewNet(SimOpts{Seed: cfg.Seed + 3, Shards: cfg.Shards, Scheduler: cfg.Scheduler})
	hosts, _, _ := n.Dumbbell(cfg.Hosts, cfg.RateMbps)
	mon := microburst.New(microburst.Config{
		Filter: FilterSpec{Proto: link.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		return nil, err
	}
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: cfg.MsgBytes,
		Load:     cfg.Load,
		Duration: cfg.Duration,
		Seed:     cfg.Seed + 11,
	})
	n.RunUntil(cfg.Duration + 100*Millisecond)
	return fig1Summarize(mon), nil
}

// fig1Summarize folds a microburst monitor into the Figure 1 panels; shared
// by RunFig1 and RunFig1Workload.
func fig1Summarize(mon *microburst.Monitor) *Fig1Result {
	res := &Fig1Result{TotalSamples: mon.Samples(), OverheadBytes: mon.Overhead()}
	for _, q := range mon.Queues() {
		c := mon.CDF(q)
		if c.N() < 50 {
			continue
		}
		st := Fig1QueueStat{
			Queue:     q.String(),
			Samples:   c.N(),
			EmptyFrac: mon.EmptyFraction(q),
			P50:       c.Quantile(0.5),
			P90:       c.Quantile(0.9),
			Max:       c.Max(),
		}
		res.Queues = append(res.Queues, st)
		if st.EmptyFrac > 0.5 {
			res.MostlyEmptyQueues++
		}
		if st.Max >= 5 {
			res.BurstQueues++
		}
	}
	return res
}

// Table renders the result like Figure 1b's panels.
func (r *Fig1Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — per-packet queue occupancy (%d samples, TPP adds %d B/pkt)\n",
		r.TotalSamples, r.OverheadBytes)
	fmt.Fprintf(&b, "%-10s %8s %8s %6s %6s %6s\n", "queue", "samples", "empty%", "p50", "p90", "max")
	for _, q := range r.Queues {
		fmt.Fprintf(&b, "%-10s %8d %7.1f%% %6.1f %6.1f %6.0f\n",
			q.Queue, q.Samples, q.EmptyFrac*100, q.P50, q.P90, q.Max)
	}
	fmt.Fprintf(&b, "queues mostly empty: %d; queues with bursts >=5 pkts: %d\n",
		r.MostlyEmptyQueues, r.BurstQueues)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 2: RCP* max-min vs proportional fairness (§2.2).

// Fig2Point is one flow's throughput sample.
type Fig2Point struct {
	T    float64 // seconds
	Mbps [3]float64
}

// Fig2Result holds both panels.
type Fig2Result struct {
	MaxMin       []Fig2Point
	Proportional []Fig2Point
	// FinalMaxMin and FinalProp are the steady-state rates of flows a,b,c.
	FinalMaxMin [3]float64
	FinalProp   [3]float64
}

// RunFig2 reproduces Figure 2: flows a (2 links), b, c (1 link each) at the
// given duration per panel.
func RunFig2(duration Time, seed int64) (*Fig2Result, error) {
	return RunFig2With(duration, SimOpts{Seed: seed})
}

// RunFig2Sharded is RunFig2 over a sharded simulation.
//
// Deprecated: use RunFig2With.
func RunFig2Sharded(duration Time, seed int64, shards int) (*Fig2Result, error) {
	return RunFig2With(duration, SimOpts{Seed: seed, Shards: shards})
}

// RunFig2Scheduler is RunFig2Sharded with an explicit engine scheduler.
//
// Deprecated: use RunFig2With.
func RunFig2Scheduler(duration Time, seed int64, shards int, sched Scheduler) (*Fig2Result, error) {
	return RunFig2With(duration, SimOpts{Seed: seed, Shards: shards, Scheduler: sched})
}

// RunFig2With runs Figure 2 with the given substrate options; results are
// byte-identical across shard counts and schedulers for the same seed.
// See capture.go for the trace-captured and replayed variants.
func RunFig2With(duration Time, o SimOpts) (*Fig2Result, error) {
	return runFig2(duration, o, nil, nil, nil, nil)
}

// Table renders both panels' steady states and time series.
func (r *Fig2Result) Table() string {
	var b strings.Builder
	b.WriteString("Figure 2 — RCP* fairness (flows a=2 links, b,c=1 link; 100 Mb/s links)\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %8s   (paper: 50/50/50)\n", "max-min final Mb/s",
		f1(r.FinalMaxMin[0]), f1(r.FinalMaxMin[1]), f1(r.FinalMaxMin[2]))
	fmt.Fprintf(&b, "%-22s %8s %8s %8s   (paper: ~33/67/67)\n", "proportional final",
		f1(r.FinalProp[0]), f1(r.FinalProp[1]), f1(r.FinalProp[2]))
	b.WriteString("time series (t: a/b/c Mb/s), max-min | proportional\n")
	for i := range r.MaxMin {
		m, p := r.MaxMin[i], r.Proportional[i]
		fmt.Fprintf(&b, "t=%4.2fs  %5.1f/%5.1f/%5.1f | %5.1f/%5.1f/%5.1f\n",
			m.T, m.Mbps[0], m.Mbps[1], m.Mbps[2], p.Mbps[0], p.Mbps[1], p.Mbps[2])
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// ---------------------------------------------------------------------------
// §2.2 overheads: TPP control bandwidth vs TCP, for growing flow counts.

// Sec22Row is one flow-count measurement.
type Sec22Row struct {
	Flows       int
	RCPOverhead float64 // control bytes / data bytes
	TCPOverhead float64 // ack bytes / data bytes
}

// RunSec22 measures control-plane bandwidth overhead for n long-lived flows
// over one shared 100 Mb/s link, RCP* vs the TCP baseline.
func RunSec22(flowCounts []int, duration Time, seed int64) ([]Sec22Row, error) {
	var rows []Sec22Row
	for _, nf := range flowCounts {
		// RCP* run. A 2 ms control period approximates the paper's
		// once-per-RTT control packets.
		n := New(seed + 7)
		hosts, _ := n.Chain(100)
		sys := rcp.New(rcp.Config{CapacityMbps: 100, Period: 2 * Millisecond})
		if err := sys.Attach(n, nil); err != nil {
			return nil, err
		}
		var flows []*rcp.Flow
		var sinks []*transport.Sink
		for i := 0; i < nf; i++ {
			port := uint16(7000 + i)
			sinks = append(sinks, transport.NewSink(n.Hosts[4], port, link.ProtoUDP))
			udp := transport.NewUDPFlow(n.Hosts[1], hosts[4].ID(), port, port, 1500)
			fl := sys.NewFlow(n.Hosts[1], hosts[4].ID(), udp)
			flows = append(flows, fl)
			fl.Start()
		}
		n.RunUntil(duration)
		var ctrl, data uint64
		for i, fl := range flows {
			fl.Stop()
			ctrl += fl.CtrlBytes
			data += sinks[i].Bytes
		}
		row := Sec22Row{Flows: nf}
		if data > 0 {
			row.RCPOverhead = float64(ctrl) / float64(data)
		}

		// TCP baseline.
		n2 := New(seed + 9)
		hosts2, _ := n2.Chain(100)
		var tsinks []*transport.TCPSink
		var tdata uint64
		for i := 0; i < nf; i++ {
			port := uint16(7000 + i)
			s := transport.NewTCPSink(n2.Hosts[4], port, 2)
			tsinks = append(tsinks, s)
			f := transport.NewTCPFlow(n2.Hosts[1], hosts2[4].ID(), port, port, 1440)
			f.Start()
		}
		n2.RunUntil(duration)
		var acks uint64
		for _, s := range tsinks {
			acks += s.AckBytes
			tdata += s.Bytes
		}
		if tdata > 0 {
			row.TCPOverhead = float64(acks) / float64(tdata)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Sec22Table renders the comparison.
func Sec22Table(rows []Sec22Row) string {
	var b strings.Builder
	b.WriteString("§2.2 — control bandwidth overhead (paper: RCP* 1.0-6.0%, TCP 0.8-2.4%)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "flows", "RCP* ctrl", "TCP acks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %11.2f%% %11.2f%%\n", r.Flows, r.RCPOverhead*100, r.TCPOverhead*100)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4: CONGA* vs ECMP (§2.4).

// Fig4Cell is one scheme's outcome.
type Fig4Cell struct {
	Thr0, Thr1  float64 // achieved Mb/s for demands 50 and 120
	MaxUtilPerm float64 // max fabric link utilization, permille
	ProbeMbps   float64 // TPP probe overhead (CONGA* only)
}

// Fig4Result compares the schemes.
type Fig4Result struct {
	ECMP  Fig4Cell
	Conga Fig4Cell
}

// RunFig4 reproduces the Figure 4 example.
func RunFig4(duration Time, seed int64) (*Fig4Result, error) {
	return RunFig4With(duration, SimOpts{Seed: seed})
}

// RunFig4Sharded is RunFig4 over a sharded simulation.
//
// Deprecated: use RunFig4With.
func RunFig4Sharded(duration Time, seed int64, shards int) (*Fig4Result, error) {
	return RunFig4With(duration, SimOpts{Seed: seed, Shards: shards})
}

// RunFig4Scheduler is RunFig4Sharded with an explicit engine scheduler.
//
// Deprecated: use RunFig4With.
func RunFig4Scheduler(duration Time, seed int64, shards int, sched Scheduler) (*Fig4Result, error) {
	return RunFig4With(duration, SimOpts{Seed: seed, Shards: shards, Scheduler: sched})
}

// RunFig4With runs Figure 4 with the given substrate options; results are
// byte-identical across shard counts and schedulers for the same seed.
// See capture.go for the trace-captured and replayed variants.
func RunFig4With(duration Time, o SimOpts) (*Fig4Result, error) {
	return runFig4(duration, o, nil, nil, nil, nil)
}

// Table renders the Figure 4 comparison table.
func (r *Fig4Result) Table() string {
	var b strings.Builder
	b.WriteString("Figure 4 — CONGA* vs ECMP (demands: L0->L2 50, L1->L2 120 Mb/s)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s   (paper)\n", "scheme", "thr 50", "thr 120", "max util")
	fmt.Fprintf(&b, "%-12s %9.1f %10.1f %9.0f%%   (45 / 115 / 100%%)\n",
		"ECMP", r.ECMP.Thr0, r.ECMP.Thr1, r.ECMP.MaxUtilPerm/10)
	fmt.Fprintf(&b, "%-12s %9.1f %10.1f %9.0f%%   (50 / 115 / 85%%)\n",
		"CONGA*", r.Conga.Thr0, r.Conga.Thr1, r.Conga.MaxUtilPerm/10)
	fmt.Fprintf(&b, "CONGA* probe overhead: %.2f Mb/s (%.2f%% of traffic; paper <1%%)\n",
		r.Conga.ProbeMbps, r.Conga.ProbeMbps/(r.Conga.Thr0+r.Conga.Thr1)*100)
	return b.String()
}

// ---------------------------------------------------------------------------
// §2.3: NetSight overhead; §2.1 overhead arithmetic.

// Sec23Result is the packet-history overhead accounting.
type Sec23Result struct {
	HeaderBytes, InsnBytes, PerHopBytes, Hops, Total int
	PctAt1000B                                       float64
	Collected                                        int // histories from a demo run
}

// RunSec23 verifies the accounting against a live run.
func RunSec23() (*Sec23Result, error) {
	n := New(17)
	hosts, _, _ := n.Dumbbell(4, 1000)
	d := ndb.New(ndb.Config{
		Filter: FilterSpec{Proto: link.ProtoUDP},
		Hosts:  hosts,
	})
	if err := d.Attach(n, nil); err != nil {
		return nil, err
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	for i := 0; i < 50; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, link.ProtoUDP, 800))
	}
	n.Run()
	total := ndb.OverheadBytes(ndb.DefaultHops)
	return &Sec23Result{
		HeaderBytes: core.HeaderLen,
		InsnBytes:   3 * core.InsnSize,
		PerHopBytes: ndb.WordsPerHop * core.WordSize,
		Hops:        ndb.DefaultHops,
		Total:       total,
		PctAt1000B:  float64(total) / 1000 * 100,
		Collected:   d.Collector.Len(),
	}, nil
}

// Table renders the accounting.
func (r *Sec23Result) Table() string {
	return fmt.Sprintf(`§2.3 — packet-history TPP overhead
header %d B + instructions %d B + %d hops x %d B = %d B/packet
bandwidth overhead at 1000 B packets: %.1f%%  (paper: 84 B, 8.4%% with 16-bit stats)
demo run collected %d complete histories
`, r.HeaderBytes, r.InsnBytes, r.Hops, r.PerHopBytes, r.Total, r.PctAt1000B, r.Collected)
}

// ---------------------------------------------------------------------------
// §2.5: sketch accuracy, memory sizing, sampling overhead.

// Sec25Result summarizes the measurement refactoring.
type Sec25Result struct {
	TrueSources   int
	Estimate      float64
	RelErr        float64
	MemPerServer  int // bytes for k=64 fat-tree at 1 kbit/link
	OverheadFrac  float64
	FatTreeHosts  int
	FatTreeLinks  int
	MonitorPushes uint64
}

// RunSec25 runs the cardinality measurement end to end.
func RunSec25() (*Sec25Result, error) {
	n := New(21)
	hosts, _, _ := n.Dumbbell(6, 1000)
	sys := sketch.New(sketch.Config{
		Filter:      FilterSpec{Proto: link.ProtoUDP},
		SampleFreq:  10,
		BitsPerLink: 1024,
		PushEvery:   100 * Millisecond,
		Hosts:       hosts,
	})
	if err := sys.Attach(n, nil); err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	mon := sys.Monitor
	h0 := n.Hosts[0]
	h0.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	srcs := 5
	for i := 1; i <= srcs; i++ {
		src := n.Hosts[i]
		for k := 0; k < 200; k++ {
			src.Send(src.NewPacket(h0.ID(), uint16(1000+k%50), 8000, link.ProtoUDP, 600))
		}
	}
	n.RunUntil(Second)
	if err := sys.Stop(); err != nil {
		return nil, err
	}
	n.Run()

	best := 0.0
	for _, k := range mon.Links() {
		if e := mon.Estimate(k); e > best {
			best = e
		}
	}
	var tx, tppBytes uint64
	for _, h := range n.Hosts {
		tx += h.Stats().TxBytes
		tppBytes += h.Stats().TPPBytesAdded
	}
	ftHosts, ftLinks := FatTreeDims(64)
	return &Sec25Result{
		TrueSources:   srcs,
		Estimate:      best,
		RelErr:        math.Abs(best-float64(srcs)) / float64(srcs),
		MemPerServer:  sketch.MemoryPerServer(ftLinks, 1024),
		OverheadFrac:  float64(tppBytes) / float64(tx),
		FatTreeHosts:  ftHosts,
		FatTreeLinks:  ftLinks,
		MonitorPushes: mon.Pushes,
	}, nil
}

// Table renders the results.
func (r *Sec25Result) Table() string {
	return fmt.Sprintf(`§2.5 — bitmap-sketch measurement via TPP routing context
unique sources on busiest link: true %d, estimated %.1f (err %.1f%%)
1-in-10 sampling TPP bandwidth overhead: %.2f%%  (paper: <1%%)
k=64 fat-tree: %d servers, %d core links; 1 kbit/link => %d MB/server (paper: ~8MB)
monitor received %d bitmap pushes
`, r.TrueSources, r.Estimate, r.RelErr*100, r.OverheadFrac*100,
		r.FatTreeHosts, r.FatTreeLinks, r.MemPerServer/(1024*1024), r.MonitorPushes)
}

// ---------------------------------------------------------------------------
// Tables 3 and 4 + §6.1 derived claims.

// HardwareTables renders the hardware-model outputs.
func HardwareTables() string {
	var b strings.Builder
	b.WriteString("Table 3 — hardware latency costs\n")
	b.WriteString(hwmodel.Table3())
	fmt.Fprintf(&b, "worst-case 5-CSTORE TPP on ASIC: %.0f ns; stall buffer at 1 Tb/s: %.0f B\n",
		hwmodel.WorstCaseTPPNanos(hwmodel.ASIC, 5),
		hwmodel.StallBufferBytes(hwmodel.WorstCaseTPPNanos(hwmodel.ASIC, 5), 1e12))
	fast, typ := hwmodel.DefaultLatencyContext().ExtraLatencyPctRange()
	fmt.Fprintf(&b, "extra switch latency: %.0f%%-%.0f%% (paper: 10-25%%)\n\n", typ, fast)
	b.WriteString("Table 4 — NetFPGA resource costs\n")
	b.WriteString(hwmodel.Table4())
	m := hwmodel.DefaultAreaModel()
	fmt.Fprintf(&b, "ASIC area: %d TCPUs => %.2f%% of die (paper: 0.32%%)\n",
		m.TCPUs(core.MaxInsns, 64), m.PaperAreaPct())
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 10 / Table 5: the software dataplane (wall-clock benchmarks).

// ShimConfig parameterizes the end-host dataplane benchmark.
type ShimConfig struct {
	Rules      int    // filter-table length
	Match      string // "first", "last", or "all"
	SampleFreq int    // 0 = infinity (no TPP attached), else 1-in-N
	Flows      int    // concurrent sender loops
	TPPBytes   int    // approximate TPP size (paper: 260)
	MSS        int    // application payload per packet (paper: 1240)
	Packets    int    // total packets to push
}

// ShimResult is a wall-clock dataplane measurement.
type ShimResult struct {
	Packets     int
	Elapsed     time.Duration
	NetGbps     float64 // wire bytes rate
	GoodputGbps float64 // application payload rate
	AttachFrac  float64 // fraction of packets instrumented
}

func (c ShimConfig) withDefaults() ShimConfig {
	if c.Rules < 0 {
		c.Rules = 0
	}
	if c.Match == "" {
		c.Match = "first"
	}
	if c.Flows == 0 {
		c.Flows = 1
	}
	if c.TPPBytes == 0 {
		c.TPPBytes = 260
	}
	if c.MSS == 0 {
		// The paper reduced the MSS to leave room for the 260 B TPP within
		// the MTU; with our 54 B header model the ceiling is 1200.
		c.MSS = 1200
	}
	if c.Packets == 0 {
		c.Packets = 200_000
	}
	return c
}

// shimProgram builds a TPP of roughly the requested wire size.
func shimProgram(bytes int) *core.Program {
	words := (bytes - core.HeaderLen - 2*core.InsnSize) / core.WordSize
	if words < 1 {
		words = 1
	}
	if words > core.MaxMemWords {
		words = core.MaxMemWords
	}
	return &core.Program{
		Mode:     core.AddrStack,
		MemWords: words,
		Insns: []core.Instruction{
			{Op: core.OpPUSH, Addr: 0x0000},
			{Op: core.OpPUSH, Addr: 0xB000},
		},
	}
}

// RunShim measures the transmit-side shim in wall-clock time: filter match,
// sampling, TPP attachment. Each flow runs its own host (shims are per-host)
// on its own goroutine, mirroring the paper's multi-flow scaling runs.
func RunShim(cfg ShimConfig) (*ShimResult, error) {
	cfg = cfg.withDefaults()
	freq := cfg.SampleFreq
	infinite := freq == 0
	if infinite {
		freq = 1 << 30
	}

	type worker struct {
		h     *host.Host
		ports []uint16
	}
	workers := make([]worker, cfg.Flows)
	for w := range workers {
		eng := sim.New(int64(w + 1))
		cp := host.NewControlPlane()
		h := host.New(eng, link.NodeID(w+1), cp)
		app := cp.RegisterApp("bench")
		// Install the rule table: each rule matches one UDP dst port.
		for rI := 0; rI < cfg.Rules; rI++ {
			prog := shimProgram(cfg.TPPBytes)
			if _, err := h.AddTPP(app, host.FilterSpec{
				Proto:   link.ProtoUDP,
				DstPort: uint16(1000 + rI),
			}, prog, freq, rI); err != nil {
				return nil, err
			}
		}
		var ports []uint16
		switch {
		case cfg.Rules == 0:
			ports = []uint16{999} // matches nothing
		case cfg.Match == "first":
			ports = []uint16{1000}
		case cfg.Match == "last":
			ports = []uint16{uint16(1000 + cfg.Rules - 1)}
		default: // "all": cycle every rule
			for rI := 0; rI < cfg.Rules; rI++ {
				ports = append(ports, uint16(1000+rI))
			}
		}
		workers[w] = worker{h: h, ports: ports}
	}

	perFlow := cfg.Packets / cfg.Flows
	wire := cfg.MSS + transport.HeaderBytes
	var wg sync.WaitGroup
	start := time.Now()
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perFlow; i++ {
				p := w.h.NewPacket(99, 555, w.ports[i%len(w.ports)], link.ProtoUDP, wire)
				w.h.Send(p) // NIC is nil: the shim cost is what we measure
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var attached, netBytes uint64
	total := perFlow * cfg.Flows
	for _, w := range workers {
		st := w.h.Stats()
		attached += st.TPPsAttached
		netBytes += st.TxBytes
	}
	sec := elapsed.Seconds()
	return &ShimResult{
		Packets:     total,
		Elapsed:     elapsed,
		NetGbps:     float64(netBytes) * 8 / sec / 1e9,
		GoodputGbps: float64(total*cfg.MSS) * 8 / sec / 1e9,
		AttachFrac:  float64(attached) / float64(total),
	}, nil
}

// RunFig10 sweeps sampling frequency x flow counts like Figure 10.
func RunFig10(packets int) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 10 — shim throughput vs TPP sampling frequency (wall clock)\n")
	fmt.Fprintf(&b, "%-8s %-6s %10s %10s %8s\n", "sample", "flows", "net Gb/s", "good Gb/s", "attach%")
	for _, freq := range []int{1, 10, 20, 0} {
		for _, flows := range []int{1, 10, 20} {
			res, err := RunShim(ShimConfig{
				Rules: 1, Match: "first", SampleFreq: freq,
				Flows: flows, Packets: packets,
			})
			if err != nil {
				return "", err
			}
			label := "inf"
			if freq != 0 {
				label = fmt.Sprintf("%d", freq)
			}
			fmt.Fprintf(&b, "%-8s %-6d %10.2f %10.2f %7.1f%%\n",
				label, flows, res.NetGbps, res.GoodputGbps, res.AttachFrac*100)
		}
	}
	b.WriteString("(shape: network throughput ~flat; goodput drops as sampling -> 1)\n")
	return b.String(), nil
}

// RunTable5 sweeps the filter-table length like Table 5.
func RunTable5(packets int) (string, error) {
	var b strings.Builder
	b.WriteString("Table 5 — shim throughput (Gb/s) vs number of filter rules\n")
	fmt.Fprintf(&b, "%-8s", "match")
	rules := []int{0, 1, 10, 100, 1000}
	for _, r := range rules {
		fmt.Fprintf(&b, "%8d", r)
	}
	b.WriteString("\n")
	for _, match := range []string{"first", "last", "all"} {
		fmt.Fprintf(&b, "%-8s", match)
		for _, r := range rules {
			res, err := RunShim(ShimConfig{
				Rules: r, Match: match, SampleFreq: 1,
				Flows: 10, Packets: packets,
			})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%8.2f", res.NetGbps)
		}
		b.WriteString("\n")
	}
	b.WriteString("(shape: flat through 10 rules, degrading at 100/1000)\n")
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// §2.1 overhead accounting.

// Sec21Table renders the micro-burst TPP overhead arithmetic.
func Sec21Table() string {
	hops := 5
	total := core.HeaderLen + 3*core.InsnSize + hops*microburst.WordsPerHop*core.WordSize
	return fmt.Sprintf(`§2.1 — micro-burst TPP overhead at network diameter %d
header %d B + 3 instructions %d B + %d hops x %d B stats = %d B/packet
(paper: 54 B with 16-bit statistics words; ours are 32-bit => %d B)
`, hops, core.HeaderLen, 3*core.InsnSize, hops, microburst.WordsPerHop*core.WordSize, total, total)
}
