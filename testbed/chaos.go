package testbed

// Chaos harness: the fault-injection counterpart of the figure runners. A
// chaos run drives a k=4 fat-tree with the paper's two control loops — RCP*
// rate control (§2.2) and CONGA* load balancing (§2.4) — while a
// deterministic fault plan flaps links, halts a core switch, and degrades
// the fabric with loss, jitter and TPP corruption. It then measures what the
// paper's architecture claims: the end-host control loops notice (missed
// collect rounds, probe-timeout streaks), adapt (rate decay, dead-path
// reroute), and recover once the network heals.
//
// RunChaos also enforces the fault plane's own invariants — no leaked pool
// packets after a run full of mid-flight drops, and full recovery of the
// RCP* aggregate within a bounded number of control epochs — so the chaos
// test doubles as the integration proof that terminal-drop ownership and
// horizon-bounded fault schedules compose.

import (
	"fmt"
	"strings"
	"sync/atomic"

	"minions/apps/conga"
	"minions/apps/rcp"
	"minions/tppnet"
	"minions/tppnet/faults"
	"minions/workload"
)

// Chaos timeline (virtual time). The plan's horizon doubles as the restore
// instant: every scripted and stochastic outage is over by then, so the
// recovery measurement starts from a healing — not healed — network.
const (
	chaosFault   = 300 * Millisecond // scripted agg→core uplink down
	chaosHalt    = 350 * Millisecond // scripted core switch halt
	chaosRestore = 600 * Millisecond // horizon: everything healed
)

// ChaosConfig parameterizes RunChaos. The zero value is the standard
// scenario: seed 1, single shard, timing wheel.
type ChaosConfig struct {
	Seed      int64
	Shards    int
	Scheduler Scheduler
	// Sync selects the shard synchronization algorithm; like Scheduler it
	// never moves the fingerprint (the chaos determinism tests pin it).
	Sync SyncMode
	// MaxRecoveryEpochs bounds how many RCP* control periods (10 ms) after
	// the restore instant the aggregate rate may take to regain 90% of its
	// pre-fault baseline (default 60). Exceeding it is an error: the system
	// failed to recover.
	MaxRecoveryEpochs int
	// Workload optionally layers a background workload.Spec over the
	// chaos scenario's control loops — how RCP*/CONGA* recovery behaves
	// when the fabric also carries heavy-tailed or incast traffic. The
	// Spec attaches to every fat-tree host (pod-major order); a zero
	// Spec.Seed inherits Seed+17. The runner is stopped with the other
	// sources before the final drain, so the pool-leak invariant still
	// holds, and its counters append to the result fingerprint.
	Workload *workload.Spec
}

// ChaosResult is one chaos run's measurement.
type ChaosResult struct {
	Hosts, Switches, Links int
	Shards                 int

	// BaselineMbps is the RCP* aggregate sending rate just before the first
	// scripted fault; FloorMbps the lowest aggregate observed during the
	// outage; RecoveredMbps the aggregate when recovery was declared.
	BaselineMbps  float64
	FloorMbps     float64
	RecoveredMbps float64
	// RecoveryEpochs is the number of 10 ms control epochs after the
	// restore instant until the aggregate regained 90% of baseline
	// (0 = never lost it).
	RecoveryEpochs int

	// Fault-plane activity over the run.
	Faults faults.Counts

	// Control-plane failure handling: CONGA* dead-path declarations and
	// revivals, the virtual time from the core-switch halt to the first
	// dead declaration, RCP* missed collect rounds and rate decays, and
	// executor give-ups across every host.
	CongaDeaths   uint64
	CongaRevives  uint64
	CongaDetect   Time
	RCPMissed     uint64
	RCPDecays     uint64
	ExecFailures  uint64
	DeliveredPkts uint64

	Events          int
	PoolOutstanding int64 // leaked pool packets after the drain (must be 0)

	// WorkloadFP is the background workload.Runner's deterministic counter
	// line when ChaosConfig.Workload was set (empty otherwise).
	WorkloadFP string
}

// Fingerprint renders every simulated-behavior field — the string two runs
// with the same seed must agree on byte-for-byte, regardless of shard count
// or engine scheduler.
func (r *ChaosResult) Fingerprint() string {
	fp := fmt.Sprintf(
		"base=%.6f floor=%.6f rec=%.6f epochs=%d faults=%+v deaths=%d revives=%d detect=%d missed=%d decays=%d execfail=%d delivered=%d events=%d leaked=%d",
		r.BaselineMbps, r.FloorMbps, r.RecoveredMbps, r.RecoveryEpochs,
		r.Faults, r.CongaDeaths, r.CongaRevives, int64(r.CongaDetect),
		r.RCPMissed, r.RCPDecays, r.ExecFailures, r.DeliveredPkts,
		r.Events, r.PoolOutstanding)
	if r.WorkloadFP != "" {
		fp += " wl{" + r.WorkloadFP + "}"
	}
	return fp
}

// Table renders the result for humans.
func (r *ChaosResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos fat-tree k=4 (%d shards): %d hosts, %d switches, %d links\n",
		r.Shards, r.Hosts, r.Switches, r.Links)
	fmt.Fprintf(&b, "faults: %d/%d link down/up, %d/%d halt/restart, %d losses, %d corruptions, %d stalls, %d bursts\n",
		r.Faults.LinkDowns, r.Faults.LinkUps, r.Faults.Halts, r.Faults.Restarts,
		r.Faults.Losses, r.Faults.Corruptions, r.Faults.Stalls, r.Faults.BurstStarts)
	fmt.Fprintf(&b, "rcp: %.1f -> %.1f -> %.1f Mb/s (baseline/floor/recovered), recovered in %d epochs, %d missed rounds, %d decays\n",
		r.BaselineMbps, r.FloorMbps, r.RecoveredMbps, r.RecoveryEpochs, r.RCPMissed, r.RCPDecays)
	fmt.Fprintf(&b, "conga: %d path deaths, %d revives, first death %.2f ms after halt; %d exec give-ups; %d pkts delivered; %d leaked\n",
		r.CongaDeaths, r.CongaRevives, r.CongaDetect.Seconds()*1e3,
		r.ExecFailures, r.DeliveredPkts, r.PoolOutstanding)
	return b.String()
}

// chaosPlan builds the deterministic fault plan for the standard scenario on
// an already-wired fat-tree: a scripted both-directions down/up of pod 0's
// first agg→core uplink, a scripted halt/restart of the last core switch,
// random flapping of pod 3's first agg→core uplink, and mild fabric-wide
// loss (with Gilbert-Elliott bursts), TPP corruption and jitter — all over
// by the horizon.
func chaosPlan(n *Network, seed int64) (*tppnet.FaultPlan, error) {
	// Fat-tree creation order (k=4): switches 0-3 are cores, then per pod
	// [agg0, edge0, agg1, edge1]; see topo.FatTree. The script's switch
	// index 3 below is the last core.
	core0 := n.Switches[0]
	aggPod0, aggPod3 := n.Switches[4], n.Switches[4+3*4]
	scriptFwd := findLink(n, aggPod0.NodeID(), core0.NodeID())
	scriptRev := findLink(n, core0.NodeID(), aggPod0.NodeID())
	flapFwd := findLink(n, aggPod3.NodeID(), core0.NodeID())
	flapRev := findLink(n, core0.NodeID(), aggPod3.NodeID())
	if scriptFwd < 0 || scriptRev < 0 || flapFwd < 0 || flapRev < 0 {
		return nil, fmt.Errorf("testbed: chaos fat-tree is missing an agg→core uplink")
	}
	return &tppnet.FaultPlan{
		Seed:    seed,
		Horizon: chaosRestore,
		Flap: &faults.FlapSpec{
			MTTF: 60 * Millisecond, MTTR: 10 * Millisecond,
			Links: []int{flapFwd, flapRev},
		},
		Loss: &faults.LossSpec{
			Rate: 0.001, GoodToBad: 0.0005, BadToGood: 0.05, BadRate: 0.2,
		},
		Corrupt: &faults.CorruptSpec{Rate: 0.002},
		Jitter:  &faults.JitterSpec{Rate: 0.02, Max: 20 * Microsecond},
		Script: []faults.Event{
			{At: chaosFault, Kind: faults.LinkDown, Link: scriptFwd, Switch: -1},
			{At: chaosFault, Kind: faults.LinkDown, Link: scriptRev, Switch: -1},
			{At: chaosHalt, Kind: faults.SwitchHalt, Link: -1, Switch: 3},
			{At: chaosRestore, Kind: faults.LinkUp, Link: scriptFwd, Switch: -1},
			{At: chaosRestore, Kind: faults.LinkUp, Link: scriptRev, Switch: -1},
			{At: chaosRestore, Kind: faults.SwitchRestart, Link: -1, Switch: 3},
		},
	}, nil
}

// findLink returns the creation-order index of the directed link src→dst,
// -1 if absent.
func findLink(n *Network, src, dst NodeID) int {
	for i := range n.Links() {
		if e := n.LinkEndsOf(i); e.Src == src && e.Dst == dst {
			return i
		}
	}
	return -1
}

// RunChaos runs the standard chaos scenario: a k=4 fat-tree at 100 Mb/s
// carrying four RCP*-controlled flows (pod 0 → pod 3) and a CONGA*-balanced
// flow group (pod 1 → pod 2) through the chaosPlan fault schedule. It
// returns an error if the system violates a resilience invariant: leaked
// pool packets after the drain, or an RCP* aggregate that fails to regain
// 90% of its pre-fault baseline within MaxRecoveryEpochs control epochs of
// the restore instant.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.MaxRecoveryEpochs == 0 {
		cfg.MaxRecoveryEpochs = 60
	}

	// Build the topology first: the plan needs link indices, so it is wired
	// into the network after the fact via a second NewNet — instead, build
	// once and arm through SimOpts by constructing the plan from a throwaway
	// twin topology. The twin is cheap (no traffic) and keeps NewNet the
	// single constructor path.
	twin := NewNet(SimOpts{Seed: cfg.Seed, Shards: cfg.Shards, Scheduler: cfg.Scheduler, Sync: cfg.Sync})
	twin.FatTree(4, 100)
	plan, err := chaosPlan(twin, cfg.Seed)
	if err != nil {
		return nil, err
	}

	net := NewNet(SimOpts{Seed: cfg.Seed, Shards: cfg.Shards, Scheduler: cfg.Scheduler, Sync: cfg.Sync, Faults: plan})
	pods := net.FatTree(4, 100)

	res := &ChaosResult{
		Shards:   cfg.Shards,
		Switches: len(net.Switches),
		Links:    len(net.Links()),
	}
	for _, p := range pods {
		res.Hosts += len(p)
	}

	// Executor give-ups, from every host: counted with an atomic because
	// each host publishes on its own shard's goroutine.
	var execFails atomic.Uint64
	for _, h := range net.Hosts {
		h.ExecFailures().Subscribe(func(tppnet.ExecFailure) { execFails.Add(1) })
	}

	// RCP*: four rate-controlled flows pod 0 → pod 3, crossing the core.
	sys := rcp.New(rcp.Config{CapacityMbps: 100, Hops: 6})
	if err := sys.Attach(net, nil); err != nil {
		return nil, err
	}
	var sinks []*Sink
	for i := 0; i < 4; i++ {
		src, dst := pods[0][i], pods[3][i]
		port := uint16(7001 + i)
		sinks = append(sinks, NewSink(dst, port, tppnet.ProtoUDP))
		udp := NewUDPFlow(src, dst.ID(), port, port, 1500)
		sys.NewFlow(src, dst.ID(), udp)
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}

	// CONGA*: one balanced flow group pod 1 → pod 2, four subflows whose
	// flowlets spread across the four core paths.
	bal := conga.New(conga.Config{Host: pods[1][0], Dst: pods[2][0].ID(), Agg: conga.AggMax, Hops: 6})
	if err := bal.Attach(net, nil); err != nil {
		return nil, err
	}
	var firstDeath atomic.Int64
	firstDeath.Store(-1)
	bal.Paths().Subscribe(func(s conga.PathSample) {
		if s.Dead && firstDeath.Load() < 0 {
			firstDeath.Store(int64(s.At))
		}
	})
	if err := bal.Start(); err != nil {
		return nil, err
	}
	tagger := bal.Tagger()
	sinks = append(sinks, NewSink(pods[2][0], 7500, tppnet.ProtoUDP))
	var subs []*UDPFlow
	for i := 0; i < 4; i++ {
		f := NewUDPFlow(pods[1][0], pods[2][0].ID(), uint16(7510+i), 7500, 1500)
		f.SetRateBps(15_000_000)
		f.Tagger = tagger
		f.Start()
		subs = append(subs, f)
	}

	// Optional background workload under the control loops.
	var wr *workload.Runner
	if cfg.Workload != nil {
		spec := *cfg.Workload
		if spec.Seed == 0 {
			spec.Seed = cfg.Seed + 17
		}
		var hostsAll []*Host
		for _, p := range pods {
			hostsAll = append(hostsAll, p...)
		}
		if wr, err = spec.Attach(hostsAll); err != nil {
			return nil, err
		}
	}

	agg := func() float64 {
		var sum float64
		for _, f := range sys.Flows() {
			sum += f.RateMbps()
		}
		return sum
	}

	// Phase 1 — converge, then baseline at the first scripted fault.
	events := net.RunUntil(chaosFault)
	res.BaselineMbps = agg()

	// Phase 2 — outage: step by the control period, tracking the floor.
	const epoch = 10 * Millisecond
	res.FloorMbps = res.BaselineMbps
	for at := chaosFault + epoch; at <= chaosRestore; at += epoch {
		events += net.RunUntil(at)
		if r := agg(); r < res.FloorMbps {
			res.FloorMbps = r
		}
	}

	// Phase 3 — recovery: epochs until the aggregate regains 90% of
	// baseline. Epoch 0 means the outage never cost 10%.
	target := 0.9 * res.BaselineMbps
	res.RecoveryEpochs = -1
	for e := 0; e <= cfg.MaxRecoveryEpochs; e++ {
		if e > 0 {
			events += net.RunUntil(chaosRestore + Time(e)*epoch)
		}
		if r := agg(); r >= target {
			res.RecoveryEpochs, res.RecoveredMbps = e, r
			break
		}
	}

	// Drain: stop every traffic source and run the simulation dry so the
	// pool-ownership invariant is checkable — every packet the fault plane
	// dropped mid-flight must have been released exactly once.
	if err := sys.Stop(); err != nil {
		return nil, err
	}
	if err := bal.Stop(); err != nil {
		return nil, err
	}
	for _, f := range subs {
		f.Stop()
	}
	if wr != nil {
		wr.Stop()
	}
	events += net.Run()
	res.Events = events
	if wr != nil {
		res.WorkloadFP = wr.Fingerprint()
	}

	res.Faults = net.Faults().Counts()
	res.CongaDeaths = bal.PathDeaths
	res.CongaRevives = bal.PathRevives
	if at := firstDeath.Load(); at >= 0 {
		res.CongaDetect = Time(at) - chaosHalt
	}
	for _, f := range sys.Flows() {
		res.RCPMissed += f.MissedRoundsTotal
		res.RCPDecays += f.Decays
	}
	res.ExecFailures = execFails.Load()
	for _, s := range sinks {
		res.DeliveredPkts += s.Packets
	}
	res.PoolOutstanding = net.PoolOutstanding()

	if res.PoolOutstanding != 0 {
		return res, fmt.Errorf("testbed: chaos run leaked %d pool packets", res.PoolOutstanding)
	}
	if res.RecoveryEpochs < 0 {
		return res, fmt.Errorf("testbed: RCP* aggregate %.1f Mb/s never regained 90%% of the %.1f Mb/s baseline within %d epochs of restore",
			agg(), res.BaselineMbps, cfg.MaxRecoveryEpochs)
	}
	return res, nil
}
