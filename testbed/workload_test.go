package testbed

// Determinism guards for the workload engine wired through the testbed:
// an incast spec on the fat-tree must produce byte-identical traffic
// counters AND byte-identical workload fingerprints across every
// combination of shard count, event scheduler and shard sync mode. This is
// the cross-substrate pin ISSUE 10 requires; CI's race job runs it with
// -race.

import (
	"strings"
	"testing"
)


func TestWorkloadDeterminismAcrossSubstrate(t *testing.T) {
	spec := WorkloadIncastFatTree(4)
	var base string
	for _, shards := range []int{1, 2, 4} {
		for _, sched := range []Scheduler{SchedulerWheel, SchedulerHeap} {
			for _, sync := range []SyncMode{SyncChannel, SyncEpoch} {
				res, err := RunScaleFatTree(ScaleConfig{
					K: 4, Duration: 30 * Millisecond, WithTPP: true,
					Seed: 3, Shards: shards, Scheduler: sched, Sync: sync,
					Workload: spec,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.WorkloadFingerprint == "" {
					t.Fatal("no workload fingerprint recorded")
				}
				fp := scaleFingerprint(res) + " :: " + res.WorkloadFingerprint
				if base == "" {
					base = fp
				} else if fp != base {
					t.Errorf("shards=%d sched=%v sync=%v diverges\n  base: %s\n  got:  %s",
						shards, sched, sync, base, fp)
				}
			}
		}
	}
	if !strings.Contains(base, "kind=incast") {
		t.Errorf("fingerprint missing incast group: %s", base)
	}
}

// The incast workload must actually stress the fabric: requests fan out,
// responses collide, and with TPP attached every packet is instrumented.
func TestWorkloadIncastOnFatTreeDelivers(t *testing.T) {
	res, err := RunScaleFatTree(ScaleConfig{
		K: 4, Duration: 50 * Millisecond, WithTPP: true, Seed: 3,
		Workload: WorkloadIncastFatTree(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.TPPHopRecords == 0 {
		t.Fatalf("incast workload idle: delivered=%d tpp=%d", res.Delivered, res.TPPHopRecords)
	}
}

// Chaos runs accept a background workload; the fingerprint must extend —
// not replace — the chaos invariant fingerprint, stay reproducible, and
// conservation must still hold under faults + workload.
func TestChaosWithBackgroundWorkload(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, Workload: WorkloadHeavyTail(0.05)}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.WorkloadFP == "" {
		t.Fatal("chaos run recorded no workload fingerprint")
	}
	if !strings.Contains(a.Fingerprint(), " wl{") {
		t.Fatalf("chaos fingerprint does not embed workload: %s", a.Fingerprint())
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("chaos+workload not reproducible\n  a: %s\n  b: %s", a.Fingerprint(), b.Fingerprint())
	}
}

// RunFig1Workload under synchronized incast must see burstier queues than
// the same dumbbell under a smooth paced load at trivial utilization.
func TestFig1UnderIncastSeesBursts(t *testing.T) {
	incast := WorkloadIncastFatTree(4) // reuse the canned group on 6 hosts
	incast.Groups[0].Incast.Aggregators = []int{0, 1}
	incast.Groups[0].Incast.FanIn = 3
	r, err := RunFig1Workload(incast, Fig1Config{Duration: 1 * Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSamples == 0 {
		t.Fatal("no TPP samples under incast workload")
	}
	if r.BurstQueues == 0 {
		t.Errorf("expected burst queues under synchronized incast; got none\n%s", r.Table())
	}
}

func TestRCPWorkloadComparison(t *testing.T) {
	res, err := RunRCPWorkload(2*Second, SimOpts{Seed: 1}, WorkloadHeavyTail(0.10))
	if err != nil {
		t.Fatal(err)
	}
	// Clean pass must reproduce the Figure 2 max-min panel (~50/50/50).
	for i, v := range res.Clean {
		if v < 35 || v > 65 {
			t.Errorf("clean flow %d: %.1f Mb/s, want ~50", i, v)
		}
	}
	if res.BgDeliveredMB <= 0 {
		t.Error("background workload delivered nothing")
	}
	// Background load must cost the RCP* flows throughput somewhere.
	var clean, loaded float64
	for i := range res.Clean {
		clean += res.Clean[i]
		loaded += res.Loaded[i]
	}
	if loaded >= clean {
		t.Errorf("background load did not reduce RCP* aggregate: clean=%.1f loaded=%.1f", clean, loaded)
	}
}
