package testbed

// Determinism guard for the sharded simulation: the contract every figure
// and benchmark in this repository relies on is that WithShards(n) changes
// only wall-clock behavior, never simulated behavior. These tests pin it:
// the same seed must produce byte-identical traffic counters and rendered
// experiment outputs at 1, 2 and 4 shards.

import (
	"fmt"
	"testing"
)

// scaleFingerprint renders every simulated-behavior field of a ScaleResult
// (wall-clock and allocation fields excluded — those are allowed to vary).
func scaleFingerprint(r *ScaleResult) string {
	return fmt.Sprintf("hosts=%d switches=%d links=%d hops=%d delivered=%d mb=%.9f drops=%d tpp=%d events=%d",
		r.Hosts, r.Switches, r.Links, r.PktHops, r.Delivered, r.DeliveredMB,
		r.Drops, r.TPPHopRecords, r.Events)
}

func TestShardDeterminismScaleFatTree(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		var base string
		for _, shards := range []int{1, 2, 4} {
			res, err := RunScaleFatTree(ScaleConfig{
				K: 4, Flows: 64, Duration: 30 * Millisecond,
				WithTPP: true, Seed: seed, Shards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			fp := scaleFingerprint(res)
			if shards == 1 {
				base = fp
			} else if fp != base {
				t.Errorf("seed %d: shards=%d diverges from shards=1\n  1: %s\n  %d: %s",
					seed, shards, base, shards, fp)
			}
		}
	}
}

func TestShardDeterminismFig1(t *testing.T) {
	var base string
	for _, shards := range []int{1, 2, 4} {
		r, err := RunFig1(Fig1Config{Duration: 500 * Millisecond, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			base = r.Table()
		} else if r.Table() != base {
			t.Errorf("fig1 shards=%d diverges:\n-- shards=1 --\n%s-- shards=%d --\n%s",
				shards, base, shards, r.Table())
		}
	}
}

func TestShardDeterminismFig2(t *testing.T) {
	var base string
	for _, shards := range []int{1, 2, 4} {
		r, err := RunFig2With(2*Second, SimOpts{Seed: 1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			base = r.Table()
		} else if r.Table() != base {
			t.Errorf("fig2 shards=%d diverges:\n-- shards=1 --\n%s-- shards=%d --\n%s",
				shards, base, shards, r.Table())
		}
	}
}

func TestShardDeterminismFig4(t *testing.T) {
	var base string
	for _, shards := range []int{1, 2, 4} {
		r, err := RunFig4With(2*Second, SimOpts{Seed: 1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			base = r.Table()
		} else if r.Table() != base {
			t.Errorf("fig4 shards=%d diverges:\n-- shards=1 --\n%s-- shards=%d --\n%s",
				shards, base, shards, r.Table())
		}
	}
}

// TestShardDeterminismTCP covers the transport that draws random send
// jitter: TCP flows seed their jitter from the flow 4-tuple, not the
// (per-shard) engine RNG, so TCP behavior must also be shard-invariant.
func TestShardDeterminismTCP(t *testing.T) {
	run := func(shards int) string {
		net := NewNet(SimOpts{Seed: 11, Shards: shards})
		hosts, _, _ := net.Dumbbell(6, 100)
		var flows []*TCPFlow
		for i := 0; i < 3; i++ {
			dst := hosts[3+i]
			dport := uint16(30000 + i)
			NewTCPSink(dst, dport, 2)
			f := NewTCPFlow(hosts[i], dst.ID(), uint16(20000+i), dport, 1440)
			f.Start()
			flows = append(flows, f)
		}
		net.RunUntil(200 * Millisecond)
		out := ""
		for i, f := range flows {
			out += fmt.Sprintf("flow%d: tx=%d bytes=%d retx=%d\n",
				i, f.TxDataPkts, f.TxDataBytes, f.Retransmits)
		}
		return out
	}
	base := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != base {
			t.Errorf("TCP shards=%d diverges:\n-- shards=1 --\n%s-- shards=%d --\n%s",
				shards, base, shards, got)
		}
	}
}

// TestSchedulerDeterminismScaleFatTree pins the engine-core contract the
// timing-wheel refactor must keep: heap and wheel schedulers produce
// byte-identical ScaleResult counters at every shard count.
func TestSchedulerDeterminismScaleFatTree(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		var base string
		for _, sched := range schedulers {
			res, err := RunScaleFatTree(ScaleConfig{
				K: 4, Flows: 64, Duration: 30 * Millisecond,
				WithTPP: true, Seed: 1, Shards: shards, Scheduler: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			fp := scaleFingerprint(res)
			if sched == SchedulerWheel {
				base = fp
			} else if fp != base {
				t.Errorf("shards=%d: heap diverges from wheel\n  wheel: %s\n  heap:  %s", shards, base, fp)
			}
		}
	}
}

// TestSchedulerDeterminismFigures: the rendered Fig1/Fig2/Fig4 tables must
// be byte-identical between heap and wheel schedulers at shards 1, 2 and 4.
func TestSchedulerDeterminismFigures(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		tables := func(sched Scheduler) [3]string {
			r1, err := RunFig1(Fig1Config{Duration: 400 * Millisecond, Shards: shards, Scheduler: sched})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunFig2With(1500*Millisecond, SimOpts{Seed: 1, Shards: shards, Scheduler: sched})
			if err != nil {
				t.Fatal(err)
			}
			r4, err := RunFig4With(2*Second, SimOpts{Seed: 1, Shards: shards, Scheduler: sched})
			if err != nil {
				t.Fatal(err)
			}
			return [3]string{r1.Table(), r2.Table(), r4.Table()}
		}
		wheel := tables(SchedulerWheel)
		heap := tables(SchedulerHeap)
		for i, name := range []string{"fig1", "fig2", "fig4"} {
			if wheel[i] != heap[i] {
				t.Errorf("%s shards=%d diverges between schedulers:\n-- wheel --\n%s-- heap --\n%s",
					name, shards, wheel[i], heap[i])
			}
		}
	}
}

// TestShardDeterminismRepeatable pins run-to-run reproducibility at a fixed
// shard count (goroutine scheduling must never leak into results).
func TestShardDeterminismRepeatable(t *testing.T) {
	var base string
	for i := 0; i < 3; i++ {
		res, err := RunScaleFatTree(ScaleConfig{
			K: 4, Flows: 64, Duration: 20 * Millisecond,
			WithTPP: true, Seed: 3, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		fp := scaleFingerprint(res)
		if i == 0 {
			base = fp
		} else if fp != base {
			t.Fatalf("run %d diverges at fixed shard count:\n  %s\n  %s", i, base, fp)
		}
	}
}
