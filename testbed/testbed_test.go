package testbed_test

import (
	"testing"

	"minions/testbed"
	"minions/tpp"
)

func TestPublicEndToEnd(t *testing.T) {
	n := testbed.New(1)
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	cfg := testbed.HostLink(1000)
	n.Connect(h1, s1, cfg)
	n.Connect(h2, s2, cfg)
	n.Connect(s1, s2, cfg)
	n.ComputeRoutes()

	prog := tpp.MustAssemble(`PUSH [Switch:SwitchID]`)
	app := n.CP.RegisterApp("t")
	if _, err := h1.AddTPP(app, testbed.FilterSpec{Proto: 17}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}
	hops := 0
	h2.RegisterAggregator(app.Wire, func(p *testbed.Packet, v tpp.Section) {
		hops = v.HopOrSP()
	})
	h2.Bind(9000, 17, func(p *testbed.Packet) {})
	h1.Send(h1.NewPacket(h2.ID(), 1, 9000, 17, 500))
	n.Eng.Run()
	if hops != 2 {
		t.Fatalf("executed on %d hops, want 2", hops)
	}
}

func TestRunnersSmoke(t *testing.T) {
	// Tiny-scale smoke of each experiment runner the benchmarks rely on.
	if _, err := testbed.RunFig1(testbed.Fig1Config{Duration: 200 * testbed.Millisecond}); err != nil {
		t.Error(err)
	}
	if _, err := testbed.RunFig2(2*testbed.Second, 1); err != nil {
		t.Error(err)
	}
	if _, err := testbed.RunFig4(2*testbed.Second, 1); err != nil {
		t.Error(err)
	}
	if _, err := testbed.RunSec23(); err != nil {
		t.Error(err)
	}
	if _, err := testbed.RunSec25(); err != nil {
		t.Error(err)
	}
	if out := testbed.HardwareTables(); out == "" {
		t.Error("empty hardware tables")
	}
	if out := testbed.Sec21Table(); out == "" {
		t.Error("empty sec21 table")
	}
	if _, err := testbed.RunShim(testbed.ShimConfig{Rules: 2, SampleFreq: 1, Packets: 10_000}); err != nil {
		t.Error(err)
	}
	rows, err := testbed.RunSec22([]int{3}, testbed.Second, 1)
	if err != nil || len(rows) != 1 {
		t.Errorf("sec22: %v %v", rows, err)
	}
}

func TestShimAttachAccounting(t *testing.T) {
	res, err := testbed.RunShim(testbed.ShimConfig{
		Rules: 1, Match: "first", SampleFreq: 10, Flows: 2, Packets: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttachFrac < 0.08 || res.AttachFrac > 0.12 {
		t.Errorf("attach fraction = %.3f, want ~0.10", res.AttachFrac)
	}
	if res.NetGbps <= res.GoodputGbps {
		t.Error("net throughput should exceed goodput")
	}
}
