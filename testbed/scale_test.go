package testbed

import (
	"io"
	"testing"

	"minions/telemetry"
)

// schedulers are the engine cores every forward-path guard runs against:
// the zero-allocation steady state must hold on the default timing wheel
// and on the reference heap alike.
var schedulers = []Scheduler{SchedulerWheel, SchedulerHeap}

// The acceptance bar of the zero-allocation hot path: a steady-state
// host-send → TPP switch hop → delivery cycle allocates nothing — on either
// scheduler.
func TestForwardPathZeroAllocs(t *testing.T) {
	for _, sched := range schedulers {
		t.Run(sched.String(), func(t *testing.T) {
			e, err := NewE2EHarnessWith(true, SimOpts{Scheduler: sched})
			if err != nil {
				t.Fatal(err)
			}
			// Warm pools, rings, wheel buckets, and the switch's
			// decoded-program cache.
			for i := 0; i < 200; i++ {
				e.Step()
			}
			allocs := testing.AllocsPerRun(500, e.Step)
			if allocs != 0 {
				t.Fatalf("forward path allocated %.2f per packet, want 0", allocs)
			}
			if e.Sink.Packets == 0 || e.HopRecords == 0 {
				t.Fatalf("harness delivered %d packets, %d hop records — not exercising the path",
					e.Sink.Packets, e.HopRecords)
			}
		})
	}
}

// Same bar without TPP attachment: plain forwarding is also allocation-free.
func TestForwardPathZeroAllocsNoTPP(t *testing.T) {
	for _, sched := range schedulers {
		t.Run(sched.String(), func(t *testing.T) {
			e, err := NewE2EHarnessWith(false, SimOpts{Scheduler: sched})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				e.Step()
			}
			if allocs := testing.AllocsPerRun(500, e.Step); allocs != 0 {
				t.Fatalf("plain forward path allocated %.2f per packet, want 0", allocs)
			}
		})
	}
}

// Packets recycle rather than accumulate: in a drained harness every pool
// draw has been returned.
func TestForwardPathRecyclesPackets(t *testing.T) {
	e, err := NewE2EHarness(true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Step()
	}
	gets, puts, news := e.Net.PacketPool().Stats()
	if gets != puts {
		t.Fatalf("pool gets %d != puts %d: packets leak out of the cycle", gets, puts)
	}
	if news > 4 {
		t.Fatalf("pool allocated %d fresh packets for a one-in-flight workload", news)
	}
}

func TestRunScaleFatTreeSmoke(t *testing.T) {
	res, err := RunScaleFatTree(ScaleConfig{
		K:        4,
		Flows:    100,
		Duration: 10 * Millisecond,
		Warmup:   5 * Millisecond,
		WithTPP:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 16 || res.Switches != 20 {
		t.Fatalf("k=4 dims: %d hosts, %d switches", res.Hosts, res.Switches)
	}
	if res.PktHops == 0 || res.Delivered == 0 || res.Events == 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
	if res.TPPHopRecords == 0 {
		t.Fatal("TPP instrumentation collected nothing")
	}
	// Steady state should be (near) allocation-free; allow scheduler noise
	// from background runtime activity but fail on per-packet allocation.
	if got := res.AllocsPerPktHop(); got > 0.1 {
		t.Fatalf("scale run allocates %.3f per packet-hop", got)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

// The telemetry acceptance bar: attaching an NDJSON export pipeline to the
// scale run must not reintroduce per-packet allocation — every hop record
// flows through Publish and the batched encoder without touching the heap.
func TestRunScaleFatTreeExportZeroAlloc(t *testing.T) {
	pipe := telemetry.NewPipeline(telemetry.Config{Spool: 1 << 15, Policy: telemetry.Block})
	pipe.Attach(telemetry.NewNDJSONSink(io.Discard))
	res, err := RunScaleFatTree(ScaleConfig{
		K: 4, Flows: 100, Duration: 10 * Millisecond, Warmup: 5 * Millisecond,
		WithTPP: true, Export: pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TPPHopRecords == 0 {
		t.Fatal("TPP instrumentation collected nothing")
	}
	if st := pipe.Stats(); st.Published == 0 {
		t.Fatal("pipeline saw no records")
	}
	if got := res.AllocsPerPktHop(); got > 0.1 {
		t.Fatalf("scale run with NDJSON export allocates %.3f per packet-hop", got)
	}
}

// Determinism: the same seed must produce the identical packet-level
// outcome after the event-record refactor, hop for hop.
func TestRunScaleFatTreeDeterministic(t *testing.T) {
	run := func() *ScaleResult {
		res, err := RunScaleFatTree(ScaleConfig{
			K: 4, Flows: 64, Duration: 5 * Millisecond, Warmup: 2 * Millisecond, WithTPP: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.PktHops != b.PktHops || a.Delivered != b.Delivered ||
		a.Events != b.Events || a.Drops != b.Drops || a.TPPHopRecords != b.TPPHopRecords {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
