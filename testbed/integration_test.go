package testbed_test

import (
	"testing"

	"minions/apps/ndb"
	"minions/internal/host"
	"minions/internal/mem"
	"minions/testbed"
	"minions/tpp"
)

// chain builds h0 - s1 - s2 - ... - sN - h1.
func chainN(t *testing.T, switches int) (*testbed.Network, *testbed.Host, *testbed.Host) {
	t.Helper()
	n := testbed.New(3)
	var sws []*testbed.Switch
	for i := 0; i < switches; i++ {
		sws = append(sws, n.AddSwitch(4))
	}
	h0, h1 := n.AddHost(), n.AddHost()
	cfg := testbed.HostLink(1000)
	n.Connect(h0, sws[0], cfg)
	n.Connect(h1, sws[len(sws)-1], cfg)
	for i := 0; i+1 < len(sws); i++ {
		n.Connect(sws[i], sws[i+1], cfg)
	}
	n.ComputeRoutes()
	return n, h0, h1
}

// TestSplitCollectionAcrossRealNetwork verifies §4.4 "Large TPPs" end to
// end: a 6-switch path whose per-hop records do not fit in one small TPP is
// covered by two window programs whose merged views reconstruct every hop.
func TestSplitCollectionAcrossRealNetwork(t *testing.T) {
	n, h0, h1 := chainN(t, 6)
	app := n.CP.RegisterApp("bigcollect")

	addrs := []mem.Addr{
		mem.SwSwitchID,
		mem.MustResolve("Link:TX-Packets"),
		mem.MustResolve("Queue:QueueOccupancy"),
	}
	// Budget of 9 words => 3-hop windows => 2 programs for 6 hops.
	progs, err := host.SplitCollect(addrs, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("expected 2 window programs, got %d", len(progs))
	}
	views := make([]tpp.Section, len(progs))
	done := 0
	for i, p := range progs {
		i := i
		if err := h0.ExecuteTPP(app, p, h1.ID(), testbed.ExecOpts{}, func(v tpp.Section, err error) {
			if err != nil {
				t.Errorf("window %d: %v", i, err)
				return
			}
			views[i] = v
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	n.Eng.Run()
	if done != 2 {
		t.Fatalf("completed %d windows", done)
	}
	records := host.MergeCollected(progs, views, 6)
	for hop, rec := range records {
		if rec[0] != uint32(hop+1) {
			t.Errorf("hop %d: switch ID %d, want %d", hop, rec[0], hop+1)
		}
	}
}

// TestInBandRerouteObservedByHistories combines §2.6 fast route updates with
// §2.3 packet histories: a TPP installs a detour route in-band, and
// subsequent packet histories show the new path and a bumped table version.
func TestInBandRerouteObservedByHistories(t *testing.T) {
	// Diamond: h0 - s1 - {s2 | s3} - s4 - h1, initially routed via s2.
	n := testbed.New(4)
	s1, s2, s3, s4 := n.AddSwitch(4), n.AddSwitch(4), n.AddSwitch(4), n.AddSwitch(4)
	h0, h1 := n.AddHost(), n.AddHost()
	cfg := testbed.HostLink(1000)
	n.Connect(h0, s1, cfg)
	n.Connect(s1, s2, cfg)
	n.Connect(s1, s3, cfg)
	n.Connect(s2, s4, cfg)
	n.Connect(s3, s4, cfg)
	n.Connect(h1, s4, cfg)
	n.ComputeRoutes()
	// Pin the initial path via s2 (port 1 on s1).
	if ports := s1.RoutePorts(h1.ID()); len(ports) < 2 {
		t.Fatal("expected ECMP at s1")
	}
	s1.AddRoute(h1.ID(), 1) // via s2
	v0 := s1.Version()

	hosts := []*testbed.Host{h0, h1}
	d := ndb.New(ndb.Config{Filter: testbed.FilterSpec{Proto: 17}, Hosts: hosts})
	if err := d.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	h1.Bind(9000, 17, func(p *testbed.Packet) {})

	h0.Send(h0.NewPacket(h1.ID(), 100, 9000, 17, 400))
	n.Eng.Run()

	// In-band route update (§2.6): a TPP targeted at s1 stores the detour
	// (dst=h1 via port 2 toward s3) into the vendor route registers. The
	// rerouting app needs write grants on those registers.
	routeApp := n.CP.RegisterApp("fastupdate")
	n.CP.GrantWrite(routeApp, mem.VendorBase, mem.VendorBase+2)
	upd := tpp.MustAssemble(`
		.mode stack
		.mem 2
		STORE [Vendor#0:], [Packet:0]
		STORE [Vendor#1:], [Packet:1]
	`)
	upd.InitMem = []uint32{uint32(h1.ID()), 2}
	okExec := false
	if err := h0.ExecuteTPP(routeApp, upd, s1.NodeID(), testbed.ExecOpts{}, func(v tpp.Section, err error) {
		okExec = err == nil
	}); err != nil {
		t.Fatal(err)
	}
	n.Eng.Run()
	if !okExec {
		t.Fatal("route update TPP failed")
	}
	if s1.Version() <= v0 {
		t.Fatal("switch version did not advance after in-band update")
	}

	h0.Send(h0.NewPacket(h1.ID(), 101, 9000, 17, 400))
	n.Eng.Run()

	histories := d.Collector.Query(func(h ndb.History) bool { return !h.Dropped })
	if len(histories) != 2 {
		t.Fatalf("histories = %d", len(histories))
	}
	before, after := histories[0], histories[1]
	if before.Path() != "1>2>4" {
		t.Errorf("pre-update path = %s, want 1>2>4", before.Path())
	}
	if after.Path() != "1>3>4" {
		t.Errorf("post-update path = %s, want 1>3>4", after.Path())
	}
}

// TestCorruptedTPPIsRejectedAtDecode verifies the checksum catches in-flight
// instruction corruption when the end-host decodes an executed TPP.
func TestCorruptedTPPIsRejectedAtDecode(t *testing.T) {
	prog := tpp.MustAssemble(`PUSH [Switch:SwitchID]`)
	sec, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sec[tpp.HeaderLen] ^= 0x40 // flip a bit in the first instruction
	if _, err := tpp.Decode(sec); err == nil {
		t.Fatal("corrupted TPP decoded successfully")
	}
}
