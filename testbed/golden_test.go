package testbed

// Equivalence guard for the flat-memory routing swap: the determinism tests
// in shard_determinism_test.go pin that shards and schedulers agree with
// each other, but nothing stopped the whole family from drifting together.
// These tests pin the *absolute* outputs — sha256 of the rendered Fig1/2/4
// tables and the full behavioral fingerprint of ScaleResult — to values
// captured from the map-based representation immediately before the swap to
// dense route tables and arithmetic fat-tree routing. Any representation
// change that alters one simulated byte (entry IDs, ECMP port order, table
// versions, drop behavior) trips them.

import (
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"testing"

	"minions/internal/topo"
	"minions/tpp"
	"minions/tppnet"
)

// Pre-refactor golden hashes of the figure tables. The tables are identical
// across shards and schedulers (the determinism tests pin that), so one
// hash per figure covers the whole matrix.
const (
	goldenFig1 = "6cb9a2531a8b65647528364b7c51cbfa8e8772730779afadadfad41ee7604f61"
	goldenFig2 = "83af1513110ddc8192a21c615f6d09ed54940108aa98bb7d330f32f2ea77a4dd"
	goldenFig4 = "2d1359543af7f343c99777cdb71bcbbfb9affaeeab2fcb67129c2256c56c5636"
)

// Pre-refactor golden ScaleResult fingerprints (scaleFingerprint fields:
// everything simulated, nothing wall-clock).
const (
	goldenScaleK4  = "hosts=16 switches=20 links=96 hops=19144 delivered=3421 mb=4.789400000 drops=0 tpp=15705 events=41700"
	goldenScaleK8  = "hosts=128 switches=80 links=768 hops=26064 delivered=4559 mb=6.382600000 drops=0 tpp=21473 events=56675"
	goldenScaleK16 = "hosts=1024 switches=320 links=6144 hops=26711 delivered=4557 mb=6.379800000 drops=0 tpp=22103 events=57965"
)

func goldenShards(t *testing.T) []int {
	if testing.Short() {
		return []int{1}
	}
	return []int{1, 2, 4}
}

// TestGoldenFigures pins the Fig1/2/4 tables byte-for-byte (via sha256) to
// their pre-refactor values, across both schedulers and shards 1/2/4.
func TestGoldenFigures(t *testing.T) {
	for _, shards := range goldenShards(t) {
		for _, sched := range schedulers {
			t.Run(fmt.Sprintf("shards=%d/%v", shards, sched), func(t *testing.T) {
				r1, err := RunFig1(Fig1Config{Duration: 400 * Millisecond, Shards: shards, Scheduler: sched})
				if err != nil {
					t.Fatal(err)
				}
				r2, err := RunFig2With(1500*Millisecond, SimOpts{Seed: 1, Shards: shards, Scheduler: sched})
				if err != nil {
					t.Fatal(err)
				}
				r4, err := RunFig4With(2*Second, SimOpts{Seed: 1, Shards: shards, Scheduler: sched})
				if err != nil {
					t.Fatal(err)
				}
				for _, fig := range []struct {
					name, want, table string
				}{
					{"fig1", goldenFig1, r1.Table()},
					{"fig2", goldenFig2, r2.Table()},
					{"fig4", goldenFig4, r4.Table()},
				} {
					if got := fmt.Sprintf("%x", sha256.Sum256([]byte(fig.table))); got != fig.want {
						t.Errorf("%s table drifted from pre-refactor golden:\nsha256 %s, want %s\n%s",
							fig.name, got, fig.want, fig.table)
					}
				}
			})
		}
	}
}

// TestGoldenScaleFingerprints pins the k=4 fat-tree ScaleResult counters to
// their pre-refactor values across both schedulers and shards 1/2/4, and
// the k=8 counters single-shard (k=8 routes arithmetically, so this is also
// a behavioral proof that the arithmetic builder matches what BFS produced
// over the map representation). k=16 is pinned by TestRunScaleFatTreeK16.
func TestGoldenScaleFingerprints(t *testing.T) {
	for _, shards := range goldenShards(t) {
		for _, sched := range schedulers {
			res, err := RunScaleFatTree(ScaleConfig{
				K: 4, Flows: 64, Duration: 30 * Millisecond,
				WithTPP: true, Seed: 1, Shards: shards, Scheduler: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			if fp := scaleFingerprint(res); fp != goldenScaleK4 {
				t.Errorf("k=4 shards=%d %v drifted from pre-refactor golden:\n got %s\nwant %s",
					shards, sched, fp, goldenScaleK4)
			}
		}
	}
	res, err := RunScaleFatTree(ScaleConfig{
		K: 8, Flows: 256, Duration: 10 * Millisecond,
		WithTPP: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp := scaleFingerprint(res); fp != goldenScaleK8 {
		t.Errorf("k=8 drifted from pre-refactor golden:\n got %s\nwant %s", fp, goldenScaleK8)
	}
}

// TestRunScaleFatTreeK16 is the k=16 scale smoke: the fabric the flat
// representation exists for (1024 hosts, 12k+ route entries per switch
// table family) builds, routes, carries traffic allocation-free, and lands
// on exactly the counters the map representation produced.
func TestRunScaleFatTreeK16(t *testing.T) {
	res, err := RunScaleFatTree(ScaleConfig{
		K: 16, Flows: 256, Duration: 10 * Millisecond,
		WithTPP: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 1024 || res.Switches != 320 {
		t.Fatalf("k=16 dims: %d hosts, %d switches", res.Hosts, res.Switches)
	}
	if fp := scaleFingerprint(res); fp != goldenScaleK16 {
		t.Errorf("k=16 drifted from pre-refactor golden:\n got %s\nwant %s", fp, goldenScaleK16)
	}
	if got := res.AllocsPerPktHop(); got > 0.1 {
		t.Fatalf("k=16 scale run allocates %.3f per packet-hop", got)
	}
}

// TestForwardPathZeroAllocsK16 is TestForwardPathZeroAllocs on a k=16
// fat-tree instead of the 3-node harness: one packet at a time crosses the
// full 5-switch-hop diameter (edge-agg-core-agg-edge) with the telemetry
// TPP attached, and the steady state must not allocate. This exercises the
// dense route lookup (split low/high tables, interned port groups) on
// switches whose tables hold >1300 entries.
func TestForwardPathZeroAllocsK16(t *testing.T) {
	for _, sched := range schedulers {
		t.Run(sched.String(), func(t *testing.T) {
			net := NewNet(SimOpts{Seed: 1, Scheduler: sched})
			pods := net.FatTree(16, 10_000)
			src, dst := pods[0][0], pods[15][63] // cross-core diameter path
			prog, err := scaleTelemetryProgram(6)
			if err != nil {
				t.Fatal(err)
			}
			app := net.CP.RegisterApp("k16-e2e")
			if _, err := src.AddTPP(app, FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
				t.Fatal(err)
			}
			var hopRecords uint64
			dst.RegisterAggregator(app.Wire, func(p *Packet, view tpp.Section) {
				hopRecords += uint64(view.HopOrSP()) / 2
			})
			sink := NewSink(dst, 9000, tppnet.ProtoUDP)
			dstID := dst.ID()
			step := func() {
				src.Send(src.NewPacket(dstID, 5000, 9000, tppnet.ProtoUDP, 1000))
				net.Run()
			}
			for i := 0; i < 200; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
				t.Fatalf("k=16 forward path allocated %.2f per packet, want 0", allocs)
			}
			if sink.Packets == 0 || hopRecords == 0 {
				t.Fatalf("harness delivered %d packets, %d hop records — not exercising the path",
					sink.Packets, hopRecords)
			}
		})
	}
}

// TestScaleSmokeK32MemoryCeiling builds and routes a k=32 fat-tree (8192
// hosts, 1280 switches, ~12.1M route entries) and pins the live heap under
// a ceiling the old map representation exceeded by ~6x (it needed ~2.1 GB
// for the route tables alone). Gated behind SCALE_SMOKE=1 — the route
// computation takes a couple of wall seconds — and run by the scale-smoke
// CI job.
func TestScaleSmokeK32MemoryCeiling(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the k=32 memory-ceiling check")
	}
	n := topo.New(1)
	topo.FatTree(n, 32, 1000)
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	const ceiling = 512 << 20
	if m.HeapAlloc > ceiling {
		t.Fatalf("k=32 built+routed topology holds %d MB live, ceiling %d MB",
			m.HeapAlloc>>20, ceiling>>20)
	}
	routes := 0
	for _, sw := range n.Switches {
		routes += sw.NumRoutes()
	}
	if want := len(n.Switches) * (len(n.Hosts) + len(n.Switches) - 1); routes != want {
		t.Fatalf("k=32 route entries: %d, want %d", routes, want)
	}
	t.Logf("k=32: %d hosts, %d switches, %d route entries, %d MB live heap",
		len(n.Hosts), len(n.Switches), routes, m.HeapAlloc>>20)
}
