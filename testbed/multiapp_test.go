package testbed_test

// Multi-app composition: several minion applications attached to the same
// network must coexist under the control plane's memory-grant isolation —
// one app's TPPs cannot touch another's switch registers, and per-app wire
// IDs keep their telemetry streams from crossing.

import (
	"testing"

	"minions/apps/ndb"
	"minions/apps/rcp"
	"minions/internal/mem"
	"minions/testbed"
	"minions/tpp"
	"minions/tppnet"
	"minions/tppnet/app"
)

func TestMultiAppCompositionNdbPlusRCP(t *testing.T) {
	n := testbed.New(42)
	hosts, _ := testbed.Chain(n, 100)

	// App 1: RCP* — allocates two per-link registers and write grants.
	sys := rcp.New(rcp.Config{CapacityMbps: 100})
	if err := sys.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	// App 2: ndb packet histories on all UDP data traffic.
	d := ndb.New(ndb.Config{Filter: testbed.FilterSpec{Proto: tppnet.ProtoUDP}, Hosts: hosts})
	if err := d.Attach(n, nil); err != nil {
		t.Fatal(err)
	}
	if sys.ID().Wire == d.ID().Wire {
		t.Fatal("two attached apps share a wire handle")
	}

	rates := app.Collect(sys.Rates())

	// One RCP-controlled flow; packets sized so the ndb TPP also fits.
	sink := testbed.NewSink(n.Hosts[4], 7001, tppnet.ProtoUDP)
	udp := testbed.NewUDPFlow(n.Hosts[1], hosts[4].ID(), 7001, 7001, 1200)
	fl := sys.NewFlow(n.Hosts[1], hosts[4].ID(), udp)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	n.RunUntil(2 * testbed.Second)
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	n.Run()

	// Both applications ran concurrently.
	if fl.Updates == 0 {
		t.Error("RCP performed no versioned updates alongside ndb")
	}
	if len(*rates) == 0 {
		t.Error("RCP rate stream published nothing")
	}
	if d.Collector.Len() == 0 {
		t.Fatal("ndb collected no histories alongside RCP")
	}

	// Telemetry must not cross: ndb's aggregator sees exactly the
	// instrumented data packets the sink received — RCP's control TPPs
	// (standalone probes under a different wire ID, 5-word hop records)
	// never reach ndb's collector.
	if got, want := d.Collector.Len(), int(sink.Packets); got != want {
		t.Errorf("ndb histories = %d, delivered data packets = %d: streams crossed", got, want)
	}
	for _, h := range d.Collector.Drops() {
		t.Errorf("unexpected drop history: %+v", h)
	}
	// Every history carries ndb's own 3-word hop records: host 1 to host 4
	// crosses switches s1 and s2 of the chain.
	for _, h := range d.Collector.ByFlow(tppnet.FlowKey{
		Src: n.Hosts[1].ID(), Dst: hosts[4].ID(), SrcPort: 7001, DstPort: 7001, Proto: tppnet.ProtoUDP,
	})[:1] {
		if h.Path() != "1>2" {
			t.Errorf("history path = %q, want 1>2", h.Path())
		}
	}

	// Grant isolation: find one of RCP's granted write addresses and verify
	// ndb cannot pass static analysis (or the dataplane write filter) for it.
	var rcpAddr mem.Addr
	for _, seg := range n.CP.Policy().Segments() {
		if seg.AppID == sys.ID().ID && seg.Op&mem.OpWrite != 0 &&
			seg.Start >= mem.DynOutLinkBase+mem.LinkAppSpecific0 &&
			seg.Start < mem.DynOutLinkBase+mem.LinkAppSpecific0+8 {
			rcpAddr = seg.Start
			break
		}
	}
	if rcpAddr == 0 {
		t.Fatal("no RCP write grant found in the dynamic out-link window")
	}
	steal := &tpp.Program{
		Mode:     tpp.AddrStack,
		MemWords: 1,
		Insns:    []tpp.Instruction{{Op: tpp.OpSTORE, A: 0, Addr: rcpAddr}},
	}
	if err := n.CP.ValidateProgram(sys.ID(), steal); err != nil {
		t.Errorf("RCP's own write rejected: %v", err)
	}
	if err := n.CP.ValidateProgram(d.ID(), steal); err == nil {
		t.Error("ndb passed static analysis writing RCP's register")
	}
	allow := n.CP.SwitchWritePolicy()
	if !allow(sys.ID().Wire, rcpAddr) {
		t.Error("dataplane filter denies RCP its own register")
	}
	if allow(d.ID().Wire, rcpAddr) {
		t.Error("dataplane filter lets ndb write RCP's register")
	}

	// Teardown composes too: closing ndb frees its resources while RCP's
	// grants survive untouched.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.CP.ValidateProgram(sys.ID(), steal); err != nil {
		t.Errorf("closing ndb disturbed RCP's grants: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}
