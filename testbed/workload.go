package testbed

// Workload-axis runners: the paper's applications re-run under the
// scriptable workloads of package minions/workload instead of the paper's
// single all-to-all pattern — microburst detection under partition-
// aggregate incast, RCP* fairness under heavy-tailed background load. The
// canned specs here are shared by cmd/benchjson's -workload scenarios, the
// determinism guard tests and CI's workload-smoke step, so every consumer
// pins the same bytes.

import (
	"fmt"
	"math"
	"strings"

	"minions/apps/microburst"
	"minions/apps/rcp"
	"minions/internal/link"
	"minions/internal/transport"
	"minions/workload"
)

// WorkloadHeavyTail is the canned elephant/mice mix: 90% bursty web-search
// mice (clamped to short-flow sizes), 10% token-bucket-paced data-mining
// elephants. Load is the per-host offered fraction of NIC line rate.
func WorkloadHeavyTail(load float64) *workload.Spec {
	return &workload.Spec{Groups: []workload.Group{{
		Name: "heavy-tail",
		Messages: &workload.MessageSpec{
			Classes: []workload.Class{
				{Name: "mice", Weight: 0.9,
					Sizes: workload.WebSearch().Clamped(500, 100_000)},
				{Name: "elephants", Weight: 0.1,
					Sizes:   workload.DataMining().Clamped(500_000, 20_000_000),
					RateBps: 200_000_000},
			},
			Load: load,
		},
	}}}
}

// WorkloadIncastFatTree is the canned partition-aggregate spec for a k-ary
// fat-tree: the first host of every pod aggregates, querying one pod's
// worth of workers ((k/2)² fan-in) every 2 ms with 500 µs round jitter and
// 20 kB responses — the synchronized burst regime of §2.1 at fabric scale.
func WorkloadIncastFatTree(k int) *workload.Spec {
	hostsPerPod := (k / 2) * (k / 2)
	aggs := make([]int, k)
	for i := range aggs {
		aggs[i] = i * hostsPerPod
	}
	return &workload.Spec{Groups: []workload.Group{{
		Name: "incast",
		Incast: &workload.IncastSpec{
			Aggregators:   aggs,
			FanIn:         hostsPerPod,
			RequestBytes:  64,
			ResponseBytes: 20_000,
			Period:        2 * Millisecond,
			Jitter:        500 * Microsecond,
		},
	}}}
}

// ---------------------------------------------------------------------------
// Microburst detection (§2.1 / Figure 1) under an arbitrary workload.

// RunFig1Workload is RunFig1 with the all-to-all generator replaced by a
// workload.Spec: the same dumbbell, the same microburst monitor on every
// UDP packet, traffic from the spec. A zero Spec.Seed inherits cfg.Seed+11
// (the slot the legacy all-to-all seed used).
func RunFig1Workload(spec *workload.Spec, cfg Fig1Config) (*Fig1Result, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 6
	}
	if cfg.RateMbps == 0 {
		cfg.RateMbps = 100
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * Second
	}
	n := NewNet(SimOpts{Seed: cfg.Seed + 3, Shards: cfg.Shards, Scheduler: cfg.Scheduler})
	hosts, _, _ := n.Dumbbell(cfg.Hosts, cfg.RateMbps)
	mon := microburst.New(microburst.Config{
		Filter: FilterSpec{Proto: link.ProtoUDP},
		Hosts:  hosts,
	})
	if err := mon.Attach(n, nil); err != nil {
		return nil, err
	}
	sp := *spec
	if sp.Seed == 0 {
		sp.Seed = cfg.Seed + 11
	}
	if _, err := sp.Attach(hosts); err != nil {
		return nil, err
	}
	n.RunUntil(cfg.Duration + 100*Millisecond)
	return fig1Summarize(mon), nil
}

// ---------------------------------------------------------------------------
// RCP* fairness (§2.2 / Figure 2 max-min panel) under background load.

// RCPWorkloadResult compares RCP*'s max-min allocation on the Figure 2
// chain with and without a background workload competing for the fabric.
type RCPWorkloadResult struct {
	// Clean and Loaded are the final Mb/s of flows a (2 links), b, c —
	// Clean is the Figure 2 max-min panel (paper: 50/50/50).
	Clean, Loaded [3]float64
	// BgDeliveredMB is how much background traffic the loaded run carried.
	BgDeliveredMB float64
	// BgFP is the background runner's deterministic counter line.
	BgFP string
}

// RunRCPWorkload runs the Figure 2 max-min experiment twice — clean, then
// with bg attached to the chain's six hosts — and reports both final
// allocations. A zero bg.Seed inherits o.Seed+29.
func RunRCPWorkload(duration Time, o SimOpts, bg *workload.Spec) (*RCPWorkloadResult, error) {
	res := &RCPWorkloadResult{}
	for pass := 0; pass < 2; pass++ {
		n := NewNet(SimOpts{Seed: o.Seed + 5, Shards: o.Shards, Scheduler: o.Scheduler, Sync: o.Sync})
		hosts, _ := n.Chain(100)
		sys := rcp.New(rcp.Config{Alpha: math.Inf(1), CapacityMbps: 100})
		if err := sys.Attach(n, nil); err != nil {
			return nil, err
		}
		pairs := [3][2]int{{0, 3}, {1, 4}, {2, 5}}
		var sinks [3]*transport.Sink
		for i, p := range pairs {
			port := uint16(7001 + i)
			sinks[i] = transport.NewSink(n.Hosts[p[1]], port, link.ProtoUDP)
			udp := transport.NewUDPFlow(n.Hosts[p[0]], hosts[p[1]].ID(), port, port, 1500)
			sys.NewFlow(n.Hosts[p[0]], hosts[p[1]].ID(), udp)
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		var wr *workload.Runner
		if pass == 1 {
			sp := *bg
			if sp.Seed == 0 {
				sp.Seed = o.Seed + 29
			}
			var err error
			if wr, err = sp.Attach(hosts); err != nil {
				return nil, err
			}
		}
		// Final rates over the last 250 ms window, like runFig2Panel.
		step := 250 * Millisecond
		var prev [3]uint64
		var final [3]float64
		for at := step; at <= duration; at += step {
			n.RunUntil(at)
			for i, s := range sinks {
				final[i] = float64(s.Bytes-prev[i]) * 8 / step.Seconds() / 1e6
				prev[i] = s.Bytes
			}
		}
		if err := sys.Stop(); err != nil {
			return nil, err
		}
		if pass == 0 {
			res.Clean = final
		} else {
			res.Loaded = final
			res.BgFP = wr.Fingerprint()
			var bgBytes uint64
			for _, s := range wr.Sinks {
				bgBytes += s.Bytes
			}
			res.BgDeliveredMB = float64(bgBytes) / 1e6
		}
	}
	return res, nil
}

// Table renders the comparison.
func (r *RCPWorkloadResult) Table() string {
	var b strings.Builder
	b.WriteString("RCP* max-min fairness under background workload (Figure 2 chain)\n")
	fmt.Fprintf(&b, "%-24s %8.1f %8.1f %8.1f   (paper: 50/50/50)\n",
		"clean final Mb/s", r.Clean[0], r.Clean[1], r.Clean[2])
	fmt.Fprintf(&b, "%-24s %8.1f %8.1f %8.1f   (+%.1f MB background)\n",
		"heavy-tail bg final", r.Loaded[0], r.Loaded[1], r.Loaded[2], r.BgDeliveredMB)
	return b.String()
}
