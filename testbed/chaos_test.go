package testbed

import "testing"

// TestRunChaosInvariants runs the standard chaos scenario and checks that
// the faults actually happened and the resilience machinery actually
// engaged — RunChaos itself enforces the hard invariants (no leaked pool
// packets, bounded recovery) by returning an error.
func TestRunChaosInvariants(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 1})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Table())
	}
	f := res.Faults
	if f.LinkDowns == 0 || f.LinkUps == 0 {
		t.Errorf("no link flaps fired: %+v", f)
	}
	if f.LinkDowns != f.LinkUps {
		t.Errorf("horizon restore broken: %d downs vs %d ups", f.LinkDowns, f.LinkUps)
	}
	if f.Halts != 1 || f.Restarts != 1 {
		t.Errorf("scripted core halt/restart: got %d/%d, want 1/1", f.Halts, f.Restarts)
	}
	if f.Losses == 0 || f.Stalls == 0 {
		t.Errorf("background loss/jitter never fired: %+v", f)
	}
	if f.ScriptFired != 6 {
		t.Errorf("script fired %d events, want 6", f.ScriptFired)
	}
	if res.CongaDeaths == 0 {
		t.Error("CONGA* never declared a dead path despite a halted core switch")
	}
	if res.CongaRevives == 0 {
		t.Error("CONGA* never revived a path despite the restore")
	}
	if res.RCPMissed == 0 {
		t.Error("RCP* never missed a collect round despite the outage")
	}
	if res.BaselineMbps <= 0 || res.DeliveredPkts == 0 {
		t.Errorf("degenerate run: baseline %.1f Mb/s, %d delivered", res.BaselineMbps, res.DeliveredPkts)
	}
	if res.FloorMbps >= res.BaselineMbps {
		t.Errorf("outage never dented the aggregate: floor %.1f >= baseline %.1f", res.FloorMbps, res.BaselineMbps)
	}
	t.Logf("\n%s", res.Table())
}

// TestChaosDeterminism pins the fault plane's reproducibility contract:
// identical (seed, plan) tuples produce byte-identical results across runs,
// engine schedulers and shard counts.
func TestChaosDeterminism(t *testing.T) {
	base, err := RunChaos(ChaosConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fp := base.Fingerprint()

	again, err := RunChaos(ChaosConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Fingerprint(); got != fp {
		t.Errorf("rerun diverges:\n  1: %s\n  2: %s", fp, got)
	}

	heap, err := RunChaos(ChaosConfig{Seed: 3, Scheduler: SchedulerHeap})
	if err != nil {
		t.Fatal(err)
	}
	if got := heap.Fingerprint(); got != fp {
		t.Errorf("heap scheduler diverges:\n  wheel: %s\n  heap:  %s", fp, got)
	}

	sharded, err := RunChaos(ChaosConfig{Seed: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sharded.Fingerprint(); got != fp {
		t.Errorf("shards=2 diverges:\n  1: %s\n  2: %s", fp, got)
	}

	// The sharded chaos scenario — scripted switch halt included — must be
	// byte-identical under the global-epoch reference sync too: sync mode,
	// like the scheduler, may never move the fingerprint.
	epoch, err := RunChaos(ChaosConfig{Seed: 3, Shards: 2, Sync: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if got := epoch.Fingerprint(); got != fp {
		t.Errorf("shards=2 epoch sync diverges:\n  channel: %s\n  epoch:   %s", fp, got)
	}
	if epoch.Faults.Halts != 1 {
		t.Errorf("epoch-sync chaos run lost the scripted halt: %+v", epoch.Faults)
	}

	if other, err := RunChaos(ChaosConfig{Seed: 9}); err != nil {
		t.Fatal(err)
	} else if other.Fingerprint() == fp {
		t.Error("different seeds produced identical runs — the plan seed is not reaching the fault machines")
	}
}
