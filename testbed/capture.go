package testbed

// Trace capture and replay for the paper experiments (§2.2 Figure 2 and
// §2.4 Figure 4). A captured run records every host transmit — data packets
// with their attached TPPs, RCP* control packets, CONGA* standalone probes —
// into the telemetry/trace binary format. A replay run rebuilds the same
// topology and sinks but NO applications or traffic sources, re-injects the
// recorded packets at their recorded timestamps, and runs the identical
// sampling loops. Because switch forwarding is a pure function of packet
// contents (ECMP hashes the flow key and path tag; TPP execution reads
// switch state that only the replayed packets perturb), the replayed tables
// are byte-identical to the original run's.
//
// Capture and replay require a single-shard run: the trace writer is a
// single stream and record order must match virtual time order.

import (
	"errors"
	"io"
	"math"

	"minions/apps/conga"
	"minions/apps/rcp"
	"minions/internal/link"
	"minions/internal/trafficgen"
	"minions/internal/transport"
	"minions/telemetry/trace"
)

// ErrShardedCapture reports a capture or replay request on a sharded run.
// Trace files are a single time-ordered stream, so both sides are restricted
// to one shard.
var ErrShardedCapture = errors.New("testbed: trace capture and replay require a single-shard run")

// switchDests lists the topology's switch NodeIDs so replays accept
// switch-targeted records (debugging probes address switches directly);
// trafficgen rejects any other unknown destination as a topology mismatch.
func switchDests(n *Network) []link.NodeID {
	ids := make([]link.NodeID, len(n.Switches))
	for i, sw := range n.Switches {
		ids[i] = sw.NodeID()
	}
	return ids
}

// RunFig2Captured is RunFig2With with every host transmit of each panel
// recorded to the given writers (binary trace format, see telemetry/trace).
// Either writer may be nil to skip capturing that panel.
func RunFig2Captured(duration Time, o SimOpts, maxmin, prop io.Writer) (*Fig2Result, error) {
	return runFig2(duration, o, maxmin, prop, nil, nil)
}

// RunFig2Replay reproduces a captured Figure 2 run from the panel traces:
// same topology and sinks, no RCP* system or flows — the recorded packets
// carry the experiment. The returned result renders byte-identically to the
// capturing run's.
func RunFig2Replay(duration Time, o SimOpts, maxmin, prop io.Reader) (*Fig2Result, error) {
	return runFig2(duration, o, nil, nil, maxmin, prop)
}

func runFig2(duration Time, o SimOpts, capMM, capPr io.Writer, repMM, repPr io.Reader) (*Fig2Result, error) {
	res := &Fig2Result{}
	var err error
	if res.MaxMin, res.FinalMaxMin, err = runFig2Panel(duration, o, math.Inf(1), capMM, repMM); err != nil {
		return nil, err
	}
	if res.Proportional, res.FinalProp, err = runFig2Panel(duration, o, 1, capPr, repPr); err != nil {
		return nil, err
	}
	return res, nil
}

// runFig2Panel runs one Figure 2 panel. With repR nil it is a live run (RCP*
// system and flows), optionally captured to capW; with repR set it rebuilds
// only the topology and sinks and re-injects the trace.
func runFig2Panel(duration Time, o SimOpts, alpha float64, capW io.Writer, repR io.Reader) ([]Fig2Point, [3]float64, error) {
	var zero [3]float64
	if (capW != nil || repR != nil) && o.Shards > 1 {
		return nil, zero, ErrShardedCapture
	}
	n := NewNet(SimOpts{Seed: o.Seed + 5, Shards: o.Shards, Scheduler: o.Scheduler})
	hosts, _ := n.Chain(100)
	var sinks [3]*transport.Sink
	pairs := [3][2]int{{0, 3}, {1, 4}, {2, 5}}
	var sys *rcp.System
	var tc *trace.Capture
	if repR == nil {
		// Taps go in before the RCP* system exists: Start paths may send
		// control packets synchronously, and a trace that misses them
		// would not replay to the same tables.
		if capW != nil {
			var err error
			if tc, err = trace.Start(capW, n.Hosts...); err != nil {
				return nil, zero, err
			}
		}
		sys = rcp.New(rcp.Config{Alpha: alpha, CapacityMbps: 100})
		if err := sys.Attach(n, nil); err != nil {
			return nil, zero, err
		}
		for i, p := range pairs {
			port := uint16(7001 + i)
			sinks[i] = transport.NewSink(n.Hosts[p[1]], port, link.ProtoUDP)
			udp := transport.NewUDPFlow(n.Hosts[p[0]], hosts[p[1]].ID(), port, port, 1500)
			sys.NewFlow(n.Hosts[p[0]], hosts[p[1]].ID(), udp)
		}
		if err := sys.Start(); err != nil {
			return nil, zero, err
		}
	} else {
		for i, p := range pairs {
			sinks[i] = transport.NewSink(n.Hosts[p[1]], uint16(7001+i), link.ProtoUDP)
		}
		if _, err := trafficgen.ReplayFromTo(n.Hosts, switchDests(n), repR); err != nil {
			return nil, zero, err
		}
	}
	var series []Fig2Point
	var prev [3]uint64
	step := 250 * Millisecond
	for at := step; at <= duration; at += step {
		n.RunUntil(at)
		var pt Fig2Point
		pt.T = at.Seconds()
		for i, s := range sinks {
			pt.Mbps[i] = float64(s.Bytes-prev[i]) * 8 / step.Seconds() / 1e6
			prev[i] = s.Bytes
		}
		series = append(series, pt)
	}
	if sys != nil {
		if err := sys.Stop(); err != nil {
			return nil, zero, err
		}
	}
	if tc != nil {
		if err := tc.Close(); err != nil {
			return nil, zero, err
		}
	}
	final := series[len(series)-1].Mbps
	return series, final, nil
}

// RunFig4Captured is RunFig4With with every host transmit of each scheme's
// run recorded to the given writers. Either writer may be nil to skip
// capturing that scheme.
func RunFig4Captured(duration Time, o SimOpts, ecmp, cng io.Writer) (*Fig4Result, error) {
	return runFig4(duration, o, ecmp, cng, nil, nil)
}

// RunFig4Replay reproduces a captured Figure 4 run from the scheme traces:
// same leaf-spine and sinks, no flows or balancer. The CONGA* probe overhead
// is recovered from the replayed standalone-probe bytes, so the returned
// result — probe row included — renders byte-identically to the capturing
// run's.
func RunFig4Replay(duration Time, o SimOpts, ecmp, cng io.Reader) (*Fig4Result, error) {
	return runFig4(duration, o, nil, nil, ecmp, cng)
}

func runFig4(duration Time, o SimOpts, capE, capC io.Writer, repE, repC io.Reader) (*Fig4Result, error) {
	var res Fig4Result
	var err error
	if res.ECMP, err = runFig4Cell(duration, o, false, capE, repE); err != nil {
		return nil, err
	}
	if res.Conga, err = runFig4Cell(duration, o, true, capC, repC); err != nil {
		return nil, err
	}
	return &res, nil
}

// runFig4Cell runs one Figure 4 scheme. With repR nil it is a live run
// (flows, and the CONGA* balancer when useConga), optionally captured to
// capW; with repR set it rebuilds only the leaf-spine and sinks and
// re-injects the trace.
func runFig4Cell(duration Time, o SimOpts, useConga bool, capW io.Writer, repR io.Reader) (Fig4Cell, error) {
	if (capW != nil || repR != nil) && o.Shards > 1 {
		return Fig4Cell{}, ErrShardedCapture
	}
	n := NewNet(SimOpts{Seed: o.Seed + 13, Shards: o.Shards, Scheduler: o.Scheduler})
	hosts, _, _ := n.LeafSpine(100)
	h0, h1, h2 := hosts[0], hosts[1], hosts[2]
	sink0 := transport.NewSink(h2, 7100, link.ProtoUDP)
	sink1 := transport.NewSink(h2, 7200, link.ProtoUDP)
	var f0 *transport.UDPFlow
	var subs []*transport.UDPFlow
	var bal *conga.Balancer
	var tc *trace.Capture
	var replayStats *trafficgen.ReplayStats
	if repR == nil {
		// Taps first: the balancer's Start sends its tag-discovery probes
		// synchronously, and a trace missing them would replay to a lower
		// probe-overhead figure than the live run reports.
		if capW != nil {
			var err error
			if tc, err = trace.Start(capW, n.Hosts...); err != nil {
				return Fig4Cell{}, err
			}
		}
		f0 = transport.NewUDPFlow(h0, h2.ID(), 7100, 7100, 1500)
		f0.SetRateBps(50_000_000)
		for i := 0; i < 8; i++ {
			f := transport.NewUDPFlow(h1, h2.ID(), uint16(7200+i), 7200, 1500)
			f.SetRateBps(15_000_000)
			subs = append(subs, f)
		}
		if useConga {
			bal = conga.New(conga.Config{Host: h1, Dst: h2.ID(), Agg: conga.AggMax})
			if err := bal.Attach(n, nil); err != nil {
				return Fig4Cell{}, err
			}
			if err := bal.Start(); err != nil {
				return Fig4Cell{}, err
			}
			tg := bal.Tagger()
			for _, f := range subs {
				f.Tagger = tg
			}
		}
		f0.Start()
		for _, f := range subs {
			f.Start()
		}
	} else {
		var err error
		if replayStats, err = trafficgen.ReplayFromTo(n.Hosts, switchDests(n), repR); err != nil {
			return Fig4Cell{}, err
		}
	}
	warm := duration - Second
	if warm < Second {
		warm = duration / 2
	}
	n.RunUntil(warm)
	b0, b1 := sink0.Bytes, sink1.Bytes
	maxPm := uint32(0)
	steps := 10
	stepDur := (duration - warm) / Time(steps)
	for i := 0; i < steps; i++ {
		n.RunUntil(warm + Time(i+1)*stepDur)
		for _, l := range n.Links() {
			if l.RateMbps() != 100 {
				continue
			}
			if pm := l.UtilPermille(); pm > maxPm {
				maxPm = pm
			}
		}
	}
	window := (duration - warm).Seconds()
	cell := Fig4Cell{
		Thr0:        float64(sink0.Bytes-b0) * 8 / window / 1e6,
		Thr1:        float64(sink1.Bytes-b1) * 8 / window / 1e6,
		MaxUtilPerm: float64(maxPm),
	}
	if bal != nil {
		cell.ProbeMbps = float64(bal.ProbeBytes) * 8 / n.Now().Seconds() / 1e6
		bal.Stop()
	}
	if useConga && replayStats != nil {
		// The balancer sends probes with MaxAttempts 1, so the replayed
		// standalone bytes equal the original run's ProbeBytes exactly.
		cell.ProbeMbps = float64(replayStats.TotalStandaloneBytes()) * 8 / n.Now().Seconds() / 1e6
	}
	if f0 != nil {
		f0.Stop()
		for _, f := range subs {
			f.Stop()
		}
	}
	if tc != nil {
		if err := tc.Close(); err != nil {
			return Fig4Cell{}, err
		}
	}
	return cell, nil
}
