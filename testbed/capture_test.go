package testbed

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"minions/telemetry"
	"minions/telemetry/trace"
)

// TestCaptureReplayFig2 is the headline capture/replay guarantee: a Figure 2
// run with capture enabled produces traces that replay — into a rebuild with
// no RCP* system and no flows — to a byte-identical table.
func TestCaptureReplayFig2(t *testing.T) {
	const dur = 2 * Second
	o := SimOpts{Seed: 42}

	var mm, pr bytes.Buffer
	live, err := RunFig2Captured(dur, o, &mm, &pr)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Len() == 0 || pr.Len() == 0 {
		t.Fatalf("empty panel traces: maxmin %d B, prop %d B", mm.Len(), pr.Len())
	}

	replayed, err := RunFig2Replay(dur, o, bytes.NewReader(mm.Bytes()), bytes.NewReader(pr.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lt, rt := live.Table(), replayed.Table(); lt != rt {
		t.Fatalf("replayed Figure 2 table differs from live run:\n--- live ---\n%s--- replay ---\n%s", lt, rt)
	}
	if live.FinalMaxMin[0] == 0 && live.FinalMaxMin[1] == 0 {
		t.Fatal("live run carried no traffic; the byte-identical check is vacuous")
	}
}

// TestCaptureReplayFig4 checks the same for Figure 4, including the CONGA*
// probe-overhead row, which the replay recovers from standalone-probe bytes
// in the trace rather than from a running balancer.
func TestCaptureReplayFig4(t *testing.T) {
	const dur = 2 * Second
	o := SimOpts{Seed: 42}

	var ecmp, cng bytes.Buffer
	live, err := RunFig4Captured(dur, o, &ecmp, &cng)
	if err != nil {
		t.Fatal(err)
	}
	if ecmp.Len() == 0 || cng.Len() == 0 {
		t.Fatalf("empty scheme traces: ecmp %d B, conga %d B", ecmp.Len(), cng.Len())
	}
	if live.Conga.ProbeMbps == 0 {
		t.Fatal("live CONGA* run reports zero probe overhead; capture missed the standalone probes")
	}

	replayed, err := RunFig4Replay(dur, o, bytes.NewReader(ecmp.Bytes()), bytes.NewReader(cng.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lt, rt := live.Table(), replayed.Table(); lt != rt {
		t.Fatalf("replayed Figure 4 table differs from live run:\n--- live ---\n%s--- replay ---\n%s", lt, rt)
	}
}

// TestCaptureRejectsShardedRun pins the single-shard restriction on both the
// capture and replay sides.
func TestCaptureRejectsShardedRun(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunFig2Captured(Second, SimOpts{Seed: 1, Shards: 2}, &buf, nil); !errors.Is(err, ErrShardedCapture) {
		t.Fatalf("sharded capture: got %v, want ErrShardedCapture", err)
	}
	if _, err := RunFig4Replay(Second, SimOpts{Seed: 1, Shards: 2}, strings.NewReader(""), nil); !errors.Is(err, ErrShardedCapture) {
		t.Fatalf("sharded replay: got %v, want ErrShardedCapture", err)
	}
}

// TestFig2TraceDecodes checks the captured panel trace is a well-formed
// telemetry/trace stream (the same file cmd/tppdump decodes).
func TestFig2TraceDecodes(t *testing.T) {
	var mm bytes.Buffer
	if _, err := RunFig2Captured(Second, SimOpts{Seed: 7}, &mm, nil); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(bytes.NewReader(mm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("trace decoded to zero records")
	}
	last := int64(-1)
	for i, r := range recs {
		if r.At < last {
			t.Fatalf("record %d at %d precedes predecessor at %d; trace not time-ordered", i, r.At, last)
		}
		last = r.At
	}
}

// TestScaleExportRecords runs a small fat-tree with the hop-record export
// attached and checks the pipeline sees exactly the hop samples the
// aggregators counted, tagged with the pinned scale/hop schema.
func TestScaleExportRecords(t *testing.T) {
	var sink telemetry.MemSink
	pipe := telemetry.NewPipeline(telemetry.Config{Spool: 1 << 16, Policy: telemetry.Block})
	pipe.Attach(&sink)
	res, err := RunScaleFatTree(ScaleConfig{
		K: 4, Flows: 16, Duration: 10 * Millisecond, Warmup: 5 * Millisecond,
		WithTPP: true, Export: pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TPPHopRecords == 0 {
		t.Fatal("no hop records collected")
	}
	if len(sink.Records) == 0 {
		t.Fatal("no records exported")
	}
	// The export covers the whole run (warmup included) while TPPHopRecords
	// is baselined to the measured window, so exported >= counted.
	if uint64(len(sink.Records)) < res.TPPHopRecords {
		t.Fatalf("exported %d records < %d hop records in the measured window", len(sink.Records), res.TPPHopRecords)
	}
	for _, r := range sink.Records {
		if r.App != "scale" || r.Kind != "hop" {
			t.Fatalf("record tagged %s/%s", r.App, r.Kind)
		}
		if r.Node == 0 {
			t.Fatal("hop record with zero switch ID")
		}
	}
	if st := pipe.Stats(); st.DroppedOldest+st.DroppedNewest != 0 {
		t.Fatalf("Block pipeline dropped records: %+v", st)
	}
}

// TestScaleExportRequiresTPPAndSingleShard pins the configuration guards.
func TestScaleExportRequiresTPPAndSingleShard(t *testing.T) {
	pipe := telemetry.NewPipeline(telemetry.Config{})
	if _, err := RunScaleFatTree(ScaleConfig{K: 4, Export: pipe}); err == nil {
		t.Fatal("Export without WithTPP accepted")
	}
	if _, err := RunScaleFatTree(ScaleConfig{K: 4, WithTPP: true, Shards: 2, Export: pipe}); err == nil {
		t.Fatal("Export with 2 shards accepted")
	}
}
