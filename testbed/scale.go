package testbed

// This file is the scale-proof harness: fat-tree topologies far larger than
// the paper's dumbbell, driven by many concurrent flows, with the simulator's
// own performance (packets/sec, events/sec, ns per packet-hop, allocations
// per packet-hop) measured alongside the network's behavior. It exists to
// seed and track the repository's perf trajectory: BenchmarkScaleFatTree,
// BenchmarkEndToEndHop and cmd/benchjson are thin wrappers over it.

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"minions/internal/link"
	"minions/internal/trafficgen"
	"minions/telemetry"
	"minions/tpp"
	"minions/tppnet"
	"minions/workload"
)

// RandomFlowsConfig parameterizes UniformRandomFlows.
type RandomFlowsConfig = trafficgen.RandomFlowsConfig

// UniformRandomFlows starts long-lived CBR flows between uniformly random
// distinct host pairs, re-exported from the traffic generator.
var UniformRandomFlows = trafficgen.UniformRandomFlows

// AllToAllConfig parameterizes AllToAll.
type AllToAllConfig = trafficgen.AllToAllConfig

// AllToAll starts the Figure 1 workload — every host sends Poisson message
// bursts to every other host — re-exported so example code and external
// users can drive app-layer experiments without internal packages.
var AllToAll = trafficgen.AllToAll

// ScaleConfig parameterizes a fat-tree scale run.
type ScaleConfig struct {
	K            int   // fat-tree arity, even (default 4)
	RateMbps     int   // link rate (default 1000)
	Flows        int   // concurrent CBR flows (default 128)
	FlowRateMbps int   // per-flow sending rate (default 20)
	PktSize      int   // wire bytes per packet (default 1400: TPP headroom under the MTU)
	Duration     Time  // measured simulated time (default 100 ms)
	Warmup       Time  // simulated warmup before measuring (default 20 ms)
	Seed         int64 // default 1
	WithTPP      bool  // attach a 2-word/hop telemetry TPP to every data packet
	Shards       int   // topology shards simulated in parallel (default 1)
	// Scheduler selects the engine's pending-event structure (default:
	// timing wheel). Simulated behavior is identical across schedulers —
	// the determinism guards pin it — only wall-clock metrics move.
	Scheduler Scheduler
	// Sync selects the shard synchronization algorithm (default: the
	// asynchronous per-channel-lookahead engine; SyncEpoch is the
	// global-barrier reference). Behavior is byte-identical across modes;
	// the ScaleResult sync counters quantify the synchronization saved.
	Sync SyncMode
	// Faults optionally arms a deterministic fault plan on the fat-tree
	// (see tppnet.WithFaults). Nil keeps the hot path fault-free: the
	// forwarding cost of an unarmed network is a single nil check, a
	// contract cmd/benchjson's fat-tree-faults scenario pins.
	Faults *tppnet.FaultPlan
	// Workload, when non-nil, replaces the default uniform-random CBR
	// flows: the Spec is compiled onto the fat-tree's hosts (pod-major
	// order — the order FatTree returns them) and Flows/FlowRateMbps are
	// ignored. A zero Spec.Seed inherits cfg.Seed. With WithTPP, every
	// UDP packet is instrumented (workload groups use several ports).
	// The runner's deterministic counters land in
	// ScaleResult.WorkloadFingerprint.
	Workload *workload.Spec
	// Export, when non-nil, publishes one telemetry Record per collected
	// TPP hop sample into the pipeline (App "scale", Kind "hop", Node the
	// switch ID, Val the queue occupancy, Aux the hop index and flow
	// endpoints). Requires WithTPP and a single shard — the pipeline is
	// single-goroutine and aggregators run on shard goroutines. The
	// pipeline is flushed once after the measured window; inline flushes
	// triggered by a full spool under the Block policy land inside the
	// window and are measured, which is the honest number.
	Export *telemetry.Pipeline
}

// ScaleResult is one fat-tree scale measurement. Traffic counters cover the
// measured window only (warmup excluded).
type ScaleResult struct {
	K, Hosts, Switches, Links, Flows int
	Shards                           int

	SimDuration   Time
	Events        int    // engine events processed
	PktHops       uint64 // link transmissions (host->switch and switch->*)
	Delivered     uint64 // packets counted by sinks
	DeliveredMB   float64
	Drops         uint64 // drop-tail losses
	TPPHopRecords uint64 // per-hop telemetry records collected (WithTPP)

	Wall     time.Duration // wall-clock time of the measured window
	Mallocs  uint64        // heap allocations during the window
	PoolGets uint64        // packet-pool draws during the window
	PoolNews uint64        // pool draws that had to allocate

	// Sharded-sync diagnostics for the measured window (all zero at one
	// shard). SyncEpochs — group-wide synchronization points entered — and
	// SyncCrossings — shard-crossing deliveries drained — are deterministic
	// for a given (seed, shards, sync mode); they are how shard overhead is
	// diagnosed from committed JSON instead of noisy wall-clock. SyncDrains
	// (non-empty mailbox sweeps) and SyncIdleMax (largest per-shard count
	// of idle-wait quanta) depend on goroutine interleaving when shards run
	// in parallel.
	Sync          SyncMode
	SyncEpochs    uint64
	SyncCrossings uint64
	SyncDrains    uint64
	SyncIdleMax   uint64

	// WorkloadFingerprint is the workload.Runner's deterministic counter
	// line when ScaleConfig.Workload drove the run (empty otherwise) —
	// the cross-shard/scheduler/sync determinism guards compare it.
	WorkloadFingerprint string
}

// PktHopsPerSec returns simulated packet-hops processed per wall-clock second.
func (r *ScaleResult) PktHopsPerSec() float64 {
	return float64(r.PktHops) / r.Wall.Seconds()
}

// EventsPerSec returns engine events processed per wall-clock second.
func (r *ScaleResult) EventsPerSec() float64 {
	return float64(r.Events) / r.Wall.Seconds()
}

// NsPerPktHop returns wall-clock nanoseconds per simulated packet-hop.
func (r *ScaleResult) NsPerPktHop() float64 {
	if r.PktHops == 0 {
		return 0
	}
	return float64(r.Wall.Nanoseconds()) / float64(r.PktHops)
}

// AllocsPerPktHop returns heap allocations per packet-hop in the measured
// window — the number this PR drives to ~0.
func (r *ScaleResult) AllocsPerPktHop() float64 {
	if r.PktHops == 0 {
		return 0
	}
	return float64(r.Mallocs) / float64(r.PktHops)
}

// Table renders the result.
func (r *ScaleResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fat-tree k=%d (%d shards): %d hosts, %d switches, %d links, %d flows, TPP records %d\n",
		r.K, r.Shards, r.Hosts, r.Switches, r.Links, r.Flows, r.TPPHopRecords)
	fmt.Fprintf(&b, "simulated %.0f ms: %d pkt-hops, %d delivered (%.1f MB), %d drops, %d events\n",
		r.SimDuration.Seconds()*1e3, r.PktHops, r.Delivered, r.DeliveredMB, r.Drops, r.Events)
	fmt.Fprintf(&b, "wall %.1f ms: %.2fM pkt-hops/s, %.2fM events/s, %.0f ns/pkt-hop, %.4f allocs/pkt-hop\n",
		float64(r.Wall.Microseconds())/1e3, r.PktHopsPerSec()/1e6, r.EventsPerSec()/1e6,
		r.NsPerPktHop(), r.AllocsPerPktHop())
	if r.Shards > 1 {
		fmt.Fprintf(&b, "sync %s: %d sync points, %d crossings, %d drains, max idle waits %d\n",
			r.Sync, r.SyncEpochs, r.SyncCrossings, r.SyncDrains, r.SyncIdleMax)
	}
	return b.String()
}

// scaleTelemetryProgram is the per-hop collection TPP the scale workload
// piggybacks: switch ID + queue occupancy, the §2.1 micro-burst pair.
func scaleTelemetryProgram(hops int) (*tpp.Program, error) {
	return tpp.NewProgram().
		Push(tpp.SwitchID).
		Push(tpp.QueueOccupancy).
		Hops(hops).
		Build()
}

// RunScaleFatTree builds a k-ary fat-tree, drives it with cfg.Flows
// concurrent CBR flows (optionally TPP-instrumented), and measures both the
// network and the simulator over cfg.Duration of virtual time.
func RunScaleFatTree(cfg ScaleConfig) (*ScaleResult, error) {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.K%2 != 0 {
		return nil, fmt.Errorf("testbed: fat-tree arity %d must be even", cfg.K)
	}
	if cfg.RateMbps == 0 {
		cfg.RateMbps = 1000
	}
	if cfg.Flows == 0 {
		cfg.Flows = 128
	}
	if cfg.FlowRateMbps == 0 {
		cfg.FlowRateMbps = 20
	}
	if cfg.PktSize == 0 {
		// Leave room under the 1514-byte MTU for the telemetry TPP; a full
		// 1500-byte frame would be sent uninstrumented (§8 MTU issues).
		cfg.PktSize = 1400
	}
	if cfg.Duration == 0 {
		cfg.Duration = 100 * Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 20 * Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	// The pod-aligned partition caps useful shards at k (one pod is the
	// smallest indivisible unit); clamp here so ScaleResult.Shards reports
	// what actually ran instead of idle engines.
	if cfg.Shards > cfg.K {
		cfg.Shards = cfg.K
	}
	if cfg.Export != nil {
		if !cfg.WithTPP {
			return nil, fmt.Errorf("testbed: ScaleConfig.Export requires WithTPP (no hop records without the telemetry TPP)")
		}
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("testbed: ScaleConfig.Export requires a single shard (the pipeline is single-goroutine)")
		}
	}

	net := NewNet(SimOpts{Seed: cfg.Seed, Shards: cfg.Shards, Scheduler: cfg.Scheduler, Sync: cfg.Sync, Faults: cfg.Faults})
	pods := net.FatTree(cfg.K, cfg.RateMbps)
	var hosts []*Host
	for _, pod := range pods {
		hosts = append(hosts, pod...)
	}

	res := &ScaleResult{
		K:           cfg.K,
		Shards:      cfg.Shards,
		Hosts:       len(hosts),
		Switches:    len(net.Switches),
		Links:       len(net.Links()),
		Flows:       cfg.Flows,
		SimDuration: cfg.Duration,
	}

	const dstPort = 9100
	// The default workload sends everything to one well-known port; a
	// workload.Spec spreads groups across ports, so instrument all UDP.
	filter := FilterSpec{Proto: tppnet.ProtoUDP, DstPort: dstPort}
	if cfg.Workload != nil {
		filter = FilterSpec{Proto: tppnet.ProtoUDP}
	}
	// Aggregators run on every shard's goroutine; the hop-record tally is an
	// atomic because additions commute — the sum is deterministic no matter
	// how shard execution interleaves.
	var hopRecords atomic.Uint64
	tppEncLen := 0
	if cfg.WithTPP {
		// Longest fat-tree path is edge-agg-core-agg-edge = 5 switch hops;
		// size one extra so resized topologies don't silently truncate.
		prog, err := scaleTelemetryProgram(6)
		if err != nil {
			return nil, err
		}
		if enc, err := prog.Encode(); err == nil {
			tppEncLen = len(enc)
		}
		app := net.CP.RegisterApp("scale-telemetry")
		pipe := cfg.Export
		for _, h := range hosts {
			if _, err := h.AddTPP(app, filter, prog, 1, 0); err != nil {
				return nil, err
			}
			// Consume views without copying: count collected hop records,
			// and when exporting, publish one Record per hop straight off
			// the section words (HopViews/StackView would allocate).
			host := h
			h.RegisterAggregator(app.Wire, func(p *Packet, view tpp.Section) {
				words := view.HopOrSP()
				if max := view.MemWords(); words > max {
					words = max
				}
				hopRecords.Add(uint64(words) / 2)
				if pipe == nil {
					return
				}
				now := int64(host.Engine().Now())
				for w := 0; w+1 < words; w += 2 {
					pipe.Publish(telemetry.Record{
						At:   now,
						App:  "scale",
						Kind: "hop",
						Node: uint64(view.Word(w)),
						Val:  float64(view.Word(w + 1)),
						Aux:  [3]uint64{uint64(w / 2), uint64(p.Flow.Src), uint64(p.Flow.Dst)},
					})
				}
			})
		}
	}

	var sinks []*Sink
	var wr *workload.Runner
	if cfg.Workload != nil {
		spec := *cfg.Workload
		if spec.Seed == 0 {
			spec.Seed = cfg.Seed
		}
		var err error
		if wr, err = spec.Attach(hosts); err != nil {
			return nil, err
		}
		sinks = wr.Sinks
		res.Flows = wr.Sources()
		// Heavy-tailed specs keep setting record queue depths long after any
		// reasonable warmup; pre-commit the growth headroom so the measured
		// window holds the zero-alloc contract (behavior is unchanged).
		net.Prewarm(0, tppEncLen)
	} else {
		_, sinks = trafficgen.UniformRandomFlows(hosts, trafficgen.RandomFlowsConfig{
			Flows:   cfg.Flows,
			RateBps: int64(cfg.FlowRateMbps) * 1_000_000,
			PktSize: cfg.PktSize,
			DstPort: dstPort,
			Seed:    cfg.Seed,
		})
	}

	// Warm up: fill pools, rings and the event heap so the measured window
	// reflects steady state.
	net.RunFor(cfg.Warmup)

	txBefore, dropBefore := linkTotals(net.Links())
	var sinkPktsBefore, sinkBytesBefore uint64
	for _, s := range sinks {
		sinkPktsBefore += s.Packets
		sinkBytesBefore += s.Bytes
	}
	getsBefore, _, newsBefore := net.PoolStats()
	// The aggregator accumulates from time zero; baseline it so
	// TPPHopRecords covers the measured window like every other counter.
	hopRecordsBefore := hopRecords.Load()
	res.Sync = cfg.Sync
	var syncBefore SyncStats
	if g := net.Group(); g != nil {
		syncBefore = g.Stats()
	}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res.Events = net.RunFor(cfg.Duration)
	res.Wall = time.Since(t0)
	runtime.ReadMemStats(&m1)

	txAfter, dropAfter := linkTotals(net.Links())
	res.PktHops = txAfter - txBefore
	res.Drops = dropAfter - dropBefore
	for _, s := range sinks {
		res.Delivered += s.Packets
		res.DeliveredMB += float64(s.Bytes)
	}
	res.Delivered -= sinkPktsBefore
	res.DeliveredMB = (res.DeliveredMB - float64(sinkBytesBefore)) / 1e6
	res.TPPHopRecords = hopRecords.Load() - hopRecordsBefore
	res.Mallocs = m1.Mallocs - m0.Mallocs
	getsAfter, _, newsAfter := net.PoolStats()
	res.PoolGets = getsAfter - getsBefore
	res.PoolNews = newsAfter - newsBefore
	if g := net.Group(); g != nil {
		s := g.Stats()
		res.SyncEpochs = s.Epochs - syncBefore.Epochs
		res.SyncCrossings = s.Crossings - syncBefore.Crossings
		res.SyncDrains = s.Drains - syncBefore.Drains
		res.SyncIdleMax = s.MaxIdleParks
	}
	if wr != nil {
		res.WorkloadFingerprint = wr.Fingerprint()
	}
	if cfg.Export != nil {
		cfg.Export.Flush()
		if err := cfg.Export.Err(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// linkTotals sums transmit and drop packet counters across links.
func linkTotals(links []*link.Link) (tx, drops uint64) {
	for _, l := range links {
		st := l.Stats()
		tx += st.TxPackets
		drops += st.DropPackets
	}
	return tx, drops
}

// E2EHarness drives the minimal forward path — host send → one switch hop
// (with or without TPP execution) → delivery — one packet at a time. It is
// the substrate of BenchmarkEndToEndHop and of the zero-allocation
// steady-state assertion in the tests.
type E2EHarness struct {
	Net  *Network
	Src  *Host
	Dst  *Host
	Sink *Sink
	// HopRecords counts telemetry hop records consumed by the aggregator.
	HopRecords uint64

	dstID   NodeID
	pktSize int
}

// NewE2EHarness wires host→switch→host at 10 Gb/s; withTPP installs the
// telemetry program on the send path and a non-copying aggregator on the
// receive path.
func NewE2EHarness(withTPP bool) (*E2EHarness, error) {
	return NewE2EHarnessWith(withTPP, SimOpts{})
}

// NewE2EHarnessScheduler is NewE2EHarness with an explicit engine scheduler.
//
// Deprecated: use NewE2EHarnessWith.
func NewE2EHarnessScheduler(withTPP bool, sched Scheduler) (*E2EHarness, error) {
	return NewE2EHarnessWith(withTPP, SimOpts{Scheduler: sched})
}

// NewE2EHarnessWith is NewE2EHarness with explicit substrate options, for
// heap-vs-wheel A/B measurements of the same forward path. A zero Seed
// means the harness default (1); the three-node topology is always a
// single shard.
func NewE2EHarnessWith(withTPP bool, o SimOpts) (*E2EHarness, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	net := NewNet(SimOpts{Seed: o.Seed, Scheduler: o.Scheduler})
	sw := net.AddSwitch(2)
	src, dst := net.AddHost(), net.AddHost()
	cfg := HostLink(10_000)
	net.Connect(src, sw, cfg)
	net.Connect(dst, sw, cfg)
	net.ComputeRoutes()

	e := &E2EHarness{Net: net, Src: src, Dst: dst, dstID: dst.ID(), pktSize: 1000}
	if withTPP {
		prog, err := scaleTelemetryProgram(2)
		if err != nil {
			return nil, err
		}
		app := net.CP.RegisterApp("e2e")
		if _, err := src.AddTPP(app, FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
			return nil, err
		}
		dst.RegisterAggregator(app.Wire, func(p *Packet, view tpp.Section) {
			e.HopRecords += uint64(view.HopOrSP()) / 2
		})
	}
	e.Sink = NewSink(dst, 9000, tppnet.ProtoUDP)
	return e, nil
}

// Step sends one packet from Src to Dst and runs the simulation to idle:
// exactly one host transmit path, one TPP-executing switch hop, and one
// terminal delivery. In steady state it performs zero heap allocations.
func (e *E2EHarness) Step() {
	e.Src.Send(e.Src.NewPacket(e.dstID, 5000, 9000, tppnet.ProtoUDP, e.pktSize))
	e.Net.Run()
}
