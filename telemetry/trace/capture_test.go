package trace_test

import (
	"bytes"
	"testing"

	"minions/telemetry/trace"
	"minions/tpp"
	"minions/tppnet"
)

// TestCaptureDumbbell records a small live run — instrumented UDP traffic
// plus a standalone executor probe — and checks the trace holds exactly the
// injected sends: TPPs as they left the hosts, the probe marked standalone,
// and the destination's echo transmission skipped (replay regenerates it).
func TestCaptureDumbbell(t *testing.T) {
	net := tppnet.NewNetwork(tppnet.WithSeed(3))
	hosts, _, _ := net.Dumbbell(2, 100)
	src, dst := hosts[0], hosts[1]

	app := net.CP.RegisterApp("capture-test")
	prog := tpp.MustAssemble(`PUSH [Switch:SwitchID]`)
	if _, err := src.AddTPP(app, tppnet.FilterSpec{Proto: tppnet.ProtoUDP}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cap, err := trace.Start(&buf, src, dst)
	if err != nil {
		t.Fatal(err)
	}

	tppnet.NewSink(dst, 9000, tppnet.ProtoUDP)
	f := tppnet.NewUDPFlow(src, dst.ID(), 9000, 9000, 1000)
	f.SetRateBps(10_000_000)
	f.Start()

	echoDone := false
	err = src.ExecuteTPP(app, prog, dst.ID(), tppnet.ExecOpts{}, func(tpp.Section, error) {
		echoDone = true
	})
	if err != nil {
		t.Fatal(err)
	}

	net.RunFor(20 * tppnet.Millisecond)
	f.Stop()
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}
	if !echoDone {
		t.Fatal("standalone probe never completed")
	}
	if cap.EchoesSkipped == 0 {
		t.Fatal("echo transmission was not skipped — replay would double-inject")
	}

	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != cap.Packets {
		t.Fatalf("decoded %d records, capture wrote %d", len(recs), cap.Packets)
	}

	var standalone, withTPP int
	for _, r := range recs {
		if r.Src != uint32(src.ID()) {
			t.Fatalf("record from node %d; only host %d transmits non-echo traffic", r.Src, src.ID())
		}
		if r.Standalone() {
			standalone++
			if len(r.TPP) == 0 {
				t.Fatal("standalone probe record carries no TPP")
			}
		}
		if len(r.TPP) > 0 {
			withTPP++
			if _, err := tpp.Decode(r.TPP); err != nil {
				t.Fatalf("captured TPP does not decode: %v", err)
			}
		}
	}
	if standalone != 1 {
		t.Fatalf("trace holds %d standalone probes, want 1", standalone)
	}
	if withTPP < 10 {
		t.Fatalf("only %d instrumented packets captured, expected the whole flow", withTPP)
	}

	// The tap is detached: further traffic must not grow the trace.
	n := cap.Packets
	f.Start()
	net.RunFor(5 * tppnet.Millisecond)
	if cap.Packets != n {
		t.Fatal("capture kept recording after Close")
	}
}
