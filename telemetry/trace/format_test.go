package trace

import (
	"bytes"
	"encoding/binary"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var goldenRecs = []Rec{
	{At: 0, Src: 1, Dst: 2, SrcPort: 7001, DstPort: 7001, Proto: 17, Size: 1000},
	{At: 1_500_000, Src: 1, Dst: 2, SrcPort: 7001, DstPort: 7001, Proto: 17,
		TTL: 64, Seq: 42, Size: 1076, TPP: []byte{0x01, 0x02, 0x03, 0x04, 0xAA, 0xBB}},
	{At: 2_000_000, Src: 3, Dst: 4, SrcPort: 49152, DstPort: 0x6666, Proto: 17,
		Flags: FlagStandalone, PathTag: 7, TTL: 64, Size: 122,
		TPP: bytes.Repeat([]byte{0x5A}, 80)},
	{At: 9_223_372_036_854_775_807, Src: 0xFFFFFFFF, Dst: 0, SrcPort: 0xFFFF,
		DstPort: 0xFFFF, Proto: 6, Flags: 0xFF, PathTag: 0xFFFF, TTL: 255,
		TFlags: 0xFF, Seq: 0xFFFFFFFF, Ack: 0xFFFFFFFF, Size: 0xFFFFFFFF},
}

func encodeGolden(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range goldenRecs {
		if err := w.Write(&goldenRecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTraceGolden pins the binary format byte for byte — version byte,
// big-endian field order, header and record layout. A diff here is a
// breaking format change, which requires a version bump, not a test edit.
func TestTraceGolden(t *testing.T) {
	got := encodeGolden(t)
	path := filepath.Join("testdata", "trace.golden.bin")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace encoding diverges from golden file (%d vs %d bytes)", len(got), len(want))
	}
}

// TestTraceHeaderLayout spot-checks the pinned constants directly against
// raw bytes, independent of Writer/Reader symmetry.
func TestTraceHeaderLayout(t *testing.T) {
	b := encodeGolden(t)
	if string(b[:8]) != "TPPTRACE" {
		t.Fatalf("magic = %q", b[:8])
	}
	if b[8] != 1 {
		t.Fatalf("version byte = %d, want 1", b[8])
	}
	if got := binary.BigEndian.Uint16(b[10:12]); got != 40 {
		t.Fatalf("record header length = %d, want 40", got)
	}
	// First record starts at 16; its At is 0, its Src (offset 8) is 1,
	// big-endian.
	if got := binary.BigEndian.Uint32(b[16+8 : 16+12]); got != 1 {
		t.Fatalf("first record Src = %d, want 1 (endianness broken?)", got)
	}
	if !Magic(b) {
		t.Fatal("Magic sniff failed on a valid trace")
	}
	if Magic([]byte("not a trace file")) {
		t.Fatal("Magic sniff accepted junk")
	}
}

// TestTraceRoundTrip: encode → decode → re-encode is byte-identical and
// field-identical.
func TestTraceRoundTrip(t *testing.T) {
	b := encodeGolden(t)
	got, err := ReadAll(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(goldenRecs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(goldenRecs))
	}
	for i := range got {
		want := goldenRecs[i]
		if want.TPP != nil && len(want.TPP) == 0 {
			want.TPP = nil
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d:\ngot  %+v\nwant %+v", i, got[i], want)
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if err := w.Write(&got[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), b) {
		t.Fatal("re-encoded trace is not byte-identical")
	}
}

func TestTraceReaderRejectsJunk(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("GARBAGEGARBAGEGA"))); err == nil {
		t.Fatal("reader accepted junk magic")
	}
	b := encodeGolden(t)
	bad := append([]byte(nil), b...)
	bad[8] = 99
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("reader accepted unknown version")
	}
	if _, err := NewReader(bytes.NewReader(b[:10])); err == nil {
		t.Fatal("reader accepted truncated header")
	}
}

// TestTraceTruncatedRecord: a stream cut mid-record surfaces
// io.ErrUnexpectedEOF, never a silent clean EOF.
func TestTraceTruncatedRecord(t *testing.T) {
	b := encodeGolden(t)
	for _, cut := range []int{len(b) - 1, 16 + 20, 16 + 40 + 3} {
		_, err := ReadAll(bytes.NewReader(b[:cut]))
		if err == nil || err == io.EOF {
			t.Fatalf("cut at %d: err = %v, want unexpected-EOF", cut, err)
		}
	}
	// A clean cut on a record boundary is a clean EOF.
	recs, err := ReadAll(bytes.NewReader(b[:16+40]))
	if err != nil || len(recs) != 1 {
		t.Fatalf("boundary cut: %d recs, err %v", len(recs), err)
	}
}

// TestTraceForwardCompat: a longer record header (future version appending
// fields) decodes with the extra bytes skipped.
func TestTraceForwardCompat(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&goldenRecs[1]); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Rewrite the header to claim 44-byte record headers and splice 4
	// padding bytes between each record header and its TPP.
	ext := append([]byte(nil), b[:16]...)
	binary.BigEndian.PutUint16(ext[10:12], 44)
	ext = append(ext, b[16:16+40]...)
	ext = append(ext, 0xDE, 0xAD, 0xBE, 0xEF)
	ext = append(ext, b[16+40:]...)
	got, err := ReadAll(bytes.NewReader(ext))
	if err != nil || len(got) != 1 {
		t.Fatalf("extended-header decode: %d recs, err %v", len(got), err)
	}
	if !bytes.Equal(got[0].TPP, goldenRecs[1].TPP) {
		t.Fatal("extended-header decode corrupted TPP bytes")
	}
}

// TestWriterZeroAlloc: the capture hot path — Writer.Write of a record with
// a TPP — must not allocate in steady state.
func TestWriterZeroAlloc(t *testing.T) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	r := goldenRecs[2]
	w.Write(&r) // warm the buffer
	allocs := testing.AllocsPerRun(1000, func() { w.Write(&r) })
	if allocs != 0 {
		t.Fatalf("Writer.Write allocates %.2f/record, want 0", allocs)
	}
}
