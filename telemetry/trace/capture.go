package trace

import (
	"bufio"
	"io"

	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/link"
)

// Capture records every packet transmitted by a set of hosts into a trace
// stream, via each host's TX tap. Captured sends include instrumented
// application traffic, the executor's standalone probes and probe retries —
// exactly the injected load. Echo transmissions (a destination bouncing a
// finished standalone TPP home) are skipped by design: replay regenerates
// them in-network, so recording them too would double-inject.
//
// Capture is for single-engine runs: taps from multiple shard goroutines
// would interleave one writer. The testbed runners enforce that; Start
// itself does not know the shard layout.
type Capture struct {
	w     *Writer
	bw    *bufio.Writer
	hosts []*host.Host
	rec   Rec
	err   error

	// Packets counts records written; EchoesSkipped counts the echo
	// transmissions deliberately left out of the trace.
	Packets       uint64
	EchoesSkipped uint64
}

// Start writes the trace header to w and installs a TX tap on every host.
// Writes are buffered; Close detaches the taps and flushes. Each host
// supports one tap — starting a capture replaces any tap already set.
func Start(w io.Writer, hosts ...*host.Host) (*Capture, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	tw, err := NewWriter(bw)
	if err != nil {
		return nil, err
	}
	c := &Capture{w: tw, bw: bw, hosts: hosts}
	for _, h := range hosts {
		h.SetTxTap(c.tap)
	}
	return c, nil
}

// tap is the per-transmit hook: runs on the simulation goroutine, so it
// copies fixed fields and the TPP bytes into the writer's reused buffer and
// nothing else.
func (c *Capture) tap(p *link.Packet) {
	if c.err != nil {
		return
	}
	if p.TPP != nil && p.TPP.Flags()&core.FlagEchoed != 0 {
		c.EchoesSkipped++
		return
	}
	c.rec = Rec{
		At:      int64(p.SentAt),
		Src:     uint32(p.Flow.Src),
		Dst:     uint32(p.Flow.Dst),
		SrcPort: p.Flow.SrcPort,
		DstPort: p.Flow.DstPort,
		Proto:   p.Flow.Proto,
		PathTag: p.PathTag,
		TTL:     p.TTL,
		TFlags:  p.TFlags,
		Seq:     p.Seq,
		Ack:     p.Ack,
		Size:    uint32(p.Size),
		TPP:     p.TPP,
	}
	if p.Standalone {
		c.rec.Flags |= FlagStandalone
	}
	if err := c.w.Write(&c.rec); err != nil {
		c.err = err
		return
	}
	c.Packets++
}

// Close detaches every tap and flushes buffered records. The capture's
// first write error, if any, is returned (the tap stops recording after
// one, rather than emitting a corrupt stream).
func (c *Capture) Close() error {
	for _, h := range c.hosts {
		h.SetTxTap(nil)
	}
	c.hosts = nil
	if c.err != nil {
		return c.err
	}
	return c.bw.Flush()
}
