// Package trace defines the versioned binary format for recorded TPP
// packet traces, and the capture hook that writes one from a live
// simulation.
//
// A trace is a stream of transmit events: every packet a host's shim
// handed to its NIC, with the full TPP section bytes as they left the
// host. Captured traces are decoded by cmd/tppdump and replayed as a
// deterministic traffic source by internal/trafficgen — the same network
// fed the same trace reproduces the original run packet for packet.
//
// # Wire format
//
// All integers are big-endian. A trace is one 16-byte file header followed
// by records:
//
//	offset  size  field
//	0       8     magic "TPPTRACE"
//	8       1     version (currently 1)
//	9       1     flags (reserved, 0)
//	10      2     record header length (currently 40)
//	12      4     reserved (0)
//
// Each record is a fixed 40-byte header followed by the TPP bytes:
//
//	offset  size  field
//	0       8     at — transmit time, simulation ns
//	8       4     src node ID
//	12      4     dst node ID
//	16      2     src port
//	18      2     dst port
//	20      1     IP protocol
//	21      1     record flags (bit 0: standalone probe)
//	22      2     path tag
//	24      1     TTL
//	25      1     transport flags
//	26      4     seq
//	30      4     ack
//	34      4     size — wire bytes including any TPP
//	38      2     TPP length in bytes (0 = no TPP)
//	40      —     TPP section bytes
//
// The record header length lives in the file header so readers can skip
// fields appended by future versions; golden tests pin version 1 byte for
// byte.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Format constants, pinned by the golden-file tests.
const (
	Version   = 1
	headerLen = 16
	recHdrLen = 40
)

var magic = [8]byte{'T', 'P', 'P', 'T', 'R', 'A', 'C', 'E'}

// Record flag bits.
const (
	// FlagStandalone marks a probe packet existing only to carry its TPP.
	FlagStandalone = 1 << 0
)

// Rec is one decoded trace record: a packet transmit event. TPP aliases
// the reader's internal buffer and is valid until the next Read — copy to
// retain.
type Rec struct {
	At      int64  // transmit time, simulation ns
	Src     uint32 // source node ID
	Dst     uint32 // destination node ID
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Flags   uint8 // FlagStandalone
	PathTag uint16
	TTL     uint8
	TFlags  uint8 // transport flags
	Seq     uint32
	Ack     uint32
	Size    uint32 // wire bytes, including the TPP
	TPP     []byte // raw TPP section, nil when the packet carried none
}

// Standalone reports whether the record is a standalone probe.
func (r *Rec) Standalone() bool { return r.Flags&FlagStandalone != 0 }

// Writer encodes records to an io.Writer. The file header is written by
// NewWriter; each Write issues exactly one underlying Write call from a
// reused buffer, so wrapping w in a *bufio.Writer gives batched I/O with
// zero allocations per record in steady state.
type Writer struct {
	w   io.Writer
	buf []byte
	n   uint64
}

// NewWriter writes the trace file header and returns the record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [headerLen]byte
	copy(hdr[:8], magic[:])
	hdr[8] = Version
	binary.BigEndian.PutUint16(hdr[10:12], recHdrLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, buf: make([]byte, 0, 256)}, nil
}

// Write appends one record.
func (tw *Writer) Write(r *Rec) error {
	if len(r.TPP) > 0xFFFF {
		return fmt.Errorf("trace: TPP of %d bytes exceeds format limit", len(r.TPP))
	}
	b := tw.buf[:recHdrLen]
	binary.BigEndian.PutUint64(b[0:8], uint64(r.At))
	binary.BigEndian.PutUint32(b[8:12], r.Src)
	binary.BigEndian.PutUint32(b[12:16], r.Dst)
	binary.BigEndian.PutUint16(b[16:18], r.SrcPort)
	binary.BigEndian.PutUint16(b[18:20], r.DstPort)
	b[20] = r.Proto
	b[21] = r.Flags
	binary.BigEndian.PutUint16(b[22:24], r.PathTag)
	b[24] = r.TTL
	b[25] = r.TFlags
	binary.BigEndian.PutUint32(b[26:30], r.Seq)
	binary.BigEndian.PutUint32(b[30:34], r.Ack)
	binary.BigEndian.PutUint32(b[34:38], r.Size)
	binary.BigEndian.PutUint16(b[38:40], uint16(len(r.TPP)))
	b = append(b, r.TPP...)
	tw.buf = b[:0]
	if _, err := tw.w.Write(b); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Errors returned by Reader.
var (
	ErrBadMagic   = errors.New("trace: not a TPPTRACE file")
	ErrBadVersion = errors.New("trace: unsupported version")
)

// Magic reports whether b begins with the trace file magic — the sniff
// cmd/tppdump uses to tell a binary trace from hex text.
func Magic(b []byte) bool {
	return len(b) >= 8 && string(b[:8]) == string(magic[:])
}

// Reader decodes a trace stream. Records are read one at a time into a
// caller-held Rec whose TPP buffer the reader reuses.
type Reader struct {
	r      io.Reader
	recHdr int
	hdr    [recHdrLen]byte
	extra  []byte // future-version header fields beyond what we decode
	tpp    []byte
	n      uint64
}

// NewReader validates the file header and returns the record reader. Files
// written by a future version with a longer record header decode fine: the
// extra header bytes are skipped.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated header", ErrBadMagic)
		}
		return nil, err
	}
	if !Magic(hdr[:]) {
		return nil, ErrBadMagic
	}
	if hdr[8] != Version {
		return nil, fmt.Errorf("%w: %d (reader supports %d)", ErrBadVersion, hdr[8], Version)
	}
	rh := int(binary.BigEndian.Uint16(hdr[10:12]))
	if rh < recHdrLen {
		return nil, fmt.Errorf("trace: record header length %d shorter than format minimum %d", rh, recHdrLen)
	}
	tr := &Reader{r: r, recHdr: rh}
	if rh > recHdrLen {
		tr.extra = make([]byte, rh-recHdrLen)
	}
	return tr, nil
}

// Read decodes the next record into rec. It returns io.EOF at a clean end
// of stream and io.ErrUnexpectedEOF for a record cut short.
func (tr *Reader) Read(rec *Rec) error {
	if _, err := io.ReadFull(tr.r, tr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("trace: record %d header cut short: %w", tr.n, io.ErrUnexpectedEOF)
		}
		return err
	}
	if tr.extra != nil {
		if _, err := io.ReadFull(tr.r, tr.extra); err != nil {
			return fmt.Errorf("trace: record %d header cut short: %w", tr.n, io.ErrUnexpectedEOF)
		}
	}
	b := tr.hdr[:]
	rec.At = int64(binary.BigEndian.Uint64(b[0:8]))
	rec.Src = binary.BigEndian.Uint32(b[8:12])
	rec.Dst = binary.BigEndian.Uint32(b[12:16])
	rec.SrcPort = binary.BigEndian.Uint16(b[16:18])
	rec.DstPort = binary.BigEndian.Uint16(b[18:20])
	rec.Proto = b[20]
	rec.Flags = b[21]
	rec.PathTag = binary.BigEndian.Uint16(b[22:24])
	rec.TTL = b[24]
	rec.TFlags = b[25]
	rec.Seq = binary.BigEndian.Uint32(b[26:30])
	rec.Ack = binary.BigEndian.Uint32(b[30:34])
	rec.Size = binary.BigEndian.Uint32(b[34:38])
	tppLen := int(binary.BigEndian.Uint16(b[38:40]))
	if tppLen == 0 {
		rec.TPP = nil
	} else {
		if cap(tr.tpp) < tppLen {
			tr.tpp = make([]byte, tppLen)
		}
		rec.TPP = tr.tpp[:tppLen]
		if _, err := io.ReadFull(tr.r, rec.TPP); err != nil {
			return fmt.Errorf("trace: record %d TPP cut short: %w", tr.n, io.ErrUnexpectedEOF)
		}
	}
	tr.n++
	return nil
}

// Count returns the number of records read so far.
func (tr *Reader) Count() uint64 { return tr.n }

// ReadAll decodes every remaining record, with TPP bytes copied out so the
// results are independently owned — the convenience path for tools and
// tests, not replay hot loops.
func ReadAll(r io.Reader) ([]Rec, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Rec
	for {
		var rec Rec
		err := tr.Read(&rec)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if rec.TPP != nil {
			rec.TPP = append([]byte(nil), rec.TPP...)
		}
		out = append(out, rec)
	}
}
