package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"minions/internal/sim"
)

func rec(at int64, val float64) Record {
	return Record{At: at, App: "test", Kind: "v", Val: val}
}

func vals(rs []Record) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Val
	}
	return out
}

func TestPipelineFlushDelivers(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 4})
	p.Attach(&m)
	for i := 0; i < 3; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	if got := p.Spooled(); got != 3 {
		t.Fatalf("Spooled = %d, want 3", got)
	}
	p.Flush()
	if len(m.Records) != 3 {
		t.Fatalf("sink got %d records, want 3", len(m.Records))
	}
	for i, r := range m.Records {
		if r.At != int64(i) {
			t.Fatalf("record %d out of order: At=%d", i, r.At)
		}
	}
	st := p.Stats()
	if st.Published != 3 || st.Flushed != 3 {
		t.Fatalf("stats = %+v, want published=flushed=3", st)
	}
}

// TestPipelineBlockPolicy: a full spool under Block flushes inline — nothing
// is dropped and order is preserved across the forced flush.
func TestPipelineBlockPolicy(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 4, Policy: Block})
	p.Attach(&m)
	for i := 0; i < 10; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	if len(m.Records) != 10 {
		t.Fatalf("sink got %d records, want 10", len(m.Records))
	}
	for i, r := range m.Records {
		if r.Val != float64(i) {
			t.Fatalf("records reordered: %v", vals(m.Records))
		}
	}
	st := p.Stats()
	if st.DroppedOldest+st.DroppedNewest != 0 {
		t.Fatalf("Block policy dropped records: %+v", st)
	}
}

func TestPipelineDropOldest(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 4, Policy: DropOldest})
	p.Attach(&m)
	for i := 0; i < 10; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	want := []float64{6, 7, 8, 9}
	if got := vals(m.Records); len(got) != 4 || got[0] != 6 || got[3] != 9 {
		t.Fatalf("DropOldest kept %v, want %v", got, want)
	}
	if st := p.Stats(); st.DroppedOldest != 6 {
		t.Fatalf("DroppedOldest = %d, want 6", st.DroppedOldest)
	}
}

func TestPipelineDropNewest(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 4, Policy: DropNewest})
	p.Attach(&m)
	for i := 0; i < 10; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	if got := vals(m.Records); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("DropNewest kept %v, want [0 1 2 3]", got)
	}
	if st := p.Stats(); st.DroppedNewest != 6 {
		t.Fatalf("DroppedNewest = %d, want 6", st.DroppedNewest)
	}
}

// TestPipelineWrapAround exercises the ring seam: drain part of the spool,
// refill past the wrap point, and check order and batch splitting.
func TestPipelineWrapAround(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 4, Batch: 4})
	p.Attach(&m)
	for i := 0; i < 3; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	for i := 3; i < 7; i++ { // head is now 3; these wrap
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	for i, r := range m.Records {
		if r.Val != float64(i) {
			t.Fatalf("wrap-around reordered records: %v", vals(m.Records))
		}
	}
	// The wrapped drain must have split into two contiguous batches.
	if st := p.Stats(); st.Batches != 3 {
		t.Fatalf("Batches = %d, want 3 (1 + 2 across the seam)", st.Batches)
	}
}

func TestPipelineBatchCap(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 8, Batch: 3})
	p.Attach(&m)
	for i := 0; i < 8; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	if len(m.Records) != 8 {
		t.Fatalf("sink got %d records, want 8", len(m.Records))
	}
	if st := p.Stats(); st.Batches != 3 {
		t.Fatalf("Batches = %d, want 3 (3+3+2)", st.Batches)
	}
}

func TestPipelineIdleIsInert(t *testing.T) {
	p := NewPipeline(Config{Spool: 2, Policy: DropNewest})
	for i := 0; i < 100; i++ {
		p.Publish(rec(int64(i), 0))
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("idle pipeline accumulated stats: %+v", st)
	}
	if p.Active() {
		t.Fatal("Active = true with no sinks")
	}
}

// TestPipelineCloseEmitsSelfStats: Close appends one App="telemetry"
// Kind="stats" record carrying the drop counters, then closes sinks.
func TestPipelineCloseEmitsSelfStats(t *testing.T) {
	var m MemSink
	p := NewPipeline(Config{Spool: 2, Policy: DropNewest})
	p.Attach(&m)
	for i := 0; i < 5; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !m.Closed() {
		t.Fatal("Close did not close the sink")
	}
	last := m.Records[len(m.Records)-1]
	if last.App != "telemetry" || last.Kind != "stats" {
		t.Fatalf("last record = %+v, want telemetry/stats", last)
	}
	if last.Val != 3 { // 5 published into spool of 2 under DropNewest
		t.Fatalf("self-stats dropped count = %v, want 3", last.Val)
	}
	if last.Aux[0] != 2 { // published (accepted) records
		t.Fatalf("self-stats published = %d, want 2", last.Aux[0])
	}
}

type failSink struct{ n int }

func (f *failSink) Write([]Record) error { f.n++; return errors.New("sink down") }
func (f *failSink) Close() error         { return nil }

// TestPipelineSinkErrorLatched: a failing sink is counted and latched but
// does not stop delivery to healthy sinks or wedge the spool.
func TestPipelineSinkErrorLatched(t *testing.T) {
	var m MemSink
	var f failSink
	p := NewPipeline(Config{Spool: 4})
	p.Attach(&f)
	p.Attach(&m)
	p.Publish(rec(1, 1))
	p.Flush()
	if p.Err() == nil || !strings.Contains(p.Err().Error(), "sink down") {
		t.Fatalf("Err = %v, want latched sink error", p.Err())
	}
	if len(m.Records) != 1 {
		t.Fatalf("healthy sink got %d records, want 1", len(m.Records))
	}
	if st := p.Stats(); st.SinkErrors != 1 || st.Flushed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFlushEvery: the periodic flusher drains the spool on the virtual
// clock and stops cleanly.
func TestFlushEvery(t *testing.T) {
	eng := sim.New(1)
	var m MemSink
	p := NewPipeline(Config{Spool: 64})
	p.Attach(&m)
	stop := p.FlushEvery(eng, sim.Millisecond)

	eng.At(sim.Time(500*sim.Microsecond), func() { p.Publish(rec(1, 1)) })
	eng.At(sim.Time(1500*sim.Microsecond), func() { p.Publish(rec(2, 2)) })
	eng.RunUntil(sim.Time(2500 * sim.Microsecond))
	if len(m.Records) != 2 {
		t.Fatalf("periodic flush delivered %d records, want 2", len(m.Records))
	}

	stop()
	p.Publish(rec(3, 3))
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	if len(m.Records) != 2 {
		t.Fatal("flusher kept running after stop")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, want := range []Policy{Block, DropOldest, DropNewest} {
		got, err := ParsePolicy(want.String())
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus policy")
	}
}

func TestUDPSinkFraming(t *testing.T) {
	var frames [][]byte
	w := writerFunc(func(b []byte) (int, error) {
		frames = append(frames, append([]byte(nil), b...))
		return len(b), nil
	})
	u := NewUDPSink(w, 128)
	p := NewPipeline(Config{Spool: 64})
	p.Attach(u)
	for i := 0; i < 10; i++ {
		p.Publish(rec(int64(i), float64(i)))
	}
	p.Flush()
	if err := u.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(frames) == 0 {
		t.Fatal("no datagrams sent")
	}
	var joined bytes.Buffer
	for _, f := range frames {
		if len(f) > 128 {
			t.Fatalf("datagram exceeds MTU: %d bytes", len(f))
		}
		if f[len(f)-1] != '\n' {
			t.Fatal("datagram splits a record (no trailing newline)")
		}
		joined.Write(f)
	}
	lines := strings.Split(strings.TrimRight(joined.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("reassembled %d records, want 10", len(lines))
	}
	if u.Oversize != 0 {
		t.Fatalf("Oversize = %d, want 0", u.Oversize)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }
