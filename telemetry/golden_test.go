package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecords is a spread of representative records: integer and
// fractional floats, zero and max-ish aux values, an empty note, a note
// needing every escape class, and non-ASCII app text.
var goldenRecords = []Record{
	{At: 0, App: "microburst", Kind: "sample", Node: 0, Val: 0},
	{At: 1_500_000, App: "microburst", Kind: "sample", Node: 12, Val: 0.75, Aux: [3]uint64{3, 0, 0}},
	{At: 2_000_000, App: "rcp", Kind: "rate", Node: 7, Val: 96.875, Aux: [3]uint64{7001, 0, 0}},
	{At: 3_141_592, App: "ndb", Kind: "violation", Node: 2, Val: 1, Aux: [3]uint64{42, 5, 1}, Note: "path deviated at hop 3"},
	{At: 4_000_000, App: "conga", Kind: "path", Node: 1, Val: 12.5, Aux: [3]uint64{0xFFFF, 1, 2}},
	{At: 5_000_000, App: "telemetry", Kind: "stats", Val: 6, Aux: [3]uint64{100, 94, 2}},
	{At: 6_000_000, App: "esc", Kind: "note", Val: -1.25, Note: "quote\" slash\\ tab\t nl\n ctrl\x01 ünïcode"},
	{At: 9_223_372_036_854_775_807, App: "edge", Kind: "max", Node: 18_446_744_073_709_551_615, Val: 1e-9, Aux: [3]uint64{1, 2, 3}},
	// The integral fast path's boundary: the largest magnitudes it takes,
	// the first values past it (where 'g' switches to exponent form), and
	// negative zero, which must keep its sign via the float path.
	{At: 7_000_000, App: "edge", Kind: "intmax", Val: 999_999, Aux: [3]uint64{0, 0, 0}},
	{At: 7_000_001, App: "edge", Kind: "intmin", Val: -999_999},
	{At: 7_000_002, App: "edge", Kind: "exp", Val: 1e6},
	{At: 7_000_003, App: "edge", Kind: "expneg", Val: -1e6},
	{At: 7_000_004, App: "edge", Kind: "negzero", Val: math.Copysign(0, -1)},
}

// TestNDJSONGolden pins the NDJSON schema byte for byte. The golden file is
// the interop contract for external consumers; a diff here is a breaking
// format change and needs a deliberate decision, not a test update.
func TestNDJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	if err := s.Write(goldenRecords); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "records.golden.ndjson")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("NDJSON output diverges from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestNDJSONIsValidJSON: every line the sink emits must parse with the
// standard library decoder and round-trip the field values — the escaping
// fast path may never produce invalid JSON.
func TestNDJSONIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	if err := s.Write(goldenRecords); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	for i := range goldenRecords {
		var got struct {
			At   int64     `json:"at"`
			App  string    `json:"app"`
			Kind string    `json:"kind"`
			Node uint64    `json:"node"`
			Val  float64   `json:"val"`
			Aux  [3]uint64 `json:"aux"`
			Note string    `json:"note"`
		}
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		want := goldenRecords[i]
		if got.At != want.At || got.App != want.App || got.Kind != want.Kind ||
			got.Node != want.Node || got.Val != want.Val || got.Aux != want.Aux ||
			got.Note != want.Note {
			t.Fatalf("line %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}
