package telemetry

import (
	"fmt"

	"minions/internal/sim"
)

// Policy selects what Publish does when the spool ring is full. Whichever
// policy is chosen, the pipeline accounts for it: Block shows up as extra
// Batches, the drop policies as DroppedOldest/DroppedNewest in Stats.
type Policy uint8

const (
	// Block flushes the spool inline on the publishing goroutine and then
	// spools the record. Nothing is lost, at the price of sink latency
	// intruding on the simulation thread. The default.
	Block Policy = iota
	// DropOldest overwrites the oldest unspooled record, keeping the
	// newest data — the right policy for gauges where only the latest
	// value matters.
	DropOldest
	// DropNewest discards the record being published, keeping the oldest
	// data — the right policy for event logs where the earliest records
	// establish context.
	DropNewest
)

// String names the policy for flags and reports.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy resolves a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "drop-newest":
		return DropNewest, nil
	}
	return Block, fmt.Errorf("telemetry: unknown policy %q (want block, drop-oldest or drop-newest)", s)
}

// Config parameterizes a Pipeline. The zero value is usable: a 1024-record
// spool, whole-spool batches, Block backpressure.
type Config struct {
	// Spool is the ring capacity in records (default 1024). This bounds
	// the pipeline's memory: all spool storage is allocated up front.
	Spool int
	// Batch caps how many records one Sink.Write call receives (default:
	// the spool size). Smaller batches bound sink call latency.
	Batch int
	// Policy is the backpressure policy when the spool fills.
	Policy Policy
}

// Stats are the pipeline's self-telemetry counters, readable at any time
// and emitted as a final Record (App "telemetry", Kind "stats") at Close so
// drop behavior lands in the export itself.
type Stats struct {
	Published     uint64 // records accepted into the spool
	Flushed       uint64 // records delivered to sinks
	DroppedOldest uint64 // records overwritten under DropOldest
	DroppedNewest uint64 // records discarded under DropNewest
	Batches       uint64 // Sink.Write calls issued
	SinkErrors    uint64 // Sink.Write calls that returned an error
}

// Pipeline is a bounded spool of Records draining to attached Sinks. It is
// single-goroutine like the simulation itself: Publish, Flush and Close
// must be called from one goroutine (in sharded runs, attach the pipeline
// to single-shard experiments or serialize externally — see testbed).
//
// With no sink attached the pipeline is inert: Publish tests one bool and
// returns, so a wired-but-idle pipeline costs nothing on the sim thread.
type Pipeline struct {
	cfg   Config
	sinks []Sink
	live  bool // len(sinks) > 0, checked first on every Publish

	ring  []Record
	head  int // index of oldest spooled record
	count int // spooled records

	stats   Stats
	lastErr error
}

// NewPipeline creates a pipeline with cfg's spool, batch and policy.
func NewPipeline(cfg Config) *Pipeline {
	if cfg.Spool <= 0 {
		cfg.Spool = 1024
	}
	if cfg.Batch <= 0 || cfg.Batch > cfg.Spool {
		cfg.Batch = cfg.Spool
	}
	return &Pipeline{cfg: cfg, ring: make([]Record, cfg.Spool)}
}

// Attach adds a sink. Sinks receive batches in attachment order; a sink
// error is counted and latched (Err) but does not stop delivery to others.
func (p *Pipeline) Attach(s Sink) {
	p.sinks = append(p.sinks, s)
	p.live = true
}

// Active reports whether any sink is attached. Producers building records
// beyond a plain field copy should gate on it.
func (p *Pipeline) Active() bool { return p.live }

// Publish spools one record. With no sink attached it returns immediately;
// with the spool full it applies the configured Policy. Publish performs no
// heap allocation on any path (the Block policy may spend sink I/O time
// inline, but the record copy itself stays allocation-free).
func (p *Pipeline) Publish(r Record) {
	if !p.live {
		return
	}
	if p.count == len(p.ring) {
		switch p.cfg.Policy {
		case Block:
			p.Flush()
		case DropOldest:
			p.head++
			if p.head == len(p.ring) {
				p.head = 0
			}
			p.count--
			p.stats.DroppedOldest++
		case DropNewest:
			p.stats.DroppedNewest++
			return
		}
	}
	i := p.head + p.count
	if i >= len(p.ring) {
		i -= len(p.ring)
	}
	p.ring[i] = r
	p.count++
	p.stats.Published++
}

// Flush drains the spool to every sink in batches of at most Config.Batch
// records. Each batch is passed as one contiguous slice of the ring, so a
// wrap-around drain takes two Write calls rather than copying.
func (p *Pipeline) Flush() {
	for p.count > 0 {
		n := p.count
		if n > p.cfg.Batch {
			n = p.cfg.Batch
		}
		if tail := len(p.ring) - p.head; n > tail {
			n = tail
		}
		batch := p.ring[p.head : p.head+n]
		for _, s := range p.sinks {
			p.stats.Batches++
			if err := s.Write(batch); err != nil {
				p.stats.SinkErrors++
				p.lastErr = err
			}
		}
		p.head += n
		if p.head == len(p.ring) {
			p.head = 0
		}
		p.count -= n
		p.stats.Flushed += uint64(n)
	}
}

// Stats returns a copy of the pipeline's counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Err returns the most recent sink error, if any. Errors are latched, not
// fatal: the pipeline keeps flushing.
func (p *Pipeline) Err() error { return p.lastErr }

// Spooled returns the number of records currently buffered.
func (p *Pipeline) Spooled() int { return p.count }

// Close emits the pipeline's own Stats as a final self-telemetry record
// (App "telemetry", Kind "stats": Val = records dropped, Aux = published /
// flushed / batches), flushes, and closes every sink. The pipeline must not
// be used after Close.
func (p *Pipeline) Close() error {
	if p.live {
		p.Flush() // drain first so no drop policy can claim the stats record
		st := p.stats
		p.Publish(Record{
			App:  "telemetry",
			Kind: "stats",
			Val:  float64(st.DroppedOldest + st.DroppedNewest),
			Aux:  [3]uint64{st.Published, st.Flushed, st.Batches},
		})
		p.Flush()
	}
	err := p.lastErr
	for _, s := range p.sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	p.sinks = nil
	p.live = false
	return err
}

// flusher is the resident handler behind FlushEvery: a repeating flush on
// the simulation clock with the same generation-stamp shape as app.Periodic,
// so arming it costs no per-tick closures.
type flusher struct {
	p     *Pipeline
	eng   *sim.Engine
	every sim.Time
	gen   uint64
	on    bool
}

// Handle implements sim.Handler.
func (f *flusher) Handle(gen uint64) {
	if !f.on || gen != f.gen {
		return
	}
	f.p.Flush()
	if f.on && gen == f.gen {
		f.eng.ScheduleAfter(f.every, f, f.gen)
	}
}

// FlushEvery arms a periodic flush on eng's virtual clock and returns a stop
// function. Periodic flushing keeps sink output fresh during long runs and
// keeps the Block policy from ever engaging when the publish rate fits the
// flush budget.
func (p *Pipeline) FlushEvery(eng *sim.Engine, every sim.Time) (stop func()) {
	f := &flusher{p: p, eng: eng, every: every, on: true}
	f.gen = 1
	eng.ScheduleAfter(every, f, f.gen)
	return func() { f.on = false }
}
