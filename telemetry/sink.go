package telemetry

import (
	"io"
	"math"
	"strconv"
	"unicode/utf8"
)

// Sink receives flushed record batches. Write is called on the flushing
// goroutine with a slice that aliases the pipeline's ring — a sink must
// consume it before returning and must not retain it. Close flushes any
// sink-local buffering and releases resources.
type Sink interface {
	Write(batch []Record) error
	Close() error
}

// MemSink buffers every flushed record in memory — the sink for tests and
// for experiments that post-process records in process.
type MemSink struct {
	Records []Record
	closed  bool
}

// Write implements Sink by appending copies of the batch.
func (m *MemSink) Write(batch []Record) error {
	m.Records = append(m.Records, batch...)
	return nil
}

// Close implements Sink.
func (m *MemSink) Close() error { m.closed = true; return nil }

// Closed reports whether Close was called (for pipeline-lifecycle tests).
func (m *MemSink) Closed() bool { return m.closed }

// NDJSONSink renders records as newline-delimited JSON, one object per
// line, into an io.Writer. The schema is pinned by golden tests and is a
// stable interop surface:
//
//	{"at":1500000,"app":"microburst","kind":"sample","node":12,"val":0.75,"aux":[3,0,0]}
//
// with an optional trailing "note" member when Record.Note is non-empty.
// Numbers are rendered with strconv (shortest round-trippable float form),
// never via reflection, and the line buffer is reused across batches, so
// encoding settles to zero allocations per record.
type NDJSONSink struct {
	w   io.Writer
	buf []byte
}

// NewNDJSONSink creates an NDJSON sink writing to w. If w implements
// interface{ Flush() error } (e.g. *bufio.Writer), Close flushes it; the
// underlying writer is never closed by the sink.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: w, buf: make([]byte, 0, 4096)}
}

// Write implements Sink: one JSON line per record, one io.Writer call per
// batch.
func (s *NDJSONSink) Write(batch []Record) error {
	s.buf = s.buf[:0]
	for i := range batch {
		s.buf = AppendRecordJSON(s.buf, &batch[i])
		s.buf = append(s.buf, '\n')
	}
	_, err := s.w.Write(s.buf)
	return err
}

// Close implements Sink, flushing the underlying writer when it can.
func (s *NDJSONSink) Close() error {
	if f, ok := s.w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// AppendRecordJSON appends r's pinned NDJSON object (without newline) to
// dst and returns the extended slice, allocating only when dst must grow.
// It is exported so tools (cmd/tppdump, cmd/benchjson) render records
// byte-identically to the sink.
func AppendRecordJSON(dst []byte, r *Record) []byte {
	dst = append(dst, `{"at":`...)
	dst = strconv.AppendInt(dst, r.At, 10)
	dst = append(dst, `,"app":`...)
	dst = appendJSONString(dst, r.App)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, r.Kind)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendUint(dst, r.Node, 10)
	dst = append(dst, `,"val":`...)
	// Small integral values (the common case for counters and occupancies)
	// render identically to 'g' formatting via the much cheaper integer
	// path. The bound is where 'g' switches to exponent form (1e6 for
	// shortest-form precision), and negative zero must take the float path
	// to keep its sign.
	if iv := int64(r.Val); r.Val == float64(iv) && iv > -1e6 && iv < 1e6 &&
		!(iv == 0 && math.Signbit(r.Val)) {
		dst = strconv.AppendInt(dst, iv, 10)
	} else {
		dst = strconv.AppendFloat(dst, r.Val, 'g', -1, 64)
	}
	dst = append(dst, `,"aux":[`...)
	for i, a := range r.Aux {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, a, 10)
	}
	dst = append(dst, ']')
	if r.Note != "" {
		dst = append(dst, `,"note":`...)
		dst = appendJSONString(dst, r.Note)
	}
	return append(dst, '}')
}

// appendJSONString appends s as a JSON string literal. The fast path copies
// plain ASCII unescaped; anything needing escapes takes the rune-by-rune
// path. Producers on hot paths use constant App/Kind values, which the fast
// path handles without a branch per byte beyond the scan.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	plain := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			plain = false
			break
		}
	}
	if plain {
		dst = append(dst, s...)
		return append(dst, '"')
	}
	for _, r := range s {
		switch {
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xf])
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}

// UDPSink frames NDJSON record lines into datagram-sized payloads: each
// Write to the underlying writer carries as many whole lines as fit in MTU
// bytes, never splitting a record across datagrams, mirroring how a
// collector would receive them off the wire. It works over any io.Writer —
// a *net.UDPConn in live use, a byte-slice recorder in tests — and counts
// datagrams and oversized records.
type UDPSink struct {
	w   io.Writer
	mtu int
	buf []byte
	rec []byte

	// Datagrams counts writes issued; Oversize counts records whose single
	// line exceeded the MTU and were sent alone in an over-MTU datagram
	// rather than dropped silently.
	Datagrams uint64
	Oversize  uint64
}

// DefaultMTU is the default UDP payload budget: 1500-byte Ethernet minus
// IPv4 and UDP headers.
const DefaultMTU = 1472

// NewUDPSink creates a datagram-framing sink over w. mtu <= 0 selects
// DefaultMTU.
func NewUDPSink(w io.Writer, mtu int) *UDPSink {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	return &UDPSink{w: w, mtu: mtu, buf: make([]byte, 0, mtu)}
}

// Write implements Sink: records are packed into MTU-bounded datagrams and
// any partial datagram is held for the next batch (Close sends it).
func (u *UDPSink) Write(batch []Record) error {
	for i := range batch {
		u.rec = AppendRecordJSON(u.rec[:0], &batch[i])
		u.rec = append(u.rec, '\n')
		if len(u.buf)+len(u.rec) > u.mtu && len(u.buf) > 0 {
			if err := u.send(); err != nil {
				return err
			}
		}
		if len(u.rec) > u.mtu {
			u.Oversize++
		}
		u.buf = append(u.buf, u.rec...)
		if len(u.buf) >= u.mtu {
			if err := u.send(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (u *UDPSink) send() error {
	u.Datagrams++
	_, err := u.w.Write(u.buf)
	u.buf = u.buf[:0]
	return err
}

// Close implements Sink, sending any partial datagram.
func (u *UDPSink) Close() error {
	if len(u.buf) > 0 {
		return u.send()
	}
	return nil
}
