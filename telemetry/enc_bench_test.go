package telemetry

import "testing"

// BenchmarkAppendRecordJSON is the per-record encode cost every NDJSON and
// UDP sink pays at flush time. The record shape matches the scale harness's
// hop samples: small integral Val (integer fast path), constant App/Kind.
func BenchmarkAppendRecordJSON(b *testing.B) {
	r := Record{At: 123456789, App: "scale", Kind: "hop", Node: 1048576, Val: 3, Aux: [3]uint64{2, 17, 33}}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRecordJSON(buf[:0], &r)
	}
}

// BenchmarkAppendRecordJSONFloat is the same with a fractional Val, forcing
// the full shortest-form float formatter.
func BenchmarkAppendRecordJSONFloat(b *testing.B) {
	r := Record{At: 123456789, App: "scale", Kind: "hop", Node: 1048576, Val: 3.14159, Aux: [3]uint64{2, 17, 33}}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRecordJSON(buf[:0], &r)
	}
}
