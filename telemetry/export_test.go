package telemetry_test

import (
	"testing"

	"minions/telemetry"
	"minions/tppnet/app"
)

type sample struct {
	at   int64
	node uint64
	occ  float64
}

func TestExportBridgesStream(t *testing.T) {
	var s app.Stream[sample]
	var m telemetry.MemSink
	p := telemetry.NewPipeline(telemetry.Config{Spool: 16})
	p.Attach(&m)

	cancel := telemetry.Export(&s, p, func(v sample) telemetry.Record {
		return telemetry.Record{At: v.at, App: "test", Kind: "occ", Node: v.node, Val: v.occ}
	})

	s.Publish(sample{at: 10, node: 3, occ: 0.5})
	s.Publish(sample{at: 20, node: 4, occ: 0.9})
	p.Flush()
	if len(m.Records) != 2 {
		t.Fatalf("exported %d records, want 2", len(m.Records))
	}
	if r := m.Records[1]; r.At != 20 || r.Node != 4 || r.Val != 0.9 {
		t.Fatalf("record = %+v", r)
	}

	cancel()
	s.Publish(sample{at: 30})
	p.Flush()
	if len(m.Records) != 2 {
		t.Fatal("cancelled export still publishing")
	}
}

// TestExportIdleZeroAlloc: a stream bridged into a pipeline with no sinks
// must add nothing to the publisher's cost — the Export subscriber bails
// before encoding.
func TestExportIdleZeroAlloc(t *testing.T) {
	var s app.Stream[sample]
	p := telemetry.NewPipeline(telemetry.Config{})
	telemetry.Export(&s, p, func(v sample) telemetry.Record {
		return telemetry.Record{At: v.at, Val: v.occ}
	})
	v := sample{at: 5, occ: 0.25}
	allocs := testing.AllocsPerRun(1000, func() { s.Publish(v) })
	if allocs != 0 {
		t.Fatalf("idle exported Publish allocates %.2f/event, want 0", allocs)
	}
}
