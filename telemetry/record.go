// Package telemetry is the streaming export layer of the simulator: a
// publisher → spooler → sink pipeline that carries typed application events
// (app.Stream values, per-hop TPP records, experiment series) out of the
// process without perturbing the simulation hot path.
//
// The design splits the cost asymmetrically. Publish is the hot side — it
// runs on the simulation goroutine, copies one fixed-size Record into a
// bounded ring spool, and allocates nothing; when the spool is full an
// explicit backpressure policy decides whether to block (flush inline),
// drop the oldest records, or drop the newest. Flush is the cold side — it
// drains the spool in batches to every attached Sink (NDJSON file, UDP
// datagram, in-memory buffer), either on demand, periodically on the
// simulation clock (FlushEvery), or at Close.
//
//	pipe := telemetry.NewPipeline(telemetry.Config{Spool: 4096})
//	pipe.Attach(telemetry.NewNDJSONSink(f))
//	cancel := telemetry.Export(monitor.SampleStream(), pipe,
//	        func(s microburst.Sample) telemetry.Record { ... })
//	...
//	pipe.Close()
//
// A pipeline with no sinks attached is free: Publish checks one bool and
// returns, so applications can wire exports unconditionally and pay only
// when somebody is listening. Drops are never silent — the pipeline counts
// them (Stats) and emits its own counters as a final self-telemetry record
// at Close.
//
// Subpackage telemetry/trace defines the versioned binary format for
// recorded TPP-annotated packet traces and the capture hooks that write it;
// package internal/trafficgen replays such traces as a deterministic
// traffic source.
package telemetry

// Record is the pipeline's fixed-size unit of export: one telemetry event,
// flattened to value fields so spooling it is a plain copy with no heap
// traffic. Typed app streams are bridged to Records by the codec function
// given to Export.
//
// The fields are deliberately generic — At is the simulation timestamp in
// nanoseconds, App/Kind name the producer and event type, Node locates the
// event in the topology, Val carries the one scalar most events are about,
// and Aux holds up to three event-specific integers (ports, packet IDs,
// hop counts). Note is optional free text; producers on hot paths leave it
// empty and pass pre-interned constants for App and Kind so no per-record
// string is built.
type Record struct {
	At   int64   // simulation time, ns
	App  string  // producing application ("microburst", "rcp", ...)
	Kind string  // event type within the app ("sample", "rate", ...)
	Node uint64  // topology node the event concerns, 0 if n/a
	Val  float64 // primary scalar (occupancy fraction, Mb/s, ...)
	Aux  [3]uint64
	Note string // optional detail; empty on hot paths
}
