package telemetry

import (
	"io"
	"testing"
)

// TestPublishIdleZeroAlloc pins the satellite guarantee: a wired-but-idle
// pipeline (no sinks attached) costs nothing on the simulation thread.
func TestPublishIdleZeroAlloc(t *testing.T) {
	p := NewPipeline(Config{Spool: 64})
	r := Record{At: 1, App: "guard", Kind: "idle", Val: 1.5, Aux: [3]uint64{1, 2, 3}}
	allocs := testing.AllocsPerRun(1000, func() { p.Publish(r) })
	if allocs != 0 {
		t.Fatalf("idle Publish allocates %.2f/record, want 0", allocs)
	}
}

// TestPublishSpoolZeroAlloc: spooling into the ring (no flush triggered) is
// a plain copy.
func TestPublishSpoolZeroAlloc(t *testing.T) {
	var m MemSink
	m.Records = make([]Record, 0, 1<<20)
	p := NewPipeline(Config{Spool: 1 << 16})
	p.Attach(&m)
	r := Record{At: 1, App: "guard", Kind: "spool", Val: 1.5}
	allocs := testing.AllocsPerRun(1000, func() { p.Publish(r) })
	if allocs != 0 {
		t.Fatalf("spooling Publish allocates %.2f/record, want 0", allocs)
	}
}

// TestBatchingPathZeroAlloc drives full publish→flush→NDJSON-encode cycles
// and requires the steady state to allocate nothing per record: the ring,
// the encoder's line buffer and the sink path must all be reused.
func TestBatchingPathZeroAlloc(t *testing.T) {
	p := NewPipeline(Config{Spool: 64, Policy: Block})
	p.Attach(NewNDJSONSink(io.Discard))
	r := Record{At: 123456789, App: "guard", Kind: "batch", Node: 42, Val: 0.75, Aux: [3]uint64{7, 8, 9}}
	// Warm up: let the encoder buffer grow to its steady-state size.
	for i := 0; i < 256; i++ {
		p.Publish(r)
	}
	p.Flush()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			p.Publish(r)
		}
		p.Flush()
	})
	if perRecord := allocs / 64; perRecord != 0 {
		t.Fatalf("batching path allocates %.3f/record (%.1f/cycle), want 0", perRecord, allocs)
	}
}

// TestUDPSinkZeroAlloc: the datagram-framing path is also reusable-buffer
// only in steady state.
func TestUDPSinkZeroAlloc(t *testing.T) {
	p := NewPipeline(Config{Spool: 64, Policy: Block})
	p.Attach(NewUDPSink(io.Discard, 0))
	r := Record{At: 1, App: "guard", Kind: "udp", Val: 2.5}
	for i := 0; i < 256; i++ {
		p.Publish(r)
	}
	p.Flush()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			p.Publish(r)
		}
		p.Flush()
	})
	if perRecord := allocs / 64; perRecord != 0 {
		t.Fatalf("UDP batching path allocates %.3f/record, want 0", perRecord)
	}
}
