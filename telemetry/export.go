package telemetry

import "minions/tppnet/app"

// Export bridges a typed application stream into a pipeline: every
// published value is encoded to a Record by enc and spooled. It returns the
// subscription's cancel function.
//
// The encoder runs on the publishing (simulation) goroutine, so it must be
// cheap and allocation-free — flatten fields into the Record, don't format
// strings. Applications whose events need gating beyond that should check
// pipe.Active() themselves before building the value.
func Export[T any](s *app.Stream[T], pipe *Pipeline, enc func(T) Record) (cancel func()) {
	return s.Subscribe(func(v T) {
		if !pipe.live {
			return
		}
		pipe.Publish(enc(v))
	})
}
