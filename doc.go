// Package minions is a from-scratch Go reproduction of "Millions of Little
// Minions: Using Packets for Low Latency Network Programming and Visibility"
// (Jeyakumar, Alizadeh, Geng, Kim, Mazières — SIGCOMM 2014).
//
// The public API lives in two packages:
//
//   - minions/tpp — the tiny packet program wire format, instruction set,
//     assembler and execution engine;
//   - minions/testbed — simulated TPP-capable networks, the end-host stack,
//     the paper's four applications (RCP*, CONGA*, NetSight, OpenSketch
//     refactorings) and one runner per table/figure of the evaluation.
//
// The benchmarks in bench_test.go regenerate every table and figure; run
//
//	go test -bench=. -benchmem
//
// or use cmd/experiments for paper-style table output.
package minions
