// Package minions is a from-scratch Go reproduction of "Millions of Little
// Minions: Using Packets for Low Latency Network Programming and Visibility"
// (Jeyakumar, Alizadeh, Geng, Kim, Mazières — SIGCOMM 2014).
//
// The public API is layered across three packages:
//
//   - minions/tpp — the tiny packet program itself: wire format and
//     instruction set, the typed Builder and exported switch-memory address
//     constants for constructing programs without string assembly, the
//     pseudo-assembly assembler/disassembler (both forms encode to identical
//     bytes), and the execution engine — a one-shot Exec plus the reusable,
//     allocation-free Executor with batch execution for hot paths.
//
//   - minions/tppnet — the network facade: simulated TPP-capable switches
//     and end hosts, links, the TPP-CP control plane, and the paper's
//     topologies, created with functional options
//     (tppnet.NewNetwork(tppnet.WithSeed(1)), net.Dumbbell(6, 100)).
//     tppnet.WithShards(n) runs the network as n topology shards under a
//     conservative parallel discrete-event scheme — one engine, packet pool
//     and goroutine per shard, synchronized in lookahead epochs — with
//     results byte-identical to the single-engine simulation. Each engine
//     schedules events on a hierarchical timing wheel with amortized O(1)
//     push/pop (tppnet.WithScheduler selects the O(log n) binary-heap
//     reference instead); scheduler choice moves wall-clock speed only,
//     never simulated behavior.
//
//   - minions/testbed — the reproduction harness on top of both: the
//     paper's four applications (RCP*, CONGA*, NetSight, OpenSketch
//     refactorings) and one runner per table/figure of the evaluation.
//
// The benchmarks in bench_test.go regenerate every table and figure; run
//
//	go test -bench=. -benchmem
//
// or use cmd/experiments for paper-style table output. EXPERIMENTS.md
// records paper-vs-measured values per figure and table.
package minions
