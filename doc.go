// Package minions is a from-scratch Go reproduction of "Millions of Little
// Minions: Using Packets for Low Latency Network Programming and Visibility"
// (Jeyakumar, Alizadeh, Geng, Kim, Mazières — SIGCOMM 2014).
//
// The public API is layered across seven package groups, lowest first:
//
//   - minions/tpp — the tiny packet program itself: wire format and
//     instruction set, the typed Builder and exported switch-memory address
//     constants for constructing programs without string assembly, the
//     pseudo-assembly assembler/disassembler (both forms encode to identical
//     bytes), and the execution engine — a one-shot Exec plus the reusable,
//     allocation-free Executor with batch execution for hot paths.
//
//   - minions/tppnet — the network facade: simulated TPP-capable switches
//     and end hosts, links, the TPP-CP control plane, and the paper's
//     topologies, created with functional options
//     (tppnet.NewNetwork(tppnet.WithSeed(1)), net.Dumbbell(6, 100)).
//     tppnet.WithShards(n) runs the network as n topology shards under an
//     asynchronous conservative parallel discrete-event scheme — per-channel
//     lookahead, lock-free cross-shard mailboxes, persistent shard workers —
//     with results byte-identical to the single-engine simulation
//     (tppnet.WithSyncMode selects the global-epoch reference instead); each
//     engine schedules events on an amortized-O(1) hierarchical timing wheel
//     (tppnet.WithScheduler selects the binary-heap reference instead).
//     Its subpackage minions/tppnet/app is the application framework: the
//     app.App contract every minion application implements (Attach → Start
//     → Stop → Close), the resource-tracking app.Base, allocation-free
//     app.Periodic probe timers, and typed app.Stream telemetry. Writing
//     your own minion is a supported, first-class use — see
//     Example_customApp in tppnet/app.
//
//   - minions/apps/* — the five §2 applications of the paper as public
//     packages on the app contract, each with the uniform New(cfg) →
//     Attach → Start shape: apps/rcp (RCP* rate control, §2.2), apps/conga
//     (CONGA* flowlet load balancing, §2.4), apps/microburst (per-packet
//     queue visibility, §2.1), apps/ndb (NetSight packet histories,
//     netwatch policy checking and loss localization, §2.3) and
//     apps/sketch (OpenSketch-style distributed measurement, §2.5).
//     Several applications run concurrently on one network under the
//     control plane's memory-grant isolation.
//
//   - minions/tppnet/faults — the deterministic fault-injection plane,
//     sitting between the network facade and the applications: seedable
//     link flaps (exponential MTTF/MTTR), Bernoulli and Gilbert-Elliott
//     packet loss, TPP-memory corruption, serialization jitter, switch
//     halt/restart and fixed-time scripted events, armed through
//     tppnet.WithFaults(plan) and injected at the link transmit path and
//     switch ingress behind nil checks that leave the no-fault hot path
//     allocation-free. Identical (topology, workload, plan) tuples replay
//     byte-identically across runs, shard counts and schedulers; the apps
//     layer above is built to survive it (CONGA* dead-path reroute, RCP*
//     missed-round rate decay, host executor retry with backoff), and
//     faults.Export/ExportDrops make chaos runs observable through the
//     telemetry layer below. testbed.RunChaos is the ready-made scenario.
//
//   - minions/telemetry — the export layer: a bounded, allocation-free
//     record pipeline (publisher → spool → sink) with NDJSON, UDP-datagram
//     and in-memory sinks and Block/DropOldest/DropNewest backpressure
//     policies; telemetry.Export bridges any typed app.Stream into it, and
//     each apps/* package ships a canonical record encoder. Its subpackage
//     minions/telemetry/trace is the versioned binary packet-trace format:
//     trace.Start taps every host transmit of a running simulation, and a
//     captured trace replays through internal/trafficgen into a rebuilt
//     topology with byte-identical results. cmd/tppdump decodes, filters
//     and summarizes trace files.
//
//   - minions/workload — the scriptable traffic engine that feeds all of
//     the above: a declarative, seedable workload.Spec (heavy-tailed
//     flow-size distributions with the empirical web-search/data-mining
//     CDFs, lognormal and bounded-Pareto families; elephant/mice message
//     mixes; partition-aggregate incast; ON/OFF bursty sources;
//     token-bucket pacing) compiled by Spec.Attach into resident,
//     allocation-free simulator handlers. Sampling is O(1) inverse-CDF /
//     alias tables; the compiled runner pre-commits pool, queue-ring and
//     TPP-buffer headroom so warmed runs hold 0 allocs/pkt-hop, and its
//     Fingerprint is byte-identical across shard counts, sync modes and
//     schedulers.
//
//   - minions/testbed — the reproduction harness on top of all of the
//     above: one runner per table/figure of the evaluation, parameterized
//     by a single SimOpts option struct (seed, shards, scheduler), with
//     trace-captured and replayed variants of the Figure 2 and Figure 4
//     runners, a telemetry-export hook on the fat-tree scale harness,
//     canned workload specs (WorkloadHeavyTail, WorkloadIncastFatTree)
//     accepted by ScaleConfig/ChaosConfig, and workload-axis reruns of the
//     paper apps (RunFig1Workload, RunRCPWorkload).
//
// The benchmarks in bench_test.go regenerate every table and figure; run
//
//	go test -bench=. -benchmem
//
// or use cmd/experiments for paper-style table output. EXPERIMENTS.md
// records paper-vs-measured values per figure and table, plus the
// performance, parallel-scaling, scheduler and application-layer notes of
// later PRs.
package minions
