package workload

import (
	"math"
	"strings"
	"testing"

	"minions/internal/sim"
	"minions/internal/topo"
)

// heavyTailTestSpec is an elephant/mice mix: bursty web-search mice plus
// token-bucket-paced lognormal elephants — both size classes clamped so a
// single draw cannot flood a 100 Mb/s dumbbell for the whole test.
func heavyTailTestSpec(seed int64) Spec {
	return Spec{Seed: seed, Groups: []Group{{
		Name: "heavy-tail",
		Messages: &MessageSpec{
			Classes: []Class{
				{Name: "mice", Weight: 0.9, Sizes: WebSearch().Clamped(500, 60_000)},
				{Name: "elephants", Weight: 0.1, Sizes: Lognormal(math.Log(400_000), 1).Clamped(100_000, 2_000_000), RateBps: 20_000_000},
			},
			Load: 0.25,
		},
	}}}
}

func TestHeavyTailSpecDelivers(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 6, 100)
	r, err := heavyTailTestSpec(42).Attach(hosts)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(2 * sim.Second)
	gs := r.Stats()[0]
	if gs.Messages == 0 || gs.Packets == 0 || gs.RxBytes == 0 {
		t.Fatalf("no traffic: %+v", gs)
	}
	// Both classes must have fired: with 90/10 weights over this many
	// arrivals, offered bytes must include multi-100kB elephants.
	if gs.Bytes < gs.Messages*1000 {
		t.Fatalf("offered bytes %d implausibly small for %d messages", gs.Bytes, gs.Messages)
	}
	for i, s := range r.Sinks {
		if s.Packets == 0 {
			t.Errorf("host %d received nothing", i)
		}
	}
}

// TestWorkloadZeroAllocs guards the tentpole invariant: a warmed heavy-tail
// elephant/mice workload — Poisson arrivals, alias-table class picks,
// inverse-CDF size draws, burst sends, token-bucket pacing, deliveries —
// runs entirely on resident handlers and pooled packets, so advancing the
// simulation allocates nothing.
func TestWorkloadZeroAllocs(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 6, 100)
	if _, err := heavyTailTestSpec(42).Attach(hosts); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(500 * sim.Millisecond)
	window := sim.Time(0)
	allocs := testing.AllocsPerRun(100, func() {
		window += 2 * sim.Millisecond
		n.Eng.RunUntil(500*sim.Millisecond + window)
	})
	if allocs != 0 {
		t.Fatalf("heavy-tail steady state allocated %.2f per 2 ms window, want 0", allocs)
	}
}

func incastTestSpec(seed int64) Spec {
	return Spec{Seed: seed, Groups: []Group{{
		Name: "incast",
		Incast: &IncastSpec{
			Aggregators:   []int{0, 1},
			FanIn:         4,
			ResponseBytes: 20_000,
			Period:        2 * sim.Millisecond,
			Jitter:        200 * sim.Microsecond,
		},
	}}}
}

func TestIncastRoundTrip(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 8, 100)
	r, err := incastTestSpec(7).Attach(hosts)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(200 * sim.Millisecond)
	gs := r.Stats()[0]
	if gs.Messages == 0 {
		t.Fatal("no incast rounds fired")
	}
	if gs.Requests != gs.Messages*4 {
		t.Fatalf("requests %d != rounds %d x fan-in 4", gs.Requests, gs.Messages)
	}
	if gs.Responses == 0 || gs.RxBytes == 0 {
		t.Fatalf("no responses delivered: %+v", gs)
	}
	// Each response is 20 kB; heavy loss under the synchronized bursts is
	// the point of the workload, but on average at least one full packet
	// of every response must land.
	if gs.RxBytes < gs.Responses*1500 {
		t.Fatalf("rx %d B implausibly low for %d responses", gs.RxBytes, gs.Responses)
	}
}

// TestIncastZeroAllocs: the warmed partition-aggregate path — round timers,
// Fisher-Yates worker draws, request bursts, responder bursts, sink
// deliveries — holds the zero-allocation invariant too.
func TestIncastZeroAllocs(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 8, 100)
	if _, err := incastTestSpec(7).Attach(hosts); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(500 * sim.Millisecond)
	window := sim.Time(0)
	allocs := testing.AllocsPerRun(100, func() {
		window += 2 * sim.Millisecond
		n.Eng.RunUntil(500*sim.Millisecond + window)
	})
	if allocs != 0 {
		t.Fatalf("incast steady state allocated %.2f per 2 ms window, want 0", allocs)
	}
}

func TestOnOffAlternates(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)
	spec := Spec{Seed: 3, Groups: []Group{{
		Name: "bursts",
		OnOff: &OnOffSpec{
			RateBps: 50_000_000,
			On:      ExpDur(2 * sim.Millisecond),
			Off:     ExpDur(8 * sim.Millisecond),
		},
	}}}
	r, err := spec.Attach(hosts)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(sim.Second)
	gs := r.Stats()[0]
	if gs.Messages < 10 {
		t.Fatalf("only %d ON bursts in 1 s with mean cycle 10 ms", gs.Messages)
	}
	// Duty cycle ~20%: aggregate goodput must sit well below the raw rate
	// but well above zero.
	mbps := float64(gs.RxBytes) * 8 / 1e6
	if mbps < 4*2 || mbps > 4*35 {
		t.Fatalf("on/off delivered %.1f Mb over 1 s across 4 sources, want duty-cycled rate", mbps)
	}
}

// TestPacedRateIsPrecise: a backlogged token-bucket class must drain at
// exactly its configured rate — the "precise rate pacing" contract.
func TestPacedRateIsPrecise(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 2, 100)
	spec := Spec{Seed: 9, Groups: []Group{{
		Name:  "paced",
		Hosts: []int{0},
		Messages: &MessageSpec{
			Classes:        []Class{{Sizes: Fixed(1_000_000), RateBps: 10_000_000}},
			ArrivalsPerSec: 40, // offered 320 Mb/s >> paced 10 Mb/s: always backlogged
			Dst:            []int{1},
			PendingCap:     8, // small ring so the overflow path is exercised
		},
	}}}
	r, err := spec.Attach(hosts)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(sim.Second)
	rx := float64(r.Stats()[0].RxBytes) * 8
	// Wire rate includes 54 B framing per 1440 B payload (~3.7% overhead);
	// the bucket paces wire bits at 10 Mb/s.
	if rx < 9.0e6 || rx > 10.5e6 {
		t.Fatalf("paced class delivered %.2f Mb in 1 s, want ~10 Mb", rx/1e6)
	}
	if ovf := r.Stats()[0].Overflow; ovf == 0 {
		t.Fatalf("backlogged source never overflowed its pending ring (cap should bind)")
	}
}

func TestStopHaltsEverything(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)
	spec := Spec{Seed: 1, Groups: []Group{
		{Name: "m", Messages: &MessageSpec{Classes: []Class{{Sizes: Fixed(10_000)}}, Load: 0.2}},
		{Name: "f", Flows: &FlowSpec{Flows: 4, RateBps: 5_000_000}},
	}}
	r, err := spec.Attach(hosts)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunUntil(100 * sim.Millisecond)
	r.Stop()
	// With every generator halted the event queue must drain completely.
	n.Eng.Run()
	if got := n.PoolOutstanding(); got != 0 {
		t.Fatalf("%d pooled packets leaked after Stop + drain", got)
	}
}

func TestSpecValidation(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no groups", Spec{}, "no groups"},
		{"no kind", Spec{Groups: []Group{{}}}, "exactly one"},
		{"two kinds", Spec{Groups: []Group{{
			Messages: &MessageSpec{Classes: []Class{{Sizes: Fixed(1)}}},
			OnOff:    &OnOffSpec{RateBps: 1, On: ExpDur(1), Off: ExpDur(1)},
		}}}, "exactly one"},
		{"bad host index", Spec{Groups: []Group{{
			Hosts:    []int{99},
			Messages: &MessageSpec{Classes: []Class{{Sizes: Fixed(1)}}},
		}}}, "out of range"},
		{"no classes", Spec{Groups: []Group{{Messages: &MessageSpec{}}}}, "at least one Class"},
		{"unset sizes", Spec{Groups: []Group{{
			Messages: &MessageSpec{Classes: []Class{{}}},
		}}}, "Sizes is unset"},
		{"one host flows", Spec{Groups: []Group{{
			Hosts: []int{0},
			Flows: &FlowSpec{Flows: 2},
		}}}, "at least 2 hosts"},
		{"incast no fanin", Spec{Groups: []Group{{
			Incast: &IncastSpec{ResponseBytes: 1, Period: 1},
		}}}, "FanIn"},
	}
	for _, c := range cases {
		_, err := c.spec.Attach(hosts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestGroupSeedStreamsDiffer: two groups with no explicit offsets must draw
// from distinct streams, and an explicit SeedOffset pins a group's stream
// regardless of its position.
func TestGroupSeedStreamsDiffer(t *testing.T) {
	run := func(spec Spec) string {
		n := topo.New(1)
		hosts, _, _ := topo.Dumbbell(n, 4, 100)
		r, err := spec.Attach(hosts)
		if err != nil {
			t.Fatal(err)
		}
		n.Eng.RunUntil(300 * sim.Millisecond)
		return r.Fingerprint()
	}
	msg := func() *MessageSpec {
		return &MessageSpec{Classes: []Class{{Sizes: WebSearch().Clamped(500, 50_000)}}, Load: 0.1}
	}
	two := run(Spec{Seed: 5, Groups: []Group{
		{Name: "a", Messages: msg(), Stop: 200 * sim.Millisecond},
		{Name: "b", Messages: msg(), SportBase: 11000, Stop: 200 * sim.Millisecond},
	}})
	if i := strings.Index(two, " | "); i < 0 || two[:i] == strings.Replace(two[i+3:], "b kind", "a kind", 1) {
		t.Fatalf("groups a and b produced identical streams: %s", two)
	}
	// An explicit offset reproduces group b's stream under a different name.
	moved := run(Spec{Seed: 5, Groups: []Group{
		{Name: "only", Messages: msg(), SeedOffset: 1 * 104729, SportBase: 11000, Stop: 200 * sim.Millisecond},
	}})
	want := two[strings.Index(two, " | ")+3:]
	want = strings.Replace(want, "b kind", "only kind", 1)
	// Group b shared the network with group a; solo it sees different
	// queueing, so only the seed-derived counters (messages, offered
	// bytes) are comparable. Compare the msgs= and bytes= fields.
	fa := strings.Fields(want)
	fb := strings.Fields(moved)
	for _, i := range []int{3, 4} { // msgs=, bytes=
		if fa[i] != fb[i] {
			t.Fatalf("explicit SeedOffset did not reproduce stream: %q vs %q", want, moved)
		}
	}
}

// TestRunnerDeterminism: identical (topology, Spec) runs produce identical
// fingerprints; a different seed produces a different one.
func TestRunnerDeterminism(t *testing.T) {
	run := func(seed int64) string {
		n := topo.New(1)
		hosts, _, _ := topo.Dumbbell(n, 6, 100)
		r, err := heavyTailTestSpec(seed).Attach(hosts)
		if err != nil {
			t.Fatal(err)
		}
		n.Eng.RunUntil(sim.Second)
		return r.Fingerprint()
	}
	a, b, c := run(42), run(42), run(43)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatalf("different seeds produced identical fingerprint: %s", a)
	}
}
