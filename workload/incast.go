package workload

import (
	"fmt"
	"math/rand"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/transport"
)

func errorf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// incastAgg is one aggregator's resident round driver: every Period
// (+Jitter) it picks FanIn distinct workers by partial Fisher-Yates over a
// pre-built permutation slice and sends each a request — zero allocations
// per round.
type incastAgg struct {
	eng      *sim.Engine
	agg      *host.Host
	rng      *rand.Rand
	g        *groupRun
	workers  []*host.Host
	perm     []int32
	fanIn    int
	reqBytes int
	pktSize  int
	reqPort  uint16
	respPort uint16
	period   sim.Time
	jitter   sim.Time
	base     sim.Time // unjittered time of the last-armed round
	stopAt   sim.Time
}

func (a *incastAgg) halt() { a.stopAt = 0 }

func (a *incastAgg) arm() {
	a.base += a.period
	at := a.base
	if a.jitter > 0 {
		at += sim.Time(a.rng.Int63n(int64(a.jitter)))
	}
	a.eng.Schedule(at, a, 0)
}

// Handle fires one partition-aggregate round.
func (a *incastAgg) Handle(uint64) {
	if a.eng.Now() >= a.stopAt {
		return
	}
	n := len(a.perm)
	for k := 0; k < a.fanIn; k++ {
		j := k + a.rng.Intn(n-k)
		a.perm[k], a.perm[j] = a.perm[j], a.perm[k]
		w := a.workers[a.perm[k]]
		cnt := transport.SendBurst(a.agg, w.ID(), a.respPort, a.reqPort, a.reqBytes, a.pktSize)
		a.g.pkts.Add(uint64(cnt))
		a.g.reqs.Add(1)
	}
	a.g.msgs.Add(1)
	a.arm()
}

// incastResponder answers requests on a worker host: the synchronized
// response burst back to the requesting aggregator's response port.
type incastResponder struct {
	h         *host.Host
	g         *groupRun
	respBytes int
	pktSize   int
	reqPort   uint16
	stopAt    sim.Time
}

func (r *incastResponder) halt() { r.stopAt = 0 }

func (r *incastResponder) onRequest(p *link.Packet) {
	agg, sport := p.Flow.Src, p.Flow.SrcPort
	p.Release()
	if r.h.Engine().Now() >= r.stopAt {
		return
	}
	n := transport.SendBurst(r.h, agg, r.reqPort, sport, r.respBytes, r.pktSize)
	r.g.pkts.Add(uint64(n))
	r.g.resps.Add(1)
	r.g.msgBytes.Add(uint64(r.respBytes))
}

func compileIncast(g *Group, gr *groupRun, hosts []*host.Host, seed int64, r *Runner) error {
	in := g.Incast
	if in.FanIn <= 0 {
		return errorf("Incast.FanIn must be > 0")
	}
	if in.ResponseBytes <= 0 {
		return errorf("Incast.ResponseBytes must be > 0")
	}
	if in.Period <= 0 {
		return errorf("Incast.Period must be > 0")
	}
	reqBytes := in.RequestBytes
	if reqBytes == 0 {
		reqBytes = 64
	}
	pktSize := in.PktSize
	if pktSize == 0 {
		pktSize = 1440
	}
	reqPort := in.Port
	if reqPort == 0 {
		reqPort = 9200
	}
	respPort := reqPort + 1

	_, grpIdx, err := resolve(hosts, g.Hosts)
	if err != nil {
		return errorf("Hosts: %v", err)
	}
	aggIdx := in.Aggregators
	if aggIdx == nil {
		aggIdx = grpIdx[:1]
	}
	aggs, _, err := resolve(hosts, aggIdx)
	if err != nil {
		return errorf("Aggregators: %v", err)
	}
	workerIdx := in.Workers
	if workerIdx == nil {
		workerIdx = grpIdx
	}
	workers, _, err := resolve(hosts, workerIdx)
	if err != nil {
		return errorf("Workers: %v", err)
	}
	stopAt := stopOf(g)

	// Responders first (request sinks), then aggregator response sinks,
	// then the round drivers — receivers always exist before traffic.
	respPkts := (in.ResponseBytes + pktSize - 1) / pktSize
	reqPkts := (reqBytes + pktSize - 1) / pktSize
	for _, w := range workers {
		resp := &incastResponder{
			h: w, g: gr, respBytes: in.ResponseBytes, pktSize: pktSize,
			reqPort: reqPort, stopAt: stopAt,
		}
		w.Bind(reqPort, link.ProtoUDP, resp.onRequest)
		r.sources = append(r.sources, resp)
		// Every aggregator could query this worker in the same round.
		r.reservePool(w, respPkts*len(aggs))
	}
	for _, a := range aggs {
		r.Sinks = append(r.Sinks, transport.NewSink(a, respPort, link.ProtoUDP))
	}
	for ai, a := range aggs {
		// Each aggregator queries every worker but itself.
		var pool []*host.Host
		for _, w := range workers {
			if w != a {
				pool = append(pool, w)
			}
		}
		if len(pool) == 0 {
			return errorf("aggregator %d has no workers to query", ai)
		}
		fan := in.FanIn
		if fan > len(pool) {
			fan = len(pool)
		}
		perm := make([]int32, len(pool))
		for i := range perm {
			perm[i] = int32(i)
		}
		agg := &incastAgg{
			eng: a.Engine(), agg: a, rng: rand.New(rand.NewSource(seed + int64(ai)*7919)),
			g: gr, workers: pool, perm: perm, fanIn: fan,
			reqBytes: reqBytes, pktSize: pktSize,
			reqPort: reqPort, respPort: respPort,
			period: in.Period, jitter: in.Jitter,
			base: g.Start, stopAt: stopAt,
		}
		gr.sources++
		r.sources = append(r.sources, agg)
		r.reservePool(a, fan*reqPkts*2)
		at := agg.base
		if agg.jitter > 0 {
			at += sim.Time(agg.rng.Int63n(int64(agg.jitter)))
		}
		a.Engine().Schedule(at, agg, 0)
	}
	r.nsrc += gr.sources
	return nil
}
