package workload

import (
	"math"
	"math/rand"
	"testing"

	"minions/internal/sim"
)

func TestFixedDist(t *testing.T) {
	d := Fixed(10_000)
	if d.Mean() != 10_000 {
		t.Fatalf("Fixed mean = %g, want 10000", d.Mean())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if n := d.sample(rng); n != 10_000 {
			t.Fatalf("Fixed sample = %d", n)
		}
	}
}

func TestEmpiricalDistShape(t *testing.T) {
	for _, d := range []SizeDist{WebSearch(), DataMining()} {
		if d.Mean() <= 0 {
			t.Fatalf("%s mean = %g", d.Name(), d.Mean())
		}
		// Quantile tables must be non-decreasing.
		for i := 1; i < len(d.table); i++ {
			if d.table[i] < d.table[i-1] {
				t.Fatalf("%s quantile table decreases at %d", d.Name(), i)
			}
		}
		// Sampling must stay within the CDF's support.
		rng := rand.New(rand.NewSource(7))
		lo, hi := math.MaxFloat64, 0.0
		for i := 0; i < 50_000; i++ {
			v := float64(d.sample(rng))
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo < 1 || hi > 1.1e9 {
			t.Fatalf("%s samples out of range [%g, %g]", d.Name(), lo, hi)
		}
	}
	// Heavy tails: data-mining's mean is far above its median.
	dm := DataMining()
	if med := dm.quantileRaw(0.5); dm.Mean() < 10*med {
		t.Errorf("data-mining mean %g not >> median %g", dm.Mean(), med)
	}
}

func TestEmpiricalSampleMeanMatches(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(11))
	var sum float64
	const n = 400_000
	for i := 0; i < n; i++ {
		sum += float64(d.sample(rng))
	}
	got := sum / n
	if math.Abs(got-d.Mean())/d.Mean() > 0.05 {
		t.Fatalf("sample mean %g vs table mean %g (>5%% off)", got, d.Mean())
	}
}

func TestLognormalAndPareto(t *testing.T) {
	ln := Lognormal(math.Log(10_000), 1)
	// Lognormal median = exp(mu).
	if med := ln.quantileRaw(0.5); math.Abs(med-10_000)/10_000 > 0.02 {
		t.Fatalf("lognormal median %g, want ~10000", med)
	}
	p := Pareto(1.2, 1000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		v := p.sample(rng)
		if v < 1000 || v > 1<<30 {
			t.Fatalf("pareto sample %d out of [1000, 2^30]", v)
		}
	}
	if p.Mean() < 1000 {
		t.Fatalf("pareto mean %g", p.Mean())
	}
}

func TestClamped(t *testing.T) {
	d := WebSearch().Clamped(5000, 50_000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20_000; i++ {
		v := d.sample(rng)
		if v < 5000 || v > 50_000 {
			t.Fatalf("clamped sample %d out of [5000, 50000]", v)
		}
	}
	if d.Mean() < 5000 || d.Mean() > 50_000 {
		t.Fatalf("clamped mean %g out of bounds", d.Mean())
	}
}

func TestEmpiricalValidation(t *testing.T) {
	bad := [][]CDFPoint{
		nil,
		{{Bytes: 100, P: 1}},
		{{Bytes: 100, P: 0.5}, {Bytes: 50, P: 1}},   // bytes not increasing
		{{Bytes: 100, P: 0.5}, {Bytes: 200, P: 0.5}}, // P not increasing
		{{Bytes: 100, P: 0.5}, {Bytes: 200, P: 0.9}}, // does not end at 1
	}
	for i, pts := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Empirical("bad", pts)
		}()
	}
}

func TestAliasTable(t *testing.T) {
	a := newAlias([]float64{9, 1})
	rng := rand.New(rand.NewSource(17))
	counts := [2]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[a.pick(rng)]++
	}
	frac := float64(counts[1]) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("weight-0.1 class drawn %.3f of the time, want ~0.1", frac)
	}
}

func TestDurDist(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	if d := FixedDur(5 * sim.Millisecond).sample(rng); d != 5*sim.Millisecond {
		t.Fatalf("FixedDur sample %d", d)
	}
	e := ExpDur(sim.Millisecond)
	var sum sim.Time
	for i := 0; i < 10_000; i++ {
		v := e.sample(rng)
		if v < 1 {
			t.Fatal("duration < 1 ns")
		}
		sum += v
	}
	mean := float64(sum) / 10_000
	if mean < 0.9e6 || mean > 1.1e6 {
		t.Fatalf("ExpDur mean %g ns, want ~1e6", mean)
	}
	p := ParetoDur(1.5, sim.Millisecond)
	for i := 0; i < 10_000; i++ {
		v := p.sample(rng)
		if v < sim.Millisecond || v > 1000*sim.Millisecond {
			t.Fatalf("ParetoDur sample %d out of bounds", v)
		}
	}
}

// TestTokenBucketPrecision drives the pacer's refill/wait math over an
// irregular schedule and checks the long-run admitted rate is exact: the
// nanosecond remainder accounting must not drift.
func TestTokenBucketPrecision(t *testing.T) {
	const rate = 7_777_777 // deliberately not divisible by 1e9
	var b tokenBucket
	b.setRate(rate, 24_000, 0)
	b.bits = 0
	now := sim.Time(0)
	var sent int64
	const pkt = 12_000 // bits
	for i := 0; i < 5_000; i++ {
		b.refill(now)
		for b.take(pkt) {
			sent += pkt
		}
		now += b.wait(pkt)
	}
	// After the final wait the last packet hasn't been sent; admitted rate
	// over [0, now] must match the configured rate to within one packet.
	want := float64(rate) * float64(now) / 1e9
	if math.Abs(float64(sent)-want) > pkt+1 {
		t.Fatalf("admitted %d bits over %d ns, want %.0f (rate drift)", sent, now, want)
	}
}

func TestTokenBucketIdleCap(t *testing.T) {
	var b tokenBucket
	b.setRate(1_000_000, 8000, 0)
	// A huge idle gap must cap at the burst size without overflow.
	b.refill(sim.Time(math.MaxInt64 / 2))
	if b.bits != 8000 {
		t.Fatalf("bits after idle = %d, want burst cap 8000", b.bits)
	}
}
