// Package workload is a scriptable, allocation-free datacenter workload
// engine for the minions simulator — load generation as a research
// instrument in the MoonGen tradition rather than a hard-coded traffic
// pattern.
//
// A workload.Spec is a seedable, composable description of traffic: a list
// of Groups, each binding one generator kind to a subset of hosts —
//
//   - Messages: Poisson message arrivals whose sizes draw from a SizeDist
//     (empirical web-search / data-mining CDFs, lognormal or Pareto heavy
//     tails, or any user-supplied CDF), split across weighted Classes for
//     elephant/mice mixes. A class sends back-to-back bursts or paces
//     through a precise per-source token bucket.
//   - Flows: long-lived CBR UDP flows between uniform-random pairs (the
//     legacy trafficgen workload), or bounded TCP transfers.
//   - Incast: partition-aggregate request/response rounds — aggregators
//     fan requests to a random worker subset each period and the workers'
//     synchronized responses collide on the aggregator's edge link.
//   - OnOff: sources alternating heavy-tailed ON bursts at line-ish rate
//     with idle OFF periods.
//
// Spec.Attach compiles the description onto live hosts into resident
// sim.Handler generators: all tables (inverse-CDF quantiles, class alias
// tables, worker permutations, pending rings) are pre-built at attach time,
// so the warmed steady state sends, samples, paces and re-arms with zero
// allocations per packet — the same discipline the forwarding path holds.
//
// Determinism: every source owns a private rand.Rand seeded from
// Spec.Seed, the group's seed offset and the source's stable host index —
// never from an engine RNG — and schedules only on its own host's shard
// engine. Identical (topology, Spec) pairs therefore replay byte-identically
// across shard counts, sync modes and schedulers; Runner.Fingerprint
// summarizes a run for exactly that comparison.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/transport"
)

// unbounded is the stop time meaning "never".
const unbounded = sim.Time(math.MaxInt64)

// Spec is a complete, seedable workload description. The zero value is an
// empty workload; fill Seed and Groups and call Attach.
type Spec struct {
	// Seed is the root of every RNG stream the compiled generators use.
	// Identical Specs attached to identical topologies replay
	// byte-identically regardless of shard count, sync mode or scheduler.
	Seed int64
	// Groups compose independent generators; each compiles onto its own
	// host subset with its own derived seed.
	Groups []Group
}

// Group binds exactly one generator kind (Messages, Flows, Incast or OnOff)
// to a subset of the attached hosts.
type Group struct {
	// Name labels the group in stats and fingerprints (default "g<i>").
	Name string
	// Hosts selects source hosts by index into the Attach slice; nil means
	// all hosts.
	Hosts []int
	// Start delays the group's first activity; Stop (when > 0) halts new
	// activity from that simulated time on. Stop == 0 means unbounded.
	Start, Stop sim.Time
	// SeedOffset separates this group's RNG streams from the Spec seed.
	// When 0, group i>0 derives a distinct default offset; group 0 uses
	// Spec.Seed directly (which is what makes the legacy trafficgen
	// bridges byte-identical).
	SeedOffset int64
	// SportBase is the first source port the group's senders use (each
	// source/flow gets SportBase+index). 0 picks a per-kind default
	// (messages 10000, flows 20000, on/off 40000).
	SportBase int

	// Exactly one of the following must be non-nil.
	Messages *MessageSpec
	Flows    *FlowSpec
	Incast   *IncastSpec
	OnOff    *OnOffSpec
}

// MessageSpec generates Poisson message arrivals per source host. Each
// arrival picks a uniform-random destination (excluding the source), picks a
// weighted Class, draws a size, and transmits it as UDP packets — as a
// back-to-back burst (RateBps == 0) or paced by a token bucket.
type MessageSpec struct {
	// Classes partition arrivals into an elephant/mice-style mix; at least
	// one is required.
	Classes []Class
	// Load sets the per-source arrival rate as a fraction of the source
	// NIC's line rate carried in mean-sized messages (the legacy
	// trafficgen convention): arrivals/sec = Load * nic_bps / (mean_bytes*8).
	Load float64
	// ArrivalsPerSec, when > 0, sets the per-source arrival rate directly
	// and overrides Load.
	ArrivalsPerSec float64
	// PktSize is the maximum payload bytes per packet (default 1440);
	// transport framing (54 B) is added per packet on the wire.
	PktSize int
	// DstPort is the UDP port sinks listen on (default 9000).
	DstPort uint16
	// Dst selects destination hosts by Attach index; nil means all hosts.
	Dst []int
	// PendingCap bounds each source's queue of paced messages awaiting
	// their token bucket (default 1024). Overflowing messages are dropped
	// and counted in GroupStats.Overflow.
	PendingCap int
}

// Class is one weighted component of a MessageSpec mix.
type Class struct {
	// Name labels the class in docs/tables; unused mechanically.
	Name string
	// Weight is the relative arrival probability (default 1).
	Weight float64
	// Sizes draws the message size in bytes.
	Sizes SizeDist
	// RateBps == 0 sends each message as a back-to-back packet burst;
	// > 0 paces the message through the source's token bucket at this
	// rate — the precise pacing a real sender's shaper would apply.
	RateBps int64
	// BurstBytes is the token bucket depth while this class transmits
	// (default 2 packets' worth).
	BurstBytes int
}

// FlowSpec generates long-lived flows between uniform-random host pairs —
// the legacy trafficgen "uniform random flows" workload, plus a bounded TCP
// variant.
type FlowSpec struct {
	// Flows is the number of flows (required).
	Flows int
	// RateBps is the CBR rate of each UDP flow.
	RateBps int64
	// PktSize is the wire bytes per UDP packet (default 1500) or the TCP
	// MSS payload (default 1440).
	PktSize int
	// DstPort is the destination port (default 9100).
	DstPort uint16
	// MaxStart jitters each flow's start uniformly in [0, MaxStart)
	// (default 1 ms) so flows do not phase-lock.
	MaxStart sim.Time
	// TCP switches from CBR UDP to congestion-controlled TCP transfers of
	// MsgBytes each.
	TCP bool
	// MsgBytes bounds each TCP transfer (default 1 MB). Ignored for UDP.
	MsgBytes int
	// AckEvery is the TCP receiver's delayed-ACK factor (default 2).
	AckEvery int
}

// IncastSpec generates partition-aggregate traffic: each aggregator
// periodically sends a small request to FanIn uniform-random workers, and
// every worker immediately answers with ResponseBytes — the synchronized
// response burst that incast-collapses shallow switch buffers.
type IncastSpec struct {
	// Aggregators selects aggregator hosts by Attach index; nil means the
	// group's first source host.
	Aggregators []int
	// Workers selects responder hosts by Attach index; nil means all of
	// the group's hosts. An aggregator never queries itself.
	Workers []int
	// FanIn is how many distinct workers each round queries (required;
	// capped at the worker count).
	FanIn int
	// RequestBytes is the request payload (default 64).
	RequestBytes int
	// ResponseBytes is each worker's response payload (required).
	ResponseBytes int
	// Period is the round interval per aggregator (required).
	Period sim.Time
	// Jitter, when > 0, offsets each round uniformly in [0, Jitter).
	Jitter sim.Time
	// PktSize is the maximum payload bytes per packet (default 1440).
	PktSize int
	// Port is the request port; responses return to Port+1 (default 9200).
	Port uint16
}

// OnOffSpec generates ON/OFF bursty sources: each source alternates ON
// periods — CBR packets at RateBps toward one random destination — with
// silent OFF periods, both drawn from DurDists. Pareto dwell times yield
// the long-range-dependent aggregate burstiness of measured traffic.
type OnOffSpec struct {
	// RateBps is the in-burst send rate (required).
	RateBps int64
	// PktSize is the wire bytes per packet (default 1400).
	PktSize int
	// DstPort is the UDP port sinks listen on (default 9300).
	DstPort uint16
	// On and Off draw the dwell times (both required).
	On, Off DurDist
	// Dst selects destination hosts by Attach index; nil means all hosts.
	Dst []int
}

// Runner is a compiled, attached workload: the live sinks and flows plus
// per-group counters. All counters are atomic and commutative, so they are
// deterministic across shard counts.
type Runner struct {
	// Sinks are the receive-side counters, in creation order (destination
	// hosts of each group, group order).
	Sinks []*transport.Sink
	// UDPFlows and TCPFlows are the long-lived flows of Flow groups.
	UDPFlows []*transport.UDPFlow
	// TCPFlows are bounded transfers; each completes on its own.
	TCPFlows []*transport.TCPFlow

	groups  []*groupRun
	sources []halter
	nsrc    int

	// poolNeed accumulates, per packet pool, the worst-case in-flight
	// packets the compiled sources can put on the wire at once; Attach
	// reserves that many up front so even the first record-size burst of a
	// heavy-tailed spec allocates nothing.
	poolNeed map[*link.Pool]int
}

// maxReservePkts caps the per-source pool reservation: an unclamped
// distribution's 1 GB ceiling must not translate into a gigabyte of idle
// packets. Sources whose real bursts exceed the cap amortize the remainder
// through ordinary pool growth.
const maxReservePkts = 4096

// reservePool records a source's worst-case in-flight packet count against
// its host's pool (no-op for pool-less hosts).
func (r *Runner) reservePool(h *host.Host, pkts int) {
	if pkts <= 0 {
		return
	}
	if pkts > maxReservePkts {
		pkts = maxReservePkts
	}
	if pl := h.Pool(); pl != nil {
		if r.poolNeed == nil {
			r.poolNeed = make(map[*link.Pool]int)
		}
		r.poolNeed[pl] += pkts
	}
}

// halter is anything Stop can halt between run segments.
type halter interface{ halt() }

type groupRun struct {
	name, kind     string
	sources        int
	sinkLo, sinkHi int
	udpLo, udpHi   int
	tcpLo, tcpHi   int

	msgs     atomic.Uint64 // messages / ON bursts / incast rounds started
	msgBytes atomic.Uint64 // offered application bytes
	pkts     atomic.Uint64 // packets transmitted by resident generators
	overflow atomic.Uint64 // paced messages dropped at a full pending ring
	reqs     atomic.Uint64 // incast requests sent
	resps    atomic.Uint64 // incast responses sent
}

// GroupStats is a point-in-time snapshot of one group's counters.
type GroupStats struct {
	Name, Kind string
	// Sources is the number of compiled resident generators (flows count
	// per flow).
	Sources int
	// Messages counts message arrivals (Messages), ON bursts (OnOff) or
	// rounds (Incast); Bytes the offered application bytes; Packets the
	// packets the group's generators put on the wire.
	Messages, Bytes, Packets uint64
	// Overflow counts paced messages dropped at a full pending ring.
	Overflow uint64
	// Requests/Responses count incast request and response messages.
	Requests, Responses uint64
	// RxPackets/RxBytes sum the group's sinks.
	RxPackets, RxBytes uint64
}

// Sources returns the total number of compiled generators.
func (r *Runner) Sources() int { return r.nsrc }

// Stop halts every generator and flow in the runner. Call it between run
// segments (never while the engine is advancing) — e.g. before a final
// drain so pending packets empty back into their pools and Run terminates.
func (r *Runner) Stop() {
	for _, s := range r.sources {
		s.halt()
	}
}

// Stats snapshots every group's counters, in Spec order.
func (r *Runner) Stats() []GroupStats {
	out := make([]GroupStats, len(r.groups))
	for i, g := range r.groups {
		gs := GroupStats{
			Name: g.name, Kind: g.kind, Sources: g.sources,
			Messages: g.msgs.Load(), Bytes: g.msgBytes.Load(),
			Packets: g.pkts.Load(), Overflow: g.overflow.Load(),
			Requests: g.reqs.Load(), Responses: g.resps.Load(),
		}
		for _, s := range r.Sinks[g.sinkLo:g.sinkHi] {
			gs.RxPackets += s.Packets
			gs.RxBytes += s.Bytes
		}
		for _, f := range r.UDPFlows[g.udpLo:g.udpHi] {
			gs.Packets += f.TxPkts
			gs.Bytes += f.TxBytes
		}
		for _, f := range r.TCPFlows[g.tcpLo:g.tcpHi] {
			gs.Packets += f.TxDataPkts
			gs.Bytes += f.TxDataBytes
		}
		out[i] = gs
	}
	return out
}

// Fingerprint renders the runner's counters as one deterministic line —
// byte-identical across shard counts, sync modes and schedulers for
// identical (topology, Spec) runs.
func (r *Runner) Fingerprint() string {
	var b strings.Builder
	for i, gs := range r.Stats() {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s kind=%s src=%d msgs=%d bytes=%d pkts=%d ovf=%d req=%d resp=%d rx=%d/%d",
			gs.Name, gs.Kind, gs.Sources, gs.Messages, gs.Bytes, gs.Packets,
			gs.Overflow, gs.Requests, gs.Responses, gs.RxPackets, gs.RxBytes)
	}
	return b.String()
}

// Attach compiles the Spec onto live hosts (already wired into a topology)
// and arms every generator. The host slice order defines the stable indices
// Hosts/Dst/Aggregators/Workers refer to and the per-source seed streams —
// pass hosts in a deterministic order (topology constructors already do).
func (s Spec) Attach(hosts []*host.Host) (*Runner, error) {
	if len(hosts) == 0 {
		return nil, errors.New("workload: Attach needs at least one host")
	}
	if len(s.Groups) == 0 {
		return nil, errors.New("workload: Spec has no groups")
	}
	r := &Runner{}
	for gi := range s.Groups {
		g := &s.Groups[gi]
		if err := compileGroup(s, gi, g, hosts, r); err != nil {
			name := g.Name
			if name == "" {
				name = fmt.Sprintf("g%d", gi)
			}
			return nil, fmt.Errorf("workload: group %q: %w", name, err)
		}
	}
	for pl, n := range r.poolNeed {
		pl.Reserve(n)
	}
	return r, nil
}

// groupSeed derives the group's RNG seed root. Group 0 with no explicit
// offset uses Spec.Seed directly — the legacy-compatible stream.
func groupSeed(s Spec, gi int, g *Group) int64 {
	if g.SeedOffset != 0 {
		return s.Seed + g.SeedOffset
	}
	return s.Seed + int64(gi)*104729
}

func stopOf(g *Group) sim.Time {
	if g.Stop > 0 {
		return g.Stop
	}
	return unbounded
}

// resolve maps host indices (nil = all) to hosts, validating bounds. The
// returned index slice is always populated.
func resolve(hosts []*host.Host, idx []int) ([]*host.Host, []int, error) {
	if idx == nil {
		all := make([]int, len(hosts))
		for i := range hosts {
			all[i] = i
		}
		return hosts, all, nil
	}
	if len(idx) == 0 {
		return nil, nil, errors.New("empty host selection")
	}
	out := make([]*host.Host, len(idx))
	for k, i := range idx {
		if i < 0 || i >= len(hosts) {
			return nil, nil, fmt.Errorf("host index %d out of range [0,%d)", i, len(hosts))
		}
		out[k] = hosts[i]
	}
	return out, append([]int(nil), idx...), nil
}

func compileGroup(s Spec, gi int, g *Group, hosts []*host.Host, r *Runner) error {
	kinds := 0
	for _, set := range []bool{g.Messages != nil, g.Flows != nil, g.Incast != nil, g.OnOff != nil} {
		if set {
			kinds++
		}
	}
	if kinds != 1 {
		return fmt.Errorf("need exactly one of Messages/Flows/Incast/OnOff, have %d", kinds)
	}
	gr := &groupRun{name: g.Name}
	if gr.name == "" {
		gr.name = fmt.Sprintf("g%d", gi)
	}
	gr.sinkLo, gr.udpLo, gr.tcpLo = len(r.Sinks), len(r.UDPFlows), len(r.TCPFlows)
	seed := groupSeed(s, gi, g)
	var err error
	switch {
	case g.Messages != nil:
		gr.kind = "messages"
		err = compileMessages(g, gr, hosts, seed, r)
	case g.Flows != nil:
		gr.kind = "flows"
		err = compileFlows(g, gr, hosts, seed, r)
	case g.Incast != nil:
		gr.kind = "incast"
		err = compileIncast(g, gr, hosts, seed, r)
	default:
		gr.kind = "onoff"
		err = compileOnOff(g, gr, hosts, seed, r)
	}
	if err != nil {
		return err
	}
	gr.sinkHi, gr.udpHi, gr.tcpHi = len(r.Sinks), len(r.UDPFlows), len(r.TCPFlows)
	r.groups = append(r.groups, gr)
	return nil
}

func compileMessages(g *Group, gr *groupRun, hosts []*host.Host, seed int64, r *Runner) error {
	m := g.Messages
	if len(m.Classes) == 0 {
		return errors.New("Messages needs at least one Class")
	}
	pktSize := m.PktSize
	if pktSize == 0 {
		pktSize = 1440
	}
	if pktSize < 1 {
		return fmt.Errorf("PktSize %d < 1", pktSize)
	}
	dstPort := m.DstPort
	if dstPort == 0 {
		dstPort = 9000
	}
	pendCap := m.PendingCap
	if pendCap == 0 {
		pendCap = 1024
	}
	sportBase := g.SportBase
	if sportBase == 0 {
		sportBase = 10000
	}
	// Mixture mean (weights default to 1): what Load-based rates divide by.
	var wsum, msum float64
	classes := make([]msgClass, len(m.Classes))
	weights := make([]float64, len(m.Classes))
	paced := false
	for ci, c := range m.Classes {
		w := c.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return fmt.Errorf("class %d: negative weight", ci)
		}
		if c.Sizes.Mean() <= 0 {
			return fmt.Errorf("class %d: Sizes is unset (build with Fixed/WebSearch/...)", ci)
		}
		weights[ci] = w
		wsum += w
		msum += w * c.Sizes.Mean()
		burst := int64(c.BurstBytes) * 8
		if burst == 0 {
			burst = int64(2*(pktSize+transport.HeaderBytes)) * 8
		}
		if burst > 1<<30 {
			burst = 1 << 30
		}
		classes[ci] = msgClass{sizes: c.Sizes, rateBps: c.RateBps, burstBits: burst}
		if c.RateBps > 0 {
			paced = true
		}
	}
	mean := msum / wsum
	var pick aliasTable
	if len(classes) > 1 {
		pick = newAlias(weights)
	}
	// Worst-case in-flight packets per source: a burst class dumps a whole
	// max-size message on the wire at once; a paced class keeps at most a
	// bucket's worth plus the drain's next packet outstanding. Doubled for
	// back-to-back arrivals whose first burst has not fully drained.
	reserve := 0
	for _, c := range classes {
		var pkts int
		if c.rateBps == 0 {
			pkts = (c.sizes.MaxBytes() + pktSize - 1) / pktSize
		} else {
			pkts = int(c.burstBits/int64(8*(pktSize+transport.HeaderBytes))) + 2
		}
		if pkts > reserve {
			reserve = pkts
		}
	}
	reserve *= 2

	// Sinks on every destination candidate, before any sender arms.
	dsts, _, err := resolve(hosts, m.Dst)
	if err != nil {
		return fmt.Errorf("Dst: %w", err)
	}
	for _, h := range dsts {
		r.Sinks = append(r.Sinks, transport.NewSink(h, dstPort, link.ProtoUDP))
	}

	_, srcIdx, err := resolve(hosts, g.Hosts)
	if err != nil {
		return fmt.Errorf("Hosts: %w", err)
	}
	if len(dsts) == 1 {
		for _, i := range srcIdx {
			if hosts[i] == dsts[0] {
				return errors.New("sole destination is also a source")
			}
		}
	}
	member := make([]bool, len(hosts))
	for _, i := range srcIdx {
		member[i] = true
	}
	stopAt := stopOf(g)
	// Iterate in global host order so each source's seed stream is a
	// function of its stable topology index, not the subset ordering.
	for i, h := range hosts {
		if !member[i] {
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		perSec := m.ArrivalsPerSec
		if perSec <= 0 {
			nicBps := float64(h.NIC().RateBps())
			perSec = m.Load * nicBps / (mean * 8)
		}
		if perSec <= 0 {
			continue
		}
		src := &msgSource{
			eng: h.Engine(), src: h, rng: rng, g: gr,
			dsts: dsts, meanGap: float64(sim.Second) / perSec,
			pktSize: pktSize, sport: uint16(sportBase + i), dport: dstPort,
			stopAt: stopAt,
			classes: classes, pick: pick,
		}
		if paced {
			src.drain = &msgDrain{s: src}
			src.pend.buf = make([]pendMsg, pendCap)
		}
		gr.sources++
		r.sources = append(r.sources, src)
		r.reservePool(h, reserve)
		if g.Start <= 0 {
			src.arm()
		} else {
			// arg 1 = "arm only": the first inter-arrival gap is measured
			// from Start, without sending at Start itself.
			h.Engine().Schedule(g.Start, src, 1)
		}
	}
	r.nsrc += gr.sources
	return nil
}

func compileFlows(g *Group, gr *groupRun, hosts []*host.Host, seed int64, r *Runner) error {
	f := g.Flows
	if f.Flows <= 0 {
		return errors.New("Flows must be > 0")
	}
	pktSize := f.PktSize
	if pktSize == 0 {
		if f.TCP {
			pktSize = 1440
		} else {
			pktSize = 1500
		}
	}
	dstPort := f.DstPort
	if dstPort == 0 {
		dstPort = 9100
	}
	maxStart := f.MaxStart
	if maxStart == 0 {
		maxStart = sim.Millisecond
	}
	sportBase := g.SportBase
	if sportBase == 0 {
		sportBase = 20000
	}
	cand, _, err := resolve(hosts, g.Hosts)
	if err != nil {
		return fmt.Errorf("Hosts: %w", err)
	}
	if len(cand) < 2 {
		return errors.New("Flows needs at least 2 hosts")
	}
	if f.TCP {
		ackEvery := f.AckEvery
		if ackEvery == 0 {
			ackEvery = 2
		}
		msgBytes := f.MsgBytes
		if msgBytes == 0 {
			msgBytes = 1 << 20
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < f.Flows; i++ {
			si := rng.Intn(len(cand))
			di := rng.Intn(len(cand))
			for di == si {
				di = rng.Intn(len(cand))
			}
			dport := dstPort + uint16(i)
			transport.NewTCPSink(cand[di], dport, ackEvery)
			fl := transport.NewTCPFlow(cand[si], cand[di].ID(), uint16(sportBase+i), dport, pktSize)
			fl.SetMessage(msgBytes)
			r.TCPFlows = append(r.TCPFlows, fl)
			start := g.Start + sim.Time(rng.Int63n(int64(maxStart)))
			cand[si].Engine().At(start, fl.Start)
		}
		gr.sources += f.Flows
		r.nsrc += f.Flows
		return nil
	}
	// Legacy draw order (trafficgen.UniformRandomFlows): sinks on every
	// candidate first, then one shared group RNG drawing src, dst,
	// then the start jitter per flow.
	for _, h := range cand {
		r.Sinks = append(r.Sinks, transport.NewSink(h, dstPort, link.ProtoUDP))
	}
	stopAt := stopOf(g)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < f.Flows; i++ {
		si := rng.Intn(len(cand))
		di := rng.Intn(len(cand))
		for di == si {
			di = rng.Intn(len(cand))
		}
		fl := transport.NewUDPFlow(cand[si], cand[di].ID(), uint16(sportBase+i), dstPort, pktSize)
		fl.SetRateBps(f.RateBps)
		r.UDPFlows = append(r.UDPFlows, fl)
		r.sources = append(r.sources, udpHalter{fl})
		start := g.Start + sim.Time(rng.Int63n(int64(maxStart)))
		cand[si].Engine().At(start, fl.Start)
		if stopAt != unbounded {
			cand[si].Engine().At(stopAt, fl.Stop)
		}
	}
	gr.sources += f.Flows
	r.nsrc += f.Flows
	return nil
}

type udpHalter struct{ f *transport.UDPFlow }

func (u udpHalter) halt() { u.f.Stop() }
