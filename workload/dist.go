package workload

import (
	"fmt"
	"math"
	"math/rand"

	"minions/internal/sim"
)

// quantN is the resolution of the pre-built inverse-CDF tables: sampling
// interpolates between quantN+1 pre-computed quantiles with a single uniform
// draw, so every distribution samples in O(1) with zero allocations
// regardless of how it was specified.
const quantN = 1024

// CDFPoint is one point of an empirical flow-size CDF:
// P(size <= Bytes) == P. Points must be strictly increasing in both fields
// and end at P == 1.
type CDFPoint struct {
	Bytes float64
	P     float64
}

type sizeKind uint8

const (
	sizeFixed sizeKind = iota
	sizeTable
	sizePareto
)

// SizeDist is a flow/message size distribution. The zero value is invalid;
// build one with Fixed, WebSearch, DataMining, Lognormal, Pareto or
// Empirical. All constructors pre-compute their inverse-CDF tables, so the
// value is cheap to copy and sampling never allocates.
type SizeDist struct {
	kind  sizeKind
	name  string
	fixed int
	table []float64 // quantN+1 size quantiles at u = i/quantN
	alpha float64   // pareto shape
	xm    float64   // pareto scale (minimum)
	lo    int       // clamp floor (>= 1)
	hi    int       // clamp ceiling
	mean  float64
}

// Name returns the distribution's human-readable name.
func (d SizeDist) Name() string { return d.name }

// Mean returns the expected size in bytes under the configured clamp. It is
// what Load-based arrival rates divide by.
func (d SizeDist) Mean() float64 { return d.mean }

// MaxBytes returns the largest size the distribution can emit under its
// clamp — the bound the compiler uses to pre-size packet pools so burst
// sources never allocate, even on their first record-size message.
func (d SizeDist) MaxBytes() int {
	switch d.kind {
	case sizeFixed:
		return d.clamp(float64(d.fixed))
	case sizePareto:
		return d.hi
	default:
		return d.clamp(d.table[quantN])
	}
}

// sample draws one size. Single uniform draw, O(1), zero allocations.
func (d SizeDist) sample(rng *rand.Rand) int {
	switch d.kind {
	case sizeFixed:
		return d.fixed
	case sizePareto:
		u := rng.Float64()
		v := d.xm * math.Pow(1-u, -1/d.alpha)
		return d.clamp(v)
	default:
		u := rng.Float64() * quantN
		i := int(u)
		if i >= quantN {
			i = quantN - 1
		}
		frac := u - float64(i)
		v := d.table[i] + frac*(d.table[i+1]-d.table[i])
		return d.clamp(v)
	}
}

func (d SizeDist) clamp(v float64) int {
	n := int(v)
	if n < d.lo {
		return d.lo
	}
	if d.hi > 0 && n > d.hi {
		return d.hi
	}
	return n
}

// quantile evaluates the inverse CDF at u in [0,1] (pre-clamp) — used only
// at construction time to integrate the mean numerically.
func (d SizeDist) quantileRaw(u float64) float64 {
	switch d.kind {
	case sizeFixed:
		return float64(d.fixed)
	case sizePareto:
		if u >= 1 {
			u = 1 - 1/float64(4*quantN)
		}
		return d.xm * math.Pow(1-u, -1/d.alpha)
	default:
		x := u * quantN
		i := int(x)
		if i >= quantN {
			i = quantN - 1
		}
		return d.table[i] + (x-float64(i))*(d.table[i+1]-d.table[i])
	}
}

// finish computes the clamped mean by midpoint integration over the
// quantile grid — uniform across kinds, so Clamped stays consistent.
func (d SizeDist) finish() SizeDist {
	if d.lo < 1 {
		d.lo = 1
	}
	if d.kind == sizeFixed {
		d.mean = float64(d.clamp(float64(d.fixed)))
		return d
	}
	sum := 0.0
	for i := 0; i < quantN; i++ {
		u := (float64(i) + 0.5) / quantN
		sum += float64(d.clamp(d.quantileRaw(u)))
	}
	d.mean = sum / quantN
	return d
}

// Clamped returns a copy of the distribution truncated to [lo, hi] bytes
// (hi <= 0 means unbounded above); the mean is recomputed under the clamp.
func (d SizeDist) Clamped(lo, hi int) SizeDist {
	d.lo, d.hi = lo, hi
	return d.finish()
}

// Fixed returns a degenerate distribution: every draw is exactly n bytes
// (and consumes no randomness).
func Fixed(n int) SizeDist {
	return SizeDist{kind: sizeFixed, name: "fixed", fixed: n}.finish()
}

// Pareto returns a Pareto (power-law) size distribution with shape alpha
// and minimum minBytes, clamped above at 1 GB by default (re-clamp with
// Clamped). Shapes near 1 give the classic heavy tail where a tiny
// fraction of flows carries most of the bytes.
func Pareto(alpha float64, minBytes int) SizeDist {
	if alpha <= 0 {
		panic("workload: Pareto shape must be > 0")
	}
	if minBytes < 1 {
		minBytes = 1
	}
	return SizeDist{
		kind: sizePareto, name: "pareto", alpha: alpha, xm: float64(minBytes),
		lo: minBytes, hi: 1 << 30,
	}.finish()
}

// Lognormal returns a lognormal size distribution: ln(bytes) ~ N(mu, sigma²).
// E.g. Lognormal(math.Log(10_000), 2) centers the body near 10 kB with a
// multi-decade tail. Clamped above at 1 GB by default.
func Lognormal(mu, sigma float64) SizeDist {
	if sigma <= 0 {
		panic("workload: Lognormal sigma must be > 0")
	}
	d := SizeDist{kind: sizeTable, name: "lognormal", hi: 1 << 30}
	d.table = make([]float64, quantN+1)
	for i := 0; i <= quantN; i++ {
		u := float64(i) / quantN
		// Pin the table ends away from the +-inf quantiles.
		if u < 0.5/quantN {
			u = 0.5 / quantN
		}
		if u > 1-0.5/quantN {
			u = 1 - 0.5/quantN
		}
		d.table[i] = math.Exp(mu + sigma*invNorm(u))
	}
	return d.finish()
}

// Empirical builds a size distribution from explicit CDF points — the
// scriptable escape hatch: any measured trace CDF becomes an O(1) sampler.
// Sizes interpolate log-linearly between points (flow sizes span decades).
func Empirical(name string, points []CDFPoint) SizeDist {
	if err := validateCDF(points); err != nil {
		panic("workload: " + err.Error())
	}
	d := SizeDist{kind: sizeTable, name: name}
	d.table = make([]float64, quantN+1)
	j := 0
	for i := 0; i <= quantN; i++ {
		u := float64(i) / quantN
		for j < len(points)-1 && points[j+1].P < u {
			j++
		}
		switch {
		case u <= points[0].P:
			d.table[i] = points[0].Bytes
		case j == len(points)-1:
			d.table[i] = points[j].Bytes
		default:
			a, b := points[j], points[j+1]
			t := (u - a.P) / (b.P - a.P)
			d.table[i] = math.Exp(math.Log(a.Bytes) + t*(math.Log(b.Bytes)-math.Log(a.Bytes)))
		}
	}
	return d.finish()
}

func validateCDF(points []CDFPoint) error {
	if len(points) < 2 {
		return fmt.Errorf("empirical CDF needs >= 2 points, got %d", len(points))
	}
	for i, p := range points {
		if p.Bytes < 1 || p.P < 0 || p.P > 1 {
			return fmt.Errorf("empirical CDF point %d out of range: %+v", i, p)
		}
		if i > 0 && (p.Bytes <= points[i-1].Bytes || p.P <= points[i-1].P) {
			return fmt.Errorf("empirical CDF must be strictly increasing at point %d", i)
		}
	}
	if points[len(points)-1].P != 1 {
		return fmt.Errorf("empirical CDF must end at P=1, got %g", points[len(points)-1].P)
	}
	return nil
}

// WebSearch returns the web-search workload flow-size CDF (the
// query/response-dominated mix popularized by the DCTCP evaluation):
// mostly sub-100 kB query traffic with ~30%% of flows between 1 and 30 MB
// carrying the bulk of the bytes.
func WebSearch() SizeDist {
	return Empirical("web-search", []CDFPoint{
		{Bytes: 6e3, P: 0.15},
		{Bytes: 13e3, P: 0.2},
		{Bytes: 19e3, P: 0.3},
		{Bytes: 33e3, P: 0.4},
		{Bytes: 53e3, P: 0.53},
		{Bytes: 133e3, P: 0.6},
		{Bytes: 667e3, P: 0.7},
		{Bytes: 1333e3, P: 0.8},
		{Bytes: 3333e3, P: 0.9},
		{Bytes: 6667e3, P: 0.97},
		{Bytes: 20e6, P: 1},
	})
}

// DataMining returns the data-mining workload flow-size CDF (the
// map-reduce-style mix popularized by the VL2 measurement study): over half
// the flows are tiny (< 100 kB) control/lookup traffic while a ~4%% elephant
// tail reaches into the hundreds of megabytes.
func DataMining() SizeDist {
	return Empirical("data-mining", []CDFPoint{
		{Bytes: 100, P: 0.1},
		{Bytes: 300, P: 0.2},
		{Bytes: 1e3, P: 0.3},
		{Bytes: 2e3, P: 0.4},
		{Bytes: 10e3, P: 0.53},
		{Bytes: 100e3, P: 0.6},
		{Bytes: 1e6, P: 0.7},
		{Bytes: 10e6, P: 0.8},
		{Bytes: 100e6, P: 0.9},
		{Bytes: 250e6, P: 0.95},
		{Bytes: 1e9, P: 1},
	})
}

// invNorm is the Acklam rational approximation of the standard normal
// inverse CDF (|relative error| < 1.15e-9) — used only at table-build time.
func invNorm(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00
		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01
		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00
		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00
		plow = 0.02425
	)
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

type durKind uint8

const (
	durFixed durKind = iota
	durExp
	durPareto
)

// DurDist is a duration distribution for ON/OFF dwell times. Build with
// FixedDur, ExpDur or ParetoDur; sampling is O(1) and allocation-free.
type DurDist struct {
	kind  durKind
	mean  float64 // ns (fixed value for durFixed, mean for durExp)
	alpha float64
	min   float64 // ns, pareto scale
}

// FixedDur returns a degenerate duration distribution (no randomness).
func FixedDur(d sim.Time) DurDist { return DurDist{kind: durFixed, mean: float64(d)} }

// ExpDur returns an exponential duration distribution with the given mean.
func ExpDur(mean sim.Time) DurDist { return DurDist{kind: durExp, mean: float64(mean)} }

// ParetoDur returns a Pareto duration distribution with shape alpha and
// minimum min — heavy-tailed dwell times produce the long-range-dependent
// burstiness of aggregated ON/OFF sources.
func ParetoDur(alpha float64, min sim.Time) DurDist {
	if alpha <= 0 {
		panic("workload: ParetoDur shape must be > 0")
	}
	return DurDist{kind: durPareto, alpha: alpha, min: float64(min)}
}

func (d DurDist) valid() bool {
	switch d.kind {
	case durFixed, durExp:
		return d.mean > 0
	default:
		return d.min > 0
	}
}

// sample draws one duration (always >= 1 ns).
func (d DurDist) sample(rng *rand.Rand) sim.Time {
	var v float64
	switch d.kind {
	case durFixed:
		return sim.Time(d.mean)
	case durExp:
		v = rng.ExpFloat64() * d.mean
	default:
		v = d.min * math.Pow(1-rng.Float64(), -1/d.alpha)
		// Cap pathological tail draws at 1000x the minimum so a single
		// source cannot sleep (or blast) past any realistic run length.
		if v > d.min*1000 {
			v = d.min * 1000
		}
	}
	if v < 1 {
		v = 1
	}
	return sim.Time(v)
}

// aliasTable is a Vose alias table over class weights: picking a class is
// one uniform draw, O(1), allocation-free.
type aliasTable struct {
	prob  []float64
	alias []int32
}

func newAlias(w []float64) aliasTable {
	n := len(w)
	t := aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

func (t aliasTable) pick(rng *rand.Rand) int {
	u := rng.Float64() * float64(len(t.prob))
	i := int(u)
	if i >= len(t.prob) {
		i = len(t.prob) - 1
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
