package workload

import (
	"math/rand"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/transport"
)

// msgClass is a compiled Class: the sampler plus pacing parameters.
type msgClass struct {
	sizes     SizeDist
	rateBps   int64
	burstBits int64
}

// pendMsg is one paced message waiting for its token bucket.
type pendMsg struct {
	dst   link.NodeID
	bytes int32
	class int32
}

// pendRing is a fixed-capacity FIFO of paced messages — pre-allocated at
// compile time so enqueue/dequeue never allocate.
type pendRing struct {
	buf  []pendMsg
	head int
	n    int
}

func (r *pendRing) push(m pendMsg) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
	return true
}

func (r *pendRing) pop() (pendMsg, bool) {
	if r.n == 0 {
		return pendMsg{}, false
	}
	m := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m, true
}

// tokenBucket is a precise rate pacer in wire bits with nanosecond
// remainder accounting: refills carry the sub-bit remainder forward, so
// long-run throughput is exactly rateBps with no drift.
type tokenBucket struct {
	rateBps   int64
	burstBits int64
	bits      int64
	rem       int64 // accumulated bit-fraction numerator, < 1e9
	last      sim.Time
}

func (b *tokenBucket) setRate(rate, burst int64, now sim.Time) {
	b.refill(now)
	b.rateBps = rate
	b.burstBits = burst
	if b.bits > burst {
		b.bits = burst
		b.rem = 0
	}
}

func (b *tokenBucket) refill(now sim.Time) {
	el := int64(now - b.last)
	b.last = now
	if el <= 0 || b.rateBps <= 0 {
		return
	}
	need := b.burstBits - b.bits
	if need <= 0 {
		return
	}
	// Cap the elapsed window at time-to-full before multiplying: keeps
	// el*rate far from int64 overflow for any idle gap.
	full := (need*int64(sim.Second)-b.rem+b.rateBps-1)/b.rateBps + 1
	if el >= full {
		b.bits = b.burstBits
		b.rem = 0
		return
	}
	acc := el*b.rateBps + b.rem
	b.bits += acc / int64(sim.Second)
	b.rem = acc % int64(sim.Second)
	if b.bits > b.burstBits {
		b.bits = b.burstBits
		b.rem = 0
	}
}

func (b *tokenBucket) take(bits int64) bool {
	if b.bits < bits {
		return false
	}
	b.bits -= bits
	return true
}

// wait returns the time until `bits` tokens will be available.
func (b *tokenBucket) wait(bits int64) sim.Time {
	need := bits - b.bits
	dt := (need*int64(sim.Second) - b.rem + b.rateBps - 1) / b.rateBps
	if dt < 1 {
		dt = 1
	}
	return sim.Time(dt)
}

// msgSource is the resident per-host message generator: Poisson arrivals,
// class-mixed sizes, burst or token-bucket-paced transmission. It is its
// own sim.Handler (arg 0 = arrival, arg 1 = arm only), so steady state
// draws, sends and re-arms with zero allocations.
type msgSource struct {
	eng     *sim.Engine
	src     *host.Host
	rng     *rand.Rand
	g       *groupRun
	dsts    []*host.Host
	meanGap float64
	pktSize int
	sport   uint16
	dport   uint16
	stopAt  sim.Time
	classes []msgClass
	pick    aliasTable // empty when a single class

	// Pacing state (nil drain = all classes burst).
	drain    *msgDrain
	bucket   tokenBucket
	pend     pendRing
	cur      pendMsg
	curRem   int
	draining bool
}

func (s *msgSource) halt() { s.stopAt = 0 }

func (s *msgSource) arm() {
	gap := sim.Time(s.rng.ExpFloat64() * s.meanGap)
	if gap < 1 {
		gap = 1
	}
	s.eng.ScheduleAfter(gap, s, 0)
}

// Handle fires one message arrival (or, with arg 1, just arms the first).
func (s *msgSource) Handle(arg uint64) {
	if arg == 1 {
		s.arm()
		return
	}
	if s.eng.Now() >= s.stopAt {
		return
	}
	dst := s.dsts[s.rng.Intn(len(s.dsts))]
	for dst == s.src {
		dst = s.dsts[s.rng.Intn(len(s.dsts))]
	}
	ci := 0
	if len(s.pick.prob) > 0 {
		ci = s.pick.pick(s.rng)
	}
	c := &s.classes[ci]
	size := c.sizes.sample(s.rng)
	s.g.msgs.Add(1)
	s.g.msgBytes.Add(uint64(size))
	if c.rateBps <= 0 {
		n := transport.SendBurst(s.src, dst.ID(), s.sport, s.dport, size, s.pktSize)
		s.g.pkts.Add(uint64(n))
	} else {
		s.enqueue(pendMsg{dst: dst.ID(), bytes: int32(size), class: int32(ci)})
	}
	s.arm()
}

func (s *msgSource) enqueue(m pendMsg) {
	if s.draining {
		if !s.pend.push(m) {
			s.g.overflow.Add(1)
		}
		return
	}
	s.cur = m
	s.curRem = int(m.bytes)
	s.draining = true
	c := &s.classes[m.class]
	s.bucket.setRate(c.rateBps, c.burstBits, s.eng.Now())
	s.drain.Handle(0)
}

// msgDrain is the token-bucket transmit loop of a paced msgSource — a
// second resident sim.Handler identity so pacing events stay typed and
// allocation-free.
type msgDrain struct{ s *msgSource }

func (d *msgDrain) Handle(uint64) {
	s := d.s
	if !s.draining {
		return
	}
	now := s.eng.Now()
	s.bucket.refill(now)
	for {
		sz := s.curRem
		if sz > s.pktSize {
			sz = s.pktSize
		}
		wire := sz + transport.HeaderBytes
		bits := int64(wire) * 8
		if !s.bucket.take(bits) {
			s.eng.ScheduleAfter(s.bucket.wait(bits), d, 0)
			return
		}
		p := s.src.NewPacket(s.cur.dst, s.sport, s.dport, link.ProtoUDP, wire)
		s.src.Send(p)
		s.g.pkts.Add(1)
		s.curRem -= sz
		if s.curRem <= 0 {
			m, ok := s.pend.pop()
			if !ok {
				s.draining = false
				return
			}
			s.cur = m
			s.curRem = int(m.bytes)
			c := &s.classes[m.class]
			s.bucket.setRate(c.rateBps, c.burstBits, now)
		}
	}
}

// onoffSource alternates heavy-tailed ON bursts (CBR toward one random
// destination) with silent OFF periods — one resident handler per host.
type onoffSource struct {
	eng     *sim.Engine
	src     *host.Host
	rng     *rand.Rand
	g       *groupRun
	dsts    []*host.Host
	pktSize int
	gap     sim.Time // per-packet serialization gap at RateBps
	sport   uint16
	dport   uint16
	stopAt  sim.Time
	on, off DurDist
	onUntil sim.Time
	dst     link.NodeID
	active  bool
}

func (s *onoffSource) halt() { s.stopAt = 0 }

// Handle advances the ON/OFF state machine by one packet or transition.
func (s *onoffSource) Handle(uint64) {
	now := s.eng.Now()
	if now >= s.stopAt {
		return
	}
	if !s.active {
		d := s.dsts[s.rng.Intn(len(s.dsts))]
		for d == s.src {
			d = s.dsts[s.rng.Intn(len(s.dsts))]
		}
		s.dst = d.ID()
		s.onUntil = now + s.on.sample(s.rng)
		s.active = true
		s.g.msgs.Add(1)
	}
	if now >= s.onUntil {
		s.active = false
		s.eng.ScheduleAfter(s.off.sample(s.rng), s, 0)
		return
	}
	p := s.src.NewPacket(s.dst, s.sport, s.dport, link.ProtoUDP, s.pktSize)
	s.src.Send(p)
	s.g.pkts.Add(1)
	s.g.msgBytes.Add(uint64(s.pktSize))
	s.eng.ScheduleAfter(s.gap, s, 0)
}

func compileOnOff(g *Group, gr *groupRun, hosts []*host.Host, seed int64, r *Runner) error {
	o := g.OnOff
	if o.RateBps <= 0 {
		return errorf("OnOff.RateBps must be > 0")
	}
	if !o.On.valid() || !o.Off.valid() {
		return errorf("OnOff.On and .Off must be set (FixedDur/ExpDur/ParetoDur)")
	}
	pktSize := o.PktSize
	if pktSize == 0 {
		pktSize = 1400
	}
	dstPort := o.DstPort
	if dstPort == 0 {
		dstPort = 9300
	}
	sportBase := g.SportBase
	if sportBase == 0 {
		sportBase = 40000
	}
	dsts, _, err := resolve(hosts, o.Dst)
	if err != nil {
		return errorf("Dst: %v", err)
	}
	for _, h := range dsts {
		r.Sinks = append(r.Sinks, transport.NewSink(h, dstPort, link.ProtoUDP))
	}
	_, srcIdx, err := resolve(hosts, g.Hosts)
	if err != nil {
		return errorf("Hosts: %v", err)
	}
	if len(dsts) == 1 {
		for _, i := range srcIdx {
			if hosts[i] == dsts[0] {
				return errorf("sole destination is also a source")
			}
		}
	}
	member := make([]bool, len(hosts))
	for _, i := range srcIdx {
		member[i] = true
	}
	gap := sim.Time(int64(pktSize) * 8 * int64(sim.Second) / o.RateBps)
	if gap < 1 {
		gap = 1
	}
	stopAt := stopOf(g)
	for i, h := range hosts {
		if !member[i] {
			continue
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		src := &onoffSource{
			eng: h.Engine(), src: h, rng: rng, g: gr,
			dsts: dsts, pktSize: pktSize, gap: gap,
			sport: uint16(sportBase + i), dport: dstPort,
			stopAt: stopAt, on: o.On, off: o.Off,
		}
		gr.sources++
		r.sources = append(r.sources, src)
		// ON periods emit one packet per gap; a handful covers the in-flight
		// window even across deep queues.
		r.reservePool(h, 8)
		// Stagger starts by an initial OFF draw so sources do not
		// phase-lock their first bursts.
		h.Engine().Schedule(g.Start+o.Off.sample(rng), src, 0)
	}
	r.nsrc += gr.sources
	return nil
}
