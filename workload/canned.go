package workload

import "minions/internal/sim"

// AllToAllConfig mirrors the legacy trafficgen all-to-all workload: every
// host Poisson-sends fixed-size messages to uniform-random peers as
// back-to-back bursts — the §2.1 microburst traffic.
type AllToAllConfig struct {
	MsgBytes int     // bytes per message
	Load     float64 // fraction of each host NIC's line rate
	PktSize  int     // max payload per packet (default 1440)
	DstPort  uint16  // sink port (default 9000)
	Duration sim.Time
	Seed     int64
}

// AllToAll returns the canned all-to-all Spec. With Seed/defaults matching,
// the compiled generators replay the legacy internal/trafficgen.AllToAll
// byte-identically (same per-host RNG streams, same draw order) — the
// Fig1/Fig2 golden tables pin this.
func AllToAll(cfg AllToAllConfig) Spec {
	load := cfg.Load
	if cfg.Duration <= 0 {
		// Legacy semantics: a zero duration stops senders at t=0, i.e.
		// no traffic at all. Compile no senders so Run() still terminates.
		load = 0
	}
	return Spec{Seed: cfg.Seed, Groups: []Group{{
		Name: "all-to-all",
		Stop: cfg.Duration,
		Messages: &MessageSpec{
			Classes: []Class{{Sizes: Fixed(cfg.MsgBytes)}},
			Load:    load,
			PktSize: cfg.PktSize,
			DstPort: cfg.DstPort,
		},
	}}}
}

// UniformRandomConfig mirrors the legacy trafficgen uniform-random-flows
// workload: long-lived CBR UDP flows between uniform-random host pairs.
type UniformRandomConfig struct {
	Flows    int
	RateBps  int64
	PktSize  int    // wire bytes per packet (default 1500)
	DstPort  uint16 // sink port (default 9100)
	Seed     int64
	MaxStart sim.Time // start jitter window (default 1 ms)
}

// UniformRandom returns the canned uniform-random-flows Spec, byte-identical
// to the legacy internal/trafficgen.UniformRandomFlows (one shared pair RNG,
// same sink/flow creation order) — the ScaleResult golden fingerprints pin
// this.
func UniformRandom(cfg UniformRandomConfig) Spec {
	return Spec{Seed: cfg.Seed, Groups: []Group{{
		Name: "uniform-random",
		Flows: &FlowSpec{
			Flows:    cfg.Flows,
			RateBps:  cfg.RateBps,
			PktSize:  cfg.PktSize,
			DstPort:  cfg.DstPort,
			MaxStart: cfg.MaxStart,
		},
	}}}
}
