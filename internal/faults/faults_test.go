package faults_test

import (
	"fmt"
	"math/rand"
	"testing"

	"minions/internal/asm"
	"minions/internal/faults"
	"minions/internal/host"
	"minions/internal/sim"
	"minions/internal/topo"
	"minions/internal/transport"
)

// randomPlan derives an arbitrary-but-deterministic fault plan from a seed:
// every spec is present or absent by coin flip, with rates and time
// constants drawn from ranges wide enough to cover quiet runs, loss storms
// and permanent-flap pathologies. The property tests quantify over these.
func randomPlan(seed int64, horizon sim.Time) *faults.Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &faults.Plan{Seed: seed, Horizon: horizon}
	if rng.Intn(2) == 0 {
		p.Flap = &faults.FlapSpec{
			MTTF: sim.Time(1+rng.Intn(40)) * sim.Millisecond,
			MTTR: sim.Time(1+rng.Intn(10)) * sim.Millisecond,
		}
	}
	if rng.Intn(4) > 0 {
		p.Loss = &faults.LossSpec{Rate: rng.Float64() * 0.05}
		if rng.Intn(2) == 0 {
			p.Loss.GoodToBad = rng.Float64() * 0.01
			p.Loss.BadToGood = 0.02 + rng.Float64()*0.2
			p.Loss.BadRate = rng.Float64()
		}
	}
	if rng.Intn(2) == 0 {
		p.Corrupt = &faults.CorruptSpec{Rate: rng.Float64() * 0.1}
	}
	if rng.Intn(2) == 0 {
		p.Jitter = &faults.JitterSpec{
			Rate: rng.Float64() * 0.2,
			Max:  sim.Time(1+rng.Intn(50)) * sim.Microsecond,
		}
	}
	if rng.Intn(2) == 0 {
		p.Halt = &faults.HaltSpec{
			MTTF: sim.Time(5+rng.Intn(60)) * sim.Millisecond,
			MTTR: sim.Time(1+rng.Intn(10)) * sim.Millisecond,
		}
	}
	return p
}

// chaosRun drives a TPP-instrumented dumbbell under the plan on the given
// scheduler and shard count, drains it, and returns (fingerprint, leaked).
// The fingerprint covers every deterministic observable: fault counts, sink
// deliveries and link totals.
func chaosRun(t testing.TB, plan *faults.Plan, shards int, sched sim.Scheduler) (string, int64) {
	t.Helper()
	n := topo.NewShardedScheduler(7, shards, sched)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)

	app := n.CP.RegisterApp("faults-test")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]
PUSH [Link:QueuedBytes]`)
	var sinks []*transport.Sink
	var flows []*transport.UDPFlow
	for i := 0; i < 2; i++ {
		src, dst := hosts[i], hosts[2+i]
		if _, err := src.AddTPP(app, host.FilterSpec{Proto: 17}, prog, 1, 0); err != nil {
			t.Fatal(err)
		}
		port := uint16(9000 + i)
		sinks = append(sinks, transport.NewSink(dst, port, 17))
		f := transport.NewUDPFlow(src, dst.ID(), port, port, 1000)
		f.SetRateBps(30_000_000)
		f.Start()
		flows = append(flows, f)
	}

	inj := faults.NewInjector(*plan)
	if err := inj.Arm(n.Links(), n.Switches); err != nil {
		t.Fatal(err)
	}
	n.RunUntil(plan.Horizon + 10*sim.Millisecond)
	for _, f := range flows {
		f.Stop()
	}
	n.Run() // drain: every in-flight packet delivered or dropped terminally

	c := inj.Counts()
	fp := fmt.Sprintf("counts=%+v", c)
	for i, s := range sinks {
		fp += fmt.Sprintf(" sink%d=%d/%d", i, s.Packets, s.Bytes)
	}
	var tx, drops uint64
	for _, l := range n.Links() {
		st := l.Stats()
		tx += st.TxPackets
		drops += st.DropPackets
	}
	fp += fmt.Sprintf(" tx=%d drops=%d", tx, drops)

	if plan.Flap != nil && c.LinkDowns != c.LinkUps {
		t.Errorf("horizon restore broken: %d downs vs %d ups", c.LinkDowns, c.LinkUps)
	}
	if plan.Halt != nil && c.Halts != c.Restarts {
		t.Errorf("horizon restore broken: %d halts vs %d restarts", c.Halts, c.Restarts)
	}
	return fp, n.PoolOutstanding()
}

// TestPlanPoolOwnership is the fault plane's core safety property: for any
// plan and any seed, a drained run leaks no pool packets — every packet the
// injector dropped mid-flight (link down, loss, halted switch) was released
// exactly once — at one and at two shards.
func TestPlanPoolOwnership(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		plan := randomPlan(seed, 80*sim.Millisecond)
		for _, shards := range []int{1, 2} {
			if _, leaked := chaosRun(t, plan, shards, sim.SchedulerWheel); leaked != 0 {
				t.Errorf("seed %d shards %d: leaked %d pool packets", seed, shards, leaked)
			}
		}
	}
}

// TestPlanSchedulerDeterminism pins byte-identical fault behavior across
// engine schedulers for a handful of seeds (the fuzz target widens this).
func TestPlanSchedulerDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		plan := randomPlan(seed, 60*sim.Millisecond)
		wheel, _ := chaosRun(t, plan, 1, sim.SchedulerWheel)
		heap, _ := chaosRun(t, plan, 1, sim.SchedulerHeap)
		if wheel != heap {
			t.Errorf("seed %d diverges across schedulers:\n  wheel: %s\n  heap:  %s", seed, wheel, heap)
		}
	}
}

// FuzzFaultPlanDeterminism fuzzes the determinism contract: any plan seed
// must produce byte-identical fault counts and traffic totals across the
// heap and wheel schedulers, and leak nothing under either.
func FuzzFaultPlanDeterminism(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		plan := randomPlan(seed, 40*sim.Millisecond)
		wheel, leakedW := chaosRun(t, plan, 1, sim.SchedulerWheel)
		heap, leakedH := chaosRun(t, plan, 1, sim.SchedulerHeap)
		if wheel != heap {
			t.Errorf("seed %d diverges across schedulers:\n  wheel: %s\n  heap:  %s", seed, wheel, heap)
		}
		if leakedW != 0 || leakedH != 0 {
			t.Errorf("seed %d leaked pool packets: wheel %d, heap %d", seed, leakedW, leakedH)
		}
	})
}
