// Package faults is the deterministic fault-injection plane: a seedable
// Plan of link flaps, packet loss (Bernoulli and Gilbert-Elliott burst),
// TPP-section corruption, serialization jitter and switch halts, scheduled
// through the simulation engine itself so every fault is an ordinary
// deterministic event. The paper's premise is that TPPs are unreliable by
// design (§2, §5 of the extended version): this plane is how the repo makes
// links actually fail so the minions' degradation stories can be tested.
//
// Determinism contract: a Plan carries its own Seed. Every fault target
// (one link, one switch) owns a private RNG stream derived from the Plan
// seed and the target's stable index, and schedules its fault events on the
// engine that owns the target's shard. No mutable state is shared across
// shards — the aggregate counters are commutative atomic sums — so a given
// (topology, workload, plan, seed) tuple replays byte-identically on one
// shard or many, and on either engine scheduler. Reproducible scripted
// chaos in the spirit of MoonGen's seedable traffic scripting
// (arXiv:1410.3322).
//
// Zero-cost when disarmed: the hot path's only overhead is the nil TxFault
// check links already perform; an unarmed network schedules no events and
// allocates nothing.
package faults

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"minions/internal/device"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/stream"
)

// FlapSpec describes random link down/up flapping with exponentially
// distributed time-to-failure and time-to-repair.
type FlapSpec struct {
	MTTF sim.Time // mean up time before a failure
	MTTR sim.Time // mean outage duration
	// Links restricts flapping to these link indices (creation order, as in
	// topo.Network.Links). Nil means every armed link flaps.
	Links []int
}

// LossSpec describes per-packet loss at the transmit path. With only Rate
// set it is Bernoulli loss; setting GoodToBad enables the two-state
// Gilbert-Elliott burst model — per-packet state transitions with loss
// probability Rate in the good state and BadRate in the bad (burst) state.
type LossSpec struct {
	Rate      float64 // loss probability (good state)
	GoodToBad float64 // per-packet P(good → bad); 0 disables the GE chain
	BadToGood float64 // per-packet P(bad → good)
	BadRate   float64 // loss probability in the bad state
	Links     []int   // nil = all armed links
}

// CorruptSpec describes TPP-section corruption: with probability Rate per
// TPP-carrying packet, one packet-memory word is bit-flipped. Headers and
// instructions are never touched (a hardware CRC would discard those); the
// stale checksum makes the corruption observable to end-host verification
// and tppdump while the in-network executors — which skip verification on
// the fast path, as the paper's switches do — run the garbage.
type CorruptSpec struct {
	Rate  float64
	Links []int
}

// JitterSpec describes added serialization delay: with probability Rate per
// packet, a uniform stall in (0, Max] stretches the packet's serialization.
// Jitter is modeled at serialization — not propagation — so link delivery
// order is preserved, which the link's inflight ring requires.
type JitterSpec struct {
	Rate  float64
	Max   sim.Time
	Links []int
}

// HaltSpec describes random switch halt/restart cycles, exponentially
// distributed like link flaps. A halted switch drops all ingress traffic;
// its forwarding state survives the outage.
type HaltSpec struct {
	MTTF     sim.Time
	MTTR     sim.Time
	Switches []int // nil = all armed switches
}

// EventKind classifies fault-plane events.
type EventKind uint8

const (
	LinkDown EventKind = iota
	LinkUp
	BurstStart // Gilbert-Elliott bad-state entry
	BurstEnd
	SwitchHalt
	SwitchRestart
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case BurstStart:
		return "burst-start"
	case BurstEnd:
		return "burst-end"
	case SwitchHalt:
		return "switch-halt"
	case SwitchRestart:
		return "switch-restart"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one fault-plane occurrence: a state change of a link or switch.
// Link and Switch are creation-order indices; the unused one is -1.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Link   int
	Switch int
	Node   link.NodeID // the affected switch's address, 0 for link events
}

// Plan is a complete, seedable fault schedule. The zero value (or a nil
// *Plan) means "no faults". Script entries fire at fixed times; the
// stochastic specs draw from per-target streams seeded by Seed. Horizon,
// when set, ends the chaos: no stochastic fault begins at or after it, and
// every downed link and halted switch is restored by then — the recovery
// phase chaos scenarios measure begins at Horizon. Without a Horizon the
// Flap/Halt machines reschedule forever, so a drain-style Run never
// terminates; bound such runs with RunUntil or call Injector.Disarm.
type Plan struct {
	Seed    int64
	Horizon sim.Time

	Flap    *FlapSpec
	Loss    *LossSpec
	Corrupt *CorruptSpec
	Jitter  *JitterSpec
	Halt    *HaltSpec

	// Script is a list of fixed-time events (LinkDown/LinkUp/SwitchHalt/
	// SwitchRestart only). Scripted state changes do not chain — combining
	// Script and a stochastic Flap/Halt spec on the same target makes the
	// two fight over its state; use disjoint targets.
	Script []Event
}

// Counts aggregates fault activity over a run. All fields are commutative
// sums, safe to accumulate from every shard.
type Counts struct {
	LinkDowns, LinkUps     uint64
	Losses                 uint64 // packets dropped by Loss
	Corruptions            uint64
	Stalls                 uint64 // packets stretched by Jitter
	Halts, Restarts        uint64
	BurstStarts, BurstEnds uint64
	ScriptFired            uint64
}

// Injector arms a Plan onto a concrete set of links and switches. One
// Injector serves one run; Arm exactly once.
type Injector struct {
	plan  Plan
	armed bool

	links    []*linkFault
	switches []*switchFault

	events stream.Stream[Event]

	// Counters are atomics: shards publish concurrently.
	linkDowns, linkUps     atomic.Uint64
	losses                 atomic.Uint64
	corruptions            atomic.Uint64
	stalls                 atomic.Uint64
	halts, restarts        atomic.Uint64
	burstStarts, burstEnds atomic.Uint64
	scriptFired            atomic.Uint64
}

// NewInjector creates an injector for plan (copied; later mutation of the
// caller's Plan has no effect).
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan}
}

// Plan returns the armed plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// Events returns the fault-event stream. Events publish on the shard that
// owns the affected target, so subscribe only on single-shard runs unless
// the subscriber does its own locking; event order across shards is not
// deterministic (the Counts are).
func (inj *Injector) Events() *stream.Stream[Event] { return &inj.events }

// Counts snapshots the aggregate fault counters.
func (inj *Injector) Counts() Counts {
	return Counts{
		LinkDowns:   inj.linkDowns.Load(),
		LinkUps:     inj.linkUps.Load(),
		Losses:      inj.losses.Load(),
		Corruptions: inj.corruptions.Load(),
		Stalls:      inj.stalls.Load(),
		Halts:       inj.halts.Load(),
		Restarts:    inj.restarts.Load(),
		BurstStarts: inj.burstStarts.Load(),
		BurstEnds:   inj.burstEnds.Load(),
		ScriptFired: inj.scriptFired.Load(),
	}
}

// targetRNG derives the private RNG stream for target index idx of class
// class (0 links, 1 switches). SplitMix-style mixing keeps the streams
// distinct for any plan seed.
func (inj *Injector) targetRNG(class, idx int) *rand.Rand {
	s := inj.plan.Seed ^ (int64(idx+1)+int64(class)<<32)*-0x61C8864680B583EB
	return rand.New(rand.NewSource(s))
}

// Arm installs the plan onto the targets: links and switches are addressed
// by slice index, which must match the indices used in the plan's specs and
// script (topology creation order). Arm schedules the initial stochastic
// events and every scripted event, and hooks the transmit path of each link
// a Loss/Corrupt/Jitter spec covers.
func (inj *Injector) Arm(links []*link.Link, switches []*device.Switch) error {
	if inj.armed {
		return fmt.Errorf("faults: injector armed twice")
	}
	inj.armed = true
	p := &inj.plan

	if err := checkIndices("Flap.Links", specLinks(p.Flap), len(links)); err != nil {
		return err
	}
	if p.Loss != nil {
		if err := checkIndices("Loss.Links", p.Loss.Links, len(links)); err != nil {
			return err
		}
	}
	if p.Corrupt != nil {
		if err := checkIndices("Corrupt.Links", p.Corrupt.Links, len(links)); err != nil {
			return err
		}
	}
	if p.Jitter != nil {
		if err := checkIndices("Jitter.Links", p.Jitter.Links, len(links)); err != nil {
			return err
		}
	}
	if p.Halt != nil {
		if err := checkIndices("Halt.Switches", p.Halt.Switches, len(switches)); err != nil {
			return err
		}
	}

	inj.links = make([]*linkFault, len(links))
	for i, l := range links {
		lf := &linkFault{inj: inj, idx: i, l: l}
		inj.links[i] = lf
		needRNG := false
		if p.Flap != nil && applies(i, p.Flap.Links) {
			lf.flap = true
			needRNG = true
		}
		if p.Loss != nil && applies(i, p.Loss.Links) {
			lf.loss = p.Loss
			needRNG = true
		}
		if p.Corrupt != nil && applies(i, p.Corrupt.Links) {
			lf.corrupt = p.Corrupt
			needRNG = true
		}
		if p.Jitter != nil && applies(i, p.Jitter.Links) {
			lf.jitter = p.Jitter
			needRNG = true
		}
		if needRNG {
			lf.rng = inj.targetRNG(0, i)
		}
		if lf.loss != nil || lf.corrupt != nil || lf.jitter != nil {
			l.SetTxFault(lf)
		}
		if lf.flap {
			lf.schedule(inj.expTime(lf.rng, p.Flap.MTTF), argFlapDown)
		}
	}

	inj.switches = make([]*switchFault, len(switches))
	for i, sw := range switches {
		sf := &switchFault{inj: inj, idx: i, sw: sw}
		inj.switches[i] = sf
		if p.Halt != nil && applies(i, p.Halt.Switches) {
			sf.rng = inj.targetRNG(1, i)
			sf.schedule(inj.expTime(sf.rng, p.Halt.MTTF), argHaltDown)
		}
	}

	for _, ev := range p.Script {
		switch ev.Kind {
		case LinkDown, LinkUp:
			if ev.Link < 0 || ev.Link >= len(links) {
				return fmt.Errorf("faults: script link index %d out of range (%d links)", ev.Link, len(links))
			}
			lf := inj.links[ev.Link]
			arg := uint64(argScriptDown)
			if ev.Kind == LinkUp {
				arg = argScriptUp
			}
			lf.l.Engine().Schedule(ev.At, lf, arg)
		case SwitchHalt, SwitchRestart:
			if ev.Switch < 0 || ev.Switch >= len(switches) {
				return fmt.Errorf("faults: script switch index %d out of range (%d switches)", ev.Switch, len(switches))
			}
			sf := inj.switches[ev.Switch]
			arg := uint64(argScriptHalt)
			if ev.Kind == SwitchRestart {
				arg = argScriptRestart
			}
			sf.sw.Engine().Schedule(ev.At, sf, arg)
		default:
			return fmt.Errorf("faults: script event kind %v is not schedulable", ev.Kind)
		}
	}
	return nil
}

// Disarm removes the transmit hooks and restores every downed link and
// halted switch immediately. Pending fault events become no-ops.
func (inj *Injector) Disarm() {
	for _, lf := range inj.links {
		lf.disarmed = true
		lf.l.SetTxFault(nil)
		lf.l.SetDown(false)
	}
	for _, sf := range inj.switches {
		sf.disarmed = true
		sf.sw.SetHalted(false)
	}
}

// expTime draws an exponential interval with the given mean, at least 1 ns.
func (inj *Injector) expTime(rng *rand.Rand, mean sim.Time) sim.Time {
	d := sim.Time(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// pastHorizon reports whether t is at or beyond the plan's horizon.
func (inj *Injector) pastHorizon(t sim.Time) bool {
	return inj.plan.Horizon > 0 && t >= inj.plan.Horizon
}

func specLinks(f *FlapSpec) []int {
	if f == nil {
		return nil
	}
	return f.Links
}

func applies(idx int, sel []int) bool {
	if sel == nil {
		return true
	}
	for _, s := range sel {
		if s == idx {
			return true
		}
	}
	return false
}

func checkIndices(what string, sel []int, n int) error {
	for _, s := range sel {
		if s < 0 || s >= n {
			return fmt.Errorf("faults: %s index %d out of range (%d targets)", what, s, n)
		}
	}
	return nil
}

// Resident event arguments shared by the per-target machines.
const (
	argFlapDown = iota
	argFlapUp
	argScriptDown
	argScriptUp
	argHaltDown
	argHaltUp
	argScriptHalt
	argScriptRestart
)

// linkFault is one link's fault state machine: a resident sim.Handler for
// flap events and the link's TxFault hook for per-packet loss, corruption
// and jitter. It lives entirely on the link's shard.
type linkFault struct {
	inj *Injector
	idx int
	l   *link.Link
	rng *rand.Rand

	flap     bool
	loss     *LossSpec
	corrupt  *CorruptSpec
	jitter   *JitterSpec
	bad      bool // Gilbert-Elliott burst state
	disarmed bool
}

// schedule arms the next flap transition, clamped by the plan horizon: a
// transition that would land past the horizon is dropped, except that a
// pending up-transition is pulled in to the horizon itself so no link stays
// down into the recovery phase.
func (lf *linkFault) schedule(d sim.Time, arg uint64) {
	eng := lf.l.Engine()
	at := eng.Now() + d
	if lf.inj.plan.Horizon > 0 && at >= lf.inj.plan.Horizon {
		if arg == argFlapUp {
			eng.Schedule(lf.inj.plan.Horizon, lf, arg)
		}
		return
	}
	eng.Schedule(at, lf, arg)
}

// Handle runs the flap machine and scripted link events.
func (lf *linkFault) Handle(arg uint64) {
	if lf.disarmed {
		return
	}
	now := lf.l.Engine().Now()
	switch arg {
	case argFlapDown:
		lf.l.SetDown(true)
		lf.inj.linkDowns.Add(1)
		lf.inj.events.Publish(Event{At: now, Kind: LinkDown, Link: lf.idx, Switch: -1})
		lf.schedule(lf.inj.expTime(lf.rng, lf.inj.plan.Flap.MTTR), argFlapUp)
	case argFlapUp:
		lf.l.SetDown(false)
		lf.inj.linkUps.Add(1)
		lf.inj.events.Publish(Event{At: now, Kind: LinkUp, Link: lf.idx, Switch: -1})
		lf.schedule(lf.inj.expTime(lf.rng, lf.inj.plan.Flap.MTTF), argFlapDown)
	case argScriptDown:
		lf.l.SetDown(true)
		lf.inj.linkDowns.Add(1)
		lf.inj.scriptFired.Add(1)
		lf.inj.events.Publish(Event{At: now, Kind: LinkDown, Link: lf.idx, Switch: -1})
	case argScriptUp:
		lf.l.SetDown(false)
		lf.inj.linkUps.Add(1)
		lf.inj.scriptFired.Add(1)
		lf.inj.events.Publish(Event{At: now, Kind: LinkUp, Link: lf.idx, Switch: -1})
	}
}

// FilterTx implements link.TxFault: the per-packet loss, corruption and
// jitter draws, in that order, from the link's private stream. Inactive
// past the plan horizon.
func (lf *linkFault) FilterTx(p *link.Packet) (drop bool, stall sim.Time) {
	now := lf.l.Engine().Now()
	if lf.inj.pastHorizon(now) {
		return false, 0
	}
	if ls := lf.loss; ls != nil {
		rate := ls.Rate
		if ls.GoodToBad > 0 {
			// Gilbert-Elliott: advance the burst chain once per packet.
			if lf.bad {
				if lf.rng.Float64() < ls.BadToGood {
					lf.bad = false
					lf.inj.burstEnds.Add(1)
					lf.inj.events.Publish(Event{At: now, Kind: BurstEnd, Link: lf.idx, Switch: -1})
				}
			} else if lf.rng.Float64() < ls.GoodToBad {
				lf.bad = true
				lf.inj.burstStarts.Add(1)
				lf.inj.events.Publish(Event{At: now, Kind: BurstStart, Link: lf.idx, Switch: -1})
			}
			if lf.bad {
				rate = ls.BadRate
			}
		}
		if rate > 0 && lf.rng.Float64() < rate {
			lf.inj.losses.Add(1)
			return true, 0
		}
	}
	if c := lf.corrupt; c != nil && p.TPP != nil && lf.rng.Float64() < c.Rate {
		if n := p.TPP.MemWords(); n > 0 {
			w := lf.rng.Intn(n)
			bit := uint32(1) << uint(lf.rng.Intn(32))
			p.TPP.SetWord(w, p.TPP.Word(w)^bit)
			lf.inj.corruptions.Add(1)
		}
	}
	if j := lf.jitter; j != nil && j.Max > 0 && lf.rng.Float64() < j.Rate {
		stall = 1 + sim.Time(lf.rng.Int63n(int64(j.Max)))
		lf.inj.stalls.Add(1)
	}
	return false, stall
}

// switchFault is one switch's halt/restart machine.
type switchFault struct {
	inj      *Injector
	idx      int
	sw       *device.Switch
	rng      *rand.Rand
	disarmed bool
}

func (sf *switchFault) schedule(d sim.Time, arg uint64) {
	eng := sf.sw.Engine()
	at := eng.Now() + d
	if sf.inj.plan.Horizon > 0 && at >= sf.inj.plan.Horizon {
		if arg == argHaltUp {
			eng.Schedule(sf.inj.plan.Horizon, sf, arg)
		}
		return
	}
	eng.Schedule(at, sf, arg)
}

// Handle runs the halt machine and scripted switch events.
func (sf *switchFault) Handle(arg uint64) {
	if sf.disarmed {
		return
	}
	now := sf.sw.Engine().Now()
	node := sf.sw.NodeID()
	switch arg {
	case argHaltDown:
		sf.sw.SetHalted(true)
		sf.inj.halts.Add(1)
		sf.inj.events.Publish(Event{At: now, Kind: SwitchHalt, Link: -1, Switch: sf.idx, Node: node})
		sf.schedule(sf.inj.expTime(sf.rng, sf.inj.plan.Halt.MTTR), argHaltUp)
	case argHaltUp:
		sf.sw.SetHalted(false)
		sf.inj.restarts.Add(1)
		sf.inj.events.Publish(Event{At: now, Kind: SwitchRestart, Link: -1, Switch: sf.idx, Node: node})
		sf.schedule(sf.inj.expTime(sf.rng, sf.inj.plan.Halt.MTTF), argHaltDown)
	case argScriptHalt:
		sf.sw.SetHalted(true)
		sf.inj.halts.Add(1)
		sf.inj.scriptFired.Add(1)
		sf.inj.events.Publish(Event{At: now, Kind: SwitchHalt, Link: -1, Switch: sf.idx, Node: node})
	case argScriptRestart:
		sf.sw.SetHalted(false)
		sf.inj.restarts.Add(1)
		sf.inj.scriptFired.Add(1)
		sf.inj.events.Publish(Event{At: now, Kind: SwitchRestart, Link: -1, Switch: sf.idx, Node: node})
	}
}
