package host

import (
	"fmt"
	"sync"

	"minions/internal/core"
	"minions/internal/mem"
)

// App is a registered TPP application: the paper's 64-bit application ID
// plus the compact wire handle carried in TPP headers.
type App struct {
	Name string
	ID   uint64 // §4.1: "The value appid is a 64-bit number"
	Wire uint16 // the on-wire handle (12-byte header budget)
}

// ControlPlane is TPP-CP (§4.1): "a central entity to keep track of running
// TPP applications and manage switch memory". One instance is shared by all
// hosts of a network; its policy is also pushed into every switch as the
// dataplane write filter.
type ControlPlane struct {
	mu     sync.Mutex
	apps   map[uint64]*App
	byWire map[uint16]*App
	nextID uint64
	policy *mem.Policy
	alloc  *mem.Allocator
}

// NewControlPlane returns an empty TPP-CP.
func NewControlPlane() *ControlPlane {
	return &ControlPlane{
		apps:   make(map[uint64]*App),
		byWire: make(map[uint16]*App),
		policy: mem.NewPolicy(),
		alloc:  mem.NewAllocator(),
	}
}

// Policy exposes the access-control table (for inspection and test setup).
func (cp *ControlPlane) Policy() *mem.Policy { return cp.policy }

// RegisterApp creates an application identity. The 64-bit ID is never
// reused; the compact wire handle is the lowest free one, so handles
// released by ReleaseApp recycle instead of marching toward the uint16
// wrap — where a colliding handle would alias two live applications in
// every TPP header and dataplane policy lookup.
func (cp *ControlPlane) RegisterApp(name string) *App {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.nextID++
	wire := uint16(0)
	for w := uint16(1); w != 0; w++ {
		if _, used := cp.byWire[w]; !used {
			wire = w
			break
		}
	}
	if wire == 0 {
		panic("host: all 65535 wire app handles in use")
	}
	app := &App{Name: name, ID: cp.nextID<<16 | 0x5EED, Wire: wire}
	cp.apps[app.ID] = app
	cp.byWire[app.Wire] = app
	return app
}

// AllocLinkRegisters reserves n consecutive per-link AppSpecific registers
// for the application network-wide (the way the paper's control plane
// "allocates two memory addresses per link" for RCP) and grants read/write
// on their dynamic-window addresses. It returns the first register index.
func (cp *ControlPlane) AllocLinkRegisters(app *App, n int) (int, error) {
	idx, err := cp.alloc.Alloc(app.ID, n)
	if err != nil {
		return 0, err
	}
	start := mem.DynOutLinkBase + mem.LinkAppSpecific0 + mem.Addr(idx)
	cp.policy.Grant(mem.Segment{
		AppID: app.ID,
		Op:    mem.OpRead | mem.OpWrite,
		Start: start,
		End:   start + mem.Addr(n),
	})
	// Also grant the explicit per-port aliases so scatter-gather reads of
	// specific ports pass validation.
	for port := 0; port < mem.MaxPorts; port++ {
		a := mem.LinkAddr(port, mem.LinkAppSpecific0+mem.Addr(idx))
		cp.policy.Grant(mem.Segment{
			AppID: app.ID,
			Op:    mem.OpRead | mem.OpWrite,
			Start: a,
			End:   a + mem.Addr(n),
		})
	}
	return idx, nil
}

// GrantWrite adds an explicit write grant for an address range.
func (cp *ControlPlane) GrantWrite(app *App, start, end mem.Addr) {
	cp.policy.Grant(mem.Segment{AppID: app.ID, Op: mem.OpRead | mem.OpWrite, Start: start, End: end})
}

// ReleaseApp frees every grant and register owned by the application:
// policy segments are revoked (so no stale grant can validate a successor's
// program), AppSpecific link registers return to the allocator, and the
// wire handle becomes free for reuse. Releasing an already-released app is
// a no-op — in particular it cannot disturb a successor that has since been
// issued the same wire handle.
func (cp *ControlPlane) ReleaseApp(app *App) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, live := cp.apps[app.ID]; !live {
		return
	}
	cp.policy.Revoke(app.ID)
	cp.alloc.Free(app.ID)
	delete(cp.apps, app.ID)
	delete(cp.byWire, app.Wire)
}

// ValidateProgram statically analyzes a TPP against the application's
// grants (§4.1: "The TPPs are statically analyzed, to see if it accesses
// memories outside the permitted address range; if so, the API call returns
// a failure and the TPP is never installed").
func (cp *ControlPlane) ValidateProgram(app *App, p *core.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, in := range p.Insns {
		if !in.Op.Writes() {
			continue
		}
		if in.Op == core.OpLOADI {
			continue
		}
		if !cp.policy.Allowed(app.ID, mem.OpWrite, in.Addr) {
			return fmt.Errorf("host: instruction %d (%v) writes %v outside app %q's grants",
				i, in.Op, in.Addr, app.Name)
		}
	}
	return nil
}

// SwitchWritePolicy returns the dataplane-side write filter for switches:
// given the wire app handle and target address, is the write permitted? This
// is how TPP-CP "configures the dataplane to enforce access control
// policies" (§4.1) — defense in depth behind the static analysis.
func (cp *ControlPlane) SwitchWritePolicy() func(appID uint16, a mem.Addr) bool {
	return func(appID uint16, a mem.Addr) bool {
		cp.mu.Lock()
		app, ok := cp.byWire[appID]
		cp.mu.Unlock()
		if !ok {
			return false
		}
		return cp.policy.Allowed(app.ID, mem.OpWrite, a)
	}
}

// App looks up a registered application by wire handle.
func (cp *ControlPlane) App(wire uint16) *App {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.byWire[wire]
}
