package host_test

import (
	"testing"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/mem"
	"minions/internal/sim"
	"minions/internal/topo"
)

// twoHosts builds h1 - sw1 - sw2 - h2 at 1 Gb/s.
func twoHosts(t *testing.T) (*topo.Network, *host.Host, *host.Host) {
	t.Helper()
	n := topo.New(1)
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	cfg := topo.HostLink(1000)
	n.Connect(h1, s1, cfg)
	n.Connect(h2, s2, cfg)
	n.Connect(s1, s2, cfg)
	n.ComputeRoutes()
	return n, h1, h2
}

func TestPiggybackStripAndAggregate(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	app := n.CP.RegisterApp("microburst")
	prog := asm.MustAssemble(`
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueOccupancy]
	`)
	if _, err := h1.AddTPP(app, host.FilterSpec{Proto: link.ProtoUDP}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}

	var views []core.Section
	h2.RegisterAggregator(app.Wire, func(p *link.Packet, view core.Section) {
		views = append(views, view)
	})
	var delivered []*link.Packet
	h2.Bind(8080, link.ProtoUDP, func(p *link.Packet) { delivered = append(delivered, p) })

	p := h1.NewPacket(h2.ID(), 1234, 8080, link.ProtoUDP, 1000)
	h1.Send(p)
	n.Eng.Run()

	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets", len(delivered))
	}
	if delivered[0].TPP != nil {
		t.Error("TPP not stripped before transport delivery")
	}
	if delivered[0].Size != 1000 {
		t.Errorf("size after strip = %d", delivered[0].Size)
	}
	if len(views) != 1 {
		t.Fatalf("aggregator saw %d views", len(views))
	}
	hops := views[0].StackView(2)
	if len(hops) != 2 || hops[0].Words[0] != 1 || hops[1].Words[0] != 2 {
		t.Errorf("hop views: %+v", hops)
	}
	st := h1.Stats()
	if st.TPPsAttached != 1 {
		t.Errorf("attach count: %+v", st)
	}
}

func TestSamplingFrequency(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	app := n.CP.RegisterApp("sampler")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	if _, err := h1.AddTPP(app, host.FilterSpec{Proto: link.ProtoUDP}, prog, 10, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h1.Send(h1.NewPacket(h2.ID(), 1234, 8080, link.ProtoUDP, 500))
	}
	n.Eng.Run()
	if got := h1.Stats().TPPsAttached; got != 10 {
		t.Errorf("attached %d TPPs with 1-in-10 sampling of 100 packets", got)
	}
}

func TestFilterPriorityFirstMatchOnly(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	appA := n.CP.RegisterApp("a")
	appB := n.CP.RegisterApp("b")
	progA := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	progB := asm.MustAssemble(`PUSH [Link:QueueSize]`)
	// B has better (lower) priority; both match.
	if _, err := h1.AddTPP(appA, host.FilterSpec{}, progA, 1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.AddTPP(appB, host.FilterSpec{}, progB, 1, 1); err != nil {
		t.Fatal(err)
	}
	var gotApp uint16
	h2.RegisterAggregator(appA.Wire, func(p *link.Packet, v core.Section) { gotApp = appA.Wire })
	h2.RegisterAggregator(appB.Wire, func(p *link.Packet, v core.Section) { gotApp = appB.Wire })
	h1.Send(h1.NewPacket(h2.ID(), 1, 2, link.ProtoUDP, 100))
	n.Eng.Run()
	if gotApp != appB.Wire {
		t.Errorf("priority not honored: app %d won", gotApp)
	}
}

func TestMTUGuard(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	app := n.CP.RegisterApp("fat")
	prog := asm.MustAssemble(`
		.hops 10
		PUSH [Switch:SwitchID]
		PUSH [Link:QueueSize]
	`) // 12 + 8 + 80 = 100 bytes
	if _, err := h1.AddTPP(app, host.FilterSpec{}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}
	p := h1.NewPacket(h2.ID(), 1, 2, link.ProtoUDP, host.MTU-20) // no room
	h1.Send(p)
	n.Eng.Run()
	st := h1.Stats()
	if st.MTUSkips != 1 || st.TPPsAttached != 0 {
		t.Errorf("MTU guard: %+v", st)
	}
}

func TestWriteValidationRejectsUngrantedTPP(t *testing.T) {
	n, h1, _ := twoHosts(t)
	app := n.CP.RegisterApp("rogue")
	prog := asm.MustAssemble(`
		.hops 2
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
	`)
	if _, err := h1.AddTPP(app, host.FilterSpec{}, prog, 1, 0); err == nil {
		t.Fatal("write TPP installed without a grant")
	}
	// After a grant it installs.
	if _, err := n.CP.AllocLinkRegisters(app, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.AddTPP(app, host.FilterSpec{}, prog, 1, 0); err != nil {
		t.Fatalf("granted TPP rejected: %v", err)
	}
}

func TestAllocLinkRegistersDistinctApps(t *testing.T) {
	n, _, _ := twoHosts(t)
	a := n.CP.RegisterApp("rcp")
	b := n.CP.RegisterApp("other")
	ia, err := n.CP.AllocLinkRegisters(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := n.CP.AllocLinkRegisters(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ia == ib {
		t.Error("register collision between applications")
	}
}

func TestExecutorReliableEcho(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	app := n.CP.RegisterApp("probe")
	prog := asm.MustAssemble(`
		PUSH [Switch:SwitchID]
		PUSH [Link:QueueSize]
	`)
	var got core.Section
	err := h1.ExecuteTPP(app, prog, h2.ID(), host.ExecOpts{}, func(view core.Section, err error) {
		if err != nil {
			t.Errorf("execute: %v", err)
			return
		}
		got = view
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.Run()
	if got == nil {
		t.Fatal("no echo received")
	}
	hops := got.StackView(2)
	if len(hops) != 2 || hops[0].Words[0] != 1 || hops[1].Words[0] != 2 {
		t.Errorf("collected: %+v", hops)
	}
}

func TestExecutorTargetsSwitch(t *testing.T) {
	n, h1, _ := twoHosts(t)
	app := n.CP.RegisterApp("probe")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	sw2 := n.Switches[1]
	var got core.Section
	err := h1.ExecuteTPP(app, prog, sw2.NodeID(), host.ExecOpts{}, func(view core.Section, err error) {
		if err != nil {
			t.Errorf("execute: %v", err)
			return
		}
		got = view
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.Run()
	if got == nil {
		t.Fatal("no bounce received")
	}
	// Executed at sw1 (hop 1), bounced at sw2 (hop 2), not executed on the
	// echoed way home.
	if got.Word(0) != 1 || got.Word(1) != 2 {
		t.Errorf("switch IDs: %d %d", got.Word(0), got.Word(1))
	}
	if got.HopOrSP() != 2 {
		t.Errorf("SP = %d", got.HopOrSP())
	}
}

func TestExecutorRetryOnLoss(t *testing.T) {
	// Break the route from s2 back to h1 temporarily? Simpler: target a
	// nonexistent node so every attempt is lost, and expect ErrTimeout
	// after MaxAttempts.
	n, h1, _ := twoHosts(t)
	app := n.CP.RegisterApp("probe")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	var gotErr error
	calls := 0
	err := h1.ExecuteTPP(app, prog, 999, host.ExecOpts{Timeout: sim.Millisecond, MaxAttempts: 3},
		func(view core.Section, err error) {
			calls++
			gotErr = err
		})
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.Run()
	if calls != 1 || gotErr == nil {
		t.Fatalf("calls=%d err=%v", calls, gotErr)
	}
	// The three attempts each consumed a transmit.
	if got := h1.Stats().TxPackets; got != 3 {
		t.Errorf("tx packets = %d, want 3 attempts", got)
	}
}

func TestScatterGather(t *testing.T) {
	n, h1, _ := twoHosts(t)
	app := n.CP.RegisterApp("monitor")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	targets := []link.NodeID{n.Switches[0].NodeID(), n.Switches[1].NodeID(), 999}
	var results []host.GatherResult
	err := h1.ScatterGather(app, prog, targets, host.ExecOpts{Timeout: sim.Millisecond, MaxAttempts: 2},
		func(rs []host.GatherResult) { results = rs })
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.Run()
	if results == nil {
		t.Fatal("scatter-gather never completed")
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Errorf("reachable targets failed: %+v", results[:2])
	}
	if results[2].Err == nil {
		t.Error("unreachable target succeeded")
	}
	// The bounced views carry each target switch's ID at its own hop.
	if v := results[1].View; v == nil || v.Word(v.HopOrSP()-1) != 2 {
		t.Errorf("switch 2 view wrong")
	}
}

func TestStandaloneEchoFlagStopsReexecution(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	app := n.CP.RegisterApp("probe")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	var got core.Section
	if err := h1.ExecuteTPP(app, prog, h2.ID(), host.ExecOpts{}, func(v core.Section, err error) { got = v }); err != nil {
		t.Fatal(err)
	}
	n.Eng.Run()
	if got == nil {
		t.Fatal("no echo")
	}
	// Forward path is 2 switch hops; the echo path would add 2 more if the
	// Echoed flag did not stop execution.
	if got.HopOrSP() != 2 {
		t.Errorf("SP = %d: echoed TPP re-executed on return", got.HopOrSP())
	}
}

func TestTargetedProgramWrapping(t *testing.T) {
	inner := asm.MustAssemble(`
		.mode hop
		.perhop 2
		LOAD [Link:TX-Utilization], [Packet:Hop[0]]
		LOAD [Link:Queued-Bytes], [Packet:Hop[1]]
	`)
	wrapped, err := host.TargetedProgram(inner, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrapped.Insns) != 3 || wrapped.Insns[0].Op != core.OpCEXEC {
		t.Fatalf("wrapped: %+v", wrapped.Insns)
	}
	if wrapped.PerHopWords != 3 {
		t.Errorf("per-hop = %d", wrapped.PerHopWords)
	}
	// Word 0 of every hop holds the target ID.
	for hop := 0; hop < 3; hop++ {
		if wrapped.InitMem[hop*3] != 42 {
			t.Errorf("hop %d guard word = %d", hop, wrapped.InitMem[hop*3])
		}
	}
	// Operands shifted past the guard word.
	if wrapped.Insns[1].A != 1 || wrapped.Insns[2].A != 2 {
		t.Errorf("operand shift: %+v", wrapped.Insns[1:])
	}
	// Executing on a non-target switch leaves stats words zero.
	s, err := wrapped.Encode()
	if err != nil {
		t.Fatal(err)
	}
	core.Exec(s, &core.Env{Mem: core.MapMemory{0x0000: 7}})
	if s.Word(1) != 0 {
		t.Error("guard failed to stop execution on wrong switch")
	}
}

func TestSplitCollectWindows(t *testing.T) {
	addrs := []mem.Addr{
		mem.SwSwitchID,
		mem.MustResolve("Link:TX-Utilization"),
		mem.MustResolve("Queue:QueueOccupancy"),
	}
	// 20 hops x 3 words = 60 words, budget 24 words -> windows of 8 hops.
	progs, err := host.SplitCollect(addrs, 20, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 3 {
		t.Fatalf("got %d programs, want 3", len(progs))
	}
	if progs[0].StartHop != 0 || progs[1].StartHop != 248 || progs[2].StartHop != 240 {
		t.Errorf("start hops: %d %d %d", progs[0].StartHop, progs[1].StartHop, progs[2].StartHop)
	}
	if progs[2].MemWords != 4*3 { // final window covers hops 16..19
		t.Errorf("last window words = %d", progs[2].MemWords)
	}

	// Execute all programs across a 20-hop path and merge.
	var secs []core.Section
	for _, p := range progs {
		s, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		secs = append(secs, s)
	}
	for hop := 0; hop < 20; hop++ {
		m := core.MapMemory{
			addrs[0]: uint32(hop + 1),
			addrs[1]: uint32(hop * 2),
			addrs[2]: uint32(hop * 3),
		}
		for _, s := range secs {
			core.Exec(s, &core.Env{Mem: m})
		}
	}
	records := host.MergeCollected(progs, secs, 20)
	if len(records) != 20 {
		t.Fatalf("merged %d records", len(records))
	}
	for hop, rec := range records {
		if rec[0] != uint32(hop+1) || rec[1] != uint32(hop*2) || rec[2] != uint32(hop*3) {
			t.Errorf("hop %d: %v", hop, rec)
		}
	}
}

func TestSplitCollectSingleProgram(t *testing.T) {
	progs, err := host.SplitCollect([]mem.Addr{mem.SwSwitchID}, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0].MemWords != 5 {
		t.Fatalf("%d programs, words=%d", len(progs), progs[0].MemWords)
	}
}

func TestSplitCollectErrors(t *testing.T) {
	if _, err := host.SplitCollect(nil, 5, 50); err == nil {
		t.Error("empty address list accepted")
	}
	six := make([]mem.Addr, 6)
	if _, err := host.SplitCollect(six, 5, 50); err == nil {
		t.Error("six statistics accepted (max 5 instructions)")
	}
}

// TestShimLocalTCPU: with a local memory view installed, the transmit filter
// path executes hop 0 on the host itself, so per-hop records lead with
// end-host state before any switch's.
func TestShimLocalTCPU(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	app := n.CP.RegisterApp("localexec")
	prog := asm.MustAssemble(`
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueOccupancy]
	`)
	const hostID = 0x4057 // arbitrary distinguishable marker
	h1.SetLocalMemory(core.MapMemory{
		mem.SwSwitchID:                          hostID,
		mem.MustResolve("Queue:QueueOccupancy"): 9,
	})
	if _, err := h1.AddTPP(app, host.FilterSpec{Proto: link.ProtoUDP}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}
	var views []core.Section
	h2.RegisterAggregator(app.Wire, func(p *link.Packet, view core.Section) {
		views = append(views, view)
	})
	h2.Bind(8080, link.ProtoUDP, func(p *link.Packet) {})
	h1.Send(h1.NewPacket(h2.ID(), 1234, 8080, link.ProtoUDP, 1000))
	n.Eng.Run()

	if len(views) != 1 {
		t.Fatalf("aggregator saw %d views", len(views))
	}
	hops := views[0].StackView(2)
	if len(hops) != 3 {
		t.Fatalf("want host + 2 switch hops, got %d", len(hops))
	}
	if hops[0].Words[0] != hostID || hops[0].Words[1] != 9 {
		t.Errorf("hop 0 is not the host record: %+v", hops[0])
	}
	if hops[1].Words[0] != 1 || hops[2].Words[0] != 2 {
		t.Errorf("switch hops: %+v %+v", hops[1], hops[2])
	}
	if st := h1.Stats(); st.TPPsLocalExec != 1 {
		t.Errorf("local exec count: %+v", st)
	}
}
