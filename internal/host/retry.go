package host

import (
	"math/rand"

	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/stream"
)

// RetryPolicy shapes reliable-execution retries: per-attempt timeout,
// attempt budget, exponential backoff and optional jitter. It generalizes
// the executor's original fixed-timeout retry (§4.4 "Reliable execution")
// into the policy every host control loop shares — under loss and link
// flaps, fixed synchronized retries from many hosts re-collide; backoff
// with jitter spreads them.
//
// The zero value resolves to the historical behavior: 10 ms fixed timeout,
// 3 attempts, no backoff, no jitter.
type RetryPolicy struct {
	Timeout     sim.Time // first-attempt timeout (default 10 ms)
	MaxAttempts int      // total attempts before giving up (default 3)
	Backoff     float64  // timeout multiplier per attempt (<=1 or 0 = fixed)
	MaxTimeout  sim.Time // cap on the backed-off timeout (0 = uncapped)
	// JitterFrac spreads each attempt timeout uniformly over
	// [t·(1−J), t·(1+J)]. Jitter draws from the engine RNG only when
	// non-zero, so the default policy perturbs nothing.
	JitterFrac float64
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Timeout == 0 {
		rp.Timeout = 10 * sim.Millisecond
	}
	if rp.MaxAttempts == 0 {
		rp.MaxAttempts = 3
	}
	if rp.Backoff < 1 {
		rp.Backoff = 1
	}
	return rp
}

// attemptTimeout returns the timeout for the given 1-based attempt.
func (rp RetryPolicy) attemptTimeout(attempt int, rng *rand.Rand) sim.Time {
	t := float64(rp.Timeout)
	for i := 1; i < attempt; i++ {
		t *= rp.Backoff
		if rp.MaxTimeout > 0 && t >= float64(rp.MaxTimeout) {
			t = float64(rp.MaxTimeout)
			break
		}
	}
	if rp.JitterFrac > 0 {
		t *= 1 + rp.JitterFrac*(2*rng.Float64()-1)
	}
	d := sim.Time(t)
	if d < 1 {
		d = 1
	}
	return d
}

// ExecFailure is the executor's give-up record: a reliable execution that
// exhausted its retry budget. Hosts publish it on ExecFailures so
// applications and chaos harnesses observe control-plane degradation as a
// typed stream instead of scattered callbacks.
type ExecFailure struct {
	At       sim.Time
	App      uint16 // wire application handle of the failed TPP
	Dst      link.NodeID
	Attempts int
	Err      error
}

// ExecFailures is the host's stream of reliable executions that gave up
// after exhausting their retries.
func (h *Host) ExecFailures() *stream.Stream[ExecFailure] { return &h.execFailures }
