package host

import (
	"errors"
	"fmt"

	"minions/internal/core"
	"minions/internal/link"
	"minions/internal/mem"
	"minions/internal/sim"
)

// This file is the TPP Executor library of §4.4: reliable execution with
// retries, targeted execution at one switch, scatter-gather across many
// switches, and automatic splitting of TPPs whose statistics do not fit in
// one packet.

// ErrTimeout reports that every attempt of a reliable execution timed out.
var ErrTimeout = errors.New("host: TPP execution timed out")

// ExecOpts tunes the executor. Timeout and MaxAttempts are shorthands for
// the corresponding RetryPolicy fields; Retry supplies the full policy
// (backoff, cap, jitter). When both are set the shorthands win.
type ExecOpts struct {
	Timeout     sim.Time // per-attempt echo timeout (default 10 ms)
	MaxAttempts int      // total attempts before giving up (default 3)
	// PathTag is stamped on probe packets so multipath switches steer them
	// onto a specific ECMP bucket (the §2.4 VLAN-tag trick).
	PathTag uint16
	// Retry is the full retry policy; zero-value fields fall back to the
	// shorthands above, then to the policy defaults.
	Retry RetryPolicy
}

// policy folds the shorthand fields into the retry policy.
func (o ExecOpts) policy() RetryPolicy {
	rp := o.Retry
	if o.Timeout != 0 {
		rp.Timeout = o.Timeout
	}
	if o.MaxAttempts != 0 {
		rp.MaxAttempts = o.MaxAttempts
	}
	return rp.withDefaults()
}

// standaloneOverhead is Ethernet+IPv4+UDP framing around a standalone TPP.
const standaloneOverhead = 14 + 20 + 8

// pendingExec tracks one in-flight reliable execution.
type pendingExec struct {
	h        *Host
	port     uint16
	template core.Section
	dst      link.NodeID
	pathTag  uint16
	policy   RetryPolicy
	appWire  uint16
	attempt  int
	gen      int
	done     bool
	cb       func(view core.Section, err error)
}

func (pe *pendingExec) complete(view core.Section) {
	if pe.done {
		return
	}
	pe.done = true
	delete(pe.h.pendingExec, pe.port)
	pe.cb(view, nil)
}

func (pe *pendingExec) fail(err error) {
	if pe.done {
		return
	}
	pe.done = true
	delete(pe.h.pendingExec, pe.port)
	// The give-up surface: chaos harnesses and resilient apps watch this
	// stream instead of wrapping every callback.
	if pe.h.execFailures.HasSubscribers() {
		pe.h.execFailures.Publish(ExecFailure{
			At: pe.h.eng.Now(), App: pe.appWire, Dst: pe.dst,
			Attempts: pe.attempt, Err: err,
		})
	}
	pe.cb(nil, err)
}

func (pe *pendingExec) sendAttempt() {
	pe.attempt++
	pe.gen++
	p := pe.h.NewPacket(pe.dst, pe.port, core.UDPPortTPP, link.ProtoUDP, standaloneOverhead+len(pe.template))
	tpp := p.SectionBuf(len(pe.template))
	copy(tpp, pe.template)
	p.TPP = tpp
	p.Standalone = true
	p.PathTag = pe.pathTag
	pe.h.sendRaw(p)
	// The retry timer is a typed resident event carrying the attempt
	// generation, not a closure: reliable executions are the warm path of
	// every control loop (RCP rounds, CONGA probes), so their timers must
	// not allocate per attempt.
	pe.h.eng.ScheduleAfter(pe.policy.attemptTimeout(pe.attempt, pe.h.eng.Rand()), pe, uint64(pe.gen))
}

// Handle implements sim.Handler: the per-attempt echo timeout. A stale
// generation means the attempt already completed or was superseded.
func (pe *pendingExec) Handle(gen uint64) {
	if pe.done || uint64(pe.gen) != gen {
		return
	}
	if pe.attempt >= pe.policy.MaxAttempts {
		pe.fail(fmt.Errorf("%w after %d attempts to %d", ErrTimeout, pe.attempt, pe.dst))
		return
	}
	// §4.4 "Reliable execution": retry idempotent TPPs with the policy's
	// backoff. (Stores are made idempotent by the caller conditioning on a
	// read value.)
	pe.sendAttempt()
}

// ExecuteTPP sends prog as a standalone TPP to dst (a host, which echoes it,
// or a switch, which bounces it at the target — §4.4 targeted execution) and
// invokes cb with the fully executed view. It retries on loss.
//
// The view is backed by the probe packet, which is recycled when cb returns:
// it is valid only during the callback. Copy what you keep (HopViews,
// StackView and Words copy; Clone for the raw section).
func (h *Host) ExecuteTPP(app *App, prog *core.Program, dst link.NodeID, opts ExecOpts, cb func(core.Section, error)) error {
	if err := h.cp.ValidateProgram(app, prog); err != nil {
		return err
	}
	prog.AppID = app.Wire
	enc, err := prog.Encode()
	if err != nil {
		return err
	}
	pe := &pendingExec{
		h: h, port: h.ephemeralPort(),
		template: enc, dst: dst,
		pathTag: opts.PathTag, policy: opts.policy(),
		appWire: app.Wire, cb: cb,
	}
	if h.pendingExec == nil {
		h.pendingExec = make(map[uint16]*pendingExec)
	}
	h.pendingExec[pe.port] = pe
	pe.sendAttempt()
	return nil
}

// TargetedProgram wraps prog so it takes effect only on the switch with the
// given ID: a CEXEC on [Switch:SwitchID] guards every subsequent instruction
// (§4.4 "This helper function wraps a TPP with a CEXEC instruction
// conditioned on the switch ID matching the specified value").
//
// The wrapped program runs in hop mode: word 0 of each hop slice holds the
// target switch ID. The guarded instructions' operands are shifted by one.
func TargetedProgram(prog *core.Program, switchID uint32, hops int) (*core.Program, error) {
	if len(prog.Insns) >= core.MaxInsns {
		return nil, fmt.Errorf("host: no room for the CEXEC guard (have %d instructions)", len(prog.Insns))
	}
	if prog.Mode != core.AddrHop {
		return nil, fmt.Errorf("host: targeted wrapping requires a hop-mode program")
	}
	out := &core.Program{
		Mode:        core.AddrHop,
		PerHopWords: prog.PerHopWords + 1,
		AppID:       prog.AppID,
		Flags:       prog.Flags,
	}
	out.Insns = append(out.Insns, core.Instruction{
		Op: core.OpCEXEC, A: 0, B: 0, Addr: mem.SwSwitchID,
	})
	for _, in := range prog.Insns {
		in.A++
		if in.Op == core.OpCSTORE || in.Op == core.OpLOADI || (in.Op == core.OpCEXEC && in.B != in.A-1) {
			in.B++
		} else if in.Op == core.OpCEXEC {
			in.B = in.A
		}
		out.Insns = append(out.Insns, in)
	}
	out.MemWords = out.PerHopWords * hops
	if out.MemWords > core.MaxMemWords {
		return nil, fmt.Errorf("host: targeted program memory %d words exceeds limit", out.MemWords)
	}
	for hop := 0; hop < hops; hop++ {
		slot := hop * out.PerHopWords
		for len(out.InitMem) < slot {
			out.InitMem = append(out.InitMem, 0)
		}
		out.InitMem = append(out.InitMem, switchID)
		for i := 0; i < prog.PerHopWords; i++ {
			idx := hop*prog.PerHopWords + i
			if idx < len(prog.InitMem) {
				out.InitMem = append(out.InitMem, prog.InitMem[idx])
			} else {
				out.InitMem = append(out.InitMem, 0)
			}
		}
	}
	return out, nil
}

// GatherResult is one switch's outcome in a scatter-gather.
type GatherResult struct {
	Target link.NodeID
	View   core.Section // nil on error
	Err    error
}

// ScatterGather executes prog on every listed switch concurrently and calls
// cb once with all results, masking individual failures with retries
// (§4.4 "Scatter gather").
func (h *Host) ScatterGather(app *App, prog *core.Program, switches []link.NodeID, opts ExecOpts, cb func([]GatherResult)) error {
	results := make([]GatherResult, len(switches))
	remaining := len(switches)
	if remaining == 0 {
		cb(nil)
		return nil
	}
	for i, swID := range switches {
		i, swID := i, swID
		clone := *prog
		err := h.ExecuteTPP(app, &clone, swID, opts, func(view core.Section, err error) {
			if view != nil {
				// Gather results outlive the probe packet backing the view.
				view = view.Clone()
			}
			results[i] = GatherResult{Target: swID, View: view, Err: err}
			remaining--
			if remaining == 0 {
				cb(results)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// SplitCollect builds the minimal set of hop-mode collection programs that
// together gather the given per-hop statistics over pathHops hops when one
// TPP's packet memory cannot hold them all (§4.4 "Large TPPs").
//
// Each program carries a full-size per-hop record but a memory window that
// only covers a contiguous hop range; the trick is the 8-bit hop counter:
// program k starts at hop -k*window (mod 256), so its memory addresses fall
// in range exactly while the packet traverses hops [k*window, (k+1)*window).
// Out-of-range hops skip gracefully per §3.3.
func SplitCollect(addrs []mem.Addr, pathHops, maxWords int) ([]*core.Program, error) {
	if len(addrs) == 0 || len(addrs) > core.MaxInsns {
		return nil, fmt.Errorf("host: SplitCollect supports 1..%d statistics, got %d", core.MaxInsns, len(addrs))
	}
	if maxWords <= 0 || maxWords > core.MaxMemWords {
		maxWords = core.MaxMemWords
	}
	per := len(addrs)
	window := maxWords / per
	if window == 0 {
		return nil, fmt.Errorf("host: %d words per hop exceed the %d-word budget", per, maxWords)
	}
	if window > pathHops {
		window = pathHops
	}
	var progs []*core.Program
	for start := 0; start < pathHops; start += window {
		hops := window
		if start+hops > pathHops {
			hops = pathHops - start
		}
		p := &core.Program{
			Mode:        core.AddrHop,
			PerHopWords: per,
			MemWords:    hops * per,
			StartHop:    (256 - start) & 0xFF,
		}
		for i, a := range addrs {
			p.Insns = append(p.Insns, core.Instruction{Op: core.OpLOAD, A: uint8(i), Addr: a})
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// MergeCollected reassembles the per-hop records from the executed views of
// a SplitCollect program set. views[i] must be the executed section of
// progs[i]; nil views leave gaps (all-zero records).
func MergeCollected(progs []*core.Program, views []core.Section, pathHops int) [][]uint32 {
	if len(progs) == 0 {
		return nil
	}
	per := progs[0].PerHopWords
	out := make([][]uint32, pathHops)
	for i := range out {
		out[i] = make([]uint32, per)
	}
	for k, v := range views {
		if v == nil || k >= len(progs) {
			continue
		}
		start := (256 - progs[k].StartHop) & 0xFF
		hops := progs[k].MemWords / per
		for h := 0; h < hops && start+h < pathHops; h++ {
			for i := 0; i < per; i++ {
				out[start+h][i] = v.Word(h*per + i)
			}
		}
	}
	return out
}
