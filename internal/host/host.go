// Package host implements the end-host stack of §4 (Figure 9): a dataplane
// shim that transparently attaches TPPs to outgoing packets (matching an
// iptables-style filter chain with sampling), strips and dispatches fully
// executed TPPs to per-application aggregators, echoes standalone TPPs back
// to their sources, and a TPP control-plane agent (TPP-CP) that allocates
// application IDs and switch memory and enforces memory access policies by
// static analysis before a TPP is ever installed.
package host

import (
	"fmt"

	"minions/internal/core"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/stream"
)

// MTU is the wire MTU the shim enforces when piggybacking TPPs; packets
// whose size plus TPP would exceed it are sent without instrumentation
// (§8 "MTU issues").
const MTU = 1514

// Aggregator consumes fully executed TPPs for one application (§4.5): the
// per-node post-processing stage that feeds collectors.
type Aggregator func(p *link.Packet, view core.Section)

// bindKey demultiplexes received packets to transports.
type bindKey struct {
	port  uint16
	proto uint8
}

// Filter is one entry of the shim's interposition table (§4.1 add_tpp):
// packets matching Spec get Prog attached with probability 1/SampleFreq.
type Filter struct {
	App        *App
	Spec       FilterSpec
	Prog       *core.Program
	SampleFreq int // N: attach to one in N matching packets; 1 = all
	Priority   int // lower value = matched earlier

	encoded core.Section // pre-encoded template, cloned per packet
	matched uint64       // matching packets seen (for sampling)
	applied uint64       // TPPs actually attached
}

// FilterSpec matches packets, iptables-style; zero fields match anything.
type FilterSpec struct {
	Proto   uint8
	DstPort uint16
	SrcPort uint16
	Dst     link.NodeID
}

// Matches reports whether the packet satisfies the spec.
func (f FilterSpec) Matches(p *link.Packet) bool {
	if f.Proto != 0 && p.Flow.Proto != f.Proto {
		return false
	}
	if f.DstPort != 0 && p.Flow.DstPort != f.DstPort {
		return false
	}
	if f.SrcPort != 0 && p.Flow.SrcPort != f.SrcPort {
		return false
	}
	if f.Dst != 0 && p.Flow.Dst != f.Dst {
		return false
	}
	return true
}

// Stats counts shim activity.
type Stats struct {
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64
	TPPsAttached       uint64
	TPPBytesAdded      uint64
	TPPsStripped       uint64
	TPPsEchoed         uint64
	TPPsLocalExec      uint64 // TPPs executed by the shim's own TCPU
	MTUSkips           uint64 // packets too full to instrument
	UnclaimedViews     uint64 // executed TPPs with no aggregator
}

// Host is a simulated end host running the TPP stack.
type Host struct {
	eng *sim.Engine
	id  link.NodeID
	cp  *ControlPlane

	nic     *link.Link
	pool    *link.Pool // packet free list (nil = GC-managed packets)
	filters []*Filter
	aggs    map[uint16]Aggregator
	binds   map[bindKey]func(*link.Packet)

	pendingExec map[uint16]*pendingExec
	nextPort    uint16

	nextPktID uint64
	stats     Stats

	// PromiscTPP, when set, sees every executed TPP view delivered to this
	// host regardless of application (used by collectors). For pooled
	// traffic p and view are valid only during the call — copy to retain.
	PromiscTPP func(p *link.Packet, view core.Section)

	// txTap, when set, observes every packet leaving the host — instrumented
	// sends, executor probes and standalone echoes alike — after the shim
	// has stamped SentAt and just before NIC enqueue. The packet is owned by
	// the network from the moment the tap returns; taps copy what they keep.
	// Used by telemetry/trace capture.
	txTap func(*link.Packet)

	// execFailures publishes reliable executions that exhausted their
	// retry budget (see ExecFailures).
	execFailures stream.Stream[ExecFailure]

	// The shim's resident TCPU: when localMem is set, the filter path runs
	// hop 0 of every TPP it attaches against the host's own memory view, so
	// the end-host stack shows up in collected telemetry like any switch
	// hop (§4.2, Figure 9). The executor is reused across packets and
	// allocates nothing per TPP.
	tcpu     core.Executor
	localMem core.SwitchMemory
}

// New creates a host with the given node ID, attached to a shared TPP-CP.
func New(eng *sim.Engine, id link.NodeID, cp *ControlPlane) *Host {
	// The three demux maps (binds, aggs, pendingExec) allocate lazily on
	// first registration: nil-map reads are valid Go, and most hosts of a
	// large fabric never bind a port or launch a reliable execution.
	return &Host{
		eng:      eng,
		id:       id,
		cp:       cp,
		nextPort: 49152,
	}
}

// ID returns the host's node ID.
func (h *Host) ID() link.NodeID { return h.id }

// Engine returns the simulation engine (for transports and apps).
func (h *Host) Engine() *sim.Engine { return h.eng }

// ControlPlane returns the shared TPP-CP.
func (h *Host) ControlPlane() *ControlPlane { return h.cp }

// AttachNIC wires the host's single egress link (done by the topology).
func (h *Host) AttachNIC(l *link.Link) { h.nic = l }

// SetPool wires a packet free list: NewPacket draws from it and the shim's
// terminal receive paths return packets to it (see link.Pool for the
// ownership rules). The topology layer shares one pool across all hosts of
// a network.
func (h *Host) SetPool(pl *link.Pool) { h.pool = pl }

// Pool returns the host's packet free list, nil if none is wired.
func (h *Host) Pool() *link.Pool { return h.pool }

// NIC returns the egress link.
func (h *Host) NIC() *link.Link { return h.nic }

// Stats returns a snapshot of shim counters.
func (h *Host) Stats() Stats { return h.stats }

// Bind registers a receive handler for a destination port and protocol.
func (h *Host) Bind(port uint16, proto uint8, fn func(*link.Packet)) {
	if h.binds == nil {
		h.binds = make(map[bindKey]func(*link.Packet))
	}
	h.binds[bindKey{port, proto}] = fn
}

// Unbind removes a receive handler.
func (h *Host) Unbind(port uint16, proto uint8) {
	delete(h.binds, bindKey{port, proto})
}

// RegisterAggregator installs the per-application consumer of executed TPPs.
func (h *Host) RegisterAggregator(wireApp uint16, agg Aggregator) {
	if h.aggs == nil {
		h.aggs = make(map[uint16]Aggregator)
	}
	h.aggs[wireApp] = agg
}

// UnregisterAggregator removes the application's consumer, part of app
// teardown: executed TPPs for the wire handle count as unclaimed afterwards.
func (h *Host) UnregisterAggregator(wireApp uint16) {
	delete(h.aggs, wireApp)
}

// SetLocalMemory gives the shim its own switch-memory view. When non-nil,
// the transmit filter path executes hop 0 of every attached TPP locally, so
// collected per-hop records start with the sending host's state. Pass nil to
// restore switch-only execution.
//
// The host's record consumes one hop slot of packet memory: programs built
// with default sizing preallocate 5 hop records, which then covers the host
// plus only 4 switches. On longer paths size explicitly — e.g.
// tpp.NewProgram().Hops(pathLen+1) or the assembler's .hops directive —
// or the final switch halts with HaltMemoryExhausted and its record is
// absent from the aggregator view.
func (h *Host) SetLocalMemory(m core.SwitchMemory) {
	h.localMem = m
	h.tcpu = *core.NewExecutor(core.Env{Mem: m})
}

// AddTPP implements the TPP-CP API of §4.1:
//
//	add_tpp(filter, tpp_bytes, sample_frequency, priority)
//
// The program is statically analyzed against the application's memory
// grants; the call fails if the TPP touches memory outside them.
func (h *Host) AddTPP(app *App, spec FilterSpec, prog *core.Program, sampleFreq, priority int) (*Filter, error) {
	if sampleFreq < 1 {
		return nil, fmt.Errorf("host: sample frequency must be >= 1")
	}
	if err := h.cp.ValidateProgram(app, prog); err != nil {
		return nil, err
	}
	prog.AppID = app.Wire
	enc, err := prog.Encode()
	if err != nil {
		return nil, err
	}
	f := &Filter{
		App: app, Spec: spec, Prog: prog,
		SampleFreq: sampleFreq, Priority: priority,
		encoded: enc,
	}
	// Insert keeping priority order (stable for equal priorities), so the
	// dataplane can stop at the first match (§4.2 "adds a TPP to the first
	// match").
	idx := len(h.filters)
	for i, g := range h.filters {
		if f.Priority < g.Priority {
			idx = i
			break
		}
	}
	h.filters = append(h.filters, nil)
	copy(h.filters[idx+1:], h.filters[idx:])
	h.filters[idx] = f
	return f, nil
}

// RemoveTPP uninstalls a filter.
func (h *Host) RemoveTPP(f *Filter) {
	for i, g := range h.filters {
		if g == f {
			h.filters = append(h.filters[:i], h.filters[i+1:]...)
			return
		}
	}
}

// NumFilters returns the installed filter count.
func (h *Host) NumFilters() int { return len(h.filters) }

// NewPacket allocates a packet originating at this host, drawing from the
// host's packet pool when one is wired (the steady-state zero-allocation
// path) and falling back to a GC-managed packet otherwise.
func (h *Host) NewPacket(dst link.NodeID, sport, dport uint16, proto uint8, size int) *link.Packet {
	h.nextPktID++
	var p *link.Packet
	if h.pool != nil {
		p = h.pool.Get()
	} else {
		p = &link.Packet{}
	}
	p.ID = uint64(h.id)<<32 | h.nextPktID
	p.Flow = link.FlowKey{
		Src: h.id, Dst: dst,
		SrcPort: sport, DstPort: dport, Proto: proto,
	}
	p.Size = size
	p.TTL = 64
	return p
}

// Send pushes a packet through the shim's transmit path: filter match, TPP
// attachment (§4.2 interposition), then the NIC.
func (h *Host) Send(p *link.Packet) {
	h.attachTPP(p)
	h.sendRaw(p)
}

// Inject transmits a fully formed packet without shim interposition — the
// entry point for trace replay, where the packet already carries whatever
// TPP it left with in the recorded run and must not be re-instrumented.
func (h *Host) Inject(p *link.Packet) { h.sendRaw(p) }

// attachTPP applies the first matching filter, honoring sampling and MTU.
func (h *Host) attachTPP(p *link.Packet) {
	if p.TPP != nil {
		return // at most one TPP per packet (§4.2)
	}
	for _, f := range h.filters {
		if !f.Spec.Matches(p) {
			continue
		}
		f.matched++
		if f.SampleFreq > 1 && f.matched%uint64(f.SampleFreq) != 0 {
			return // matched the chain; sampled out
		}
		tppLen := len(f.encoded)
		if p.Size+tppLen > MTU {
			h.stats.MTUSkips++
			return
		}
		// Copy the pre-encoded template into the packet's retained section
		// buffer: after a pooled packet has carried a program of this size
		// once, attachment allocates nothing.
		tpp := p.SectionBuf(tppLen)
		copy(tpp, f.encoded)
		p.TPP = tpp
		p.Size += tppLen
		f.applied++
		h.stats.TPPsAttached++
		h.stats.TPPBytesAdded += uint64(tppLen)
		if h.localMem != nil {
			// Hop 0 runs on the shim itself (§4.2): the resident executor
			// has the program decoded after the first packet of a filter.
			h.tcpu.Exec(p.TPP)
			h.stats.TPPsLocalExec++
		}
		return
	}
}

// sendRaw transmits without interposition (already-instrumented or echo
// traffic).
func (h *Host) sendRaw(p *link.Packet) {
	p.SentAt = h.eng.Now()
	h.stats.TxPackets++
	h.stats.TxBytes += uint64(p.Size)
	if h.txTap != nil {
		h.txTap(p)
	}
	if h.nic != nil {
		h.nic.Enqueue(p)
	}
}

// SetTxTap installs (or, with nil, removes) the host's transmit tap. The tap
// sits below the shim in sendRaw, so it sees exactly the packets the NIC
// sees: filter-attached TPP traffic, the executor's standalone probes, and
// echoes of probes from other hosts. One tap per host.
func (h *Host) SetTxTap(fn func(*link.Packet)) { h.txTap = fn }

// Receive implements link.Receiver: the shim's receive path (§4.2).
func (h *Host) Receive(p *link.Packet, port int) {
	h.stats.RxPackets++
	h.stats.RxBytes += uint64(p.Size)

	if p.TPP != nil {
		echoed := p.TPP.Flags()&core.FlagEchoed != 0
		if p.Standalone {
			if !echoed && p.Flow.Dst == h.id {
				// A standalone TPP that finished executing here: echo it to
				// the source (§4.2 "echoes any standalone TPPs that have
				// finished executing back to the packet's source").
				h.stats.TPPsEchoed++
				p.Flow.Src, p.Flow.Dst = p.Flow.Dst, p.Flow.Src
				p.Flow.SrcPort, p.Flow.DstPort = p.Flow.DstPort, p.Flow.SrcPort
				p.TPP.SetFlags(p.TPP.Flags() | core.FlagEchoed)
				h.sendRaw(p)
				return
			}
			// An echo arriving home: complete a pending executor request or
			// hand to the application aggregator, then recycle the probe —
			// its journey ends here. Consumers copy what they keep, so the
			// view is valid only during the dispatch.
			h.dispatchView(p, p.TPP)
			p.Release()
			return
		}
		// Piggybacked: strip the TPP (§4.2: "applications are oblivious to
		// TPPs") and dispatch the executed view.
		view := p.TPP
		p.TPP = nil
		p.Size -= view.Len()
		h.stats.TPPsStripped++
		h.dispatchView(p, view)
	}

	if fn := h.binds[bindKey{p.Flow.DstPort, p.Flow.Proto}]; fn != nil {
		fn(p) // the handler (or its sink) owns the packet from here
	} else {
		p.Release() // no consumer: recycle pooled packets
	}
}

// dispatchView routes an executed TPP to its consumer.
func (h *Host) dispatchView(p *link.Packet, view core.Section) {
	if h.PromiscTPP != nil {
		h.PromiscTPP(p, view)
	}
	if pe, ok := h.pendingExec[p.Flow.DstPort]; ok && p.Standalone {
		pe.complete(view)
		return
	}
	if agg, ok := h.aggs[view.AppID()]; ok {
		agg(p, view)
		return
	}
	h.stats.UnclaimedViews++
}

// ephemeralPort allocates a correlation port for executor requests.
func (h *Host) ephemeralPort() uint16 {
	for {
		h.nextPort++
		if h.nextPort < 49152 {
			h.nextPort = 49152
		}
		if _, used := h.pendingExec[h.nextPort]; !used {
			return h.nextPort
		}
	}
}
