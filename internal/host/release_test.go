package host_test

import (
	"testing"

	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/mem"
)

// writeProgram builds a one-STORE program targeting the dynamic out-link
// alias of AppSpecific register idx — the shape RCP's update TPP writes.
func writeProgram(idx int) *core.Program {
	return &core.Program{
		Mode:     core.AddrStack,
		MemWords: 1,
		Insns: []core.Instruction{
			{Op: core.OpSTORE, A: 0, Addr: mem.DynOutLinkBase + mem.LinkAppSpecific0 + mem.Addr(idx)},
		},
	}
}

// TestReleaseAppRevokesGrantsAndRegisters pins the teardown contract:
// ReleaseApp must revoke every write grant and return the app's link
// registers to the allocator.
func TestReleaseAppRevokesGrantsAndRegisters(t *testing.T) {
	cp := host.NewControlPlane()
	a := cp.RegisterApp("tenant-a")
	idx, err := cp.AllocLinkRegisters(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog := writeProgram(idx)
	if err := cp.ValidateProgram(a, prog); err != nil {
		t.Fatalf("granted write rejected before release: %v", err)
	}
	reg := mem.DynOutLinkBase + mem.LinkAppSpecific0 + mem.Addr(idx)
	if !cp.Policy().Allowed(a.ID, mem.OpWrite, reg) {
		t.Fatal("write grant missing before release")
	}

	cp.ReleaseApp(a)

	if cp.Policy().Allowed(a.ID, mem.OpWrite, reg) {
		t.Error("write grant survived ReleaseApp")
	}
	if err := cp.ValidateProgram(a, prog); err == nil {
		t.Error("released app still passes static analysis for its old register")
	}
	if cp.App(a.Wire) != nil {
		t.Error("wire handle still resolves after release")
	}
	// The registers must be reusable: a full-width allocation succeeds only
	// if release freed them.
	b := cp.RegisterApp("tenant-b")
	if _, err := cp.AllocLinkRegisters(b, 8); err != nil {
		t.Errorf("link registers not freed by ReleaseApp: %v", err)
	}
}

// TestWireReuseCannotInheritStaleGrants covers the §4.1 isolation hazard
// the wire-handle recycler must not introduce: after ReleaseApp, a new app
// that is issued the SAME wire handle must not pass ValidateProgram (or the
// dataplane write filter) against the released app's grants.
func TestWireReuseCannotInheritStaleGrants(t *testing.T) {
	cp := host.NewControlPlane()
	a := cp.RegisterApp("old")
	idx, err := cp.AllocLinkRegisters(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog := writeProgram(idx)
	if err := cp.ValidateProgram(a, prog); err != nil {
		t.Fatal(err)
	}
	reg := mem.DynOutLinkBase + mem.LinkAppSpecific0 + mem.Addr(idx)
	allow := cp.SwitchWritePolicy()
	if !allow(a.Wire, reg) {
		t.Fatal("dataplane filter denies the live app's own register")
	}

	cp.ReleaseApp(a)
	b := cp.RegisterApp("new")
	if b.Wire != a.Wire {
		t.Fatalf("wire handle not recycled: old %d, new %d", a.Wire, b.Wire)
	}
	if b.ID == a.ID {
		t.Fatal("64-bit app IDs must never be reused")
	}
	// The successor holds the old wire handle but none of the old grants:
	// static analysis and the dataplane filter must both deny.
	if err := cp.ValidateProgram(b, prog); err == nil {
		t.Error("successor with recycled wire handle passes static analysis against a stale grant")
	}
	if allow(b.Wire, reg) {
		t.Error("dataplane write filter honors a stale grant for a recycled wire handle")
	}
	// Once the successor is granted its own registers, it validates — and
	// the allocator may legitimately hand back the freed index.
	idxB, err := cp.AllocLinkRegisters(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.ValidateProgram(b, writeProgram(idxB)); err != nil {
		t.Errorf("successor's own grant rejected: %v", err)
	}
}

// TestReleaseAppIdempotent: double release must not disturb a successor
// that has since been issued the recycled wire handle.
func TestReleaseAppIdempotent(t *testing.T) {
	cp := host.NewControlPlane()
	a := cp.RegisterApp("one")
	cp.ReleaseApp(a)
	b := cp.RegisterApp("two")
	cp.ReleaseApp(a) // stale handle: must be a no-op
	if cp.App(b.Wire) != b {
		t.Fatal("double ReleaseApp evicted the successor holding the recycled wire handle")
	}
}
