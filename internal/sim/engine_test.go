package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order: %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events not FIFO: %v", got)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New(1)
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times: %v", times)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New(1)
	fired := Time(-1)
	e.After(100, func() {
		e.At(5, func() { fired = e.Now() }) // in the past: clamp to now
	})
	e.Run()
	if fired != 100 {
		t.Errorf("past event fired at %d", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*10, func() { count++ })
	}
	n := e.RunUntil(50)
	if n != 5 || count != 5 {
		t.Fatalf("processed %d events, count %d", n, count)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %d", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Errorf("count = %d", count)
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	var ticks []Time
	tk := e.Every(10, 10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 5 {
			// Stop from within the callback.
			e.Stop()
		}
	})
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks", len(ticks))
	}
	for i, at := range ticks {
		if at != Time(10*(i+1)) {
			t.Errorf("tick %d at %d", i, at)
		}
	}
	_ = tk
}

func TestTickerStop(t *testing.T) {
	e := New(1)
	count := 0
	var tk *Ticker
	tk = e.Every(1, 1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New(1)
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	if (500 * Millisecond).Seconds() != 0.5 {
		t.Error("Seconds conversion wrong")
	}
}

// Property: any set of scheduled events fires in nondecreasing time order.
func TestOrderingQuick(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New(1)
		var fired []Time
		for _, off := range offsets {
			e.At(Time(off), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// recorder is a test Handler logging (now, arg) pairs.
type recorder struct {
	eng  *Engine
	args []uint64
	at   []Time
}

func (r *recorder) Handle(arg uint64) {
	r.args = append(r.args, arg)
	r.at = append(r.at, r.eng.Now())
}

func TestScheduleHandler(t *testing.T) {
	e := New(1)
	r := &recorder{eng: e}
	e.Schedule(30, r, 3)
	e.Schedule(10, r, 1)
	e.ScheduleAfter(20, r, 2)
	e.Run()
	if len(r.args) != 3 || r.args[0] != 1 || r.args[1] != 2 || r.args[2] != 3 {
		t.Fatalf("args: %v", r.args)
	}
	if r.at[2] != 30 {
		t.Errorf("last at %d", r.at[2])
	}
}

// intAppender appends its arg to a shared order log.
type intAppender struct{ out *[]int }

func (a *intAppender) Handle(arg uint64) { *a.out = append(*a.out, int(arg)) }

// Handler and closure events at the same instant interleave in scheduling
// order: the compatibility layer must not reorder against typed records.
func TestHandlerClosureInterleaving(t *testing.T) {
	e := New(1)
	var got []int
	h := &intAppender{out: &got}
	e.At(5, func() { got = append(got, 0) })
	e.Schedule(5, h, 1)
	e.At(5, func() { got = append(got, 2) })
	e.Schedule(5, h, 3)
	e.Run()
	if len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Fatalf("interleaving order: %v", got)
	}
}

// Property: handler scheduling respects the same clamp as At.
func TestScheduleClampsPast(t *testing.T) {
	e := New(1)
	r := &recorder{eng: e}
	e.At(100, func() { e.Schedule(5, r, 9) })
	e.Run()
	if len(r.at) != 1 || r.at[0] != 100 {
		t.Fatalf("clamped firing at %v", r.at)
	}
}

// Scheduling a pointer Handler into a warmed heap allocates nothing.
func TestScheduleZeroAlloc(t *testing.T) {
	e := New(1)
	r := &recorder{eng: e}
	// Warm the heap's backing array and the recorder's slices.
	for i := 0; i < 128; i++ {
		e.Schedule(Time(i), r, uint64(i))
	}
	e.Run()
	r.args = r.args[:0]
	r.at = r.at[:0]
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleAfter(1, r, 1)
		e.ScheduleAfter(2, r, 2)
		e.RunUntil(e.Now() + 2)
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Run allocated %.1f per run, want 0", allocs)
	}
}

// BenchmarkEngineScheduleHandler measures the raw schedule+fire cycle on
// both pending-event structures — the heap-vs-wheel engine-core comparison.
func BenchmarkEngineScheduleHandler(b *testing.B) {
	for _, sched := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		b.Run(sched.String(), func(b *testing.B) {
			e := NewWithScheduler(1, sched)
			r := &recorder{eng: e}
			r.args = make([]uint64, 0, 2048)
			r.at = make([]Time, 0, 2048)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.ScheduleAfter(Time(i%100), r, uint64(i))
				if e.Pending() > 1024 {
					r.args = r.args[:0]
					r.at = r.at[:0]
					e.RunUntil(e.Now() + 50)
				}
			}
		})
	}
}

// BenchmarkEngineHotMix approximates the simulator's scheduling mix — short
// transmit/delivery delays with a long-tail of pacing timers over a standing
// event population — on both schedulers.
func BenchmarkEngineHotMix(b *testing.B) {
	for _, sched := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		b.Run(sched.String(), func(b *testing.B) {
			e := NewWithScheduler(1, sched)
			r := &recorder{eng: e}
			r.args = make([]uint64, 0, 4096)
			r.at = make([]Time, 0, 4096)
			// Standing population: pacing-style timers spread over 1 ms.
			for i := 0; i < 512; i++ {
				e.Schedule(Time(i)*1953, r, uint64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ScheduleAfter(11_200, r, 1) // transmit done at 1 Gb/s
				e.ScheduleAfter(5_000, r, 2)  // propagation delay
				e.ScheduleAfter(560_000, r, 3)
				e.RunUntil(e.Now() + 12_000)
				if len(r.args) > 2048 {
					r.args = r.args[:0]
					r.at = r.at[:0]
				}
			}
		})
	}
}

func BenchmarkEngineEvents(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%100), func() {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 50)
		}
	}
	e.Run()
}
