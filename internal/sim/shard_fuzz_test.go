package sim

// Shard-sync equivalence guards: the asynchronous per-channel engine
// (SyncChannel), the global-epoch reference (SyncEpoch), both schedulers,
// and parallel vs sequential execution must all produce identical
// simulations. Random sharded scenarios — random channel graphs with
// heterogeneous delays, cross-shard bounce chains, same-instant collisions,
// and a mid-run shard Stop — are replayed under every configuration and
// the per-shard delivery traces compared. CI runs the corpus under -race,
// which additionally exercises the SPSC mailboxes and clock publishes
// under the real memory model.

import (
	"fmt"
	"math/rand"
	"testing"
)

// shardSink records deliveries into its shard's trace and optionally
// bounces a reply over an outgoing channel of its shard. The payload packs
// (hops<<32 | id); each bounce decrements hops, so chains terminate.
type shardSink struct {
	eng      *Engine
	shard    int
	log      *[]string
	back     *Channel
	backSink *shardSink
}

func (s *shardSink) Handle(arg uint64) {
	*s.log = append(*s.log, fmt.Sprintf("s%d recv %d @%d", s.shard, arg, s.eng.Now()))
	if hops := arg >> 32; hops > 0 && s.back != nil {
		s.back.Send(s.eng.Now(), s.backSink, (hops-1)<<32|(arg&0xffffffff)+1)
	}
}

// runShardScript builds one deterministic sharded scenario from the fuzz
// inputs and returns the concatenated per-shard delivery traces plus the
// total event count.
func runShardScript(sched Scheduler, mode SyncMode, parallel bool, seed int64, shards, events int, stopShard int) ([]string, int) {
	r := rand.New(rand.NewSource(seed * 7919))
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = NewWithScheduler(seed+int64(i), sched)
	}
	g := NewShardGroup(engines)
	g.Parallel = parallel
	g.Mode = mode

	logs := make([][]string, shards)
	sinks := make([]*shardSink, shards)
	for i := range sinks {
		sinks[i] = &shardSink{eng: engines[i], shard: i, log: &logs[i]}
	}
	// Random directed channel graph with heterogeneous delays; (0,1) always
	// exists so the group is never channel-free.
	var chans []*Channel
	outOf := make([][]*Channel, shards)
	addCh := func(src, dst int, delay Time) {
		c := g.AddChannel(src, dst, delay)
		chans = append(chans, c)
		outOf[src] = append(outOf[src], c)
	}
	addCh(0, 1%shards, 1+Time(r.Int63n(60)))
	for src := 0; src < shards; src++ {
		for dst := 0; dst < shards; dst++ {
			if src != dst && r.Intn(3) == 0 {
				addCh(src, dst, 1+Time(r.Int63n(60)))
			}
		}
	}
	// Give every shard with an outgoing channel a bounce route.
	for i, s := range sinks {
		if len(outOf[i]) > 0 {
			c := outOf[i][r.Intn(len(outOf[i]))]
			s.back = c
			s.backSink = sinks[c.dst]
		}
	}

	// Seed traffic: cross-shard sends (some with bounce hops) and local
	// marker events, clustered in a small time range to force collisions.
	id := uint64(0)
	for i := 0; i < events; i++ {
		src := r.Intn(shards)
		e := engines[src]
		at := Time(r.Int63n(300))
		if len(outOf[src]) > 0 && r.Intn(4) != 0 {
			c := outOf[src][r.Intn(len(outOf[src]))]
			sink := sinks[c.dst]
			payload := uint64(r.Intn(4))<<32 | id
			e.At(at, func() { c.Send(e.Now(), sink, payload) })
		} else {
			shard, marker := src, id
			e.At(at, func() {
				logs[shard] = append(logs[shard], fmt.Sprintf("s%d local %d @%d", shard, marker, e.Now()))
			})
		}
		id++
	}
	if stopShard >= 0 {
		s := stopShard % shards
		engines[s].At(Time(50+r.Int63n(200)), func() { engines[s].Stop() })
	}

	n := 0
	deadline := Time(0)
	for seg := 0; seg < 3; seg++ {
		deadline += Time(60 + r.Int63n(200))
		n += g.RunUntil(deadline)
	}
	n += g.Run() // drain remaining bounce chains

	var all []string
	for i, l := range logs {
		all = append(all, fmt.Sprintf("-- shard %d --", i))
		all = append(all, l...)
	}
	return all, n
}

// checkShardEquivalence replays one scenario under the full configuration
// matrix and requires identical traces and event counts everywhere.
func checkShardEquivalence(t *testing.T, seed int64, shards, events, stopShard int) {
	t.Helper()
	type cfg struct {
		name     string
		sched    Scheduler
		mode     SyncMode
		parallel bool
	}
	cfgs := []cfg{
		{"wheel/epoch/seq", SchedulerWheel, SyncEpoch, false},
		{"heap/epoch/seq", SchedulerHeap, SyncEpoch, false},
		{"wheel/channel/seq", SchedulerWheel, SyncChannel, false},
		{"heap/channel/seq", SchedulerHeap, SyncChannel, false},
		{"wheel/channel/par", SchedulerWheel, SyncChannel, true},
		{"wheel/epoch/par", SchedulerWheel, SyncEpoch, true},
	}
	refTrace, refN := runShardScript(cfgs[0].sched, cfgs[0].mode, cfgs[0].parallel, seed, shards, events, stopShard)
	for _, c := range cfgs[1:] {
		trace, n := runShardScript(c.sched, c.mode, c.parallel, seed, shards, events, stopShard)
		if n != refN {
			t.Fatalf("seed=%d shards=%d stop=%d: %s processed %d events, %s processed %d",
				seed, shards, stopShard, cfgs[0].name, refN, c.name, n)
		}
		for i := range refTrace {
			if i >= len(trace) || trace[i] != refTrace[i] {
				got := "<missing>"
				if i < len(trace) {
					got = trace[i]
				}
				t.Fatalf("seed=%d shards=%d stop=%d: %s diverges from %s at line %d: %q vs %q",
					seed, shards, stopShard, c.name, cfgs[0].name, i, got, refTrace[i])
			}
		}
		if len(trace) != len(refTrace) {
			t.Fatalf("seed=%d shards=%d stop=%d: %s trace has %d lines, %s has %d",
				seed, shards, stopShard, c.name, len(trace), cfgs[0].name, len(refTrace))
		}
	}
}

// TestShardSyncEquivalence covers a spread of seeds deterministically.
func TestShardSyncEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		checkShardEquivalence(t, seed, 2+int(seed)%3, 40, -1)
	}
}

// TestShardSyncEquivalenceStopped repeats with one shard stopping mid-run.
func TestShardSyncEquivalenceStopped(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		checkShardEquivalence(t, seed, 2+int(seed)%3, 40, int(seed)%4)
	}
}

// FuzzShardSyncEquivalence lets the fuzzer pick the scenario shape; the
// corpus plays back as unit tests in normal `go test` runs.
func FuzzShardSyncEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(30), int8(-1))
	f.Add(int64(9), uint8(4), uint8(60), int8(1))
	f.Add(int64(42), uint8(3), uint8(10), int8(0))
	f.Fuzz(func(t *testing.T, seed int64, shards, events uint8, stopShard int8) {
		s := int(shards)%4 + 2 // 2..5 shards
		n := int(events)%80 + 5
		stop := int(stopShard)
		if stop >= 0 {
			stop %= s
		} else {
			stop = -1
		}
		checkShardEquivalence(t, seed, s, n, stop)
	})
}
