package sim

// Hierarchical timing wheel: the engine's default event scheduler. Where the
// reference binary heap pays O(log n) sift work on every push and pop — two
// heap operations per simulated packet-hop, the top profile entry at fat-tree
// scale — the wheel pays amortized O(1): a push indexes straight into a
// power-of-two bucket, and a pop serves from a small sorted "ready" run
// refilled one bucket at a time.
//
// Layout. Four levels of 64 buckets each over virtual nanoseconds, with
// level-0 buckets 2.048 µs wide (so the levels span ~131 µs, ~8.4 ms,
// ~537 ms and ~34 s beyond the wheel's base time), plus an overflow band
// for anything farther out (idle Tickers, TCP RTO backstops, long
// experiment deadlines). An event lands in the lowest level whose bucket
// distance from the base fits, and cascades down as the base advances — at
// most once per level, which is the amortized-O(1) argument. The level-0
// width is tuned to the simulator's event spacing (transmit completions and
// propagation delays are single-digit microseconds at gigabit rates): wide
// enough that consecutive events batch into one sort-and-serve refill,
// narrow enough that a bucket's lazy sort stays a short insertion sort.
//
// Determinism contract. The wheel is observationally identical to the heap:
// pop always returns the minimum pending event by the engine's full ordering
// key (at, ins, seq). Buckets are unordered until consumed; when the base
// reaches the earliest bucket, its events are sorted lazily by the full key
// into the ready run. Events scheduled into the currently open ready window
// — including back-dated scheduleCrossing insertions at epoch barriers,
// whose ins stamps must land in the same tie-break position a lone engine
// would have given them — are merge-inserted into the remaining run by the
// same key. TestSchedulerEquivalence and FuzzSchedulerEquivalence pin the
// heap/wheel firing-order equivalence over adversarial schedules.
//
// peek answers "earliest pending event time" in O(levels) without sorting
// anything beyond the one bucket being consumed: each level keeps a 64-bit
// occupancy bitmap and per-bucket minimum, so ShardGroup.runTo's exclusive
// epoch deadlines (which query the earliest pending event before every pop)
// stay cheap.

import (
	"math/bits"
	"slices"
)

const (
	wheelBits      = 6                // 64 buckets per level
	wheelBuckets   = 1 << wheelBits   // bucket count per level
	wheelMask      = wheelBuckets - 1 // index mask
	wheelGranShift = 11               // level-0 bucket width: 2048 ns
	wheelLevels    = 4                // reach: 64^4 * 2 µs ~ 34 s
	wheelTopShift  = wheelGranShift + wheelBits*(wheelLevels-1)
)

// wheelBucket is one unsorted event bin. min tracks the earliest firing time
// in the bucket; it is exact because events only leave a bucket when the
// whole bucket is drained (on expiry or cascade).
type wheelBucket struct {
	evs []event
	min Time
}

// add appends an event, maintaining the bucket minimum.
func (b *wheelBucket) add(ev event) {
	if len(b.evs) == 0 || ev.at < b.min {
		b.min = ev.at
	}
	b.evs = append(b.evs, ev)
}

// timingWheel implements scheduler. Zero value is not ready; use
// newTimingWheel.
type timingWheel struct {
	base  Time // all pending events fire at or after base
	count int  // total pending events, all levels + overflow + ready

	level [wheelLevels][wheelBuckets]wheelBucket
	occ   [wheelLevels]uint64 // per-level bucket occupancy bitmaps

	// ovf holds events beyond the top level's reach, unsorted with an exact
	// minimum; they re-enter the wheel when the base advances within reach.
	ovf    []event
	ovfMin Time

	// ready is the sorted run currently being served: every pending event
	// with at < readyEnd, ordered by (at, ins, seq), consumed from readyPos.
	// New events inside the window are merge-inserted behind readyPos.
	ready    []event
	readyPos int
	readyEnd Time // exclusive; 0 means no window is open
}

// newTimingWheel returns an empty wheel based at time zero. Every bin gets
// a small starting capacity up front: higher-level buckets rotate slowly
// (a level-2 bucket is first touched after ~8 ms of virtual time), so
// without pre-sizing their first appends would show up as rare steady-state
// allocations long after a workload's warmup. Bins that outgrow the seed
// capacity keep their grown backing arrays for the life of the engine.
func newTimingWheel() *timingWheel {
	w := &timingWheel{ready: make([]event, 0, 64), ovf: make([]event, 0, 16)}
	// Mid levels get the deepest bins: periodic work (flow pacing, control
	// rounds) concentrates at sub-millisecond-to-millisecond horizons, and
	// one level-1/2 bucket funnels many such timers before cascading.
	caps := [wheelLevels]int{16, 64, 64, 16}
	for l := range w.level {
		for i := range w.level[l] {
			w.level[l][i].evs = make([]event, 0, caps[l])
		}
	}
	return w
}

func (w *timingWheel) len() int { return w.count }

// push schedules ev. The engine has already clamped ev.at to >= now >= base.
func (w *timingWheel) push(ev event) {
	w.count++
	if ev.at < w.readyEnd {
		w.insertReady(ev)
		return
	}
	w.place(ev)
}

// place bins ev into the lowest level whose bucket distance from base fits,
// or the overflow band. Shared by push and cascading (which must not touch
// count).
func (w *timingWheel) place(ev event) {
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelGranShift + wheelBits*l)
		if (ev.at>>shift)-(w.base>>shift) < wheelBuckets {
			idx := int(ev.at>>shift) & wheelMask
			w.level[l][idx].add(ev)
			w.occ[l] |= 1 << uint(idx)
			return
		}
	}
	if len(w.ovf) == 0 || ev.at < w.ovfMin {
		w.ovfMin = ev.at
	}
	w.ovf = append(w.ovf, ev)
}

// insertReady merge-inserts ev into the live part of the ready run, keeping
// (at, ins, seq) order. Events already consumed (before readyPos) stay put:
// a back-dated key sorting before them would simply fire next, exactly as a
// heap would serve it.
func (w *timingWheel) insertReady(ev event) {
	lo, hi := w.readyPos, len(w.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(&w.ready[mid], &ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.ready = append(w.ready, event{})
	copy(w.ready[lo+1:], w.ready[lo:])
	w.ready[lo] = ev
}

// levelMin returns the earliest firing time at level l. Bucket numbers at a
// level are confined to [base's number, base's number+63], so scanning the
// occupancy bitmap in circular order from the base cursor finds the bucket
// with the smallest (i.e. earliest) window first; its tracked min is the
// level minimum.
func (w *timingWheel) levelMin(l int) (Time, bool) {
	m := w.occ[l]
	if m == 0 {
		return 0, false
	}
	c := uint(w.base>>uint(wheelGranShift+wheelBits*l)) & wheelMask
	rot := m>>c | m<<(wheelBuckets-c)
	idx := (uint(bits.TrailingZeros64(rot)) + c) & wheelMask
	return w.level[l][idx].min, true
}

// pendingMin returns the earliest firing time outside the ready run. Levels
// are not ordered against each other (an event parks at the level that fit
// when it was scheduled), so all of them — and the overflow — are consulted.
func (w *timingWheel) pendingMin() (Time, bool) {
	var best Time
	found := false
	for l := 0; l < wheelLevels; l++ {
		if t, ok := w.levelMin(l); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	if len(w.ovf) > 0 && (!found || w.ovfMin < best) {
		best, found = w.ovfMin, true
	}
	return best, found
}

// peek returns the earliest pending event time. It refills the ready run if
// needed so the common case (called before every pop by Engine.runTo) is a
// slice-front read.
func (w *timingWheel) peek() (Time, bool) {
	if w.count == 0 {
		return 0, false
	}
	if w.readyPos >= len(w.ready) {
		w.fill()
	}
	return w.ready[w.readyPos].at, true
}

// pop removes and returns the earliest event by (at, ins, seq). The wheel
// must be non-empty.
func (w *timingWheel) pop() event {
	if w.readyPos >= len(w.ready) {
		w.fill()
	}
	ev := w.ready[w.readyPos]
	w.ready[w.readyPos] = event{} // release handler/closure for GC
	w.readyPos++
	w.count--
	return ev
}

// fill advances the base to the earliest pending event, cascades buckets the
// base has entered, and sorts that event's level-0 bucket into a fresh ready
// run. The wheel must hold at least one event outside the ready run.
func (w *timingWheel) fill() {
	w.ready = w.ready[:0]
	w.readyPos = 0
	w.readyEnd = 0
	m, _ := w.pendingMin()
	w.advance(m)
	idx := int(m>>wheelGranShift) & wheelMask
	b := &w.level[0][idx]
	w.ready = append(w.ready, b.evs...)
	for i := range b.evs {
		b.evs[i] = event{}
	}
	b.evs = b.evs[:0]
	w.occ[0] &^= 1 << uint(idx)
	sortEvents(w.ready)
	w.readyEnd = (m>>wheelGranShift + 1) << wheelGranShift
}

// advance moves the base to m (the global pending minimum) and cascades the
// higher-level buckets the base just entered down to finer levels. Only the
// bucket containing m can be non-empty at each level — everything earlier
// would fire before the global minimum — and once a level's bucket number is
// unchanged all coarser levels' are too.
func (w *timingWheel) advance(m Time) {
	old := w.base
	w.base = m
	for l := 1; l < wheelLevels; l++ {
		shift := uint(wheelGranShift + wheelBits*l)
		if old>>shift == m>>shift {
			break
		}
		idx := int(m>>shift) & wheelMask
		if w.occ[l]&(1<<uint(idx)) == 0 {
			continue
		}
		w.occ[l] &^= 1 << uint(idx)
		b := &w.level[l][idx]
		evs := b.evs
		b.evs = evs[:0]
		// place re-bins strictly below level l (the bucket distance at this
		// level is now zero), so it never appends back into evs.
		for i := range evs {
			w.place(evs[i])
			evs[i] = event{}
		}
	}
	if len(w.ovf) > 0 && (w.ovfMin>>wheelTopShift)-(m>>wheelTopShift) < wheelBuckets {
		// The overflow minimum is back within the wheel's reach: re-bin the
		// band. place may re-append still-distant events onto w.ovf, which
		// aliases evs — so entries are zeroed only beyond the retained tail.
		evs := w.ovf
		w.ovf = w.ovf[:0]
		w.ovfMin = 0
		for i := range evs {
			w.place(evs[i])
		}
		for i := len(w.ovf); i < len(evs); i++ {
			evs[i] = event{}
		}
	}
}

// eventLess is the engine's total event order: firing time, then insertion
// (emission) time, then engine-local scheduling sequence.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.ins != b.ins {
		return a.ins < b.ins
	}
	return a.seq < b.seq
}

// sortEvents orders a drained bucket by the full event key without
// allocating: insertion sort for the typical near-singleton bucket, the
// stdlib's generic sort (no interface boxing) for rare big same-window
// bursts.
func sortEvents(evs []event) {
	if len(evs) <= 16 {
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && eventLess(&evs[j], &evs[j-1]); j-- {
				evs[j], evs[j-1] = evs[j-1], evs[j]
			}
		}
		return
	}
	slices.SortFunc(evs, func(a, b event) int {
		if eventLess(&a, &b) {
			return -1
		}
		return 1
	})
}
