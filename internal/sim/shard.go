package sim

// Conservative parallel discrete-event simulation (PDES) across topology
// shards. Each shard owns one Engine and all state of the nodes assigned to
// it; shards advance in lookahead epochs bounded by the minimum propagation
// delay of any shard-crossing link — the classic conservative synchronization
// window: nothing a shard does during an epoch can affect another shard
// before the epoch ends, because influence only travels over boundary links
// and those take at least one lookahead of virtual time.
//
// An epoch runs every engine (in parallel goroutines when allowed) up to,
// but excluding, the epoch boundary. At the barrier the group drains every
// boundary port's mailbox in one deterministic merge — sorted by
// (deliver time, emission time, source shard, port, FIFO index) — and
// schedules the crossings into their destination engines before any shard
// processes the boundary instant. Determinism therefore does not depend on
// goroutine scheduling: for a given seed and shard count, results are
// reproducible, and because crossings carry their emission time as the
// event-ordering tie-break (see Engine.scheduleCrossing), results match the
// single-engine run except for the measure-zero case of two causally
// unrelated events in different shards colliding on both firing and
// insertion instants.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// BoundaryStamp is the (deliver time, emission time) pair of one queued
// shard crossing.
type BoundaryStamp struct {
	At  Time // delivery instant in the destination shard
	Ins Time // emission instant in the source shard (transmit completion)
}

// BoundaryPort is one directed shard-crossing channel — in the network
// substrate, a link whose transmitter and receiver live in different shards.
// The port's source shard fills a private mailbox during an epoch; the group
// drains it at the barrier, single-threaded, in deterministic merge order.
//
// Registration (AddBoundary) returns a Dirty handle the port MUST invoke
// when it parks a crossing: barriers only drain ports that marked
// themselves since the last drain, so an unmarked park is never delivered.
type BoundaryPort interface {
	// SrcShard and DestShard identify the crossing's direction.
	SrcShard() int
	DestShard() int
	// Delay is the crossing's propagation delay; the group's lookahead is
	// the minimum Delay over all registered ports.
	Delay() Time
	// FlushStamps appends the stamps of all queued crossings in FIFO order
	// and clears the stamp queue. Called only at barriers.
	FlushStamps(buf []BoundaryStamp) []BoundaryStamp
	// Transfer moves the next queued crossing (FIFO) into the destination
	// shard — for packets, re-homing them into the destination's pool — and
	// returns the handler to schedule for the delivery. Called only at
	// barriers, once per stamp flushed, in merge order.
	Transfer() (Handler, uint64)
}

// ShardGroup synchronizes N engines in conservative lookahead epochs.
type ShardGroup struct {
	engines []*Engine
	ports   []BoundaryPort
	marks   []*Dirty

	// dirty[s] lists ports in source shard s that parked crossings since
	// the last barrier. Each list is appended to only by its own shard's
	// goroutine (via Dirty.Mark) and consumed single-threaded at barriers,
	// so barriers cost O(active ports), not O(all ports) — on a big
	// fat-tree cut, most ports are idle in any given 5 µs epoch.
	dirty [][]int

	// Parallel controls whether epochs run shards on separate goroutines.
	// Determinism holds either way; sequential epochs are only useful to
	// debug or to measure barrier overhead in isolation.
	Parallel bool

	// drain scratch, reused across barriers.
	evts     []crossEvt
	stampBuf []BoundaryStamp
}

// Dirty marks one boundary port as holding undrained crossings. The owning
// port calls Mark from its source shard whenever it parks a crossing; Mark
// deduplicates, so calling it per crossing is fine.
type Dirty struct {
	g      *ShardGroup
	src    int
	idx    int
	marked bool
}

// Mark flags the port for the next barrier drain.
func (d *Dirty) Mark() {
	if !d.marked {
		d.marked = true
		d.g.dirty[d.src] = append(d.g.dirty[d.src], d.idx)
	}
}

// crossEvt is one drained crossing with its deterministic merge key.
type crossEvt struct {
	at, ins   Time
	src, port int
	idx       int
}

// NewShardGroup creates a group over the given engines. Engines are indexed
// by shard number; boundary ports are registered as the topology is wired.
func NewShardGroup(engines []*Engine) *ShardGroup {
	return &ShardGroup{
		engines:  engines,
		dirty:    make([][]int, len(engines)),
		Parallel: runtime.GOMAXPROCS(0) > 1,
	}
}

// Engines returns the per-shard engines.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// AddBoundary registers a shard-crossing port and returns its Dirty handle,
// which the port must invoke whenever it parks a crossing.
func (g *ShardGroup) AddBoundary(p BoundaryPort) *Dirty {
	if p.SrcShard() < 0 || p.SrcShard() >= len(g.engines) ||
		p.DestShard() < 0 || p.DestShard() >= len(g.engines) {
		panic(fmt.Sprintf("sim: boundary port shards (%d->%d) out of range",
			p.SrcShard(), p.DestShard()))
	}
	if p.Delay() <= 0 {
		panic("sim: boundary port needs positive propagation delay for lookahead")
	}
	g.ports = append(g.ports, p)
	d := &Dirty{g: g, src: p.SrcShard(), idx: len(g.ports) - 1}
	g.marks = append(g.marks, d)
	return d
}

// NumBoundaries returns the number of registered crossing ports.
func (g *ShardGroup) NumBoundaries() int { return len(g.ports) }

// Lookahead returns the conservative synchronization window: the minimum
// propagation delay over all boundary ports, or 0 if there are none (shards
// are then fully independent and epochs are unbounded).
func (g *ShardGroup) Lookahead() Time {
	var la Time
	for _, p := range g.ports {
		if d := p.Delay(); la == 0 || d < la {
			la = d
		}
	}
	return la
}

// Now returns the group's common barrier time (the maximum engine clock;
// engines share it at every barrier).
func (g *ShardGroup) Now() Time {
	var t Time
	for _, e := range g.engines {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Pending returns the number of scheduled events across all shards.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// drain merges every boundary mailbox into the destination engines in
// deterministic order. Runs single-threaded at a barrier: all shard
// goroutines are parked, so touching any shard's engine and packet pool is
// safe, and the barrier's synchronization orders these writes before the
// next epoch's reads.
func (g *ShardGroup) drain() {
	evts := g.evts[:0]
	for src, list := range g.dirty {
		for _, pi := range list {
			// Re-arm the mark before flushing so the port re-registers for
			// the next barrier when it parks again.
			g.marks[pi].marked = false
			p := g.ports[pi]
			g.stampBuf = p.FlushStamps(g.stampBuf[:0])
			for i, s := range g.stampBuf {
				evts = append(evts, crossEvt{at: s.At, ins: s.Ins, src: src, port: pi, idx: i})
			}
		}
		g.dirty[src] = list[:0]
	}
	sortCross(evts)
	for _, ev := range evts {
		p := g.ports[ev.port]
		h, arg := p.Transfer()
		g.engines[p.DestShard()].scheduleCrossing(ev.at, ev.ins, h, arg)
	}
	g.evts = evts[:0]
}

// crossLess orders crossings by (deliver time, emission time, source shard,
// port, FIFO index) — a total order independent of goroutine scheduling.
// Per-port stamps are monotone in (at, ins), so the merge preserves each
// port's FIFO order and Transfer can pop sequentially.
func crossLess(a, b crossEvt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.ins != b.ins {
		return a.ins < b.ins
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if a.port != b.port {
		return a.port < b.port
	}
	return a.idx < b.idx
}

// sortCross sorts a barrier's crossings. Typical barriers carry a handful,
// so insertion sort runs allocation-free; big fan-in barriers fall back to
// the standard sort.
func sortCross(evts []crossEvt) {
	if len(evts) <= 32 {
		for i := 1; i < len(evts); i++ {
			for j := i; j > 0 && crossLess(evts[j], evts[j-1]); j-- {
				evts[j], evts[j-1] = evts[j-1], evts[j]
			}
		}
		return
	}
	sort.Slice(evts, func(i, j int) bool { return crossLess(evts[i], evts[j]) })
}

// earliest returns the minimum pending-event time across shards — the
// "earliest pending <= deadline" query every epoch starts with. It runs
// once per epoch on every engine, so it must not sort or drain anything:
// the heap answers from its root, the timing wheel from its occupancy
// bitmaps and per-bucket minima (peek may refill the wheel's ready run,
// which is safe here — barriers are single-threaded, all shard goroutines
// parked). Stopped engines are skipped: their events will never run
// (matching Engine.Run's prompt return after Stop), so counting them would
// spin the epoch loop without progress.
func (g *ShardGroup) earliest() (Time, bool) {
	var min Time
	found := false
	for _, e := range g.engines {
		if e.stopped {
			continue
		}
		if t, ok := e.peekTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// advanceAll moves every running engine clock forward to t (never
// backward; stopped engines keep their clocks, like Engine.RunUntil).
func (g *ShardGroup) advanceAll(t Time) {
	for _, e := range g.engines {
		if !e.stopped && e.now < t {
			e.now = t
		}
	}
}

// epochRunner runs one epoch on every shard, on parked worker goroutines
// when parallelism is enabled. Workers live for one Run/RunUntil call.
type epochRunner struct {
	g      *ShardGroup
	reqs   []chan epochReq
	counts []int
	wg     sync.WaitGroup
}

type epochReq struct {
	deadline  Time
	inclusive bool
	runAll    bool // drain the shard completely (Engine.Run) instead
}

func (g *ShardGroup) newRunner() *epochRunner {
	r := &epochRunner{g: g, counts: make([]int, len(g.engines))}
	if !g.Parallel || len(g.engines) < 2 {
		return r
	}
	r.reqs = make([]chan epochReq, len(g.engines))
	for i := range g.engines {
		ch := make(chan epochReq, 1)
		r.reqs[i] = ch
		// The worker ranges over its captured channel, never over r.reqs:
		// stop() nils r.reqs concurrently with worker startup.
		go func(i int, e *Engine, ch chan epochReq) {
			for req := range ch {
				if req.runAll {
					r.counts[i] += e.Run()
				} else {
					r.counts[i] += e.runTo(req.deadline, req.inclusive)
				}
				r.wg.Done()
			}
		}(i, g.engines[i], ch)
	}
	return r
}

// epoch advances every shard to deadline and returns at the barrier.
func (r *epochRunner) epoch(deadline Time, inclusive bool) {
	r.dispatch(epochReq{deadline: deadline, inclusive: inclusive})
}

// epochAll drains every shard completely — only valid with no boundaries.
func (r *epochRunner) epochAll() {
	r.dispatch(epochReq{runAll: true})
}

func (r *epochRunner) dispatch(req epochReq) {
	if r.reqs == nil {
		for i, e := range r.g.engines {
			if req.runAll {
				r.counts[i] += e.Run()
			} else {
				r.counts[i] += e.runTo(req.deadline, req.inclusive)
			}
		}
		return
	}
	r.wg.Add(len(r.reqs))
	for _, ch := range r.reqs {
		ch <- req
	}
	r.wg.Wait()
}

// stop releases the worker goroutines and returns the total event count.
// It is idempotent and runs deferred, so workers are not leaked when a
// simulation event handler panics out of an epoch.
func (r *epochRunner) stop() int {
	if r.reqs != nil {
		for _, ch := range r.reqs {
			close(ch)
		}
		r.reqs = nil
	}
	n := 0
	for _, c := range r.counts {
		n += c
	}
	return n
}

// RunUntil advances the whole group to the deadline: every event with
// timestamp <= deadline in every shard is processed, crossings included,
// and every engine clock ends at the deadline. It returns the number of
// events processed, which matches what a single merged engine would report.
func (g *ShardGroup) RunUntil(deadline Time) int {
	la := g.Lookahead()
	r := g.newRunner()
	defer r.stop() // idempotent: releases workers even if a handler panics
	for {
		g.drain()
		next, ok := g.earliest()
		if !ok || next > deadline {
			break
		}
		if la == 0 {
			// No boundaries: shards are independent; one inclusive epoch.
			r.epoch(deadline, true)
			continue
		}
		// The epoch may extend a full lookahead past the first pending
		// event: nothing can be emitted before that event fires, so no
		// crossing can deliver before next+la. Idle stretches thus cost one
		// barrier per lookahead of *busy* time, not of wall virtual time.
		// An epoch boundary falling exactly on the deadline still runs
		// exclusive: a crossing can deliver at that very instant and must be
		// drained before any shard processes it, or same-instant events
		// would fire out of insertion order. Only when no crossing can land
		// at or before the deadline (next+la > deadline) is the final
		// inclusive epoch safe.
		if end := next + la; end <= deadline {
			r.epoch(end, false)
		} else {
			r.epoch(deadline, true)
		}
	}
	g.advanceAll(deadline)
	return r.stop()
}

// Run processes events until no shard has any left and all mailboxes are
// empty, then aligns every engine clock to the time of the last event. It
// returns the number of events processed.
func (g *ShardGroup) Run() int {
	la := g.Lookahead()
	r := g.newRunner()
	defer r.stop() // idempotent: releases workers even if a handler panics
	for {
		g.drain()
		next, ok := g.earliest()
		if !ok {
			break
		}
		if la == 0 {
			r.epochAll()
			continue
		}
		r.epoch(next+la, false)
	}
	// Align every clock to the group's last barrier (with boundaries) or the
	// latest shard clock (without); unlike Engine.Run, the group's clocks end
	// epoch-aligned rather than exactly at the last event's timestamp.
	g.advanceAll(g.Now())
	return r.stop()
}
