package sim

// Conservative parallel discrete-event simulation (PDES) across topology
// shards. Each shard owns one Engine and all state of the nodes assigned to
// it; shards exchange boundary traffic over directed Channels (one per
// shard-crossing link) whose propagation delays provide the conservative
// lookahead: nothing a shard does at virtual time t can affect another
// shard before t + the channel's delay.
//
// Two synchronization algorithms share this machinery (SyncMode):
//
//   - SyncChannel (default) is asynchronous and CMB-style: each shard
//     independently advances to the minimum over its incoming channels of
//     (source-shard published clock + channel delay), draining that
//     channel's lock-free mailbox incrementally as it goes. Shards never
//     rendezvous inside a run — the only group-wide sync points are the
//     dispatch and join of the run itself — so a shard pair joined only by
//     slow links never throttles the rest.
//   - SyncEpoch is the global-epoch reference: shards advance in lockstep
//     windows bounded by the group-wide minimum channel delay, with a full
//     barrier and mailbox drain per epoch. It exists as the measurable
//     baseline for the sync counters (SyncStats), the way the binary heap
//     backs the timing wheel.
//
// Both produce byte-identical simulations, and both match the old
// single-threaded barrier merge: every crossing carries a deterministic
// event key — (high bit, source shard, channel, FIFO index) in the seq
// field, ordered after same-(at, ins) local events — so the instant a
// mailbox happens to be drained is unobservable (see Engine.scheduleCrossing
// and crossKey). Determinism therefore does not depend on goroutine
// scheduling: for a given seed and shard count, results are reproducible
// and match the single-engine run except for the measure-zero case of two
// causally unrelated events in different shards colliding on both firing
// and insertion instants.
//
// Shard workers are persistent: the first parallel run spawns one goroutine
// per shard, parked on a command channel between runs, so the per-RunUntil
// cost of the testbed's epoch-sized run pattern is a channel send and a
// WaitGroup join, not a spawn.

import (
	"fmt"
	"runtime"
	"sync"
)

// ShardGroup synchronizes N engines conservatively (see the package
// comment for the two SyncModes).
type ShardGroup struct {
	// Parallel controls whether runs execute shards on the persistent
	// worker goroutines. Determinism holds either way; sequential runs are
	// useful to debug, and they make even the scheduling-sensitive
	// diagnostics in SyncStats deterministic.
	Parallel bool

	// Mode selects the synchronization algorithm. Switching between runs
	// is allowed; simulated behavior is identical in both modes.
	Mode SyncMode

	st *groupState
}

// groupState is everything the persistent shard workers touch. It is split
// from ShardGroup so worker goroutines hold no reference to the group
// itself: when the group becomes unreachable its finalizer closes the
// command channels and the workers exit, instead of leaking one parked
// goroutine per shard per group a test suite ever created.
type groupState struct {
	engines  []*Engine
	channels []*Channel
	in       [][]*Channel // incoming channels per destination shard
	down     [][]int      // downstream shards per source shard (dedup)

	// lookahead is the group-wide minimum channel delay (the SyncEpoch
	// window); minIn is the per-shard minimum incoming delay. Both are
	// maintained by AddChannel — deriving them per run was measurable
	// overhead in the old epoch engine.
	lookahead Time
	minIn     []Time

	// clocks are the per-shard published virtual clocks the asynchronous
	// engine computes its per-channel horizons from; wake holds one sticky
	// wake token per shard (capacity 1, non-blocking sends), so a shard
	// that parks after an upstream publish still observes it.
	clocks []shardClock
	wake   []chan struct{}

	// Persistent worker plumbing, spawned on the first parallel run.
	cmds   []chan workerCmd
	wg     sync.WaitGroup
	counts []int

	// Sync counters (see SyncStats). epochs is coordinator-owned; the
	// per-shard arrays are each written by one goroutine at a time.
	epochs    uint64
	crossings []padCounter
	drains    []padCounter
	parks     []padCounter

	// seqDone is scratch for the sequential asynchronous loop.
	seqDone []bool
}

// workerCmd is one run-quantum request to a persistent shard worker.
type workerCmd struct {
	kind      uint8
	deadline  Time
	inclusive bool
}

const (
	cmdEpoch  uint8 = iota // runTo(deadline, inclusive)
	cmdRunAll              // Engine.Run (epoch mode with no channels)
	cmdAsync               // asynchronous per-channel-lookahead loop
)

// NewShardGroup creates a group over the given engines. Engines are indexed
// by shard number; boundary channels are registered as the topology is
// wired (AddChannel).
func NewShardGroup(engines []*Engine) *ShardGroup {
	if len(engines) > maxKeyShards {
		panic(fmt.Sprintf("sim: %d shards exceed the crossing-key limit (%d)",
			len(engines), maxKeyShards))
	}
	n := len(engines)
	st := &groupState{
		engines:   engines,
		in:        make([][]*Channel, n),
		down:      make([][]int, n),
		minIn:     make([]Time, n),
		clocks:    make([]shardClock, n),
		wake:      make([]chan struct{}, n),
		counts:    make([]int, n),
		crossings: make([]padCounter, n),
		drains:    make([]padCounter, n),
		parks:     make([]padCounter, n),
		seqDone:   make([]bool, n),
	}
	for i := range st.wake {
		st.wake[i] = make(chan struct{}, 1)
	}
	return &ShardGroup{
		Parallel: runtime.GOMAXPROCS(0) > 1,
		st:       st,
	}
}

// Engines returns the per-shard engines.
func (g *ShardGroup) Engines() []*Engine { return g.st.engines }

// AddChannel registers a directed shard-crossing channel with the given
// propagation delay (its lookahead contribution) and returns it; the
// source shard parks crossings with Channel.Send.
func (g *ShardGroup) AddChannel(src, dst int, delay Time) *Channel {
	st := g.st
	if src < 0 || src >= len(st.engines) || dst < 0 || dst >= len(st.engines) {
		panic(fmt.Sprintf("sim: boundary channel shards (%d->%d) out of range", src, dst))
	}
	if delay <= 0 {
		panic("sim: boundary channel needs positive propagation delay for lookahead")
	}
	if len(st.channels) >= maxKeyChannels {
		panic(fmt.Sprintf("sim: %d boundary channels exceed the crossing-key limit", len(st.channels)))
	}
	c := &Channel{st: st, idx: len(st.channels), src: src, dst: dst, delay: delay}
	c.q.Init()
	st.channels = append(st.channels, c)
	st.in[dst] = append(st.in[dst], c)
	known := false
	for _, d := range st.down[src] {
		if d == dst {
			known = true
			break
		}
	}
	if !known {
		st.down[src] = append(st.down[src], dst)
	}
	if st.lookahead == 0 || delay < st.lookahead {
		st.lookahead = delay
	}
	if st.minIn[dst] == 0 || delay < st.minIn[dst] {
		st.minIn[dst] = delay
	}
	return c
}

// NumChannels returns the number of registered crossing channels.
func (g *ShardGroup) NumChannels() int { return len(g.st.channels) }

// Lookahead returns the group-wide conservative window: the minimum
// propagation delay over all boundary channels, or 0 if there are none
// (shards are then fully independent). Cached at registration — the old
// engine re-derived it on every run.
func (g *ShardGroup) Lookahead() Time { return g.st.lookahead }

// MinIncomingDelay returns shard's per-channel lookahead floor — the
// minimum delay over its incoming channels — and whether it has any. The
// asynchronous engine advances each shard at least this far beyond the
// slowest upstream clock, which is never less than the global Lookahead
// and usually more: that inequality is what the per-channel engine buys.
func (g *ShardGroup) MinIncomingDelay(shard int) (Time, bool) {
	d := g.st.minIn[shard]
	return d, d > 0
}

// Stats returns the group's synchronization counters. Call between runs
// (counters are written by shard workers while a run is in flight).
func (g *ShardGroup) Stats() SyncStats {
	st := g.st
	s := SyncStats{Mode: g.Mode, Epochs: st.epochs}
	for i := range st.engines {
		s.Crossings += st.crossings[i].v
		s.Drains += st.drains[i].v
		if st.parks[i].v > s.MaxIdleParks {
			s.MaxIdleParks = st.parks[i].v
		}
	}
	return s
}

// Now returns the group's common run-end time (the maximum engine clock;
// engines share it at the end of every RunUntil).
func (g *ShardGroup) Now() Time {
	var t Time
	for _, e := range g.st.engines {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Pending returns the number of scheduled events across all shards plus
// crossings parked in channel mailboxes. Call between runs.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.st.engines {
		n += e.Pending()
	}
	for _, c := range g.st.channels {
		n += c.q.Avail()
	}
	return n
}

// earliest returns the minimum pending-event time across shard schedulers.
// Stopped engines are skipped: their events will never run (matching
// Engine.Run's prompt return after Stop), so counting them would spin the
// run loop without progress.
func (g *ShardGroup) earliest() (Time, bool) {
	var min Time
	found := false
	for _, e := range g.st.engines {
		if e.stopped {
			continue
		}
		if t, ok := e.peekTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// earliestAnywhere extends earliest with crossings still parked in
// mailboxes (skipping channels into stopped shards, whose deliveries would
// never fire). Call between run quanta, with all workers parked.
func (g *ShardGroup) earliestAnywhere() (Time, bool) {
	min, found := g.earliest()
	for _, c := range g.st.channels {
		if g.st.engines[c.dst].stopped {
			continue
		}
		if t, ok := c.earliestPending(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// advanceAll moves every running engine clock forward to t (never
// backward; stopped engines keep their clocks, like Engine.RunUntil).
func (g *ShardGroup) advanceAll(t Time) {
	for _, e := range g.st.engines {
		if !e.stopped && e.now < t {
			e.now = t
		}
	}
}

// publish raises shard i's published clock to t (monotone) — the value
// downstream shards compute their horizons from. Producer-exclusive per
// shard: only i's worker (or the coordinator between runs) calls it.
func (st *groupState) publish(i int, t Time) {
	if Time(st.clocks[i].v.Load()) < t {
		st.clocks[i].v.Store(int64(t))
	}
}

// notify nudges every shard downstream of i: a sticky token per shard, so
// a consumer that checked its horizon before this publish and parks after
// it still wakes. Non-blocking — an already-pending token is enough.
func (st *groupState) notify(i int) {
	for _, d := range st.down[i] {
		select {
		case st.wake[d] <- struct{}{}:
		default:
		}
	}
}

// syncClocks aligns published clocks with the engines before an
// asynchronous run (engines may have advanced under the other mode, or
// via advanceAll, since the last publish).
func (st *groupState) syncClocks() {
	for i, e := range st.engines {
		st.publish(i, e.now)
	}
}

// drainAll empties every channel mailbox into the destination engines —
// the SyncEpoch barrier drain. Runs on the coordinator with all workers
// parked, so it is the consumer of every mailbox; the crossings' keys make
// any drain order correct.
func (st *groupState) drainAll() {
	for _, c := range st.channels {
		if c.q.Avail() == 0 {
			continue
		}
		if c.drainInto(st.engines[c.dst]) > 0 {
			st.drains[c.dst].v++
		}
	}
}

// step runs one conservative quantum for shard i under the asynchronous
// engine: snapshot the incoming clocks, drain what is visible, then run to
// the per-channel horizon. It returns events processed, whether the shard
// completed the run (reached the deadline, or stopped), and whether any
// progress was made.
//
// The snapshot MUST precede the drain: a crossing not yet visible to the
// drain was emitted at or after its source's snapshot clock, so its
// delivery time is at or beyond the horizon computed here — running to
// that horizon exclusively can never miss it.
func (st *groupState) step(i int, deadline Time) (n int, done, progress bool) {
	e := st.engines[i]
	if e.stopped {
		// A stopped shard abandons its events, but its clock must still
		// reach the deadline for downstream horizons — publish it, or every
		// shard it feeds would stall forever.
		st.publish(i, deadline)
		st.notify(i)
		return 0, true, true
	}
	horizon := Time(0)
	bounded := false
	for _, c := range st.in[i] {
		t := Time(st.clocks[c.src].v.Load()) + c.delay
		if !bounded || t < horizon {
			horizon, bounded = t, true
		}
	}
	drained := 0
	for _, c := range st.in[i] {
		drained += c.drainInto(e)
	}
	if drained > 0 {
		st.drains[i].v++
		progress = true
	}
	if !bounded || horizon > deadline {
		// No crossing can land at or before the deadline anymore (anything
		// still invisible delivers at or beyond the horizon): finish the
		// run inclusively.
		n = e.runTo(deadline, true)
		st.publish(i, deadline)
		st.notify(i)
		return n, true, true
	}
	if horizon > e.now {
		// Run exclusively to the horizon — a crossing can still deliver at
		// exactly that instant and must be drained first.
		n = e.runTo(horizon, false)
		if e.stopped {
			st.publish(i, deadline)
		} else {
			st.publish(i, horizon)
		}
		st.notify(i)
		return n, e.stopped, true
	}
	return 0, false, progress
}

// asyncWorker is the persistent worker's asynchronous run loop: quanta
// until done, parking on the wake token when no upstream clock permits
// progress. Liveness: the globally minimum running clock always has a
// horizon strictly beyond itself (all delays are positive), so some shard
// can always advance, and every publish notifies its downstream shards.
func (st *groupState) asyncWorker(i int, deadline Time) int {
	n := 0
	var idle uint64
	for {
		ev, done, progress := st.step(i, deadline)
		n += ev
		if done {
			break
		}
		if !progress {
			idle++
			<-st.wake[i]
		}
	}
	if idle > 0 {
		st.parks[i].v += idle
	}
	return n
}

// seqAsync is the asynchronous engine on the caller's goroutine
// (Parallel=false): deterministic round-robin quanta. A shard that cannot
// advance counts an idle quantum, mirroring the parallel workers' parks.
func (st *groupState) seqAsync(deadline Time) int {
	n, doneCount := 0, 0
	for i := range st.seqDone {
		st.seqDone[i] = false
	}
	for doneCount < len(st.engines) {
		progressed := false
		for i := range st.engines {
			if st.seqDone[i] {
				continue
			}
			ev, done, progress := st.step(i, deadline)
			n += ev
			if done {
				st.seqDone[i] = true
				doneCount++
			} else if !progress {
				st.parks[i].v++
			}
			if done || progress {
				progressed = true
			}
		}
		if !progressed {
			panic("sim: shard group deadlocked (no shard can advance; zero-delay channel?)")
		}
	}
	return n
}

// ensureWorkers spawns the persistent per-shard worker goroutines once.
// They park on their command channels between runs; a finalizer on the
// group closes the channels when the group becomes unreachable, so worker
// goroutines live exactly as long as their group.
func (g *ShardGroup) ensureWorkers() {
	st := g.st
	if st.cmds != nil {
		return
	}
	st.cmds = make([]chan workerCmd, len(st.engines))
	for i := range st.engines {
		ch := make(chan workerCmd, 1)
		st.cmds[i] = ch
		go func(i int, e *Engine, ch chan workerCmd) {
			for cmd := range ch {
				switch cmd.kind {
				case cmdEpoch:
					st.counts[i] = e.runTo(cmd.deadline, cmd.inclusive)
				case cmdRunAll:
					st.counts[i] = e.Run()
				case cmdAsync:
					st.counts[i] = st.asyncWorker(i, cmd.deadline)
				}
				st.wg.Done()
			}
		}(i, st.engines[i], ch)
	}
	runtime.SetFinalizer(g, func(fg *ShardGroup) {
		for _, ch := range fg.st.cmds {
			close(ch)
		}
	})
}

// dispatch runs one command on every shard — on the persistent workers
// when parallel, inline otherwise — and returns the events processed.
func (g *ShardGroup) dispatch(cmd workerCmd) int {
	st := g.st
	if g.Parallel && len(st.engines) > 1 {
		g.ensureWorkers()
		st.wg.Add(len(st.cmds))
		for _, ch := range st.cmds {
			ch <- cmd
		}
		st.wg.Wait()
		n := 0
		for _, c := range st.counts {
			n += c
		}
		return n
	}
	if cmd.kind == cmdAsync {
		return st.seqAsync(cmd.deadline)
	}
	n := 0
	for _, e := range st.engines {
		if cmd.kind == cmdRunAll {
			n += e.Run()
		} else {
			n += e.runTo(cmd.deadline, cmd.inclusive)
		}
	}
	return n
}

// RunUntil advances the whole group to the deadline: every event with
// timestamp <= deadline in every shard is processed, crossings included,
// and every engine clock ends at the deadline. It returns the number of
// events processed, which matches what a single merged engine would report.
func (g *ShardGroup) RunUntil(deadline Time) int {
	if g.Mode == SyncEpoch {
		return g.runUntilEpoch(deadline)
	}
	st := g.st
	// The dispatch-join below is the asynchronous engine's only group-wide
	// synchronization point: shards coordinate pairwise through published
	// clocks, never all-stop.
	st.epochs++
	st.syncClocks()
	n := g.dispatch(workerCmd{kind: cmdAsync, deadline: deadline})
	g.advanceAll(deadline)
	return n
}

// runUntilEpoch is RunUntil under the global-epoch reference engine: the
// classic conservative window loop, one barrier drain per epoch.
func (g *ShardGroup) runUntilEpoch(deadline Time) int {
	st := g.st
	la := st.lookahead
	n := 0
	for {
		st.drainAll()
		next, ok := g.earliest()
		if !ok || next > deadline {
			break
		}
		st.epochs++
		if la == 0 {
			// No channels: shards are independent; one inclusive epoch.
			n += g.dispatch(workerCmd{kind: cmdEpoch, deadline: deadline, inclusive: true})
			continue
		}
		// The epoch may extend a full lookahead past the first pending
		// event: nothing can be emitted before that event fires, so no
		// crossing can deliver before next+la. An epoch boundary falling
		// exactly on the deadline still runs exclusive: a crossing can
		// deliver at that very instant and must be drained before any shard
		// processes it. Only when no crossing can land at or before the
		// deadline (next+la > deadline) is the final inclusive epoch safe.
		if end := next + la; end <= deadline {
			n += g.dispatch(workerCmd{kind: cmdEpoch, deadline: end})
		} else {
			n += g.dispatch(workerCmd{kind: cmdEpoch, deadline: deadline, inclusive: true})
		}
	}
	g.advanceAll(deadline)
	return n
}

// Run processes events until no shard has any left and all mailboxes are
// empty, then aligns every engine clock to the time of the last event. It
// returns the number of events processed.
func (g *ShardGroup) Run() int {
	if g.Mode == SyncEpoch {
		return g.runEpochAll()
	}
	// Asynchronous full drain: rounds of RunUntil to the next pending
	// instant anywhere (scheduled or still parked in a mailbox). Each round
	// is one dispatch-join; the tail of a drained simulation is short, so
	// the rendezvous cost stays negligible.
	n := 0
	for {
		t, ok := g.earliestAnywhere()
		if !ok {
			break
		}
		n += g.RunUntil(t)
	}
	return n
}

// runEpochAll is Run under the global-epoch reference engine.
func (g *ShardGroup) runEpochAll() int {
	st := g.st
	la := st.lookahead
	n := 0
	for {
		st.drainAll()
		next, ok := g.earliest()
		if !ok {
			break
		}
		st.epochs++
		if la == 0 {
			n += g.dispatch(workerCmd{kind: cmdRunAll})
			continue
		}
		n += g.dispatch(workerCmd{kind: cmdEpoch, deadline: next + la})
	}
	// Align every clock to the group's end time; unlike Engine.Run, the
	// epoch engine's clocks end epoch-aligned rather than exactly at the
	// last event's timestamp.
	g.advanceAll(g.Now())
	return n
}
