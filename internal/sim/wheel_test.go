package sim

import (
	"testing"
)

// popAll drains the wheel, asserting the count bookkeeping, and returns the
// events in pop order.
func popAll(t *testing.T, w *timingWheel) []event {
	t.Helper()
	var out []event
	for w.len() > 0 {
		pt, ok := w.peek()
		ev := w.pop()
		if !ok || pt != ev.at {
			t.Fatalf("peek %d/%v disagrees with pop %d", pt, ok, ev.at)
		}
		out = append(out, ev)
	}
	if _, ok := w.peek(); ok {
		t.Fatal("peek reports events on an empty wheel")
	}
	return out
}

// Events spread across every level and the overflow band pop in full-key
// order.
func TestWheelCrossLevelOrder(t *testing.T) {
	w := newTimingWheel()
	times := []Time{
		3,                // level 0, first bucket
		2047, 2048, 2049, // level-0 bucket boundary
		140_000,           // level 1
		20 * Millisecond,  // level 2
		600 * Millisecond, // level 3
		40 * Second,       // overflow
		60 * Second,       // overflow
		2 * Second,        // level 3
		170_000,           // level 1
	}
	for i, at := range times {
		w.push(event{at: at, ins: 0, seq: uint64(i + 1)})
	}
	got := popAll(t, w)
	if len(got) != len(times) {
		t.Fatalf("popped %d of %d", len(got), len(times))
	}
	for i := 1; i < len(got); i++ {
		if eventLess(&got[i], &got[i-1]) {
			t.Fatalf("out of order at %d: %v after %v", i, got[i].at, got[i-1].at)
		}
	}
}

// Same-bucket ties break by (at, ins, seq) — including back-dated ins
// stamps pushed into the open ready window.
func TestWheelTieBreaks(t *testing.T) {
	w := newTimingWheel()
	w.push(event{at: 100, ins: 100, seq: 4})
	w.push(event{at: 100, ins: 50, seq: 5})
	w.push(event{at: 100, ins: 100, seq: 2})
	w.push(event{at: 99, ins: 99, seq: 9})
	// Open the ready window at t=99, then inject a back-dated crossing.
	if ev := w.pop(); ev.at != 99 {
		t.Fatalf("first pop at %d", ev.at)
	}
	w.push(event{at: 100, ins: 10, seq: 12}) // oldest emission, latest seq
	var seqs []uint64
	for w.len() > 0 {
		seqs = append(seqs, w.pop().seq)
	}
	want := []uint64{12, 5, 2, 4} // ins 10, ins 50, then ins 100 by seq
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("tie order %v, want %v", seqs, want)
		}
	}
}

// The overflow band drains back into the wheel as the base advances, even
// when its events span several top-level windows.
func TestWheelOverflowCascade(t *testing.T) {
	w := newTimingWheel()
	for i := 0; i < 40; i++ {
		w.push(event{at: 35*Second + Time(i)*2*Second, seq: uint64(i + 1)})
	}
	w.push(event{at: 1, seq: 1000})
	got := popAll(t, w)
	if len(got) != 41 {
		t.Fatalf("popped %d of 41", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("overflow drain out of order at %d", i)
		}
	}
}

// A warmed wheel schedules and fires without heap allocations — the bar the
// forward-path guards hold end to end.
func TestWheelZeroAllocSteadyState(t *testing.T) {
	e := New(1)
	if e.Scheduler() != SchedulerWheel {
		t.Fatal("default scheduler is not the wheel")
	}
	r := &recorder{eng: e}
	for i := 0; i < 512; i++ {
		e.Schedule(Time(i)*300, r, uint64(i))
	}
	e.Run()
	r.args = r.args[:0]
	r.at = r.at[:0]
	allocs := testing.AllocsPerRun(200, func() {
		e.ScheduleAfter(700, r, 1)    // level 1
		e.ScheduleAfter(90, r, 2)     // level 0
		e.ScheduleAfter(40_000, r, 3) // level 1
		e.RunUntil(e.Now() + 50_000)
		r.args = r.args[:0]
		r.at = r.at[:0]
	})
	if allocs != 0 {
		t.Fatalf("warmed wheel allocated %.2f per cycle, want 0", allocs)
	}
}
