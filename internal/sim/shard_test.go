package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// crossSink records crossing deliveries; the int payload travels in the
// event arg.
type crossSink struct {
	eng *Engine
	log *[]string
}

func (s *crossSink) Handle(arg uint64) {
	*s.log = append(*s.log, fmt.Sprintf("recv %d @%d", arg, s.eng.Now()))
}

// TestShardGroupCrossing sends values between two shards over a
// 10 ns-lookahead channel and checks delivery times and determinism, under
// both sync modes and both execution modes.
func TestShardGroupCrossing(t *testing.T) {
	run := func(parallel bool, mode SyncMode) []string {
		var log []string
		e0, e1 := New(1), New(2)
		g := NewShardGroup([]*Engine{e0, e1})
		g.Parallel = parallel
		g.Mode = mode
		c01 := g.AddChannel(0, 1, 10)
		g.AddChannel(1, 0, 10)
		sink1 := &crossSink{eng: e1, log: &log}

		// Shard 0 emits at t=5 and t=7.
		e0.At(5, func() { c01.Send(e0.Now(), sink1, 100) })
		e0.At(7, func() { c01.Send(e0.Now(), sink1, 200) })
		// A local shard-1 event at the exact arrival instant of value 100,
		// inserted earlier in virtual time (ins=0): must fire before it.
		e1.At(15, func() { log = append(log, fmt.Sprintf("local @%d", e1.Now())) })
		g.RunUntil(40)
		return log
	}

	want := []string{"local @15", "recv 100 @15", "recv 200 @17"}
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		seq := run(false, mode)
		if fmt.Sprint(seq) != fmt.Sprint(want) {
			t.Fatalf("%v sequential crossing log = %v, want %v", mode, seq, want)
		}
		if par := run(true, mode); fmt.Sprint(par) != fmt.Sprint(seq) {
			t.Fatalf("%v parallel log %v != sequential log %v", mode, par, seq)
		}
	}
}

// TestShardGroupMergeOrder drains simultaneous crossings from two source
// shards and checks the deterministic (at, ins, src, channel, fifo) merge.
func TestShardGroupMergeOrder(t *testing.T) {
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		var log []string
		e0, e1, e2 := New(1), New(2), New(3)
		g := NewShardGroup([]*Engine{e0, e1, e2})
		g.Parallel = false
		g.Mode = mode
		c02 := g.AddChannel(0, 2, 10)
		c12 := g.AddChannel(1, 2, 10)
		sink := &crossSink{eng: e2, log: &log}

		// Both shards emit at t=3 (same at, same ins): source shard breaks
		// the tie, so shard 0's value delivers first; the t=2 emission from
		// shard 1 delivers first outright (at=12 < 13).
		e1.At(2, func() { c12.Send(e1.Now(), sink, 902) })
		e0.At(3, func() { c02.Send(e0.Now(), sink, 3) })
		e1.At(3, func() { c12.Send(e1.Now(), sink, 903) })
		g.RunUntil(30)

		want := []string{"recv 902 @12", "recv 3 @13", "recv 903 @13"}
		if fmt.Sprint(log) != fmt.Sprint(want) {
			t.Fatalf("%v merge order = %v, want %v", mode, log, want)
		}
	}
}

// TestShardGroupDeadlineOnEpochBoundary pins the end==deadline case: a
// crossing delivering exactly at the RunUntil deadline must still be
// ordered by insertion stamp against local events of that instant (the
// drain has to happen before the instant is processed).
func TestShardGroupDeadlineOnEpochBoundary(t *testing.T) {
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		var log []string
		e0, e1 := New(1), New(2)
		g := NewShardGroup([]*Engine{e0, e1})
		g.Parallel = false
		g.Mode = mode
		c01 := g.AddChannel(0, 1, 10)
		sink := &crossSink{eng: e1, log: &log}

		// Crossing emitted at t=5 delivers at t=15 with ins=5; the local
		// event at t=15 is inserted at t=10 (ins=10), so the crossing fires
		// first.
		e0.At(5, func() { c01.Send(e0.Now(), sink, 1) })
		e1.At(10, func() {
			e1.At(15, func() { log = append(log, fmt.Sprintf("local @%d", e1.Now())) })
		})
		g.RunUntil(15) // deadline == 5 + lookahead: horizon lands on the deadline
		want := []string{"recv 1 @15", "local @15"}
		if fmt.Sprint(log) != fmt.Sprint(want) {
			t.Fatalf("%v deadline-on-boundary order = %v, want %v", mode, log, want)
		}
	}
}

// TestShardGroupRunIndependent covers the no-channel path: shards drain
// fully and clocks settle at the latest shard's last event.
func TestShardGroupRunIndependent(t *testing.T) {
	e0, e1 := New(1), New(2)
	g := NewShardGroup([]*Engine{e0, e1})
	fired := 0
	e0.At(10, func() { fired++ })
	e1.At(25, func() { fired++ })
	if n := g.Run(); n != 2 || fired != 2 {
		t.Fatalf("Run processed %d events (fired %d), want 2", n, fired)
	}
	if g.Now() != 25 {
		t.Fatalf("group clock = %d, want 25", g.Now())
	}
}

// TestShardGroupStoppedShard: stopping one shard's engine mid-run must not
// livelock the group loop — its remaining events are abandoned (as with
// Engine.Run after Stop) while other shards keep running to the deadline.
func TestShardGroupStoppedShard(t *testing.T) {
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		for _, parallel := range []bool{false, true} {
			e0, e1 := New(1), New(2)
			g := NewShardGroup([]*Engine{e0, e1})
			g.Parallel = parallel
			g.Mode = mode
			c01 := g.AddChannel(0, 1, 10)
			var log []string
			sink := &crossSink{eng: e1, log: &log}
			_ = c01

			fired := 0
			e0.At(5, func() { e0.Stop() })
			e0.At(6, func() { fired++ }) // never runs: the shard stopped
			e1.At(8, func() { fired++ })
			g.RunUntil(20) // must return despite shard 0's abandoned event
			if fired != 1 {
				t.Fatalf("%v parallel=%v: fired = %d, want only shard 1's event", mode, parallel, fired)
			}
			if e1.Now() != 20 {
				t.Fatalf("%v parallel=%v: running shard clock = %d, want 20", mode, parallel, e1.Now())
			}
			_ = sink
		}
	}
}

// TestShardGroupStoppedDest: crossings parked toward a stopped shard must
// not hang the full-drain Run loop — they are simply never delivered.
func TestShardGroupStoppedDest(t *testing.T) {
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		var log []string
		e0, e1 := New(1), New(2)
		g := NewShardGroup([]*Engine{e0, e1})
		g.Parallel = false
		g.Mode = mode
		c01 := g.AddChannel(0, 1, 10)
		sink := &crossSink{eng: e1, log: &log}

		e1.At(1, func() { e1.Stop() })
		e0.At(5, func() { c01.Send(e0.Now(), sink, 42) })
		g.Run() // must terminate with the crossing undelivered or abandoned
		if fmt.Sprint(log) != "[]" {
			t.Fatalf("%v: stopped shard delivered crossings: %v", mode, log)
		}
	}
}

// TestShardGroupParallelEmptyRun: a parallel group with nothing to do must
// return cleanly and repeatedly (regression for worker-startup races on
// zero-epoch runs).
func TestShardGroupParallelEmptyRun(t *testing.T) {
	for i := 0; i < 50; i++ {
		g := NewShardGroup([]*Engine{New(1), New(2)})
		g.Parallel = true
		if n := g.RunUntil(10); n != 0 {
			t.Fatalf("empty RunUntil processed %d events", n)
		}
		g2 := NewShardGroup([]*Engine{New(1), New(2)})
		g2.Parallel = true
		if n := g2.Run(); n != 0 {
			t.Fatalf("empty Run processed %d events", n)
		}
	}
}

// TestShardGroupNoGoroutineGrowth pins the persistent-worker contract: the
// testbed pattern of thousands of short RunUntil calls must not spawn a
// goroutine per call — workers are created once at warm-up and parked
// between runs.
func TestShardGroupNoGoroutineGrowth(t *testing.T) {
	e0, e1 := New(1), New(2)
	g := NewShardGroup([]*Engine{e0, e1})
	g.Parallel = true
	c01 := g.AddChannel(0, 1, 10)
	var log []string
	sink := &crossSink{eng: e1, log: &log}
	tick := Time(0)
	e0.Every(5, 5, func() { c01.Send(e0.Now(), sink, uint64(tick)); tick++ })

	g.RunUntil(10) // warm-up: spawns the two persistent workers
	base := runtime.NumGoroutine()
	for d := Time(20); d <= 5000; d += 10 {
		g.RunUntil(d)
	}
	// Other tests' finalized groups may retire workers concurrently, so
	// only growth is a failure.
	if now := runtime.NumGoroutine(); now > base {
		t.Fatalf("goroutines grew across RunUntil calls: %d -> %d", base, now)
	}
	if len(log) == 0 {
		t.Fatal("crossings never delivered")
	}
}

// TestShardGroupResume checks that RunUntil is resumable: crossings parked
// near a deadline deliver correctly on the next call.
func TestShardGroupResume(t *testing.T) {
	for _, mode := range []SyncMode{SyncChannel, SyncEpoch} {
		var log []string
		e0, e1 := New(1), New(2)
		g := NewShardGroup([]*Engine{e0, e1})
		g.Mode = mode
		c01 := g.AddChannel(0, 1, 10)
		sink := &crossSink{eng: e1, log: &log}

		e0.At(18, func() { c01.Send(e0.Now(), sink, 7) }) // delivers at 28
		g.RunUntil(20)
		if len(log) != 0 {
			t.Fatalf("%v: crossing delivered early: %v", mode, log)
		}
		if e0.Now() != 20 || e1.Now() != 20 {
			t.Fatalf("%v: clocks at (%d,%d), want (20,20)", mode, e0.Now(), e1.Now())
		}
		g.RunUntil(30)
		if want := []string{"recv 7 @28"}; fmt.Sprint(log) != fmt.Sprint(want) {
			t.Fatalf("%v: after resume log = %v, want %v", mode, log, want)
		}
	}
}

// TestShardGroupLookaheadCached pins the cached lookahead derivations the
// old engine recomputed per run: group-wide minimum and per-shard incoming
// minima maintained incrementally by AddChannel.
func TestShardGroupLookaheadCached(t *testing.T) {
	g := NewShardGroup([]*Engine{New(1), New(2), New(3)})
	if g.Lookahead() != 0 {
		t.Fatalf("empty group lookahead = %d, want 0", g.Lookahead())
	}
	g.AddChannel(0, 1, 50)
	g.AddChannel(1, 2, 20)
	g.AddChannel(2, 0, 80)
	if g.Lookahead() != 20 {
		t.Fatalf("lookahead = %d, want 20", g.Lookahead())
	}
	if d, ok := g.MinIncomingDelay(1); !ok || d != 50 {
		t.Fatalf("minIn(1) = %d,%v, want 50", d, ok)
	}
	if d, ok := g.MinIncomingDelay(2); !ok || d != 20 {
		t.Fatalf("minIn(2) = %d,%v, want 20", d, ok)
	}
	// Per-channel floors dominate the global window — the asynchronous
	// engine's advantage in one inequality.
	for i := 0; i < 3; i++ {
		if d, ok := g.MinIncomingDelay(i); ok && d < g.Lookahead() {
			t.Fatalf("minIn(%d)=%d below global lookahead %d", i, d, g.Lookahead())
		}
	}
}

// TestShardGroupSyncStats checks the deterministic counters: channel mode
// must sync far less often than epoch mode on the same workload.
func TestShardGroupSyncStats(t *testing.T) {
	build := func(mode SyncMode) (*ShardGroup, *[]string) {
		var log []string
		e0, e1 := New(1), New(2)
		g := NewShardGroup([]*Engine{e0, e1})
		g.Parallel = false
		g.Mode = mode
		c01 := g.AddChannel(0, 1, 10)
		g.AddChannel(1, 0, 10)
		sink := &crossSink{eng: e1, log: &log}
		tick := uint64(0)
		e0.Every(3, 3, func() { c01.Send(e0.Now(), sink, tick); tick++ })
		return g, &log
	}

	gc, logc := build(SyncChannel)
	ge, loge := build(SyncEpoch)
	gc.RunUntil(3000)
	ge.RunUntil(3000)
	if fmt.Sprint(*logc) != fmt.Sprint(*loge) {
		t.Fatalf("modes disagree:\nchannel %v\nepoch   %v", *logc, *loge)
	}
	sc, se := gc.Stats(), ge.Stats()
	if sc.Crossings != se.Crossings || sc.Crossings == 0 {
		t.Fatalf("crossings: channel %d, epoch %d", sc.Crossings, se.Crossings)
	}
	if sc.Epochs != 1 {
		t.Fatalf("channel mode epochs = %d, want 1 (one dispatch-join)", sc.Epochs)
	}
	if se.Epochs < 5*sc.Epochs {
		t.Fatalf("epoch mode synced only %d times vs channel's %d — counters broken", se.Epochs, sc.Epochs)
	}
}

// TestRunToExclusive pins the epoch primitive: events at exactly the
// deadline stay pending, and the clock still advances to the deadline.
func TestRunToExclusive(t *testing.T) {
	e := New(1)
	fired := []Time{}
	e.At(5, func() { fired = append(fired, 5) })
	e.At(10, func() { fired = append(fired, 10) })
	if n := e.runTo(10, false); n != 1 {
		t.Fatalf("exclusive runTo processed %d events, want 1", n)
	}
	if e.Now() != 10 || e.Pending() != 1 {
		t.Fatalf("now=%d pending=%d, want 10/1", e.Now(), e.Pending())
	}
	if n := e.runTo(10, true); n != 1 {
		t.Fatalf("inclusive runTo processed %d events, want 1", n)
	}
	if fmt.Sprint(fired) != "[5 10]" {
		t.Fatalf("fired = %v", fired)
	}
}

// TestCrossingInsertionOrder pins the tie-break the sharded runtime relies
// on: a crossing drained late with an early insertion stamp fires before
// same-instant events inserted later in virtual time.
func TestCrossingInsertionOrder(t *testing.T) {
	e := New(1)
	var order []string
	e.At(4, func() { // inserted at virtual time 4
		e.At(20, func() { order = append(order, "ins4") })
	})
	e.RunUntil(10)
	// Simulates a drain: the crossing was emitted at time 2.
	e.scheduleCrossing(20, 2, crossKey(0, 0, 0), handlerFunc(func() { order = append(order, "crossing-ins2") }), 0)
	e.Run()
	if fmt.Sprint(order) != "[crossing-ins2 ins4]" {
		t.Fatalf("order = %v, want crossing first (earlier insertion stamp)", order)
	}
}

// TestCrossingKeyOrder pins the key layout: locals before crossings at an
// equal (at, ins); crossings among themselves by (src, channel, fifo).
func TestCrossingKeyOrder(t *testing.T) {
	e := New(1)
	var order []uint64
	rec := func(id uint64) Handler { return handlerFunc(func() { order = append(order, id) }) }
	// All fire at t=20 with ins=0. Locals get seq 1,2; crossings get keys.
	e.Schedule(20, rec(1), 0)
	e.scheduleCrossing(20, 0, crossKey(1, 3, 0), rec(130), 0)
	e.scheduleCrossing(20, 0, crossKey(0, 7, 1), rec(71), 0)
	e.scheduleCrossing(20, 0, crossKey(0, 7, 0), rec(70), 0)
	e.Schedule(20, rec(2), 0)
	e.Run()
	want := "[1 2 70 71 130]"
	if fmt.Sprint(order) != want {
		t.Fatalf("key order = %v, want %s", order, want)
	}
}

// TestSPSC exercises the mailbox queue across segment boundaries and spare
// recycling (single-threaded: the SPSC contract is per-side single-owner,
// and the shard runtime's dispatch edges provide the cross-side ordering).
func TestSPSC(t *testing.T) {
	var q SPSC[int]
	q.Init()
	next := 0
	for round := 0; round < 5; round++ {
		n := spscSegCap*2 + 17 // force segment hops and spare reuse
		for i := 0; i < n; i++ {
			q.Push(round*1000 + i)
		}
		if q.Avail() != n {
			t.Fatalf("avail = %d, want %d", q.Avail(), n)
		}
		for i := 0; i < n; i++ {
			if got := *q.Front(); got != round*1000+i {
				t.Fatalf("front = %d, want %d", got, round*1000+i)
			}
			q.Advance()
			next++
		}
		if q.Avail() != 0 {
			t.Fatalf("drained queue has %d pending", q.Avail())
		}
	}
}

// handlerFunc adapts a closure to sim.Handler for tests.
type handlerFunc func()

func (f handlerFunc) Handle(uint64) { f() }
