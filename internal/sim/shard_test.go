package sim

import (
	"fmt"
	"testing"
)

// fakePort is a minimal BoundaryPort: crossings carry an int payload and a
// recording handler fires in the destination shard.
type fakePort struct {
	src, dst int
	delay    Time
	stamps   []BoundaryStamp
	payload  []int
	head     int
	sink     *crossSink
	dirty    *Dirty
}

type crossSink struct {
	eng *Engine
	log *[]string
	// next payload handed over by Transfer, consumed by Handle.
	queue []int
}

func (p *fakePort) SrcShard() int  { return p.src }
func (p *fakePort) DestShard() int { return p.dst }
func (p *fakePort) Delay() Time    { return p.delay }

func (p *fakePort) FlushStamps(buf []BoundaryStamp) []BoundaryStamp {
	buf = append(buf, p.stamps...)
	p.stamps = p.stamps[:0]
	return buf
}

func (p *fakePort) Transfer() (Handler, uint64) {
	v := p.payload[p.head]
	p.head++
	if p.head == len(p.payload) {
		p.payload = p.payload[:0]
		p.head = 0
	}
	p.sink.queue = append(p.sink.queue, v)
	return p.sink, 0
}

func (s *crossSink) Handle(uint64) {
	v := s.queue[0]
	s.queue = s.queue[1:]
	*s.log = append(*s.log, fmt.Sprintf("recv %d @%d", v, s.eng.Now()))
}

func (p *fakePort) send(now Time, v int) {
	p.stamps = append(p.stamps, BoundaryStamp{At: now + p.delay, Ins: now})
	p.payload = append(p.payload, v)
	p.dirty.Mark()
}

// TestShardGroupCrossing ping-pongs a value between two shards over a
// 10 ns-lookahead boundary and checks delivery times and determinism.
func TestShardGroupCrossing(t *testing.T) {
	run := func(parallel bool) []string {
		var log []string
		e0, e1 := New(1), New(2)
		g := NewShardGroup([]*Engine{e0, e1})
		g.Parallel = parallel
		p01 := &fakePort{src: 0, dst: 1, delay: 10}
		p10 := &fakePort{src: 1, dst: 0, delay: 10}
		p01.sink = &crossSink{eng: e1, log: &log}
		p10.sink = &crossSink{eng: e0, log: &log}
		p01.dirty = g.AddBoundary(p01)
		p10.dirty = g.AddBoundary(p10)

		// Shard 0 emits at t=5 and t=7; shard 1 bounces every arrival back.
		e0.At(5, func() { p01.send(e0.Now(), 100) })
		e0.At(7, func() { p01.send(e0.Now(), 200) })
		// A local shard-1 event at the exact arrival instant of value 100,
		// inserted earlier in virtual time (ins=0): must fire before it.
		e1.At(15, func() { log = append(log, fmt.Sprintf("local @%d", e1.Now())) })
		g.RunUntil(40)
		return log
	}

	seq := run(false)
	want := []string{"local @15", "recv 100 @15", "recv 200 @17"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("sequential crossing log = %v, want %v", seq, want)
	}
	if par := run(true); fmt.Sprint(par) != fmt.Sprint(seq) {
		t.Fatalf("parallel log %v != sequential log %v", par, seq)
	}
}

// TestShardGroupMergeOrder drains simultaneous crossings from two source
// shards and checks the deterministic (at, ins, src, port, idx) merge.
func TestShardGroupMergeOrder(t *testing.T) {
	var log []string
	e0, e1, e2 := New(1), New(2), New(3)
	g := NewShardGroup([]*Engine{e0, e1, e2})
	g.Parallel = false
	p02 := &fakePort{src: 0, dst: 2, delay: 10}
	p12 := &fakePort{src: 1, dst: 2, delay: 10}
	p02.sink = &crossSink{eng: e2, log: &log}
	p12.sink = &crossSink{eng: e2, log: &log}
	p02.dirty = g.AddBoundary(p02)
	p12.dirty = g.AddBoundary(p12)

	// Both shards emit at t=3 (same At, same Ins): source shard breaks the
	// tie, so shard 0's value delivers first; the t=2 emission from shard 1
	// has an earlier Ins and beats both despite equal delivery... it has
	// At=12 < 13, so it simply delivers first by time.
	e1.At(2, func() { p12.send(e1.Now(), 902) })
	e0.At(3, func() { p02.send(e0.Now(), 3) })
	e1.At(3, func() { p12.send(e1.Now(), 903) })
	g.RunUntil(30)

	want := []string{"recv 902 @12", "recv 3 @13", "recv 903 @13"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("merge order = %v, want %v", log, want)
	}
}

// TestShardGroupDeadlineOnEpochBoundary pins the end==deadline case: a
// crossing delivering exactly at the RunUntil deadline must still be
// ordered by insertion stamp against local events of that instant (the
// barrier drain has to happen before the instant is processed).
func TestShardGroupDeadlineOnEpochBoundary(t *testing.T) {
	var log []string
	e0, e1 := New(1), New(2)
	g := NewShardGroup([]*Engine{e0, e1})
	g.Parallel = false
	p01 := &fakePort{src: 0, dst: 1, delay: 10}
	p01.sink = &crossSink{eng: e1, log: &log}
	p01.dirty = g.AddBoundary(p01)

	// Crossing emitted at t=5 delivers at t=15 with ins=5; the local event
	// at t=15 is inserted at t=10 (ins=10), so the crossing fires first.
	e0.At(5, func() { p01.send(e0.Now(), 1) })
	e1.At(10, func() {
		e1.At(15, func() { log = append(log, fmt.Sprintf("local @%d", e1.Now())) })
	})
	g.RunUntil(15) // deadline == 5 + lookahead: epoch boundary on the deadline
	want := []string{"recv 1 @15", "local @15"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("deadline-on-boundary order = %v, want %v", log, want)
	}
}

// TestShardGroupRunIndependent covers the no-boundary path: shards drain
// fully and clocks settle at the latest shard's last event.
func TestShardGroupRunIndependent(t *testing.T) {
	e0, e1 := New(1), New(2)
	g := NewShardGroup([]*Engine{e0, e1})
	fired := 0
	e0.At(10, func() { fired++ })
	e1.At(25, func() { fired++ })
	if n := g.Run(); n != 2 || fired != 2 {
		t.Fatalf("Run processed %d events (fired %d), want 2", n, fired)
	}
	if g.Now() != 25 {
		t.Fatalf("group clock = %d, want 25", g.Now())
	}
}

// TestShardGroupStoppedShard: stopping one shard's engine mid-run must not
// livelock the group loop — its remaining events are abandoned (as with
// Engine.Run after Stop) while other shards keep running to the deadline.
func TestShardGroupStoppedShard(t *testing.T) {
	e0, e1 := New(1), New(2)
	g := NewShardGroup([]*Engine{e0, e1})
	g.Parallel = false
	p01 := &fakePort{src: 0, dst: 1, delay: 10}
	var log []string
	p01.sink = &crossSink{eng: e1, log: &log}
	p01.dirty = g.AddBoundary(p01)

	fired := 0
	e0.At(5, func() { e0.Stop() })
	e0.At(6, func() { fired++ }) // never runs: the shard stopped
	e1.At(8, func() { fired++ })
	g.RunUntil(20) // must return despite shard 0's abandoned event
	if fired != 1 {
		t.Fatalf("fired = %d, want only shard 1's event", fired)
	}
	if e1.Now() != 20 {
		t.Fatalf("running shard clock = %d, want 20", e1.Now())
	}
}

// TestShardGroupParallelEmptyRun: a parallel group with nothing to do must
// return cleanly — stop() races worker startup if workers re-read shared
// state instead of their captured channel (regression: index-out-of-range
// on zero-epoch runs).
func TestShardGroupParallelEmptyRun(t *testing.T) {
	for i := 0; i < 50; i++ {
		g := NewShardGroup([]*Engine{New(1), New(2)})
		g.Parallel = true
		if n := g.RunUntil(10); n != 0 {
			t.Fatalf("empty RunUntil processed %d events", n)
		}
		g2 := NewShardGroup([]*Engine{New(1), New(2)})
		g2.Parallel = true
		if n := g2.Run(); n != 0 {
			t.Fatalf("empty Run processed %d events", n)
		}
	}
}

// TestShardGroupResume checks that RunUntil is resumable: crossings parked
// near a deadline deliver correctly on the next call.
func TestShardGroupResume(t *testing.T) {
	var log []string
	e0, e1 := New(1), New(2)
	g := NewShardGroup([]*Engine{e0, e1})
	p01 := &fakePort{src: 0, dst: 1, delay: 10}
	p01.sink = &crossSink{eng: e1, log: &log}
	p01.dirty = g.AddBoundary(p01)

	e0.At(18, func() { p01.send(e0.Now(), 7) }) // delivers at 28
	g.RunUntil(20)
	if len(log) != 0 {
		t.Fatalf("crossing delivered early: %v", log)
	}
	if e0.Now() != 20 || e1.Now() != 20 {
		t.Fatalf("clocks at (%d,%d), want (20,20)", e0.Now(), e1.Now())
	}
	g.RunUntil(30)
	if want := []string{"recv 7 @28"}; fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("after resume log = %v, want %v", log, want)
	}
}

// TestRunToExclusive pins the epoch primitive: events at exactly the
// deadline stay pending, and the clock still advances to the deadline.
func TestRunToExclusive(t *testing.T) {
	e := New(1)
	fired := []Time{}
	e.At(5, func() { fired = append(fired, 5) })
	e.At(10, func() { fired = append(fired, 10) })
	if n := e.runTo(10, false); n != 1 {
		t.Fatalf("exclusive runTo processed %d events, want 1", n)
	}
	if e.Now() != 10 || e.Pending() != 1 {
		t.Fatalf("now=%d pending=%d, want 10/1", e.Now(), e.Pending())
	}
	if n := e.runTo(10, true); n != 1 {
		t.Fatalf("inclusive runTo processed %d events, want 1", n)
	}
	if fmt.Sprint(fired) != "[5 10]" {
		t.Fatalf("fired = %v", fired)
	}
}

// TestCrossingInsertionOrder pins the tie-break the sharded runtime relies
// on: an event re-scheduled late (at a barrier) with an early insertion
// stamp fires before same-instant events inserted later in virtual time.
func TestCrossingInsertionOrder(t *testing.T) {
	e := New(1)
	var order []string
	e.At(4, func() { // inserted at virtual time 4
		e.At(20, func() { order = append(order, "ins4") })
	})
	e.RunUntil(10)
	// Simulates a barrier drain: the crossing was emitted at time 2.
	e.scheduleCrossing(20, 2, handlerFunc(func() { order = append(order, "crossing-ins2") }), 0)
	e.Run()
	if fmt.Sprint(order) != "[crossing-ins2 ins4]" {
		t.Fatalf("order = %v, want crossing first (earlier insertion stamp)", order)
	}
}

// handlerFunc adapts a closure to sim.Handler for tests.
type handlerFunc func()

func (f handlerFunc) Handle(uint64) { f() }
