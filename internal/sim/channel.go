package sim

// Lock-free shard-crossing channels for the conservative PDES engine.
//
// Each directed shard-crossing link registers one Channel. The source shard
// parks crossings into the channel's single-producer/single-consumer mailbox
// as it simulates; the destination shard drains the mailbox incrementally —
// under the asynchronous engine, whenever its per-channel clocks permit;
// under the reference epoch engine, at every global barrier. Because every
// crossing carries a deterministic tie-break key (crossKey below), the drain
// instant is unobservable: drained events land in the destination scheduler
// in exactly the order the old single-threaded barrier merge produced.

import (
	"fmt"
	"sync/atomic"
)

// SyncMode selects the ShardGroup's conservative synchronization algorithm.
type SyncMode uint8

const (
	// SyncChannel is the default asynchronous conservative engine: each
	// shard independently advances to the minimum over its incoming
	// boundary channels of (source-shard clock + channel delay), draining
	// mailboxes incrementally. There are no global barriers inside a run —
	// the only group-wide sync points are the dispatch and join of the run
	// itself.
	SyncChannel SyncMode = iota
	// SyncEpoch is the global-epoch reference engine: shards advance in
	// lockstep windows bounded by the group-wide minimum channel delay,
	// with a full barrier (and mailbox drain) per epoch. Byte-identical to
	// SyncChannel; kept as the measurable baseline the sync counters are
	// compared against, the same way the binary heap backs the timing
	// wheel.
	SyncEpoch
)

// String names the sync mode.
func (m SyncMode) String() string {
	if m == SyncEpoch {
		return "epoch"
	}
	return "channel"
}

// ParseSyncMode resolves a -sync flag value ("channel" or "epoch").
func ParseSyncMode(name string) (SyncMode, error) {
	switch name {
	case "channel", "":
		return SyncChannel, nil
	case "epoch":
		return SyncEpoch, nil
	}
	return 0, fmt.Errorf("sim: unknown sync mode %q (want channel or epoch)", name)
}

// Crossing tie-break keys. A key occupies the event seq field with the high
// bit set, so at an equal (firing time, insertion time) every local event —
// whose seq is a small counter — precedes every crossing, and crossings
// order among themselves by (source shard, channel, FIFO index): exactly
// the (src, port, idx) order of the old deterministic barrier merge.
const (
	crossKeyBit    = uint64(1) << 63
	crossSrcShift  = 50 // 13 bits of source shard
	crossChanShift = 32 // 18 bits of channel index
	maxKeyShards   = 1 << (63 - crossSrcShift)
	maxKeyChannels = 1 << (crossSrcShift - crossChanShift)
)

// crossKey builds a crossing's deterministic event key. fifo is the
// channel's running FIFO counter; its 32 bits only disambiguate crossings
// of one channel at one (at, ins) instant, so wrap-around is harmless.
func crossKey(src, ch int, fifo uint32) uint64 {
	return crossKeyBit | uint64(src)<<crossSrcShift | uint64(ch)<<crossChanShift | uint64(fifo)
}

// spscSegCap is the entry capacity of one mailbox segment. Segments recycle
// through a single spare slot, so a steady-state channel ping-pongs between
// at most two segments and pushes allocate nothing.
const spscSegCap = 64

// spscSeg is one fixed-capacity segment of an SPSC queue.
type spscSeg[T any] struct {
	buf  [spscSegCap]T
	next atomic.Pointer[spscSeg[T]]
}

// SPSC is an unbounded lock-free single-producer/single-consumer queue: a
// linked list of fixed-size segments with a published-count atomic as the
// only producer/consumer synchronization. The producer side (Reserve,
// Commit) and the consumer side (Avail, Front, Advance) must each be used
// from one goroutine at a time; ShardGroup's run protocol guarantees the
// roles never overlap. Reserve hands out the slot in place so value-typed
// entries (and any buffers they retain) are reused when segments recycle.
type SPSC[T any] struct {
	pushed atomic.Uint64 // entries published, written by the producer
	_      [56]byte      // keep producer/consumer fields off one cache line

	// Producer-owned.
	head    *spscSeg[T]
	headPos int

	// Consumer-owned.
	tail    *spscSeg[T]
	tailPos int
	popped  uint64

	// One recycled segment, handed from consumer back to producer.
	spare atomic.Pointer[spscSeg[T]]
}

// Init readies the queue. Must be called (single-threaded) before use.
func (q *SPSC[T]) Init() {
	seg := &spscSeg[T]{}
	q.head, q.tail = seg, seg
}

// Reserve returns a pointer to the next slot to fill. The producer writes
// the entry in place (reusing any buffers the recycled slot retained) and
// then publishes it with Commit.
func (q *SPSC[T]) Reserve() *T {
	if q.headPos == spscSegCap {
		seg := q.spare.Swap(nil)
		if seg == nil {
			seg = &spscSeg[T]{}
		} else {
			seg.next.Store(nil)
		}
		q.head.next.Store(seg)
		q.head = seg
		q.headPos = 0
	}
	return &q.head.buf[q.headPos]
}

// Commit publishes the slot returned by the last Reserve.
func (q *SPSC[T]) Commit() {
	q.headPos++
	q.pushed.Add(1)
}

// Push is Reserve+Commit for entries without reusable innards.
func (q *SPSC[T]) Push(v T) {
	*q.Reserve() = v
	q.Commit()
}

// Avail returns the number of published entries not yet consumed.
func (q *SPSC[T]) Avail() int { return int(q.pushed.Load() - q.popped) }

// Front returns the oldest unconsumed entry in place; the pointer is valid
// until Advance. Only call with Avail() > 0.
func (q *SPSC[T]) Front() *T {
	if q.tailPos == spscSegCap {
		q.advanceSeg()
	}
	return &q.tail.buf[q.tailPos]
}

// Advance consumes the entry returned by Front. The slot (including any
// buffers the consumer left in it) recycles with its segment.
func (q *SPSC[T]) Advance() {
	q.tailPos++
	q.popped++
}

// advanceSeg moves the consumer to the next segment and parks the drained
// one as the producer's spare.
func (q *SPSC[T]) advanceSeg() {
	next := q.tail.next.Load()
	old := q.tail
	q.tail = next
	q.tailPos = 0
	q.spare.Store(old)
}

// crossMsg is one parked crossing: its delivery stamp, deterministic event
// key, and the handler to fire in the destination shard.
type crossMsg struct {
	at, ins Time
	key     uint64
	h       Handler
	arg     uint64
}

// Channel is one directed shard-crossing channel — in the network
// substrate, a link whose transmitter and receiver live in different
// shards. The source shard parks crossings with Send; the group (or the
// destination shard's worker) drains them into the destination engine.
// The channel's propagation delay is its lookahead contribution: a shard
// can safely advance to min over incoming channels of (source clock +
// delay) without ever receiving a crossing from its past.
type Channel struct {
	st    *groupState
	idx   int
	src   int
	dst   int
	delay Time

	// fifo is the producer-side FIFO counter feeding crossKey.
	fifo uint32

	q SPSC[crossMsg]
}

// SrcShard returns the crossing direction's source shard.
func (c *Channel) SrcShard() int { return c.src }

// DestShard returns the crossing direction's destination shard.
func (c *Channel) DestShard() int { return c.dst }

// Delay returns the channel's propagation delay (its lookahead).
func (c *Channel) Delay() Time { return c.delay }

// Send parks one crossing emitted at virtual time now in the source shard:
// h.Handle(arg) will fire in the destination shard at now + Delay. Call
// only from the source shard (it is the mailbox's single producer).
func (c *Channel) Send(now Time, h Handler, arg uint64) {
	m := c.q.Reserve()
	*m = crossMsg{at: now + c.delay, ins: now, key: crossKey(c.src, c.idx, c.fifo), h: h, arg: arg}
	c.fifo++
	c.q.Commit()
}

// Pending returns the number of parked crossings not yet drained into the
// destination engine. Safe only from the consumer side (the destination
// shard's worker, or the coordinator while all workers are parked).
func (c *Channel) Pending() int { return c.q.Avail() }

// drainInto schedules every currently visible crossing into the
// destination engine and returns the count. Consumer-side only. The order
// entries are drained in is irrelevant — their keys reproduce the
// deterministic merge order at firing time — so a drain can happen at any
// instant the sync algorithm finds convenient.
func (c *Channel) drainInto(e *Engine) int {
	n := c.q.Avail()
	for i := 0; i < n; i++ {
		m := c.q.Front()
		e.scheduleCrossing(m.at, m.ins, m.key, m.h, m.arg)
		c.q.Advance()
	}
	if n > 0 {
		c.st.crossings[c.dst].v += uint64(n)
	}
	return n
}

// earliestPending returns the delivery time of the oldest undrained
// crossing. Consumer-side only (used by the full-drain Run loop while all
// workers are parked).
func (c *Channel) earliestPending() (Time, bool) {
	if c.q.Avail() == 0 {
		return 0, false
	}
	return c.q.Front().at, true
}

// SyncStats are the group's synchronization counters.
//
// Epochs and Crossings are deterministic for a given (seed, shard count,
// mode): Epochs counts group-wide synchronization points (one per epoch
// barrier under SyncEpoch; one per Run/RunUntil dispatch-join under
// SyncChannel — the asynchronous engine has no barriers inside a run), and
// Crossings counts shard-crossing deliveries drained. Drains (mailbox
// sweeps that moved at least one crossing) and MaxIdleParks (the largest
// per-shard count of idle waits, where a shard had nothing to do until an
// upstream clock advanced) depend on goroutine scheduling when shards run
// in parallel; with Parallel=false they are deterministic too.
type SyncStats struct {
	Mode         SyncMode
	Epochs       uint64
	Crossings    uint64
	Drains       uint64
	MaxIdleParks uint64
}

// padCounter is a cache-line-padded per-shard counter; each is written by
// exactly one goroutine at a time (the shard's worker, or the coordinator
// at a barrier).
type padCounter struct {
	v uint64
	_ [56]byte
}

// shardClock is a shard's published virtual clock, padded to its own cache
// line. Workers publish after every quantum; downstream shards read it to
// compute their per-channel horizon. The atomic establishes the
// happens-before edge that makes mailbox contents pushed before the
// publish visible to a drain that observed the published value.
type shardClock struct {
	v atomic.Int64
	_ [56]byte
}
