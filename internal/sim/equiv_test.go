package sim

// Scheduler-equivalence guards: the timing wheel must be observationally
// identical to the reference binary heap. Random schedules — same-tick
// collisions, bucket-boundary times, far-future overflow timers, events
// scheduled from inside handlers, back-dated scheduleCrossing stamps, Stop
// mid-run, and inclusive/exclusive runTo segments — are replayed on both
// engines and the full firing traces compared. CI runs these under -race.

import (
	"fmt"
	"math/rand"
	"testing"
)

// traceRec is one fired event in a trace: the virtual time it fired at and
// the identity it carried.
type traceRec struct {
	at Time
	id uint64
}

// chaos drives one engine through a deterministic op script and records the
// firing trace. Handlers reschedule follow-up events using the engine's own
// RNG: if the two engines ever fire in different orders, their RNG streams
// diverge and the traces amplify the difference.
type chaos struct {
	eng   *Engine
	trace []traceRec
	depth int
}

func (c *chaos) Handle(id uint64) {
	c.trace = append(c.trace, traceRec{at: c.eng.Now(), id: id})
	r := c.eng.Rand()
	// A third of events spawn follow-ups, bounded so runs terminate.
	if c.depth < 12_000 && r.Intn(3) == 0 {
		c.depth++
		c.schedule(r, id*31+7)
	}
}

// schedule books one follow-up event with an adversarial delay mix.
func (c *chaos) schedule(r *rand.Rand, id uint64) {
	switch r.Intn(6) {
	case 0: // same tick
		c.eng.Schedule(c.eng.Now(), c, id)
	case 1: // sub-bucket future
		c.eng.ScheduleAfter(Time(r.Int63n(2048)), c, id)
	case 2: // level-0/1 window
		c.eng.ScheduleAfter(Time(r.Int63n(100_000)), c, id)
	case 3: // level-2/3 window
		c.eng.ScheduleAfter(Time(r.Int63n(int64(200*Millisecond))), c, id)
	case 4: // overflow band (beyond the wheel's ~34 s reach)
		c.eng.ScheduleAfter(35*Second+Time(r.Int63n(int64(10*Second))), c, id)
	default: // closure path at a bucket-boundary-ish time
		at := (c.eng.Now() + Time(r.Int63n(int64(Millisecond)))) &^ 2047
		c.eng.At(at, func() {
			c.trace = append(c.trace, traceRec{at: c.eng.Now(), id: id | 1<<63})
		})
	}
}

// runScript seeds an engine with rootN events, then alternates exclusive
// and inclusive run segments with barrier-style back-dated crossings in
// between, optionally stopping mid-run. It returns the full firing trace.
func runScript(sched Scheduler, seed int64, rootN int, stopAt int) []traceRec {
	e := NewWithScheduler(seed, sched)
	c := &chaos{eng: e}
	r := rand.New(rand.NewSource(seed * 1013))
	for i := 0; i < rootN; i++ {
		c.schedule(r, uint64(i))
	}
	deadline := Time(0)
	for seg := 0; e.Pending() > 0 && seg < 400; seg++ {
		deadline += Time(r.Int63n(int64(40 * Millisecond)))
		if seg%2 == 0 {
			e.runTo(deadline, false)
			// Epoch barrier: drain "crossings" whose insertion stamps are in
			// this engine's past, landing at or after the exclusive deadline.
			for i := r.Intn(4); i > 0; i-- {
				at := deadline + Time(r.Int63n(2048))
				ins := deadline - Time(r.Int63n(int64(Millisecond)))
				e.scheduleCrossing(at, ins, crossKey(0, seg, uint32(i)), c, uint64(seg)<<32|uint64(i))
			}
		} else {
			e.RunUntil(deadline)
		}
		if stopAt > 0 && len(c.trace) >= stopAt {
			e.Stop()
			break
		}
	}
	if stopAt == 0 {
		e.Run()
	}
	return c.trace
}

// diffTraces fails the test when the traces differ, pointing at the first
// divergent record.
func diffTraces(t *testing.T, label string, wheel, heap []traceRec) {
	t.Helper()
	n := len(wheel)
	if len(heap) < n {
		n = len(heap)
	}
	for i := 0; i < n; i++ {
		if wheel[i] != heap[i] {
			t.Fatalf("%s: traces diverge at event %d: wheel fired (t=%d id=%x), heap fired (t=%d id=%x)",
				label, i, wheel[i].at, wheel[i].id, heap[i].at, heap[i].id)
		}
	}
	if len(wheel) != len(heap) {
		t.Fatalf("%s: wheel fired %d events, heap %d", label, len(wheel), len(heap))
	}
}

// TestSchedulerEquivalence replays identical adversarial schedules on both
// schedulers and requires identical firing sequences.
func TestSchedulerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		label := fmt.Sprintf("seed=%d", seed)
		w := runScript(SchedulerWheel, seed, 40, 0)
		h := runScript(SchedulerHeap, seed, 40, 0)
		if len(w) < 40 {
			t.Fatalf("%s: only %d events fired — script not exercising the scheduler", label, len(w))
		}
		diffTraces(t, label, w, h)
	}
}

// TestSchedulerEquivalenceStop covers Stop mid-run: both schedulers must
// have fired the same prefix when the engine halts.
func TestSchedulerEquivalenceStop(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		label := fmt.Sprintf("seed=%d", seed)
		diffTraces(t, label,
			runScript(SchedulerWheel, seed, 30, 50),
			runScript(SchedulerHeap, seed, 30, 50))
	}
}

// FuzzSchedulerEquivalence lets the fuzzer pick the script shape; the seed
// corpus covers each delay band. In normal `go test` runs (including the CI
// race job) the corpus plays back as unit tests.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(0))
	f.Add(int64(7), uint8(60), uint8(40))
	f.Add(int64(99), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, rootN, stopAt uint8) {
		n := int(rootN)%64 + 1
		w := runScript(SchedulerWheel, seed, n, int(stopAt))
		h := runScript(SchedulerHeap, seed, n, int(stopAt))
		diffTraces(t, fmt.Sprintf("seed=%d n=%d stop=%d", seed, n, stopAt), w, h)
	})
}
