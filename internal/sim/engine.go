// Package sim is a deterministic discrete-event simulation engine with
// virtual nanosecond time. It replaces the paper's Mininet testbed: the
// protocol and queueing dynamics the evaluation measures (Figures 1, 2, 4)
// run against a virtual clock, so Go's garbage collector and scheduler can
// never distort latencies — the main fidelity risk of wall-clock emulation.
//
// One Engine simulates one topology shard. A ShardGroup runs N engines as an
// asynchronous conservative parallel discrete-event simulation (PDES):
// every shard-crossing link is a lock-free single-producer/single-consumer
// Channel, each shard independently advances to its per-channel lookahead
// horizon (the minimum over incoming channels of the source's published
// clock plus the channel delay) on a persistent worker goroutine, and
// crossings merge in a deterministic order that makes the drain instant
// unobservable — so a sharded run produces the same results as a
// single-engine run of the same seed, on as many cores as there are
// shards. SyncEpoch selects the global-barrier reference engine, pinned
// byte-identical to the asynchronous one.
//
// Pending events live in a pluggable scheduler. The default is a
// hierarchical timing wheel (wheel.go) with amortized O(1) push/pop; a
// binary min-heap is retained as the O(log n) reference implementation.
// Both fire events in identical (firing time, insertion time, sequence)
// order — the determinism contract every figure in this repository pins —
// so scheduler choice moves wall-clock time only, never simulated behavior.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Convenient units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// Seconds converts virtual time to float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Handler is the allocation-free event target: a pre-bound object whose
// Handle method is invoked with the uint64 payload it was scheduled with.
// Scheduling a pointer-typed Handler stores nothing but the two interface
// words and the payload in the event record, so the per-packet events of the
// simulation hot path (transmit-done, delivery, next-send) cost zero heap
// allocations — unlike a closure, which the compiler must box per call site.
type Handler interface {
	Handle(arg uint64)
}

// event is a scheduled event record. Ties at the same firing instant are
// broken by (ins, seq): ins is the virtual time the event was scheduled at
// and seq the engine-local scheduling order. For a lone engine ins is
// redundant (seq order already refines insertion-time order, since seq only
// grows as virtual time advances), so single-engine behavior is unchanged —
// but sharded runs depend on ins: a packet crossing shards is re-scheduled in
// its destination shard whenever the conservative sync permits, long after
// same-instant local events were enqueued, and carrying the original
// emission time as ins restores the tie-break order the lone-engine run
// would have produced. Crossings do not consume local seq numbers; they
// carry an explicit key with the high bit set (see crossKey in channel.go),
// so the firing order is independent of *when* a crossing was drained —
// the property that lets the asynchronous engine drain mailboxes at
// arbitrary instants and still match the barrier engine byte for byte.
// Exactly one of h and fn is set: h+arg is the typed zero-allocation form,
// fn the closure compatibility form used by At/After.
type event struct {
	at  Time
	ins Time
	seq uint64
	h   Handler
	arg uint64
	fn  func()
}

// scheduler is the engine's pending-event store. Both implementations obey
// the same contract: pop returns the minimum pending event by (at, ins, seq)
// and peek its firing time without removing it. The timing wheel (wheel.go)
// is the default; the binary heap below is retained as the reference
// implementation, selectable via NewWithScheduler for equivalence testing
// and as the worst-case-robust fallback.
type scheduler interface {
	push(ev event)
	pop() event
	peek() (Time, bool)
	len() int
}

// Scheduler selects the engine's pending-event structure.
type Scheduler uint8

const (
	// SchedulerWheel is the default: a hierarchical timing wheel with
	// amortized O(1) scheduling (see wheel.go).
	SchedulerWheel Scheduler = iota
	// SchedulerHeap is the reference O(log n) binary min-heap.
	SchedulerHeap
)

// String names the scheduler.
func (s Scheduler) String() string {
	if s == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// ParseScheduler resolves a -scheduler flag value ("wheel" or "heap").
func ParseScheduler(name string) (Scheduler, error) {
	switch name {
	case "wheel", "":
		return SchedulerWheel, nil
	case "heap":
		return SchedulerHeap, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (want wheel or heap)", name)
}

// eventHeap is a hand-rolled binary min-heap. container/heap would box every
// event into an interface on Push — one allocation per scheduled event, paid
// on every packet transmission — so the sift operations are inlined here.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	return eventLess(&h[i], &h[j])
}

// push appends the event and restores the heap invariant.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The heap must be non-empty.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the callback/handler for GC
	q = q[:n]
	*h = q
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// peek returns the earliest pending firing time.
func (h *eventHeap) peek() (Time, bool) {
	if len(*h) == 0 {
		return 0, false
	}
	return (*h)[0].at, true
}

// len returns the number of pending events.
func (h *eventHeap) len() int { return len(*h) }

// Engine runs events in virtual-time order.
type Engine struct {
	now     Time
	sched   scheduler
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns an engine at time zero with a deterministic RNG and the
// default timing-wheel scheduler.
func New(seed int64) *Engine { return NewWithScheduler(seed, SchedulerWheel) }

// NewWithScheduler returns an engine using the given pending-event
// structure. Behavior is identical for either scheduler — the equivalence
// tests pin it — only the wall-clock cost of scheduling differs.
func NewWithScheduler(seed int64, s Scheduler) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	if s == SchedulerHeap {
		e.sched = new(eventHeap)
	} else {
		e.sched = newTimingWheel()
	}
	return e
}

// Scheduler reports which pending-event structure the engine runs on.
func (e *Engine) Scheduler() Scheduler {
	if _, ok := e.sched.(*eventHeap); ok {
		return SchedulerHeap
	}
	return SchedulerWheel
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t (clamped to now). The closure
// API is the convenience layer; per-packet hot paths use Schedule instead.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.sched.push(event{at: t, ins: e.now, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Schedule schedules h.Handle(arg) at absolute virtual time t (clamped to
// now). With a pointer-typed h this allocates nothing, which makes it the
// scheduling primitive for anything that fires per packet.
func (e *Engine) Schedule(t Time, h Handler, arg uint64) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.sched.push(event{at: t, ins: e.now, seq: e.seq, h: h, arg: arg})
}

// scheduleCrossing enqueues an event whose insertion stamp is in this
// engine's past: a shard-crossing delivery drained from a mailbox. ins is
// the emission time in the source shard, which slots the event into the
// same tie-break position a lone engine would have given it (where the
// delivery would have been scheduled the instant transmission completed).
//
// Crossings carry an explicit tie-break key (crossKey: high bit set, then
// source shard, channel, FIFO index) instead of consuming a local sequence
// number. Two consequences make the asynchronous conservative engine
// possible: local events always precede crossings at an equal (at, ins) —
// exactly what the barrier engine produced, since a crossing was always
// drained after every same-instant local event had been scheduled — and the
// firing order no longer depends on *when* the crossing was drained, so
// mailboxes can be emptied incrementally at any instant the channel clocks
// permit without perturbing a single local seq number.
func (e *Engine) scheduleCrossing(at, ins Time, key uint64, h Handler, arg uint64) {
	if at < e.now {
		at = e.now
	}
	e.sched.push(event{at: at, ins: ins, seq: key, h: h, arg: arg})
}

// ScheduleAfter schedules h.Handle(arg) d nanoseconds from now.
func (e *Engine) ScheduleAfter(d Time, h Handler, arg uint64) {
	e.Schedule(e.now+d, h, arg)
}

// Ticker is a cancellable repeating event. It is its own Handler: each tick
// re-arms by scheduling the ticker itself, so a running ticker costs no
// allocations after Every's single setup allocation.
type Ticker struct {
	eng      *Engine
	interval Time
	fn       func()
	stopped  bool
}

// Stop cancels future firings.
func (t *Ticker) Stop() { t.stopped = true }

// Handle fires one tick and re-arms the ticker.
func (t *Ticker) Handle(uint64) {
	if t.stopped || t.eng.stopped {
		return
	}
	t.fn()
	t.eng.ScheduleAfter(t.interval, t, 0)
}

// Every schedules fn every interval, first firing at start.
func (e *Engine) Every(start, interval Time, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: interval, fn: fn}
	e.Schedule(start, t, 0)
	return t
}

// Stop halts the run loop after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until none remain or Stop is called. It returns the
// number of events processed.
func (e *Engine) Run() int {
	n := 0
	for e.sched.len() > 0 && !e.stopped {
		ev := e.sched.pop()
		e.now = ev.at
		if ev.h != nil {
			ev.h.Handle(ev.arg)
		} else {
			ev.fn()
		}
		n++
	}
	return n
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to the deadline. It returns the number of events processed.
func (e *Engine) RunUntil(deadline Time) int {
	return e.runTo(deadline, true)
}

// runTo processes events up to deadline — inclusive of events at exactly the
// deadline when inclusive is true, exclusive otherwise — then advances the
// clock to the deadline. The exclusive form is the shard-epoch primitive:
// an epoch ends just before its boundary instant so that deliveries drained
// from other shards at the barrier can still be ordered among local events
// of that instant.
func (e *Engine) runTo(deadline Time, inclusive bool) int {
	n := 0
	for !e.stopped {
		at, ok := e.sched.peek()
		if !ok || at > deadline || (!inclusive && at == deadline) {
			break
		}
		ev := e.sched.pop()
		e.now = ev.at
		if ev.h != nil {
			ev.h.Handle(ev.arg)
		} else {
			ev.fn()
		}
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}

// peekTime returns the firing time of the earliest pending event without
// removing it — the "earliest pending <= deadline" query ShardGroup epochs
// are built on. Both schedulers answer it cheaply: the heap from its root,
// the wheel from its occupancy bitmaps and per-bucket minima (no sorting).
func (e *Engine) peekTime() (Time, bool) { return e.sched.peek() }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.sched.len() }
