package asm

import (
	"math/rand"
	"testing"

	"minions/internal/core"
	"minions/internal/mem"
)

// randomProgram builds a valid random program: the generator for the
// property tests below.
func randomProgram(rng *rand.Rand) *core.Program {
	readable := []mem.Addr{
		mem.SwSwitchID, mem.SwVersion, mem.SwClockLo,
		mem.MustResolve("Link:QueueSize"),
		mem.MustResolve("Link:TX-Utilization"),
		mem.MustResolve("Queue:QueueOccupancy"),
		mem.MustResolve("PacketMetadata:InputPort"),
		mem.MustResolve("Link:AppSpecific_0"),
		mem.MustResolve("Link:AppSpecific_1"),
	}
	hopMode := rng.Intn(2) == 0
	per := 1 + rng.Intn(4)
	hops := 1 + rng.Intn(6)
	p := &core.Program{
		AppID: uint16(rng.Uint32()),
		Flags: core.Flags(rng.Intn(4)),
	}
	if hopMode {
		p.Mode = core.AddrHop
		p.PerHopWords = per
		p.MemWords = per * hops
	} else {
		p.Mode = core.AddrStack
		p.MemWords = 1 + rng.Intn(40)
	}
	nInsns := 1 + rng.Intn(core.MaxInsns)
	pushSlots := 0 // the assembler numbers PUSH slots in PUSH order
	for i := 0; i < nInsns; i++ {
		addr := readable[rng.Intn(len(readable))]
		var in core.Instruction
		limit := p.MemWords
		if hopMode {
			limit = per
		}
		off := uint8(rng.Intn(limit))
		op := rng.Intn(5)
		if op == 0 && pushSlots >= limit {
			op = 1 // no room for another hop-mode PUSH slot
		}
		switch op {
		case 0:
			in = core.Instruction{Op: core.OpPUSH, A: uint8(pushSlots), Addr: addr}
			pushSlots++
		case 1:
			in = core.Instruction{Op: core.OpLOAD, A: off, Addr: addr}
		case 2:
			in = core.Instruction{Op: core.OpSTORE, A: off, Addr: addr}
		case 3:
			in = core.Instruction{Op: core.OpCSTORE, A: off, B: uint8(rng.Intn(limit)), Addr: addr}
		default:
			in = core.Instruction{Op: core.OpCEXEC, A: off, B: off, Addr: addr}
		}
		p.Insns = append(p.Insns, in)
	}
	n := rng.Intn(p.MemWords + 1)
	for i := 0; i < n; i++ {
		p.InitMem = append(p.InitMem, rng.Uint32())
	}
	return p
}

// TestDisassembleAssembleRandomPrograms: for any valid program, Disassemble
// produces text that Assemble maps back to the identical wire encoding.
func TestDisassembleAssembleRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		p1 := randomProgram(rng)
		if err := p1.Validate(); err != nil {
			t.Fatalf("iteration %d: generator produced invalid program: %v", i, err)
		}
		text := Disassemble(p1)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("iteration %d: reassembly failed: %v\n%s", i, err, text)
		}
		p2.AppID = p1.AppID // .appid renders in decimal; equality via encode
		s1, err1 := p1.Encode()
		s2, err2 := p2.Encode()
		if err1 != nil || err2 != nil {
			t.Fatalf("iteration %d: encode: %v %v", i, err1, err2)
		}
		if string(s1) != string(s2) {
			t.Fatalf("iteration %d: wire encodings differ\noriginal:\n%s\nreassembled:\n%s",
				i, Disassemble(p1), Disassemble(p2))
		}
	}
}

// TestRandomProgramsExecuteGracefully: no valid program may panic or loop
// when executed against arbitrary (even empty) switch memory.
func TestRandomProgramsExecuteGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	memories := []core.SwitchMemory{
		core.MapMemory{},
		core.MapMemory{mem.SwSwitchID: 1},
		core.MemFunc{
			ReadFn:  func(a mem.Addr) (uint32, bool) { return uint32(a), true },
			WriteFn: func(a mem.Addr, v uint32) bool { return a >= mem.DynOutLinkBase },
		},
	}
	for i := 0; i < 300; i++ {
		p := randomProgram(rng)
		s, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		m := memories[i%len(memories)]
		for hop := 0; hop < 8; hop++ {
			res := core.Exec(s, &core.Env{Mem: m})
			if res.Executed+res.Skipped > core.MaxInsns {
				t.Fatalf("iteration %d: impossible instruction count %+v", i, res)
			}
		}
	}
}
