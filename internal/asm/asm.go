// Package asm assembles the paper's pseudo-assembly language into TPP wire
// programs and disassembles them back. The syntax follows the paper's
// examples verbatim:
//
//	PUSH [Queue:QueueOccupancy]
//	LOAD [Switch:SwitchID], [Packet:Hop[1]]
//	STORE [Link:AppSpecific_1], [Packet:Hop[2]]
//	CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
//	CEXEC [Switch:SwitchID], [Packet:Hop[0]]
//	LOAD [[Packet:Hop[1]]], [Packet:Hop[1]]     (indirect, §8)
//
// Directives configure the program header:
//
//	.mode stack|hop      addressing mode (default stack, or hop when any
//	                     Hop[] operand appears)
//	.hops N              hops to preallocate memory for (default 5)
//	.perhop N            words per hop (hop mode; default inferred)
//	.mem N               total packet-memory words (default inferred)
//	.appid N             wire application handle
//	.start N             initial hop counter / stack pointer, mod 256
//	.flags reflect,dropnotify
//	.word V              append an initial packet-memory word (repeatable),
//	                     the paper's "PacketMemory:" block
//
// Comments run from '#' or ';' to end of line. The paper's inline
// "(* ... *)" comments are also accepted.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"minions/internal/core"
	"minions/internal/mem"
)

// DefaultHops is the memory preallocation when .hops is not given; §2.1:
// "the maximum number of hops is small within a datacenter (typically 5-7)".
const DefaultHops = 5

// Error wraps an assembly error with its 1-based source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses a TPP program from source text.
func Assemble(src string) (*core.Program, error) {
	// Join the paper's backslash line continuations before splitting.
	src = strings.ReplaceAll(src, "\\\r\n", " ")
	src = strings.ReplaceAll(src, "\\\n", " ")
	p := &core.Program{Mode: core.AddrStack}
	var (
		modeSet   bool
		hops      = DefaultHops
		perHopSet bool
		memSet    bool
		sawHopOp  bool
		pushSlots int // next hop-relative slot for PUSH/POP in hop mode
		maxHopOff = -1
		maxAbsOff = -1
	)

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComments(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Tolerate the paper's trailing continuation backslashes.
		line = strings.TrimSuffix(line, "\\")
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := lineNo + 1

		if strings.HasPrefix(line, ".") {
			if err := directive(p, line, ln, &modeSet, &hops, &perHopSet, &memSet); err != nil {
				return nil, err
			}
			continue
		}
		if strings.EqualFold(line, "PacketMemory:") {
			continue // cosmetic block header from the paper's listings
		}

		in, usedHop, err := parseInsn(line, ln, &pushSlots)
		if err != nil {
			return nil, err
		}
		if usedHop {
			sawHopOp = true
		}
		switch {
		case usedHop && int(in.A) > maxHopOff:
			maxHopOff = int(in.A)
		case !usedHop && in.Op != core.OpPUSH && in.Op != core.OpPOP &&
			in.Op != core.OpNOP && in.Op != core.OpHALT && int(in.A) > maxAbsOff:
			maxAbsOff = int(in.A)
		}
		if usedHop && int(in.B) > maxHopOff {
			maxHopOff = int(in.B)
		}
		if !usedHop && (in.Op == core.OpCSTORE || in.Op == core.OpLOADI ||
			in.Op == core.OpCEXEC) && int(in.B) > maxAbsOff {
			// B names a packet word for these opcodes: size memory to cover
			// it, exactly as the Builder does.
			maxAbsOff = int(in.B)
		}
		p.Insns = append(p.Insns, in)
		if len(p.Insns) > core.MaxInsns {
			return nil, errf(ln, "more than %d instructions (the line-rate bound of §3)", core.MaxInsns)
		}
	}
	if len(p.Insns) == 0 {
		return nil, errf(0, "no instructions")
	}

	// Infer the addressing mode: any Hop[] operand forces hop mode.
	if !modeSet && sawHopOp {
		p.Mode = core.AddrHop
	}
	if p.Mode == core.AddrStack && sawHopOp {
		return nil, errf(0, "Hop[] operands require .mode hop")
	}

	// Size the packet memory (§3.3.2: "the end-host must preallocate enough
	// space in the TPP to hold per-hop data structures").
	pushes := 0
	for _, in := range p.Insns {
		if in.Op == core.OpPUSH {
			pushes++
		}
	}
	if p.Mode == core.AddrHop {
		if !perHopSet {
			need := maxHopOff + 1
			if pushSlots > need {
				need = pushSlots
			}
			if need <= 0 {
				need = 1
			}
			p.PerHopWords = need
		}
		if !memSet {
			p.MemWords = p.PerHopWords * hops
		}
	} else if !memSet {
		words := pushes * hops
		if maxAbsOff+1 > words {
			words = maxAbsOff + 1
		}
		if len(p.InitMem) > words {
			words = len(p.InitMem)
		}
		if words == 0 {
			words = 1
		}
		p.MemWords = words
	}
	if p.MemWords > core.MaxMemWords {
		return nil, errf(0, "packet memory of %d words exceeds the maximum %d", p.MemWords, core.MaxMemWords)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

// MustAssemble panics on error; for compile-time-constant programs.
func MustAssemble(src string) *core.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComments(line string) string {
	// '#' and ';' start a comment only at line start or after whitespace, so
	// the Vendor#0 / Link#3 index syntax survives.
	for _, marker := range []string{"#", ";", "//"} {
		for from := 0; ; {
			i := strings.Index(line[from:], marker)
			if i < 0 {
				break
			}
			i += from
			if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
				line = line[:i]
				break
			}
			from = i + len(marker)
		}
	}
	// The paper's listings use (* ... *) inline comments.
	for {
		start := strings.Index(line, "(*")
		if start < 0 {
			break
		}
		end := strings.Index(line[start:], "*)")
		if end < 0 {
			line = line[:start]
			break
		}
		line = line[:start] + line[start+end+2:]
	}
	return line
}

func directive(p *core.Program, line string, ln int, modeSet *bool, hops *int, perHopSet, memSet *bool) error {
	fields := strings.Fields(line)
	name := strings.ToLower(fields[0])
	arg := ""
	if len(fields) > 1 {
		arg = fields[1]
	}
	num := func() (int, error) {
		v, err := strconv.ParseInt(arg, 0, 32)
		if err != nil {
			return 0, errf(ln, "%s: bad number %q", name, arg)
		}
		return int(v), nil
	}
	switch name {
	case ".mode":
		switch strings.ToLower(arg) {
		case "stack":
			p.Mode = core.AddrStack
		case "hop":
			p.Mode = core.AddrHop
		default:
			return errf(ln, ".mode wants stack or hop, got %q", arg)
		}
		*modeSet = true
	case ".hops":
		v, err := num()
		if err != nil {
			return err
		}
		if v < 1 || v > 64 {
			return errf(ln, ".hops %d out of range", v)
		}
		*hops = v
	case ".perhop":
		v, err := num()
		if err != nil {
			return err
		}
		p.PerHopWords = v
		*perHopSet = true
	case ".mem":
		v, err := num()
		if err != nil {
			return err
		}
		p.MemWords = v
		*memSet = true
	case ".appid":
		v, err := num()
		if err != nil {
			return err
		}
		p.AppID = uint16(v)
	case ".start":
		// Initial hop counter / stack pointer, mod 256: the windowing trick
		// SplitCollect-style large-TPP programs rely on (§4.4).
		v, err := num()
		if err != nil {
			return err
		}
		p.StartHop = v & 0xFF
	case ".flags":
		for _, f := range strings.Split(strings.ToLower(arg), ",") {
			switch strings.TrimSpace(f) {
			case "reflect":
				p.Flags |= core.FlagReflect
			case "dropnotify":
				p.Flags |= core.FlagDropNotify
			case "":
			default:
				return errf(ln, "unknown flag %q", f)
			}
		}
	case ".word":
		for _, w := range fields[1:] {
			v, err := strconv.ParseUint(w, 0, 32)
			if err != nil {
				return errf(ln, ".word: bad value %q", w)
			}
			p.InitMem = append(p.InitMem, uint32(v))
		}
	default:
		return errf(ln, "unknown directive %q", name)
	}
	return nil
}

// parseInsn parses one instruction line. usedHop reports whether any operand
// used Hop[] addressing.
func parseInsn(line string, ln int, pushSlots *int) (core.Instruction, bool, error) {
	var in core.Instruction
	op, rest, _ := strings.Cut(line, " ")
	operands, err := splitOperands(rest, ln)
	if err != nil {
		return in, false, err
	}
	usedHop := false

	parsePacketOp := func(s string) (uint8, error) {
		off, hop, err := packetOffset(s, ln)
		if err != nil {
			return 0, err
		}
		if hop {
			usedHop = true
		}
		return off, nil
	}

	indirect := false
	switchAddr := func(s string) (mem.Addr, error) {
		if strings.HasPrefix(s, "[[") && strings.HasSuffix(s, "]]") {
			// Indirect: the switch address comes from packet memory (§8).
			// Strip one bracket layer: [[Packet:Hop[1]]] -> [Packet:Hop[1]].
			indirect = true
			off, err := parsePacketOp(s[1 : len(s)-1])
			if err != nil {
				return 0, err
			}
			in.B = off
			return 0, nil
		}
		name := strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
		a, err := mem.Resolve(name)
		if err != nil {
			return 0, errf(ln, "%v", err)
		}
		return a, nil
	}

	need := func(n int) error {
		if len(operands) != n {
			return errf(ln, "%s wants %d operand(s), got %d", op, n, len(operands))
		}
		return nil
	}

	switch strings.ToUpper(op) {
	case "NOP":
		in.Op = core.OpNOP
	case "HALT":
		in.Op = core.OpHALT
	case "PUSH", "POP":
		if err := need(1); err != nil {
			return in, false, err
		}
		a, err := switchAddr(operands[0])
		if err != nil {
			return in, false, err
		}
		if strings.ToUpper(op) == "PUSH" {
			in.Op = core.OpPUSH
		} else {
			in.Op = core.OpPOP
		}
		in.Addr = a
		// Preassign a hop-relative slot so the same program also executes
		// under hop addressing (§3.5 serialization).
		in.A = uint8(*pushSlots)
		*pushSlots++
	case "LOAD":
		if err := need(2); err != nil {
			return in, false, err
		}
		a, err := switchAddr(operands[0])
		if err != nil {
			return in, false, err
		}
		off, err := parsePacketOp(operands[1])
		if err != nil {
			return in, false, err
		}
		if indirect {
			in.Op = core.OpLOADI
		} else {
			in.Op = core.OpLOAD
		}
		in.Addr = a
		in.A = off
	case "LOADI":
		if err := need(2); err != nil {
			return in, false, err
		}
		dst, err := parsePacketOp(operands[0])
		if err != nil {
			return in, false, err
		}
		src, err := parsePacketOp(operands[1])
		if err != nil {
			return in, false, err
		}
		in.Op = core.OpLOADI
		in.A = dst
		in.B = src
	case "STORE":
		if err := need(2); err != nil {
			return in, false, err
		}
		a, err := switchAddr(operands[0])
		if err != nil {
			return in, false, err
		}
		off, err := parsePacketOp(operands[1])
		if err != nil {
			return in, false, err
		}
		in.Op = core.OpSTORE
		in.Addr = a
		in.A = off
	case "CSTORE":
		if err := need(3); err != nil {
			return in, false, err
		}
		a, err := switchAddr(operands[0])
		if err != nil {
			return in, false, err
		}
		oldOff, err := parsePacketOp(operands[1])
		if err != nil {
			return in, false, err
		}
		newOff, err := parsePacketOp(operands[2])
		if err != nil {
			return in, false, err
		}
		in.Op = core.OpCSTORE
		in.Addr = a
		in.A = oldOff
		in.B = newOff
	case "CEXEC":
		if len(operands) != 2 && len(operands) != 3 {
			return in, false, errf(ln, "CEXEC wants 2 or 3 operands, got %d", len(operands))
		}
		a, err := switchAddr(operands[0])
		if err != nil {
			return in, false, err
		}
		valOff, err := parsePacketOp(operands[1])
		if err != nil {
			return in, false, err
		}
		in.Op = core.OpCEXEC
		in.Addr = a
		in.A = valOff
		in.B = valOff // B==A means full mask
		if len(operands) == 3 {
			maskOff, err := parsePacketOp(operands[2])
			if err != nil {
				return in, false, err
			}
			in.B = maskOff
		}
	default:
		return in, false, errf(ln, "unknown mnemonic %q", op)
	}
	return in, usedHop, nil
}

// splitOperands splits "a, b, c" respecting brackets.
func splitOperands(s string, ln int) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, errf(ln, "unbalanced brackets")
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, errf(ln, "unbalanced brackets")
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

// packetOffset parses a packet-memory operand: [Packet:Hop[3]] (hop
// relative), [Packet:3] (absolute), or the paper's [Packet:hop[0]] casing.
func packetOffset(s string, ln int) (off uint8, hopRel bool, err error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
	ns, rest, found := strings.Cut(inner, ":")
	if !found || (ns != "Packet" && ns != "PacketMemory") {
		return 0, false, errf(ln, "expected [Packet:...] operand, got %q", s)
	}
	rest = strings.TrimSpace(rest)
	lower := strings.ToLower(rest)
	if strings.HasPrefix(lower, "hop[") {
		numStr := strings.TrimSuffix(rest[len("hop["):], "]")
		v, perr := strconv.Atoi(strings.TrimSpace(numStr))
		if perr != nil || v < 0 || v > core.MaxOperand {
			return 0, false, errf(ln, "bad hop offset %q", rest)
		}
		return uint8(v), true, nil
	}
	v, perr := strconv.Atoi(rest)
	if perr != nil || v < 0 || v > core.MaxOperand {
		return 0, false, errf(ln, "bad packet offset %q", rest)
	}
	return uint8(v), false, nil
}

// Disassemble renders a program back to assembler text that Assemble accepts.
func Disassemble(p *core.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".mode %s\n", p.Mode)
	if p.Mode == core.AddrHop {
		fmt.Fprintf(&b, ".perhop %d\n", p.PerHopWords)
	}
	fmt.Fprintf(&b, ".mem %d\n", p.MemWords)
	if p.AppID != 0 {
		fmt.Fprintf(&b, ".appid %d\n", p.AppID)
	}
	if p.StartHop != 0 {
		fmt.Fprintf(&b, ".start %d\n", p.StartHop)
	}
	if p.Flags != 0 {
		var fs []string
		if p.Flags&core.FlagReflect != 0 {
			fs = append(fs, "reflect")
		}
		if p.Flags&core.FlagDropNotify != 0 {
			fs = append(fs, "dropnotify")
		}
		if len(fs) > 0 {
			fmt.Fprintf(&b, ".flags %s\n", strings.Join(fs, ","))
		}
	}
	pkt := func(off uint8) string {
		if p.Mode == core.AddrHop {
			return fmt.Sprintf("[Packet:Hop[%d]]", off)
		}
		return fmt.Sprintf("[Packet:%d]", off)
	}
	for _, in := range p.Insns {
		switch in.Op {
		case core.OpNOP:
			b.WriteString("NOP\n")
		case core.OpHALT:
			b.WriteString("HALT\n")
		case core.OpPUSH, core.OpPOP:
			fmt.Fprintf(&b, "%s [%s]\n", in.Op, in.Addr)
		case core.OpLOAD:
			fmt.Fprintf(&b, "LOAD [%s], %s\n", in.Addr, pkt(in.A))
		case core.OpLOADI:
			fmt.Fprintf(&b, "LOADI %s, %s\n", pkt(in.A), pkt(in.B))
		case core.OpSTORE:
			fmt.Fprintf(&b, "STORE [%s], %s\n", in.Addr, pkt(in.A))
		case core.OpCSTORE:
			fmt.Fprintf(&b, "CSTORE [%s], %s, %s\n", in.Addr, pkt(in.A), pkt(in.B))
		case core.OpCEXEC:
			if in.A == in.B {
				fmt.Fprintf(&b, "CEXEC [%s], %s\n", in.Addr, pkt(in.A))
			} else {
				fmt.Fprintf(&b, "CEXEC [%s], %s, %s\n", in.Addr, pkt(in.A), pkt(in.B))
			}
		}
	}
	// Trim trailing zero words: decoded programs carry the full (mostly
	// zero) packet memory, which is implied by .mem.
	initMem := p.InitMem
	for len(initMem) > 0 && initMem[len(initMem)-1] == 0 {
		initMem = initMem[:len(initMem)-1]
	}
	for _, w := range initMem {
		fmt.Fprintf(&b, ".word 0x%x\n", w)
	}
	return b.String()
}
