package asm

import (
	"strings"
	"testing"

	"minions/internal/core"
	"minions/internal/mem"
)

// The paper's example programs, §2.1-§2.5 and §8, must all assemble.

func TestAssembleMicroburst(t *testing.T) {
	// §2.1: three PUSHes collecting switch ID, port and queue size.
	p, err := Assemble(`
		PUSH [Switch:SwitchID]
		PUSH [PacketMetadata:OutputPort]
		PUSH [Queue:QueueOccupancy]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insns) != 3 {
		t.Fatalf("got %d instructions", len(p.Insns))
	}
	if p.Mode != core.AddrStack {
		t.Errorf("mode = %v", p.Mode)
	}
	// Default sizing: 3 words x 5 hops.
	if p.MemWords != 15 {
		t.Errorf("MemWords = %d, want 15", p.MemWords)
	}
	if p.Insns[2].Addr != mem.MustResolve("Queue:QueueOccupancy") {
		t.Errorf("queue addr = %v", p.Insns[2].Addr)
	}
}

func TestAssembleRCPCollect(t *testing.T) {
	// §2.2 phase 1.
	p, err := Assemble(`
		PUSH [Switch:SwitchID]
		PUSH [Link:QueueSize]
		PUSH [Link:RX-Utilization]
		PUSH [Link:AppSpecific_0]   # Version number
		PUSH [Link:AppSpecific_1]   # Rfair
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insns) != 5 {
		t.Fatalf("got %d instructions", len(p.Insns))
	}
	if p.MemWords != 25 {
		t.Errorf("MemWords = %d, want 25", p.MemWords)
	}
}

func TestAssembleRCPUpdate(t *testing.T) {
	// §2.2 phase 3, with the paper's line continuation and PacketMemory
	// block syntax.
	p, err := Assemble(`
		CSTORE [Link:AppSpecific_0], \
			[Packet:Hop[0]], [Packet:Hop[1]]
		STORE [Link:AppSpecific_1], [Packet:Hop[2]]
		PacketMemory:
		.word 1 2 150
		.word 1 2 170
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != core.AddrHop {
		t.Fatalf("Hop[] operands must force hop mode, got %v", p.Mode)
	}
	if p.PerHopWords != 3 {
		t.Errorf("PerHopWords = %d, want 3", p.PerHopWords)
	}
	if p.Insns[0].Op != core.OpCSTORE || p.Insns[0].A != 0 || p.Insns[0].B != 1 {
		t.Errorf("CSTORE parsed as %+v", p.Insns[0])
	}
	if p.Insns[1].Op != core.OpSTORE || p.Insns[1].A != 2 {
		t.Errorf("STORE parsed as %+v", p.Insns[1])
	}
	if len(p.InitMem) != 6 || p.InitMem[2] != 150 || p.InitMem[5] != 170 {
		t.Errorf("InitMem = %v", p.InitMem)
	}
}

func TestAssembleNetSight(t *testing.T) {
	// §2.3: packet-history collection.
	p, err := Assemble(`
		.hops 10
		PUSH [Switch:ID]
		PUSH [PacketMetadata:MatchedEntryID]
		PUSH [PacketMetadata:InputPort]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.MemWords != 30 {
		t.Errorf("MemWords = %d, want 30", p.MemWords)
	}
}

func TestAssembleCONGA(t *testing.T) {
	// §2.4: link utilization probes.
	p, err := Assemble(`
		PUSH [Link:ID]
		PUSH [Link:TX-Utilization]
		PUSH [Link:TX-Bytes]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Insns[1].Addr; got != mem.DynOutLinkBase+mem.LinkTXUtil {
		t.Errorf("TX-Utilization = %v", got)
	}
}

func TestAssembleOpenSketch(t *testing.T) {
	// §2.5: routing context for the bitmap sketch.
	if _, err := Assemble(`
		PUSH [Switch:ID]
		PUSH [PacketMetadata:OutputPort]
	`); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleVendorIndirection(t *testing.T) {
	// §8: CEXEC on vendor ID plus an indirect load whose target address is
	// carried in per-hop packet memory.
	p, err := Assemble(`
		.mode hop
		CEXEC [Switch:VendorID], [Packet:Hop[0]]
		LOAD [[Packet:Hop[1]]], [Packet:Hop[1]]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[0].Op != core.OpCEXEC || p.Insns[0].A != p.Insns[0].B {
		t.Errorf("CEXEC: %+v", p.Insns[0])
	}
	if p.Insns[1].Op != core.OpLOADI || p.Insns[1].A != 1 || p.Insns[1].B != 1 {
		t.Errorf("indirect LOAD: %+v", p.Insns[1])
	}
}

func TestAssembleCEXECWithMask(t *testing.T) {
	p, err := Assemble(`
		.mode stack
		.mem 3
		CEXEC [Switch:VendorID], [Packet:0], [Packet:1]
		PUSH [Switch:SwitchID]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[0].A != 0 || p.Insns[0].B != 1 {
		t.Errorf("masked CEXEC: %+v", p.Insns[0])
	}
}

func TestAssembleTargetedExecution(t *testing.T) {
	// §4.4 "Targeted execution": wrap a TPP with CEXEC on switch ID.
	p, err := Assemble(`
		.mode hop
		.perhop 4
		.word 0x2A 0 0 0
		CEXEC [Switch:SwitchID], [Packet:Hop[0]]
		LOAD [Link:TX-Utilization], [Packet:Hop[1]]
		LOAD [Link:Queued-Bytes], [Packet:Hop[2]]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.PerHopWords != 4 || p.InitMem[0] != 0x2A {
		t.Errorf("%+v", p)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"empty":                 "",
		"unknown mnemonic":      "FROB [Switch:SwitchID]",
		"unknown register":      "PUSH [Switch:Bogus]",
		"too many instructions": strings.Repeat("PUSH [Switch:SwitchID]\n", 6),
		"missing operand":       "LOAD [Switch:SwitchID]",
		"bad directive":         ".frobnicate 3",
		"bad mode":              ".mode diagonal\nPUSH [Switch:SwitchID]",
		"hop op in stack mode":  ".mode stack\nLOAD [Switch:SwitchID], [Packet:Hop[0]]",
		"bad packet operand":    "LOAD [Switch:SwitchID], [Bogus:3]",
		"unbalanced brackets":   "PUSH [Switch:SwitchID",
		"cstore operand count":  "CSTORE [Link:AppSpecific_0], [Packet:0]",
		"bad hop index":         ".mode hop\nLOAD [Switch:SwitchID], [Packet:Hop[x]]",
		"mem too large":         ".hops 64\nPUSH [Switch:SwitchID]\nPUSH [Switch:SwitchID]\nPUSH [Switch:SwitchID]",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestAssembleLineNumbersInErrors(t *testing.T) {
	_, err := Assemble("PUSH [Switch:SwitchID]\nFROB x\n")
	if err == nil {
		t.Fatal("expected error")
	}
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 2 {
		t.Errorf("error line = %d, want 2", ae.Line)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	srcs := []string{
		`
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueOccupancy]
		`,
		`
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		STORE [Link:AppSpecific_1], [Packet:Hop[2]]
		.word 5 6 150
		`,
		`
		.mode stack
		.mem 4
		.appid 77
		.flags reflect,dropnotify
		CEXEC [Switch:SwitchID], [Packet:0]
		LOAD [Link:TX-Utilization], [Packet:1]
		HALT
		`,
	}
	for i, src := range srcs {
		p1, err := Assemble(src)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		text := Disassemble(p1)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("src %d: reassemble %q: %v", i, text, err)
		}
		s1, err := p1.Encode()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(s1) != string(s2) {
			t.Errorf("src %d: round trip changed encoding\noriginal:\n%s\nreassembled:\n%s", i, src, text)
		}
	}
}

func TestAssembledProgramExecutes(t *testing.T) {
	// End-to-end: assemble the micro-burst TPP, execute over 2 hops.
	p := MustAssemble(`
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueOccupancy]
	`)
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for hop := 0; hop < 2; hop++ {
		res := core.Exec(s, &core.Env{Mem: core.MapMemory{
			mem.SwSwitchID:                          uint32(hop + 1),
			mem.MustResolve("Queue:QueueOccupancy"): uint32(hop * 5),
		}})
		if res.Halted {
			t.Fatalf("hop %d: %+v", hop, res)
		}
	}
	views := s.StackView(2)
	if len(views) != 2 || views[1].Words[0] != 2 || views[1].Words[1] != 5 {
		t.Fatalf("views = %+v", views)
	}
}

func TestCommentStyles(t *testing.T) {
	p, err := Assemble(`
		# hash comment
		; semicolon comment
		// slash comment
		PUSH [Switch:SwitchID]  # trailing
		PUSH [Link:QueueSize]   (* paper style *)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insns) != 2 {
		t.Fatalf("got %d instructions", len(p.Insns))
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	MustAssemble("BOGUS")
}

func TestExplicitMemDirective(t *testing.T) {
	p, err := Assemble(`
		.mem 40
		.hops 3
		PUSH [Switch:SwitchID]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.MemWords != 40 {
		t.Errorf("MemWords = %d", p.MemWords)
	}
}
