package asm

import "testing"

// BenchmarkAssemble measures compiling the RCP* update program — assembler
// throughput matters for control planes that generate TPPs per decision.
func BenchmarkAssemble(b *testing.B) {
	src := `
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		STORE [Link:AppSpecific_1], [Packet:Hop[2]]
		.word 1 2 150 1 2 170
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisassemble measures the reverse direction.
func BenchmarkDisassemble(b *testing.B) {
	p := MustAssemble(`
		PUSH [Switch:SwitchID]
		PUSH [Link:QueueSize]
		PUSH [Link:RX-Utilization]
		PUSH [Link:AppSpecific_0]
		PUSH [Link:AppSpecific_1]
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Disassemble(p)
	}
}
