// Package stream provides the typed telemetry stream primitive shared by
// the whole tree. The public framework package tppnet/app aliases Stream so
// applications keep importing it from there; internal layers (host control
// plane, fault plane) publish through this package directly, which avoids
// the import cycle internal/* → tppnet/app → tppnet → internal/*.
package stream

import (
	"sync"
	"sync/atomic"
)

// Stream is a typed telemetry stream: deterministic, synchronous fan-out
// from a publisher to its subscribers.
//
// Publish invokes every active subscriber in subscription order, on the
// publisher's goroutine — in a discrete-event simulation that keeps results
// reproducible, unlike channel-based delivery. A Stream's zero value is
// ready to use.
//
// Streams are safe for concurrent use: sharded simulations publish from one
// goroutine per shard, and a subscription's cancel may race a publish from
// another shard. Subscribe copies the subscriber list (copy-on-write under
// a mutex) while Publish reads it with a single atomic load, so the publish
// path stays lock-free and allocation-free. Cancellation is an atomic flag:
// a subscriber cancelled concurrently with a publish either observes that
// event or does not, but never a torn state. The subscriber callbacks
// themselves are invoked on the publishing goroutine — a callback shared
// across shards must do its own locking (see apps/microburst.Monitor for
// the pattern).
type Stream[T any] struct {
	mu   sync.Mutex // serializes Subscribe's copy-on-write
	subs atomic.Pointer[[]*subscription[T]]
}

type subscription[T any] struct {
	fn     func(T)
	active atomic.Bool
}

// Subscribe registers fn to observe every subsequent Publish and returns a
// cancel function. Cancel is idempotent; cancelled subscribers stop
// receiving immediately but their slot is retained (subscription order of
// the remaining subscribers never changes mid-run).
func (s *Stream[T]) Subscribe(fn func(T)) (cancel func()) {
	sub := &subscription[T]{fn: fn}
	sub.active.Store(true)
	s.mu.Lock()
	var next []*subscription[T]
	if cur := s.subs.Load(); cur != nil {
		next = make([]*subscription[T], len(*cur), len(*cur)+1)
		copy(next, *cur)
	}
	next = append(next, sub)
	s.subs.Store(&next)
	s.mu.Unlock()
	return func() { sub.active.Store(false) }
}

// Publish delivers v to every active subscriber, in subscription order.
func (s *Stream[T]) Publish(v T) {
	subs := s.subs.Load()
	if subs == nil {
		return
	}
	for _, sub := range *subs {
		if sub.active.Load() {
			sub.fn(v)
		}
	}
}

// HasSubscribers reports whether any active subscriber remains; publishers
// on warm paths check it to skip building events nobody consumes.
func (s *Stream[T]) HasSubscribers() bool {
	subs := s.subs.Load()
	if subs == nil {
		return false
	}
	for _, sub := range *subs {
		if sub.active.Load() {
			return true
		}
	}
	return false
}

// Collect subscribes a slice accumulator to the stream and returns it: the
// one-liner for tests and batch consumers that want every event. The
// accumulator itself is not synchronized — use it where publishes are
// serialized (single-shard runs, or a publisher that holds its own lock).
func Collect[T any](s *Stream[T]) *[]T {
	out := &[]T{}
	s.Subscribe(func(v T) { *out = append(*out, v) })
	return out
}
