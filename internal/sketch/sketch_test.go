package sketch_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/sketch"
	"minions/internal/topo"
)

func TestBitmapEstimateAccuracy(t *testing.T) {
	// The b·ln(b/z) estimator should be within ~15% for n <= b/2.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{50, 200, 400} {
		bm := sketch.NewBitmap(1024)
		seen := map[uint64]bool{}
		for len(seen) < n {
			v := rng.Uint64()
			if !seen[v] {
				seen[v] = true
				bm.Add(v)
			}
		}
		est := bm.Estimate()
		if math.Abs(est-float64(n))/float64(n) > 0.15 {
			t.Errorf("n=%d: estimate %.1f off by >15%%", n, est)
		}
	}
}

func TestBitmapDuplicatesDontInflate(t *testing.T) {
	bm := sketch.NewBitmap(256)
	for i := 0; i < 1000; i++ {
		bm.Add(42) // same element
	}
	if est := bm.Estimate(); est > 2 {
		t.Errorf("1000 duplicates estimated as %.1f uniques", est)
	}
}

func TestBitmapMergeCommutative(t *testing.T) {
	f := func(seedsA, seedsB []uint16) bool {
		a1, b1 := sketch.NewBitmap(256), sketch.NewBitmap(256)
		a2, b2 := sketch.NewBitmap(256), sketch.NewBitmap(256)
		for _, s := range seedsA {
			a1.Add(uint64(s))
			a2.Add(uint64(s))
		}
		for _, s := range seedsB {
			b1.Add(uint64(s))
			b2.Add(uint64(s))
		}
		a1.Merge(b1) // A | B
		b2.Merge(a2) // B | A
		return a1.Zeros() == b2.Zeros() && a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitmapMergeEqualsUnion(t *testing.T) {
	union := sketch.NewBitmap(512)
	parts := make([]*sketch.Bitmap, 4)
	rng := rand.New(rand.NewSource(3))
	for i := range parts {
		parts[i] = sketch.NewBitmap(512)
	}
	for i := 0; i < 200; i++ {
		v := rng.Uint64()
		union.Add(v)
		parts[i%4].Add(v)
	}
	merged := sketch.NewBitmap(512)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Zeros() != union.Zeros() {
		t.Error("distributed merge differs from centralized union")
	}
}

func TestBitmapSaturation(t *testing.T) {
	bm := sketch.NewBitmap(64)
	for i := uint64(0); i < 10000; i++ {
		bm.Add(i)
	}
	if bm.Zeros() != 0 {
		t.Fatal("bitmap should saturate")
	}
	if est := bm.Estimate(); math.IsInf(est, 1) || math.IsNaN(est) {
		t.Errorf("saturated estimate = %v", est)
	}
}

func TestEndToEndLinkCardinality(t *testing.T) {
	// Six hosts all talk to host 0; the monitor's estimate of unique
	// sources on host 0's ingress link should be ~5.
	n := topo.New(4)
	hosts, _, _ := topo.Dumbbell(n, 6, 1000)
	mon, agents, err := sketch.Deploy(n.CP, hosts, host.FilterSpec{Proto: link.ProtoUDP}, 1, 256, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h0 := n.Hosts[0]
	h0.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	for i := 1; i < 6; i++ {
		src := n.Hosts[i]
		for k := 0; k < 20; k++ {
			src.Send(src.NewPacket(h0.ID(), uint16(1000+k), 8000, link.ProtoUDP, 400))
		}
	}
	n.Eng.RunUntil(time500())
	for _, a := range agents {
		a.Stop()
	}
	n.Eng.Run()

	// Find the link into h0: switch 1, the port facing host 0.
	var bestKey sketch.LinkKey
	bestEst := 0.0
	for _, k := range mon.Links() {
		if e := mon.Estimate(k); e > bestEst {
			bestEst, bestKey = e, k
		}
	}
	if bestEst < 4 || bestEst > 7 {
		t.Errorf("unique-source estimate on %v = %.1f, want ~5", bestKey, bestEst)
	}
	if mon.Pushes == 0 {
		t.Error("agents never pushed to the monitor")
	}
}

func time500() sim.Time { return 500 * sim.Millisecond }

func TestMemorySizing(t *testing.T) {
	// §2.5: "If we use 1kbit memory per link, the total memory usage for
	// all 65536 links is about 8MB/server."
	hostsN, coreLinks := topo.FatTreeDims(64)
	if hostsN != 65536 {
		t.Fatalf("fat-tree hosts = %d", hostsN)
	}
	if got := sketch.MemoryPerServer(coreLinks, 1024); got != 8*1024*1024 {
		t.Errorf("memory per server = %d bytes, want 8 MiB", got)
	}
}

func TestSamplingOverheadUnderOnePercent(t *testing.T) {
	// §2.5: sampling 1 in 10 packets keeps TPP bandwidth overhead <1%.
	n := topo.New(4)
	hosts, _, _ := topo.Dumbbell(n, 4, 1000)
	_, _, err := sketch.Deploy(n.CP, hosts, host.FilterSpec{Proto: link.ProtoUDP}, 10, 256, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	for i := 0; i < 1000; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, link.ProtoUDP, 1000))
	}
	n.Eng.RunUntil(200 * sim.Millisecond)
	st := h0.Stats()
	frac := float64(st.TPPBytesAdded) / float64(st.TxBytes)
	if frac > 0.01 {
		t.Errorf("TPP bandwidth overhead %.2f%% with 1-in-10 sampling, want <1%%", frac*100)
	}
	if st.TPPsAttached == 0 {
		t.Error("nothing instrumented")
	}
}
