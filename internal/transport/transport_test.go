package transport_test

import (
	"testing"

	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/topo"
	"minions/internal/transport"
)

// pair builds h1 - s1 - s2 - h2 with the middle link at rateMbps.
func pair(t *testing.T, rateMbps int) (*topo.Network, *topoHosts) {
	t.Helper()
	n := topo.New(1)
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	fast := topo.HostLink(rateMbps * 10)
	n.Connect(h1, s1, fast)
	n.Connect(h2, s2, fast)
	n.Connect(s1, s2, topo.HostLink(rateMbps))
	n.ComputeRoutes()
	return n, &topoHosts{h1: h1, h2: h2}
}

type topoHosts struct {
	h1, h2 interface {
		ID() link.NodeID
	}
}

func TestUDPFlowRate(t *testing.T) {
	n := topo.New(1)
	s1 := n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	n.Connect(h1, s1, topo.HostLink(1000))
	n.Connect(h2, s1, topo.HostLink(1000))
	n.ComputeRoutes()

	sink := transport.NewSink(n.Hosts[1], 7000, link.ProtoUDP)
	f := transport.NewUDPFlow(n.Hosts[0], h2.ID(), 6000, 7000, 1250)
	f.SetRateBps(10_000_000) // 10 Mb/s = 1.25 MB/s = 1000 pkts/s of 1250 B
	f.Start()
	n.Eng.RunUntil(sim.Second)
	f.Stop()
	n.Eng.Run()

	// Expect ~1.25 MB +/- 5%.
	if sink.Bytes < 1_180_000 || sink.Bytes > 1_320_000 {
		t.Errorf("received %d bytes, want ~1.25 MB", sink.Bytes)
	}
	_ = h1
}

func TestUDPFlowRateChange(t *testing.T) {
	n := topo.New(1)
	s1 := n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	n.Connect(h1, s1, topo.HostLink(1000))
	n.Connect(h2, s1, topo.HostLink(1000))
	n.ComputeRoutes()
	sink := transport.NewSink(n.Hosts[1], 7000, link.ProtoUDP)
	f := transport.NewUDPFlow(n.Hosts[0], h2.ID(), 6000, 7000, 1250)
	f.SetRateBps(5_000_000)
	f.Start()
	n.Eng.RunUntil(sim.Second)
	half := sink.Bytes
	f.SetRateBps(20_000_000)
	n.Eng.RunUntil(2 * sim.Second)
	f.Stop()
	n.Eng.Run()
	second := sink.Bytes - half
	if second < 3*half {
		t.Errorf("rate change ineffective: first=%d second=%d", half, second)
	}
}

func TestTCPTransferCompletes(t *testing.T) {
	n, hs := pair(t, 100)
	h1 := n.Hosts[0]
	h2 := n.Hosts[1]
	transport.NewTCPSink(h2, 8000, 1)
	f := transport.NewTCPFlow(h1, hs.h2.ID(), 5000, 8000, 1440)
	f.SetMessage(100_000) // 100 kB
	done := false
	f.OnComplete = func() { done = true }
	f.Start()
	n.Eng.RunUntil(5 * sim.Second)
	if !done {
		t.Fatalf("transfer incomplete: base=%v", f.Done())
	}
}

func TestTCPSaturatesLink(t *testing.T) {
	n, hs := pair(t, 50)
	h1, h2 := n.Hosts[0], n.Hosts[1]
	sink := transport.NewTCPSink(h2, 8000, 2)
	f := transport.NewTCPFlow(h1, hs.h2.ID(), 5000, 8000, 1440)
	f.Start() // unbounded
	n.Eng.RunUntil(3 * sim.Second)

	gotMbps := float64(sink.Bytes) * 8 / 3 / 1e6
	if gotMbps < 35 || gotMbps > 51 {
		t.Errorf("long-lived TCP achieved %.1f Mb/s on a 50 Mb/s link", gotMbps)
	}
	if f.Retransmits == 0 {
		t.Log("note: no losses — queue large relative to BDP (fine)")
	}
}

func TestTCPFairSharing(t *testing.T) {
	// Two flows over one 50 Mb/s bottleneck should each get roughly half.
	n := topo.New(1)
	s1, s2 := n.AddSwitch(6), n.AddSwitch(6)
	var hosts []link.NodeID
	for i := 0; i < 4; i++ {
		h := n.AddHost()
		hosts = append(hosts, h.ID())
		if i < 2 {
			n.Connect(h, s1, topo.HostLink(500))
		} else {
			n.Connect(h, s2, topo.HostLink(500))
		}
	}
	// A shallow queue (~20 packets) keeps Reno's sawtooth epochs short so
	// fairness converges within the run.
	n.Connect(s1, s2, link.Config{
		RateBps:    50_000_000,
		Delay:      100 * sim.Microsecond,
		QueueBytes: 30_000,
	})
	n.ComputeRoutes()

	sinkA := transport.NewTCPSink(n.Hosts[2], 8000, 2)
	sinkB := transport.NewTCPSink(n.Hosts[3], 8001, 2)
	fa := transport.NewTCPFlow(n.Hosts[0], hosts[2], 5000, 8000, 1440)
	fb := transport.NewTCPFlow(n.Hosts[1], hosts[3], 5001, 8001, 1440)
	fa.Start()
	n.Eng.At(50*sim.Millisecond, fb.Start) // staggered, as in real workloads
	n.Eng.RunUntil(8 * sim.Second)

	a := float64(sinkA.Bytes)
	b := float64(sinkB.Bytes)
	ratio := a / b
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("unfair sharing: %.1f vs %.1f bytes (ratio %.2f)", a, b, ratio)
	}
	total := (a + b) * 8 / 8 / 1e6
	if total < 33 || total > 51 {
		t.Errorf("aggregate %.1f Mb/s on a 50 Mb/s link", total)
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	// Tiny queue forces drops; the transfer must still complete.
	n := topo.New(1)
	s1, s2 := n.AddSwitch(4), n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	n.Connect(h1, s1, topo.HostLink(1000))
	n.Connect(h2, s2, topo.HostLink(1000))
	n.Connect(s1, s2, link.Config{
		RateBps:    20_000_000,
		Delay:      50 * sim.Microsecond,
		QueueBytes: 8_000, // ~5 packets
	})
	n.ComputeRoutes()

	transport.NewTCPSink(n.Hosts[1], 8000, 1)
	f := transport.NewTCPFlow(n.Hosts[0], h2.ID(), 5000, 8000, 1440)
	f.SetMessage(400_000)
	done := false
	f.OnComplete = func() { done = true }
	f.Start()
	n.Eng.RunUntil(20 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete under loss")
	}
	if f.Retransmits == 0 {
		t.Error("expected retransmissions with a 5-packet queue")
	}
}

func TestDelayedAckReducesOverhead(t *testing.T) {
	run := func(ackEvery int) (dataBytes, ackBytes uint64) {
		n, hs := pair(t, 100)
		sink := transport.NewTCPSink(n.Hosts[1], 8000, ackEvery)
		f := transport.NewTCPFlow(n.Hosts[0], hs.h2.ID(), 5000, 8000, 1440)
		f.SetMessage(1_000_000)
		f.Start()
		n.Eng.RunUntil(10 * sim.Second)
		return sink.Bytes, sink.AckBytes
	}
	d1, a1 := run(1)
	d2, a2 := run(2)
	o1 := float64(a1) / float64(d1)
	o2 := float64(a2) / float64(d2)
	// Per-packet ACKs: 64/1494 = ~4.3%; delayed: ~2.2%. The paper's TCP
	// overhead band is 0.8-2.4% — delayed ACKs land in it.
	if o2 >= o1 {
		t.Errorf("delayed acks increased overhead: %.3f vs %.3f", o2, o1)
	}
	if o2 < 0.008 || o2 > 0.035 {
		t.Errorf("delayed-ack overhead %.4f outside plausible band", o2)
	}
	_ = d2
}

func TestBurstSender(t *testing.T) {
	n := topo.New(1)
	s1 := n.AddSwitch(4)
	h1, h2 := n.AddHost(), n.AddHost()
	n.Connect(h1, s1, topo.HostLink(1000))
	n.Connect(h2, s1, topo.HostLink(1000))
	n.ComputeRoutes()
	sink := transport.NewSink(n.Hosts[1], 7000, link.ProtoUDP)
	sent := transport.SendBurst(n.Hosts[0], h2.ID(), 1, 7000, 10_000, 1440)
	if sent != 7 {
		t.Errorf("burst packets = %d, want 7", sent)
	}
	n.Eng.Run()
	if sink.Packets != 7 {
		t.Errorf("delivered %d packets", sink.Packets)
	}
}
