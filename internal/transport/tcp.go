package transport

import (
	"math/rand"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
)

// TCPFlow is a compact TCP-like transport with packet-granular sequence
// numbers: slow start, AIMD congestion avoidance, duplicate-ACK fast
// retransmit and a coarse RTO. It is deliberately simple — the experiments
// need TCP's *control-overhead and bandwidth-sharing shape*, not its every
// detail.
type TCPFlow struct {
	h     *host.Host
	dst   link.NodeID
	sport uint16
	dport uint16

	MSS int // payload bytes per data packet

	cwnd     float64
	ssthresh float64

	base     uint32 // lowest unacked sequence
	nextSeq  uint32 // next sequence to send
	total    uint32 // packets to send; 0 = unbounded (long-lived flow)
	dupacks  int
	finished bool

	// NewReno-style recovery: while base < recover, every partial ACK
	// retransmits the next hole immediately instead of stalling for an RTO
	// per lost packet (which starves flows under burst loss).
	recover    uint32
	inRecovery bool

	srtt     sim.Time
	rto      sim.Time
	rtoGen   int
	sendTime map[uint32]sim.Time
	// sendQ holds packets whose paced transmission is scheduled but not yet
	// fired. nextSendAt is monotone per flow, so the queue is strictly FIFO
	// and the send event (tcpSendArm) just pops the head — no closure per
	// data packet.
	sendQ link.Ring
	// nextSendAt paces transmissions with a small random jitter. A perfectly
	// deterministic simulator otherwise phase-locks drop-tail queues and
	// starves one of two synchronized flows — an artifact real NIC/OS noise
	// prevents. The jitter draws from the flow's own RNG (seeded from its
	// 4-tuple), not the engine's, so TCP behavior is identical at any
	// topology shard count — engine RNG streams are per shard.
	nextSendAt sim.Time
	jitter     *rand.Rand

	// DelayedAckEvery mirrors receiver behavior for overhead accounting
	// (set on the receiving sink, recorded here for symmetric config).
	OnComplete func()

	// Counters for the §2.2-style overhead analysis.
	TxDataPkts  uint64
	TxDataBytes uint64
	Retransmits uint64
}

// NewTCPFlow creates a sender toward dst:dport. Size the transfer with
// SetMessage, or leave unbounded for a long-lived flow.
func NewTCPFlow(h *host.Host, dst link.NodeID, sport, dport uint16, mss int) *TCPFlow {
	// 64-bit seed from two independently tagged 32-bit hashes of the
	// 4-tuple: a single 32-bit hash invites birthday collisions at ~10k
	// flows, and two flows with equal jitter streams can phase-lock on a
	// shared queue — the artifact the jitter exists to prevent.
	key := link.FlowKey{Src: h.ID(), Dst: dst, SrcPort: sport, DstPort: dport, Proto: link.ProtoTCP}
	seed := int64(uint64(key.Hash(0))<<32 | uint64(key.Hash(1)))
	return &TCPFlow{
		h: h, dst: dst, sport: sport, dport: dport,
		MSS:      mss,
		cwnd:     2,
		ssthresh: 64,
		rto:      20 * sim.Millisecond,
		sendTime: make(map[uint32]sim.Time),
		jitter:   rand.New(rand.NewSource(seed)),
	}
}

// SetMessage bounds the transfer to msgBytes; OnComplete fires when fully
// acknowledged.
func (f *TCPFlow) SetMessage(msgBytes int) {
	pkts := (msgBytes + f.MSS - 1) / f.MSS
	if pkts < 1 {
		pkts = 1
	}
	f.total = uint32(pkts)
}

// tcpSendArm and tcpRTOArm give TCPFlow two extra sim.Handler identities —
// distinct method sets on the same underlying struct — so paced sends and
// retransmission timers schedule allocation-free typed events instead of
// per-call closures.
type tcpSendArm TCPFlow

// Handle fires one paced transmission: the head of the flow's send queue.
func (a *tcpSendArm) Handle(uint64) {
	f := (*TCPFlow)(a)
	if p := f.sendQ.Pop(); p != nil {
		f.h.Send(p)
	}
}

type tcpRTOArm TCPFlow

// Handle fires a retransmission timeout; arg is the arming generation.
func (a *tcpRTOArm) Handle(arg uint64) { (*TCPFlow)(a).onRTO(int(arg)) }

// Start opens the flow: the sender binds its ACK port and fires the window.
func (f *TCPFlow) Start() {
	f.h.Bind(f.sport, link.ProtoTCP, func(p *link.Packet) {
		f.onAck(p)
		p.Release() // ACKs terminate here
	})
	f.pump()
	f.armRTO()
}

// Done reports whether a bounded transfer has fully completed.
func (f *TCPFlow) Done() bool { return f.finished }

// Cwnd returns the current congestion window in packets.
func (f *TCPFlow) Cwnd() float64 { return f.cwnd }

// pump transmits while the window allows.
func (f *TCPFlow) pump() {
	for float64(f.nextSeq-f.base) < f.cwnd {
		if f.total != 0 && f.nextSeq >= f.total {
			return
		}
		f.sendData(f.nextSeq, true)
		f.nextSeq++
	}
}

func (f *TCPFlow) sendData(seq uint32, fresh bool) {
	p := f.h.NewPacket(f.dst, f.sport, f.dport, link.ProtoTCP, f.MSS+HeaderBytes)
	p.Seq = seq
	eng := f.h.Engine()
	at := eng.Now()
	if f.nextSendAt > at {
		at = f.nextSendAt
	}
	at += sim.Time(f.jitter.Int63n(int64(4 * sim.Microsecond)))
	f.nextSendAt = at // monotone per flow: no intra-flow reordering
	f.sendQ.Push(p)
	eng.Schedule(at, (*tcpSendArm)(f), 0)
	f.TxDataPkts++
	f.TxDataBytes += uint64(p.Size)
	if fresh {
		f.sendTime[seq] = at
	} else {
		delete(f.sendTime, seq) // Karn: no RTT sample from retransmits
		f.Retransmits++
	}
}

// onAck processes a cumulative acknowledgment.
func (f *TCPFlow) onAck(p *link.Packet) {
	if f.finished || p.TFlags&link.TFlagACK == 0 {
		return
	}
	ack := p.Ack
	switch {
	case ack > f.base:
		// RTT sample from the newest acked fresh packet.
		if t0, ok := f.sendTime[ack-1]; ok {
			f.sampleRTT(f.h.Engine().Now() - t0)
		}
		for s := f.base; s < ack; s++ {
			delete(f.sendTime, s)
		}
		acked := float64(ack - f.base)
		f.base = ack
		f.dupacks = 0
		if f.inRecovery {
			if f.base >= f.recover {
				f.inRecovery = false
			} else {
				// Partial ACK: the next hole is lost too; resend it now.
				f.sendData(f.base, false)
			}
		}
		if f.cwnd < f.ssthresh {
			f.cwnd += acked // slow start
		} else {
			f.cwnd += acked / f.cwnd // congestion avoidance
		}
		f.armRTO()
		if f.total != 0 && f.base >= f.total {
			f.finished = true
			if f.OnComplete != nil {
				f.OnComplete()
			}
			return
		}
		f.pump()

	case ack == f.base:
		f.dupacks++
		if f.dupacks == 3 && !f.inRecovery {
			// Fast retransmit + multiplicative decrease.
			f.ssthresh = f.cwnd / 2
			if f.ssthresh < 2 {
				f.ssthresh = 2
			}
			f.cwnd = f.ssthresh
			f.recover = f.nextSeq
			f.inRecovery = true
			f.sendData(f.base, false)
			f.armRTO()
		}
	}
}

func (f *TCPFlow) sampleRTT(s sim.Time) {
	if f.srtt == 0 {
		f.srtt = s
	} else {
		f.srtt = (7*f.srtt + s) / 8
	}
	f.rto = 2 * f.srtt
	if f.rto < 5*sim.Millisecond {
		f.rto = 5 * sim.Millisecond
	}
	if f.rto > 200*sim.Millisecond {
		f.rto = 200 * sim.Millisecond
	}
}

func (f *TCPFlow) armRTO() {
	f.rtoGen++
	f.h.Engine().ScheduleAfter(f.rto, (*tcpRTOArm)(f), uint64(f.rtoGen))
}

// onRTO handles a retransmission timer firing for arming generation gen.
func (f *TCPFlow) onRTO(gen int) {
	if f.finished || gen != f.rtoGen {
		return
	}
	if f.base == f.nextSeq {
		// Nothing outstanding; idle.
		return
	}
	// Timeout: collapse to slow start and resend the base; partial
	// ACKs then walk the remaining holes without further timeouts.
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < 2 {
		f.ssthresh = 2
	}
	f.cwnd = 1
	f.dupacks = 0
	f.recover = f.nextSeq
	f.inRecovery = true
	f.sendData(f.base, false)
	f.armRTO()
}

// TCPSink is the receiver: it reassembles in-order delivery and returns
// cumulative ACKs (optionally delayed — one ACK per AckEvery data packets,
// the standard delayed-ACK overhead reduction).
type TCPSink struct {
	h        *host.Host
	port     uint16
	AckEvery int // 1 = every packet; 2 = RFC 1122 delayed ACKs

	rcvNxt   uint32
	ooo      map[uint32]bool
	unacked  int
	Bytes    uint64
	Packets  uint64
	TxAcks   uint64
	AckBytes uint64
}

// NewTCPSink binds a receiver at the host.
func NewTCPSink(h *host.Host, port uint16, ackEvery int) *TCPSink {
	if ackEvery < 1 {
		ackEvery = 1
	}
	s := &TCPSink{h: h, port: port, AckEvery: ackEvery, ooo: make(map[uint32]bool)}
	h.Bind(port, link.ProtoTCP, s.onData)
	return s
}

func (s *TCPSink) onData(p *link.Packet) {
	s.Bytes += uint64(p.Size)
	s.Packets++
	if p.Seq == s.rcvNxt {
		s.rcvNxt++
		for s.ooo[s.rcvNxt] {
			delete(s.ooo, s.rcvNxt)
			s.rcvNxt++
		}
	} else if p.Seq > s.rcvNxt {
		s.ooo[p.Seq] = true
	}
	s.unacked++
	// Ack immediately on gaps (dupacks drive fast retransmit); otherwise
	// honor the delayed-ack cadence.
	if p.Seq != s.rcvNxt-1 || s.unacked >= s.AckEvery {
		s.sendAck(p)
	}
	p.Release() // data packets terminate at the sink
}

func (s *TCPSink) sendAck(data *link.Packet) {
	s.unacked = 0
	ack := s.h.NewPacket(data.Flow.Src, s.port, data.Flow.SrcPort, link.ProtoTCP, AckBytes)
	ack.Ack = s.rcvNxt
	ack.TFlags = link.TFlagACK
	s.h.Send(ack)
	s.TxAcks++
	s.AckBytes += uint64(ack.Size)
}
