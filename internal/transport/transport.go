// Package transport provides the simulator's traffic sources: a rate-limited
// UDP sender (the paper's RCP* flows are "basically rate-limited UDP
// streams"), a burst sender for the all-to-all message workload of Figure 1,
// and a compact TCP-like AIMD transport (slow start, additive increase,
// duplicate-ACK fast retransmit, RTO) used as the congestion-control
// baseline when the paper compares TPP overheads against TCP (§2.2, §6.2).
package transport

import (
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
)

// HeaderBytes approximates Ethernet+IP+transport framing on data packets.
const HeaderBytes = 54

// AckBytes is the wire size of a bare ACK (minimum Ethernet frame).
const AckBytes = 64

// UDPFlow is a rate-limited constant-bit-rate sender.
type UDPFlow struct {
	h       *host.Host
	dst     link.NodeID
	sport   uint16
	dport   uint16
	PktSize int // wire bytes per packet
	rateBps int64
	running bool
	gen     int
	TxBytes uint64
	TxPkts  uint64
	// Tagger, when set, stamps each outgoing packet before transmission —
	// how a CONGA* balancer applies its flowlet path decision.
	Tagger func(p *link.Packet)
}

// NewUDPFlow creates a CBR flow; call SetRateBps then Start.
func NewUDPFlow(h *host.Host, dst link.NodeID, sport, dport uint16, pktSize int) *UDPFlow {
	return &UDPFlow{h: h, dst: dst, sport: sport, dport: dport, PktSize: pktSize}
}

// SetRateBps adjusts the sending rate; it takes effect from the next packet.
func (f *UDPFlow) SetRateBps(r int64) { f.rateBps = r }

// RateBps returns the current rate.
func (f *UDPFlow) RateBps() int64 { return f.rateBps }

// Start begins transmission.
func (f *UDPFlow) Start() {
	if f.running {
		return
	}
	f.running = true
	f.gen++
	f.Handle(uint64(f.gen))
}

// Stop halts transmission.
func (f *UDPFlow) Stop() { f.running = false; f.gen++ }

// Handle implements sim.Handler: one step of the pacing loop. The flow is
// its own resident event (arg carries the start generation), so a running
// CBR flow schedules and sends with zero allocations per packet.
func (f *UDPFlow) Handle(arg uint64) {
	if !f.running || int(arg) != f.gen {
		return
	}
	eng := f.h.Engine()
	if f.rateBps <= 0 {
		// Idle: poll again shortly for a rate change.
		eng.ScheduleAfter(sim.Millisecond, f, arg)
		return
	}
	p := f.h.NewPacket(f.dst, f.sport, f.dport, link.ProtoUDP, f.PktSize)
	if f.Tagger != nil {
		f.Tagger(p)
	}
	f.h.Send(p)
	f.TxBytes += uint64(f.PktSize)
	f.TxPkts++
	gap := sim.Time(int64(f.PktSize) * 8 * int64(sim.Second) / f.rateBps)
	if gap < 1 {
		gap = 1
	}
	eng.ScheduleAfter(gap, f, arg)
}

// Sink counts received bytes/packets on a port — the goodput meter. It is a
// terminal consumer: pooled packets are recycled after the OnPacket hook, so
// OnPacket must copy anything it keeps (see link.Pool ownership rules).
type Sink struct {
	Bytes   uint64
	Packets uint64
	// OnPacket, when set, observes each delivery (it must not retain p).
	OnPacket func(p *link.Packet)
}

// NewSink binds a counting sink at the host.
func NewSink(h *host.Host, port uint16, proto uint8) *Sink {
	s := &Sink{}
	h.Bind(port, proto, func(p *link.Packet) {
		s.Bytes += uint64(p.Size)
		s.Packets++
		if s.OnPacket != nil {
			s.OnPacket(p)
		}
		p.Release()
	})
	return s
}

// SendBurst transmits a message as back-to-back packets (no congestion
// control) — the 10 kB all-to-all messages of §2.1 whose collisions create
// the micro-bursts the TPPs observe.
func SendBurst(h *host.Host, dst link.NodeID, sport, dport uint16, msgBytes, pktSize int) int {
	n := 0
	for sent := 0; sent < msgBytes; sent += pktSize {
		sz := pktSize
		if msgBytes-sent < sz {
			sz = msgBytes - sent
		}
		p := h.NewPacket(dst, sport, dport, link.ProtoUDP, sz+HeaderBytes)
		h.Send(p)
		n++
	}
	return n
}
