// Package hwmodel is the hardware feasibility model of §6.1: per-stage TCPU
// latency on the NetFPGA prototype and on a 1 GHz merchant ASIC, the
// worst-case pipeline cost and stall buffering it implies, the die-area
// scaling argument derived from Bosshart et al.'s RMT data, and the NetFPGA
// resource-utilization table. The paper's hardware evaluation is a small set
// of measured constants plus arithmetic over them; this package encodes the
// constants and performs the arithmetic, so Tables 3 and 4 and the derived
// claims regenerate as model outputs.
package hwmodel

import (
	"fmt"
	"strings"

	"minions/internal/core"
)

// Platform selects the latency model.
type Platform int

const (
	// NetFPGA is the paper's 160 MHz 4-port prototype.
	NetFPGA Platform = iota
	// ASIC is a commercial 1 GHz switching chip (per §6.1's designer
	// communications: single-port SRAMs, 2-5 cycle accesses).
	ASIC
)

// String names the platform.
func (p Platform) String() string {
	if p == ASIC {
		return "ASIC"
	}
	return "NetFPGA"
}

// CycleCosts are per-task cycle counts (Table 3 rows).
type CycleCosts struct {
	Parse       int // "Parsing"
	MemAccess   int // "Memory access" (per read or write)
	CStoreExec  int // "Instr. Exec.: CSTORE" (excluding operand accesses)
	OtherExec   int // "Instr. Exec.: (the rest)"
	Rewrite     int // "Packet rewrite"
	ClockGHz    float64
	WorstPerOp  int // worst-case cycles for one load/store incl. memory
	WorstCStore int // worst-case cycles for one CSTORE incl. memory
}

// Costs returns the Table 3 constants for a platform.
func Costs(p Platform) CycleCosts {
	switch p {
	case NetFPGA:
		// §6.1: block RAM read/write is 1 cycle; parsing, execution and
		// rewrite each complete within a cycle; CSTORE takes 1 cycle to
		// execute; measured total per-stage latency: exactly 2 cycles.
		return CycleCosts{
			Parse: 1, MemAccess: 1, CStoreExec: 1, OtherExec: 1, Rewrite: 1,
			ClockGHz:    0.160,
			WorstPerOp:  1 + 1, // access + execute
			WorstCStore: 1 + 1 + 1,
		}
	default:
		// §6.1: "1GHz ASIC chips in the market typically use single-port
		// SRAMs ... 2-5 cycle latency for every operation": each
		// load/store adds up to 5 cycles, a CSTORE up to 10 (read+write).
		return CycleCosts{
			Parse: 1, MemAccess: 5, CStoreExec: 10, OtherExec: 1, Rewrite: 1,
			ClockGHz:    1.0,
			WorstPerOp:  5,
			WorstCStore: 10,
		}
	}
}

// InstructionCycles returns the worst-case added cycles for one instruction.
func InstructionCycles(p Platform, op core.Opcode) int {
	c := Costs(p)
	switch op {
	case core.OpCSTORE:
		return c.WorstCStore
	case core.OpNOP, core.OpHALT:
		return 1
	default:
		return c.WorstPerOp
	}
}

// WorstCaseTPPNanos returns the worst-case latency a TPP of n instructions
// adds to the pipeline: §6.1's "in the worst case, if every instruction is a
// CSTORE, a TPP can add a maximum of 50ns" for n = 5 on the ASIC.
func WorstCaseTPPNanos(p Platform, n int) float64 {
	if n > core.MaxInsns {
		n = core.MaxInsns
	}
	c := Costs(p)
	cycles := n * c.WorstCStore
	return float64(cycles) / c.ClockGHz
}

// StallBufferBytes returns the buffering required to absorb the worst-case
// TPP stall at an aggregate switching rate: §6.1's "50ns worth of buffering
// (at 1Tb/s, this is 6.25kB for the entire switch)".
func StallBufferBytes(stallNanos float64, aggregateBps float64) float64 {
	return stallNanos * 1e-9 * aggregateBps / 8
}

// Table3 renders the per-stage latency summary like the paper's Table 3.
func Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-12s %s\n", "Task", "NetFPGA", "ASICs")
	row := func(name string, fn func(CycleCosts) string) {
		fmt.Fprintf(&b, "%-28s %-12s %s\n", name, fn(Costs(NetFPGA)), fn(Costs(ASIC)))
	}
	row("Parsing", func(c CycleCosts) string { return cyc(c.Parse) })
	row("Memory access", func(c CycleCosts) string {
		if c.MemAccess == 5 {
			return "2-5 cycles"
		}
		return cyc(c.MemAccess)
	})
	row("Instr. Exec.: CSTORE", func(c CycleCosts) string { return cyc(c.CStoreExec) })
	row("Instr. Exec.: (the rest)", func(c CycleCosts) string { return cyc(c.OtherExec) })
	row("Packet rewrite", func(c CycleCosts) string { return cyc(c.Rewrite) })
	fmt.Fprintf(&b, "%-28s %-12s %s\n", "Total per-stage",
		"2-3 cycles", "50-100 cycles (200-500ns / 4-5 stages)")
	return b.String()
}

func cyc(n int) string {
	if n <= 1 {
		return "<= 1 cycle"
	}
	return fmt.Sprintf("%d cycles", n)
}

// Resource is one NetFPGA utilization row (Table 4).
type Resource struct {
	Name   string
	Router float64 // reference router, thousands of units
	TCPU   float64 // additional units for TPP support, thousands
}

// ExtraPct returns the percentage increase over the reference router.
func (r Resource) ExtraPct() float64 { return r.TCPU / r.Router * 100 }

// NetFPGAResources returns the measured Table 4 rows.
func NetFPGAResources() []Resource {
	return []Resource{
		{Name: "Slices", Router: 26.8, TCPU: 5.8},
		{Name: "Slice registers", Router: 64.7, TCPU: 14.0},
		{Name: "LUTs", Router: 69.1, TCPU: 20.8},
		{Name: "LUT-flip flop pairs", Router: 88.8, TCPU: 21.8},
	}
}

// Table4 renders the resource table with computed percentages.
func Table4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %8s\n", "Resource", "Router", "+TCPU", "%-extra")
	for _, r := range NetFPGAResources() {
		fmt.Fprintf(&b, "%-22s %7.1fK %7.1fK %7.1f%%\n", r.Name, r.Router, r.TCPU, r.ExtraPct())
	}
	return b.String()
}

// AreaModel is the §6.1 die-area argument built on Bosshart et al. [9]:
// 7000 RMT-style processing units cost <7% of die area, so area scales at
// ~0.001%/unit; a TPP deployment needs one execution unit per instruction
// per stage.
type AreaModel struct {
	RefUnits   int     // 7000
	RefAreaPct float64 // 7.0
}

// DefaultAreaModel returns the published calibration.
func DefaultAreaModel() AreaModel { return AreaModel{RefUnits: 7000, RefAreaPct: 7.0} }

// TCPUs returns the execution units needed: instructions/packet x stages.
func (m AreaModel) TCPUs(insns, stages int) int { return insns * stages }

// AreaPct estimates the die-area percentage for the given TCPU count.
func (m AreaModel) AreaPct(tcpus int) float64 {
	return float64(tcpus) / float64(m.RefUnits) * m.RefAreaPct
}

// PaperAreaPct reproduces the §6.1 claim: 5 instructions x 64 stages = 320
// TCPUs => 0.32% of die area.
func (m AreaModel) PaperAreaPct() float64 {
	return m.AreaPct(m.TCPUs(core.MaxInsns, 64))
}

// LatencyContext quantifies §6.1's "at most 10-25% extra latency": the
// worst-case TPP cost against the unloaded ingress-egress latency of
// commercial ASICs (200-500ns).
type LatencyContext struct {
	WorstTPPNanos   float64
	FastestASICNano float64 // Intel Fulcrum-class: ~200ns
	TypicalASICNano float64 // Arista 7100-class: ~500ns
}

// DefaultLatencyContext evaluates the model at the paper's parameters.
func DefaultLatencyContext() LatencyContext {
	return LatencyContext{
		WorstTPPNanos:   WorstCaseTPPNanos(ASIC, core.MaxInsns),
		FastestASICNano: 200,
		TypicalASICNano: 500,
	}
}

// ExtraLatencyPctRange returns the (max, min) percentage overhead.
func (l LatencyContext) ExtraLatencyPctRange() (fastest, typical float64) {
	return l.WorstTPPNanos / l.FastestASICNano * 100,
		l.WorstTPPNanos / l.TypicalASICNano * 100
}
