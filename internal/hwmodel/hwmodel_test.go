package hwmodel_test

import (
	"math"
	"strings"
	"testing"

	"minions/internal/core"
	"minions/internal/hwmodel"
)

func TestWorstCaseASICLatency(t *testing.T) {
	// §6.1: "in the worst case, if every instruction is a CSTORE, a TPP can
	// add a maximum of 50ns latency to the pipeline."
	got := hwmodel.WorstCaseTPPNanos(hwmodel.ASIC, 5)
	if got != 50 {
		t.Errorf("worst-case ASIC TPP latency = %v ns, want 50", got)
	}
	// More than 5 instructions is clamped: the interface forbids them.
	if hwmodel.WorstCaseTPPNanos(hwmodel.ASIC, 99) != 50 {
		t.Error("instruction clamp missing")
	}
}

func TestStallBuffering(t *testing.T) {
	// §6.1: "we can add 50ns worth of buffering (at 1Tb/s, this is 6.25kB
	// for the entire switch)".
	got := hwmodel.StallBufferBytes(50, 1e12)
	if math.Abs(got-6250) > 1e-6 {
		t.Errorf("stall buffer = %v bytes, want 6250", got)
	}
}

func TestNetFPGAPerStage(t *testing.T) {
	// §6.1: total per-stage latency on the NetFPGA "was exactly 2 cycles";
	// CSTORE takes one extra.
	c := hwmodel.Costs(hwmodel.NetFPGA)
	if c.WorstPerOp != 2 {
		t.Errorf("NetFPGA per-op = %d cycles, want 2", c.WorstPerOp)
	}
	if c.WorstCStore != 3 {
		t.Errorf("NetFPGA CSTORE = %d cycles, want 3", c.WorstCStore)
	}
}

func TestInstructionCycles(t *testing.T) {
	if hwmodel.InstructionCycles(hwmodel.ASIC, core.OpCSTORE) != 10 {
		t.Error("ASIC CSTORE should cost 10 cycles")
	}
	if hwmodel.InstructionCycles(hwmodel.ASIC, core.OpLOAD) != 5 {
		t.Error("ASIC LOAD should cost 5 cycles")
	}
	if hwmodel.InstructionCycles(hwmodel.ASIC, core.OpNOP) != 1 {
		t.Error("NOP should cost 1 cycle")
	}
}

func TestTable4Percentages(t *testing.T) {
	// Table 4's published percentages: 21.6%, 21.6%, 30.1%, 24.5%.
	want := []float64{21.6, 21.6, 30.1, 24.5}
	rs := hwmodel.NetFPGAResources()
	if len(rs) != 4 {
		t.Fatalf("rows = %d", len(rs))
	}
	for i, r := range rs {
		if math.Abs(r.ExtraPct()-want[i]) > 0.35 {
			t.Errorf("%s: %.1f%%, want %.1f%%", r.Name, r.ExtraPct(), want[i])
		}
	}
}

func TestAreaModel(t *testing.T) {
	// §6.1: "We only need 5x64 = 320 TCPUs ... the area costs are not
	// substantial (0.32%)."
	m := hwmodel.DefaultAreaModel()
	if got := m.TCPUs(5, 64); got != 320 {
		t.Errorf("TCPUs = %d, want 320", got)
	}
	if got := m.PaperAreaPct(); math.Abs(got-0.32) > 1e-9 {
		t.Errorf("area = %.3f%%, want 0.32%%", got)
	}
}

func TestExtraLatencyRange(t *testing.T) {
	// §6.1: "the extra 50ns worst-case cost per packet adds at most 10-25%
	// extra latency".
	fastest, typical := hwmodel.DefaultLatencyContext().ExtraLatencyPctRange()
	if math.Abs(fastest-25) > 1e-9 || math.Abs(typical-10) > 1e-9 {
		t.Errorf("latency overheads = %.1f%%/%.1f%%, want 25%%/10%%", fastest, typical)
	}
}

func TestTablesRender(t *testing.T) {
	t3 := hwmodel.Table3()
	for _, want := range []string{"Parsing", "CSTORE", "Packet rewrite", "Total per-stage"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, t3)
		}
	}
	t4 := hwmodel.Table4()
	for _, want := range []string{"Slices", "LUTs", "21.6", "30.1"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, t4)
		}
	}
}

func TestPlatformString(t *testing.T) {
	if hwmodel.NetFPGA.String() != "NetFPGA" || hwmodel.ASIC.String() != "ASIC" {
		t.Error("platform names wrong")
	}
}
