// Package mem defines the unified memory-mapped address space through which
// tiny packet programs (TPPs) name switch state, exactly in the spirit of
// §3.3.1 of the paper: statistics scattered across a switch pipeline are
// exposed behind a single 16-bit virtual address space, partitioned into
// per-switch, per-port, per-queue, per-stage, per-flow-entry and per-packet
// namespaces. The package also implements the mnemonic syntax used by the
// paper's pseudo-assembly ("[Queue:QueueOccupancy]", "[Link#3:RX-Bytes]") and
// the segment-based access-control policy of §4.1.
package mem

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is a 16-bit virtual address into a switch's unified statistics space.
type Addr uint16

// Namespace identifies the top-level region an address belongs to.
type Namespace uint8

// Namespaces, one per paper statistics category (Table 2 and appendix
// Tables 6-8). Dynamic windows resolve against the packet being forwarded.
const (
	NSSwitch    Namespace = iota // per-ASIC globals
	NSLink                       // explicit per-port statistics blocks
	NSQueue                      // explicit per-port, per-queue blocks
	NSStage                      // per match-action stage (flow table) stats
	NSFlowEntry                  // matched-entry stats for the current packet
	NSDynamic                    // windows bound to the current packet
	NSVendor                     // platform-specific space (§8)
	NSInvalid
)

// String returns the mnemonic prefix for the namespace.
func (ns Namespace) String() string {
	switch ns {
	case NSSwitch:
		return "Switch"
	case NSLink:
		return "Link"
	case NSQueue:
		return "Queue"
	case NSStage:
		return "Stage"
	case NSFlowEntry:
		return "FlowEntry"
	case NSDynamic:
		return "Dynamic"
	case NSVendor:
		return "Vendor"
	}
	return "Invalid"
}

// Address-space layout. The top nibble selects the namespace; the layout is
// fixed so that a TPP compiled once runs on every switch in the network.
const (
	SwitchBase Addr = 0x0000 // 0x0000-0x0FFF: per-switch globals
	LinkBase   Addr = 0x1000 // 0x1000-0x1FFF: 64 ports x 64 registers
	QueueBase  Addr = 0x2000 // 0x2000-0x2FFF: 64 ports x 8 queues x 8 regs
	StageBase  Addr = 0x4000 // 0x4000-0x4FFF: 256 stages x 16 registers
	EntryBase  Addr = 0x5000 // 0x5000-0x5FFF: matched entry per stage
	DynBase    Addr = 0xB000 // 0xB000-0xB0FF: packet-bound dynamic windows
	VendorBase Addr = 0xF000 // 0xF000-0xFFFF: vendor-specific
)

// Per-port register block geometry.
const (
	LinkRegBits   = 6 // 64 registers per port
	LinkRegsPer   = 1 << LinkRegBits
	MaxPorts      = 64
	QueueRegBits  = 3 // 8 registers per queue
	QueueRegsPer  = 1 << QueueRegBits
	QueuesPerPort = 8
	StageRegBits  = 4 // 16 registers per stage
	StageRegsPer  = 1 << StageRegBits
	MaxStages     = 256
)

// Per-switch registers (namespace Switch, appendix Table 6).
const (
	SwSwitchID  Addr = 0x0000 // unique switch identifier
	SwVersion   Addr = 0x0001 // forwarding-state generation counter
	SwClockLo   Addr = 0x0002 // uptime, low 32 bits of cycles
	SwClockHi   Addr = 0x0003 // uptime, high 32 bits
	SwClockFreq Addr = 0x0004 // cycles per second
	SwNumPorts  Addr = 0x0005
	SwVendorID  Addr = 0x0006 // ASIC vendor identifier (§8)
)

// Per-port registers (namespace Link, offsets within a port block;
// appendix Table 6 "Per Port" + the AppSpecific registers of §2.2).
const (
	LinkID           Addr = 0 // global link identifier
	LinkRXBytes      Addr = 1 // receive stats block
	LinkRXPackets    Addr = 2
	LinkTXBytes      Addr = 3 // transmit stats block
	LinkTXPackets    Addr = 4
	LinkDropBytes    Addr = 5 // drop stats block
	LinkDropPackets  Addr = 6
	LinkQueuedBytes  Addr = 7 // bytes waiting to be transmitted
	LinkQueuedPkts   Addr = 8
	LinkRXUtil       Addr = 9  // permille of capacity, updated every ms
	LinkTXUtil       Addr = 10 // permille of capacity, updated every ms
	LinkStatus       Addr = 11 // up/down/maintenance bits
	LinkCapacityMbps Addr = 12
	LinkQueueSize    Addr = 13 // alias: occupancy in packets of queue 0
	// AppSpecific_0..7: software-managed registers allocated by TPP-CP.
	LinkAppSpecific0 Addr = 16
	LinkAppSpecific1 Addr = 17
	LinkAppSpecific2 Addr = 18
	LinkAppSpecific3 Addr = 19
	LinkAppSpecific4 Addr = 20
	LinkAppSpecific5 Addr = 21
	LinkAppSpecific6 Addr = 22
	LinkAppSpecific7 Addr = 23
)

// Per-queue registers (namespace Queue, offsets within a queue block).
const (
	QueueOccPackets   Addr = 0 // packets currently enqueued
	QueueOccBytes     Addr = 1
	QueueTXBytes      Addr = 2
	QueueTXPackets    Addr = 3
	QueueDropBytes    Addr = 4
	QueueDropPackets  Addr = 5
	QueueSchedWeight  Addr = 6 // scheduling configuration block
	QueueSchedQuantum Addr = 7
)

// Per-stage registers (namespace Stage, appendix Table 6 "Per Flow Table").
const (
	StageVersion     Addr = 0 // bumped on every flow update
	StageRefCount    Addr = 1 // active entries
	StageLookupPkts  Addr = 2
	StageLookupBytes Addr = 3
	StageMatchPkts   Addr = 4
	StageMatchBytes  Addr = 5
)

// Per-matched-entry registers (namespace FlowEntry, appendix Table 6).
const (
	EntryID          Addr = 0 // index of the matched entry
	EntryInsertClock Addr = 1
	EntryMatchPkts   Addr = 2
	EntryMatchBytes  Addr = 3
)

// Dynamic windows: registers bound to the packet currently being forwarded
// (§3.3.1 "per-packet" namespace; appendix Tables 7-8). The paper's example
// address 0xb000 for [Queue:QueueOccupancy] is preserved.
const (
	DynOutQueueBase Addr = 0xB000 // current output queue's Queue block
	DynOutLinkBase  Addr = 0xB040 // current output port's Link block
	DynInLinkBase   Addr = 0xB080 // input port's Link block
	DynPacketBase   Addr = 0xB0C0 // packet metadata proper
)

// Packet metadata registers (offsets within DynPacketBase; Tables 7-8).
const (
	PktInputPort    Addr = 0
	PktOutputPort   Addr = 1
	PktQueueID      Addr = 2
	PktMatchedEntry Addr = 3 // matched entry in the routing stage
	PktHopCount     Addr = 4 // hops traversed so far (from TPP header)
	PktHashValue    Addr = 5 // multipath hash chosen for this packet
	PktPathTag      Addr = 6 // path selector header field (VLAN-like)
	PktTTL          Addr = 7
	PktLenBytes     Addr = 8
	PktArrivalLo    Addr = 9 // ingress timestamp, low 32 bits (ns)
	PktArrivalHi    Addr = 10
	PktAltRoutes    Addr = 11 // number of alternate routes for the packet
)

// LinkAddr returns the explicit address of register reg on port p.
func LinkAddr(port int, reg Addr) Addr {
	return LinkBase | Addr(port)<<LinkRegBits | (reg & (LinkRegsPer - 1))
}

// QueueAddr returns the explicit address of register reg on queue q of port p.
func QueueAddr(port, queue int, reg Addr) Addr {
	return QueueBase | Addr(port)<<(QueueRegBits+3) | Addr(queue)<<QueueRegBits | (reg & (QueueRegsPer - 1))
}

// StageAddr returns the address of register reg of match-action stage s.
func StageAddr(stage int, reg Addr) Addr {
	return StageBase | Addr(stage)<<StageRegBits | (reg & (StageRegsPer - 1))
}

// EntryAddr returns the address of matched-entry register reg at stage s.
func EntryAddr(stage int, reg Addr) Addr {
	return EntryBase | Addr(stage)<<StageRegBits | (reg & (StageRegsPer - 1))
}

// Space returns the namespace an address falls in.
func (a Addr) Space() Namespace {
	switch {
	case a < LinkBase:
		return NSSwitch
	case a < QueueBase:
		return NSLink
	case a < 0x3000:
		return NSQueue
	case a >= StageBase && a < EntryBase:
		return NSStage
	case a >= EntryBase && a < 0x6000:
		return NSFlowEntry
	case a >= DynBase && a < DynBase+0x100:
		return NSDynamic
	case a >= VendorBase:
		return NSVendor
	}
	return NSInvalid
}

// LinkPort decomposes an explicit Link address into (port, register).
func (a Addr) LinkPort() (port int, reg Addr) {
	return int(a>>LinkRegBits) & (MaxPorts - 1), a & (LinkRegsPer - 1)
}

// QueuePort decomposes an explicit Queue address into (port, queue, register).
func (a Addr) QueuePort() (port, queue int, reg Addr) {
	return int(a>>(QueueRegBits+3)) & (MaxPorts - 1),
		int(a>>QueueRegBits) & (QueuesPerPort - 1),
		a & (QueueRegsPer - 1)
}

// StageIndex decomposes a Stage or FlowEntry address into (stage, register).
func (a Addr) StageIndex() (stage int, reg Addr) {
	return int(a>>StageRegBits) & (MaxStages - 1), a & (StageRegsPer - 1)
}

// String renders the address as its canonical mnemonic if known, else hex.
func (a Addr) String() string {
	if s, ok := Mnemonic(a); ok {
		return s
	}
	return fmt.Sprintf("0x%04x", uint16(a))
}

// registerNames per namespace, used by both Resolve and Mnemonic.
var switchRegs = map[string]Addr{
	"SwitchID": SwSwitchID, "ID": SwSwitchID,
	"Version":   SwVersion,
	"ClockLo":   SwClockLo,
	"ClockHi":   SwClockHi,
	"ClockFreq": SwClockFreq,
	"NumPorts":  SwNumPorts,
	"VendorID":  SwVendorID,
}

var linkRegs = map[string]Addr{
	"ID": LinkID, "LinkID": LinkID,
	"RX-Bytes": LinkRXBytes, "RXBytes": LinkRXBytes,
	"RX-Packets": LinkRXPackets, "RXPackets": LinkRXPackets,
	"TX-Bytes": LinkTXBytes, "TXBytes": LinkTXBytes,
	"TX-Packets": LinkTXPackets, "TXPackets": LinkTXPackets,
	"Drop-Bytes": LinkDropBytes, "DropBytes": LinkDropBytes,
	"Drop-Packets": LinkDropPackets, "DropPackets": LinkDropPackets,
	"Queued-Bytes": LinkQueuedBytes, "QueuedBytes": LinkQueuedBytes,
	"Queued-Packets": LinkQueuedPkts, "QueuedPackets": LinkQueuedPkts,
	"RX-Utilization": LinkRXUtil, "RXUtilization": LinkRXUtil,
	"TX-Utilization": LinkTXUtil, "TXUtilization": LinkTXUtil,
	"Status":        LinkStatus,
	"CapacityMbps":  LinkCapacityMbps,
	"QueueSize":     LinkQueueSize,
	"AppSpecific_0": LinkAppSpecific0, "AppSpecific_1": LinkAppSpecific1,
	"AppSpecific_2": LinkAppSpecific2, "AppSpecific_3": LinkAppSpecific3,
	"AppSpecific_4": LinkAppSpecific4, "AppSpecific_5": LinkAppSpecific5,
	"AppSpecific_6": LinkAppSpecific6, "AppSpecific_7": LinkAppSpecific7,
}

var queueRegs = map[string]Addr{
	"QueueOccupancy": QueueOccPackets, "Occupancy": QueueOccPackets,
	"OccupancyBytes": QueueOccBytes,
	"TX-Bytes":       QueueTXBytes, "TXBytes": QueueTXBytes,
	"TX-Packets": QueueTXPackets, "TXPackets": QueueTXPackets,
	"Drop-Bytes": QueueDropBytes, "DropBytes": QueueDropBytes,
	"Drop-Packets": QueueDropPackets, "DropPackets": QueueDropPackets,
	"SchedWeight":  QueueSchedWeight,
	"SchedQuantum": QueueSchedQuantum,
}

var stageRegs = map[string]Addr{
	"Version":     StageVersion,
	"RefCount":    StageRefCount,
	"LookupPkts":  StageLookupPkts,
	"LookupBytes": StageLookupBytes,
	"MatchPkts":   StageMatchPkts,
	"MatchBytes":  StageMatchBytes,
}

var entryRegs = map[string]Addr{
	"ID":          EntryID,
	"InsertClock": EntryInsertClock,
	"MatchPkts":   EntryMatchPkts,
	"MatchBytes":  EntryMatchBytes,
}

var pktRegs = map[string]Addr{
	"InputPort":      PktInputPort,
	"OutputPort":     PktOutputPort,
	"QueueID":        PktQueueID,
	"MatchedEntryID": PktMatchedEntry, "MatchedEntry": PktMatchedEntry,
	"HopCount":  PktHopCount,
	"HashValue": PktHashValue,
	"PathTag":   PktPathTag,
	"TTL":       PktTTL,
	"LenBytes":  PktLenBytes,
	"ArrivalLo": PktArrivalLo,
	"ArrivalHi": PktArrivalHi,
	"AltRoutes": PktAltRoutes,
}

// Resolve maps a paper-style mnemonic like "Queue:QueueOccupancy",
// "Link:TX-Utilization", "Link#3:RX-Bytes", "Stage#1:Version" or
// "PacketMetadata:InputPort" to its virtual address. Namespaces without an
// explicit #index bind to the packet's current context via the dynamic
// windows, exactly as the paper's example programs assume.
func Resolve(name string) (Addr, error) {
	name = strings.TrimSpace(name)
	ns, reg, found := strings.Cut(name, ":")
	if !found {
		return 0, fmt.Errorf("mem: %q is not of the form Namespace:Register", name)
	}
	ns = strings.TrimSpace(ns)
	reg = strings.TrimSpace(reg)
	base, idxStr, hasIdx := strings.Cut(ns, "#")
	idx, idx2 := -1, -1
	if hasIdx {
		// Queue may carry a port.queue pair, e.g. Queue#3.1.
		a, b, dotted := strings.Cut(idxStr, ".")
		v, err := strconv.Atoi(a)
		if err != nil {
			return 0, fmt.Errorf("mem: bad index in %q: %v", name, err)
		}
		idx = v
		if dotted {
			v2, err := strconv.Atoi(b)
			if err != nil {
				return 0, fmt.Errorf("mem: bad queue index in %q: %v", name, err)
			}
			idx2 = v2
		}
	}
	lookup := func(m map[string]Addr) (Addr, error) {
		r, ok := m[reg]
		if !ok {
			return 0, fmt.Errorf("mem: unknown register %q in namespace %q", reg, base)
		}
		return r, nil
	}
	switch base {
	case "Switch":
		return lookup(switchRegs)
	case "Link", "Port":
		r, err := lookup(linkRegs)
		if err != nil {
			return 0, err
		}
		if idx >= 0 {
			if idx >= MaxPorts {
				return 0, fmt.Errorf("mem: port %d out of range", idx)
			}
			return LinkAddr(idx, r), nil
		}
		return DynOutLinkBase + r, nil
	case "InLink", "InPort":
		r, err := lookup(linkRegs)
		if err != nil {
			return 0, err
		}
		return DynInLinkBase + r, nil
	case "Queue":
		r, err := lookup(queueRegs)
		if err != nil {
			return 0, err
		}
		if idx >= 0 {
			q := 0
			if idx2 >= 0 {
				q = idx2
			}
			if idx >= MaxPorts || q >= QueuesPerPort {
				return 0, fmt.Errorf("mem: queue %d.%d out of range", idx, q)
			}
			return QueueAddr(idx, q, r), nil
		}
		return DynOutQueueBase + r, nil
	case "Stage":
		r, err := lookup(stageRegs)
		if err != nil {
			return 0, err
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= MaxStages {
			return 0, fmt.Errorf("mem: stage %d out of range", idx)
		}
		return StageAddr(idx, r), nil
	case "FlowEntry":
		r, err := lookup(entryRegs)
		if err != nil {
			return 0, err
		}
		if idx < 0 {
			idx = 0
		}
		return EntryAddr(idx, r), nil
	case "PacketMetadata", "Packet":
		r, err := lookup(pktRegs)
		if err != nil {
			return 0, err
		}
		return DynPacketBase + r, nil
	case "Vendor":
		if idx < 0 {
			return 0, fmt.Errorf("mem: Vendor requires an explicit #offset")
		}
		if idx >= 0x1000 {
			return 0, fmt.Errorf("mem: vendor offset %d out of range", idx)
		}
		return VendorBase + Addr(idx), nil
	}
	return 0, fmt.Errorf("mem: unknown namespace %q", base)
}

// MustResolve is Resolve for known-good compile-time mnemonics.
func MustResolve(name string) Addr {
	a, err := Resolve(name)
	if err != nil {
		panic(err)
	}
	return a
}

// reverse maps, built lazily from the forward tables for Mnemonic.
var (
	revSwitch = reverse(switchRegs, map[Addr]string{
		SwSwitchID: "SwitchID",
	})
	revLink = reverse(linkRegs, map[Addr]string{
		LinkID: "ID", LinkRXBytes: "RX-Bytes", LinkRXPackets: "RX-Packets",
		LinkTXBytes: "TX-Bytes", LinkTXPackets: "TX-Packets",
		LinkDropBytes: "Drop-Bytes", LinkDropPackets: "Drop-Packets",
		LinkQueuedBytes: "Queued-Bytes", LinkQueuedPkts: "Queued-Packets",
		LinkRXUtil: "RX-Utilization", LinkTXUtil: "TX-Utilization",
	})
	revQueue = reverse(queueRegs, map[Addr]string{
		QueueOccPackets: "QueueOccupancy",
	})
	revStage = reverse(stageRegs, nil)
	revEntry = reverse(entryRegs, nil)
	revPkt   = reverse(pktRegs, map[Addr]string{
		PktMatchedEntry: "MatchedEntryID",
	})
)

func reverse(m map[string]Addr, prefer map[Addr]string) map[Addr]string {
	out := make(map[Addr]string, len(m))
	for k, v := range m {
		if _, ok := out[v]; !ok {
			out[v] = k
		}
	}
	for a, s := range prefer {
		out[a] = s
	}
	return out
}

// Mnemonic renders an address back into its canonical paper-style name.
func Mnemonic(a Addr) (string, bool) {
	switch a.Space() {
	case NSSwitch:
		if s, ok := revSwitch[a]; ok {
			return "Switch:" + s, true
		}
	case NSLink:
		port, reg := a.LinkPort()
		if s, ok := revLink[reg]; ok {
			return fmt.Sprintf("Link#%d:%s", port, s), true
		}
	case NSQueue:
		port, q, reg := a.QueuePort()
		if s, ok := revQueue[reg]; ok {
			return fmt.Sprintf("Queue#%d.%d:%s", port, q, s), true
		}
	case NSStage:
		st, reg := a.StageIndex()
		if s, ok := revStage[reg]; ok {
			return fmt.Sprintf("Stage#%d:%s", st, s), true
		}
	case NSFlowEntry:
		st, reg := a.StageIndex()
		if s, ok := revEntry[reg]; ok {
			return fmt.Sprintf("FlowEntry#%d:%s", st, s), true
		}
	case NSDynamic:
		switch {
		case a >= DynPacketBase:
			if s, ok := revPkt[a-DynPacketBase]; ok {
				return "PacketMetadata:" + s, true
			}
		case a >= DynInLinkBase:
			if s, ok := revLink[a-DynInLinkBase]; ok {
				return "InLink:" + s, true
			}
		case a >= DynOutLinkBase:
			if s, ok := revLink[a-DynOutLinkBase]; ok {
				return "Link:" + s, true
			}
		default:
			if s, ok := revQueue[a-DynOutQueueBase]; ok {
				return "Queue:" + s, true
			}
		}
	case NSVendor:
		return fmt.Sprintf("Vendor#%d:", int(a-VendorBase)), true
	}
	return "", false
}
