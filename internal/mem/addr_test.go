package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestResolvePaperMnemonics(t *testing.T) {
	// Every mnemonic that appears in a program in the paper must resolve.
	cases := []struct {
		in   string
		want Addr
	}{
		{"Queue:QueueOccupancy", DynOutQueueBase + QueueOccPackets},
		{"Switch:SwitchID", SwSwitchID},
		{"Switch:ID", SwSwitchID},
		{"Switch:VendorID", SwVendorID},
		{"Link:QueueSize", DynOutLinkBase + LinkQueueSize},
		{"Link:RX-Utilization", DynOutLinkBase + LinkRXUtil},
		{"Link:TX-Utilization", DynOutLinkBase + LinkTXUtil},
		{"Link:RX-Bytes", DynOutLinkBase + LinkRXBytes},
		{"Link:TX-Bytes", DynOutLinkBase + LinkTXBytes},
		{"Link:AppSpecific_0", DynOutLinkBase + LinkAppSpecific0},
		{"Link:AppSpecific_1", DynOutLinkBase + LinkAppSpecific1},
		{"Link:ID", DynOutLinkBase + LinkID},
		{"PacketMetadata:MatchedEntryID", DynPacketBase + PktMatchedEntry},
		{"PacketMetadata:InputPort", DynPacketBase + PktInputPort},
		{"PacketMetadata:OutputPort", DynPacketBase + PktOutputPort},
	}
	for _, c := range cases {
		got, err := Resolve(c.in)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Resolve(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPaperExampleAddress(t *testing.T) {
	// §2: "the mnemonic [Queue:QueueOccupancy] could refer to an address
	// 0xb000". Our layout makes that exact assignment.
	if got := MustResolve("Queue:QueueOccupancy"); got != 0xb000 {
		t.Fatalf("[Queue:QueueOccupancy] = %#04x, want 0xb000", uint16(got))
	}
}

func TestResolveExplicitIndices(t *testing.T) {
	a, err := Resolve("Link#3:RX-Bytes")
	if err != nil {
		t.Fatal(err)
	}
	port, reg := a.LinkPort()
	if port != 3 || reg != LinkRXBytes {
		t.Fatalf("Link#3:RX-Bytes decomposed to port=%d reg=%d", port, reg)
	}
	a, err = Resolve("Queue#5.2:QueueOccupancy")
	if err != nil {
		t.Fatal(err)
	}
	p, q, reg := a.QueuePort()
	if p != 5 || q != 2 || reg != QueueOccPackets {
		t.Fatalf("Queue#5.2 decomposed to %d.%d reg=%d", p, q, reg)
	}
	a, err = Resolve("Stage#7:Version")
	if err != nil {
		t.Fatal(err)
	}
	st, sreg := a.StageIndex()
	if st != 7 || sreg != StageVersion {
		t.Fatalf("Stage#7:Version decomposed to stage=%d reg=%d", st, sreg)
	}
}

func TestResolveErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"QueueOccupancy",           // no namespace
		"Bogus:Thing",              // unknown namespace
		"Link:NoSuchRegister",      // unknown register
		"Link#99:RX-Bytes",         // port out of range
		"Queue#1.9:QueueOccupancy", // queue out of range
		"Stage#999:Version",        // stage out of range
		"Link#x:RX-Bytes",          // non-numeric index
		"Vendor:",                  // vendor without offset
	} {
		if _, err := Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestMnemonicRoundTrip(t *testing.T) {
	names := []string{
		"Switch:SwitchID", "Switch:Version", "Switch:ClockLo",
		"Link:QueueSize", "Link:TX-Utilization", "Link:AppSpecific_0",
		"Queue:QueueOccupancy",
		"PacketMetadata:InputPort", "PacketMetadata:OutputPort",
		"PacketMetadata:MatchedEntryID",
	}
	for _, n := range names {
		a := MustResolve(n)
		back, ok := Mnemonic(a)
		if !ok {
			t.Fatalf("Mnemonic(%v) not found for %q", a, n)
		}
		a2, err := Resolve(back)
		if err != nil {
			t.Fatalf("Resolve(Mnemonic(%q)=%q): %v", n, back, err)
		}
		if a2 != a {
			t.Errorf("round trip %q -> %v -> %q -> %v", n, a, back, a2)
		}
	}
}

func TestExplicitMnemonicRoundTrip(t *testing.T) {
	for port := 0; port < MaxPorts; port += 7 {
		a := LinkAddr(port, LinkTXBytes)
		s, ok := Mnemonic(a)
		if !ok || !strings.Contains(s, "#") {
			t.Fatalf("Mnemonic(%v) = %q, %v", a, s, ok)
		}
		if got := MustResolve(s); got != a {
			t.Errorf("round trip %v -> %q -> %v", a, s, got)
		}
	}
}

func TestSpaceClassification(t *testing.T) {
	cases := []struct {
		a    Addr
		want Namespace
	}{
		{SwSwitchID, NSSwitch},
		{LinkAddr(5, LinkTXBytes), NSLink},
		{QueueAddr(5, 1, QueueOccPackets), NSQueue},
		{StageAddr(2, StageVersion), NSStage},
		{EntryAddr(2, EntryMatchPkts), NSFlowEntry},
		{DynOutLinkBase + LinkTXUtil, NSDynamic},
		{DynPacketBase + PktInputPort, NSDynamic},
		{VendorBase + 12, NSVendor},
		{0x3500, NSInvalid},
		{0x7000, NSInvalid},
	}
	for _, c := range cases {
		if got := c.a.Space(); got != c.want {
			t.Errorf("Space(%#04x) = %v, want %v", uint16(c.a), got, c.want)
		}
	}
}

func TestLinkAddrDecomposeQuick(t *testing.T) {
	f := func(port uint8, reg uint8) bool {
		p := int(port) % MaxPorts
		r := Addr(reg) % LinkRegsPer
		a := LinkAddr(p, r)
		gp, gr := a.LinkPort()
		return gp == p && gr == r && a.Space() == NSLink
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueAddrDecomposeQuick(t *testing.T) {
	f := func(port, queue, reg uint8) bool {
		p := int(port) % MaxPorts
		q := int(queue) % QueuesPerPort
		r := Addr(reg) % QueueRegsPer
		a := QueueAddr(p, q, r)
		gp, gq, gr := a.QueuePort()
		return gp == p && gq == q && gr == r && a.Space() == NSQueue
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrString(t *testing.T) {
	if s := MustResolve("Queue:QueueOccupancy").String(); s != "Queue:QueueOccupancy" {
		t.Errorf("String() = %q", s)
	}
	if s := Addr(0x3abc).String(); s != "0x3abc" {
		t.Errorf("String() = %q", s)
	}
}
