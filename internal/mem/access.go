package mem

import (
	"fmt"
	"sort"
	"sync"
)

// Op is a memory operation class for access-control purposes.
type Op uint8

const (
	OpRead Op = 1 << iota
	OpWrite
)

// String returns "read", "write" or "read|write".
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRead | OpWrite:
		return "read|write"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Segment grants an application access to a contiguous address range,
// mirroring §4.1: "Each memory access policy is a tuple
// (appid, op, address_range)" — the analogue of an x86 GDT entry.
type Segment struct {
	AppID uint64
	Op    Op
	Start Addr // inclusive
	End   Addr // exclusive
}

// Contains reports whether the segment covers address a for operation op.
func (s Segment) Contains(appID uint64, op Op, a Addr) bool {
	return s.AppID == appID && s.Op&op == op && a >= s.Start && a < s.End
}

// Policy is the access-control table enforced by both TPP-CP (at install
// time, via static analysis) and switches (at execution time, for writes).
// The zero value denies all writes and permits all reads, the paper's
// defense-in-depth default ("the control plane needs the ability to disable
// write instructions entirely"; "in many settings, read-only access to most
// switch state is harmless").
type Policy struct {
	mu       sync.RWMutex
	segments []Segment
	// DenyAllWrites hard-disables STORE/CSTORE regardless of segments (§4.3).
	denyAllWrites bool
	// restrictReads, when true, requires a read segment for every read too.
	restrictReads bool
}

// NewPolicy returns an empty policy (reads open, writes closed).
func NewPolicy() *Policy { return &Policy{} }

// Grant adds a segment. Overlapping segments are permitted; access is granted
// if any segment covers the request.
func (p *Policy) Grant(seg Segment) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.segments = append(p.segments, seg)
}

// Revoke removes every segment for the application.
func (p *Policy) Revoke(appID uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.segments[:0]
	for _, s := range p.segments {
		if s.AppID != appID {
			kept = append(kept, s)
		}
	}
	p.segments = kept
}

// SetDenyAllWrites toggles the administrator kill switch for write
// instructions (§4.3).
func (p *Policy) SetDenyAllWrites(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.denyAllWrites = v
}

// SetRestrictReads makes reads require an explicit grant as well.
func (p *Policy) SetRestrictReads(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.restrictReads = v
}

// Allowed reports whether appID may perform op on address a.
func (p *Policy) Allowed(appID uint64, op Op, a Addr) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if op&OpWrite != 0 && p.denyAllWrites {
		return false
	}
	if op&OpRead != 0 && !p.restrictReads && op&OpWrite == 0 {
		return true
	}
	for _, s := range p.segments {
		if s.Contains(appID, op, a) {
			return true
		}
	}
	return false
}

// AllowedRange reports whether the whole range [start, end) is permitted.
func (p *Policy) AllowedRange(appID uint64, op Op, start, end Addr) bool {
	for a := start; a < end; a++ {
		if !p.Allowed(appID, op, a) {
			return false
		}
	}
	return true
}

// Segments returns a copy of the grant table, sorted for stable display.
func (p *Policy) Segments() []Segment {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := append([]Segment(nil), p.segments...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].AppID != out[j].AppID {
			return out[i].AppID < out[j].AppID
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Allocator hands out exclusive AppSpecific register addresses to
// applications, the way the paper's network control plane "allocates two
// memory addresses per link" for RCP. It allocates the same register index
// on every port so a single compiled TPP works network-wide.
type Allocator struct {
	mu   sync.Mutex
	used [8]uint64 // appID owning AppSpecific_i, 0 = free
}

// NewAllocator returns an allocator with all AppSpecific registers free.
func NewAllocator() *Allocator { return &Allocator{} }

// Alloc reserves n consecutive AppSpecific registers for appID and returns
// the index of the first one. It fails when fewer than n consecutive
// registers remain.
func (al *Allocator) Alloc(appID uint64, n int) (int, error) {
	if n <= 0 || n > len(al.used) {
		return 0, fmt.Errorf("mem: invalid allocation size %d", n)
	}
	al.mu.Lock()
	defer al.mu.Unlock()
	for i := 0; i+n <= len(al.used); i++ {
		free := true
		for j := i; j < i+n; j++ {
			if al.used[j] != 0 {
				free = false
				break
			}
		}
		if free {
			for j := i; j < i+n; j++ {
				al.used[j] = appID
			}
			return i, nil
		}
	}
	return 0, fmt.Errorf("mem: no run of %d free AppSpecific registers", n)
}

// Free releases every register owned by appID.
func (al *Allocator) Free(appID uint64) {
	al.mu.Lock()
	defer al.mu.Unlock()
	for i := range al.used {
		if al.used[i] == appID {
			al.used[i] = 0
		}
	}
}

// Owner returns the application owning AppSpecific register i (0 if free).
func (al *Allocator) Owner(i int) uint64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	if i < 0 || i >= len(al.used) {
		return 0
	}
	return al.used[i]
}
