package mem

import (
	"sync"
	"testing"
)

func TestPolicyDefaultReadsOpenWritesClosed(t *testing.T) {
	p := NewPolicy()
	a := MustResolve("Link:TX-Utilization")
	if !p.Allowed(1, OpRead, a) {
		t.Error("default policy should allow reads")
	}
	if p.Allowed(1, OpWrite, a) {
		t.Error("default policy should deny writes")
	}
}

func TestPolicyGrantWrite(t *testing.T) {
	p := NewPolicy()
	start := DynOutLinkBase + LinkAppSpecific0
	p.Grant(Segment{AppID: 42, Op: OpRead | OpWrite, Start: start, End: start + 2})
	if !p.Allowed(42, OpWrite, start) {
		t.Error("grant not honored at start")
	}
	if !p.Allowed(42, OpWrite, start+1) {
		t.Error("grant not honored at start+1")
	}
	if p.Allowed(42, OpWrite, start+2) {
		t.Error("end is exclusive")
	}
	if p.Allowed(7, OpWrite, start) {
		t.Error("grant leaked across app IDs")
	}
}

func TestPolicyDenyAllWritesOverridesGrants(t *testing.T) {
	p := NewPolicy()
	a := DynOutLinkBase + LinkAppSpecific0
	p.Grant(Segment{AppID: 1, Op: OpWrite, Start: a, End: a + 1})
	p.SetDenyAllWrites(true)
	if p.Allowed(1, OpWrite, a) {
		t.Error("kill switch must override segment grants (§4.3)")
	}
	p.SetDenyAllWrites(false)
	if !p.Allowed(1, OpWrite, a) {
		t.Error("kill switch should be reversible")
	}
}

func TestPolicyRestrictReads(t *testing.T) {
	p := NewPolicy()
	p.SetRestrictReads(true)
	a := MustResolve("Switch:SwitchID")
	if p.Allowed(1, OpRead, a) {
		t.Error("restricted reads require a segment")
	}
	p.Grant(Segment{AppID: 1, Op: OpRead, Start: 0, End: 0xFFFF})
	if !p.Allowed(1, OpRead, a) {
		t.Error("read grant not honored")
	}
}

func TestPolicyRevoke(t *testing.T) {
	p := NewPolicy()
	a := DynOutLinkBase + LinkAppSpecific0
	p.Grant(Segment{AppID: 9, Op: OpWrite, Start: a, End: a + 1})
	p.Grant(Segment{AppID: 8, Op: OpWrite, Start: a, End: a + 1})
	p.Revoke(9)
	if p.Allowed(9, OpWrite, a) {
		t.Error("revoked app still allowed")
	}
	if !p.Allowed(8, OpWrite, a) {
		t.Error("revoke removed the wrong app")
	}
}

func TestPolicyAllowedRange(t *testing.T) {
	p := NewPolicy()
	a := DynOutLinkBase + LinkAppSpecific0
	p.Grant(Segment{AppID: 1, Op: OpWrite, Start: a, End: a + 2})
	if !p.AllowedRange(1, OpWrite, a, a+2) {
		t.Error("range within grant denied")
	}
	if p.AllowedRange(1, OpWrite, a, a+3) {
		t.Error("range exceeding grant allowed")
	}
}

func TestPolicyConcurrentAccess(t *testing.T) {
	p := NewPolicy()
	a := DynOutLinkBase + LinkAppSpecific0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(id uint64) {
			defer wg.Done()
			p.Grant(Segment{AppID: id, Op: OpWrite, Start: a, End: a + 1})
		}(uint64(i + 1))
		go func(id uint64) {
			defer wg.Done()
			p.Allowed(id, OpWrite, a)
			p.Revoke(id)
		}(uint64(i + 1))
	}
	wg.Wait()
}

func TestAllocatorExclusive(t *testing.T) {
	al := NewAllocator()
	i0, err := al.Alloc(100, 2) // like RCP's two per-link words
	if err != nil {
		t.Fatal(err)
	}
	i1, err := al.Alloc(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if i0 == i1 {
		t.Fatalf("overlapping allocations: %d and %d", i0, i1)
	}
	if al.Owner(i0) != 100 || al.Owner(i0+1) != 100 {
		t.Error("ownership not recorded")
	}
	al.Free(100)
	if al.Owner(i0) != 0 {
		t.Error("free did not release")
	}
	if _, err := al.Alloc(300, 9); err == nil {
		t.Error("oversized allocation should fail")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator()
	for i := 0; i < 4; i++ {
		if _, err := al.Alloc(uint64(i+1), 2); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := al.Alloc(99, 1); err == nil {
		t.Error("expected exhaustion")
	}
	al.Free(2)
	if _, err := al.Alloc(99, 2); err != nil {
		t.Errorf("freed registers not reusable: %v", err)
	}
}

func TestSegmentString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("op strings wrong")
	}
	if (OpRead | OpWrite).String() != "read|write" {
		t.Error("combined op string wrong")
	}
}

func TestSegmentsSorted(t *testing.T) {
	p := NewPolicy()
	p.Grant(Segment{AppID: 2, Op: OpRead, Start: 10, End: 20})
	p.Grant(Segment{AppID: 1, Op: OpRead, Start: 30, End: 40})
	p.Grant(Segment{AppID: 1, Op: OpRead, Start: 5, End: 9})
	segs := p.Segments()
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	if segs[0].AppID != 1 || segs[0].Start != 5 || segs[2].AppID != 2 {
		t.Errorf("segments not sorted: %+v", segs)
	}
}
