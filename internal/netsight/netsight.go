// Package netsight refactors the NetSight troubleshooting platform onto the
// TPP interface (§2.3). A trusted per-host agent inserts
//
//	PUSH [Switch:ID]
//	PUSH [PacketMetadata:MatchedEntryID]
//	PUSH [PacketMetadata:InputPort]
//
// on (a subset of) packets; the receiving host reconstructs a *packet
// history* — "a record of the packet's path through the network and the
// switch forwarding state applied to the packet" — without the network ever
// creating extra packet copies. On top of the history store this package
// provides the paper's four applications: netshark (network-wide tcpdump
// with queries), ndb (interactive debugger with backtraces), netwatch
// (live policy checking) and loss localization via drop notifications.
package netsight

import (
	"fmt"
	"strings"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/device"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
)

// Program is the packet-history TPP of §2.3.
const Program = `
	PUSH [Switch:ID]
	PUSH [PacketMetadata:MatchedEntryID]
	PUSH [PacketMetadata:InputPort]
`

// WordsPerHop is the per-hop record size.
const WordsPerHop = 3

// DefaultHops is the paper's sizing example ("space for 10 hops").
const DefaultHops = 10

// HopRecord is one switch's forwarding decision for a packet.
type HopRecord struct {
	SwitchID  uint32
	EntryID   uint32 // matched flow entry (its version-carrying identity)
	InputPort uint32
}

// History is a packet history.
type History struct {
	At      sim.Time
	Flow    link.FlowKey
	PktID   uint64
	Hops    []HopRecord
	Dropped bool // true when reconstructed from a drop notification
	DropAt  uint32
}

// Path renders the history's switch path like "1>3>7".
func (h History) Path() string {
	var b strings.Builder
	for i, hop := range h.Hops {
		if i > 0 {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "%d", hop.SwitchID)
	}
	return b.String()
}

// Collector is the central service receiving histories from all hosts.
type Collector struct {
	histories []History
	// OnHistory, when set, observes each arrival (netwatch live mode).
	OnHistory func(History)
}

// Add appends a history.
func (c *Collector) Add(h History) {
	c.histories = append(c.histories, h)
	if c.OnHistory != nil {
		c.OnHistory(h)
	}
}

// Len returns the number of stored histories.
func (c *Collector) Len() int { return len(c.histories) }

// Query returns histories matching pred — the "SQL over stored traces"
// netshark/ndb interface.
func (c *Collector) Query(pred func(History) bool) []History {
	var out []History
	for _, h := range c.histories {
		if pred(h) {
			out = append(out, h)
		}
	}
	return out
}

// ByFlow returns the histories of one flow, in arrival order (ndb's
// backtrace for a flow).
func (c *Collector) ByFlow(f link.FlowKey) []History {
	return c.Query(func(h History) bool { return h.Flow == f })
}

// TraversedSwitch returns histories whose path includes the switch.
func (c *Collector) TraversedSwitch(id uint32) []History {
	return c.Query(func(h History) bool {
		for _, hop := range h.Hops {
			if hop.SwitchID == id {
				return true
			}
		}
		return false
	})
}

// Drops returns the loss-localization records.
func (c *Collector) Drops() []History {
	return c.Query(func(h History) bool { return h.Dropped })
}

// Deployment wires the application: TPPs on sources, aggregators on
// receivers, drop mirroring on switches.
type Deployment struct {
	App       *host.App
	Collector *Collector
	Hops      int
}

// Deploy installs packet-history collection across the network.
func Deploy(cp *host.ControlPlane, hosts []*host.Host, switches []*device.Switch, spec host.FilterSpec, sampleFreq int) (*Deployment, error) {
	app := cp.RegisterApp("netsight")
	col := &Collector{}
	d := &Deployment{App: app, Collector: col, Hops: DefaultHops}

	src := fmt.Sprintf(".hops %d\n.flags dropnotify\n%s", DefaultHops, Program)
	for _, h := range hosts {
		prog, err := asm.Assemble(src)
		if err != nil {
			return nil, err
		}
		if _, err := h.AddTPP(app, spec, prog, sampleFreq, 20); err != nil {
			return nil, err
		}
		h := h
		h.RegisterAggregator(app.Wire, func(p *link.Packet, view core.Section) {
			col.Add(historyFrom(h.Engine().Now(), p, view, false, 0))
		})
	}
	// §2.6 loss localization: switches mirror dropped DropNotify TPPs.
	for _, sw := range switches {
		sw := sw
		sw.DropCollector = func(p *link.Packet, reason device.DropReason) {
			if p.TPP == nil || p.TPP.AppID() != app.Wire {
				return
			}
			col.Add(historyFrom(0, p, p.TPP, true, sw.ID()))
		}
	}
	return d, nil
}

func historyFrom(at sim.Time, p *link.Packet, view core.Section, dropped bool, dropAt uint32) History {
	h := History{At: at, Flow: p.Flow, PktID: p.ID, Dropped: dropped, DropAt: dropAt}
	for _, hop := range view.StackView(WordsPerHop) {
		h.Hops = append(h.Hops, HopRecord{
			SwitchID:  hop.Words[0],
			EntryID:   hop.Words[1],
			InputPort: hop.Words[2],
		})
	}
	return h
}

// OverheadBytes is the §2.3 accounting: TPP header + 3 instructions +
// per-hop data for the given path budget.
func OverheadBytes(hops int) int {
	return core.HeaderLen + 3*core.InsnSize + hops*WordsPerHop*core.WordSize
}

// Violation is a netwatch policy violation.
type Violation struct {
	Policy  string
	History History
	Detail  string
}

// Policy checks a packet history; nil means conforming.
type Policy func(History) *Violation

// Netwatch attaches live policy checking to a collector.
func Netwatch(c *Collector, policies ...Policy) *[]Violation {
	violations := &[]Violation{}
	prev := c.OnHistory
	c.OnHistory = func(h History) {
		if prev != nil {
			prev(h)
		}
		for _, p := range policies {
			if v := p(h); v != nil {
				*violations = append(*violations, *v)
			}
		}
	}
	return violations
}

// IsolationPolicy flags any flow between the two host groups (tenant
// isolation, the paper's netwatch example).
func IsolationPolicy(groupA, groupB map[link.NodeID]bool) Policy {
	return func(h History) *Violation {
		cross := (groupA[h.Flow.Src] && groupB[h.Flow.Dst]) ||
			(groupB[h.Flow.Src] && groupA[h.Flow.Dst])
		if cross {
			return &Violation{
				Policy:  "isolation",
				History: h,
				Detail:  fmt.Sprintf("flow %v crosses tenant boundary", h.Flow),
			}
		}
		return nil
	}
}

// WaypointPolicy requires every history to traverse the given switch (e.g.
// a firewall) — a path-conformance check.
func WaypointPolicy(switchID uint32) Policy {
	return func(h History) *Violation {
		for _, hop := range h.Hops {
			if hop.SwitchID == switchID {
				return nil
			}
		}
		return &Violation{
			Policy:  "waypoint",
			History: h,
			Detail:  fmt.Sprintf("path %s avoids waypoint %d", h.Path(), switchID),
		}
	}
}

// LoopPolicy flags histories visiting any switch twice.
func LoopPolicy() Policy {
	return func(h History) *Violation {
		seen := map[uint32]bool{}
		for _, hop := range h.Hops {
			if seen[hop.SwitchID] {
				return &Violation{
					Policy:  "loop",
					History: h,
					Detail:  fmt.Sprintf("switch %d repeated on %s", hop.SwitchID, h.Path()),
				}
			}
			seen[hop.SwitchID] = true
		}
		return nil
	}
}
