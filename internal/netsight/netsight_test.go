package netsight_test

import (
	"testing"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/netsight"
	"minions/internal/sim"
	"minions/internal/topo"
)

func deploy(t *testing.T) (*topo.Network, *netsight.Deployment) {
	t.Helper()
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 1000)
	d, err := netsight.Deploy(n.CP, hosts, n.Switches, host.FilterSpec{Proto: link.ProtoUDP}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n, d
}

func TestPacketHistoriesCollected(t *testing.T) {
	n, d := deploy(t)
	h0, h3 := n.Hosts[0], n.Hosts[3] // opposite sides of the dumbbell
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	for i := 0; i < 5; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, link.ProtoUDP, 500))
	}
	n.Eng.Run()
	if d.Collector.Len() != 5 {
		t.Fatalf("collected %d histories, want 5", d.Collector.Len())
	}
	flow := link.FlowKey{Src: h0.ID(), Dst: h3.ID(), SrcPort: 1000, DstPort: 8000, Proto: link.ProtoUDP}
	hist := d.Collector.ByFlow(flow)
	if len(hist) != 5 {
		t.Fatalf("ByFlow found %d", len(hist))
	}
	// The dumbbell path crosses both switches: 1 then 2.
	if hist[0].Path() != "1>2" {
		t.Errorf("path = %q, want 1>2", hist[0].Path())
	}
	for _, hr := range hist[0].Hops {
		if hr.EntryID == 0 {
			t.Error("matched entry ID missing from history")
		}
	}
}

func TestNdbQueriesBySwitch(t *testing.T) {
	n, d := deploy(t)
	h0, h1, h3 := n.Hosts[0], n.Hosts[1], n.Hosts[3]
	h1.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	// Same-side traffic (h0->h1) stays on switch 1; cross traffic visits 2.
	h0.Send(h0.NewPacket(h1.ID(), 1000, 8000, link.ProtoUDP, 300))
	h0.Send(h0.NewPacket(h3.ID(), 1001, 8000, link.ProtoUDP, 300))
	n.Eng.Run()
	through2 := d.Collector.TraversedSwitch(2)
	if len(through2) != 1 {
		t.Fatalf("TraversedSwitch(2) = %d, want 1", len(through2))
	}
	if through2[0].Flow.SrcPort != 1001 {
		t.Error("wrong history matched")
	}
}

func TestLossLocalization(t *testing.T) {
	// Overflow the slow inter-switch queue and expect drop histories
	// pinpointing the dropping switch: fast host links into a 10 Mb/s core.
	n := topo.New(2)
	left, right := n.AddSwitch(4), n.AddSwitch(4)
	var hostsArr []*host.Host
	for i := 0; i < 4; i++ {
		h := n.AddHost()
		hostsArr = append(hostsArr, h)
		if i < 2 {
			n.Connect(h, left, topo.HostLink(1000))
		} else {
			n.Connect(h, right, topo.HostLink(1000))
		}
	}
	n.Connect(left, right, link.Config{
		RateBps:    10_000_000,
		Delay:      5 * sim.Microsecond,
		QueueBytes: 20_000, // shallow core queue: bursts overflow here
	})
	n.ComputeRoutes()
	d, err := netsight.Deploy(n.CP, hostsArr, n.Switches, host.FilterSpec{Proto: link.ProtoUDP}, 1)
	if err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	// Paced bursts, each larger than the core queue: drops at the left
	// switch, while the fast host NIC never overflows.
	for b := 0; b < 10; b++ {
		b := b
		n.Eng.At(sim.Time(b)*100*sim.Millisecond, func() {
			for i := 0; i < 50; i++ {
				h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, link.ProtoUDP, 1300))
			}
		})
	}
	n.Eng.RunUntil(2 * sim.Second)
	drops := d.Collector.Drops()
	if len(drops) == 0 {
		t.Fatal("no drop notifications collected")
	}
	for _, dr := range drops {
		if dr.DropAt != left.ID() {
			t.Fatalf("drop located at switch %d, want %d", dr.DropAt, left.ID())
		}
		// The history shows the hops up to the drop point.
		if len(dr.Hops) == 0 || dr.Hops[0].SwitchID != left.ID() {
			t.Errorf("drop history hops: %+v", dr.Hops)
		}
	}
}

func TestNetwatchIsolation(t *testing.T) {
	n, d := deploy(t)
	h0, h1, h3 := n.Hosts[0], n.Hosts[1], n.Hosts[3]
	violations := netsight.Netwatch(d.Collector, netsight.IsolationPolicy(
		map[link.NodeID]bool{h0.ID(): true},
		map[link.NodeID]bool{h3.ID(): true},
	))
	h1.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	h0.Send(h0.NewPacket(h1.ID(), 1, 8000, link.ProtoUDP, 200)) // allowed
	h0.Send(h0.NewPacket(h3.ID(), 2, 8000, link.ProtoUDP, 200)) // violates
	n.Eng.Run()
	if len(*violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(*violations))
	}
	if (*violations)[0].Policy != "isolation" {
		t.Errorf("policy = %q", (*violations)[0].Policy)
	}
}

func TestNetwatchWaypointAndLoop(t *testing.T) {
	n, d := deploy(t)
	h0, h1 := n.Hosts[0], n.Hosts[1]
	violations := netsight.Netwatch(d.Collector,
		netsight.WaypointPolicy(2), // require crossing switch 2
		netsight.LoopPolicy(),
	)
	h1.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	// h0 -> h1 stays on switch 1: waypoint violation, no loop.
	h0.Send(h0.NewPacket(h1.ID(), 1, 8000, link.ProtoUDP, 200))
	n.Eng.Run()
	if len(*violations) != 1 || (*violations)[0].Policy != "waypoint" {
		t.Fatalf("violations: %+v", *violations)
	}
}

func TestOverheadAccounting(t *testing.T) {
	// §2.3: "The instruction overhead is 12 bytes/packet and 6 bytes of
	// per-hop data. With a TPP header and space for 10 hops, this is 84
	// bytes/packet." Our 32-bit words double the per-hop data (12 B/hop):
	// 12 + 12 + 120 = 144. Structure identical; both yield <15% at 1000 B.
	got := netsight.OverheadBytes(10)
	if got != 144 {
		t.Errorf("overhead = %d, want 144", got)
	}
	if frac := float64(got) / 1000; frac > 0.15 {
		t.Errorf("bandwidth overhead %.1f%% implausible", frac*100)
	}
}

func TestSampledDeploymentCollectsSubset(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 1000)
	d, err := netsight.Deploy(n.CP, hosts, n.Switches, host.FilterSpec{Proto: link.ProtoUDP}, 10)
	if err != nil {
		t.Fatal(err)
	}
	h0, h3 := n.Hosts[0], n.Hosts[3]
	h3.Bind(8000, link.ProtoUDP, func(p *link.Packet) {})
	for i := 0; i < 100; i++ {
		h0.Send(h0.NewPacket(h3.ID(), 1000, 8000, link.ProtoUDP, 500))
	}
	n.Eng.Run()
	if got := d.Collector.Len(); got != 10 {
		t.Errorf("sampled collection = %d histories, want 10", got)
	}
}
