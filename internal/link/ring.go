package link

// Ring is a reusable FIFO ring buffer of packets. Unlike the head-sliced
// `queue = queue[1:]` idiom it replaces, popping never abandons backing
// array slots: the vacated head is zeroed immediately (so drained packets
// are not pinned for the garbage collector) and the slot is reused on the
// next wraparound instead of forcing append to reallocate.
type Ring struct {
	buf  []*Packet
	head int // index of the oldest element
	n    int // number of elements
}

// ringMinCap sizes a ring's first allocation: enough for a busy link's
// steady-state queue without growth in the common case.
const ringMinCap = 16

// Len returns the number of queued packets.
func (r *Ring) Len() int { return r.n }

// Push appends p at the tail, growing the ring if it is full.
func (r *Ring) Push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

// Pop removes and returns the head packet, zeroing its slot so the ring
// retains no reference. It returns nil when empty.
func (r *Ring) Pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// Peek returns the head packet without removing it, or nil when empty.
func (r *Ring) Peek() *Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// Reserve grows the backing array to at least n slots without changing the
// queued contents — used to pre-size queues to their drop-tail-bounded
// worst case so record-depth bursts never reallocate mid-measurement.
func (r *Ring) Reserve(n int) {
	if n <= len(r.buf) {
		return
	}
	buf := make([]*Packet, n)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// grow doubles the ring's capacity, unwrapping the elements into the new
// backing array.
func (r *Ring) grow() {
	newCap := 2 * len(r.buf)
	if newCap < ringMinCap {
		newCap = ringMinCap
	}
	buf := make([]*Packet, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
