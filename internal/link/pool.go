package link

import "minions/internal/core"

// Pool is a Packet free list. In steady state the simulator forwards
// millions of packets whose lifetimes are short and strictly nested inside
// the run loop, so recycling them (together with their TPP section buffers)
// removes the dominant allocation source of the hot path — the lesson
// packet-rate tools like MoonGen codify: per-packet allocation cost decides
// throughput.
//
// # Ownership rules
//
// A packet obtained from Get is owned by whoever holds the pointer; exactly
// one owner may return it with Put (or the convenience method
// Packet.Release), and only once its journey has ended:
//
//   - Transports and traffic generators draw packets from the pool (via
//     host.NewPacket on a pool-wired host) and hand ownership to the network
//     on Send.
//   - The final consumer returns the packet: transport sinks (Sink, TCPSink,
//     and TCP flows consuming ACKs) Release after their callbacks run, and
//     the host shim Releases standalone TPP echoes after dispatching their
//     views, as well as deliveries no handler claimed.
//   - Drops are terminal: every drop path (queue tail, down links, fault
//     losses, halted switches) notifies its observer and then returns the
//     packet to the pool. Observers that need the packet beyond the
//     callback (§2.6 collectors, tracing) must Clone it. This makes
//     Outstanding()==0 after a drained run an enforceable leak invariant,
//     which the fault plane's chaos tests rely on.
//   - Receive callbacks that retain a packet beyond the callback must not
//     install a releasing sink for the same traffic; retaining and releasing
//     the same packet corrupts the free list.
//
// A released packet's TPP section buffer is retained and reused by the next
// SectionBuf call, so executed TPP views passed to aggregators and executor
// callbacks are valid only during the callback when pooled traffic is in
// flight; consumers copy what they keep (HopViews/StackView/Words already
// copy).
//
// Put guards against double-free (panic) and Enqueue guards against sending
// a freed packet (panic), turning use-after-Put bugs into immediate,
// deterministic failures instead of silent cross-flow corruption.
type Pool struct {
	free []*Packet

	// Counters for observability and tests.
	gets uint64 // total Get calls
	puts uint64 // total Put calls
	news uint64 // Gets that had to allocate a fresh Packet
}

// NewPool creates an empty free list.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet owned by the caller. The packet's TPP section
// buffer capacity (if it was recycled) is retained for SectionBuf reuse.
func (pl *Pool) Get() *Packet {
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.inPool = false
		return p
	}
	pl.news++
	return &Packet{pool: pl}
}

// Put returns a packet to the free list. The packet must have come from this
// pool's Get and must not be referenced anywhere else. Put panics on a
// double free.
func (pl *Pool) Put(p *Packet) {
	if p.inPool {
		panic("link: Pool.Put called twice on the same packet")
	}
	if p.pool != pl {
		panic("link: Pool.Put on a packet from a different pool")
	}
	pl.puts++
	// Scrub the packet now (not at Get) so stale references — a retained
	// aggregator view, a forgotten sink pointer — observe zeroed fields
	// rather than plausible old data.
	buf := p.tppBuf
	*p = Packet{pool: pl, tppBuf: buf, inPool: true}
	pl.free = append(pl.free, p)
}

// Reserve grows the free list until it holds at least n idle packets, so a
// traffic source whose worst-case in-flight burst is known up front (the
// workload compiler's specs) never allocates on the hot path — not even on
// the first record-depth burst. Reserved packets are ordinary pool packets;
// gets/puts (and therefore Outstanding) are untouched, so the leak
// invariant and every fingerprint are unaffected.
func (pl *Pool) Reserve(n int) {
	for len(pl.free) < n {
		pl.free = append(pl.free, &Packet{pool: pl, inPool: true})
	}
}

// WarmBuffers pre-sizes the TPP section buffer of every idle packet to n
// bytes. Reserved packets are born buffer-less; without this, the first
// record-depth burst that digs into them pays one SectionBuf allocation per
// packet inside the measured window. Call after Reserve, with the encoded
// length of the largest TPP the run attaches.
func (pl *Pool) WarmBuffers(n int) {
	for _, p := range pl.free {
		if cap(p.tppBuf) < n {
			p.tppBuf = make([]byte, n)
		}
	}
}

// Stats returns (gets, puts, news): total draws, total returns, and draws
// that had to allocate because the free list was empty.
func (pl *Pool) Stats() (gets, puts, news uint64) { return pl.gets, pl.puts, pl.news }

// FreeLen returns the current free-list length.
func (pl *Pool) FreeLen() int { return len(pl.free) }

// Outstanding returns gets − puts: the number of pool packets currently
// owned outside the pool. After a fully drained run it must be zero — the
// leak invariant the chaos tests assert after every fault.
func (pl *Pool) Outstanding() int64 { return int64(pl.gets) - int64(pl.puts) }

// Release returns the packet to its owning pool, if any. It is a no-op for
// packets that were constructed directly rather than drawn from a pool, so
// terminal consumers can call it unconditionally.
func (p *Packet) Release() {
	if p.pool != nil {
		p.pool.Put(p)
	}
}

// Pooled reports whether the packet is managed by a pool.
func (p *Packet) Pooled() bool { return p.pool != nil }

// SectionBuf returns a TPP section of n bytes backed by the packet's
// retained buffer, growing it if needed. The caller fills it (typically by
// copying an encoded template) and assigns it to p.TPP. Reusing the buffer
// makes TPP attachment allocation-free once a pooled packet has carried a
// program of this size before.
func (p *Packet) SectionBuf(n int) core.Section {
	if cap(p.tppBuf) < n {
		p.tppBuf = make([]byte, n)
	}
	p.tppBuf = p.tppBuf[:n]
	return core.Section(p.tppBuf)
}

// Clone returns a detached deep-enough copy of the packet for observers that
// outlive the original (drop collectors, tracing). The clone is GC-managed —
// never pool-owned — and shares no TPP buffer with the original.
func (p *Packet) Clone() *Packet {
	clone := *p
	clone.pool = nil
	clone.inPool = false
	clone.tppBuf = nil
	if p.TPP != nil {
		clone.TPP = p.TPP.Clone()
	}
	return &clone
}
