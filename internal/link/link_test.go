package link

import (
	"testing"

	"minions/internal/sim"
)

// collector is a Receiver recording arrivals with timestamps.
type collector struct {
	eng  *sim.Engine
	pkts []*Packet
	at   []sim.Time
	port []int
}

func (c *collector) Receive(p *Packet, port int) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.eng.Now())
	c.port = append(c.port, port)
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	// 100 Mb/s, 10 us propagation.
	l := New(eng, Config{RateBps: 100_000_000, Delay: 10 * sim.Microsecond}, dst, 3)

	p := &Packet{ID: 1, Size: 1250} // 1250 B at 100 Mb/s = 100 us
	if !l.Enqueue(p) {
		t.Fatal("enqueue failed")
	}
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("got %d packets", len(dst.pkts))
	}
	want := 100*sim.Microsecond + 10*sim.Microsecond
	if dst.at[0] != want {
		t.Errorf("arrival at %d, want %d", dst.at[0], want)
	}
	if dst.port[0] != 3 {
		t.Errorf("port = %d", dst.port[0])
	}
	st := l.Stats()
	if st.TxPackets != 1 || st.TxBytes != 1250 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 100_000_000, Delay: 0}, dst, 0)
	for i := 0; i < 3; i++ {
		l.Enqueue(&Packet{ID: uint64(i), Size: 1250})
	}
	if l.QueueLenPackets() != 2 { // head of line is serializing
		t.Errorf("queue length = %d", l.QueueLenPackets())
	}
	eng.Run()
	// Packets arrive at 100, 200, 300 us: serialization is sequential.
	for i, at := range dst.at {
		want := sim.Time(i+1) * 100 * sim.Microsecond
		if at != want {
			t.Errorf("packet %d at %d, want %d", i, at, want)
		}
	}
	if l.Pending() {
		t.Error("link still pending after run")
	}
}

func TestLinkDropTail(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 1_000_000, QueueBytes: 3000}, dst, 0)
	var dropped []*Packet
	l.OnDrop = func(p *Packet, reason DropReason) {
		if reason != DropQueueFull {
			t.Errorf("drop reason %v, want queue-full", reason)
		}
		dropped = append(dropped, p)
	}

	// 1000-byte packets; first serializes immediately (leaves queue), then
	// 3 fit in the 3000-byte queue, 5th drops.
	accepted := 0
	for i := 0; i < 5; i++ {
		if l.Enqueue(&Packet{ID: uint64(i), Size: 1000}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4", accepted)
	}
	if len(dropped) != 1 || dropped[0].ID != 4 {
		t.Fatalf("dropped: %v", dropped)
	}
	st := l.Stats()
	if st.DropPackets != 1 || st.DropBytes != 1000 {
		t.Errorf("drop stats: %+v", st)
	}
	eng.Run()
	if len(dst.pkts) != 4 {
		t.Errorf("delivered %d", len(dst.pkts))
	}
}

func TestLinkUtilization(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	// 100 Mb/s link: 12500 bytes per ms at full rate.
	l := New(eng, Config{RateBps: 100_000_000}, dst, 0)

	// Offer exactly half rate for 10 ms: one 625-byte packet every 100 us.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		eng.At(at, func() { l.Enqueue(&Packet{Size: 625}) })
	}
	eng.RunUntil(10 * sim.Millisecond)
	util := l.UtilPermille()
	if util < 450 || util > 550 {
		t.Errorf("utilization = %d permille, want ~500", util)
	}

	// After a long idle gap the estimate decays to ~0.
	eng.RunUntil(100 * sim.Millisecond)
	if got := l.UtilPermille(); got > 60 {
		t.Errorf("idle utilization = %d permille", got)
	}
}

func TestLinkUtilizationSaturated(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 10_000_000, QueueBytes: 1 << 20}, dst, 0)
	for i := 0; i < 100; i++ {
		l.Enqueue(&Packet{Size: 1500})
	}
	eng.RunUntil(50 * sim.Millisecond)
	if got := l.UtilPermille(); got < 950 || got > 1000 {
		t.Errorf("saturated utilization = %d permille", got)
	}
}

func TestQueueOccupancyVisible(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 1_000_000, QueueBytes: 1 << 20}, dst, 0)
	for i := 0; i < 10; i++ {
		l.Enqueue(&Packet{Size: 1000})
	}
	// One packet is serializing, 9 queued.
	if l.QueueLenPackets() != 9 || l.QueueLenBytes() != 9000 {
		t.Errorf("occupancy: %d pkts %d bytes", l.QueueLenPackets(), l.QueueLenBytes())
	}
	eng.Run()
}

func TestOnTransmitHook(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 100_000_000}, dst, 0)
	var seen []uint64
	l.OnTransmit = func(p *Packet) { seen = append(seen, p.ID) }
	l.Enqueue(&Packet{ID: 5, Size: 100})
	l.Enqueue(&Packet{ID: 6, Size: 100})
	eng.Run()
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 6 {
		t.Errorf("transmit order: %v", seen)
	}
}

func TestFlowKeyHashDeterministic(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	if k.Hash(0) != k.Hash(0) {
		t.Error("hash not deterministic")
	}
	if k.Hash(0) == k.Hash(1) {
		t.Error("path tag does not affect hash")
	}
	k2 := k
	k2.SrcPort = 1001
	if k.Hash(0) == k2.Hash(0) {
		t.Error("port does not affect hash")
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: 17}
	if k.String() != "1:10->2:20/17" {
		t.Errorf("String = %q", k.String())
	}
}

func TestTinyPacketMinimumTxTime(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	// Absurdly fast link: tx time clamps to >= 1 ns so events always advance.
	l := New(eng, Config{RateBps: 1 << 60}, dst, 0)
	l.Enqueue(&Packet{Size: 1})
	eng.Run()
	if len(dst.pkts) != 1 {
		t.Fatal("packet lost")
	}
}
