package link

import (
	"testing"

	"minions/internal/core"
	"minions/internal/sim"
)

func TestPoolRecyclesPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	if !p.Pooled() || p.inPool {
		t.Fatal("fresh packet should be pooled and live")
	}
	p.ID = 7
	p.Size = 100
	p.Payload = "x"
	p.Release()
	if !p.inPool {
		t.Fatal("released packet should be marked in-pool")
	}
	q := pl.Get()
	if q != p {
		t.Fatal("Get should reuse the released packet")
	}
	if q.ID != 0 || q.Size != 0 || q.Payload != nil || q.TPP != nil {
		t.Fatalf("recycled packet not scrubbed: %+v", q)
	}
	gets, puts, news := pl.Stats()
	if gets != 2 || puts != 1 || news != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/1", gets, puts, news)
	}
}

func TestPoolDoublePutPanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put should panic")
		}
	}()
	pl.Put(p)
}

func TestPoolForeignPutPanics(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("Put on a foreign pool should panic")
		}
	}()
	b.Put(p)
}

// Use-after-Put: sending a freed packet must fail immediately and loudly,
// not corrupt another flow's traffic after the pool recycles it.
func TestEnqueueAfterPutPanics(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 1_000_000}, dst, 0)
	pl := NewPool()
	p := pl.Get()
	p.Size = 100
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue of a freed packet should panic")
		}
	}()
	l.Enqueue(p)
}

func TestReleaseNoopForUnpooled(t *testing.T) {
	p := &Packet{ID: 1}
	p.Release() // must not panic
	if p.Pooled() {
		t.Fatal("literal packet should not report pooled")
	}
}

func TestSectionBufReuse(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	s := p.SectionBuf(32)
	if len(s) != 32 {
		t.Fatalf("len = %d", len(s))
	}
	s[0] = 0xAB
	p.Release()
	q := pl.Get()
	s2 := q.SectionBuf(16)
	if len(s2) != 16 {
		t.Fatalf("len = %d", len(s2))
	}
	if &s2[0] != &s[0] {
		t.Fatal("SectionBuf should reuse the retained buffer")
	}
	// Growth reallocates.
	s3 := q.SectionBuf(64)
	if len(s3) != 64 {
		t.Fatalf("len = %d", len(s3))
	}
}

func TestCloneDetachesFromPool(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.ID = 9
	tpp, err := (&core.Program{
		Insns:    []core.Instruction{{Op: core.OpPUSH, Addr: 0}},
		MemWords: 2,
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	p.TPP = tpp
	c := p.Clone()
	if c.Pooled() {
		t.Fatal("clone must not be pool-owned")
	}
	if c.ID != 9 || c.TPP == nil {
		t.Fatalf("clone lost fields: %+v", c)
	}
	c.TPP.SetWord(0, 0xDEAD)
	if p.TPP.Word(0) == 0xDEAD {
		t.Fatal("clone shares TPP bytes with the original")
	}
	c.Release() // no-op, must not panic or poison the pool
	p.Release()
	if pl.FreeLen() != 1 {
		t.Fatalf("free list = %d, want 1", pl.FreeLen())
	}
}
