package link

import (
	"testing"

	"minions/internal/core"
	"minions/internal/sim"
)

// recvLog collects deliveries.
type recvLog struct {
	pkts  []*Packet
	ports []int
}

func (r *recvLog) Receive(p *Packet, port int) {
	r.pkts = append(r.pkts, p)
	r.ports = append(r.ports, port)
}

// drainBoundary plays the ShardGroup's barrier role for one port.
func drainBoundary(t *testing.T, b *Boundary, dst *sim.Engine) int {
	t.Helper()
	stamps := b.FlushStamps(nil)
	for _, s := range stamps {
		h, arg := b.Transfer()
		if s.At < dst.Now() {
			t.Fatalf("crossing delivery at %d is in the destination's past (%d)", s.At, dst.Now())
		}
		dst.Schedule(s.At, h, arg)
	}
	return len(stamps)
}

func TestBoundaryCrossingRehomesPackets(t *testing.T) {
	src, dst := sim.New(1), sim.New(2)
	srcPool, dstPool := NewPool(), NewPool()
	sink := &recvLog{}

	l := New(src, Config{RateBps: 1_000_000_000, Delay: 5 * sim.Microsecond}, sink, 3)
	l.BindBoundary(0, 1, dstPool)

	send := func(id uint64, tpp []byte) *Packet {
		p := srcPool.Get()
		p.ID = id
		p.Flow = FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
		p.Size = 1000
		p.TTL = 7
		p.Hops = 2
		if tpp != nil {
			sec := p.SectionBuf(len(tpp))
			copy(sec, tpp)
			p.TPP = core.Section(sec)
		}
		if !l.Enqueue(p) {
			t.Fatalf("enqueue of packet %d failed", id)
		}
		return p
	}
	orig1 := send(101, []byte{0xAA, 0xBB, 0xCC, 0xDD})
	orig2 := send(102, nil)

	src.Run()
	if got := l.Boundary().PendingCrossings(); got != 2 {
		t.Fatalf("PendingCrossings = %d, want 2 parked", got)
	}
	if !l.Pending() {
		t.Fatal("Pending should report parked crossings")
	}
	if len(sink.pkts) != 0 {
		t.Fatal("packets delivered without a barrier drain")
	}

	if n := drainBoundary(t, l.Boundary(), dst); n != 2 {
		t.Fatalf("drained %d stamps, want 2", n)
	}
	// Originals went back to the source pool at the barrier.
	if srcPool.FreeLen() != 2 {
		t.Fatalf("source pool holds %d packets, want 2 released", srcPool.FreeLen())
	}
	dst.Run()

	if len(sink.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(sink.pkts))
	}
	got := sink.pkts[0]
	if got.ID != 101 || sink.pkts[1].ID != 102 {
		t.Fatalf("FIFO order broken: got IDs %d, %d", got.ID, sink.pkts[1].ID)
	}
	if sink.ports[0] != 3 {
		t.Fatalf("delivered to port %d, want 3", sink.ports[0])
	}
	if got == orig1 || sink.pkts[1] == orig2 {
		t.Fatal("delivered packet is the source-pool original, not a re-homed copy")
	}
	// The originals were scrubbed when released at the barrier, so compare
	// against the values they were sent with.
	wantFlow := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	if !got.Pooled() || got.ID != 101 || got.TTL != 7 || got.Hops != 2 ||
		got.Flow != wantFlow || got.Size != 1000 {
		t.Fatalf("re-homed packet fields corrupted: %+v", got)
	}
	if string(got.TPP) != "\xaa\xbb\xcc\xdd" {
		t.Fatalf("TPP bytes not copied: %x", []byte(got.TPP))
	}
	// Delivered packets release into the destination pool.
	for _, p := range sink.pkts {
		p.Release()
	}
	if dstPool.FreeLen() != 2 {
		t.Fatalf("destination pool holds %d, want 2", dstPool.FreeLen())
	}
}

func TestBoundaryDeliveryTiming(t *testing.T) {
	src, dst := sim.New(1), sim.New(2)
	sink := &recvLog{}
	delay := 5 * sim.Microsecond
	l := New(src, Config{RateBps: 1_000_000_000, Delay: delay}, sink, 0)
	l.BindBoundary(0, 1, nil) // nil pool: packets cross without re-homing

	p := &Packet{Size: 1000}
	l.Enqueue(p)
	src.Run()
	txDone := src.Now() // serialization time of 1000 B at 1 Gb/s = 8 µs

	stamps := l.Boundary().FlushStamps(nil)
	if len(stamps) != 1 {
		t.Fatalf("flushed %d stamps, want 1", len(stamps))
	}
	if stamps[0].Ins != txDone || stamps[0].At != txDone+delay {
		t.Fatalf("stamp (At=%d, Ins=%d), want (%d, %d)",
			stamps[0].At, stamps[0].Ins, txDone+delay, txDone)
	}
	h, arg := l.Boundary().Transfer()
	dst.Schedule(stamps[0].At, h, arg)
	dst.Run()
	if len(sink.pkts) != 1 || sink.pkts[0] != p {
		t.Fatal("nil-pool crossing should deliver the original packet")
	}
	if dst.Now() != txDone+delay {
		t.Fatalf("delivered at %d, want %d", dst.Now(), txDone+delay)
	}
}

func TestBindBoundaryRequiresDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BindBoundary on a zero-delay link must panic (no lookahead)")
		}
	}()
	l := New(sim.New(1), Config{RateBps: 1_000_000_000}, &recvLog{}, 0)
	l.BindBoundary(0, 1, nil)
}
