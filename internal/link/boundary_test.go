package link

import (
	"testing"

	"minions/internal/core"
	"minions/internal/sim"
)

// recvLog collects deliveries and the destination-shard virtual times they
// arrived at.
type recvLog struct {
	eng   *sim.Engine
	pkts  []*Packet
	ports []int
	at    []sim.Time
}

func (r *recvLog) Receive(p *Packet, port int) {
	r.pkts = append(r.pkts, p)
	r.ports = append(r.ports, port)
	if r.eng != nil {
		r.at = append(r.at, r.eng.Now())
	}
}

func TestBoundaryCrossingRehomesPackets(t *testing.T) {
	src, dst := sim.New(1), sim.New(2)
	g := sim.NewShardGroup([]*sim.Engine{src, dst})
	g.Parallel = false
	srcPool, dstPool := NewPool(), NewPool()
	sink := &recvLog{eng: dst}

	l := New(src, Config{RateBps: 1_000_000_000, Delay: 5 * sim.Microsecond}, sink, 3)
	l.BindBoundary(0, 1, dstPool).Register(g)

	send := func(id uint64, tpp []byte) *Packet {
		p := srcPool.Get()
		p.ID = id
		p.Flow = FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
		p.Size = 1000
		p.TTL = 7
		p.Hops = 2
		if tpp != nil {
			sec := p.SectionBuf(len(tpp))
			copy(sec, tpp)
			p.TPP = core.Section(sec)
		}
		if !l.Enqueue(p) {
			t.Fatalf("enqueue of packet %d failed", id)
		}
		return p
	}
	orig1 := send(101, []byte{0xAA, 0xBB, 0xCC, 0xDD})
	orig2 := send(102, nil)

	// Run only the source engine: transmissions complete and park in the
	// crossing mailbox, but nothing may deliver until the group runs the
	// destination shard.
	src.Run()
	if got := l.Boundary().PendingCrossings(); got != 2 {
		t.Fatalf("PendingCrossings = %d, want 2 parked", got)
	}
	if !l.Pending() {
		t.Fatal("Pending should report parked crossings")
	}
	if len(sink.pkts) != 0 {
		t.Fatal("packets delivered without the destination shard running")
	}
	// Originals go back to the source pool at park time (the mailbox slot
	// owns a copy, not the pooled packet).
	if srcPool.FreeLen() != 2 {
		t.Fatalf("source pool holds %d packets, want 2 released", srcPool.FreeLen())
	}

	g.RunUntil(100 * sim.Microsecond)

	if len(sink.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(sink.pkts))
	}
	if got := l.Boundary().PendingCrossings(); got != 0 {
		t.Fatalf("PendingCrossings = %d after delivery, want 0", got)
	}
	got := sink.pkts[0]
	if got.ID != 101 || sink.pkts[1].ID != 102 {
		t.Fatalf("FIFO order broken: got IDs %d, %d", got.ID, sink.pkts[1].ID)
	}
	if sink.ports[0] != 3 {
		t.Fatalf("delivered to port %d, want 3", sink.ports[0])
	}
	if got == orig1 || sink.pkts[1] == orig2 {
		t.Fatal("delivered packet is the source-pool original, not a re-homed copy")
	}
	// The originals were scrubbed when released at park, so compare against
	// the values they were sent with.
	wantFlow := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	if !got.Pooled() || got.ID != 101 || got.TTL != 7 || got.Hops != 2 ||
		got.Flow != wantFlow || got.Size != 1000 {
		t.Fatalf("re-homed packet fields corrupted: %+v", got)
	}
	if string(got.TPP) != "\xaa\xbb\xcc\xdd" {
		t.Fatalf("TPP bytes not copied: %x", []byte(got.TPP))
	}
	// Delivered packets release into the destination pool.
	for _, p := range sink.pkts {
		p.Release()
	}
	if dstPool.FreeLen() != 2 {
		t.Fatalf("destination pool holds %d, want 2", dstPool.FreeLen())
	}
}

func TestBoundaryDeliveryTiming(t *testing.T) {
	src, dst := sim.New(1), sim.New(2)
	g := sim.NewShardGroup([]*sim.Engine{src, dst})
	g.Parallel = false
	sink := &recvLog{eng: dst}
	delay := 5 * sim.Microsecond
	l := New(src, Config{RateBps: 1_000_000_000, Delay: delay}, sink, 0)
	l.BindBoundary(0, 1, nil).Register(g) // nil pool: packets cross without re-homing

	p := &Packet{Size: 1000}
	l.Enqueue(p)
	src.Run()
	txDone := src.Now() // serialization time of 1000 B at 1 Gb/s = 8 µs

	g.Run()
	if len(sink.pkts) != 1 || sink.pkts[0] != p {
		t.Fatal("nil-pool crossing should deliver the original packet")
	}
	if sink.at[0] != txDone+delay {
		t.Fatalf("delivered at %d, want %d", sink.at[0], txDone+delay)
	}
}

func TestBindBoundaryRequiresDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BindBoundary on a zero-delay link must panic (no lookahead)")
		}
	}()
	l := New(sim.New(1), Config{RateBps: 1_000_000_000}, &recvLog{}, 0)
	l.BindBoundary(0, 1, nil)
}
