package link

import (
	"minions/internal/sim"
)

// Boundary turns a Link into a shard-crossing: the transmitter (and the
// link's queue, serialization events and statistics) stay in the source
// shard, but completed transmissions are parked in a mailbox instead of
// being scheduled for delivery directly, because the receiver's state lives
// in another shard's engine. The sim.ShardGroup drains the mailbox at every
// epoch barrier (see sim.BoundaryPort) and the propagation delay of the
// link provides the conservative lookahead that makes the barrier safe.
//
// Packets are re-homed as they cross: the original (owned by the source
// shard's Pool) is released at the barrier and its contents copied into a
// packet drawn from the destination shard's Pool, so each Pool and Ring
// keeps exactly one owning shard and the zero-allocation steady state of
// intra-shard forwarding is undisturbed. Only boundary crossings pay the
// copy.
type Boundary struct {
	l        *Link
	srcShard int
	dstShard int
	dstPool  *Pool
	dirty    *sim.Dirty // barrier-drain registration, set by SetDirty

	// Mailbox, filled by the source shard during an epoch and emptied by
	// the group at barriers. stamps and out advance in lockstep FIFO order.
	stamps []sim.BoundaryStamp
	out    []*Packet
	head   int

	// inbox holds re-homed packets awaiting their delivery event in the
	// destination shard. Deliveries of one link complete in transmission
	// order (constant delay), so the FIFO head is always the next due.
	inbox Ring
}

// BindBoundary marks l as crossing from srcShard to dstShard, re-homing
// packets into dstPool. It must be called before any traffic flows and the
// link must have a positive propagation delay (the lookahead).
func (l *Link) BindBoundary(srcShard, dstShard int, dstPool *Pool) *Boundary {
	if l.cfg.Delay <= 0 {
		panic("link: boundary link needs positive propagation delay for lookahead")
	}
	b := &Boundary{l: l, srcShard: srcShard, dstShard: dstShard, dstPool: dstPool}
	l.boundary = b
	return b
}

// Boundary returns the link's shard-crossing binding, nil for ordinary links.
func (l *Link) Boundary() *Boundary { return l.boundary }

// SetDirty installs the group's barrier-drain registration handle (from
// sim.ShardGroup.AddBoundary); parking then flags the port for the next
// barrier. Tests that drain a Boundary by hand may leave it unset.
func (b *Boundary) SetDirty(d *sim.Dirty) { b.dirty = d }

// park queues a transmission-complete packet for the next barrier drain.
func (b *Boundary) park(p *Packet, now sim.Time) {
	b.stamps = append(b.stamps, sim.BoundaryStamp{At: now + b.l.cfg.Delay, Ins: now})
	b.out = append(b.out, p)
	if b.dirty != nil {
		b.dirty.Mark()
	}
}

// SrcShard implements sim.BoundaryPort.
func (b *Boundary) SrcShard() int { return b.srcShard }

// DestShard implements sim.BoundaryPort.
func (b *Boundary) DestShard() int { return b.dstShard }

// Delay implements sim.BoundaryPort: the crossing's lookahead contribution.
func (b *Boundary) Delay() sim.Time { return b.l.cfg.Delay }

// FlushStamps implements sim.BoundaryPort.
func (b *Boundary) FlushStamps(buf []sim.BoundaryStamp) []sim.BoundaryStamp {
	buf = append(buf, b.stamps...)
	b.stamps = b.stamps[:0]
	return buf
}

// Transfer implements sim.BoundaryPort: re-home the FIFO-next packet into
// the destination shard and hand back the delivery handler. Runs only at
// barriers, where both shards' pools are safe to touch.
func (b *Boundary) Transfer() (sim.Handler, uint64) {
	p := b.out[b.head]
	b.out[b.head] = nil
	b.head++
	if b.head == len(b.out) {
		b.out = b.out[:0]
		b.head = 0
	}

	np := p
	if b.dstPool != nil {
		// Whole-struct copy (like Packet.Clone) so future Packet fields
		// cross shards without this site needing to know them; only the
		// pool bookkeeping stays the destination packet's own, and the TPP
		// is deep-copied into its retained buffer.
		np = b.dstPool.Get()
		pool, buf := np.pool, np.tppBuf
		*np = *p
		np.pool, np.inPool, np.tppBuf = pool, false, buf
		np.TPP = nil
		if p.TPP != nil {
			tpp := np.SectionBuf(len(p.TPP))
			copy(tpp, p.TPP)
			np.TPP = tpp
		}
		p.Release()
	}
	b.inbox.Push(np)
	return b, 0
}

// Handle implements sim.Handler: one delivery event in the destination
// shard. Deliveries fire in the order Transfer enqueued them.
func (b *Boundary) Handle(uint64) {
	b.l.dst.Receive(b.inbox.Pop(), b.l.dstPort)
}

// PendingCrossings returns packets parked for the next barrier plus those
// re-homed but not yet delivered.
func (b *Boundary) PendingCrossings() int {
	return len(b.out) - b.head + b.inbox.Len()
}
