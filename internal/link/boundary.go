package link

import (
	"minions/internal/sim"
)

// Boundary turns a Link into a shard-crossing: the transmitter (and the
// link's queue, serialization events and statistics) stay in the source
// shard, but completed transmissions are parked in the crossing's lock-free
// mailbox instead of being scheduled for delivery directly, because the
// receiver's state lives in another shard's engine. The destination shard
// drains the mailbox whenever its channel clocks permit (see sim.Channel);
// the propagation delay of the link is the crossing's conservative
// lookahead.
//
// Packets are re-homed as they cross: the source-shard packet's contents
// are copied into the mailbox slot at park time and the original released
// to the source shard's Pool immediately; the delivery event then draws a
// packet from the destination shard's Pool and copies the contents in.
// Each Pool and Ring keeps exactly one owning shard — the mailbox slot in
// between is plain value state synchronized by the SPSC queue itself — and
// the zero-allocation steady state of intra-shard forwarding is
// undisturbed: slots retain their TPP buffers across recycling, so only
// cold-start crossings allocate.
type Boundary struct {
	l        *Link
	srcShard int
	dstShard int
	dstPool  *Pool
	ch       *sim.Channel

	// payload carries the packets matching the channel's crossing events,
	// in the same per-channel FIFO order.
	payload sim.SPSC[pktEntry]
}

// pktEntry is one parked crossing's packet payload. With a destination
// pool, pkt holds a value copy of the packet (TPP re-pointed into buf,
// which the slot retains across recycling); without one — single-pool
// tests — ptr carries the original packet pointer across untouched.
type pktEntry struct {
	pkt Packet
	buf []byte
	ptr *Packet
}

// BindBoundary marks l as crossing from srcShard to dstShard, re-homing
// packets into dstPool. It must be called before any traffic flows and the
// link must have a positive propagation delay (the lookahead).
func (l *Link) BindBoundary(srcShard, dstShard int, dstPool *Pool) *Boundary {
	if l.cfg.Delay <= 0 {
		panic("link: boundary link needs positive propagation delay for lookahead")
	}
	b := &Boundary{l: l, srcShard: srcShard, dstShard: dstShard, dstPool: dstPool}
	b.payload.Init()
	l.boundary = b
	return b
}

// Boundary returns the link's shard-crossing binding, nil for ordinary links.
func (l *Link) Boundary() *Boundary { return l.boundary }

// Register wires the boundary into the group as a crossing channel. Must be
// called once, before traffic flows.
func (b *Boundary) Register(g *sim.ShardGroup) {
	b.ch = g.AddChannel(b.srcShard, b.dstShard, b.l.cfg.Delay)
}

// park hands a transmission-complete packet to the destination shard: copy
// it into the mailbox slot, release the original to the source pool, and
// book the delivery event on the crossing channel. Runs in the source shard
// (the mailbox's single producer).
func (b *Boundary) park(p *Packet, now sim.Time) {
	ent := b.payload.Reserve()
	if b.dstPool == nil {
		ent.ptr = p
	} else {
		// Whole-struct copy (like Packet.Clone) so future Packet fields
		// cross shards without this site needing to know them; the pool
		// bookkeeping is cleared — the slot owns nothing — and the TPP is
		// deep-copied into the slot's retained buffer.
		ent.ptr = nil
		ent.pkt = *p
		ent.pkt.pool, ent.pkt.inPool, ent.pkt.tppBuf = nil, false, nil
		ent.pkt.TPP = nil
		if p.TPP != nil {
			if cap(ent.buf) < len(p.TPP) {
				ent.buf = make([]byte, len(p.TPP))
			}
			ent.buf = ent.buf[:len(p.TPP)]
			copy(ent.buf, p.TPP)
			ent.pkt.TPP = ent.buf
		}
		p.Release()
	}
	b.payload.Commit()
	b.ch.Send(now, b, 0)
}

// Handle implements sim.Handler: one delivery event in the destination
// shard. The channel delivers crossings in park order, matching the
// payload FIFO.
func (b *Boundary) Handle(uint64) {
	ent := b.payload.Front()
	np := ent.ptr
	if np == nil {
		np = b.dstPool.Get()
		pool, buf := np.pool, np.tppBuf
		*np = ent.pkt
		np.pool, np.inPool, np.tppBuf = pool, false, buf
		np.TPP = nil
		if ent.pkt.TPP != nil {
			tpp := np.SectionBuf(len(ent.pkt.TPP))
			copy(tpp, ent.pkt.TPP)
			np.TPP = tpp
		}
	} else {
		ent.ptr = nil
	}
	b.payload.Advance()
	b.l.dst.Receive(np, b.l.dstPort)
}

// PendingCrossings returns packets parked but not yet delivered in the
// destination shard. Call between runs.
func (b *Boundary) PendingCrossings() int {
	return b.payload.Avail()
}
