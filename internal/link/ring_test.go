package link

import (
	"math/rand"
	"testing"

	"minions/internal/sim"
)

// Property: under any interleaving of pushes and pops — including many
// wraparounds of the backing array — the ring dequeues exactly the FIFO
// order of a reference slice queue.
func TestRingFIFOUnderWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var r Ring
		var ref []*Packet
		nextID := uint64(0)
		for op := 0; op < 2000; op++ {
			if len(ref) == 0 || rng.Intn(3) != 0 { // bias toward pushes
				nextID++
				p := &Packet{ID: nextID}
				r.Push(p)
				ref = append(ref, p)
			} else {
				want := ref[0]
				ref = ref[1:]
				got := r.Pop()
				if got != want {
					t.Fatalf("trial %d op %d: pop = %v, want ID %d", trial, op, got, want.ID)
				}
			}
			if r.Len() != len(ref) {
				t.Fatalf("trial %d op %d: len = %d, want %d", trial, op, r.Len(), len(ref))
			}
		}
		// Drain and verify the tail.
		for _, want := range ref {
			if got := r.Pop(); got != want {
				t.Fatalf("trial %d drain: pop ID %v, want %d", trial, got, want.ID)
			}
		}
		if r.Pop() != nil {
			t.Fatal("pop from empty ring should be nil")
		}
	}
}

func TestRingPeek(t *testing.T) {
	var r Ring
	if r.Peek() != nil {
		t.Fatal("peek on empty ring should be nil")
	}
	a, b := &Packet{ID: 1}, &Packet{ID: 2}
	r.Push(a)
	r.Push(b)
	if r.Peek() != a {
		t.Fatal("peek should return the head without removing it")
	}
	if r.Len() != 2 {
		t.Fatalf("peek mutated len: %d", r.Len())
	}
	if r.Pop() != a || r.Peek() != b {
		t.Fatal("pop/peek order wrong")
	}
}

// Regression for the head-sliced queue the ring replaced: a drained queue
// must not retain *Packet references in its backing array, or every packet
// that ever transited the link stays reachable until the slot is happened to
// be overwritten.
func TestDrainedQueueDoesNotPinPackets(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	l := New(eng, Config{RateBps: 1_000_000, QueueBytes: 1 << 20}, dst, 0)
	for i := 0; i < 100; i++ {
		l.Enqueue(&Packet{ID: uint64(i), Size: 1000})
	}
	eng.Run()
	if len(dst.pkts) != 100 {
		t.Fatalf("delivered %d", len(dst.pkts))
	}
	for i, slot := range l.queue.buf {
		if slot != nil {
			t.Fatalf("drained queue pins packet %d in slot %d", slot.ID, i)
		}
	}
	for i, slot := range l.inflight.buf {
		if slot != nil {
			t.Fatalf("drained inflight ring pins packet %d in slot %d", slot.ID, i)
		}
	}
}

// Steady-state forwarding through a warmed link allocates nothing: ring
// slots, resident events, and the engine heap are all reused.
func TestLinkForwardZeroAlloc(t *testing.T) {
	eng := sim.New(1)
	dst := &collector{eng: eng}
	dst.pkts = make([]*Packet, 0, 4096)
	dst.at = make([]sim.Time, 0, 4096)
	dst.port = make([]int, 0, 4096)
	l := New(eng, Config{RateBps: 1_000_000_000, Delay: sim.Microsecond}, dst, 0)
	p := &Packet{ID: 1, Size: 1000}
	// Warm rings and heap.
	for i := 0; i < 32; i++ {
		l.Enqueue(p)
		eng.Run()
	}
	allocs := testing.AllocsPerRun(100, func() {
		l.Enqueue(p)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("link forward allocated %.1f per packet, want 0", allocs)
	}
}
