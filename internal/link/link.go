// Package link models network links and their output queues: finite-rate
// serialization, propagation delay, drop-tail queueing, and the per-port
// statistics blocks of the paper's appendix (Table 6) — transmit/receive/
// drop counters and the link utilization registers that switches update
// every millisecond (§2.2: "The network updates link utilization counters
// every millisecond").
//
// The forwarding hot path is allocation-free in steady state: output queues
// are reusable ring buffers, serialization and delivery are resident typed
// events re-armed per packet (no closures), and packets themselves recycle
// through a Pool — see Pool's documentation for the ownership rules of who
// returns a packet and when.
package link

import (
	"fmt"

	"minions/internal/core"
	"minions/internal/sim"
)

// NodeID is a network-wide node (host or switch) identifier.
type NodeID uint32

// FlowKey identifies a transport flow.
type FlowKey struct {
	Src, Dst         NodeID
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the key for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d->%d:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Hash is a cheap deterministic hash of the flow key plus a path tag, used
// by switches for multipath selection ("selects an output port by hashing
// on header fields (e.g., the VLAN tag)").
func (k FlowKey) Hash(tag uint16) uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
	}
	mix(uint32(k.Src))
	mix(uint32(k.Dst))
	mix(uint32(k.SrcPort)<<16 | uint32(k.DstPort))
	mix(uint32(k.Proto))
	mix(uint32(tag))
	// Murmur-style finalizer: without it, high-bit differences (e.g. the
	// source port) never reach the low bits ECMP selects on.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// TagHash hashes a path tag alone. Multipath groups use it for tagged
// packets so that a given tag selects the same bucket for every flow —
// "end-hosts select network paths simply by changing the VLAN ID" (§2.4):
// probes and data with equal tags must take equal paths.
func TagHash(tag uint16) uint32 {
	h := uint32(tag) * 2654435761
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return h
}

// Transport protocol numbers used by the simulator.
const (
	ProtoUDP uint8 = 17
	ProtoTCP uint8 = 6
)

// TCP-like header flag bits for Packet.TFlags.
const (
	TFlagSYN uint8 = 1 << iota
	TFlagACK
	TFlagFIN
)

// Packet is the simulator's in-flight packet. Wire headers other than the
// TPP are kept as struct fields (the simulation does not re-serialize them
// per hop); the TPP section is real wire bytes executed in place, exactly as
// a hardware TCPU would.
type Packet struct {
	ID   uint64
	Flow FlowKey
	Size int // bytes on the wire, including all headers

	// TPP is the attached tiny packet program, nil for plain traffic.
	TPP core.Section
	// Standalone marks a probe packet that exists only to carry its TPP
	// (the UDP dport 0x6666 encapsulation) rather than piggybacking.
	Standalone bool

	PathTag uint16 // multipath selector (the paper's VLAN-tag trick)
	TTL     uint8

	// Transport fields for the simulator's TCP-like and UDP transports.
	Seq, Ack uint32
	TFlags   uint8

	// Payload carries an app-level message by reference (simulation idiom).
	Payload any

	Hops   int      // switch hops traversed so far
	SentAt sim.Time // set by the sending host

	// Free-list bookkeeping (see Pool). pool is nil for packets constructed
	// directly; tppBuf is the retained TPP section buffer SectionBuf reuses.
	pool   *Pool
	inPool bool
	tppBuf []byte
}

// Receiver consumes packets delivered by a link.
type Receiver interface {
	Receive(p *Packet, port int)
}

// Stats is a transmit/receive/drop statistics block (appendix Table 6).
type Stats struct {
	TxBytes, TxPackets     uint64
	RxBytes, RxPackets     uint64
	DropBytes, DropPackets uint64
}

// Config describes one unidirectional link.
type Config struct {
	RateBps    int64    // link capacity, bits per second
	Delay      sim.Time // propagation delay
	QueueBytes int      // output queue capacity in bytes (0 = default 150 kB)
	UtilWindow sim.Time // utilization update interval (0 = 1 ms, the paper's)
}

// DefaultQueueBytes is roughly 100 x 1500B packets, a typical shallow
// datacenter switch queue per port.
const DefaultQueueBytes = 150_000

// DropReason says why a link discarded a packet. Switches map these into
// their own richer device.DropReason space when re-publishing queue drops.
type DropReason uint8

const (
	// DropQueueFull: drop-tail at the output queue.
	DropQueueFull DropReason = iota
	// DropLinkDown: the link is administratively or fault-plane down.
	DropLinkDown
	// DropFaultLoss: the armed fault plane discarded the packet (random
	// loss, burst loss) at the transmit path.
	DropFaultLoss
)

// String renders the reason.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropLinkDown:
		return "link-down"
	case DropFaultLoss:
		return "fault-loss"
	}
	return fmt.Sprintf("drop(%d)", uint8(r))
}

// TxFault is the fault plane's hook on a link's transmit path. FilterTx is
// consulted once per packet as it is popped for serialization: returning
// drop discards the packet (reason DropFaultLoss); otherwise stall is added
// to the packet's serialization time (delay jitter). Jitter must be a
// serialization stall — not a per-packet propagation delta — because the
// link's inflight ring relies on delivery order equaling serialization
// order. FilterTx may also mutate the packet in place (TPP corruption).
type TxFault interface {
	FilterTx(p *Packet) (drop bool, stall sim.Time)
}

// Link is a unidirectional link with an output (egress) queue at its sender.
// Enqueue either queues the packet for serialization or drops it (drop-tail).
type Link struct {
	eng *sim.Engine
	cfg Config

	dst     Receiver
	dstPort int

	// queue is the drop-tail output queue; inflight holds packets that have
	// finished serialization and are propagating. Both are reusable rings:
	// delivery order equals serialization order because propagation delay is
	// constant per link, so the deliver event just pops the inflight head.
	queue      Ring
	inflight   Ring
	txPkt      *Packet // packet currently serializing
	queueBytes int
	busy       bool
	down       bool // fault plane: link refuses and drops traffic

	// fault, when non-nil, is the armed fault plane's transmit-path hook.
	// The nil check is the only hot-path cost when no plan is armed.
	fault TxFault

	stats Stats

	// boundary, when set, marks this link as crossing between topology
	// shards: transmission-complete packets park in the boundary mailbox
	// for the epoch barrier instead of scheduling a local delivery.
	boundary *Boundary

	// Lazy fixed-window utilization estimators: rolled on access. winBytes
	// counts transmitted bytes (TX utilization, capped at capacity);
	// arrBytes counts offered bytes at enqueue, accepted or not — the
	// arrival rate y(t) RCP's control law needs, which may exceed capacity.
	winStart sim.Time
	winBytes int64
	arrBytes int64
	utilPm   uint32 // last completed window, in permille of capacity
	arrPm    uint32 // last completed window's offered load, permille

	// OnDrop, when set, observes every packet the link discards — queue
	// rejections, down-link drops and fault losses (used for §2.6 drop
	// notifications and loss localization). Drops are terminal: the packet
	// is returned to its pool after the observer runs, so observers must
	// Clone what they keep.
	OnDrop func(p *Packet, reason DropReason)
	// OnTransmit, when set, observes every packet as it begins
	// serialization (after its TPP would have executed).
	OnTransmit func(p *Packet)
}

// New creates a link feeding packets to dst's port dstPort.
func New(eng *sim.Engine, cfg Config, dst Receiver, dstPort int) *Link {
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	if cfg.UtilWindow == 0 {
		cfg.UtilWindow = sim.Millisecond
	}
	return &Link{eng: eng, cfg: cfg, dst: dst, dstPort: dstPort}
}

// RateBps returns the configured capacity in bits/second.
func (l *Link) RateBps() int64 { return l.cfg.RateBps }

// RateMbps returns the configured capacity in Mb/s.
func (l *Link) RateMbps() uint32 { return uint32(l.cfg.RateBps / 1_000_000) }

// Stats returns a snapshot of the statistics block.
func (l *Link) Stats() Stats { return l.stats }

// Engine returns the engine this link schedules on. Fault injectors use it
// to arm per-target events on the owning shard's engine.
func (l *Link) Engine() *sim.Engine { return l.eng }

// IsDown reports whether the link is down.
func (l *Link) IsDown() bool { return l.down }

// SetDown moves the link between up and down. Taking a link down drains
// its output queue (each packet dropped with DropLinkDown); a packet
// mid-serialization is dropped when its serialization completes, while
// packets already propagating still deliver — bits on the wire have left.
// Bringing the link back up is instant; traffic flows on the next Enqueue.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down {
		return
	}
	for {
		p := l.queue.Pop()
		if p == nil {
			return
		}
		l.queueBytes -= p.Size
		l.stats.DropBytes += uint64(p.Size)
		l.stats.DropPackets++
		l.dropPacket(p, DropLinkDown)
	}
}

// SetTxFault installs (or clears, with nil) the fault plane's transmit
// hook.
func (l *Link) SetTxFault(f TxFault) { l.fault = f }

// dropPacket is the terminal drop path: notify the observer, then return
// the packet to its pool. Observers must Clone to retain.
func (l *Link) dropPacket(p *Packet, reason DropReason) {
	if l.OnDrop != nil {
		l.OnDrop(p, reason)
	}
	p.Release()
}

// PresizeQueues grows the output and inflight rings to the drop-tail-bounded
// worst case for the smallest wire frame the traffic can carry (minWire <= 0
// assumes a 55-byte frame: 1 payload byte plus transport framing). Queue
// occupancy is byte-capped, so this bound is exact — after it, record-depth
// bursts never reallocate. Purely a memory pre-commitment; behavior,
// counters and fingerprints are unchanged.
func (l *Link) PresizeQueues(minWire int) {
	if minWire <= 0 {
		minWire = 55
	}
	l.queue.Reserve(l.cfg.QueueBytes/minWire + 1)
	// The inflight ring holds packets between serialization and delivery:
	// at most a bandwidth-delay product's worth of minimum-size frames.
	bdpBits := float64(l.cfg.Delay) * float64(l.cfg.RateBps) / 1e9
	l.inflight.Reserve(int(bdpBits/float64(minWire*8)) + 2)
}

// QueueLenPackets returns the current queue occupancy in packets.
func (l *Link) QueueLenPackets() int { return l.queue.Len() }

// QueueLenBytes returns the current queue occupancy in bytes.
func (l *Link) QueueLenBytes() int { return l.queueBytes }

// roll advances the utilization window if it has elapsed.
func (l *Link) roll() {
	now := l.eng.Now()
	elapsed := now - l.winStart
	if elapsed < l.cfg.UtilWindow {
		return
	}
	// Average over however many windows elapsed; long idle gaps decay the
	// estimate toward zero, like a hardware counter that keeps updating.
	capacity := l.cfg.RateBps * int64(elapsed) / int64(sim.Second)
	if capacity <= 0 {
		l.utilPm = 0
		l.arrPm = 0
	} else {
		pm := l.winBytes * 8 * 1000 / capacity
		if pm > 1000 {
			pm = 1000
		}
		l.utilPm = uint32(pm)
		apm := l.arrBytes * 8 * 1000 / capacity
		if apm > 4000 {
			apm = 4000 // clamp runaway overload readings
		}
		l.arrPm = uint32(apm)
	}
	l.winStart = now
	l.winBytes = 0
	l.arrBytes = 0
}

// UtilPermille returns transmit utilization in permille of capacity over the
// last completed window.
func (l *Link) UtilPermille() uint32 {
	l.roll()
	return l.utilPm
}

// ArrivalUtilPermille returns the offered load (arrival rate including
// eventual drops) in permille of capacity; it can exceed 1000 when the link
// is overloaded, which is exactly the signal RCP's y(t) term needs.
func (l *Link) ArrivalUtilPermille() uint32 {
	l.roll()
	return l.arrPm
}

// Enqueue offers a packet to the output queue. It returns false when the
// packet was dropped — drop-tail or a down link — in which case the link
// has already notified OnDrop and returned the packet to its pool: the
// caller must not touch it again.
func (l *Link) Enqueue(p *Packet) bool {
	if p.inPool {
		panic("link: Enqueue of a packet already returned to its pool")
	}
	l.roll()
	l.arrBytes += int64(p.Size)
	if l.down {
		l.stats.DropBytes += uint64(p.Size)
		l.stats.DropPackets++
		l.dropPacket(p, DropLinkDown)
		return false
	}
	if l.queueBytes+p.Size > l.cfg.QueueBytes {
		l.stats.DropBytes += uint64(p.Size)
		l.stats.DropPackets++
		l.dropPacket(p, DropQueueFull)
		return false
	}
	l.queue.Push(p)
	l.queueBytes += p.Size
	if !l.busy {
		l.startTransmit()
	}
	return true
}

// Event arguments for the link's resident events: each Link is its own
// sim.Handler, re-armed per packet, so the per-packet transmit-done and
// delivery events allocate nothing.
const (
	linkArgTxDone  = 0
	linkArgDeliver = 1
)

// Handle dispatches the link's resident events.
func (l *Link) Handle(arg uint64) {
	switch arg {
	case linkArgTxDone:
		// Serialization finished: the packet starts propagating and the line
		// is free for the next head-of-line packet.
		p := l.txPkt
		l.txPkt = nil
		if l.down {
			// The link went down while this packet serialized; it never
			// makes it onto the wire.
			l.stats.DropBytes += uint64(p.Size)
			l.stats.DropPackets++
			l.dropPacket(p, DropLinkDown)
			l.startTransmit()
			return
		}
		if l.boundary != nil {
			// The receiver lives in another shard: park the packet for the
			// epoch-barrier drain instead of scheduling delivery here.
			l.boundary.park(p, l.eng.Now())
		} else {
			l.inflight.Push(p)
			l.eng.ScheduleAfter(l.cfg.Delay, l, linkArgDeliver)
		}
		l.startTransmit()
	case linkArgDeliver:
		// Deliveries complete in serialization order (constant delay), so
		// the propagating packet is always the inflight head.
		l.dst.Receive(l.inflight.Pop(), l.dstPort)
	}
}

// startTransmit serializes the head-of-line packet. With a fault plane
// armed it keeps popping past fault-dropped packets until a survivor (or an
// empty queue); the survivor's serialization may be stretched by the fault
// plane's jitter stall.
func (l *Link) startTransmit() {
	var (
		p     *Packet
		stall sim.Time
	)
	for {
		p = l.queue.Pop()
		if p == nil {
			l.busy = false
			return
		}
		l.busy = true
		l.queueBytes -= p.Size
		if l.fault == nil {
			break
		}
		drop, s := l.fault.FilterTx(p)
		if !drop {
			stall = s
			break
		}
		l.stats.DropBytes += uint64(p.Size)
		l.stats.DropPackets++
		l.dropPacket(p, DropFaultLoss)
	}

	if l.OnTransmit != nil {
		l.OnTransmit(p)
	}
	txTime := sim.Time(int64(p.Size)*8*int64(sim.Second)/l.cfg.RateBps) + stall
	if txTime < 1 {
		txTime = 1
	}
	l.roll()
	l.winBytes += int64(p.Size)
	l.stats.TxBytes += uint64(p.Size)
	l.stats.TxPackets++

	l.txPkt = p
	l.eng.ScheduleAfter(txTime, l, linkArgTxDone)
}

// Pending reports whether the link still holds or is serializing packets
// (including packets parked at a shard boundary awaiting their barrier).
func (l *Link) Pending() bool {
	return l.busy || l.queue.Len() > 0 ||
		(l.boundary != nil && l.boundary.PendingCrossings() > 0)
}
