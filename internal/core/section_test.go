package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"minions/internal/mem"
)

func mustEncode(t *testing.T, p *Program) Section {
	t.Helper()
	s, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return s
}

func TestProgramEncodeDecodeRoundTrip(t *testing.T) {
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.MustResolve("Switch:SwitchID")},
			{Op: OpPUSH, Addr: mem.MustResolve("PacketMetadata:OutputPort")},
			{Op: OpPUSH, Addr: mem.MustResolve("Queue:QueueOccupancy")},
		},
		Mode:     AddrStack,
		MemWords: 15,
		AppID:    0xBEEF,
		Flags:    FlagDropNotify,
		InitMem:  []uint32{1, 2, 3},
	}
	s := mustEncode(t, p)
	got, err := Decode(s)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got.Insns, p.Insns) {
		t.Errorf("instructions: got %v want %v", got.Insns, p.Insns)
	}
	if got.AppID != p.AppID || got.Flags != p.Flags || got.MemWords != p.MemWords {
		t.Errorf("header fields mismatched: %+v vs %+v", got, p)
	}
	if got.InitMem[0] != 1 || got.InitMem[1] != 2 || got.InitMem[2] != 3 || got.InitMem[3] != 0 {
		t.Errorf("memory: %v", got.InitMem)
	}
}

func TestSectionHeaderAccessors(t *testing.T) {
	p := &Program{
		Insns:       []Instruction{{Op: OpLOAD, A: 1, Addr: 0x0001}},
		Mode:        AddrHop,
		PerHopWords: 3,
		MemWords:    12,
		AppID:       7,
		EncapProto:  EtherTypeIPv4,
		StartHop:    2,
	}
	s := mustEncode(t, p)
	if s.Mode() != AddrHop || s.PerHopWords() != 3 || s.MemWords() != 12 {
		t.Errorf("geometry accessors wrong: %v %v %v", s.Mode(), s.PerHopWords(), s.MemWords())
	}
	if s.HopOrSP() != 2 || s.AppID() != 7 || s.EncapProto() != EtherTypeIPv4 {
		t.Errorf("field accessors wrong")
	}
	if s.Len() != HeaderLen+1*InsnSize+12*WordSize {
		t.Errorf("Len = %d", s.Len())
	}
	s.SetHopOrSP(5)
	if s.HopOrSP() != 5 {
		t.Error("SetHopOrSP failed")
	}
	s.SetFlags(FlagReflect | FlagEchoed)
	if s.Flags() != FlagReflect|FlagEchoed {
		t.Error("SetFlags failed")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := &Program{
		Insns:    []Instruction{{Op: OpPUSH, Addr: 0x0001}, {Op: OpPUSH, Addr: 0xB000}},
		Mode:     AddrStack,
		MemWords: 10,
	}
	s := mustEncode(t, p)
	if !s.VerifyChecksum() {
		t.Fatal("fresh section fails checksum")
	}
	// Corrupt an instruction: must be detected.
	s[HeaderLen] ^= 0xFF
	if s.VerifyChecksum() {
		t.Error("corrupted instruction passed checksum")
	}
	s[HeaderLen] ^= 0xFF
	// Mutating packet memory must NOT invalidate the checksum (switches
	// patch memory per hop without re-checksumming).
	s.SetWord(3, 0xDEADBEEF)
	if !s.VerifyChecksum() {
		t.Error("memory mutation broke header checksum")
	}
	// Decode enforces the checksum.
	s[1] = 3 // grow instruction count without updating checksum
	if _, err := Decode(s); err == nil {
		t.Error("Decode accepted corrupted header")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"no instructions", Program{Mode: AddrStack, MemWords: 4}},
		{"too many instructions", Program{
			Insns:    make([]Instruction, 6),
			Mode:     AddrStack,
			MemWords: 4,
		}},
		{"memory too large", Program{
			Insns:    []Instruction{{Op: OpNOP}},
			Mode:     AddrStack,
			MemWords: MaxMemWords + 1,
		}},
		{"hop mode without per-hop size", Program{
			Insns:    []Instruction{{Op: OpNOP}},
			Mode:     AddrHop,
			MemWords: 4,
		}},
		{"operand outside memory", Program{
			Insns:    []Instruction{{Op: OpLOAD, A: 9, Addr: 1}},
			Mode:     AddrStack,
			MemWords: 4,
		}},
		{"hop operand outside per-hop slice", Program{
			Insns:       []Instruction{{Op: OpLOAD, A: 3, Addr: 1}},
			Mode:        AddrHop,
			PerHopWords: 2,
			MemWords:    12,
		}},
		{"init memory overflow", Program{
			Insns:    []Instruction{{Op: OpNOP}},
			Mode:     AddrStack,
			MemWords: 2,
			InitMem:  []uint32{1, 2, 3},
		}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate unexpectedly passed", c.name)
		}
	}
}

func TestSectionValidateTruncation(t *testing.T) {
	p := &Program{
		Insns:    []Instruction{{Op: OpPUSH, Addr: 1}},
		Mode:     AddrStack,
		MemWords: 8,
	}
	s := mustEncode(t, p)
	for cut := 0; cut < s.Len(); cut += 5 {
		if err := Section(s[:cut]).Validate(); err == nil {
			t.Errorf("truncated section of %d bytes validated", cut)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("full section: %v", err)
	}
}

func TestInsnEncodeDecodeQuick(t *testing.T) {
	f := func(op, a, b uint8, addr uint16) bool {
		in := Instruction{
			Op:   Opcode(op % 9),
			A:    a & MaxOperand,
			B:    b & MaxOperand,
			Addr: mem.Addr(addr),
		}
		return DecodeInsn(in.Encode()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestProgramRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(MaxInsns)
		words := rng.Intn(MaxMemWords + 1)
		p := &Program{
			Mode:     AddrStack,
			MemWords: words,
			AppID:    uint16(rng.Uint32()),
			Flags:    Flags(rng.Intn(8)),
		}
		for i := 0; i < n; i++ {
			p.Insns = append(p.Insns, Instruction{
				Op:   OpPUSH, // operands always valid
				Addr: mem.Addr(rng.Uint32()),
			})
		}
		for i := 0; i < words; i++ {
			p.InitMem = append(p.InitMem, rng.Uint32())
		}
		s, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(s)
		if err != nil {
			return false
		}
		s2, err := q.Encode()
		if err != nil {
			return false
		}
		return bytes.Equal(s, s2)
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatalf("round trip failed at iteration %d", i)
		}
	}
}

func TestHopViews(t *testing.T) {
	p := &Program{
		Insns: []Instruction{
			{Op: OpLOAD, A: 0, Addr: mem.SwSwitchID},
			{Op: OpLOAD, A: 1, Addr: mem.DynOutQueueBase + mem.QueueOccPackets},
		},
		Mode:        AddrHop,
		PerHopWords: 2,
		MemWords:    10,
	}
	s := mustEncode(t, p)
	// Simulate three hops.
	for hop := 0; hop < 3; hop++ {
		env := &Env{Mem: MapMemory{
			mem.SwSwitchID: uint32(100 + hop),
			mem.DynOutQueueBase + mem.QueueOccPackets: uint32(7 * hop),
		}}
		Exec(s, env)
	}
	views := s.HopViews()
	if len(views) != 3 {
		t.Fatalf("got %d hop views, want 3", len(views))
	}
	for h, v := range views {
		if v.Words[0] != uint32(100+h) || v.Words[1] != uint32(7*h) {
			t.Errorf("hop %d: words %v", h, v.Words)
		}
	}
}

func TestStackView(t *testing.T) {
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.DynOutQueueBase},
		},
		Mode:     AddrStack,
		MemWords: 10,
	}
	s := mustEncode(t, p)
	for hop := 0; hop < 4; hop++ {
		env := &Env{Mem: MapMemory{
			mem.SwSwitchID:      uint32(hop + 1),
			mem.DynOutQueueBase: uint32(hop * 10),
		}}
		Exec(s, env)
	}
	views := s.StackView(2)
	if len(views) != 4 {
		t.Fatalf("got %d views, want 4", len(views))
	}
	for h, v := range views {
		if v.Words[0] != uint32(h+1) || v.Words[1] != uint32(h*10) {
			t.Errorf("hop %d: %v", h, v.Words)
		}
	}
	if s.StackView(0) != nil {
		t.Error("StackView(0) should be nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Program{
		Insns:    []Instruction{{Op: OpPUSH, Addr: 1}},
		Mode:     AddrStack,
		MemWords: 4,
	}
	s := mustEncode(t, p)
	c := s.Clone()
	c.SetWord(0, 42)
	if s.Word(0) == 42 {
		t.Error("Clone aliases original")
	}
}

func TestInstructionStrings(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpPUSH, Addr: mem.MustResolve("Queue:QueueOccupancy")},
			"PUSH [Queue:QueueOccupancy]"},
		{Instruction{Op: OpNOP}, "NOP"},
		{Instruction{Op: OpHALT}, "HALT"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
