// Package core implements the tiny packet program (TPP) wire format and the
// TCPU execution engine of §3 of the paper: a 12-byte header, at most five
// 4-byte instructions, and a preallocated packet memory that instructions
// copy switch state into (and out of). The format is fixed-layout so a switch
// can execute a TPP by patching words in place, never growing or shrinking
// the packet — exactly the property the paper's hardware design relies on.
package core

import (
	"fmt"

	"minions/internal/mem"
)

// Opcode is a TPP instruction opcode (Table 1 of the paper, plus NOP/HALT
// and the indirect load used by the §8 device-heterogeneity scheme).
type Opcode uint8

const (
	OpNOP    Opcode = 0 // do nothing
	OpLOAD   Opcode = 1 // packet[A] = switch[Addr]
	OpSTORE  Opcode = 2 // switch[Addr] = packet[A]
	OpPUSH   Opcode = 3 // packet[SP++] = switch[Addr]
	OpPOP    Opcode = 4 // switch[Addr] = packet[--SP]
	OpCSTORE Opcode = 5 // atomic conditional store, halts program on failure
	OpCEXEC  Opcode = 6 // conditional execute: halt unless masked match
	OpHALT   Opcode = 7 // unconditionally stop executing this TPP
	OpLOADI  Opcode = 8 // packet[A] = switch[packet[B] & 0xFFFF] (indirect)
)

// String returns the assembler mnemonic for the opcode.
func (o Opcode) String() string {
	switch o {
	case OpNOP:
		return "NOP"
	case OpLOAD:
		return "LOAD"
	case OpSTORE:
		return "STORE"
	case OpPUSH:
		return "PUSH"
	case OpPOP:
		return "POP"
	case OpCSTORE:
		return "CSTORE"
	case OpCEXEC:
		return "CEXEC"
	case OpHALT:
		return "HALT"
	case OpLOADI:
		return "LOADI"
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Opcode) Valid() bool { return o <= OpLOADI }

// Writes reports whether the opcode writes to switch memory. TPP-CP's static
// analysis uses this to enforce the §4.3 write restrictions.
func (o Opcode) Writes() bool { return o == OpSTORE || o == OpPOP || o == OpCSTORE }

// Instruction is one decoded 32-bit TPP instruction word.
//
//	[31:28] opcode
//	[27:22] operand A — packet-memory word offset
//	[21:16] operand B — packet-memory word offset
//	[15:0]  switch address
//
// Operand use per opcode:
//
//	LOAD/STORE: A = packet word (hop-relative in hop mode)
//	PUSH/POP:   A = preassigned slot for hop-mode execution (§3.5)
//	CSTORE:     A = "old" word, B = "new" word; observed value written to A
//	CEXEC:      A = expected value word, B = mask word (B==A means mask ~0)
//	LOADI:      A = destination word, B = word holding the indirect address
type Instruction struct {
	Op   Opcode
	A, B uint8 // 6-bit packet-memory word offsets
	Addr mem.Addr
}

// MaxOperand is the largest encodable packet-memory word offset.
const MaxOperand = 1<<6 - 1

// Encode packs the instruction into its 32-bit wire form.
func (in Instruction) Encode() uint32 {
	return uint32(in.Op&0xF)<<28 |
		uint32(in.A&MaxOperand)<<22 |
		uint32(in.B&MaxOperand)<<16 |
		uint32(in.Addr)
}

// DecodeInsn unpacks a 32-bit instruction word.
func DecodeInsn(w uint32) Instruction {
	return Instruction{
		Op:   Opcode(w >> 28),
		A:    uint8(w>>22) & MaxOperand,
		B:    uint8(w>>16) & MaxOperand,
		Addr: mem.Addr(w),
	}
}

// Check validates operand ranges against a packet memory of memWords words
// in the given addressing mode.
func (in Instruction) Check(mode AddrMode, memWords, perHop int) error {
	if !in.Op.Valid() {
		return fmt.Errorf("core: invalid opcode %d", in.Op)
	}
	limit := memWords
	if mode == AddrHop {
		// Hop-relative operands must fit within one hop's slice.
		limit = perHop
	}
	needsA := false
	switch in.Op {
	case OpLOAD, OpSTORE:
		needsA = true
	case OpLOADI:
		// B holds the packet word the indirect switch address is read from.
		needsA = true
		if int(in.B) >= limit {
			return fmt.Errorf("core: %v operand B=%d outside memory (%d words)", in.Op, in.B, limit)
		}
	case OpCSTORE:
		needsA = true
		if int(in.B) >= limit {
			return fmt.Errorf("core: %v operand B=%d outside memory (%d words)", in.Op, in.B, limit)
		}
	case OpCEXEC:
		needsA = true
		if in.B != in.A && int(in.B) >= limit {
			return fmt.Errorf("core: %v mask operand B=%d outside memory (%d words)", in.Op, in.B, limit)
		}
	}
	if needsA && int(in.A) >= limit {
		return fmt.Errorf("core: %v operand A=%d outside memory (%d words)", in.Op, in.A, limit)
	}
	return nil
}

// String disassembles the instruction using canonical mnemonics.
func (in Instruction) String() string {
	a := in.Addr.String()
	switch in.Op {
	case OpNOP, OpHALT:
		return in.Op.String()
	case OpPUSH, OpPOP:
		return fmt.Sprintf("%s [%s]", in.Op, a)
	case OpLOAD, OpSTORE:
		return fmt.Sprintf("%s [%s], [Packet:%d]", in.Op, a, in.A)
	case OpCSTORE:
		return fmt.Sprintf("CSTORE [%s], [Packet:%d], [Packet:%d]", a, in.A, in.B)
	case OpCEXEC:
		if in.A == in.B {
			return fmt.Sprintf("CEXEC [%s], [Packet:%d]", a, in.A)
		}
		return fmt.Sprintf("CEXEC [%s], [Packet:%d], [Packet:%d]", a, in.A, in.B)
	case OpLOADI:
		return fmt.Sprintf("LOADI [[Packet:%d]], [Packet:%d]", in.B, in.A)
	}
	return fmt.Sprintf("%s ?", in.Op)
}
