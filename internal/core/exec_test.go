package core

import (
	"testing"
	"testing/quick"

	"minions/internal/mem"
)

// microburstTPP is the §2.1 program: PUSH switch ID, output port, queue size.
func microburstTPP(t *testing.T) Section {
	t.Helper()
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.MustResolve("Switch:SwitchID")},
			{Op: OpPUSH, Addr: mem.MustResolve("PacketMetadata:OutputPort")},
			{Op: OpPUSH, Addr: mem.MustResolve("Queue:QueueOccupancy")},
		},
		Mode:     AddrStack,
		MemWords: 15, // 5 hops x 3 words
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func hopMem(id, port, qocc uint32) MapMemory {
	return MapMemory{
		mem.MustResolve("Switch:SwitchID"):           id,
		mem.MustResolve("PacketMetadata:OutputPort"): port,
		mem.MustResolve("Queue:QueueOccupancy"):      qocc,
		mem.MustResolve("Link:AppSpecific_0"):        0,
		mem.MustResolve("Link:AppSpecific_1"):        0,
	}
}

func TestExecMicroburstAcrossHops(t *testing.T) {
	s := microburstTPP(t)
	// Figure 1a: as the packet traverses hops, SP advances and snapshots
	// accumulate in order.
	for hop := 0; hop < 5; hop++ {
		res := Exec(s, &Env{Mem: hopMem(uint32(hop+1), uint32(hop*2), uint32(hop*3))})
		if res.Halted || res.Executed != 3 {
			t.Fatalf("hop %d: %+v", hop, res)
		}
		if s.HopOrSP() != (hop+1)*3 {
			t.Fatalf("hop %d: SP=%d", hop, s.HopOrSP())
		}
	}
	for hop := 0; hop < 5; hop++ {
		if s.Word(hop*3) != uint32(hop+1) || s.Word(hop*3+1) != uint32(hop*2) || s.Word(hop*3+2) != uint32(hop*3) {
			t.Errorf("hop %d snapshot: %d %d %d", hop, s.Word(hop*3), s.Word(hop*3+1), s.Word(hop*3+2))
		}
	}
}

func TestExecStackExhaustionHaltsGracefully(t *testing.T) {
	s := microburstTPP(t) // 15 words = exactly 5 hops
	for hop := 0; hop < 5; hop++ {
		Exec(s, &Env{Mem: hopMem(1, 2, 3)})
	}
	res := Exec(s, &Env{Mem: hopMem(9, 9, 9)})
	if !res.Halted || res.Reason != HaltMemoryExhausted {
		t.Fatalf("6th hop should exhaust memory: %+v", res)
	}
	// Earlier snapshots must be intact.
	if s.Word(0) != 1 || s.Word(14) != 3 {
		t.Error("exhaustion corrupted earlier snapshots")
	}
}

func TestExecGracefulSkipOnAbsentAddress(t *testing.T) {
	// §3.3: "instructions are not executed if they access memory that
	// doesn't exist. This ensures the TPP fails gracefully."
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: 0x0FFF}, // absent
			{Op: OpPUSH, Addr: mem.SwSwitchID},
		},
		Mode:     AddrStack,
		MemWords: 4,
	}
	s, _ := p.Encode()
	res := Exec(s, &Env{Mem: MapMemory{mem.SwSwitchID: 42}})
	if res.Halted {
		t.Fatal("absent address must not halt the TPP")
	}
	if res.Skipped != 1 || res.Executed != 1 {
		t.Fatalf("got %+v", res)
	}
	// The switch ID lands at SP=0 because the skipped PUSH did not advance.
	if s.Word(0) != 42 || s.HopOrSP() != 1 {
		t.Errorf("word0=%d sp=%d", s.Word(0), s.HopOrSP())
	}
}

func TestExecLoadStoreHopMode(t *testing.T) {
	// The §3.5 serialized form: LOAD into hop-relative slots.
	p := &Program{
		Insns: []Instruction{
			{Op: OpLOAD, A: 0, Addr: mem.SwSwitchID},
			{Op: OpLOAD, A: 1, Addr: mem.MustResolve("PacketMetadata:InputPort")},
			{Op: OpSTORE, A: 1, Addr: mem.MustResolve("Link:AppSpecific_0")},
		},
		Mode:        AddrHop,
		PerHopWords: 2,
		MemWords:    6,
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for hop := 0; hop < 3; hop++ {
		m := MapMemory{
			mem.SwSwitchID: uint32(hop + 10),
			mem.MustResolve("PacketMetadata:InputPort"): uint32(hop),
			mem.MustResolve("Link:AppSpecific_0"):       0,
		}
		res := Exec(s, &Env{Mem: m})
		if res.Halted || res.Executed != 3 {
			t.Fatalf("hop %d: %+v", hop, res)
		}
		if got := m[mem.MustResolve("Link:AppSpecific_0")]; got != uint32(hop) {
			t.Errorf("hop %d: STORE wrote %d", hop, got)
		}
		if s.HopOrSP() != hop+1 {
			t.Errorf("hop counter = %d after hop %d", s.HopOrSP(), hop)
		}
	}
	if s.Word(0) != 10 || s.Word(2) != 11 || s.Word(4) != 12 {
		t.Errorf("hop-addressed switch IDs: %d %d %d", s.Word(0), s.Word(2), s.Word(4))
	}
}

func TestExecCStoreSemantics(t *testing.T) {
	// Phase 3 of RCP* (§2.2): CSTORE [X], [Packet:Hop[0]], [Packet:Hop[1]]
	// succeeds only when X still holds the version the end-host saw.
	target := mem.MustResolve("Link:AppSpecific_0")
	build := func(old, new uint32) Section {
		p := &Program{
			Insns: []Instruction{
				{Op: OpCSTORE, A: 0, B: 1, Addr: target},
				{Op: OpLOAD, A: 2, Addr: mem.SwSwitchID}, // gated instruction
			},
			Mode:        AddrHop,
			PerHopWords: 3,
			MemWords:    3,
			InitMem:     []uint32{old, new, 0},
		}
		s, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Success: memory holds "old".
	m := MapMemory{target: 5, mem.SwSwitchID: 99}
	s := build(5, 6)
	res := Exec(s, &Env{Mem: m})
	if res.Halted {
		t.Fatalf("CSTORE should succeed: %+v", res)
	}
	if m[target] != 6 {
		t.Errorf("switch word = %d, want 6", m[target])
	}
	// Success writes the new value back into operand A (§3.3.3: the
	// end-host infers success by comparing).
	if s.Word(0) != 6 {
		t.Errorf("write-back word = %d, want 6", s.Word(0))
	}
	if s.Word(2) != 99 {
		t.Error("gated instruction did not run after success")
	}

	// Failure: memory holds something else; subsequent insns are halted and
	// the observed value is written back.
	m = MapMemory{target: 7, mem.SwSwitchID: 99}
	s = build(5, 6)
	res = Exec(s, &Env{Mem: m})
	if !res.Halted || res.Reason != HaltCStoreFailed {
		t.Fatalf("CSTORE should fail: %+v", res)
	}
	if m[target] != 7 {
		t.Errorf("failed CSTORE mutated memory: %d", m[target])
	}
	if s.Word(0) != 7 {
		t.Errorf("observed value not written back: %d", s.Word(0))
	}
	if s.Word(2) != 0 {
		t.Error("gated instruction ran after failed CSTORE")
	}
}

func TestExecCStoreDeniedWrite(t *testing.T) {
	target := mem.MustResolve("Link:AppSpecific_0")
	p := &Program{
		Insns:    []Instruction{{Op: OpCSTORE, A: 0, B: 1, Addr: target}},
		Mode:     AddrStack,
		MemWords: 2,
		InitMem:  []uint32{5, 6},
	}
	s, _ := p.Encode()
	m := MapMemory{target: 5}
	res := Exec(s, &Env{Mem: m, AllowWrite: func(mem.Addr) bool { return false }})
	if !res.Halted || res.Reason != HaltCStoreFailed {
		t.Fatalf("denied CSTORE should halt: %+v", res)
	}
	if m[target] != 5 {
		t.Error("denied CSTORE wrote anyway")
	}
}

func TestExecCExec(t *testing.T) {
	// §4.4 targeted execution: run the payload only on switch 3.
	build := func() Section {
		p := &Program{
			Insns: []Instruction{
				{Op: OpCEXEC, A: 0, B: 0, Addr: mem.SwSwitchID}, // B==A: full mask
				{Op: OpLOAD, A: 1, Addr: mem.MustResolve("Link:TX-Utilization")},
			},
			Mode:     AddrStack,
			MemWords: 2,
			InitMem:  []uint32{3, 0},
		}
		s, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	util := mem.MustResolve("Link:TX-Utilization")

	s := build()
	res := Exec(s, &Env{Mem: MapMemory{mem.SwSwitchID: 2, util: 777}})
	if !res.Halted || res.Reason != HaltCExecFailed {
		t.Fatalf("CEXEC on wrong switch should halt: %+v", res)
	}
	if s.Word(1) != 0 {
		t.Error("gated LOAD ran on wrong switch")
	}

	s = build()
	res = Exec(s, &Env{Mem: MapMemory{mem.SwSwitchID: 3, util: 777}})
	if res.Halted {
		t.Fatalf("CEXEC on target switch halted: %+v", res)
	}
	if s.Word(1) != 777 {
		t.Error("gated LOAD did not run on target switch")
	}
}

func TestExecCExecMasked(t *testing.T) {
	// CEXEC with an explicit mask word: match the top byte only.
	p := &Program{
		Insns: []Instruction{
			{Op: OpCEXEC, A: 0, B: 1, Addr: mem.SwVendorID},
			{Op: OpLOAD, A: 2, Addr: mem.SwSwitchID},
		},
		Mode:     AddrStack,
		MemWords: 3,
		InitMem:  []uint32{0xAB000000, 0xFF000000, 0},
	}
	s, _ := p.Encode()
	res := Exec(s, &Env{Mem: MapMemory{mem.SwVendorID: 0xABCDEF12, mem.SwSwitchID: 5}})
	if res.Halted {
		t.Fatalf("masked CEXEC should match: %+v", res)
	}
	if s.Word(2) != 5 {
		t.Error("gated LOAD skipped")
	}
}

func TestExecPop(t *testing.T) {
	target := mem.MustResolve("Link:AppSpecific_1")
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPOP, Addr: target},
		},
		Mode:     AddrStack,
		MemWords: 4,
	}
	s, _ := p.Encode()
	m := MapMemory{mem.SwSwitchID: 31, target: 0}
	res := Exec(s, &Env{Mem: m})
	if res.Executed != 2 {
		t.Fatalf("%+v", res)
	}
	if m[target] != 31 {
		t.Errorf("POP wrote %d", m[target])
	}
	if s.HopOrSP() != 0 {
		t.Errorf("SP=%d after push+pop", s.HopOrSP())
	}
}

func TestExecPopEmptyStackHalts(t *testing.T) {
	p := &Program{
		Insns:    []Instruction{{Op: OpPOP, Addr: mem.SwSwitchID}},
		Mode:     AddrStack,
		MemWords: 4,
	}
	s, _ := p.Encode()
	res := Exec(s, &Env{Mem: MapMemory{mem.SwSwitchID: 1}})
	if !res.Halted || res.Reason != HaltMemoryExhausted {
		t.Fatalf("%+v", res)
	}
}

func TestExecHaltInstruction(t *testing.T) {
	p := &Program{
		Insns: []Instruction{
			{Op: OpHALT},
			{Op: OpPUSH, Addr: mem.SwSwitchID},
		},
		Mode:     AddrStack,
		MemWords: 2,
	}
	s, _ := p.Encode()
	res := Exec(s, &Env{Mem: MapMemory{mem.SwSwitchID: 1}})
	if !res.Halted || res.Reason != HaltInstruction || s.HopOrSP() != 0 {
		t.Fatalf("%+v sp=%d", res, s.HopOrSP())
	}
}

func TestExecLoadIndirect(t *testing.T) {
	// §8 heterogeneity: the packet carries a platform-specific address.
	p := &Program{
		Insns:       []Instruction{{Op: OpLOADI, A: 1, B: 1, Addr: 0}},
		Mode:        AddrHop,
		PerHopWords: 2,
		MemWords:    4,
		// hop0: [_, 0xF0A0] -> loads vendor register 0xF0A0 into word 1.
		InitMem: []uint32{0, 0xF0A0, 0, 0xF0B0},
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	Exec(s, &Env{Mem: MapMemory{0xF0A0: 1234}})
	if s.Word(1) != 1234 {
		t.Errorf("indirect load got %d", s.Word(1))
	}
	// Second hop reads a different vendor address, per-hop data.
	Exec(s, &Env{Mem: MapMemory{0xF0B0: 4321}})
	if s.Word(3) != 4321 {
		t.Errorf("indirect load hop2 got %d", s.Word(3))
	}
}

func TestExecStoreDeniedByPolicy(t *testing.T) {
	target := mem.MustResolve("Link:AppSpecific_0")
	p := &Program{
		Insns:    []Instruction{{Op: OpSTORE, A: 0, Addr: target}},
		Mode:     AddrStack,
		MemWords: 1,
		InitMem:  []uint32{99},
	}
	s, _ := p.Encode()
	m := MapMemory{target: 1}
	res := Exec(s, &Env{Mem: m, AllowWrite: func(mem.Addr) bool { return false }})
	if res.Skipped != 1 || m[target] != 1 {
		t.Fatalf("denied STORE executed: %+v mem=%d", res, m[target])
	}
}

func TestExecBadSection(t *testing.T) {
	res := Exec(Section{0x10, 0}, &Env{Mem: MapMemory{}})
	if !res.Halted || res.Reason != HaltBadSection {
		t.Fatalf("%+v", res)
	}
}

func TestExecWriteSupersedesForwarding(t *testing.T) {
	// §3.2: "writes by a TPP supersede those performed by forwarding logic".
	// The MapMemory carries the forwarding logic's value; after a STORE the
	// packet-visible value must be the TPP's.
	target := mem.MustResolve("Link:AppSpecific_0")
	p := &Program{
		Insns: []Instruction{
			{Op: OpSTORE, A: 0, Addr: target},
			{Op: OpLOAD, A: 1, Addr: target},
		},
		Mode:     AddrStack,
		MemWords: 2,
		InitMem:  []uint32{555, 0},
	}
	s, _ := p.Encode()
	m := MapMemory{target: 1}
	Exec(s, &Env{Mem: m})
	if s.Word(1) != 555 {
		t.Errorf("read after write returned %d, want 555", s.Word(1))
	}
}

// Property: executing the canonical PUSH program over N hops yields exactly
// the per-hop values in order, for any N within memory bounds.
func TestExecStackOrderQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 20 {
			vals = vals[:20]
		}
		p := &Program{
			Insns:    []Instruction{{Op: OpPUSH, Addr: mem.SwSwitchID}},
			Mode:     AddrStack,
			MemWords: len(vals),
		}
		s, err := p.Encode()
		if err != nil {
			return false
		}
		for _, v := range vals {
			Exec(s, &Env{Mem: MapMemory{mem.SwSwitchID: v}})
		}
		for i, v := range vals {
			if s.Word(i) != v {
				return false
			}
		}
		return s.HopOrSP() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a stack-mode PUSH program and its §3.5 hop-mode serialization
// (PUSHes converted to hop-relative LOADs) produce identical packet memory.
func TestExecStackHopEquivalenceQuick(t *testing.T) {
	addrs := []mem.Addr{
		mem.SwSwitchID,
		mem.MustResolve("PacketMetadata:OutputPort"),
		mem.MustResolve("Queue:QueueOccupancy"),
	}
	f := func(seed int64, hops uint8) bool {
		n := int(hops%5) + 1
		stack := &Program{Mode: AddrStack, MemWords: n * len(addrs)}
		hopP := &Program{Mode: AddrHop, PerHopWords: len(addrs), MemWords: n * len(addrs)}
		for i, a := range addrs {
			stack.Insns = append(stack.Insns, Instruction{Op: OpPUSH, Addr: a})
			hopP.Insns = append(hopP.Insns, Instruction{Op: OpLOAD, A: uint8(i), Addr: a})
		}
		s1, err1 := stack.Encode()
		s2, err2 := hopP.Encode()
		if err1 != nil || err2 != nil {
			return false
		}
		for h := 0; h < n; h++ {
			m := MapMemory{
				addrs[0]: uint32(seed) + uint32(h),
				addrs[1]: uint32(h * 3),
				addrs[2]: uint32(h * 7),
			}
			Exec(s1, &Env{Mem: m})
			Exec(s2, &Env{Mem: m})
		}
		for w := 0; w < n*len(addrs); w++ {
			if s1.Word(w) != s2.Word(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExecMicroburstTPP(b *testing.B) {
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.MustResolve("PacketMetadata:OutputPort")},
			{Op: OpPUSH, Addr: mem.MustResolve("Queue:QueueOccupancy")},
		},
		Mode:     AddrStack,
		MemWords: 15,
	}
	s, err := p.Encode()
	if err != nil {
		b.Fatal(err)
	}
	m := hopMemBench()
	env := &Env{Mem: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetHopOrSP(0)
		Exec(s, env)
	}
}

func hopMemBench() MapMemory {
	return MapMemory{
		mem.SwSwitchID: 1,
		mem.MustResolve("PacketMetadata:OutputPort"): 2,
		mem.MustResolve("Queue:QueueOccupancy"):      3,
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	p := &Program{
		Insns:    []Instruction{{Op: OpPUSH, Addr: mem.SwSwitchID}},
		Mode:     AddrStack,
		MemWords: 10,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := p.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(s); err != nil {
			b.Fatal(err)
		}
	}
}
