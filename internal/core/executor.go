package core

import (
	"encoding/binary"

	"minions/internal/mem"
)

// ExecContext is the pre-allocated scratch an Executor reuses across hops: a
// decoded-instruction cache keyed by the section's code region (header shape
// plus instruction words). Packet memory and the hop counter mutate at every
// hop, but the instructions of a TPP never do, so a switch that keeps seeing
// the same program — the common case for an installed filter — decodes and
// validates it exactly once.
type ExecContext struct {
	insns [MaxInsns]Instruction // decoded-insn cache
	words [MaxInsns]uint32      // raw words the cache was decoded from
	// pushRun[i] is the length (>= 2) of the maximal run of consecutive
	// PUSH instructions starting at i, or 0 when i is not the head of one.
	// Runs are fused into one bulk stat-copy superinstruction at execution:
	// the paper's flagship collection programs (PUSH [QSize] PUSH [TxBytes]
	// ...) are all-PUSH runs, so the interpreter dispatches once per program
	// instead of once per statistic.
	pushRun [MaxInsns]uint8
	n       int
	hdr     uint32 // packed bytes 0 (ver|mode), 1 (#insns), 2 (memwords), 4 (perhop)
	min     int    // minimum section length the cached shape requires
	valid   bool
}

// packHdr packs the shape-defining header bytes. Bytes 3 (hop/SP), 5 (flags)
// and 6-11 (app id, encap, checksum) vary per hop or per flow and do not
// affect decoding, so they stay out of the key.
func packHdr(s Section) uint32 {
	return uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[4])
}

// match reports whether s decodes to exactly the cached instructions.
func (c *ExecContext) match(s Section) bool {
	if !c.valid || len(s) < c.min || packHdr(s) != c.hdr {
		return false
	}
	for i := 0; i < c.n; i++ {
		off := HeaderLen + i*InsnSize
		if binary.BigEndian.Uint32(s[off:off+4]) != c.words[i] {
			return false
		}
	}
	return true
}

// fill decodes s (already validated) into the cache and marks fusable PUSH
// runs.
func (c *ExecContext) fill(s Section) {
	c.n = s.InsnCount()
	for i := 0; i < c.n; i++ {
		off := HeaderLen + i*InsnSize
		w := binary.BigEndian.Uint32(s[off : off+4])
		c.words[i] = w
		c.insns[i] = DecodeInsn(w)
	}
	c.pushRun = [MaxInsns]uint8{}
	for i := 0; i < c.n; {
		if c.insns[i].Op != OpPUSH {
			i++
			continue
		}
		j := i + 1
		for j < c.n && c.insns[j].Op == OpPUSH {
			j++
		}
		if j-i >= 2 {
			c.pushRun[i] = uint8(j - i)
		}
		i = j
	}
	c.hdr = packHdr(s)
	c.min = HeaderLen + c.n*InsnSize + s.MemWords()*WordSize
	c.valid = true
}

// Reset invalidates the decoded-instruction cache.
func (c *ExecContext) Reset() { c.valid = false }

// Executor is a reusable TCPU: an execution environment plus a pre-allocated
// ExecContext. Unlike the one-shot Exec convention, an Executor amortizes
// section validation and instruction decoding across hops and allocates
// nothing on the execute path, which is what lets a simulated switch forward
// TPP traffic at line rate.
//
// An Executor is not safe for concurrent use; give each switch (or worker)
// its own.
type Executor struct {
	env    Env
	ctx    ExecContext
	noFuse bool
}

// NewExecutor returns an Executor bound to env.
func NewExecutor(env Env) *Executor { return &Executor{env: env} }

// SetPushFusion toggles the PUSH-run superinstruction (on by default).
// Semantics are identical either way; the switch exists so benchmarks can
// measure the fused-vs-unfused dispatch cost on the same executor.
func (e *Executor) SetPushFusion(on bool) { e.noFuse = !on }

// Env returns the executor's environment for in-place adjustment (e.g.
// repointing Mem between packets). Mutating it does not invalidate the
// instruction cache.
func (e *Executor) Env() *Env { return &e.env }

// Exec runs one hop of the TPP section in place, exactly like the package
// level Exec, but against the executor's environment and without allocating.
func (e *Executor) Exec(s Section) Result {
	if !e.ctx.match(s) {
		if err := s.Validate(); err != nil {
			return Result{Halted: true, Reason: HaltBadSection}
		}
		e.ctx.fill(s)
	}
	return e.run(s)
}

// ExecBatch runs one hop of every section in ss, appending one Result per
// section to out (allocating only if out lacks capacity) and returning it.
// Homogeneous batches — the same program carried by many packets, the shape
// a switch's ingress queue actually has — hit the decoded-insn cache on
// every section after the first.
func (e *Executor) ExecBatch(ss []Section, out []Result) []Result {
	if cap(out)-len(out) < len(ss) {
		grown := make([]Result, len(out), len(out)+len(ss))
		copy(grown, out)
		out = grown
	}
	for _, s := range ss {
		out = append(out, e.Exec(s))
	}
	return out
}

// effOff maps an instruction operand to an absolute packet-memory word.
func effOff(op uint8, mode AddrMode, hop, perHop, memWords int) (int, bool) {
	w := int(op)
	if mode == AddrHop {
		w = hop*perHop + w
	}
	return w, w < memWords
}

// run is the TCPU interpreter proper (§3.2-3.3 semantics; see Exec for the
// execution model). The section has been validated and decoded into e.ctx.
func (e *Executor) run(s Section) Result {
	var res Result
	mode := s.Mode()
	memWords := s.MemWords()
	hop := s.HopOrSP() // hop number (hop mode) or stack pointer (stack mode)
	perHop := s.PerHopWords()
	env := &e.env

loop:
	for i := 0; i < e.ctx.n; i++ {
		in := e.ctx.insns[i]
		switch in.Op {
		case OpNOP:
			res.Executed++

		case OpHALT:
			res.Executed++
			res.Halted = true
			res.Reason = HaltInstruction
			break loop

		case OpLOAD:
			w, inRange := effOff(in.A, mode, hop, perHop, memWords)
			v, ok := env.Mem.Read(in.Addr)
			if !ok || !inRange {
				res.Skipped++
				continue
			}
			s.SetWord(w, v)
			res.Executed++

		case OpLOADI:
			src, srcOK := effOff(in.B, mode, hop, perHop, memWords)
			dst, dstOK := effOff(in.A, mode, hop, perHop, memWords)
			if !srcOK || !dstOK {
				res.Skipped++
				continue
			}
			ind := mem.Addr(s.Word(src) & 0xFFFF)
			v, ok := env.Mem.Read(ind)
			if !ok {
				res.Skipped++
				continue
			}
			s.SetWord(dst, v)
			res.Executed++

		case OpSTORE:
			w, inRange := effOff(in.A, mode, hop, perHop, memWords)
			if !inRange || !env.writeOK(in.Addr) {
				res.Skipped++
				continue
			}
			if !env.Mem.Write(in.Addr, s.Word(w)) {
				res.Skipped++
				continue
			}
			res.Executed++

		case OpPUSH:
			// A fused run executes every PUSH of the superinstruction in one
			// tight loop — same per-instruction semantics (range halt, skip
			// on absent memory, SP advance), one dispatch. The stat-copy
			// programs of §2 are all-PUSH, so they interpret in a single
			// case.
			if n := int(e.ctx.pushRun[i]); n > 1 && !e.noFuse {
				// The bulk copy hoists what the per-instruction path pays per
				// PUSH: the packet-memory region is sliced once and words are
				// written at direct offsets instead of re-deriving the region
				// from the header on every store.
				run := e.ctx.insns[i : i+n]
				pm := s.Memory()
				if mode == AddrStack {
					for k := range run {
						if hop >= memWords {
							res.Halted = true
							res.Reason = HaltMemoryExhausted
							break loop
						}
						if v, ok := env.Mem.Read(run[k].Addr); ok {
							binary.BigEndian.PutUint32(pm[hop*WordSize:], v)
							hop++
							res.Executed++
						} else {
							res.Skipped++
						}
					}
				} else {
					base := hop * perHop
					for k := range run {
						w := base + int(run[k].A)
						if w >= memWords {
							res.Halted = true
							res.Reason = HaltMemoryExhausted
							break loop
						}
						if v, ok := env.Mem.Read(run[k].Addr); ok {
							binary.BigEndian.PutUint32(pm[w*WordSize:], v)
							res.Executed++
						} else {
							res.Skipped++
						}
					}
				}
				i += n - 1
				continue
			}
			var w int
			var inRange bool
			if mode == AddrStack {
				w, inRange = hop, hop < memWords
			} else {
				w, inRange = effOff(in.A, mode, hop, perHop, memWords)
			}
			if !inRange {
				res.Halted = true
				res.Reason = HaltMemoryExhausted
				break loop
			}
			v, ok := env.Mem.Read(in.Addr)
			if !ok {
				res.Skipped++
				continue
			}
			s.SetWord(w, v)
			if mode == AddrStack {
				hop++
			}
			res.Executed++

		case OpPOP:
			var w int
			var inRange bool
			if mode == AddrStack {
				w, inRange = hop-1, hop > 0
			} else {
				w, inRange = effOff(in.A, mode, hop, perHop, memWords)
			}
			if !inRange {
				res.Halted = true
				res.Reason = HaltMemoryExhausted
				break loop
			}
			if !env.writeOK(in.Addr) || !env.Mem.Write(in.Addr, s.Word(w)) {
				res.Skipped++
				continue
			}
			if mode == AddrStack {
				hop--
			}
			res.Executed++

		case OpCSTORE:
			// CSTORE dst, old(A), new(B): §3.3.3 pseudo-code, verbatim.
			oldW, okA := effOff(in.A, mode, hop, perHop, memWords)
			newW, okB := effOff(in.B, mode, hop, perHop, memWords)
			if !okA || !okB {
				res.Skipped++
				res.Halted = true
				res.Reason = HaltCStoreFailed
				break loop
			}
			cur, ok := env.Mem.Read(in.Addr)
			if !ok {
				res.Skipped++
				res.Halted = true
				res.Reason = HaltCStoreFailed
				break loop
			}
			succeeded := false
			if cur == s.Word(oldW) && env.writeOK(in.Addr) {
				if env.Mem.Write(in.Addr, s.Word(newW)) {
					cur = s.Word(newW)
					succeeded = true
				}
			}
			// "value at Packet:hop[Pre] = value at X" — always.
			s.SetWord(oldW, cur)
			res.Executed++
			if !succeeded {
				res.Halted = true
				res.Reason = HaltCStoreFailed
				break loop
			}

		case OpCEXEC:
			// Halt unless (switch[Addr] & mask) == expected.
			valW, okA := effOff(in.A, mode, hop, perHop, memWords)
			if !okA {
				res.Skipped++
				res.Halted = true
				res.Reason = HaltCExecFailed
				break loop
			}
			mask := ^uint32(0)
			if in.B != in.A {
				if mw, okB := effOff(in.B, mode, hop, perHop, memWords); okB {
					mask = s.Word(mw)
				}
			}
			sw, ok := env.Mem.Read(in.Addr)
			if !ok || sw&mask != s.Word(valW) {
				res.Executed++
				res.Halted = true
				res.Reason = HaltCExecFailed
				break loop
			}
			res.Executed++

		default:
			// Undefined opcode: fail gracefully, skip.
			res.Skipped++
		}
	}

	if mode == AddrHop {
		hop = s.HopOrSP() + 1 // one hop consumed, regardless of halts
	}
	s.SetHopOrSP(hop)
	return res
}
