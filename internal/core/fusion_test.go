package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"minions/internal/mem"
)

// TestPushFusionEquivalence drives random programs (the generator emits
// plenty of consecutive-PUSH runs) through a fused and an unfused executor:
// results, packet memory, stack pointers and switch memory must agree hop
// for hop — the superinstruction is a dispatch optimization, never a
// semantic one.
func TestPushFusionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 800; trial++ {
		p := randomProgram(rng)
		s1, err := p.Encode()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s2 := s1.Clone()
		m1, m2 := randomEnv(rng)
		fused := NewExecutor(Env{Mem: m1})
		plain := NewExecutor(Env{Mem: m2})
		plain.SetPushFusion(false)
		for hop := 0; hop < 3; hop++ {
			r1 := fused.Exec(s1)
			r2 := plain.Exec(s2)
			if r1 != r2 {
				t.Fatalf("trial %d hop %d: fused=%+v unfused=%+v\nprogram: %v", trial, hop, r1, r2, p.Insns)
			}
			if !bytes.Equal(s1, s2) {
				t.Fatalf("trial %d hop %d: sections diverged\nprogram: %v", trial, hop, p.Insns)
			}
			for k := range m1 {
				if m1[k] != m2[k] {
					t.Fatalf("trial %d hop %d: switch mem diverged at %v", trial, hop, k)
				}
			}
		}
	}
}

// TestPushFusionStackExhaustion pins the halt point: a fused run must stop
// with HaltMemoryExhausted at exactly the PUSH that overruns packet memory,
// leaving the same partial stack as the unfused interpreter.
func TestPushFusionStackExhaustion(t *testing.T) {
	p := &Program{
		Mode:     AddrStack,
		MemWords: 2, // room for two of the four pushes
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.SwClockLo},
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.SwClockLo},
		},
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m := MapMemory{mem.SwSwitchID: 11, mem.SwClockLo: 22}
	ex := NewExecutor(Env{Mem: m})
	r := ex.Exec(s)
	if !r.Halted || r.Reason != HaltMemoryExhausted || r.Executed != 2 {
		t.Fatalf("fused exhaustion: %+v", r)
	}
	if s.Word(0) != 11 || s.Word(1) != 22 || s.HopOrSP() != 2 {
		t.Fatalf("partial stack wrong: %d %d sp=%d", s.Word(0), s.Word(1), s.HopOrSP())
	}
}

// TestPushFusionSkipsAbsent: absent addresses inside a fused run are skipped
// without advancing the stack pointer, like the per-instruction path.
func TestPushFusionSkipsAbsent(t *testing.T) {
	p := &Program{
		Mode:     AddrStack,
		MemWords: 4,
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: 0x7777}, // unmapped
			{Op: OpPUSH, Addr: mem.SwClockLo},
		},
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(Env{Mem: MapMemory{mem.SwSwitchID: 5, mem.SwClockLo: 9}})
	r := ex.Exec(s)
	if r.Executed != 2 || r.Skipped != 1 || r.Halted {
		t.Fatalf("skip run: %+v", r)
	}
	if s.Word(0) != 5 || s.Word(1) != 9 || s.HopOrSP() != 2 {
		t.Fatalf("stack after skip: %d %d sp=%d", s.Word(0), s.Word(1), s.HopOrSP())
	}
}

// pushRunSection builds the paper's flagship shape — a run of n PUSH
// statistics — in the given mode.
func pushRunSection(tb testing.TB, n int, mode AddrMode) (Section, MapMemory) {
	tb.Helper()
	addrs := []mem.Addr{
		mem.SwSwitchID,
		mem.DynOutQueueBase + mem.QueueOccPackets,
		mem.DynPacketBase + mem.PktOutputPort,
		mem.SwClockLo,
		mem.LinkAddr(1, mem.LinkTXBytes),
	}
	p := &Program{Mode: mode, MemWords: 3 * n}
	if mode == AddrHop {
		p.PerHopWords = n
	}
	for i := 0; i < n; i++ {
		in := Instruction{Op: OpPUSH, Addr: addrs[i%len(addrs)]}
		if mode == AddrHop {
			in.A = uint8(i)
		}
		p.Insns = append(p.Insns, in)
	}
	s, err := p.Encode()
	if err != nil {
		tb.Fatal(err)
	}
	m := MapMemory{}
	for i, a := range addrs {
		m[a] = uint32(i + 1)
	}
	return s, m
}

// BenchmarkExecutorPushRun measures the fused superinstruction against the
// per-instruction interpreter over PUSH runs of 2..5 statistics — the §2
// collection programs' exact shape. The delta is the dispatch-and-offset
// tax fusion removes from every statistic after the first.
func BenchmarkExecutorPushRun(b *testing.B) {
	for _, n := range []int{2, 3, 5} {
		for _, fused := range []bool{true, false} {
			name := fmt.Sprintf("n=%d/unfused", n)
			if fused {
				name = fmt.Sprintf("n=%d/fused", n)
			}
			b.Run(name, func(b *testing.B) {
				s, mm := pushRunSection(b, n, AddrStack)
				rf := NewRegisterFile()
				for a, v := range mm {
					rf.Set(a, v)
				}
				ex := NewExecutor(Env{Mem: rf})
				ex.SetPushFusion(fused)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.SetHopOrSP(0)
					ex.Exec(s)
				}
			})
		}
	}
}
