package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"minions/internal/mem"
)

// randomProgram builds a structurally valid pseudo-random program whose
// instructions draw from the full opcode set.
func randomProgram(rng *rand.Rand) *Program {
	mode := AddrStack
	if rng.Intn(2) == 0 {
		mode = AddrHop
	}
	perHop := 0
	memWords := 1 + rng.Intn(20)
	if mode == AddrHop {
		perHop = 1 + rng.Intn(4)
		memWords = perHop * (1 + rng.Intn(5))
	}
	limit := memWords
	if mode == AddrHop {
		limit = perHop
	}
	addrs := []mem.Addr{
		mem.SwSwitchID, mem.SwClockLo,
		mem.DynOutQueueBase + mem.QueueOccPackets,
		mem.DynPacketBase + mem.PktOutputPort,
		mem.LinkAddr(1, mem.LinkTXBytes),
		0x7777, // unmapped: exercises graceful failure
	}
	ops := []Opcode{OpNOP, OpLOAD, OpSTORE, OpPUSH, OpPOP, OpCSTORE, OpCEXEC, OpHALT, OpLOADI}
	p := &Program{Mode: mode, PerHopWords: perHop, MemWords: memWords}
	n := 1 + rng.Intn(MaxInsns)
	for i := 0; i < n; i++ {
		in := Instruction{
			Op:   ops[rng.Intn(len(ops))],
			A:    uint8(rng.Intn(limit)),
			B:    uint8(rng.Intn(limit)),
			Addr: addrs[rng.Intn(len(addrs))],
		}
		p.Insns = append(p.Insns, in)
	}
	for i := 0; i < rng.Intn(memWords+1); i++ {
		p.InitMem = append(p.InitMem, rng.Uint32())
	}
	return p
}

func randomEnv(rng *rand.Rand) (MapMemory, MapMemory) {
	a := MapMemory{
		mem.SwSwitchID: rng.Uint32(),
		mem.SwClockLo:  rng.Uint32(),
		mem.DynOutQueueBase + mem.QueueOccPackets: rng.Uint32() % 64,
		mem.DynPacketBase + mem.PktOutputPort:     rng.Uint32() % 4,
		mem.LinkAddr(1, mem.LinkTXBytes):          rng.Uint32(),
	}
	b := make(MapMemory, len(a))
	for k, v := range a {
		b[k] = v
	}
	return a, b
}

// TestExecutorMatchesExec drives random programs through both the one-shot
// Exec and a reused Executor: results, packet memory and switch memory must
// agree hop for hop.
func TestExecutorMatchesExec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		p := randomProgram(rng)
		s1, err := p.Encode()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s2 := s1.Clone()
		m1, m2 := randomEnv(rng)
		ex := NewExecutor(Env{Mem: m2})
		for hop := 0; hop < 3; hop++ {
			r1 := Exec(s1, &Env{Mem: m1})
			r2 := ex.Exec(s2)
			if r1 != r2 {
				t.Fatalf("trial %d hop %d: Exec=%+v Executor=%+v\nprogram: %v", trial, hop, r1, r2, p.Insns)
			}
			if !bytes.Equal(s1, s2) {
				t.Fatalf("trial %d hop %d: sections diverged\nprogram: %v", trial, hop, p.Insns)
			}
			for k := range m1 {
				if m1[k] != m2[k] {
					t.Fatalf("trial %d hop %d: switch mem diverged at %v: %d != %d", trial, hop, k, m1[k], m2[k])
				}
			}
		}
	}
}

// TestExecutorCacheInvalidation: swapping programs under one Executor must
// re-decode, not execute stale instructions.
func TestExecutorCacheInvalidation(t *testing.T) {
	push := &Program{
		Insns:    []Instruction{{Op: OpPUSH, Addr: mem.SwSwitchID}},
		Mode:     AddrStack,
		MemWords: 5,
	}
	nop := &Program{
		Insns:    []Instruction{{Op: OpNOP}},
		Mode:     AddrStack,
		MemWords: 5,
	}
	s1, _ := push.Encode()
	s2, _ := nop.Encode()
	ex := NewExecutor(Env{Mem: MapMemory{mem.SwSwitchID: 99}})
	if r := ex.Exec(s1); r.Executed != 1 || s1.Word(0) != 99 {
		t.Fatalf("push: %+v word0=%d", r, s1.Word(0))
	}
	if r := ex.Exec(s2); r.Executed != 1 || s2.HopOrSP() != 0 {
		t.Fatalf("nop after cache swap: %+v sp=%d", r, s2.HopOrSP())
	}
	if r := ex.Exec(s1); r.Executed != 1 || s1.HopOrSP() != 2 {
		t.Fatalf("push again: %+v sp=%d", r, s1.HopOrSP())
	}
}

// TestExecutorRejectsBadSection: a corrupt header fails exactly like Exec.
func TestExecutorRejectsBadSection(t *testing.T) {
	ex := NewExecutor(Env{Mem: MapMemory{}})
	s := Section{0x00} // wrong version, too short
	if r := ex.Exec(s); !r.Halted || r.Reason != HaltBadSection {
		t.Fatalf("got %+v", r)
	}
	// A valid program whose buffer was truncated below its declared memory.
	p := &Program{Insns: []Instruction{{Op: OpNOP}}, Mode: AddrStack, MemWords: 8}
	full, _ := p.Encode()
	if r := ex.Exec(full); r.Halted {
		t.Fatalf("full section: %+v", r)
	}
	trunc := full[:len(full)-4]
	if r := ex.Exec(trunc); !r.Halted || r.Reason != HaltBadSection {
		t.Fatalf("truncated section executed: %+v", r)
	}
}

// TestExecutorZeroAllocs is the acceptance bound: Executor.Exec on a cached
// section allocates nothing, and neither does ExecBatch into a reused slice.
func TestExecutorZeroAllocs(t *testing.T) {
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.DynOutQueueBase + mem.QueueOccPackets},
			{Op: OpLOAD, A: 2, Addr: mem.SwClockLo},
		},
		Mode:     AddrStack,
		MemWords: 16,
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m := MapMemory{
		mem.SwSwitchID: 7,
		mem.SwClockLo:  1234,
		mem.DynOutQueueBase + mem.QueueOccPackets: 3,
	}
	ex := NewExecutor(Env{Mem: m})
	ex.Exec(s) // warm the cache
	if allocs := testing.AllocsPerRun(100, func() {
		s.SetHopOrSP(0)
		ex.Exec(s)
	}); allocs != 0 {
		t.Errorf("Executor.Exec allocates %.1f objects/op, want 0", allocs)
	}

	batch := make([]Section, 32)
	for i := range batch {
		batch[i] = s.Clone()
	}
	out := make([]Result, 0, len(batch))
	if allocs := testing.AllocsPerRun(100, func() {
		for _, b := range batch {
			b.SetHopOrSP(0)
		}
		out = ex.ExecBatch(batch, out[:0])
	}); allocs != 0 {
		t.Errorf("Executor.ExecBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestExecBatchBeatsOneShot is the wall-clock acceptance criterion: pushing
// N sections through one ExecBatch must beat N independent one-shot Execs,
// which pay validation and decode per hop.
func TestExecBatchBeatsOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.DynOutQueueBase + mem.QueueOccPackets},
			{Op: OpPUSH, Addr: mem.SwClockLo},
		},
		Mode:     AddrStack,
		MemWords: 15,
	}
	tmpl, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m := MapMemory{
		mem.SwSwitchID: 7,
		mem.SwClockLo:  1234,
		mem.DynOutQueueBase + mem.QueueOccPackets: 3,
	}
	const n = 256
	batch := make([]Section, n)
	for i := range batch {
		batch[i] = tmpl.Clone()
	}
	reset := func() {
		for _, s := range batch {
			s.SetHopOrSP(0)
		}
	}

	const rounds = 300
	measure := func(f func()) time.Duration {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < 5; r++ {
			start := time.Now()
			for i := 0; i < rounds; i++ {
				f()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	env := Env{Mem: m}
	oneShot := measure(func() {
		reset()
		for _, s := range batch {
			Exec(s, &env)
		}
	})
	ex := NewExecutor(env)
	out := make([]Result, 0, n)
	batched := measure(func() {
		reset()
		out = ex.ExecBatch(batch, out[:0])
	})
	t.Logf("one-shot %v, batched %v for %d sections x %d rounds", oneShot, batched, n, rounds)
	if batched > oneShot {
		t.Errorf("ExecBatch (%v) slower than N one-shot Execs (%v)", batched, oneShot)
	}
}

// BenchmarkExec is the one-shot path: per-hop validate + decode.
func BenchmarkExec(b *testing.B) {
	s, m := benchSection(b)
	env := Env{Mem: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetHopOrSP(0)
		Exec(s, &env)
	}
}

// BenchmarkExecutorExec is the cached path a switch runs per forwarded
// packet: 0 allocs/op.
func BenchmarkExecutorExec(b *testing.B) {
	s, m := benchSection(b)
	ex := NewExecutor(Env{Mem: m})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetHopOrSP(0)
		ex.Exec(s)
	}
}

// BenchmarkExecutorExecBatch executes 64-section homogeneous batches; the
// per-section metric is directly comparable to BenchmarkExec(utorExec).
func BenchmarkExecutorExecBatch(b *testing.B) {
	tmpl, m := benchSection(b)
	batch := make([]Section, 64)
	for i := range batch {
		batch[i] = tmpl.Clone()
	}
	ex := NewExecutor(Env{Mem: m})
	out := make([]Result, 0, len(batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		for _, s := range batch {
			s.SetHopOrSP(0)
		}
		out = ex.ExecBatch(batch, out[:0])
	}
}

func benchSection(b *testing.B) (Section, MapMemory) {
	b.Helper()
	p := &Program{
		Insns: []Instruction{
			{Op: OpPUSH, Addr: mem.SwSwitchID},
			{Op: OpPUSH, Addr: mem.DynPacketBase + mem.PktOutputPort},
			{Op: OpPUSH, Addr: mem.DynOutQueueBase + mem.QueueOccPackets},
		},
		Mode:     AddrStack,
		MemWords: 15,
	}
	s, err := p.Encode()
	if err != nil {
		b.Fatal(err)
	}
	return s, MapMemory{
		mem.SwSwitchID:                            1,
		mem.DynPacketBase + mem.PktOutputPort:     2,
		mem.DynOutQueueBase + mem.QueueOccPackets: 3,
	}
}
