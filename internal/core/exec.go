package core

import (
	"fmt"

	"minions/internal/mem"
)

// SwitchMemory is the view of switch state a TCPU executes against. The
// implementation (a real pipeline stage in internal/device) resolves dynamic
// window addresses against the packet currently being forwarded, which is
// what gives TPPs the paper's "packet-consistent" semantics: reads return
// the same values the forwarding logic used for this very packet.
//
// Read reports ok=false when the address does not exist on this platform;
// per §3.3 the instruction is then simply not executed ("fails gracefully").
// Write reports ok=false when the address is absent or read-only.
type SwitchMemory interface {
	Read(a mem.Addr) (v uint32, ok bool)
	Write(a mem.Addr, v uint32) (ok bool)
}

// Env carries per-hop execution context. AllowWrite implements the switch
// side of §4.3: the administrator may disable write instructions entirely or
// per address range; a nil AllowWrite permits all writes the memory accepts.
type Env struct {
	Mem        SwitchMemory
	AllowWrite func(a mem.Addr) bool
}

// writeOK applies the write policy.
func (env *Env) writeOK(a mem.Addr) bool {
	return env.AllowWrite == nil || env.AllowWrite(a)
}

// HaltReason says why execution stopped before the last instruction.
type HaltReason uint8

const (
	HaltNone            HaltReason = iota
	HaltCStoreFailed               // CSTORE condition did not hold
	HaltCExecFailed                // CEXEC masked comparison did not hold
	HaltInstruction                // explicit HALT opcode
	HaltBadSection                 // structurally invalid TPP
	HaltMemoryExhausted            // stack pointer ran off packet memory
)

// String names the halt reason.
func (h HaltReason) String() string {
	switch h {
	case HaltNone:
		return "none"
	case HaltCStoreFailed:
		return "cstore-failed"
	case HaltCExecFailed:
		return "cexec-failed"
	case HaltInstruction:
		return "halt-instruction"
	case HaltBadSection:
		return "bad-section"
	case HaltMemoryExhausted:
		return "memory-exhausted"
	}
	return fmt.Sprintf("halt(%d)", uint8(h))
}

// Result summarizes one hop's execution.
type Result struct {
	Executed int // instructions that took effect
	Skipped  int // instructions skipped for absent/denied memory
	Halted   bool
	Reason   HaltReason
}

// Exec runs every instruction of the TPP section against env, patching the
// section's packet memory and header in place, and advances the hop counter
// (hop mode). It implements the execution model of §3.2-3.3:
//
//   - packet-memory effects appear in TPP instruction order;
//   - an instruction addressing switch memory that does not exist is not
//     executed, but the TPP as a whole continues (graceful failure);
//   - a failed CSTORE or CEXEC halts all subsequent instructions;
//   - CSTORE always writes the observed switch value back into operand A, so
//     the end-host can infer success (§3.3.3);
//   - writes denied by policy count as failures for CSTORE and skips for
//     STORE/POP.
//
// Exec is the one-shot convenience form: it validates and decodes the
// section on every call. Hot paths that execute many hops should hold a
// reusable Executor instead, which caches the decoded instructions and
// allocates nothing per hop.
func Exec(s Section, env *Env) Result {
	var e Executor
	e.env = *env
	return e.Exec(s)
}

// MemFunc adapts read/write closures into a SwitchMemory, handy in tests and
// for hosts that expose a synthetic address space.
type MemFunc struct {
	ReadFn  func(a mem.Addr) (uint32, bool)
	WriteFn func(a mem.Addr, v uint32) bool
}

// Read implements SwitchMemory.
func (m MemFunc) Read(a mem.Addr) (uint32, bool) {
	if m.ReadFn == nil {
		return 0, false
	}
	return m.ReadFn(a)
}

// Write implements SwitchMemory.
func (m MemFunc) Write(a mem.Addr, v uint32) bool {
	if m.WriteFn == nil {
		return false
	}
	return m.WriteFn(a, v)
}

// RegisterFile is an array-backed SwitchMemory resembling a hardware
// register file: constant-cost access over the full 16-bit address space,
// no hashing. It is the memory to benchmark the executor against (MapMemory
// lookups would dominate the measurement); like MapMemory, only addresses
// installed with Set are readable, and only installed addresses accept
// writes.
type RegisterFile struct {
	val [1 << 16]uint32
	ok  [1 << 16]bool
}

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile { return &RegisterFile{} }

// Set installs (or overwrites) a register.
func (r *RegisterFile) Set(a mem.Addr, v uint32) { r.val[a], r.ok[a] = v, true }

// Read implements SwitchMemory.
func (r *RegisterFile) Read(a mem.Addr) (uint32, bool) { return r.val[a], r.ok[a] }

// Write implements SwitchMemory; only installed registers are writable.
func (r *RegisterFile) Write(a mem.Addr, v uint32) bool {
	if !r.ok[a] {
		return false
	}
	r.val[a] = v
	return true
}

// MapMemory is a SwitchMemory backed by a plain map, for tests and examples.
type MapMemory map[mem.Addr]uint32

// Read implements SwitchMemory.
func (m MapMemory) Read(a mem.Addr) (uint32, bool) {
	v, ok := m[a]
	return v, ok
}

// Write implements SwitchMemory; only pre-existing addresses are writable,
// mirroring a fixed hardware register file.
func (m MapMemory) Write(a mem.Addr, v uint32) bool {
	if _, ok := m[a]; !ok {
		return false
	}
	m[a] = v
	return true
}
