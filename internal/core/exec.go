package core

import (
	"fmt"

	"minions/internal/mem"
)

// SwitchMemory is the view of switch state a TCPU executes against. The
// implementation (a real pipeline stage in internal/device) resolves dynamic
// window addresses against the packet currently being forwarded, which is
// what gives TPPs the paper's "packet-consistent" semantics: reads return
// the same values the forwarding logic used for this very packet.
//
// Read reports ok=false when the address does not exist on this platform;
// per §3.3 the instruction is then simply not executed ("fails gracefully").
// Write reports ok=false when the address is absent or read-only.
type SwitchMemory interface {
	Read(a mem.Addr) (v uint32, ok bool)
	Write(a mem.Addr, v uint32) (ok bool)
}

// Env carries per-hop execution context. AllowWrite implements the switch
// side of §4.3: the administrator may disable write instructions entirely or
// per address range; a nil AllowWrite permits all writes the memory accepts.
type Env struct {
	Mem        SwitchMemory
	AllowWrite func(a mem.Addr) bool
}

// HaltReason says why execution stopped before the last instruction.
type HaltReason uint8

const (
	HaltNone            HaltReason = iota
	HaltCStoreFailed               // CSTORE condition did not hold
	HaltCExecFailed                // CEXEC masked comparison did not hold
	HaltInstruction                // explicit HALT opcode
	HaltBadSection                 // structurally invalid TPP
	HaltMemoryExhausted            // stack pointer ran off packet memory
)

// String names the halt reason.
func (h HaltReason) String() string {
	switch h {
	case HaltNone:
		return "none"
	case HaltCStoreFailed:
		return "cstore-failed"
	case HaltCExecFailed:
		return "cexec-failed"
	case HaltInstruction:
		return "halt-instruction"
	case HaltBadSection:
		return "bad-section"
	case HaltMemoryExhausted:
		return "memory-exhausted"
	}
	return fmt.Sprintf("halt(%d)", uint8(h))
}

// Result summarizes one hop's execution.
type Result struct {
	Executed int // instructions that took effect
	Skipped  int // instructions skipped for absent/denied memory
	Halted   bool
	Reason   HaltReason
}

// Exec runs every instruction of the TPP section against env, patching the
// section's packet memory and header in place, and advances the hop counter
// (hop mode). It implements the execution model of §3.2-3.3:
//
//   - packet-memory effects appear in TPP instruction order;
//   - an instruction addressing switch memory that does not exist is not
//     executed, but the TPP as a whole continues (graceful failure);
//   - a failed CSTORE or CEXEC halts all subsequent instructions;
//   - CSTORE always writes the observed switch value back into operand A, so
//     the end-host can infer success (§3.3.3);
//   - writes denied by policy count as failures for CSTORE and skips for
//     STORE/POP.
func Exec(s Section, env *Env) Result {
	if err := s.Validate(); err != nil {
		return Result{Halted: true, Reason: HaltBadSection}
	}
	var res Result
	mode := s.Mode()
	memWords := s.MemWords()
	hop := s.HopOrSP() // hop number (hop mode) or stack pointer (stack mode)
	perHop := s.PerHopWords()

	// effOff maps an instruction operand to an absolute packet-memory word.
	effOff := func(op uint8) (int, bool) {
		w := int(op)
		if mode == AddrHop {
			w = hop*perHop + w
		}
		return w, w < memWords
	}
	writeOK := func(a mem.Addr) bool {
		return env.AllowWrite == nil || env.AllowWrite(a)
	}

loop:
	for i := 0; i < s.InsnCount(); i++ {
		in := s.Insn(i)
		switch in.Op {
		case OpNOP:
			res.Executed++

		case OpHALT:
			res.Executed++
			res.Halted = true
			res.Reason = HaltInstruction
			break loop

		case OpLOAD:
			w, inRange := effOff(in.A)
			v, ok := env.Mem.Read(in.Addr)
			if !ok || !inRange {
				res.Skipped++
				continue
			}
			s.SetWord(w, v)
			res.Executed++

		case OpLOADI:
			src, srcOK := effOff(in.B)
			dst, dstOK := effOff(in.A)
			if !srcOK || !dstOK {
				res.Skipped++
				continue
			}
			ind := mem.Addr(s.Word(src) & 0xFFFF)
			v, ok := env.Mem.Read(ind)
			if !ok {
				res.Skipped++
				continue
			}
			s.SetWord(dst, v)
			res.Executed++

		case OpSTORE:
			w, inRange := effOff(in.A)
			if !inRange || !writeOK(in.Addr) {
				res.Skipped++
				continue
			}
			if !env.Mem.Write(in.Addr, s.Word(w)) {
				res.Skipped++
				continue
			}
			res.Executed++

		case OpPUSH:
			var w int
			var inRange bool
			if mode == AddrStack {
				w, inRange = hop, hop < memWords
			} else {
				w, inRange = effOff(in.A)
			}
			if !inRange {
				res.Halted = true
				res.Reason = HaltMemoryExhausted
				break loop
			}
			v, ok := env.Mem.Read(in.Addr)
			if !ok {
				res.Skipped++
				continue
			}
			s.SetWord(w, v)
			if mode == AddrStack {
				hop++
			}
			res.Executed++

		case OpPOP:
			var w int
			var inRange bool
			if mode == AddrStack {
				w, inRange = hop-1, hop > 0
			} else {
				w, inRange = effOff(in.A)
			}
			if !inRange {
				res.Halted = true
				res.Reason = HaltMemoryExhausted
				break loop
			}
			if !writeOK(in.Addr) || !env.Mem.Write(in.Addr, s.Word(w)) {
				res.Skipped++
				continue
			}
			if mode == AddrStack {
				hop--
			}
			res.Executed++

		case OpCSTORE:
			// CSTORE dst, old(A), new(B): §3.3.3 pseudo-code, verbatim.
			oldW, okA := effOff(in.A)
			newW, okB := effOff(in.B)
			if !okA || !okB {
				res.Skipped++
				res.Halted = true
				res.Reason = HaltCStoreFailed
				break loop
			}
			cur, ok := env.Mem.Read(in.Addr)
			if !ok {
				res.Skipped++
				res.Halted = true
				res.Reason = HaltCStoreFailed
				break loop
			}
			succeeded := false
			if cur == s.Word(oldW) && writeOK(in.Addr) {
				if env.Mem.Write(in.Addr, s.Word(newW)) {
					cur = s.Word(newW)
					succeeded = true
				}
			}
			// "value at Packet:hop[Pre] = value at X" — always.
			s.SetWord(oldW, cur)
			res.Executed++
			if !succeeded {
				res.Halted = true
				res.Reason = HaltCStoreFailed
				break loop
			}

		case OpCEXEC:
			// Halt unless (switch[Addr] & mask) == expected.
			valW, okA := effOff(in.A)
			if !okA {
				res.Skipped++
				res.Halted = true
				res.Reason = HaltCExecFailed
				break loop
			}
			mask := ^uint32(0)
			if in.B != in.A {
				if mw, okB := effOff(in.B); okB {
					mask = s.Word(mw)
				}
			}
			sw, ok := env.Mem.Read(in.Addr)
			if !ok || sw&mask != s.Word(valW) {
				res.Executed++
				res.Halted = true
				res.Reason = HaltCExecFailed
				break loop
			}
			res.Executed++

		default:
			// Undefined opcode: fail gracefully, skip.
			res.Skipped++
		}
	}

	if mode == AddrHop {
		hop = s.HopOrSP() + 1 // one hop consumed, regardless of halts
	}
	s.SetHopOrSP(hop)
	return res
}

// MemFunc adapts read/write closures into a SwitchMemory, handy in tests and
// for hosts that expose a synthetic address space.
type MemFunc struct {
	ReadFn  func(a mem.Addr) (uint32, bool)
	WriteFn func(a mem.Addr, v uint32) bool
}

// Read implements SwitchMemory.
func (m MemFunc) Read(a mem.Addr) (uint32, bool) {
	if m.ReadFn == nil {
		return 0, false
	}
	return m.ReadFn(a)
}

// Write implements SwitchMemory.
func (m MemFunc) Write(a mem.Addr, v uint32) bool {
	if m.WriteFn == nil {
		return false
	}
	return m.WriteFn(a, v)
}

// MapMemory is a SwitchMemory backed by a plain map, for tests and examples.
type MapMemory map[mem.Addr]uint32

// Read implements SwitchMemory.
func (m MapMemory) Read(a mem.Addr) (uint32, bool) {
	v, ok := m[a]
	return v, ok
}

// Write implements SwitchMemory; only pre-existing addresses are writable,
// mirroring a fixed hardware register file.
func (m MapMemory) Write(a mem.Addr, v uint32) bool {
	if _, ok := m[a]; !ok {
		return false
	}
	m[a] = v
	return true
}
