package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AddrMode selects how instructions address packet memory (§3.3.2).
type AddrMode uint8

const (
	// AddrStack manages memory with the header stack pointer; PUSH appends.
	AddrStack AddrMode = 0
	// AddrHop addresses word base*PerHopWords+offset, the paper's
	// base:offset x86-style scheme; the hop number lives in the header.
	AddrHop AddrMode = 1
)

// String names the mode for diagnostics.
func (m AddrMode) String() string {
	if m == AddrHop {
		return "hop"
	}
	return "stack"
}

// Flags is the TPP header flag byte.
type Flags uint8

const (
	// FlagReflect asks switches configured for reflection to bounce the TPP
	// back toward its source (§4.4 "Reflective TPP").
	FlagReflect Flags = 1 << iota
	// FlagDropNotify asks switches to mirror the TPP to the drop collector
	// instead of silently discarding it on queue overflow (§2.6).
	FlagDropNotify
	// FlagEchoed marks a standalone TPP that has been echoed back to the
	// sender by the receiver's dataplane shim (§4.2).
	FlagEchoed
)

// Wire-format constants.
const (
	Version      = 1
	HeaderLen    = 12
	InsnSize     = 4
	WordSize     = 4
	MaxInsns     = 5   // the paper's line-rate bound: at most 5 instructions
	MaxMemWords  = 128 // bounded in practice by the MTU (§3.3)
	EtherTypeTPP = 0x6666
	UDPPortTPP   = 0x6666
)

// Section is a raw TPP section (header + instructions + packet memory) laid
// out in a packet buffer. All accessors operate in place so a switch can
// execute a TPP without allocating or reshaping the packet, in the spirit of
// gopacket's DecodingLayer fast path.
type Section []byte

// Errors returned by Validate.
var (
	ErrTooShort    = errors.New("core: TPP section shorter than its header claims")
	ErrBadVersion  = errors.New("core: unsupported TPP version")
	ErrBadInsns    = errors.New("core: instruction count outside 1..5")
	ErrBadMem      = errors.New("core: packet memory size out of range")
	ErrBadChecksum = errors.New("core: TPP checksum mismatch")
)

// Validate checks structural invariants. It does not verify the checksum
// (switches skip that on the fast path; end-hosts call VerifyChecksum).
func (s Section) Validate() error {
	if len(s) < HeaderLen {
		return ErrTooShort
	}
	if s[0]>>4 != Version {
		return ErrBadVersion
	}
	n := int(s[1])
	if n < 1 || n > MaxInsns {
		return ErrBadInsns
	}
	w := int(s[2])
	if w > MaxMemWords {
		return ErrBadMem
	}
	if len(s) < HeaderLen+n*InsnSize+w*WordSize {
		return ErrTooShort
	}
	return nil
}

// Len returns the full byte length of the TPP section.
func (s Section) Len() int {
	return HeaderLen + s.InsnCount()*InsnSize + s.MemWords()*WordSize
}

// Mode returns the packet-memory addressing mode.
func (s Section) Mode() AddrMode { return AddrMode(s[0] & 0x0F) }

// InsnCount returns the number of instructions.
func (s Section) InsnCount() int { return int(s[1]) }

// MemWords returns the packet memory size in 32-bit words.
func (s Section) MemWords() int { return int(s[2]) }

// HopOrSP returns the raw hop/stack-pointer byte.
func (s Section) HopOrSP() int { return int(s[3]) }

// SetHopOrSP updates the hop/stack-pointer byte.
func (s Section) SetHopOrSP(v int) { s[3] = uint8(v) }

// PerHopWords returns the per-hop memory length in words (hop mode).
func (s Section) PerHopWords() int { return int(s[4]) }

// Flags returns the header flag byte.
func (s Section) Flags() Flags { return Flags(s[5]) }

// SetFlags updates the header flag byte.
func (s Section) SetFlags(f Flags) { s[5] = uint8(f) }

// AppID returns the wire application handle.
func (s Section) AppID() uint16 { return binary.BigEndian.Uint16(s[6:8]) }

// EncapProto returns the EtherType of an encapsulated payload (0 = none).
func (s Section) EncapProto() uint16 { return binary.BigEndian.Uint16(s[8:10]) }

// Insn decodes instruction i.
func (s Section) Insn(i int) Instruction {
	off := HeaderLen + i*InsnSize
	return DecodeInsn(binary.BigEndian.Uint32(s[off : off+4]))
}

// memOff returns the byte offset of packet-memory word w.
func (s Section) memOff(w int) int {
	return HeaderLen + s.InsnCount()*InsnSize + w*WordSize
}

// Word reads packet-memory word w.
func (s Section) Word(w int) uint32 {
	off := s.memOff(w)
	return binary.BigEndian.Uint32(s[off : off+4])
}

// SetWord writes packet-memory word w in place.
func (s Section) SetWord(w int, v uint32) {
	off := s.memOff(w)
	binary.BigEndian.PutUint32(s[off:off+4], v)
}

// Memory returns the packet-memory region as a sub-slice (no copy).
func (s Section) Memory() []byte {
	start := HeaderLen + s.InsnCount()*InsnSize
	return s[start : start+s.MemWords()*WordSize]
}

// Words copies the packet memory out as a word slice.
func (s Section) Words() []uint32 {
	out := make([]uint32, s.MemWords())
	for i := range out {
		out[i] = s.Word(i)
	}
	return out
}

// checksum computes the RFC 1071 Internet checksum over the header and
// instructions with the checksum field treated as zero. Packet memory is
// excluded: it mutates at every hop and switches must not pay to re-checksum
// the whole section per hop.
func (s Section) checksum() uint16 {
	end := HeaderLen + s.InsnCount()*InsnSize
	var sum uint32
	for i := 0; i < end; i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(s[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// UpdateChecksum recomputes and stores the header checksum.
func (s Section) UpdateChecksum() {
	binary.BigEndian.PutUint16(s[10:12], s.checksum())
}

// VerifyChecksum reports whether the stored checksum matches the contents.
func (s Section) VerifyChecksum() bool {
	return binary.BigEndian.Uint16(s[10:12]) == s.checksum()
}

// Clone returns an independent copy of the section.
func (s Section) Clone() Section {
	return append(Section(nil), s[:s.Len()]...)
}

// Program is the builder-side representation of a TPP.
type Program struct {
	Insns       []Instruction
	Mode        AddrMode
	PerHopWords int // hop mode: words reserved per hop
	MemWords    int // total packet memory words
	AppID       uint16
	Flags       Flags
	EncapProto  uint16
	InitMem     []uint32 // initial packet-memory contents (may be shorter
	// than MemWords; the rest is zero)
	StartHop int // initial hop/SP value (normally 0)
}

// Validate checks the program against wire-format limits (§3.3: a TPP must
// fit within an MTU, carry 1..5 instructions, and its operands must address
// memory that exists).
func (p *Program) Validate() error {
	if len(p.Insns) == 0 || len(p.Insns) > MaxInsns {
		return ErrBadInsns
	}
	if p.MemWords < 0 || p.MemWords > MaxMemWords {
		return ErrBadMem
	}
	if len(p.InitMem) > p.MemWords {
		return fmt.Errorf("core: %d initial words exceed %d-word memory", len(p.InitMem), p.MemWords)
	}
	if p.Mode == AddrHop && p.PerHopWords <= 0 {
		return fmt.Errorf("core: hop mode requires PerHopWords > 0")
	}
	if p.Mode != AddrStack && p.Mode != AddrHop {
		return fmt.Errorf("core: unknown addressing mode %d", p.Mode)
	}
	for i, in := range p.Insns {
		if err := in.Check(p.Mode, p.MemWords, p.PerHopWords); err != nil {
			return fmt.Errorf("core: instruction %d: %w", i, err)
		}
	}
	return nil
}

// WireLen returns the encoded size in bytes.
func (p *Program) WireLen() int {
	return HeaderLen + len(p.Insns)*InsnSize + p.MemWords*WordSize
}

// Encode serializes the program into a fresh TPP section with a valid
// checksum.
func (p *Program) Encode() (Section, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := make(Section, p.WireLen())
	s[0] = Version<<4 | uint8(p.Mode)&0x0F
	s[1] = uint8(len(p.Insns))
	s[2] = uint8(p.MemWords)
	s[3] = uint8(p.StartHop)
	s[4] = uint8(p.PerHopWords)
	s[5] = uint8(p.Flags)
	binary.BigEndian.PutUint16(s[6:8], p.AppID)
	binary.BigEndian.PutUint16(s[8:10], p.EncapProto)
	for i, in := range p.Insns {
		off := HeaderLen + i*InsnSize
		binary.BigEndian.PutUint32(s[off:off+4], in.Encode())
	}
	for i, w := range p.InitMem {
		s.SetWord(i, w)
	}
	s.UpdateChecksum()
	return s, nil
}

// Decode parses a TPP section back into a Program (copying packet memory).
func Decode(b []byte) (*Program, error) {
	s := Section(b)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.VerifyChecksum() {
		return nil, ErrBadChecksum
	}
	p := &Program{
		Mode:        s.Mode(),
		PerHopWords: s.PerHopWords(),
		MemWords:    s.MemWords(),
		AppID:       s.AppID(),
		Flags:       s.Flags(),
		EncapProto:  s.EncapProto(),
		StartHop:    s.HopOrSP(),
		InitMem:     s.Words(),
	}
	for i := 0; i < s.InsnCount(); i++ {
		p.Insns = append(p.Insns, s.Insn(i))
	}
	return p, nil
}

// HopView is a decoded per-hop slice of a fully executed hop-mode TPP, the
// structure end-hosts use to interpret collected statistics (§2.1: "the
// end-host knows exactly how to interpret values in the packet").
type HopView struct {
	Hop   int
	Words []uint32
}

// HopViews splits a hop-mode section's memory into per-hop slices, one per
// hop the TPP executed on.
func (s Section) HopViews() []HopView {
	if s.Mode() != AddrHop || s.PerHopWords() == 0 {
		return nil
	}
	hops := s.HopOrSP()
	per := s.PerHopWords()
	max := s.MemWords() / per
	if hops > max {
		hops = max
	}
	out := make([]HopView, 0, hops)
	for h := 0; h < hops; h++ {
		words := make([]uint32, per)
		for i := 0; i < per; i++ {
			words[i] = s.Word(h*per + i)
		}
		out = append(out, HopView{Hop: h, Words: words})
	}
	return out
}

// StackView splits a stack-mode section's pushed words into per-hop groups
// of size wordsPerHop (the number of PUSH instructions in the program).
func (s Section) StackView(wordsPerHop int) []HopView {
	if wordsPerHop <= 0 {
		return nil
	}
	sp := s.HopOrSP()
	if sp > s.MemWords() {
		sp = s.MemWords()
	}
	out := make([]HopView, 0, sp/wordsPerHop)
	for h := 0; (h+1)*wordsPerHop <= sp; h++ {
		words := make([]uint32, wordsPerHop)
		for i := 0; i < wordsPerHop; i++ {
			words[i] = s.Word(h*wordsPerHop + i)
		}
		out = append(out, HopView{Hop: h, Words: words})
	}
	return out
}
