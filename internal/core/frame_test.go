package core

import (
	"bytes"
	"testing"

	"minions/internal/mem"
)

func testTPP(t *testing.T) Section {
	t.Helper()
	p := &Program{
		Insns:      []Instruction{{Op: OpPUSH, Addr: mem.SwSwitchID}},
		Mode:       AddrStack,
		MemWords:   5,
		EncapProto: EtherTypeIPv4,
	}
	s, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var (
	macA = MAC{0, 1, 2, 3, 4, 5}
	macB = MAC{6, 7, 8, 9, 10, 11}
)

func TestParseTransparentFrame(t *testing.T) {
	tpp := testTPP(t)
	inner := []byte{0x45, 0x00, 0x00, 0x14} // start of an IP packet
	frame := BuildTransparent(macB, macA, tpp, inner)

	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameTransparent {
		t.Fatalf("kind = %v", f.Kind)
	}
	if f.Eth.Dst != macB || f.Eth.Src != macA || f.Eth.EtherType != EtherTypeTPP {
		t.Errorf("ethernet header: %+v", f.Eth)
	}
	if !bytes.Equal(f.TPP, tpp) {
		t.Error("TPP bytes mismatched")
	}
	if !bytes.Equal(f.Payload, inner) {
		t.Error("payload mismatched")
	}
}

func TestStripTPPRestoresOriginal(t *testing.T) {
	tpp := testTPP(t)
	// A minimal valid inner IPv4 packet (20-byte header, protocol ICMP).
	inner := make([]byte, 20)
	inner[0] = 0x45
	inner[2], inner[3] = 0, 20
	inner[8], inner[9] = 64, 1
	frame := BuildTransparent(macB, macA, tpp, inner)
	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := StripTPP(f)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := ParseFrame(restored)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Kind != FrameNonTPP || rf.Eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("restored frame: kind=%v type=%#04x", rf.Kind, rf.Eth.EtherType)
	}
	if !bytes.Equal(restored[ethernetLen:], inner) {
		t.Error("restored payload differs")
	}
	if _, err := StripTPP(rf); err == nil {
		t.Error("StripTPP on non-TPP frame should fail")
	}
}

func TestParseStandaloneFrame(t *testing.T) {
	tpp := testTPP(t)
	srcIP := [4]byte{10, 0, 0, 1}
	dstIP := [4]byte{10, 0, 0, 2}
	frame := BuildStandalone(macB, macA, srcIP, dstIP, 40000, tpp)

	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameStandalone {
		t.Fatalf("kind = %v", f.Kind)
	}
	if !f.HasIP || !f.HasUDP {
		t.Fatal("missing IP/UDP layers")
	}
	if f.IP.Src != srcIP || f.IP.Dst != dstIP || f.IP.Protocol != IPProtoUDP {
		t.Errorf("IP header: %+v", f.IP)
	}
	if f.UDP.SrcPort != 40000 || f.UDP.DstPort != UDPPortTPP {
		t.Errorf("UDP header: %+v", f.UDP)
	}
	if !bytes.Equal(f.TPP, tpp) {
		t.Error("TPP bytes mismatched")
	}
}

func TestParseNonTPPUDP(t *testing.T) {
	tpp := testTPP(t)
	frame := BuildStandalone(macB, macA, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 40000, tpp)
	// Rewrite the UDP destination port: no longer a TPP frame (Fig 7a's
	// udp.dstport != 0x6666 branch).
	frame[ethernetLen+20+2] = 0x12
	frame[ethernetLen+20+3] = 0x34
	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameNonTPP {
		t.Fatalf("kind = %v", f.Kind)
	}
	if !f.HasUDP || f.UDP.DstPort != 0x1234 {
		t.Errorf("UDP: %+v", f.UDP)
	}
}

func TestParseARPFrame(t *testing.T) {
	frame := make([]byte, 42)
	copy(frame[0:6], macB[:])
	copy(frame[6:12], macA[:])
	frame[12] = 0x08
	frame[13] = 0x06 // ARP
	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameNonTPP || f.HasIP {
		t.Fatalf("%+v", f)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame(make([]byte, 5)); err == nil {
		t.Error("short frame accepted")
	}
	// Transparent frame with truncated TPP.
	tpp := testTPP(t)
	frame := BuildTransparent(macB, macA, tpp, nil)
	if _, err := ParseFrame(frame[:ethernetLen+4]); err == nil {
		t.Error("truncated TPP accepted")
	}
	// IPv4 with bad version nibble.
	bad := make([]byte, ethernetLen+20)
	copy(bad[0:6], macB[:])
	binary := []byte{0x08, 0x00}
	copy(bad[12:14], binary)
	bad[ethernetLen] = 0x65 // version 6
	if _, err := ParseFrame(bad); err == nil {
		t.Error("bad IP version accepted")
	}
}

func TestMACString(t *testing.T) {
	if macA.String() != "00:01:02:03:04:05" {
		t.Errorf("MAC string: %s", macA.String())
	}
}

func TestFrameKindString(t *testing.T) {
	if FrameTransparent.String() != "transparent" ||
		FrameStandalone.String() != "standalone" ||
		FrameNonTPP.String() != "non-tpp" {
		t.Error("FrameKind strings wrong")
	}
}

func TestExecOnParsedFrameInPlace(t *testing.T) {
	// End-to-end within core: build a frame, parse it, execute the TPP
	// through the frame's view, and confirm the frame's bytes changed in
	// place (the no-grow/no-shrink property of Figure 1a).
	tpp := testTPP(t)
	frame := BuildTransparent(macB, macA, tpp, nil)
	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), frame...)
	Exec(f.TPP, &Env{Mem: MapMemory{mem.SwSwitchID: 0xAB}})
	if bytes.Equal(before, frame) {
		t.Fatal("execution did not mutate the frame in place")
	}
	if len(before) != len(frame) {
		t.Fatal("frame length changed")
	}
	f2, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f2.TPP.Word(0) != 0xAB || f2.TPP.HopOrSP() != 1 {
		t.Errorf("executed values not visible on re-parse: %d sp=%d", f2.TPP.Word(0), f2.TPP.HopOrSP())
	}
}

func BenchmarkParseFrameTransparent(b *testing.B) {
	p := &Program{
		Insns:    []Instruction{{Op: OpPUSH, Addr: mem.SwSwitchID}},
		Mode:     AddrStack,
		MemWords: 10,
	}
	tpp, err := p.Encode()
	if err != nil {
		b.Fatal(err)
	}
	frame := BuildTransparent(macB, macA, tpp, make([]byte, 1000))
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}
