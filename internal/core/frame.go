package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the two parse graphs of Figure 7a. A TPP is carried
// either
//
//	transparent: Ethernet(type=0x6666) | TPP | encapsulated payload
//	standalone:  Ethernet(0x0800) | IPv4(proto=17) | UDP(dst=0x6666) | TPP
//
// The decoder is deliberately gopacket-shaped: fixed layer structs decoded
// in place from a []byte with zero copies, plus serialization helpers that
// build frames back up.

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Well-known EtherTypes used by the parse graph.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// Ethernet is the decoded L2 header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

const ethernetLen = 14

// IPv4 is the subset of the IP header the TPP stack needs.
type IPv4 struct {
	IHL      int // header length in bytes
	TotalLen int
	Protocol uint8
	TTL      uint8
	Src, Dst [4]byte
}

// IPProtoUDP is the IP protocol number for UDP.
const IPProtoUDP = 17

// UDP is the decoded transport header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           int
}

const udpLen = 8

// FrameKind says which Figure 7a path a frame took.
type FrameKind uint8

const (
	FrameNonTPP      FrameKind = iota // ordinary traffic
	FrameTransparent                  // Ethernet-encapsulated TPP
	FrameStandalone                   // UDP dport 0x6666 TPP
)

// String names the frame kind.
func (k FrameKind) String() string {
	switch k {
	case FrameTransparent:
		return "transparent"
	case FrameStandalone:
		return "standalone"
	}
	return "non-tpp"
}

// Frame is a decoded Ethernet frame. TPP and Payload alias the input buffer.
type Frame struct {
	Kind    FrameKind
	Eth     Ethernet
	IP      IPv4 // valid when HasIP
	UDP     UDP  // valid when HasUDP
	HasIP   bool
	HasUDP  bool
	TPP     Section // nil when Kind == FrameNonTPP
	Payload []byte  // bytes after the last decoded header
}

// Frame decode errors.
var (
	ErrFrameTooShort = errors.New("core: frame too short")
	ErrBadIPHeader   = errors.New("core: bad IPv4 header")
)

// ParseFrame decodes a frame along the Figure 7a parse graph. The returned
// Frame aliases data; callers that need to retain it must copy (gopacket's
// NoCopy contract).
func ParseFrame(data []byte) (Frame, error) {
	var f Frame
	if len(data) < ethernetLen {
		return f, ErrFrameTooShort
	}
	copy(f.Eth.Dst[:], data[0:6])
	copy(f.Eth.Src[:], data[6:12])
	f.Eth.EtherType = binary.BigEndian.Uint16(data[12:14])
	rest := data[ethernetLen:]

	if f.Eth.EtherType == EtherTypeTPP {
		s := Section(rest)
		if err := s.Validate(); err != nil {
			return f, fmt.Errorf("core: transparent TPP: %w", err)
		}
		f.Kind = FrameTransparent
		f.TPP = s[:s.Len()]
		f.Payload = rest[s.Len():]
		return f, nil
	}

	if f.Eth.EtherType != EtherTypeIPv4 {
		f.Kind = FrameNonTPP
		f.Payload = rest
		return f, nil
	}
	if len(rest) < 20 {
		return f, ErrFrameTooShort
	}
	if rest[0]>>4 != 4 {
		return f, ErrBadIPHeader
	}
	f.IP.IHL = int(rest[0]&0x0F) * 4
	if f.IP.IHL < 20 || len(rest) < f.IP.IHL {
		return f, ErrBadIPHeader
	}
	f.IP.TotalLen = int(binary.BigEndian.Uint16(rest[2:4]))
	f.IP.TTL = rest[8]
	f.IP.Protocol = rest[9]
	copy(f.IP.Src[:], rest[12:16])
	copy(f.IP.Dst[:], rest[16:20])
	f.HasIP = true
	rest = rest[f.IP.IHL:]

	if f.IP.Protocol != IPProtoUDP {
		f.Kind = FrameNonTPP
		f.Payload = rest
		return f, nil
	}
	if len(rest) < udpLen {
		return f, ErrFrameTooShort
	}
	f.UDP.SrcPort = binary.BigEndian.Uint16(rest[0:2])
	f.UDP.DstPort = binary.BigEndian.Uint16(rest[2:4])
	f.UDP.Length = int(binary.BigEndian.Uint16(rest[4:6]))
	f.HasUDP = true
	rest = rest[udpLen:]

	// Figure 7a: udp.dstport == 0x6666 selects the standalone TPP branch.
	if f.UDP.DstPort != UDPPortTPP {
		f.Kind = FrameNonTPP
		f.Payload = rest
		return f, nil
	}
	s := Section(rest)
	if err := s.Validate(); err != nil {
		return f, fmt.Errorf("core: standalone TPP: %w", err)
	}
	f.Kind = FrameStandalone
	f.TPP = s[:s.Len()]
	f.Payload = rest[s.Len():]
	return f, nil
}

// BuildTransparent assembles Ethernet(0x6666)|TPP|payload. The TPP's
// EncapProto field should already name the payload's original EtherType so
// the receiving shim can restore the packet (§4.2 interposition).
func BuildTransparent(dst, src MAC, tpp Section, payload []byte) []byte {
	out := make([]byte, ethernetLen+len(tpp)+len(payload))
	copy(out[0:6], dst[:])
	copy(out[6:12], src[:])
	binary.BigEndian.PutUint16(out[12:14], EtherTypeTPP)
	copy(out[ethernetLen:], tpp)
	copy(out[ethernetLen+len(tpp):], payload)
	return out
}

// BuildStandalone assembles Ethernet|IPv4|UDP(dst 0x6666)|TPP, the shape the
// TPP executor library uses for probe packets (§4.4).
func BuildStandalone(dst, src MAC, srcIP, dstIP [4]byte, srcPort uint16, tpp Section) []byte {
	udpTotal := udpLen + len(tpp)
	ipTotal := 20 + udpTotal
	out := make([]byte, ethernetLen+ipTotal)
	copy(out[0:6], dst[:])
	copy(out[6:12], src[:])
	binary.BigEndian.PutUint16(out[12:14], EtherTypeIPv4)

	ip := out[ethernetLen:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	ip[9] = IPProtoUDP
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:20]))

	udp := ip[20:]
	binary.BigEndian.PutUint16(udp[0:2], srcPort)
	binary.BigEndian.PutUint16(udp[2:4], UDPPortTPP)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpTotal))
	copy(udp[udpLen:], tpp)
	return out
}

// ipChecksum computes the IPv4 header checksum with the checksum field
// assumed zero in hdr.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// StripTPP rebuilds the original frame from a transparent-mode TPP frame,
// restoring the encapsulated EtherType — what the receive-side shim does
// before handing the packet to the network stack (§4.2).
func StripTPP(f Frame) ([]byte, error) {
	if f.Kind != FrameTransparent {
		return nil, fmt.Errorf("core: StripTPP on %v frame", f.Kind)
	}
	out := make([]byte, ethernetLen+len(f.Payload))
	copy(out[0:6], f.Eth.Dst[:])
	copy(out[6:12], f.Eth.Src[:])
	binary.BigEndian.PutUint16(out[12:14], f.TPP.EncapProto())
	copy(out[ethernetLen:], f.Payload)
	return out, nil
}
