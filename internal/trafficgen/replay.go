package trafficgen

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/telemetry/trace"
)

// ErrTopologyMismatch reports a trace that cannot be replayed into the given
// network: a record names a source or destination node the replay topology
// does not have. Replay errors wrap it, so callers distinguish "wrong
// topology" from I/O or decode failures with errors.Is.
var ErrTopologyMismatch = errors.New("trace does not match replay topology")

// ReplayStats tallies what a replay injected. Counters are atomic because
// sharded replays inject from one goroutine per shard; read them after (or
// during) the run with the accessor methods.
type ReplayStats struct {
	packets    atomic.Uint64
	bytes      atomic.Uint64
	standalone atomic.Uint64

	// Standalone-probe wire bytes per TPP application ID — the figure the
	// original run's apps derived probe overhead from (e.g. CONGA's
	// ProbeMbps), so a replay reproduces those numbers without the apps
	// running. Probes are control-plane rare, so a mutex-guarded map is
	// fine here where the per-packet counters above are not.
	mu            sync.Mutex
	probeBytesByA map[uint16]uint64
}

// Packets returns the number of packets injected so far.
func (s *ReplayStats) Packets() uint64 { return s.packets.Load() }

// Bytes returns the wire bytes injected so far.
func (s *ReplayStats) Bytes() uint64 { return s.bytes.Load() }

// Standalone returns the number of standalone probes injected so far.
func (s *ReplayStats) Standalone() uint64 { return s.standalone.Load() }

// StandaloneBytes returns the standalone-probe wire bytes injected for one
// TPP application ID.
func (s *ReplayStats) StandaloneBytes(appID uint16) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probeBytesByA[appID]
}

// TotalStandaloneBytes returns the standalone-probe wire bytes injected
// across all TPP application IDs. Useful when the replaying caller does not
// know which app IDs the capturing run had registered.
func (s *ReplayStats) TotalStandaloneBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, b := range s.probeBytesByA {
		total += b
	}
	return total
}

// replaySender re-injects recorded transmits, one resident sim.Handler per
// engine: each firing injects exactly one record and schedules the next at
// its recorded timestamp, so replay adds no per-packet closures. On a
// single-shard simulation one sender carries the whole trace in capture
// order; under sharding every source host gets its own sender on its own
// shard engine (hs[i] is the source of recs[i] either way).
type replaySender struct {
	hs    []*host.Host
	eng   *sim.Engine
	recs  []trace.Rec
	stats *ReplayStats
}

// Handle implements sim.Handler: inject record idx, arm record idx+1.
func (r *replaySender) Handle(idx uint64) {
	r.inject(&r.recs[idx], r.hs[idx])
	if next := idx + 1; next < uint64(len(r.recs)) {
		r.eng.Schedule(sim.Time(r.recs[next].At), r, next)
	}
}

func (r *replaySender) inject(rec *trace.Rec, h *host.Host) {
	p := h.NewPacket(link.NodeID(rec.Dst), rec.SrcPort, rec.DstPort, rec.Proto, int(rec.Size)-len(rec.TPP))
	p.PathTag = rec.PathTag
	p.TTL = rec.TTL
	p.Seq = rec.Seq
	p.Ack = rec.Ack
	p.TFlags = rec.TFlags
	p.Standalone = rec.Standalone()
	if len(rec.TPP) > 0 {
		buf := p.SectionBuf(len(rec.TPP))
		copy(buf, rec.TPP)
		p.TPP = core.Section(buf)
		p.Size += len(rec.TPP)
	}
	r.stats.packets.Add(1)
	r.stats.bytes.Add(uint64(p.Size))
	if p.Standalone && p.TPP != nil {
		r.stats.standalone.Add(1)
		appID := p.TPP.AppID()
		r.stats.mu.Lock()
		r.stats.probeBytesByA[appID] += uint64(p.Size)
		r.stats.mu.Unlock()
	}
	h.Inject(p)
}

// Replay schedules every record of a recorded trace for re-injection at its
// recorded timestamp, on the engine of its recorded source host. Hosts are
// looked up by node ID in hosts; a record whose source is not a replay host
// or whose destination is neither a replay host nor a listed extra
// destination is an error wrapping ErrTopologyMismatch (the trace belongs
// to a different topology). Destinations need not be hosts — debugging
// probes target switches directly — so callers replaying such traces pass
// the topology's switch NodeIDs as extraDests via ReplayTo.
//
// The returned stats are filled in as the simulation runs. Replay injects
// below the shim (no filter interposition), so the replaying hosts need no
// filters, apps or transports: the network — switches, links, TPP execution
// along each path, standalone echoes at destinations — does the rest, which
// is what makes a replayed run reproduce the original packet for packet.
func Replay(hosts []*host.Host, recs []trace.Rec) (*ReplayStats, error) {
	return ReplayTo(hosts, nil, recs)
}

// ReplayTo is Replay with extra valid destinations: node IDs (typically the
// topology's switches) that records may target even though no replay host
// answers to them.
func ReplayTo(hosts []*host.Host, extraDests []link.NodeID, recs []trace.Rec) (*ReplayStats, error) {
	byID := make(map[link.NodeID]*host.Host, len(hosts))
	sharded := false
	for _, h := range hosts {
		byID[h.ID()] = h
		if h.Engine() != hosts[0].Engine() {
			sharded = true
		}
	}
	destOK := make(map[link.NodeID]bool, len(extraDests))
	for _, id := range extraDests {
		destOK[id] = true
	}
	for _, rec := range recs {
		if byID[link.NodeID(rec.Src)] == nil {
			return nil, fmt.Errorf("trafficgen: record from node %d, which is not a replay host: %w", rec.Src, ErrTopologyMismatch)
		}
		if dst := link.NodeID(rec.Dst); byID[dst] == nil && !destOK[dst] {
			return nil, fmt.Errorf("trafficgen: record to node %d, which is neither a replay host nor a listed destination: %w", rec.Dst, ErrTopologyMismatch)
		}
	}
	stats := &ReplayStats{probeBytesByA: make(map[uint16]uint64)}
	if len(recs) == 0 {
		return stats, nil
	}
	if !sharded {
		// Single shard: one sender walks the whole trace in capture order,
		// so same-timestamp sends from different hosts re-enter the engine
		// in exactly the order the capturing run emitted them. Per-host
		// senders would re-resolve those ties by scheduling order, and at a
		// drop-tail queue during phase-locked ramp-up that decides which
		// flow's packet is the one dropped.
		rs := append([]trace.Rec(nil), recs...)
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].At < rs[j].At })
		hs := make([]*host.Host, len(rs))
		for i := range rs {
			hs[i] = byID[link.NodeID(rs[i].Src)]
		}
		s := &replaySender{hs: hs, eng: hs[0].Engine(), recs: rs, stats: stats}
		s.eng.Schedule(sim.Time(rs[0].At), s, 0)
		return stats, nil
	}
	perSrc := make(map[link.NodeID][]trace.Rec)
	for _, rec := range recs {
		id := link.NodeID(rec.Src)
		perSrc[id] = append(perSrc[id], rec)
	}
	for id, rs := range perSrc {
		// Capture writes in send order, but be robust to merged traces.
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].At < rs[j].At })
		h := byID[id]
		hs := make([]*host.Host, len(rs))
		for i := range hs {
			hs[i] = h
		}
		s := &replaySender{hs: hs, eng: h.Engine(), recs: rs, stats: stats}
		s.eng.Schedule(sim.Time(rs[0].At), s, 0)
	}
	return stats, nil
}

// ReplayFrom decodes a whole trace stream and schedules it via Replay.
func ReplayFrom(hosts []*host.Host, r io.Reader) (*ReplayStats, error) {
	return ReplayFromTo(hosts, nil, r)
}

// ReplayFromTo decodes a whole trace stream and schedules it via ReplayTo.
func ReplayFromTo(hosts []*host.Host, extraDests []link.NodeID, r io.Reader) (*ReplayStats, error) {
	recs, err := trace.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ReplayTo(hosts, extraDests, recs)
}
