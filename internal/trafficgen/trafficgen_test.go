package trafficgen_test

import (
	"testing"

	"minions/internal/sim"
	"minions/internal/topo"
	"minions/internal/trafficgen"
)

func TestAllToAllOfferedLoad(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 6, 100)
	sinks := trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000,
		Load:     0.30,
		Duration: 2 * sim.Second,
		Seed:     42,
	})
	n.Eng.RunUntil(2*sim.Second + 100*sim.Millisecond)

	var total uint64
	for _, s := range sinks {
		total += s.Bytes
	}
	// 6 hosts x 100 Mb/s x 30% x 2 s = 45 MB offered. Allow wide slack for
	// Poisson variance and queueing losses, but the order must be right.
	mb := float64(total) / 1e6
	if mb < 25 || mb > 60 {
		t.Errorf("delivered %.1f MB, want ~45 MB at 30%% load", mb)
	}
	// Traffic must reach every host.
	for i, s := range sinks {
		if s.Packets == 0 {
			t.Errorf("host %d received nothing", i)
		}
	}
}

func TestAllToAllZeroLoad(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)
	sinks := trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000,
		Load:     0,
		Duration: sim.Second,
	})
	n.Eng.Run()
	for _, s := range sinks {
		if s.Bytes != 0 {
			t.Error("zero load generated traffic")
		}
	}
}

// TestTrafficgenZeroAllocs guards the de-closured pacing path: a warmed
// all-to-all workload — Poisson arrivals, destination draws, burst sends,
// deliveries, drops — runs entirely on typed resident handlers and pooled
// packets, so advancing the simulation allocates nothing.
func TestTrafficgenZeroAllocs(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 6, 100)
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000,
		Load:     0.30,
		Duration: 3600 * sim.Second, // longer than any window measured below
		Seed:     42,
	})
	// Warm pools, rings, wheel buckets and the sinks.
	n.Eng.RunUntil(500 * sim.Millisecond)
	window := sim.Time(0)
	allocs := testing.AllocsPerRun(100, func() {
		window += 2 * sim.Millisecond
		n.Eng.RunUntil(500*sim.Millisecond + window)
	})
	if allocs != 0 {
		t.Fatalf("all-to-all steady state allocated %.2f per 2 ms window, want 0", allocs)
	}
}

func TestPermutationFlows(t *testing.T) {
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)
	flows := trafficgen.Permutation(hosts, 1440, 2)
	if len(flows) != 4 {
		t.Fatalf("flows = %d", len(flows))
	}
	n.Eng.RunUntil(500 * sim.Millisecond)
	for i, f := range flows {
		if f.TxDataPkts == 0 {
			t.Errorf("flow %d sent nothing", i)
		}
	}
}
