// Package trafficgen generates the workloads of the paper's experiments:
// the all-to-all short-message pattern of §2.1 ("each node sends a small
// 10kB message to every other node ... total application-level offered load
// is 30%"), plus Poisson variants for longer runs.
package trafficgen

import (
	"math/rand"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/transport"
)

// AllToAllConfig parameterizes the Figure 1 workload.
type AllToAllConfig struct {
	MsgBytes int     // message size (paper: 10 kB)
	Load     float64 // offered load as a fraction of NIC capacity (paper: 0.30)
	PktSize  int     // payload bytes per packet (default 1440)
	DstPort  uint16  // receiving port (default 9000)
	Duration sim.Time
	Seed     int64
}

// allToAllSender is one host's Poisson message generator, resident in the
// engine as its own typed Handler: each firing picks a destination, bursts
// one message, and re-arms itself — no per-message closure allocation, so a
// warmed all-to-all workload runs the engine's zero-allocation fast path
// (guarded by TestTrafficgenZeroAllocs).
type allToAllSender struct {
	eng      *sim.Engine
	hosts    []*host.Host
	src      *host.Host
	rng      *rand.Rand
	meanGap  float64
	msgBytes int
	pktSize  int
	sport    uint16
	dport    uint16
	duration sim.Time
}

// arm schedules the next message arrival with an exponential gap.
func (s *allToAllSender) arm() {
	gap := sim.Time(s.rng.ExpFloat64() * s.meanGap)
	if gap < 1 {
		gap = 1
	}
	s.eng.ScheduleAfter(gap, s, 0)
}

// Handle implements sim.Handler: burst one message to a uniformly random
// other host and re-arm, stopping once the configured duration has passed.
func (s *allToAllSender) Handle(uint64) {
	if s.eng.Now() >= s.duration {
		return
	}
	dst := s.hosts[s.rng.Intn(len(s.hosts))]
	for dst == s.src {
		dst = s.hosts[s.rng.Intn(len(s.hosts))]
	}
	transport.SendBurst(s.src, dst.ID(), s.sport, s.dport, s.msgBytes, s.pktSize)
	s.arm()
}

// AllToAll schedules Poisson message arrivals on every host, each message
// bursted to a uniformly random other host, and returns the sinks (one per
// host) counting deliveries.
func AllToAll(hosts []*host.Host, cfg AllToAllConfig) []*transport.Sink {
	if cfg.PktSize == 0 {
		cfg.PktSize = 1440
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 9000
	}
	sinks := make([]*transport.Sink, len(hosts))
	for i, h := range hosts {
		sinks[i] = transport.NewSink(h, cfg.DstPort, 17)
	}
	for i, h := range hosts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		nicBps := float64(h.NIC().RateBps())
		msgsPerSec := cfg.Load * nicBps / (float64(cfg.MsgBytes) * 8)
		if msgsPerSec <= 0 {
			continue
		}
		s := &allToAllSender{
			eng:      h.Engine(),
			hosts:    hosts,
			src:      h,
			rng:      rng,
			meanGap:  float64(sim.Second) / msgsPerSec,
			msgBytes: cfg.MsgBytes,
			pktSize:  cfg.PktSize,
			sport:    uint16(10000 + i),
			dport:    cfg.DstPort,
			duration: cfg.Duration,
		}
		s.arm()
	}
	return sinks
}

// RandomFlowsConfig parameterizes UniformRandomFlows.
type RandomFlowsConfig struct {
	Flows    int      // number of concurrent CBR flows
	RateBps  int64    // per-flow sending rate
	PktSize  int      // wire bytes per packet (default 1500)
	DstPort  uint16   // receiving port (default 9100)
	Seed     int64    // pair selection and start jitter
	MaxStart sim.Time // flows start uniformly in [0, MaxStart) (default 1 ms)
}

// UniformRandomFlows starts long-lived CBR flows between uniformly random
// distinct host pairs — the many-flow workload for fat-tree scale tests.
// Starts are jittered so paced flows do not phase-lock, and every host gets
// a sink so all deliveries are counted (and pooled packets recycled). The
// per-packet path is allocation-free in steady state: flows pace themselves
// as resident engine events and draw packets from the hosts' shared pool.
func UniformRandomFlows(hosts []*host.Host, cfg RandomFlowsConfig) ([]*transport.UDPFlow, []*transport.Sink) {
	if len(hosts) < 2 {
		panic("trafficgen: UniformRandomFlows needs at least 2 hosts")
	}
	if cfg.PktSize == 0 {
		cfg.PktSize = 1500
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 9100
	}
	if cfg.MaxStart == 0 {
		cfg.MaxStart = sim.Millisecond
	}
	sinks := make([]*transport.Sink, len(hosts))
	for i, h := range hosts {
		sinks[i] = transport.NewSink(h, cfg.DstPort, link.ProtoUDP)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]*transport.UDPFlow, 0, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		si := rng.Intn(len(hosts))
		di := rng.Intn(len(hosts))
		for di == si {
			di = rng.Intn(len(hosts))
		}
		src := hosts[si]
		f := transport.NewUDPFlow(src, hosts[di].ID(), uint16(20000+i), cfg.DstPort, cfg.PktSize)
		f.SetRateBps(cfg.RateBps)
		flows = append(flows, f)
		src.Engine().At(sim.Time(rng.Int63n(int64(cfg.MaxStart))), f.Start)
	}
	return flows, sinks
}

// Permutation starts one long-lived TCP flow per host toward the next host
// (mod n) and returns the flows — a classic permutation workload for
// bandwidth-sharing tests.
func Permutation(hosts []*host.Host, mss int, ackEvery int) []*transport.TCPFlow {
	n := len(hosts)
	flows := make([]*transport.TCPFlow, 0, n)
	for i, h := range hosts {
		dst := hosts[(i+1)%n]
		sport := uint16(20000 + i)
		dport := uint16(30000 + i)
		transport.NewTCPSink(dst, dport, ackEvery)
		f := transport.NewTCPFlow(h, dst.ID(), sport, dport, mss)
		flows = append(flows, f)
		f.Start()
	}
	return flows
}
