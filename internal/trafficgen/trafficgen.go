// Package trafficgen generates the workloads of the paper's experiments:
// the all-to-all short-message pattern of §2.1 ("each node sends a small
// 10kB message to every other node ... total application-level offered load
// is 30%"), plus Poisson variants for longer runs.
//
// Deprecated: the generators here are now thin bridges over the public
// minions/workload engine — AllToAll and UniformRandomFlows compile the
// canned workload.AllToAll / workload.UniformRandom Specs, byte-identically
// to the historical implementations (the testbed golden tables pin this).
// New code should build a workload.Spec directly; only Permutation and the
// trace replay entry points remain native here.
package trafficgen

import (
	"minions/internal/host"
	"minions/internal/sim"
	"minions/internal/transport"
	"minions/workload"
)

// AllToAllConfig parameterizes the Figure 1 workload.
type AllToAllConfig struct {
	MsgBytes int     // message size (paper: 10 kB)
	Load     float64 // offered load as a fraction of NIC capacity (paper: 0.30)
	PktSize  int     // payload bytes per packet (default 1440)
	DstPort  uint16  // receiving port (default 9000)
	Duration sim.Time
	Seed     int64
}

// AllToAll schedules Poisson message arrivals on every host, each message
// bursted to a uniformly random other host, and returns the sinks (one per
// host) counting deliveries.
//
// Deprecated: bridge over workload.AllToAll; build the Spec directly.
func AllToAll(hosts []*host.Host, cfg AllToAllConfig) []*transport.Sink {
	r, err := workload.AllToAll(workload.AllToAllConfig{
		MsgBytes: cfg.MsgBytes,
		Load:     cfg.Load,
		PktSize:  cfg.PktSize,
		DstPort:  cfg.DstPort,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
	}).Attach(hosts)
	if err != nil {
		panic("trafficgen: " + err.Error())
	}
	return r.Sinks
}

// RandomFlowsConfig parameterizes UniformRandomFlows.
type RandomFlowsConfig struct {
	Flows    int      // number of concurrent CBR flows
	RateBps  int64    // per-flow sending rate
	PktSize  int      // wire bytes per packet (default 1500)
	DstPort  uint16   // receiving port (default 9100)
	Seed     int64    // pair selection and start jitter
	MaxStart sim.Time // flows start uniformly in [0, MaxStart) (default 1 ms)
}

// UniformRandomFlows starts long-lived CBR flows between uniformly random
// distinct host pairs — the many-flow workload for fat-tree scale tests.
//
// Deprecated: bridge over workload.UniformRandom; build the Spec directly.
func UniformRandomFlows(hosts []*host.Host, cfg RandomFlowsConfig) ([]*transport.UDPFlow, []*transport.Sink) {
	if len(hosts) < 2 {
		panic("trafficgen: UniformRandomFlows needs at least 2 hosts")
	}
	r, err := workload.UniformRandom(workload.UniformRandomConfig{
		Flows:    cfg.Flows,
		RateBps:  cfg.RateBps,
		PktSize:  cfg.PktSize,
		DstPort:  cfg.DstPort,
		Seed:     cfg.Seed,
		MaxStart: cfg.MaxStart,
	}).Attach(hosts)
	if err != nil {
		panic("trafficgen: " + err.Error())
	}
	return r.UDPFlows, r.Sinks
}

// Permutation starts one long-lived TCP flow per host toward the next host
// (mod n) and returns the flows — a classic permutation workload for
// bandwidth-sharing tests.
func Permutation(hosts []*host.Host, mss int, ackEvery int) []*transport.TCPFlow {
	n := len(hosts)
	flows := make([]*transport.TCPFlow, 0, n)
	for i, h := range hosts {
		dst := hosts[(i+1)%n]
		sport := uint16(20000 + i)
		dport := uint16(30000 + i)
		transport.NewTCPSink(dst, dport, ackEvery)
		f := transport.NewTCPFlow(h, dst.ID(), sport, dport, mss)
		flows = append(flows, f)
		f.Start()
	}
	return flows
}
