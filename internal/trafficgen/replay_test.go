package trafficgen_test

import (
	"bytes"
	"errors"
	"testing"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/sim"
	"minions/internal/topo"
	"minions/internal/trafficgen"
	"minions/internal/transport"
	"minions/telemetry/trace"
)

// buildDumbbell wires the capture/replay test network: a 4-host dumbbell
// with sinks on the right-side hosts. Flows and TPP filters are the
// caller's business — a replay run attaches neither.
func buildDumbbell(seed int64) (*topo.Network, []*host.Host, []*transport.Sink) {
	n := topo.New(seed)
	hosts, _, _ := topo.Dumbbell(n, 4, 100)
	sinks := []*transport.Sink{
		transport.NewSink(hosts[2], 9000, 17),
		transport.NewSink(hosts[3], 9001, 17),
	}
	return n, hosts, sinks
}

// TestReplayReproducesRun is the core replay contract: capture a live run
// (instrumented flows plus a standalone probe), replay the trace into a
// fresh identical topology with no apps, filters or transports attached,
// and require identical delivery at every sink.
func TestReplayReproducesRun(t *testing.T) {
	n1, hosts1, sinks1 := buildDumbbell(11)
	app := n1.CP.RegisterApp("replay-test")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	if _, err := hosts1[0].AddTPP(app, host.FilterSpec{Proto: 17}, prog, 1, 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cap, err := trace.Start(&buf, hosts1...)
	if err != nil {
		t.Fatal(err)
	}

	f0 := transport.NewUDPFlow(hosts1[0], hosts1[2].ID(), 9000, 9000, 1000)
	f0.SetRateBps(20_000_000)
	f0.Start()
	f1 := transport.NewUDPFlow(hosts1[1], hosts1[3].ID(), 9001, 9001, 600)
	f1.SetRateBps(10_000_000)
	f1.Start()
	err = hosts1[0].ExecuteTPP(app, prog, hosts1[3].ID(), host.ExecOpts{}, func(core.Section, error) {})
	if err != nil {
		t.Fatal(err)
	}

	n1.Eng.RunUntil(30 * sim.Millisecond)
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}

	n2, hosts2, sinks2 := buildDumbbell(11)
	stats, err := trafficgen.ReplayFrom(hosts2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n2.Eng.RunUntil(30 * sim.Millisecond)

	if stats.Packets() != cap.Packets {
		t.Fatalf("replay injected %d packets, capture recorded %d", stats.Packets(), cap.Packets)
	}
	if stats.Standalone() != 1 {
		t.Fatalf("replay injected %d standalone probes, want 1", stats.Standalone())
	}
	if got := stats.StandaloneBytes(app.Wire); got == 0 {
		t.Fatal("no standalone bytes tallied for the probing app")
	}
	for i := range sinks1 {
		if sinks1[i].Packets != sinks2[i].Packets || sinks1[i].Bytes != sinks2[i].Bytes {
			t.Fatalf("sink %d: live run delivered %d pkts/%d B, replay %d pkts/%d B",
				i, sinks1[i].Packets, sinks1[i].Bytes, sinks2[i].Packets, sinks2[i].Bytes)
		}
	}

	// The destination host regenerated the probe echo in-network: the
	// original capture skipped it, so the replayed network must have seen
	// exactly one echo transmission too.
	if hosts2[3].Stats().TPPsEchoed != 1 {
		t.Fatalf("replay destination echoed %d probes, want 1", hosts2[3].Stats().TPPsEchoed)
	}
}

// TestReplayWrongTopology: a trace whose source nodes don't exist in the
// replay network is rejected up front.
func TestReplayWrongTopology(t *testing.T) {
	n1, hosts1, _ := buildDumbbell(5)
	var buf bytes.Buffer
	cap, err := trace.Start(&buf, hosts1...)
	if err != nil {
		t.Fatal(err)
	}
	// Send from the last host: its node ID is beyond what a smaller
	// topology allocates, so the replay lookup must fail.
	f := transport.NewUDPFlow(hosts1[3], hosts1[0].ID(), 9000, 9000, 1000)
	f.SetRateBps(10_000_000)
	f.Start()
	n1.Eng.RunUntil(5 * sim.Millisecond)
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}

	n2 := topo.New(5)
	smaller, _, _ := topo.Dumbbell(n2, 2, 100)
	_, err = trafficgen.ReplayFrom(smaller, bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("replay accepted a trace from a different topology")
	}
	if !errors.Is(err, trafficgen.ErrTopologyMismatch) {
		t.Fatalf("error %v does not wrap ErrTopologyMismatch", err)
	}
}

// TestReplayMissingDestination: a record addressed to a node the replay
// topology cannot deliver to — here a switch — is rejected as a topology
// mismatch unless the caller lists it via ReplayTo. Regression test for the
// silent failure mode where such records were injected anyway and the
// packets wandered until TTL death, skewing every replayed counter.
func TestReplayMissingDestination(t *testing.T) {
	n1, hosts1, _ := buildDumbbell(7)
	app := n1.CP.RegisterApp("replay-dst-test")
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)

	var buf bytes.Buffer
	cap, err := trace.Start(&buf, hosts1...)
	if err != nil {
		t.Fatal(err)
	}
	// A debugging probe addressed to the left dumbbell switch itself.
	swID := n1.Switches[0].NodeID()
	err = hosts1[0].ExecuteTPP(app, prog, swID, host.ExecOpts{}, func(core.Section, error) {})
	if err != nil {
		t.Fatal(err)
	}
	n1.Eng.RunUntil(5 * sim.Millisecond)
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("capture recorded no packets")
	}

	n2, hosts2, _ := buildDumbbell(7)
	if _, err := trafficgen.Replay(hosts2, recs); !errors.Is(err, trafficgen.ErrTopologyMismatch) {
		t.Fatalf("Replay with a switch-targeted record: err %v, want ErrTopologyMismatch", err)
	}
	if _, err := trafficgen.ReplayTo(hosts2, []link.NodeID{n2.Switches[0].NodeID()}, recs); err != nil {
		t.Fatalf("ReplayTo with the switch listed: %v", err)
	}
}
