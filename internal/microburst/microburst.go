// Package microburst implements the §2.1 application: per-packet visibility
// into queue occupancy. Every instrumented packet carries the three-PUSH TPP
//
//	PUSH [Switch:SwitchID]
//	PUSH [PacketMetadata:OutputPort]
//	PUSH [Queue:QueueOccupancy]
//
// and receiving hosts aggregate the snapshots into per-queue CDFs and time
// series — the two panels of Figure 1b. Because every delivered packet
// yields a sample taken at the instant it traversed each queue, bursts that
// a polling monitor would miss (the paper's point: one queue is empty at 80%
// of packet arrivals, so sampling misses the bursts) are captured exactly.
package microburst

import (
	"fmt"
	"sort"
	"sync"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/stats"
)

// Program is the micro-burst TPP, verbatim from §2.1.
const Program = `
	PUSH [Switch:SwitchID]
	PUSH [PacketMetadata:OutputPort]
	PUSH [Queue:QueueOccupancy]
`

// WordsPerHop is the per-hop record size of the program.
const WordsPerHop = 3

// QueueKey identifies one monitored queue: a switch egress port.
type QueueKey struct {
	SwitchID uint32
	Port     uint32
}

// String renders the key.
func (k QueueKey) String() string { return fmt.Sprintf("s%d.p%d", k.SwitchID, k.Port) }

// Monitor aggregates queue-occupancy samples network-wide. Aggregators on
// hosts in different topology shards feed it concurrently, so ingestion is
// mutex-guarded; the aggregation itself (sample multisets, counts) is
// order-insensitive, which keeps sharded runs byte-identical to
// single-engine ones.
type Monitor struct {
	App  *host.App
	Hops int

	mu      sync.Mutex
	cdfs    map[QueueKey]*stats.CDF
	series  map[QueueKey]*stats.TimeSeries
	samples uint64
}

// Deploy registers the application, installs the TPP on every source host's
// matching traffic (sampleFreq = 1 instruments every packet, as in Figure 1),
// and registers aggregators on every host.
func Deploy(cp *host.ControlPlane, hosts []*host.Host, spec host.FilterSpec, sampleFreq, hops int) (*Monitor, error) {
	app := cp.RegisterApp("microburst")
	m := &Monitor{
		App:    app,
		Hops:   hops,
		cdfs:   make(map[QueueKey]*stats.CDF),
		series: make(map[QueueKey]*stats.TimeSeries),
	}
	for _, h := range hosts {
		prog, err := asm.Assemble(fmt.Sprintf(".hops %d\n%s", hops, Program))
		if err != nil {
			return nil, err
		}
		if _, err := h.AddTPP(app, spec, prog, sampleFreq, 10); err != nil {
			return nil, err
		}
		h := h
		h.RegisterAggregator(app.Wire, func(p *link.Packet, view core.Section) {
			m.ingest(h, view)
		})
	}
	return m, nil
}

// ingest records one fully executed TPP's snapshots.
func (m *Monitor) ingest(h *host.Host, view core.Section) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := h.Engine().Now().Seconds()
	for _, hop := range view.StackView(WordsPerHop) {
		key := QueueKey{SwitchID: hop.Words[0], Port: hop.Words[1]}
		occ := float64(hop.Words[2])
		cdf := m.cdfs[key]
		if cdf == nil {
			cdf = &stats.CDF{}
			m.cdfs[key] = cdf
			m.series[key] = stats.NewTimeSeries(0.01) // 10 ms bins
		}
		cdf.Add(occ)
		m.series[key].Add(now, occ)
		m.samples++
	}
}

// Samples returns the total number of per-queue snapshots ingested.
func (m *Monitor) Samples() uint64 { return m.samples }

// Queues returns the monitored queue keys, sorted for stable output.
func (m *Monitor) Queues() []QueueKey {
	keys := make([]QueueKey, 0, len(m.cdfs))
	for k := range m.cdfs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].SwitchID != keys[j].SwitchID {
			return keys[i].SwitchID < keys[j].SwitchID
		}
		return keys[i].Port < keys[j].Port
	})
	return keys
}

// CDF returns the occupancy distribution for a queue.
func (m *Monitor) CDF(k QueueKey) *stats.CDF { return m.cdfs[k] }

// Series returns the occupancy time series for a queue.
func (m *Monitor) Series(k QueueKey) *stats.TimeSeries { return m.series[k] }

// EmptyFraction returns the fraction of a queue's samples that observed an
// empty queue — the Figure 1 CDF's headline number.
func (m *Monitor) EmptyFraction(k QueueKey) float64 {
	c := m.cdfs[k]
	if c == nil || c.N() == 0 {
		return 0
	}
	return c.FractionAtMost(0)
}

// MaxBurst returns the largest occupancy ever observed on a queue.
func (m *Monitor) MaxBurst(k QueueKey) float64 {
	c := m.cdfs[k]
	if c == nil {
		return 0
	}
	return c.Max()
}

// Overhead returns the per-packet byte cost of the instrumentation at the
// configured hop budget: the §2.1 arithmetic (12-byte header + 12 bytes of
// instructions + per-hop statistics).
func (m *Monitor) Overhead() int {
	return core.HeaderLen + 3*core.InsnSize + m.Hops*WordsPerHop*core.WordSize
}
