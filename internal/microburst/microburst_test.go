package microburst_test

import (
	"testing"

	"minions/internal/host"
	"minions/internal/link"
	"minions/internal/microburst"
	"minions/internal/sim"
	"minions/internal/topo"
	"minions/internal/trafficgen"
)

// figure1 runs a scaled-down §2.1 experiment: 6-host dumbbell at 100 Mb/s,
// all-to-all 10 kB messages at 30% load, every packet instrumented.
func figure1(t *testing.T, duration sim.Time) (*topo.Network, *microburst.Monitor) {
	t.Helper()
	n := topo.New(3)
	hosts, _, _ := topo.Dumbbell(n, 6, 100)
	mon, err := microburst.Deploy(n.CP, hosts, host.FilterSpec{Proto: link.ProtoUDP}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000,
		Load:     0.30,
		Duration: duration,
		Seed:     11,
	})
	n.Eng.RunUntil(duration + 50*sim.Millisecond)
	return n, mon
}

func TestMonitorCollectsPerPacketSamples(t *testing.T) {
	_, mon := figure1(t, 500*sim.Millisecond)
	if mon.Samples() == 0 {
		t.Fatal("no samples collected")
	}
	qs := mon.Queues()
	if len(qs) < 4 {
		t.Fatalf("monitored %d queues, expected several", len(qs))
	}
	for _, q := range qs {
		if mon.CDF(q).N() == 0 {
			t.Errorf("queue %v has no samples", q)
		}
	}
}

func TestBurstsObservedAndQueuesOftenEmpty(t *testing.T) {
	// The Figure 1 claims: queues are empty for a large fraction of packet
	// arrivals, yet bursts (multi-packet occupancy spikes) do occur — which
	// is why sampling misses them and per-packet TPPs do not.
	_, mon := figure1(t, 1*sim.Second)
	sawBurst := false
	sawOftenEmpty := false
	for _, q := range mon.Queues() {
		if mon.MaxBurst(q) >= 3 {
			sawBurst = true
		}
		if mon.CDF(q).N() > 100 && mon.EmptyFraction(q) > 0.5 {
			sawOftenEmpty = true
		}
	}
	if !sawBurst {
		t.Error("no micro-bursts observed at 30% load")
	}
	if !sawOftenEmpty {
		t.Error("no queue was mostly empty — load model suspect")
	}
}

func TestTimeSeriesNonEmpty(t *testing.T) {
	_, mon := figure1(t, 300*sim.Millisecond)
	qs := mon.Queues()
	pts := mon.Series(qs[0]).Points()
	if len(pts) == 0 {
		t.Fatal("empty time series")
	}
}

func TestOverheadArithmetic(t *testing.T) {
	// §2.1: "If the diameter of the network is 5 hops, then each TPP adds
	// only a 54 byte overhead": 12 header + 12 instructions + 6x5 stats.
	// Our memory words are 32-bit (not the paper's 16-bit pairs), so the
	// per-hop record is 12 bytes and the total is 84; the structure of the
	// accounting is identical and asserted here.
	n := topo.New(1)
	hosts, _, _ := topo.Dumbbell(n, 2, 100)
	mon, err := microburst.Deploy(n.CP, hosts, host.FilterSpec{}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 12 + 12 + 5*3*4
	if got := mon.Overhead(); got != want {
		t.Errorf("overhead = %d, want %d", got, want)
	}
}

func TestSamplingReducesCost(t *testing.T) {
	n := topo.New(3)
	hosts, _, _ := topo.Dumbbell(n, 6, 100)
	_, err := microburst.Deploy(n.CP, hosts, host.FilterSpec{Proto: link.ProtoUDP}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	trafficgen.AllToAll(hosts, trafficgen.AllToAllConfig{
		MsgBytes: 10_000, Load: 0.2, Duration: 300 * sim.Millisecond, Seed: 5,
	})
	n.Eng.RunUntil(400 * sim.Millisecond)
	var attached, tx uint64
	for _, h := range n.Hosts {
		attached += h.Stats().TPPsAttached
		tx += h.Stats().TxPackets
	}
	frac := float64(attached) / float64(tx)
	if frac > 0.15 {
		t.Errorf("1-in-10 sampling instrumented %.0f%% of packets", frac*100)
	}
	if attached == 0 {
		t.Error("sampling instrumented nothing")
	}
}
