package device

import (
	"testing"

	"minions/internal/asm"
	"minions/internal/core"
	"minions/internal/link"
	"minions/internal/mem"
	"minions/internal/sim"
)

// sink collects packets delivered to a host-like endpoint.
type sink struct {
	eng  *sim.Engine
	pkts []*link.Packet
	at   []sim.Time
}

func (s *sink) Receive(p *link.Packet, port int) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

// line builds host(100) -> sw1 -> sw2 -> host(200) with 100 Mb/s links and
// returns the pieces. Ports: sw.0 faces upstream, sw.1 faces downstream.
func line(t *testing.T) (*sim.Engine, *Switch, *Switch, *sink, func(p *link.Packet)) {
	t.Helper()
	eng := sim.New(1)
	sw1 := New(eng, Config{ID: 1, NumPorts: 4, NodeID: 1001, VendorID: 0xB0})
	sw2 := New(eng, Config{ID: 2, NumPorts: 4, NodeID: 1002, VendorID: 0xB0})
	dst := &sink{eng: eng}

	cfg := link.Config{RateBps: 100_000_000, Delay: sim.Microsecond}
	l12 := link.New(eng, cfg, sw2, 0)
	l2h := link.New(eng, cfg, dst, 0)
	sw1.AttachLink(1, l12, 112)
	sw2.AttachLink(1, l2h, 210)

	// Upstream links (for echoes back toward the source host).
	src := &sink{eng: eng}
	l1h := link.New(eng, cfg, src, 0)
	sw1.AttachLink(0, l1h, 110)
	l21 := link.New(eng, cfg, sw1, 1)
	sw2.AttachLink(0, l21, 211)

	sw1.AddRoute(200, 1)
	sw2.AddRoute(200, 1)
	sw1.AddRoute(100, 0)
	sw2.AddRoute(100, 0)
	sw1.AddRoute(1002, 1) // targeted TPPs to sw2

	inject := func(p *link.Packet) { sw1.Receive(p, 0) }
	return eng, sw1, sw2, dst, inject
}

func mkPacket(tpp core.Section) *link.Packet {
	return &link.Packet{
		Flow: link.FlowKey{Src: 100, Dst: 200, SrcPort: 7, DstPort: 8, Proto: link.ProtoUDP},
		Size: 1000,
		TTL:  64,
		TPP:  tpp,
	}
}

func TestForwardingAndPerHopExecution(t *testing.T) {
	eng, _, _, dst, inject := line(t)
	prog := asm.MustAssemble(`
		PUSH [Switch:SwitchID]
		PUSH [PacketMetadata:InputPort]
		PUSH [PacketMetadata:OutputPort]
	`)
	s, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	inject(mkPacket(s))
	eng.Run()

	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	got := dst.pkts[0]
	views := got.TPP.StackView(3)
	if len(views) != 2 {
		t.Fatalf("hops recorded: %d", len(views))
	}
	// Hop 1: switch 1, in port 0, out port 1. Hop 2: switch 2, same shape.
	if views[0].Words[0] != 1 || views[0].Words[1] != 0 || views[0].Words[2] != 1 {
		t.Errorf("hop1: %v", views[0].Words)
	}
	if views[1].Words[0] != 2 || views[1].Words[1] != 0 || views[1].Words[2] != 1 {
		t.Errorf("hop2: %v", views[1].Words)
	}
	if got.Hops != 2 {
		t.Errorf("Hops = %d", got.Hops)
	}
}

func TestPacketConsistentQueueSnapshot(t *testing.T) {
	// Two packets sent back to back: the second must observe the first
	// still queued/serializing at sw1's egress — a per-packet-consistent
	// snapshot no polling scheme could produce.
	eng, _, _, dst, inject := line(t)
	prog := asm.MustAssemble(`PUSH [Link:Queued-Packets]`)
	mk := func() core.Section {
		s, err := prog.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	inject(mkPacket(mk()))
	inject(mkPacket(mk()))
	inject(mkPacket(mk()))
	eng.Run()

	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d", len(dst.pkts))
	}
	occupancies := []uint32{
		dst.pkts[0].TPP.Word(0),
		dst.pkts[1].TPP.Word(0),
		dst.pkts[2].TPP.Word(0),
	}
	// First packet: empty queue, starts serializing at once. Second: the
	// first is on the wire (not queued), so it also sees 0. Third: the
	// second is still queued behind the serializing first — occupancy 1.
	if occupancies[0] != 0 || occupancies[1] != 0 || occupancies[2] != 1 {
		t.Errorf("queue snapshots: %v", occupancies)
	}
}

func TestTTLExpiry(t *testing.T) {
	eng, sw1, _, dst, inject := line(t)
	p := mkPacket(nil)
	p.TTL = 1 // dies at the second switch
	inject(p)
	eng.Run()
	if len(dst.pkts) != 0 {
		t.Fatal("TTL-expired packet delivered")
	}
	_ = sw1
}

func TestNoRouteDrop(t *testing.T) {
	eng, sw1, _, _, inject := line(t)
	p := mkPacket(nil)
	p.Flow.Dst = 999
	inject(p)
	eng.Run()
	if sw1.Drops(DropNoRoute) != 1 {
		t.Errorf("no-route drops = %d", sw1.Drops(DropNoRoute))
	}
}

func TestECMPSpreadsAndIsFlowStable(t *testing.T) {
	eng := sim.New(1)
	sw := New(eng, Config{ID: 1, NumPorts: 4, NodeID: 1001})
	a := &sink{eng: eng}
	b := &sink{eng: eng}
	cfg := link.Config{RateBps: 1_000_000_000}
	sw.AttachLink(1, link.New(eng, cfg, a, 0), 1)
	sw.AttachLink(2, link.New(eng, cfg, b, 0), 2)
	sw.AddRoute(200, 1, 2)

	for i := 0; i < 200; i++ {
		p := &link.Packet{
			Flow: link.FlowKey{Src: 100, Dst: 200, SrcPort: uint16(i), DstPort: 80, Proto: 6},
			Size: 100, TTL: 8,
		}
		sw.Receive(p, 0)
	}
	eng.Run()
	if len(a.pkts) == 0 || len(b.pkts) == 0 {
		t.Fatalf("ECMP did not spread: %d vs %d", len(a.pkts), len(b.pkts))
	}
	if len(a.pkts)+len(b.pkts) != 200 {
		t.Fatalf("lost packets: %d", len(a.pkts)+len(b.pkts))
	}

	// Same flow, same path — always.
	eng2 := sim.New(1)
	sw2 := New(eng2, Config{ID: 1, NumPorts: 4, NodeID: 1001})
	a2 := &sink{eng: eng2}
	b2 := &sink{eng: eng2}
	sw2.AttachLink(1, link.New(eng2, cfg, a2, 0), 1)
	sw2.AttachLink(2, link.New(eng2, cfg, b2, 0), 2)
	sw2.AddRoute(200, 1, 2)
	for i := 0; i < 50; i++ {
		p := &link.Packet{
			Flow: link.FlowKey{Src: 100, Dst: 200, SrcPort: 7, DstPort: 80, Proto: 6},
			Size: 100, TTL: 8,
		}
		sw2.Receive(p, 0)
	}
	eng2.Run()
	if len(a2.pkts) != 0 && len(b2.pkts) != 0 {
		t.Error("one flow split across ECMP paths")
	}
}

func TestPathTagSteersFlow(t *testing.T) {
	// The CONGA* mechanism: changing PathTag changes the ECMP bucket for
	// the same flow (eventually — tags hash, so try several).
	eng := sim.New(1)
	sw := New(eng, Config{ID: 1, NumPorts: 4, NodeID: 1001})
	a := &sink{eng: eng}
	b := &sink{eng: eng}
	cfg := link.Config{RateBps: 1_000_000_000}
	sw.AttachLink(1, link.New(eng, cfg, a, 0), 1)
	sw.AttachLink(2, link.New(eng, cfg, b, 0), 2)
	sw.AddRoute(200, 1, 2)

	flow := link.FlowKey{Src: 100, Dst: 200, SrcPort: 7, DstPort: 80, Proto: 17}
	seen := map[int]bool{}
	for tag := uint16(0); tag < 16; tag++ {
		if flow.Hash(tag)%2 == 0 {
			seen[1] = true
		} else {
			seen[2] = true
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatal("no tag in 0..15 switches the path; hash too weak")
	}
}

func TestCStoreWriteAndReadBack(t *testing.T) {
	// RCP-style: one TPP CSTOREs a new rate into AppSpecific_0 on every hop,
	// a second TPP reads it back.
	eng, sw1, sw2, dst, inject := line(t)
	upd := asm.MustAssemble(`
		.hops 2
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		.word 0 77 0 77
	`)
	us, err := upd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	inject(mkPacket(us))
	eng.Run()
	if got := sw1.Port(1).AppSpecific(0); got != 77 {
		t.Fatalf("sw1 AppSpecific_0 = %d", got)
	}
	if got := sw2.Port(1).AppSpecific(0); got != 77 {
		t.Fatalf("sw2 AppSpecific_0 = %d", got)
	}

	rd := asm.MustAssemble(`PUSH [Link:AppSpecific_0]`)
	rs, err := rd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	inject(mkPacket(rs))
	eng.Run()
	last := dst.pkts[len(dst.pkts)-1]
	if last.TPP.Word(0) != 77 || last.TPP.Word(1) != 77 {
		t.Errorf("read-back: %d %d", last.TPP.Word(0), last.TPP.Word(1))
	}
}

func TestCStoreVersionConflict(t *testing.T) {
	// Second writer with a stale version must fail and observe the winner's
	// version — the §2.2 concurrency story.
	eng, sw1, _, _, inject := line(t)
	sw1.Port(1).SetAppSpecific(0, 5)

	stale := asm.MustAssemble(`
		.hops 1
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		.word 4 99
	`)
	ss, err := stale.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := mkPacket(ss)
	inject(p)
	eng.Run()
	if got := sw1.Port(1).AppSpecific(0); got != 5 {
		t.Fatalf("stale CSTORE overwrote: %d", got)
	}
	// Write-back lets the end-host observe the current value (5).
	if p.TPP.Word(0) != 5 {
		t.Errorf("write-back = %d, want 5", p.TPP.Word(0))
	}
}

func TestWritePolicyEnforced(t *testing.T) {
	eng, sw1, sw2, _, inject := line(t)
	// Only app 42 may write AppSpecific registers.
	pol := func(appID uint16, a mem.Addr) bool { return appID == 42 }
	sw1.SetWritePolicy(pol)
	sw2.SetWritePolicy(pol)

	prog := asm.MustAssemble(`
		.appid 7
		.hops 2
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		.word 0 123 0 123
	`)
	s, _ := prog.Encode()
	inject(mkPacket(s))
	eng.Run()
	if got := sw1.Port(1).AppSpecific(0); got != 0 {
		t.Fatalf("denied app wrote anyway: %d", got)
	}

	prog2 := asm.MustAssemble(`
		.appid 42
		.hops 2
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		.word 0 123 0 123
	`)
	s2, _ := prog2.Encode()
	inject(mkPacket(s2))
	eng.Run()
	if got := sw1.Port(1).AppSpecific(0); got != 123 {
		t.Fatalf("authorized app denied: %d", got)
	}
}

func TestDenyAllWritesKillSwitch(t *testing.T) {
	eng, sw1, _, _, inject := line(t)
	sw1.SetDenyAllWrites(true)
	prog := asm.MustAssemble(`
		.hops 2
		CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
		.word 0 9 0 9
	`)
	s, _ := prog.Encode()
	inject(mkPacket(s))
	eng.Run()
	if got := sw1.Port(1).AppSpecific(0); got != 0 {
		t.Fatalf("kill switch bypassed: %d", got)
	}
}

func TestTargetedStandaloneTPPEchoes(t *testing.T) {
	// §4.4: send a standalone TPP addressed to switch 2; it executes there
	// and returns to the source without reaching any host.
	eng, _, _, dst, inject := line(t)
	prog := asm.MustAssemble(`PUSH [Switch:SwitchID]`)
	s, _ := prog.Encode()
	p := &link.Packet{
		Flow:       link.FlowKey{Src: 100, Dst: 1002, SrcPort: 9, DstPort: 0x6666, Proto: link.ProtoUDP},
		Size:       64,
		TTL:        64,
		TPP:        s,
		Standalone: true,
	}
	inject(p)
	eng.Run()
	if len(dst.pkts) != 0 {
		t.Fatal("targeted TPP leaked past the target switch")
	}
	// It should have been echoed: flow reversed toward 100 and flagged.
	if p.Flow.Dst != 100 {
		t.Fatalf("not bounced: dst=%d", p.Flow.Dst)
	}
	if p.TPP.Flags()&core.FlagEchoed == 0 {
		t.Error("echo flag not set")
	}
	// Executed exactly at sw1 (en route) and sw2 (target)? No: targeted
	// TPPs execute at every hop they traverse; words hold sw1, sw2, sw1.
	if p.TPP.Word(0) != 1 || p.TPP.Word(1) != 2 {
		t.Errorf("switch IDs: %d %d", p.TPP.Word(0), p.TPP.Word(1))
	}
}

func TestReflectFlagBouncesAtFirstSwitch(t *testing.T) {
	eng, sw1, _, dst, inject := line(t)
	sw1.cfg.ReflectTPPs = true
	prog := asm.MustAssemble(`
		.flags reflect
		PUSH [Switch:SwitchID]
	`)
	s, _ := prog.Encode()
	p := mkPacket(s)
	p.Standalone = true
	inject(p)
	eng.Run()
	if len(dst.pkts) != 0 {
		t.Fatal("reflected TPP reached destination")
	}
	if p.Flow.Dst != 100 || p.TPP.Word(0) != 1 {
		t.Errorf("reflection wrong: dst=%d id=%d", p.Flow.Dst, p.TPP.Word(0))
	}
}

func TestInBandRouteUpdate(t *testing.T) {
	// §2.6 fast network updates: STORE dst and port into the vendor route
	// registers; the route is installed as the packet passes.
	eng, sw1, sw2, dst, inject := line(t)
	if sw1.Route(777) != nil {
		t.Fatal("route 777 pre-exists")
	}
	v1 := sw1.Version()
	prog := asm.MustAssemble(`
		.mode stack
		.mem 2
		STORE [Vendor#0:], [Packet:0]
		STORE [Vendor#1:], [Packet:1]
		.word 777 1
	`)
	s, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	inject(mkPacket(s))
	eng.Run()

	for _, sw := range []*Switch{sw1, sw2} {
		if sw.Route(777) == nil {
			t.Fatalf("switch %d: route not installed", sw.ID())
		}
		if ports := sw.RoutePorts(777); len(ports) != 1 || ports[0] != 1 {
			t.Errorf("switch %d: route ports %v", sw.ID(), ports)
		}
	}
	if sw1.Version() <= v1 {
		t.Error("version not bumped by in-band update")
	}
	_ = dst
}

func TestDropNotification(t *testing.T) {
	// Overflow sw1's egress queue with DropNotify TPPs and expect clones at
	// the collector.
	eng := sim.New(1)
	sw := New(eng, Config{ID: 1, NumPorts: 2, NodeID: 1001})
	dst := &sink{eng: eng}
	l := link.New(eng, link.Config{RateBps: 1_000_000, QueueBytes: 2500}, dst, 0)
	sw.AttachLink(1, l, 11)
	sw.AddRoute(200, 1)

	var collected []*link.Packet
	sw.DropCollector = func(p *link.Packet, reason DropReason) {
		if reason == DropQueueFull {
			collected = append(collected, p)
		}
	}
	prog := asm.MustAssemble(`
		.flags dropnotify
		PUSH [Switch:SwitchID]
	`)
	for i := 0; i < 6; i++ {
		s, _ := prog.Encode()
		p := mkPacket(s)
		sw.Receive(p, 0)
	}
	eng.Run()
	if len(collected) == 0 {
		t.Fatal("no drop notifications")
	}
	if len(dst.pkts)+len(collected) != 6 {
		t.Errorf("accounting: %d delivered + %d collected != 6", len(dst.pkts), len(collected))
	}
}

func TestFlowEntryAndStageStats(t *testing.T) {
	eng, sw1, _, dst, inject := line(t)
	prog := asm.MustAssemble(`
		PUSH [FlowEntry:MatchPkts]
		PUSH [Stage:Version]
		PUSH [Stage:RefCount]
	`)
	s, _ := prog.Encode()
	inject(mkPacket(s))
	eng.Run()
	got := dst.pkts[0]
	// First matched packet on that entry.
	if got.TPP.Word(0) != 1 {
		t.Errorf("entry match pkts = %d", got.TPP.Word(0))
	}
	if got.TPP.Word(1) == 0 {
		t.Error("stage version reads zero")
	}
	if got.TPP.Word(2) != 3 {
		// line() installs 3 routes on sw1: 200, 100, 1002.
		t.Errorf("refcount = %d", got.TPP.Word(2))
	}
	_ = sw1
}

func TestControlPlaneReadRegister(t *testing.T) {
	eng, sw1, _, _, _ := line(t)
	_ = eng
	if v, ok := sw1.ReadRegister(mem.SwSwitchID); !ok || v != 1 {
		t.Errorf("SwitchID = %d, %v", v, ok)
	}
	if _, ok := sw1.ReadRegister(mem.DynOutLinkBase + mem.LinkTXUtil); ok {
		t.Error("dynamic window readable without packet context")
	}
	if v, ok := sw1.ReadRegister(mem.LinkAddr(1, mem.LinkID)); !ok || v != 112 {
		t.Errorf("Link#1:ID = %d, %v", v, ok)
	}
}

func TestOutputPortRewrite(t *testing.T) {
	// A TPP STORE to [PacketMetadata:OutputPort] re-routes the packet.
	eng := sim.New(1)
	sw := New(eng, Config{ID: 1, NumPorts: 3, NodeID: 1001})
	a := &sink{eng: eng}
	b := &sink{eng: eng}
	cfg := link.Config{RateBps: 1_000_000_000}
	sw.AttachLink(1, link.New(eng, cfg, a, 0), 1)
	sw.AttachLink(2, link.New(eng, cfg, b, 0), 2)
	sw.AddRoute(200, 1) // normal route: port 1

	prog := asm.MustAssemble(`
		.mem 1
		STORE [PacketMetadata:OutputPort], [Packet:0]
		.word 2
	`)
	s, _ := prog.Encode()
	p := mkPacket(s)
	sw.Receive(p, 0)
	eng.Run()
	if len(b.pkts) != 1 || len(a.pkts) != 0 {
		t.Fatalf("rewrite ignored: a=%d b=%d", len(a.pkts), len(b.pkts))
	}
}

func TestVendorScratch(t *testing.T) {
	eng, sw1, _, _, _ := line(t)
	_ = eng
	sw1.SetVendorReg(VendorScratchBase+1, 0xCAFE)
	if v, ok := sw1.ReadRegister(VendorScratchBase + 1); !ok || v != 0xCAFE {
		t.Errorf("vendor scratch = %#x, %v", v, ok)
	}
}

// AttachLink must chain a previously installed OnDrop observer (not clobber
// it) and must not stack its own accounting when re-attached.
func TestAttachLinkChainsAndIsIdempotent(t *testing.T) {
	eng := sim.New(1)
	sw := New(eng, Config{ID: 1, NumPorts: 2, NodeID: 1001})
	dst := &sink{eng: eng}
	l := link.New(eng, link.Config{RateBps: 1_000_000, QueueBytes: 1000}, dst, 0)

	observed := 0
	l.OnDrop = func(p *link.Packet, reason link.DropReason) { observed++ } // pre-wiring instrumentation
	sw.AttachLink(0, l, 1)
	sw.AttachLink(0, l, 2) // re-attach: must not add another queueDrop layer
	if got := sw.Port(0).LinkID; got != 2 {
		t.Fatalf("re-attach did not update LinkID: %d", got)
	}

	// First packet serializes immediately; next fills the queue; third drops.
	for i := 0; i < 3; i++ {
		l.Enqueue(&link.Packet{ID: uint64(i), Size: 1000})
	}
	if observed != 1 {
		t.Errorf("chained observer saw %d drops, want 1", observed)
	}
	if got := sw.Drops(DropQueueFull); got != 1 {
		t.Errorf("switch counted %d queue drops, want 1 (double-chained?)", got)
	}
}
