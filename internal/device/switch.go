// Package device implements a TPP-capable switch: the abstract dataplane
// pipeline of Figure 6 (parse → match-action routing with versioned tables →
// output queues), the distributed TCPU of §3.5 executing TPPs against a
// packet-consistent memory view, per-port/per-queue statistics blocks
// (appendix Tables 6-8), write access control (§4.3), reflection and
// targeted execution support (§4.4), drop notifications (§2.6), and in-band
// route updates ("Fast network updates", §2.6).
package device

import (
	"fmt"

	"minions/internal/core"
	"minions/internal/link"
	"minions/internal/mem"
	"minions/internal/sim"
)

// Port is one switch port: an optional egress link plus receive-side
// counters and the software-managed AppSpecific registers of §2.2.
type Port struct {
	Out    *link.Link // egress; nil when nothing is attached
	LinkID uint32     // network-unique link identifier ([Link:ID])

	rxBytes   uint64
	rxPackets uint64
	appSpec   [8]uint32
}

// RxStats returns receive-side byte and packet counters.
func (p *Port) RxStats() (bytes, packets uint64) { return p.rxBytes, p.rxPackets }

// AppSpecific returns the current value of AppSpecific register i.
func (p *Port) AppSpecific(i int) uint32 { return p.appSpec[i] }

// SetAppSpecific sets AppSpecific register i (control-plane path).
func (p *Port) SetAppSpecific(i int, v uint32) { p.appSpec[i] = v }

// RouteEntry is one routing-table entry: a destination bound to an ECMP
// group of output ports, with the per-entry statistics block of Table 6.
type RouteEntry struct {
	Dst   link.NodeID
	Ports []int // ECMP group; selection hashes the flow key and path tag

	id          uint32
	insertClock sim.Time
	matchPkts   uint64
	matchBytes  uint64
}

// DropReason classifies switch-local packet drops.
type DropReason uint8

const (
	DropNoRoute DropReason = iota
	DropTTLExpired
	DropQueueFull
	DropNoLink
	// DropSwitchHalted: the fault plane halted this switch; ingress traffic
	// is discarded until restart.
	DropSwitchHalted
	// DropLinkDown: the egress link was down (reported by the link).
	DropLinkDown
	// DropFaultLoss: the fault plane discarded the packet on the egress
	// link (random or burst loss).
	DropFaultLoss
)

// String names the reason.
func (d DropReason) String() string {
	switch d {
	case DropNoRoute:
		return "no-route"
	case DropTTLExpired:
		return "ttl-expired"
	case DropQueueFull:
		return "queue-full"
	case DropNoLink:
		return "no-link"
	case DropSwitchHalted:
		return "switch-halted"
	case DropLinkDown:
		return "link-down"
	case DropFaultLoss:
		return "fault-loss"
	}
	return "unknown"
}

// Config configures a switch.
type Config struct {
	ID       uint32
	VendorID uint32
	NumPorts int
	// NodeID is the switch's own address for targeted standalone TPPs
	// (§4.4: "creates a UDP packet and sends it to the switch IP").
	NodeID link.NodeID
	// ReflectTPPs enables §4.4 reflective TPPs: a TPP with FlagReflect is
	// executed and bounced straight back toward its source.
	ReflectTPPs bool
}

// Switch is a TPP-capable switch.
type Switch struct {
	eng *sim.Engine
	cfg Config

	ports []Port

	routes      map[link.NodeID]*RouteEntry
	version     uint32 // forwarding-state generation ([Switch:Version])
	nextEntryID uint32
	lookupPkts  uint64
	lookupBytes uint64
	matchPkts   uint64
	matchBytes  uint64

	// vendorMem backs the platform-specific address space (§8), including
	// the in-band route-update registers.
	vendorMem map[mem.Addr]uint32
	// pendingRouteDst holds the staged destination for an in-band route add.
	pendingRouteDst uint32

	// writePolicy, when set, gates TPP writes per wire application handle.
	writePolicy func(appID uint16, a mem.Addr) bool
	// denyAllWrites is the administrator kill switch of §4.3.
	denyAllWrites bool

	// halted marks a fault-plane switch halt: all ingress traffic drops
	// until restart. Routing tables, registers and statistics survive the
	// outage, like a dataplane stall rather than a cold reboot.
	halted bool

	// OnDrop observes every locally dropped packet.
	OnDrop func(p *link.Packet, reason DropReason)
	// DropCollector, when set, receives clones of dropped TPP packets that
	// set FlagDropNotify (§2.6 loss localization).
	DropCollector func(p *link.Packet, reason DropReason)

	drops map[DropReason]uint64

	// The distributed TCPU of §3.5: one resident executor per switch, bound
	// once to a packet-consistent memory view whose context is repointed per
	// packet. Nothing on the per-hop execute path allocates.
	tcpu     core.Executor
	pktCtx   pktContext
	view     memView
	curAppID uint16
}

// New creates a switch with cfg.NumPorts unconnected ports.
func New(eng *sim.Engine, cfg Config) *Switch {
	if cfg.NumPorts <= 0 || cfg.NumPorts > mem.MaxPorts {
		panic(fmt.Sprintf("device: invalid port count %d", cfg.NumPorts))
	}
	sw := &Switch{
		eng:       eng,
		cfg:       cfg,
		ports:     make([]Port, cfg.NumPorts),
		routes:    make(map[link.NodeID]*RouteEntry),
		vendorMem: make(map[mem.Addr]uint32),
		drops:     make(map[DropReason]uint64),
	}
	sw.view = memView{sw: sw, ctx: &sw.pktCtx}
	sw.tcpu = *core.NewExecutor(core.Env{Mem: &sw.view, AllowWrite: sw.allowTPPWrite})
	return sw
}

// allowTPPWrite is the dataplane write gate of §4.3, evaluated against the
// application carried by the packet currently executing.
func (sw *Switch) allowTPPWrite(a mem.Addr) bool {
	if sw.denyAllWrites {
		return false
	}
	return sw.writePolicy == nil || sw.writePolicy(sw.curAppID, a)
}

// ID returns the switch identifier.
func (sw *Switch) ID() uint32 { return sw.cfg.ID }

// NodeID returns the switch's own network address.
func (sw *Switch) NodeID() link.NodeID { return sw.cfg.NodeID }

// Port returns port i.
func (sw *Switch) Port(i int) *Port { return &sw.ports[i] }

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// AttachLink connects port i to an egress link. The switch installs its
// queue-drop accounting as the link's OnDrop observer; any observer already
// installed is chained after it rather than clobbered, so instrumentation
// attached before wiring keeps seeing drops.
func (sw *Switch) AttachLink(i int, l *link.Link, linkID uint32) {
	if sw.ports[i].Out == l {
		// Re-attaching the same link must not stack another queueDrop
		// observer onto the chain (drops would double-count).
		sw.ports[i].LinkID = linkID
		return
	}
	sw.ports[i].Out = l
	sw.ports[i].LinkID = linkID
	prev := l.OnDrop
	l.OnDrop = func(p *link.Packet, reason link.DropReason) {
		sw.linkDrop(p, reason)
		if prev != nil {
			prev(p, reason)
		}
	}
}

// Engine returns the engine this switch schedules on; fault injectors use
// it to arm halt/restart events on the owning shard.
func (sw *Switch) Engine() *sim.Engine { return sw.eng }

// Halted reports whether the switch is halted by the fault plane.
func (sw *Switch) Halted() bool { return sw.halted }

// SetHalted halts or restarts the switch. A halted switch drops every
// ingress packet (DropSwitchHalted); its forwarding state is preserved
// across the outage.
func (sw *Switch) SetHalted(v bool) { sw.halted = v }

// Version returns the forwarding-state generation counter.
func (sw *Switch) Version() uint32 { return sw.version }

// Drops returns the drop counter for a reason.
func (sw *Switch) Drops(r DropReason) uint64 { return sw.drops[r] }

// AddRoute installs (or replaces) the route for dst, bumping the table
// version — the counter NetSight-style applications read to detect
// forwarding-state changes.
func (sw *Switch) AddRoute(dst link.NodeID, ports ...int) {
	for _, p := range ports {
		if p < 0 || p >= len(sw.ports) {
			panic(fmt.Sprintf("device: route port %d out of range", p))
		}
	}
	sw.nextEntryID++
	sw.routes[dst] = &RouteEntry{
		Dst:         dst,
		Ports:       ports,
		id:          sw.nextEntryID,
		insertClock: sw.eng.Now(),
	}
	sw.version++
}

// Route returns the routing entry for dst, if any.
func (sw *Switch) Route(dst link.NodeID) *RouteEntry {
	return sw.routes[dst]
}

// SetWritePolicy installs the per-application write filter used when TPPs
// execute (§4.1's access-control table, enforced in the dataplane).
func (sw *Switch) SetWritePolicy(f func(appID uint16, a mem.Addr) bool) {
	sw.writePolicy = f
}

// SetDenyAllWrites toggles the §4.3 kill switch for STORE/CSTORE/POP.
func (sw *Switch) SetDenyAllWrites(v bool) { sw.denyAllWrites = v }

// SetVendorReg sets a platform-specific register (§8).
func (sw *Switch) SetVendorReg(a mem.Addr, v uint32) {
	sw.vendorMem[a] = v
}

// drop records a switch-local drop and notifies observers. The drop is
// terminal: the packet returns to its pool afterwards, so observers must
// Clone what they keep.
func (sw *Switch) drop(p *link.Packet, reason DropReason) {
	sw.drops[reason]++
	if sw.OnDrop != nil {
		sw.OnDrop(p, reason)
	}
	sw.notifyDropCollector(p, reason)
	p.Release()
}

// linkDrop accounts losses the egress link reports (drop-tail, down links,
// fault losses), mapping the link's reason into the switch's space. The
// link owns the release — this observer must not touch the packet after
// returning.
func (sw *Switch) linkDrop(p *link.Packet, r link.DropReason) {
	reason := DropQueueFull
	switch r {
	case link.DropLinkDown:
		reason = DropLinkDown
	case link.DropFaultLoss:
		reason = DropFaultLoss
	}
	sw.drops[reason]++
	if sw.OnDrop != nil {
		sw.OnDrop(p, reason)
	}
	sw.notifyDropCollector(p, reason)
}

func (sw *Switch) notifyDropCollector(p *link.Packet, reason DropReason) {
	if sw.DropCollector == nil || p.TPP == nil || p.TPP.Flags()&core.FlagDropNotify == 0 {
		return
	}
	// Mirror a truncated clone to the collector (§2.6: "we can overcome
	// dropped packets by sending packets that will be dropped to a
	// collector"). Clone detaches from any packet pool so the collector may
	// retain it indefinitely.
	clone := p.Clone()
	clone.Payload = nil
	sw.DropCollector(clone, reason)
}

// Receive implements link.Receiver: the full ingress pipeline of Figure 6.
func (sw *Switch) Receive(p *link.Packet, inPort int) {
	port := &sw.ports[inPort]
	port.rxBytes += uint64(p.Size)
	port.rxPackets++

	if sw.halted {
		sw.drop(p, DropSwitchHalted)
		return
	}
	if p.TTL == 0 {
		sw.drop(p, DropTTLExpired)
		return
	}
	p.TTL--

	// §4.4 semantics for standalone TPPs addressed at this switch, and for
	// reflect-flagged TPPs: execute here, then bounce back to the source.
	bounce := false
	if p.TPP != nil && p.TPP.Flags()&core.FlagEchoed == 0 {
		if p.Flow.Dst == sw.cfg.NodeID {
			bounce = true
		} else if sw.cfg.ReflectTPPs && p.TPP.Flags()&core.FlagReflect != 0 {
			bounce = true
		}
	}
	if bounce {
		p.Flow.Src, p.Flow.Dst = p.Flow.Dst, p.Flow.Src
		p.Flow.SrcPort, p.Flow.DstPort = p.Flow.DstPort, p.Flow.SrcPort
		if p.Flow.Src == 0 {
			p.Flow.Src = sw.cfg.NodeID
		}
	}

	// Match-action stage 0: the routing table.
	sw.lookupPkts++
	sw.lookupBytes += uint64(p.Size)
	entry := sw.routes[p.Flow.Dst]
	if entry == nil {
		sw.drop(p, DropNoRoute)
		return
	}
	sw.matchPkts++
	sw.matchBytes += uint64(p.Size)
	entry.matchPkts++
	entry.matchBytes += uint64(p.Size)

	outPort := entry.Ports[0]
	if len(entry.Ports) > 1 {
		// Tagged packets are steered by the tag alone so end-hosts can pick
		// paths deterministically; untagged traffic gets per-flow ECMP.
		if p.PathTag != 0 {
			outPort = entry.Ports[int(link.TagHash(p.PathTag)%uint32(len(entry.Ports)))]
		} else {
			outPort = entry.Ports[int(p.Flow.Hash(0)%uint32(len(entry.Ports)))]
		}
	}

	// The TCPU: execute the TPP with a packet-consistent view. The context
	// carries the very values the forwarding logic just produced. Echoed
	// TPPs are "fully executed" (§4.2) and ride back untouched.
	if p.TPP != nil && p.TPP.Flags()&core.FlagEchoed == 0 {
		sw.pktCtx = pktContext{
			pkt:      p,
			inPort:   inPort,
			outPort:  outPort,
			entry:    entry,
			altPorts: len(entry.Ports),
		}
		sw.curAppID = p.TPP.AppID()
		sw.tcpu.Exec(p.TPP)
		p.Hops++
		// A TPP write to [PacketMetadata:OutputPort] supersedes the
		// forwarding decision (§3.2: writes supersede forwarding logic).
		outPort = sw.pktCtx.outPort
		if bounce {
			p.TPP.SetFlags(p.TPP.Flags() | core.FlagEchoed)
		}
	}

	if outPort < 0 || outPort >= len(sw.ports) || sw.ports[outPort].Out == nil {
		sw.drop(p, DropNoLink)
		return
	}
	sw.ports[outPort].Out.Enqueue(p)
}

// Vendor-space registers implementing §2.6 "Fast network updates": writing
// a destination to RouteUpdateDst and then a port to RouteUpdatePort commits
// a route in half an RTT as the TPP passes through.
const (
	RegRouteUpdateDst  mem.Addr = mem.VendorBase + 0
	RegRouteUpdatePort mem.Addr = mem.VendorBase + 1
	// VendorScratchBase and above is free scratch space for tests/demos.
	VendorScratchBase mem.Addr = mem.VendorBase + 0x100
)
